examples/bug_gallery.ml: Engines Jsinterp List Option Printf String
