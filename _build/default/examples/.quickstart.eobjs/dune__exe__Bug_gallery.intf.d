examples/bug_gallery.mli:
