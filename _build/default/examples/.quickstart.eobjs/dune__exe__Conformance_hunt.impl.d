examples/conformance_hunt.ml: Array Comfort Engines List Printf Sys
