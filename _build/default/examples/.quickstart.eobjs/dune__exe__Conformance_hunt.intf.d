examples/conformance_hunt.mli:
