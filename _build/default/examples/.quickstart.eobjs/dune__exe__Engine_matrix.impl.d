examples/engine_matrix.ml: Comfort Engines Hashtbl List Option Printf String
