examples/engine_matrix.mli:
