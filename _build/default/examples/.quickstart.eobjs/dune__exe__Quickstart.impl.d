examples/quickstart.ml: Comfort Engines Jsinterp List Printf
