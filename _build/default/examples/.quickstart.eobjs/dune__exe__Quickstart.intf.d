examples/quickstart.mli:
