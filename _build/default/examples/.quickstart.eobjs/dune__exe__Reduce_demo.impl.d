examples/reduce_demo.ml: Comfort Engines Jsinterp Option Printf String
