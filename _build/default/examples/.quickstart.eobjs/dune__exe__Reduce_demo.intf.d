examples/reduce_demo.mli:
