examples/test262_demo.ml: Comfort Engines Jsinterp List Option Printf
