examples/test262_demo.mli:
