(* Bug gallery: every §5.2 listing from the paper, run on the engine version
   the paper names and on the standard-conforming reference.

     dune exec examples/bug_gallery.exe

   Shows the exact observable difference for each published bug. *)

type case = {
  title : string;
  engine : Engines.Registry.engine;
  version : string;
  source : string;
}

let cases =
  Engines.Registry.
    [
      {
        title = "Figure 2 - Rhino: substr with undefined length";
        engine = Rhino;
        version = "1.7.12";
        source =
          {|function foo(str, start, len) { var ret = str.substr(start, len); return ret; }
var s = "Name: Albert";
var pre = "Name: ";
var len = undefined;
var name = foo(s, pre.length, len);
print(name);|};
      };
      {
        title = "Listing 1 - V8: defineProperty on non-configurable length";
        engine = V8;
        version = "8.5-d891c59";
        source =
          {|var foo = function() {
  var arrobj = [0, 1];
  Object.defineProperty(arrobj, "length", { value: 1, configurable: true });
};
try { foo(); print("no error"); } catch (e) { print(e.name); }|};
      };
      {
        title = "Listing 2 - Hermes: quadratic reverse array fill (scaled)";
        engine = Hermes;
        version = "0.1.1";
        source =
          {|var foo = function(size) {
  var array = new Array(size);
  while (size--) { array[size] = 0; }
};
foo(90486);
print("done");|};
      };
      {
        title = "Listing 3 - SpiderMonkey: Uint32Array(3.14)";
        engine = SpiderMonkey;
        version = "52.9";
        source =
          {|var foo = function(length) { var array = new Uint32Array(length); print(array.length); };
foo(3.14);|};
      };
      {
        title = "Listing 4 - Rhino: toFixed(-2) without RangeError";
        engine = Rhino;
        version = "1.7.12";
        source =
          {|var foo = function(num) { var p = num.toFixed(-2); print(p); };
foo(-634619);|};
      };
      {
        title = "Listing 5 - JSC: TypedArray.set from a string";
        engine = JSC;
        version = "246135";
        source =
          {|var foo = function() { var e = '123'; A = new Uint8Array(5); A.set(e); print(A); };
foo();|};
      };
      {
        title = "Listing 6 - QuickJS: obj[true] appends to the array";
        engine = QuickJS;
        version = "2020-04-12";
        source =
          {|var foo = function() {
  var property = true;
  var obj = [1,2,5];
  obj[property] = 10;
  print(obj);
  print(obj[property]);
};
foo();|};
      };
      {
        title = "Listing 7 - ChakraCore: eval accepts for-loop without body";
        engine = ChakraCore;
        version = "1.11.19";
        source =
          {|try { eval("for(var i = 0; i < 5; i++)"); print("compiled"); } catch (e) { print(e.name); }|};
      };
      {
        title = "Listing 8 - JerryScript: split on an anchored regexp";
        engine = JerryScript;
        version = "2.3.0";
        source =
          {|var foo = function() { var a = "anA".split(/^A/); print(a); };
foo();|};
      };
      {
        title = "Listing 9 - QuickJS: crash in normalize on empty string";
        engine = QuickJS;
        version = "2020-04-12";
        source =
          {|var foo = function(str){ str.normalize(true); };
foo("");|};
      };
      {
        title = "Listing 10 - Rhino: String.prototype.big.call(null)";
        engine = Rhino;
        version = "1.7.12";
        source = {|var v1 = String.prototype.big.call(null);
print(v1);|};
      };
      {
        title = "Listing 11 - Rhino: Object.seal on a String wrapper";
        engine = Rhino;
        version = "1.7.12";
        source =
          {|function main() { var v2 = new String(2477); var v4 = Object.seal(v2); }
main();
print("ok");|};
      };
      {
        title = "Listing 12 - Rhino: compile past a non-writable lastIndex";
        engine = Rhino;
        version = "1.7.12";
        source =
          {|var regexp5 = /a/g;
Object.defineProperty(regexp5, "lastIndex", { writable: false });
try { regexp5.compile("b"); print("no error"); } catch (e) { print(e.name); }|};
      };
      {
        title = "Listing 13 - Hermes: writable named-function-expression binding";
        engine = Hermes;
        version = "0.6.0";
        source =
          {|(function v1() {
  v1 = 20;
  print(v1 !== 20);
  print(typeof v1);
}());|};
      };
    ]

let describe (r : Jsinterp.Run.result) =
  if not r.Jsinterp.Run.r_parsed then
    "SyntaxError: " ^ Option.value r.Jsinterp.Run.r_parse_error ~default:""
  else
    match r.Jsinterp.Run.r_status with
    | Jsinterp.Run.Sts_normal -> String.trim r.Jsinterp.Run.r_output
    | s ->
        String.trim r.Jsinterp.Run.r_output
        ^ (if r.Jsinterp.Run.r_output = "" then "" else "\n")
        ^ Jsinterp.Run.status_to_string s

let () =
  List.iter
    (fun c ->
      Printf.printf "== %s ==\n" c.title;
      let cfg =
        Option.get (Engines.Registry.find_config ~engine:c.engine ~version:c.version)
      in
      let tb = { Engines.Engine.tb_config = cfg; tb_mode = Engines.Engine.Normal } in
      let buggy = Engines.Engine.run ~fuel:2_000_000 tb c.source in
      let reference = Engines.Engine.run_reference ~fuel:2_000_000 c.source in
      Printf.printf "  %-24s | %s\n"
        (Engines.Registry.engine_name c.engine ^ " " ^ c.version)
        (String.concat " \\n " (String.split_on_char '\n' (describe buggy)));
      Printf.printf "  %-24s | %s\n\n" "conforming engine"
        (String.concat " \\n " (String.split_on_char '\n' (describe reference))))
    cases
