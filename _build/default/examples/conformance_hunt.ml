(* Conformance hunt: a small fuzzing campaign against all ten engines,
   mirroring the paper's §5.1 workflow at laptop scale.

     dune exec examples/conformance_hunt.exe [BUDGET]

   Prints each unique bug as it would be reported to the engine developers:
   engine, affected API, behaviour class, and the (reduced) test case. *)

let () =
  let budget =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 1500
  in
  Printf.printf "fuzzing with Comfort: %d test cases across %d testbeds...\n%!"
    budget
    (List.length (Comfort.Campaign.default_testbeds ()));
  let fz = Comfort.Campaign.comfort_fuzzer ~seed:99 () in
  let res = Comfort.Campaign.run ~budget ~reduce:true fz in
  Printf.printf "\n%d unique bugs; %d repeated miscompilations filtered by the Fig. 6 tree\n\n"
    (List.length res.Comfort.Campaign.cp_discoveries)
    res.Comfort.Campaign.cp_filtered_repeats;
  List.iteri
    (fun i (d : Comfort.Campaign.discovery) ->
      let meta = Engines.Catalogue.find d.Comfort.Campaign.disc_quirk in
      Printf.printf "--- bug report %d ---------------------------------\n" (i + 1);
      Printf.printf "engine:    %s (earliest affected version %s)\n"
        (Engines.Registry.engine_name d.Comfort.Campaign.disc_engine)
        d.Comfort.Campaign.disc_version;
      Printf.printf "API:       %s (%s)\n" meta.Engines.Catalogue.api
        meta.Engines.Catalogue.object_type;
      Printf.printf "component: %s; behaviour: %s; mode: %s\n"
        (Engines.Catalogue.component_to_string meta.Engines.Catalogue.component)
        d.Comfort.Campaign.disc_behavior
        (Engines.Engine.mode_to_string d.Comfort.Campaign.disc_mode);
      Printf.printf "found via: %s at case %d\n"
        (Comfort.Testcase.provenance_to_string
           d.Comfort.Campaign.disc_case.Comfort.Testcase.tc_provenance)
        d.Comfort.Campaign.disc_at;
      (match d.Comfort.Campaign.disc_reduced with
      | Some reduced ->
          Printf.printf "reduced test case:\n%s\n" reduced
      | None -> ()))
    res.Comfort.Campaign.cp_discoveries
