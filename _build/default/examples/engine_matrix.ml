(* Engine conformance matrix: run a suite of probe programs over every
   engine's latest version and chart who deviates where — a miniature
   Test262-style conformance report derived from differential testing.

     dune exec examples/engine_matrix.exe *)

let probes : (string * string) list =
  [
    ("substr undef len", {|print("abcdef".substr(2, undefined));|});
    ("toFixed(-1)", {|try { print((1.5).toFixed(-1)); } catch (e) { print(e.name); }|});
    ("repeat(-1)", {|try { print("x".repeat(-1)); } catch (e) { print(e.name); }|});
    ("charAt(-1)", {|print("abc".charAt(-1) === "");|});
    ("slice(-2)", {|print("abcdef".slice(-2));|});
    ("sort default", {|print([10, 9, 1].sort());|});
    ("join holes", {|print([1, undefined, 2].join("-"));|});
    ("reduce empty", {|try { print([].reduce(function(a, b) { return a + b; })); } catch (e) { print(e.name); }|});
    ("toString(40)", {|try { print((255).toString(40)); } catch (e) { print(e.name); }|});
    ("parseInt 0x", {|print(parseInt("0x1f"));|});
    ("JSON NaN", {|print(JSON.stringify(NaN));|});
    ("mod sign", {|print(-5 % 3);|});
    ("'10' < '9'", {|print("10" < "9");|});
    ("null == undef", {|print(null == undefined);|});
    ("1 << 33", {|print(1 << 33);|});
    ("-1 >>> 0", {|print(-1 >>> 0);|});
    ("eval value", {|print(eval("1 + 2"));|});
    ("regex /i", {|print(/HELLO/i.test("hello"));|});
    ("u8 clamp", {|var c = new Uint8ClampedArray(1); c[0] = 300; print(c[0]);|});
    ("splice(-1)", {|var a = [1,2,3]; a.splice(0, -1); print(a);|});
  ]

let () =
  let engines = Engines.Registry.all_engines in
  (* header *)
  Printf.printf "%-16s" "probe";
  List.iter
    (fun e ->
      let name = Engines.Registry.engine_name e in
      Printf.printf " %-5s" (String.sub name 0 (min 5 (String.length name))))
    engines;
  print_newline ();
  let deviations = Hashtbl.create 16 in
  List.iter
    (fun (label, src) ->
      let reference = Engines.Engine.run_reference src in
      let rsig = Comfort.Difftest.signature_of_result reference in
      Printf.printf "%-16s" label;
      List.iter
        (fun e ->
          let cfg = Engines.Registry.latest e in
          let tb = { Engines.Engine.tb_config = cfg; tb_mode = Engines.Engine.Normal } in
          let r = Engines.Engine.run tb src in
          let sig_ = Comfort.Difftest.signature_of_result r in
          let mark = if sig_ = rsig then "  .  " else " DEV " in
          if sig_ <> rsig then
            Hashtbl.replace deviations e
              (1 + Option.value (Hashtbl.find_opt deviations e) ~default:0);
          Printf.printf " %s" mark)
        engines;
      print_newline ())
    probes;
  print_newline ();
  List.iter
    (fun e ->
      Printf.printf "%-14s %d deviating probes\n"
        (Engines.Registry.engine_name e)
        (Option.value (Hashtbl.find_opt deviations e) ~default:0))
    engines
