(* Test-case reduction demo (paper §3.5): take a large, noisy bug-exposing
   program and shrink it to the minimal statements that still trigger the
   same deviation on the same engine.

     dune exec examples/reduce_demo.exe *)

let noisy_case =
  {|var unusedTable = {alpha: 1, beta: 2, gamma: 3};
var log = [];
function helperA(x) {
  var doubled = x * 2;
  log.push(doubled);
  return doubled;
}
function helperB(items) {
  var out = [];
  for (var i = 0; i < items.length; i++) {
    out.push(items[i] + 1);
  }
  return out;
}
helperA(21);
helperB([1, 2, 3]);
var extra = "decoration".toUpperCase();
function foo(str, start, len) {
  var ret = str.substr(start, len);
  return ret;
}
var s = "Name: Albert";
var len = undefined;
print(foo(s, 6, len));
var tail = [4, 5, 6].join("+");
helperA(2);|}

let () =
  let cfg =
    Option.get
      (Engines.Registry.find_config ~engine:Engines.Registry.Rhino ~version:"1.7.12")
  in
  let tb = { Engines.Engine.tb_config = cfg; tb_mode = Engines.Engine.Normal } in
  let target = Engines.Engine.run tb noisy_case in
  let reference = Engines.Engine.run_reference noisy_case in
  let tsig = Comfort.Difftest.signature_of_result target in
  let rsig = Comfort.Difftest.signature_of_result reference in
  Printf.printf "original test case (%d bytes):\n%s\n\n" (String.length noisy_case) noisy_case;
  Printf.printf "Rhino 1.7.12 output:   %s\n" (Comfort.Difftest.signature_to_string tsig);
  Printf.printf "conforming output:     %s\n\n" (Comfort.Difftest.signature_to_string rsig);
  assert (tsig <> rsig);
  let dev =
    {
      Comfort.Difftest.d_testbed = tb;
      d_kind = Comfort.Difftest.kind_of tsig rsig;
      d_expected = Comfort.Difftest.signature_to_string rsig;
      d_actual = Comfort.Difftest.signature_to_string tsig;
      d_behavior = Comfort.Difftest.behavior_label tsig rsig;
      d_fired = target.Jsinterp.Run.r_fired;
    }
  in
  let reduced =
    Comfort.Reducer.reduce
      ~still_triggers:(Comfort.Reducer.still_triggers_deviation tb dev)
      noisy_case
  in
  Printf.printf "reduced test case (%d bytes):\n%s\n" (String.length reduced) reduced
