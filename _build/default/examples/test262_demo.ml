(* Test262 contribution workflow (paper §5.4: 21 Comfort-generated test
   cases were accepted into the official ECMAScript conformance suite).

     dune exec examples/test262_demo.exe

   Runs a short campaign, renders each exportable discovery as a
   Test262-style conformance test, and then validates the export: the
   conforming reference engine passes every test, while the engine version
   carrying the bug fails exactly the test written against it. *)

let () =
  print_endline "fuzzing (budget 1200)...";
  let fz = Comfort.Campaign.comfort_fuzzer ~seed:77 () in
  let res = Comfort.Campaign.run ~budget:1200 fz in
  let exported = Comfort.Test262_export.export res in
  Printf.printf "%d discoveries, %d exportable as conformance tests\n\n"
    (List.length res.Comfort.Campaign.cp_discoveries)
    (List.length exported);
  (match exported with
  | (name, source) :: _ ->
      Printf.printf "=== example export: %s ===\n%s\n" name source
  | [] -> ());
  (* validate each export against the buggy engine and the reference *)
  List.iter2
    (fun (d : Comfort.Campaign.discovery) (name, source) ->
      ignore name;
      let buggy_cfg =
        Option.get
          (Engines.Registry.find_config ~engine:d.Comfort.Campaign.disc_engine
             ~version:d.Comfort.Campaign.disc_version)
      in
      let reference_passes =
        Comfort.Test262_export.passes
          {
            buggy_cfg with
            Engines.Registry.cfg_quirks = Jsinterp.Quirk.Set.empty;
          }
          source
      in
      let buggy_passes = Comfort.Test262_export.passes buggy_cfg source in
      Printf.printf "%-55s conforming:%-5b buggy %s:%b\n"
        (Jsinterp.Quirk.to_string d.Comfort.Campaign.disc_quirk)
        reference_passes
        (Engines.Registry.engine_name d.Comfort.Campaign.disc_engine)
        buggy_passes)
    (List.filter
       (fun d -> Comfort.Test262_export.render d <> None)
       res.Comfort.Campaign.cp_discoveries)
    exported
