lib/baselines/fuzzers.ml: Ast Builder Char Comfort Cutil Hashtbl Jsast Jsinterp Lazy List Lm Mutator Seeds String Visit
