lib/baselines/fuzzers.mli: Comfort
