lib/baselines/mutator.ml: Jsast Jsparse
