lib/baselines/seeds.ml:
