(** The five baseline fuzzers of paper §4.4, behind the same
    [Comfort.Campaign.fuzzer] interface as Comfort itself.

    Each is a faithful miniature of the corresponding system's test-case
    generation strategy, seeded with its own corpus ({!Seeds}); per §5.3.2
    each corpus carries the API pattern its tool is credited with reaching
    while Comfort's training corpus cannot. *)

(** DNN generation (character-level LM) plus random typed inputs. *)
val deepsmith : ?seed:int -> unit -> Comfort.Campaign.fuzzer

(** Coverage-guided mutation over a growing corpus. *)
val fuzzilli : ?seed:int -> unit -> Comfort.Campaign.fuzzer

(** Semantics-aware assembly of def/use-annotated statement bricks. *)
val codealchemist : ?seed:int -> unit -> Comfort.Campaign.fuzzer

(** Aspect-preserving mutation: types and structure kept, values varied. *)
val die : ?seed:int -> unit -> Comfort.Campaign.fuzzer

(** LM-guided replacement of AST subtrees in seed programs. *)
val montage : ?seed:int -> unit -> Comfort.Campaign.fuzzer

(** All five, with derived seeds. *)
val all : ?seed:int -> unit -> Comfort.Campaign.fuzzer list
