(* Mutation operators for the baseline fuzzers: the generic AST operators
   of [Jsast.Mutate] plus source-level helpers that need the parser. *)

include Jsast.Mutate

let parse_opt (src : string) : Jsast.Ast.program option =
  match Jsparse.Parser.parse_program src with
  | p -> Some p
  | exception Jsparse.Parser.Syntax_error _ -> None
