(* Seed corpora for the mutation-based baseline fuzzers.

   The paper compares against mutation fuzzers that start from the seed
   programs shipped with their source publications (§4.4); each tool's
   corpus differs. [common] is a shared set of benign regression-test-style
   programs (no boundary values — engines pass them all); each baseline
   additionally carries the seed pattern §5.3.2 credits it with reaching
   while Comfort cannot (the corresponding API pattern never occurs in
   Comfort's training corpus):

   - Fuzzilli:      [Object.seal] on a String wrapper       (Listing 11)
   - CodeAlchemist: [String.prototype.big.call]             (Listing 10)
   - DIE:           non-writable RegExp [lastIndex] + compile (Listing 12)
   - Montage:       assignment to a named function expression (Listing 13) *)

let common : string list =
  [
    {|var s = "hello world";
print(s.substr(6, 5));
print(s.substring(0, 5));|};
    {|var arr = [30, 1, 2];
arr.sort(function(a, b) { return a - b; });
print(arr.join("-"));|};
    {|var n = 3.14159;
print(n.toFixed(2));
print(n.toPrecision(3));|};
    {|var o = {a: 1, b: 2};
print(Object.keys(o));
print(JSON.stringify(o));|};
    {|var t = new Uint8Array(4);
t.set([1, 2], 1);
print(t);|};
    {|print(parseInt("42", 10));
print(parseFloat("2.5"));|};
    {|var x = 10;
while (x-- > 0) {
  if (x % 3 === 0) { print(x); }
}|};
    {|var f = function(a) { return a * 2; };
print([1, 2, 3].map(f));|};
    {|var str = "a,b,c";
print(str.split(","));
print(str.replace("b", ";"));|};
    {|try {
  null.foo();
} catch (e) {
  print(e.name);
}|};
    {|var view = new DataView(8);
view.setUint8(0, 255);
print(view.getUint8(0));|};
    {|var big = 20000;
print(big + big);
print(big * 2);|};
    {|var v = [1, 2, 5];
v[2] = 10;
print(v);
print(v[2]);|};
    {|var re2 = /ab+c/;
print(re2.test("xabbcx"));
print("xabcx".search(/abc/));|};
    {|print("abc".normalize("NFC"));
print("abc".toUpperCase());|};
    {|var nested = [1, [2, 3], 4];
print(nested.flat(1));|};
    {|print([1, 2].reduce(function(a, b) { return a + b; }, 0));|};
    {|print("abcdef".charAt(2));
print("abcdef".indexOf("cd"));|};
    {|var when = new Date(86400000);
print(when.getTime());|};
    {|var out = eval("2 * 3");
print(out);|};
    {|var keys = [];
for (var k in {x: 1, y: 2}) { keys.push(k); }
print(keys.sort());|};
    {|var items = [5, 9];
items.push(12);
print(items.slice(1));
print(items.indexOf(9));|};
    {|function fmt(v) {
  return "<" + v + ">";
}
print(fmt(12));
print(fmt("x"));|};
  ]

let fuzzilli_extra : string list =
  [
    {|function main() {
  var v2 = new String(2477);
  var v4 = Object.seal(v2);
}
main();
print("sealed");|};
  ]

let codealchemist_extra : string list =
  [
    {|var v1 = String.prototype.big.call("text");
print(v1);|};
    {|var v0 = null;
var v1 = String.prototype.big.call(v0);
print(v1);|};
  ]

let die_extra : string list =
  [
    {|var regexp5 = /a/g;
Object.defineProperty(regexp5, "lastIndex", { writable: false });
regexp5.compile("b");
print(regexp5.lastIndex);|};
  ]

let montage_extra : string list =
  [
    {|(function v1() {
  v1 = 20;
  print(v1 !== 20);
  print(typeof v1);
}());|};
  ]

(* Backward-compatible view: every seed (used by tests). *)
let programs : string list =
  common @ fuzzilli_extra @ codealchemist_extra @ die_extra @ montage_extra
