lib/core/bugfilter.ml: Hashtbl Option
