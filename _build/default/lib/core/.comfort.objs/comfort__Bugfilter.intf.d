lib/core/bugfilter.mli:
