lib/core/campaign.ml: Bugfilter Datagen Difftest Engines Generator Hashtbl Jsast Jsinterp Jsparse Lazy List Option Queue Quirk Reducer Run Specdb Testcase
