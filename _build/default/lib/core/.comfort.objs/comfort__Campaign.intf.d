lib/core/campaign.mli: Difftest Engines Jsinterp Testcase
