lib/core/datagen.ml: Ast Builder Char Cutil Hashtbl Jsast Jsparse Lazy List Option Printer Specdb String Testcase Transform Visit
