lib/core/datagen.mli: Specdb Testcase
