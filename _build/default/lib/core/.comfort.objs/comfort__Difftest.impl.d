lib/core/difftest.ml: Engines Jsinterp List Quirk Run String Testcase
