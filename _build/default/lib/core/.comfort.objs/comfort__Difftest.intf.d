lib/core/difftest.mli: Engines Jsinterp Testcase
