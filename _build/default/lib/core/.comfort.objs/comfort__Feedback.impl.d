lib/core/feedback.ml: Campaign Cutil Difftest Float Jsast Jsparse List Option Queue Testcase
