lib/core/feedback.mli: Campaign Engines Testcase
