lib/core/generator.ml: Cutil Float Jsparse Lazy List Lm String Testcase
