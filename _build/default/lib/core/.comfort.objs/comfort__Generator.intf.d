lib/core/generator.mli: Lm Testcase
