lib/core/metrics.ml: Campaign Float Jsinterp Jsparse List Testcase
