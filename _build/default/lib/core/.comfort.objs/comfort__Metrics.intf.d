lib/core/metrics.mli: Campaign
