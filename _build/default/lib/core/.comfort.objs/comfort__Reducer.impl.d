lib/core/reducer.ml: Ast Difftest Engines Jsast Jsinterp Jsparse List Option Printer String Transform Visit
