lib/core/reducer.mli: Difftest Engines
