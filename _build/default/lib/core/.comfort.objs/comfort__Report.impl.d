lib/core/report.ml: Campaign Catalogue Engines Hashtbl Jsinterp List Option Registry Testcase
