lib/core/report.mli: Campaign
