lib/core/test262_export.ml: Campaign Engines Jsinterp List Printf String
