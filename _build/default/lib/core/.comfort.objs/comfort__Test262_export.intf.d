lib/core/test262_export.mli: Campaign Engines Jsinterp
