lib/core/testcase.ml: Jsparse
