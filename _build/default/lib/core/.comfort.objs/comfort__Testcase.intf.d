lib/core/testcase.mli:
