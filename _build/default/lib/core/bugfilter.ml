(* Identical-miscompilation filter (paper §3.6, Fig. 6).

   A three-layer decision tree: engine -> API function -> miscompilation
   behaviour. A deviation whose (engine, api, behaviour) path already has a
   leaf is classified as a repeat of a known bug and filtered; otherwise a
   new leaf is grown and the deviation surfaces as a new bug. *)

type t = {
  engines : (string, (string, (string, unit) Hashtbl.t) Hashtbl.t) Hashtbl.t;
  mutable leaves : int;
  mutable filtered : int;
  mutable surfaced : int;
}

let create () =
  { engines = Hashtbl.create 16; leaves = 0; filtered = 0; surfaced = 0 }

(* The second-layer key: the API a deviation implicates. Deviations on test
   cases without any recognised API call land in the "None" node. *)
let api_key (api : string option) = Option.value api ~default:"None"

let classify (t : t) ~(engine : string) ~(api : string option)
    ~(behavior : string) : [ `New_bug | `Seen_before ] =
  let api = api_key api in
  let api_tbl =
    match Hashtbl.find_opt t.engines engine with
    | Some x -> x
    | None ->
        let x = Hashtbl.create 8 in
        Hashtbl.replace t.engines engine x;
        x
  in
  let leaf_tbl =
    match Hashtbl.find_opt api_tbl api with
    | Some x -> x
    | None ->
        let x = Hashtbl.create 4 in
        Hashtbl.replace api_tbl api x;
        x
  in
  if Hashtbl.mem leaf_tbl behavior then begin
    t.filtered <- t.filtered + 1;
    `Seen_before
  end
  else begin
    Hashtbl.replace leaf_tbl behavior ();
    t.leaves <- t.leaves + 1;
    t.surfaced <- t.surfaced + 1;
    `New_bug
  end

let leaf_count (t : t) = t.leaves
let filtered_count (t : t) = t.filtered
let surfaced_count (t : t) = t.surfaced
