(** Identical-miscompilation filter (paper §3.6, Figure 6).

    A three-layer decision tree — engine, then API function, then observed
    miscompilation behaviour. A deviation whose path already has a leaf is
    classified as a repeat of a known bug; otherwise a new leaf grows. *)

type t

val create : unit -> t

(** Classify one deviation; grows the tree on [`New_bug]. A deviation on a
    test case with no recognised API lands in the "None" second-layer node,
    as in the paper's Figure 6. *)
val classify :
  t ->
  engine:string ->
  api:string option ->
  behavior:string ->
  [ `New_bug | `Seen_before ]

val leaf_count : t -> int
val filtered_count : t -> int
val surfaced_count : t -> int
