(* Fuzzing campaign driver.

   Feeds test cases from a fuzzer into differential testing across a set of
   testbeds, attributes observed deviations to ground-truth bugs (the
   quirks that fired on the deviating engine), de-duplicates repeats with
   the Fig. 6 filter tree, and keeps the discovery timeline that Fig. 8
   plots.

   Testbeds are grouped by mode before voting: a strict-mode engine and a
   sloppy-mode engine can legitimately disagree, so each mode votes among
   its own ranks — this mirrors the paper's 102-testbed setup where bugs
   are reported "under both the normal and the strict modes". *)

open Jsinterp

type fuzzer = {
  fz_name : string;
  fz_batch : int -> Testcase.t list;
      (** produce at least [n] fresh test cases *)
  fz_raw : (int -> string list) option;
      (** raw generator output before any screening/mutation, used for the
          Fig. 9 syntax-passing-rate metric; [None] means the batch output
          is already the raw output (mutation-based fuzzers) *)
}

type discovery = {
  disc_engine : Engines.Registry.engine;
  disc_quirk : Quirk.t;
  disc_case : Testcase.t;
  disc_reduced : string option;
  disc_kind : Difftest.deviation_kind;
  disc_behavior : string;
  disc_at : int;          (** how many cases had run when it was found *)
  disc_version : string;  (** earliest engine version exhibiting the bug *)
  disc_mode : Engines.Engine.mode;
}

type result = {
  cp_fuzzer : string;
  cp_cases_run : int;
  cp_discoveries : discovery list;
  cp_filtered_repeats : int;   (** deviations suppressed by the Fig. 6 tree *)
  cp_unattributed : int;       (** deviations with no fired quirk (noise) *)
  cp_timeline : (int * int) list;  (** (cases run, cumulative unique bugs) *)
}

(* --- the Comfort fuzzer: LM generation + Algorithm 1 mutants --- *)

let comfort_fuzzer ?(seed = 7) ?(with_datagen = true) () : fuzzer =
  let gen = Generator.create ~seed () in
  (* [with_datagen:false] isolates the ECMA-262 guidance (Table 4 /
     ablation 3): drivers and free-variable bindings are still synthesized,
     but from an empty specification database, so every input value is
     random rather than a spec boundary *)
  let db =
    if with_datagen then Lazy.force Specdb.Db.standard else Specdb.Db.build []
  in
  let dg = Datagen.create ~seed:(seed + 1) ~db () in
  let queue : Testcase.t Queue.t = Queue.create () in
  let rec refill n =
    if n > 0 then begin
      match Generator.generate gen ~n:1 with
      | [] -> ()
      | tc :: _ ->
          Queue.add tc queue;
          let mutants = Datagen.mutate dg tc in
          List.iter (fun m -> Queue.add m queue) mutants;
          refill (n - 1 - List.length mutants)
    end
  in
  let raw_gen = Generator.create ~seed:(seed + 2) () in
  {
    fz_name = (if with_datagen then "Comfort" else "Comfort-nodata");
    fz_raw =
      Some (fun n -> List.init n (fun _ -> Generator.sample_program raw_gen));
    fz_batch =
      (fun n ->
        while Queue.length queue < n do
          refill (n - Queue.length queue)
        done;
        List.init n (fun _ -> Queue.pop queue));
  }

(* --- campaign --- *)

let api_of_deviation (dev : Difftest.deviation) (tc : Testcase.t) :
    string option =
  match Quirk.Set.choose_opt dev.Difftest.d_fired with
  | Some q -> Some (Engines.Catalogue.find q).Engines.Catalogue.api
  | None -> (
      match tc.Testcase.tc_provenance with
      | Testcase.P_ecma_mutated api -> Some api
      | _ -> (
          match Jsparse.Parser.parse_program tc.Testcase.tc_source with
          | p -> (
              match Jsast.Visit.call_sites p with
              | cs :: _ -> Some cs.Jsast.Visit.cs_callee
              | [] -> None)
          | exception Jsparse.Parser.Syntax_error _ -> None))

(* Causal attribution: a fired quirk is credited with a deviation only if
   disabling that quirk alone changes the deviating engine's behaviour on
   the test case. This keeps incidental quirk firings (a deviant path that
   executed but produced the same observable output) from inflating the
   bug count. *)
let causal_quirks (tb : Engines.Engine.testbed) (src : string)
    (dev : Difftest.deviation) ~fuel : Quirk.t list =
  let cfg = tb.Engines.Engine.tb_config in
  let base_sig = dev.Difftest.d_actual in
  Quirk.Set.fold
    (fun q acc ->
      let quirks = Quirk.Set.remove q cfg.Engines.Registry.cfg_quirks in
      let r =
        Run.run ~quirks
          ~parse_opts:(Engines.Registry.parse_opts_of_config cfg)
          ~strict:(tb.Engines.Engine.tb_mode = Engines.Engine.Strict)
          ~fuel src
      in
      let s = Difftest.signature_to_string (Difftest.signature_of_result r) in
      if s <> base_sig then q :: acc else acc)
    dev.Difftest.d_fired []

let default_testbeds () =
  Engines.Engine.latest_testbeds ~mode:Engines.Engine.Normal ()
  @ Engines.Engine.latest_testbeds ~mode:Engines.Engine.Strict ()

let run ?(testbeds = default_testbeds ()) ?(budget = 200)
    ?(fuel = Difftest.default_fuel) ?(reduce = false) (fz : fuzzer) : result =
  let by_mode =
    [
      List.filter (fun tb -> tb.Engines.Engine.tb_mode = Engines.Engine.Normal) testbeds;
      List.filter (fun tb -> tb.Engines.Engine.tb_mode = Engines.Engine.Strict) testbeds;
    ]
    |> List.filter (fun l -> l <> [])
  in
  let filter = Bugfilter.create () in
  let seen : (Engines.Registry.engine * Quirk.t, unit) Hashtbl.t =
    Hashtbl.create 64
  in
  let discoveries = ref [] in
  let unattributed = ref 0 in
  let timeline = ref [] in
  let cases = fz.fz_batch budget in
  List.iteri
    (fun idx tc ->
      List.iter
        (fun tbs ->
          let report = Difftest.run_case ~fuel tbs tc in
          List.iter
            (fun (dev : Difftest.deviation) ->
              let tb = dev.Difftest.d_testbed in
              let engine = tb.Engines.Engine.tb_config.Engines.Registry.cfg_engine in
              let api = api_of_deviation dev tc in
              (* developer-facing dedup: the Fig. 6 tree *)
              let verdict =
                Bugfilter.classify filter
                  ~engine:(Engines.Registry.engine_name engine)
                  ~api ~behavior:dev.Difftest.d_behavior
              in
              ignore verdict;
              if Quirk.Set.is_empty dev.Difftest.d_fired then incr unattributed
              else
                let causal =
                  causal_quirks tb tc.Testcase.tc_source dev ~fuel
                in
                if causal = [] then incr unattributed
                else
                List.iter
                  (fun q ->
                    if not (Hashtbl.mem seen (engine, q)) then begin
                      Hashtbl.replace seen (engine, q) ();
                      let reduced =
                        if reduce then
                          Some
                            (Reducer.reduce
                               ~still_triggers:
                                 (Reducer.still_triggers_deviation tb dev)
                               tc.Testcase.tc_source)
                        else None
                      in
                      let d =
                        {
                          disc_engine = engine;
                          disc_quirk = q;
                          disc_case = tc;
                          disc_reduced = reduced;
                          disc_kind = dev.Difftest.d_kind;
                          disc_behavior = dev.Difftest.d_behavior;
                          disc_at = idx + 1;
                          disc_version =
                            Option.value
                              (Engines.Registry.earliest_version engine q)
                              ~default:
                                tb.Engines.Engine.tb_config
                                  .Engines.Registry.cfg_version;
                          disc_mode = tb.Engines.Engine.tb_mode;
                        }
                      in
                      discoveries := d :: !discoveries
                    end)
                  causal)
            report.Difftest.cr_deviations)
        by_mode;
      timeline := (idx + 1, Hashtbl.length seen) :: !timeline)
    cases;
  {
    cp_fuzzer = fz.fz_name;
    cp_cases_run = List.length cases;
    cp_discoveries = List.rev !discoveries;
    cp_filtered_repeats = Bugfilter.filtered_count filter;
    cp_unattributed = !unattributed;
    cp_timeline = List.rev !timeline;
  }
