(** ECMA-262-guided test-data generation — Algorithm 1 of the paper (§3.3).

    Takes a generated test program, finds the JS API call sites it contains,
    looks each up in the specification database, and emits mutated test
    cases whose inputs hit the boundary conditions the specification text
    mentions, plus purely random inputs for the "normal conditions" side. *)

type mutant = {
  m_source : string;
  m_api : string;   (** spec entry that guided the mutation; "" for plain drivers *)
  m_guided : bool;  (** [true] when spec boundary values were used *)
}

type t

(** @param db the specification database (default: the embedded corpus);
    pass an empty database to disable spec guidance while keeping driver
    synthesis — the ablation of DESIGN.md §4.3. *)
val create : ?seed:int -> ?db:Specdb.Db.t -> ?max_mutants:int -> unit -> t

(** Algorithm 1 on one source program; [] when it does not parse. *)
val mutants_of_program : t -> string -> mutant list

(** [mutate t tc] wraps {!mutants_of_program} into test cases with
    provenance assigned per mutant ([P_ecma_mutated] vs [P_generated]). *)
val mutate : t -> Testcase.t -> Testcase.t list
