(** Test-case quality metrics (paper §5.3.3, Figure 9). *)

type quality = {
  q_fuzzer : string;
  q_samples : int;
  q_validity : float;    (** syntax passing rate over raw generator output *)
  q_stmt_cov : float;    (** aggregate statement coverage of valid cases *)
  q_branch_cov : float;
  q_func_cov : float;
}

(** Measure one fuzzer over [n] cases; coverage runs each syntactically
    valid case on the reference engine with instrumentation. *)
val measure : ?fuel:int -> Campaign.fuzzer -> n:int -> quality

(** Share of valid generated cases that raise a runtime exception (the
    paper reports ~18% for Comfort). *)
val runtime_exception_rate : Campaign.fuzzer -> n:int -> float
