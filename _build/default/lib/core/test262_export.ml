(* Test262-style export of discovered bugs.

   The paper reports that 21 Comfort-generated test cases were accepted
   into Test262, the official ECMAScript conformance suite. This module
   produces that artefact: given a discovery, it renders a self-contained
   conformance test in the Test262 house style — YAML front matter
   describing the tested clause, an assertion harness, and the (reduced)
   trigger embedded as assertions against the *conforming* behaviour.

   The generated tests run on any of this repository's simulated engines
   via [run_exported]: a conforming engine passes silently, an engine
   carrying the bug fails the assertion. *)

(* The minimal assert harness Test262 provides via [assert.js]. *)
let harness =
  {|var __failures = [];
function __fail(msg) { __failures.push(msg); }
function assert(cond, msg) { if (!cond) { __fail(msg); } }
assert.sameValue = function(actual, expected, msg) {
  if (actual !== expected && !(actual !== actual && expected !== expected)) {
    __fail(msg + " (expected " + expected + ", got " + actual + ")");
  }
};
assert.throws = function(kind, fn, msg) {
  var threw = false;
  try { fn(); } catch (e) { threw = e instanceof kind; }
  if (!threw) { __fail(msg + " (expected " + kind.prototype.name + ")"); }
};
|}

let epilogue =
  {|if (__failures.length === 0) { print("PASS"); }
else { for (var __i = 0; __i < __failures.length; __i++) { print("FAIL: " + __failures[__i]); } }
|}

(* A conformance assertion per quirk: what a standard-conforming engine must
   observably do at the boundary the bug violates. Assertions are authored
   once per quirk, like a Test262 contributor would write them. *)
let assertion_for (q : Jsinterp.Quirk.t) : string option =
  let open Jsinterp.Quirk in
  match q with
  | Q_substr_undefined_length_empty ->
      Some
        {|assert.sameValue("abcdef".substr(2, undefined), "cdef",
  "substr with undefined length extends to the end of the string");|}
  | Q_defineproperty_array_length_no_typeerror ->
      Some
        {|assert.throws(TypeError, function() {
  Object.defineProperty([0, 1], "length", { value: 1, configurable: true });
}, "redefining non-configurable array length as configurable");|}
  | Q_uint32array_fractional_length_typeerror ->
      Some
        {|assert.sameValue(new Uint32Array(3.14).length, 3,
  "typed array length converts via ToIndex");|}
  | Q_tofixed_no_rangeerror ->
      Some
        {|assert.throws(RangeError, function() { (-634619).toFixed(-2); },
  "toFixed rejects digit counts below 0");|}
  | Q_typedarray_set_string_typeerror ->
      Some
        {|var sample = new Uint8Array(5);
sample.set("123");
assert.sameValue(sample.join(","), "1,2,3,0,0",
  "set treats a string as an array-like source");|}
  | Q_bool_prop_appends_to_array ->
      Some
        {|var arr = [1, 2, 5];
arr[true] = 10;
assert.sameValue(arr.length, 3, "a boolean key is an ordinary property key");
assert.sameValue(arr[true], 10, "the property is readable back");|}
  | Q_eval_for_missing_body_accepted ->
      Some
        {|assert.throws(SyntaxError, function() { eval("for(var i = 0; i < 5; i++)"); },
  "a for statement requires a body");|}
  | Q_split_regexp_anchor_bug ->
      Some
        {|assert.sameValue("anA".split(/^A/).join("|"), "anA",
  "an anchored pattern that does not match splits nothing");|}
  | Q_string_big_null_no_typeerror ->
      Some
        {|assert.throws(TypeError, function() { String.prototype.big.call(null); },
  "annex-B string methods still require an object-coercible receiver");|}
  | Q_regexp_lastindex_nonwritable_silent ->
      Some
        {|var re = /a/g;
Object.defineProperty(re, "lastIndex", { writable: false });
assert.throws(TypeError, function() { re.compile("b"); },
  "re-initialising a RegExp writes lastIndex and must respect writability");|}
  | Q_repeat_negative_empty ->
      Some
        {|assert.throws(RangeError, function() { "x".repeat(-1); },
  "repeat rejects negative counts");|}
  | Q_tostring_radix_no_rangeerror ->
      Some
        {|assert.throws(RangeError, function() { (255).toString(40); },
  "toString radix must be between 2 and 36");|}
  | Q_toprecision_zero_accepted ->
      Some
        {|assert.throws(RangeError, function() { (1.5).toPrecision(0); },
  "toPrecision precision must be at least 1");|}
  | Q_reduce_empty_returns_undefined ->
      Some
        {|assert.throws(TypeError, function() {
  [].reduce(function(a, b) { return a + b; });
}, "reduce of an empty array with no initial value");|}
  | Q_splice_negative_delcount_deletes ->
      Some
        {|var spliced = [1, 2, 3];
spliced.splice(0, -1);
assert.sameValue(spliced.join(","), "1,2,3",
  "a negative deleteCount clamps to zero");|}
  | Q_array_includes_strict_nan ->
      Some
        {|assert.sameValue([NaN].includes(NaN), true,
  "includes uses SameValueZero, so NaN is found");|}
  | Q_lastindexof_nan_zero ->
      Some
        {|assert.sameValue("banana".lastIndexOf("an", NaN), 3,
  "a NaN position means searching from the end");|}
  | Q_freeze_array_elements_writable ->
      Some
        {|var frozen = [1];
Object.freeze(frozen);
frozen[0] = 9;
assert.sameValue(frozen[0], 1, "elements of a frozen array are read-only");|}
  | Q_defineproperty_defaults_writable ->
      Some
        {|var host = {};
Object.defineProperty(host, "k", { value: 1 });
host.k = 2;
assert.sameValue(host.k, 1, "descriptor fields default to false");|}
  | Q_padstart_overlong_truncates ->
      Some
        {|assert.sameValue("abcdef".padStart(3, "x"), "abcdef",
  "padStart never truncates a string longer than maxLength");|}
  | Q_replace_undefined_search_noop ->
      Some
        {|assert.sameValue("x undefined y".replace(undefined, "Z"), "x Z y",
  "an undefined searchValue is coerced to the string \"undefined\"");|}
  | Q_charat_negative_wraps ->
      Some
        {|assert.sameValue("abc".charAt(-1), "",
  "charAt with a negative position returns the empty string");|}
  | Q_slice_negative_start_zero ->
      Some
        {|assert.sameValue("abcdef".slice(-2), "ef",
  "a negative slice start counts from the end");|}
  | _ -> None

(* Render one Test262-style file for a discovery. Returns [None] when no
   conformance assertion has been authored for the quirk (crash and
   performance bugs are reported upstream instead, as in the paper). *)
let render (d : Campaign.discovery) : (string * string) option =
  match assertion_for d.Campaign.disc_quirk with
  | None -> None
  | Some body ->
      let q = d.Campaign.disc_quirk in
      let meta = Engines.Catalogue.find q in
      let filename =
        Printf.sprintf "%s-%s.js"
          (String.lowercase_ascii
             (String.map
                (fun c -> if c = '.' || c = '%' then '-' else c)
                meta.Engines.Catalogue.api))
          (Jsinterp.Quirk.to_string q)
      in
      let front_matter =
        Printf.sprintf
          {|/*---
esid: sec-%s
description: >
  %s deviates from the specification in %s %s
  (found by Comfort via differential testing; behaviour class %s).
features: []
---*/
|}
          (String.lowercase_ascii meta.Engines.Catalogue.api)
          meta.Engines.Catalogue.api
          (Engines.Registry.engine_name d.Campaign.disc_engine)
          d.Campaign.disc_version d.Campaign.disc_behavior
      in
      Some (filename, front_matter ^ harness ^ body ^ "\n" ^ epilogue)

(* Export every exportable discovery of a campaign. *)
let export (res : Campaign.result) : (string * string) list =
  List.filter_map render res.Campaign.cp_discoveries

(* Run an exported test on one engine configuration; [true] = conformant. *)
let passes (cfg : Engines.Registry.config) (source : string) : bool =
  let tb = { Engines.Engine.tb_config = cfg; tb_mode = Engines.Engine.Normal } in
  let r = Engines.Engine.run ~fuel:2_000_000 tb source in
  r.Jsinterp.Run.r_parsed
  && r.Jsinterp.Run.r_status = Jsinterp.Run.Sts_normal
  && r.Jsinterp.Run.r_output = "PASS\n"
