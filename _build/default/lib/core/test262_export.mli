(** Test262-style export of discovered conformance bugs (paper §5.4: 21
    Comfort-generated test cases were accepted into the official suite).

    Each exportable discovery renders to a self-contained conformance test
    in the Test262 house style: YAML front matter, a miniature assert
    harness, and assertions against the conforming behaviour. A conforming
    engine prints ["PASS"]; an engine carrying the bug prints the failing
    assertion. *)

(** The conformance assertion authored for a quirk, if any. Crash and
    performance bugs have no assertion (they are reported upstream rather
    than contributed as conformance tests, as in the paper). *)
val assertion_for : Jsinterp.Quirk.t -> string option

(** Render one discovery to [(filename, file contents)]. *)
val render : Campaign.discovery -> (string * string) option

(** Render every exportable discovery of a campaign. *)
val export : Campaign.result -> (string * string) list

(** Does this engine configuration pass the exported test? *)
val passes : Engines.Registry.config -> string -> bool
