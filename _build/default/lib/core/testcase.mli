(** Test cases: a JS program plus its provenance.

    The provenance tag drives Table 4 of the paper (bugs found by test
    program generation vs by ECMA-262-guided data generation) and names the
    originating fuzzer in the comparison experiments. *)

type provenance =
  | P_generated              (** straight from the language model (§3.2),
                                 or a mutant carrying only random data *)
  | P_ecma_mutated of string (** Algorithm 1 mutant that used spec boundary
                                 values; payload = the guiding API name *)
  | P_seed                   (** handwritten seed *)
  | P_fuzzer of string       (** produced by a named baseline fuzzer *)

val provenance_to_string : provenance -> string

type t = {
  tc_id : int;              (** unique per process *)
  tc_source : string;       (** JS source text *)
  tc_provenance : provenance;
  tc_syntax_valid : bool;   (** verdict of the JSHint-substitute check *)
}

(** Wrap a source string, assigning an id and checking syntax. *)
val make : ?provenance:provenance -> string -> t

(** Was this case produced with specification boundary values? *)
val is_ecma_guided : t -> bool
