lib/engines/catalogue.ml: Jsinterp List Quirk
