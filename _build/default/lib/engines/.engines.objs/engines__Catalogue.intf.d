lib/engines/catalogue.mli: Jsinterp
