lib/engines/engine.ml: Jsinterp Jsparse List Printf Registry Run
