lib/engines/engine.mli: Jsinterp Registry
