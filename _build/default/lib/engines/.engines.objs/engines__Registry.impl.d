lib/engines/registry.ml: Jsinterp Jsparse List Printf Quirk
