lib/engines/registry.mli: Jsinterp Jsparse
