(* Ground-truth metadata for every injected quirk.

   This is the oracle against which fuzzing campaigns are scored: a campaign
   "discovers a bug" when differential testing flags a deviation whose
   deviating testbed fired the quirk. The metadata mirrors what the paper
   reports per bug: the JS API involved, its object type (Table 5), the
   affected compiler component (Fig. 7), developer confirmation status
   (Tables 2-3), whether the generated test case was accepted into Test262,
   and which part of the Comfort pipeline is in principle needed to expose
   it (Table 4):

   - [`Gen]: reachable by plain generated programs (program-generation bugs)
   - [`Ecma]: needs specification-guided test data (boundary values such as
     [undefined] arguments, out-of-range digits, non-configurable flags) *)

open Jsinterp

type component =
  | CodeGen
  | Implementation
  | Parser
  | RegexEngine
  | Optimizer
  | StrictModeOnly

let component_to_string = function
  | CodeGen -> "CodeGen"
  | Implementation -> "Implementation"
  | Parser -> "Parser"
  | RegexEngine -> "Regex Engine"
  | Optimizer -> "Optimizer"
  | StrictModeOnly -> "Strict mode"

type status =
  | Fixed              (** confirmed and fixed by developers *)
  | Verified           (** confirmed, fix pending *)
  | Under_discussion
  | Rejected           (** e.g. feature unclear in the targeted edition *)

let status_to_string = function
  | Fixed -> "fixed"
  | Verified -> "verified"
  | Under_discussion -> "under discussion"
  | Rejected -> "rejected"

type origin = [ `Gen | `Ecma ]

type meta = {
  quirk : Quirk.t;
  api : string;           (** e.g. "String.prototype.substr" *)
  object_type : string;   (** Table 5 grouping *)
  component : component;
  status : status;
  newly_discovered : bool;
  test262_accepted : bool;
  origin : origin;
  strict_only : bool;
}

let m ?(status = Fixed) ?(new_ = true) ?(t262 = false) ?(strict = false)
    quirk api object_type component origin =
  {
    quirk;
    api;
    object_type;
    component;
    status;
    newly_discovered = new_;
    test262_accepted = t262;
    origin;
    strict_only = strict;
  }

let all : meta list =
  Quirk.
    [
      (* paper-reported bugs *)
      m Q_substr_undefined_length_empty "String.prototype.substr" "String"
        Implementation `Ecma ~t262:true;
      m Q_defineproperty_array_length_no_typeerror "Object.defineProperty"
        "Object" Implementation `Ecma ~t262:true;
      m Q_array_reverse_fill_quadratic "Array" "Array" CodeGen `Gen;
      m Q_uint32array_fractional_length_typeerror "Uint32Array" "TypedArray"
        Implementation `Ecma ~new_:false;
      m Q_tofixed_no_rangeerror "Number.prototype.toFixed" "Number"
        Implementation `Ecma ~t262:true;
      m Q_typedarray_set_string_typeerror "%TypedArray%.prototype.set"
        "TypedArray" Implementation `Ecma ~t262:true;
      m Q_bool_prop_appends_to_array "Array" "Array" CodeGen `Ecma;
      m Q_eval_for_missing_body_accepted "eval" "eval function" Parser `Ecma
        ~t262:true;
      m Q_split_regexp_anchor_bug "String.prototype.split" "String"
        RegexEngine `Gen ~t262:true;
      m Q_normalize_empty_crash "String.prototype.normalize" "String" CodeGen
        `Gen;
      m Q_seal_string_object_crash "Object.seal" "Object" CodeGen `Gen
        ~new_:false;
      m Q_string_big_null_no_typeerror "String.prototype.big" "String"
        Implementation `Ecma ~new_:false;
      m Q_regexp_lastindex_nonwritable_silent "RegExp.prototype.compile"
        "RegExp" Implementation `Ecma ~new_:false;
      m Q_named_funcexpr_binding_mutable "Function" "Object" CodeGen `Gen
        ~new_:false ~status:Verified;
      (* String *)
      m Q_replace_dollar_group_literal "String.prototype.replace" "String"
        Implementation `Gen;
      m Q_replace_fn_missing_offset "String.prototype.replace" "String"
        Implementation `Gen;
      m Q_replace_undefined_search_noop "String.prototype.replace" "String"
        Implementation `Ecma ~t262:true;
      m Q_replace_empty_pattern_skips "String.prototype.replace" "String"
        Implementation `Ecma;
      m Q_charat_negative_wraps "String.prototype.charAt" "String"
        Implementation `Ecma;
      m Q_padstart_overlong_truncates "String.prototype.padStart" "String"
        Implementation `Ecma ~t262:true;
      m Q_trim_missing_vt "String.prototype.trim" "String" Implementation `Gen;
      m Q_repeat_negative_empty "String.prototype.repeat" "String"
        Implementation `Ecma ~t262:true;
      m Q_string_indexof_fromindex_ignored "String.prototype.indexOf" "String"
        Implementation `Gen;
      m Q_slice_negative_start_zero "String.prototype.slice" "String"
        Implementation `Ecma;
      m Q_startswith_position_ignored "String.prototype.startsWith" "String"
        Implementation `Gen ~status:Verified;
      m Q_lastindexof_nan_zero "String.prototype.lastIndexOf" "String"
        Implementation `Ecma ~t262:true;
      (* Array *)
      m Q_array_sort_numeric_default "Array.prototype.sort" "Array"
        Implementation `Gen;
      m Q_splice_negative_delcount_deletes "Array.prototype.splice" "Array"
        Implementation `Ecma ~t262:true;
      m Q_array_indexof_nan_found "Array.prototype.indexOf" "Array"
        Implementation `Ecma;
      m Q_array_includes_strict_nan "Array.prototype.includes" "Array"
        Implementation `Ecma ~t262:true;
      m Q_unshift_returns_undefined "Array.prototype.unshift" "Array"
        Implementation `Gen;
      m Q_join_prints_null_undefined "Array.prototype.join" "Array"
        Implementation `Gen;
      m Q_reduce_empty_returns_undefined "Array.prototype.reduce" "Array"
        Implementation `Ecma ~t262:true;
      m Q_flat_ignores_depth "Array.prototype.flat" "Array" Implementation
        `Gen ~status:Verified;
      m Q_array_fill_skips_last "Array.prototype.fill" "Array" Implementation
        `Gen;
      (* Number *)
      m Q_tostring_radix_no_rangeerror "Number.prototype.toString" "Number"
        Implementation `Ecma ~t262:true;
      m Q_toprecision_zero_accepted "Number.prototype.toPrecision" "Number"
        Implementation `Ecma;
      m Q_parseint_no_hex_prefix "parseInt" "Number" Implementation `Gen;
      m Q_parsefloat_trailing_nan "parseFloat" "Number" Implementation `Gen;
      m Q_number_isinteger_coerces "Number.isInteger" "Number" Implementation
        `Ecma ~status:Verified;
      (* Object *)
      m Q_freeze_array_elements_writable "Object.freeze" "Object"
        Implementation `Ecma ~t262:true;
      m Q_keys_includes_nonenumerable "Object.keys" "Object" Implementation
        `Gen;
      m Q_getownpropertynames_sorted "Object.getOwnPropertyNames" "Object"
        Implementation `Gen ~status:Under_discussion;
      m Q_defineproperty_defaults_writable "Object.defineProperty" "Object"
        Implementation `Ecma ~t262:true;
      m Q_assign_skips_numeric_keys "Object.assign" "Object" Implementation
        `Gen;
      m Q_hasownproperty_walks_proto "Object.prototype.hasOwnProperty"
        "Object" Implementation `Gen;
      m Q_delete_nonconfigurable_succeeds "Object.defineProperty" "Object"
        CodeGen `Ecma;
      (* JSON *)
      m Q_json_stringify_undefined_string "JSON.stringify" "JSON"
        Implementation `Ecma;
      m Q_json_parse_trailing_comma "JSON.parse" "JSON" Parser `Gen;
      m Q_json_stringify_nan_literal "JSON.stringify" "JSON" Implementation
        `Gen;
      (* regex engine *)
      m Q_regex_dot_matches_newline "RegExp" "RegExp" RegexEngine `Gen;
      m Q_regex_ignorecase_broken "RegExp" "RegExp" RegexEngine `Gen;
      m Q_regex_class_negation_broken "RegExp" "RegExp" RegexEngine `Gen
        ~status:Verified;
      (* typed arrays / DataView *)
      m Q_typedarray_oob_write_crash "%TypedArray%" "TypedArray" CodeGen `Gen;
      m Q_uint8clamped_wraps "Uint8ClampedArray" "TypedArray" Implementation
        `Ecma;
      m Q_dataview_no_bounds_check "DataView.prototype.getUint8" "DataView"
        Implementation `Ecma;
      m Q_typedarray_fill_no_coerce "%TypedArray%.prototype.fill" "TypedArray"
        Implementation `Gen ~status:Verified;
      (* eval *)
      m Q_eval_expr_returns_undefined "eval" "eval function" Implementation
        `Gen;
      m Q_eval_string_result_quoted "eval" "eval function" Implementation `Gen
        ~status:Rejected ~new_:false;
      (* code generation *)
      m Q_codegen_neg_zero_positive "unary -" "Number" CodeGen `Gen;
      m Q_codegen_mod_sign_wrong "%" "Number" CodeGen `Gen;
      m Q_codegen_shift_count_unmasked "<<" "Number" CodeGen `Gen;
      m Q_codegen_ushr_signed ">>>" "Number" CodeGen `Gen;
      m Q_codegen_string_relational_numeric "<" "String" CodeGen `Gen;
      m Q_codegen_null_eq_undefined_false "==" "Object" CodeGen `Gen;
      m Q_codegen_plus_bool_concat "+" "Object" CodeGen `Gen;
      (* optimizer *)
      m Q_opt_int_add_overflow_wraps "+" "Number" Optimizer `Gen;
      m Q_opt_loop_strconcat_drops "+=" "String" Optimizer `Gen
        ~status:Verified;
      (* strict-mode-only *)
      m Q_strict_undeclared_assign_silent "assignment" "Object" StrictModeOnly
        `Gen ~strict:true;
      m Q_strict_this_is_global "this" "Object" StrictModeOnly `Gen
        ~strict:true ~status:Under_discussion;
      m Q_strict_delete_unqualified_accepted "delete" "Object" StrictModeOnly
        `Gen ~strict:true;
      m Q_strict_dup_params_accepted "Function" "Object" StrictModeOnly `Gen
        ~strict:true;
    ]

let find (q : Quirk.t) : meta =
  match List.find_opt (fun x -> Quirk.equal x.quirk q) all with
  | Some x -> x
  | None ->
      invalid_arg ("Catalogue.find: quirk not in catalogue: " ^ Quirk.to_string q)

let () =
  (* every quirk must carry metadata; fail fast at link time otherwise *)
  assert (List.length all = List.length Quirk.all)
