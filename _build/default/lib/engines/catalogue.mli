(** Ground-truth metadata for every injected quirk: the oracle against which
    fuzzing campaigns are scored.

    The metadata mirrors what the paper reports per bug — the JS API
    involved, its object type (Table 5), the affected compiler component
    (Fig. 7), developer confirmation status (Tables 2-3), Test262
    acceptance, and which part of the pipeline is in principle needed to
    expose it (Table 4). *)

type component =
  | CodeGen
  | Implementation
  | Parser
  | RegexEngine
  | Optimizer
  | StrictModeOnly

val component_to_string : component -> string

type status =
  | Fixed              (** confirmed and fixed by developers *)
  | Verified           (** confirmed, fix pending *)
  | Under_discussion
  | Rejected

val status_to_string : status -> string

type origin = [ `Gen | `Ecma ]

type meta = {
  quirk : Jsinterp.Quirk.t;
  api : string;           (** e.g. "String.prototype.substr" *)
  object_type : string;   (** Table 5 grouping *)
  component : component;
  status : status;
  newly_discovered : bool;
  test262_accepted : bool;
  origin : origin;
  strict_only : bool;
}

(** One entry per quirk; totality is asserted at load time. *)
val all : meta list

(** @raise Invalid_argument on a quirk missing from the catalogue. *)
val find : Jsinterp.Quirk.t -> meta
