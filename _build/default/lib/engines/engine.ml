(* Testbed execution: run a test case on one engine-version configuration
   in one mode (normal or strict), per the paper's §4.2 testbed setup. *)

open Jsinterp

type mode = Normal | Strict

let mode_to_string = function Normal -> "normal" | Strict -> "strict"

type testbed = {
  tb_config : Registry.config;
  tb_mode : mode;
}

let testbed_id (tb : testbed) =
  Printf.sprintf "%s[%s]" (Registry.id tb.tb_config) (mode_to_string tb.tb_mode)

(* The paper's 102 testbeds: 51 configurations x 2 modes. *)
let all_testbeds : testbed list =
  List.concat_map
    (fun c -> [ { tb_config = c; tb_mode = Normal }; { tb_config = c; tb_mode = Strict } ])
    Registry.all_configs

(* Testbeds for the newest version of each engine, the default target set
   for a fuzzing campaign. *)
let latest_testbeds ?(mode = Normal) () : testbed list =
  List.map
    (fun e -> { tb_config = Registry.latest e; tb_mode = mode })
    Registry.all_engines

let run ?(fuel = Run.default_fuel) ?(coverage = false) (tb : testbed)
    (src : string) : Run.result =
  Run.run
    ~quirks:tb.tb_config.Registry.cfg_quirks
    ~parse_opts:(Registry.parse_opts_of_config tb.tb_config)
    ~strict:(tb.tb_mode = Strict)
    ~fuel ~coverage src

(* A reference run: the standard-conforming engine with no quirks. Used by
   the reducer and by examples as the "expected" behaviour. *)
let run_reference ?(fuel = Run.default_fuel) ?(strict = false) (src : string) :
    Run.result =
  Run.run ~strict ~fuel src

(* Can this configuration's front end parse the program at all? Used by the
   campaign to honour the paper's rule of only testing engines against
   programs within their supported edition (§2.2). *)
let supports (c : Registry.config) (src : string) : bool =
  match
    Jsparse.Parser.parse_program ~opts:(Registry.parse_opts_of_config c) src
  with
  | _ -> true
  | exception Jsparse.Parser.Syntax_error _ ->
      (* distinguish "ES edition too old" from genuinely bad syntax: if the
         default front end accepts it, the rejection is a feature gap *)
      not (Jsparse.Parser.is_valid src)
