lib/jsast/ast.ml:
