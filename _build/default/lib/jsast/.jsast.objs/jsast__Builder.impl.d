lib/jsast/builder.ml: Ast Float List Option
