lib/jsast/builder.mli: Ast
