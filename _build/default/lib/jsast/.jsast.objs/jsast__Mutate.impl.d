lib/jsast/mutate.ml: Ast Builder Char Cutil Float List Printer String Transform Visit
