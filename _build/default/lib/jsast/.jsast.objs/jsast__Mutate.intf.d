lib/jsast/mutate.mli: Ast Cutil
