lib/jsast/printer.ml: Ast Buffer Char Float List Printf String
