lib/jsast/printer.mli: Ast
