lib/jsast/transform.ml: Ast List Option
