lib/jsast/transform.mli: Ast
