lib/jsast/visit.ml: Ast Hashtbl List Option
