lib/jsast/visit.mli: Ast
