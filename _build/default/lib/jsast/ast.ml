(* Abstract syntax for the JavaScript subset handled by this reproduction.

   The subset covers what the Comfort pipeline needs to exercise: ES5.1
   statements and expressions plus the ES2015 features the paper's test cases
   rely on (let/const, arrow functions, template literals, computed member
   and property names, for-of).

   Statements and expressions are id-annotated records ([stmt] wraps
   [stmt_desc], [expr] wraps [expr_desc]). The ids are assigned at
   construction time (see {!Builder}) and identify syntactic locations for
   the coverage instrumentation (statement/branch coverage, Fig. 9 of the
   paper) and for the test-case reducer. Ids are unique within a program but
   carry no other meaning. *)

type lit =
  | Lnull
  | Lbool of bool
  | Lnum of float
  | Lstr of string
  | Lregexp of string * string  (** pattern, flags *)

type unop =
  | Uneg        (** [-e] *)
  | Uplus       (** [+e] *)
  | Unot        (** [!e] *)
  | Ubnot       (** [~e] *)
  | Utypeof
  | Uvoid
  | Udelete

type binop =
  | Add | Sub | Mul | Div | Mod | Exp
  | Eq | Neq | StrictEq | StrictNeq
  | Lt | Gt | Le | Ge
  | BitAnd | BitOr | BitXor
  | Shl | Shr | Ushr
  | Instanceof | In

type logop = And | Or

type update_op = Incr | Decr

type var_kind = Var | Let | Const

type expr = { eid : int; e : expr_desc }

and expr_desc =
  | Lit of lit
  | Ident of string
  | This
  | Array_lit of expr option list
      (** [None] entries are elisions, e.g. [\[1,,2\]]. *)
  | Object_lit of (propname * expr) list
  | Func of func
  | Arrow of func
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Logical of logop * expr * expr
  | Assign of binop option * expr * expr
      (** [Assign (None, lhs, rhs)] is [lhs = rhs]; [Some op] is [lhs op= rhs].
          The lhs must be an [Ident] or [Member]. *)
  | Update of update_op * bool * expr  (** op, [true] = prefix, target *)
  | Cond of expr * expr * expr
  | Call of expr * expr list
  | New of expr * expr list
  | Member of expr * property
  | Seq of expr * expr
  | Template of template_part list

and property =
  | Pfield of string     (** [e.name] *)
  | Pindex of expr       (** [e\[i\]] *)

and propname =
  | PN_ident of string
  | PN_str of string
  | PN_num of float
  | PN_computed of expr

and template_part =
  | Tstr of string
  | Tsub of expr

and func = {
  fname : string option;
  params : string list;
  body : stmt list;
  is_arrow : bool;
}

and stmt = { sid : int; s : stmt_desc }

and stmt_desc =
  | Expr_stmt of expr
  | Var_decl of var_kind * (string * expr option) list
  | Func_decl of func
  | Return of expr option
  | If of expr * stmt * stmt option
  | Block of stmt list
  | For of for_init option * expr option * expr option * stmt
  | For_in of var_kind option * string * expr * stmt
  | For_of of var_kind option * string * expr * stmt
  | While of expr * stmt
  | Do_while of stmt * expr
  | Break of string option
  | Continue of string option
  | Throw of expr
  | Try of stmt list * (string * stmt list) option * stmt list option
      (** try block, optional catch (param, body), optional finally *)
  | Switch of expr * (expr option * stmt list) list
      (** [None] discriminant is the [default:] clause. *)
  | Labeled of string * stmt
  | Empty
  | Debugger

and for_init =
  | FI_decl of var_kind * (string * expr option) list
  | FI_expr of expr

type program = {
  prog_body : stmt list;
  prog_strict : bool;  (** ["use strict"] directive prologue present *)
}

(* Operator precedence used by both the parser and the printer; a shared
   definition keeps round-tripping exact. Higher binds tighter. *)
let binop_prec = function
  | Exp -> 14
  | Mul | Div | Mod -> 13
  | Add | Sub -> 12
  | Shl | Shr | Ushr -> 11
  | Lt | Gt | Le | Ge | Instanceof | In -> 10
  | Eq | Neq | StrictEq | StrictNeq -> 9
  | BitAnd -> 8
  | BitXor -> 7
  | BitOr -> 6

let logop_prec = function And -> 5 | Or -> 4

let binop_to_string = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Exp -> "**"
  | Eq -> "==" | Neq -> "!=" | StrictEq -> "===" | StrictNeq -> "!=="
  | Lt -> "<" | Gt -> ">" | Le -> "<=" | Ge -> ">="
  | BitAnd -> "&" | BitOr -> "|" | BitXor -> "^"
  | Shl -> "<<" | Shr -> ">>" | Ushr -> ">>>"
  | Instanceof -> "instanceof" | In -> "in"

let unop_to_string = function
  | Uneg -> "-" | Uplus -> "+" | Unot -> "!" | Ubnot -> "~"
  | Utypeof -> "typeof" | Uvoid -> "void" | Udelete -> "delete"

let logop_to_string = function And -> "&&" | Or -> "||"

let var_kind_to_string = function Var -> "var" | Let -> "let" | Const -> "const"
