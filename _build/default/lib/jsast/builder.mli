(** Smart constructors assigning fresh node ids.

    All AST producers (the parser, the baseline mutators, the test-data
    generator, the reducer) build nodes through this module so that every
    node carries a distinct id for coverage accounting. *)

(** Wrap a description with a fresh id. *)
val e : Ast.expr_desc -> Ast.expr

val s : Ast.stmt_desc -> Ast.stmt

(** Reset the id counter — only from tests asserting on concrete ids. *)
val reset_ids : unit -> unit

(** {2 Expressions} *)

val lit : Ast.lit -> Ast.expr
val null : Ast.expr
val bool : bool -> Ast.expr
val num : float -> Ast.expr
val int : int -> Ast.expr
val str : string -> Ast.expr
val regexp : string -> string -> Ast.expr
val ident : string -> Ast.expr
val this : unit -> Ast.expr
val undefined : unit -> Ast.expr
val array : Ast.expr list -> Ast.expr
val object_ : (Ast.propname * Ast.expr) list -> Ast.expr
val unary : Ast.unop -> Ast.expr -> Ast.expr
val binary : Ast.binop -> Ast.expr -> Ast.expr -> Ast.expr
val logical : Ast.logop -> Ast.expr -> Ast.expr -> Ast.expr
val assign : Ast.expr -> Ast.expr -> Ast.expr
val assign_op : Ast.binop -> Ast.expr -> Ast.expr -> Ast.expr
val cond : Ast.expr -> Ast.expr -> Ast.expr -> Ast.expr
val call : Ast.expr -> Ast.expr list -> Ast.expr
val new_ : Ast.expr -> Ast.expr list -> Ast.expr
val field : Ast.expr -> string -> Ast.expr
val index : Ast.expr -> Ast.expr -> Ast.expr
val seq : Ast.expr -> Ast.expr -> Ast.expr
val template : Ast.template_part list -> Ast.expr
val func : ?name:string -> ?arrow:bool -> string list -> Ast.stmt list -> Ast.expr

(** [meth_call obj name args] builds [obj.name(args)]. *)
val meth_call : Ast.expr -> string -> Ast.expr list -> Ast.expr

(** {2 Statements} *)

val expr_stmt : Ast.expr -> Ast.stmt
val var : ?kind:Ast.var_kind -> string -> Ast.expr -> Ast.stmt
val var_uninit : ?kind:Ast.var_kind -> string -> Ast.stmt
val func_decl : string -> string list -> Ast.stmt list -> Ast.stmt
val return_ : Ast.expr -> Ast.stmt
val return_void : unit -> Ast.stmt
val if_ : Ast.expr -> Ast.stmt -> Ast.stmt
val if_else : Ast.expr -> Ast.stmt -> Ast.stmt -> Ast.stmt
val block : Ast.stmt list -> Ast.stmt
val while_ : Ast.expr -> Ast.stmt -> Ast.stmt
val throw : Ast.expr -> Ast.stmt
val try_catch : Ast.stmt list -> string -> Ast.stmt list -> Ast.stmt
val empty : unit -> Ast.stmt

(** [print x] builds [print(x)] — the output primitive every testbed
    compares on. *)
val print : Ast.expr -> Ast.stmt

val program : ?strict:bool -> Ast.stmt list -> Ast.program

(** {2 Fresh-id deep copies}

    Used when grafting a subtree from one program into another, so the host
    keeps id uniqueness. *)

val refresh_expr : Ast.expr -> Ast.expr
val refresh_stmt : Ast.stmt -> Ast.stmt
val refresh_program : Ast.program -> Ast.program
