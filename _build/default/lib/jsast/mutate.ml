(* Generic AST mutation operators.

   Used by the mutation-based baseline fuzzers (Fuzzilli/DIE/Montage
   miniatures) and by the feedback extension of the Comfort pipeline that
   mutates bug-exposing test cases (paper §5.5). *)

module B = Builder
module Rng = Cutil.Rng

let interesting_numbers =
  [ 0.0; 1.0; -1.0; 2.0; 0.5; -0.5; 255.0; 256.0; 65535.0; 2147483647.0;
    -2147483648.0; 4294967295.0; 1e21; Float.nan; Float.infinity ]

let interesting_strings = [ ""; " "; "0"; "abc"; "undefined"; "NaN"; "\\"; "$1" ]

(* Replace one literal with an "interesting" value of the same type
   (DIE-style aspect preservation) or of a random type. *)
let mutate_literal ?(preserve_type = false) (rng : Rng.t) (p : Ast.program) :
    Ast.program =
  (* pick a random literal expression id *)
  let lits = ref [] in
  Visit.iter_program
    ~fe:(fun x -> match x.Ast.e with Ast.Lit _ -> lits := x :: !lits | _ -> ())
    p;
  match !lits with
  | [] -> p
  | lits ->
      let target = Rng.pick rng lits in
      let replacement =
        match target.Ast.e with
        | Ast.Lit (Ast.Lnum _) when preserve_type ->
            (* DIE mutates mostly to plain random values of the same type,
               with an occasional "interesting" constant *)
            if Rng.chance rng 0.3 then B.num (Rng.pick rng interesting_numbers)
            else B.int (Rng.int rng 200 - 100)
        | Ast.Lit (Ast.Lstr _) when preserve_type ->
            if Rng.chance rng 0.3 then B.str (Rng.pick rng interesting_strings)
            else
              B.str
                (String.init (Rng.int rng 5 + 1) (fun _ ->
                     Char.chr (97 + Rng.int rng 26)))
        | Ast.Lit (Ast.Lbool b) when preserve_type -> B.bool (not b)
        | _ -> (
            match Rng.int rng 5 with
            | 0 -> B.num (Rng.pick rng interesting_numbers)
            | 1 -> B.str (Rng.pick rng interesting_strings)
            | 2 -> B.bool (Rng.bool rng)
            | 3 -> B.null
            | _ -> B.undefined ())
      in
      Transform.replace_expr p ~eid:target.Ast.eid ~replacement

(* Swap one binary operator for another in the same family. *)
let mutate_operator (rng : Rng.t) (p : Ast.program) : Ast.program =
  let families =
    [
      [ Ast.Add; Ast.Sub; Ast.Mul; Ast.Div; Ast.Mod; Ast.Exp ];
      [ Ast.Eq; Ast.Neq; Ast.StrictEq; Ast.StrictNeq ];
      [ Ast.Lt; Ast.Gt; Ast.Le; Ast.Ge ];
      [ Ast.BitAnd; Ast.BitOr; Ast.BitXor; Ast.Shl; Ast.Shr; Ast.Ushr ];
    ]
  in
  let bins = ref [] in
  Visit.iter_program
    ~fe:(fun x -> match x.Ast.e with Ast.Binary _ -> bins := x :: !bins | _ -> ())
    p;
  match !bins with
  | [] -> p
  | bins -> (
      let target = Rng.pick rng bins in
      match target.Ast.e with
      | Ast.Binary (op, a, b) -> (
          match List.find_opt (List.mem op) families with
          | Some family ->
              let op' = Rng.pick rng family in
              Transform.replace_expr p ~eid:target.Ast.eid
                ~replacement:(B.binary op' (B.refresh_expr a) (B.refresh_expr b))
          | None -> p)
      | _ -> p)

(* Graft one top-level statement of [donor] into [host] at a random
   position (LangFuzz/Fuzzilli-style splicing). *)
let splice (rng : Rng.t) ~(host : Ast.program) ~(donor : Ast.program) :
    Ast.program =
  match donor.Ast.prog_body with
  | [] -> host
  | donor_body ->
      let stmt = B.refresh_stmt (Rng.pick rng donor_body) in
      let body = host.Ast.prog_body in
      let pos = Rng.int rng (List.length body + 1) in
      let before = List.filteri (fun i _ -> i < pos) body in
      let after = List.filteri (fun i _ -> i >= pos) body in
      { host with Ast.prog_body = before @ [ stmt ] @ after }

(* Delete one random top-level statement. *)
let drop_statement (rng : Rng.t) (p : Ast.program) : Ast.program =
  match p.Ast.prog_body with
  | [] | [ _ ] -> p
  | body ->
      let victim = Rng.int rng (List.length body) in
      { p with Ast.prog_body = List.filteri (fun i _ -> i <> victim) body }

let to_src = Printer.program_to_string
