(** Generic AST mutation operators.

    Used by the mutation-based baseline fuzzers (the Fuzzilli/DIE/Montage
    miniatures) and by the feedback extension that mutates bug-exposing
    test cases (paper §5.5). All operators preserve syntactic validity by
    construction — they rewrite the AST and print it. *)

val interesting_numbers : float list
val interesting_strings : string list

(** Replace one random literal. With [preserve_type] the replacement keeps
    the literal's type (DIE-style aspect preservation), mostly with plain
    random values and occasionally an "interesting" constant. *)
val mutate_literal :
  ?preserve_type:bool -> Cutil.Rng.t -> Ast.program -> Ast.program

(** Swap one binary operator for another in the same family. *)
val mutate_operator : Cutil.Rng.t -> Ast.program -> Ast.program

(** Graft one top-level statement of [donor] into [host] at a random
    position (LangFuzz-style splicing); node ids are refreshed. *)
val splice : Cutil.Rng.t -> host:Ast.program -> donor:Ast.program -> Ast.program

(** Delete one random top-level statement (never the last one). *)
val drop_statement : Cutil.Rng.t -> Ast.program -> Ast.program

val to_src : Ast.program -> string
