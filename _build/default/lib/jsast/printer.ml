(* JavaScript source emission.

   [program_to_string] produces source that the `jsparse` parser parses back
   to an equivalent AST (round-tripping is property-tested). Emission is
   conservative with parentheses: a child expression is parenthesised
   whenever its precedence is not strictly higher than the context requires,
   which keeps the printer simple and provably faithful at the cost of an
   occasional redundant pair. *)

open Ast

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\x00' .. '\x1f' ->
          Buffer.add_string buf (Printf.sprintf "\\x%02x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Numeric literals are printed with the engine's number formatter so that
   e.g. [3.] prints as [3] and round-trips. Negative numbers never appear as
   literals (the parser produces [Unary (Uneg, ...)]); guard anyway. *)
let print_num f =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "Infinity"
  else if f = Float.neg_infinity then "-Infinity"
  else if Float.is_integer f && Float.abs f < 1e21 then
    Printf.sprintf "%.0f" f
  else
    (* shortest representation that round-trips *)
    let rec try_prec p =
      if p > 17 then Printf.sprintf "%.17g" f
      else
        let s = Printf.sprintf "%.*g" p f in
        if float_of_string s = f then s else try_prec (p + 1)
    in
    try_prec 1

let is_valid_ident s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | '$' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true | _ -> false)
       s

type ctx = { buf : Buffer.t; mutable indent : int }

let nl ctx =
  Buffer.add_char ctx.buf '\n';
  Buffer.add_string ctx.buf (String.make (2 * ctx.indent) ' ')

let add ctx s = Buffer.add_string ctx.buf s

(* Precedence levels for non-binary expressions, aligned with
   {!Ast.binop_prec} (binary 4..14). *)
let prec_seq = 0
let prec_assign = 2
let prec_cond = 3
let prec_unary = 15
let prec_postfix = 16
let prec_call = 17
let prec_primary = 18

let expr_prec (x : expr) =
  match x.e with
  | Seq _ -> prec_seq
  | Assign _ -> prec_assign
  | Cond _ -> prec_cond
  | Logical (op, _, _) -> logop_prec op
  | Binary (op, _, _) -> binop_prec op
  | Unary _ -> prec_unary
  | Update (_, true, _) -> prec_unary
  | Update (_, false, _) -> prec_postfix
  | Call _ | New _ | Member _ -> prec_call
  | Func _ | Arrow _ -> prec_assign
  | Lit _ | Ident _ | This | Array_lit _ | Object_lit _ | Template _ ->
      prec_primary

let rec emit_expr ctx ~min_prec (x : expr) =
  let p = expr_prec x in
  let needs_parens =
    p < min_prec
    ||
    (* function expressions at statement head would parse as declarations;
       parenthesise them whenever they open a subexpression chain. *)
    match x.e with Func _ | Object_lit _ -> min_prec >= prec_call | _ -> false
  in
  if needs_parens then add ctx "(";
  emit_expr_naked ctx x;
  if needs_parens then add ctx ")"

and emit_expr_naked ctx (x : expr) =
  match x.e with
  | Lit Lnull -> add ctx "null"
  | Lit (Lbool b) -> add ctx (if b then "true" else "false")
  | Lit (Lnum f) -> add ctx (print_num f)
  | Lit (Lstr s) -> add ctx ("\"" ^ escape_string s ^ "\"")
  | Lit (Lregexp (pat, flags)) -> add ctx ("/" ^ pat ^ "/" ^ flags)
  | Ident id -> add ctx id
  | This -> add ctx "this"
  | Array_lit elems ->
      add ctx "[";
      List.iteri
        (fun i el ->
          if i > 0 then add ctx ", ";
          match el with
          | None -> ()
          | Some el -> emit_expr ctx ~min_prec:prec_assign el)
        elems;
      add ctx "]"
  | Object_lit props ->
      add ctx "{";
      List.iteri
        (fun i (pn, v) ->
          if i > 0 then add ctx ", ";
          (match pn with
          | PN_ident n -> add ctx n
          | PN_str s -> add ctx ("\"" ^ escape_string s ^ "\"")
          | PN_num f -> add ctx (print_num f)
          | PN_computed e ->
              add ctx "[";
              emit_expr ctx ~min_prec:prec_assign e;
              add ctx "]");
          add ctx ": ";
          emit_expr ctx ~min_prec:prec_assign v)
        props;
      add ctx "}"
  | Func f -> emit_func ctx f
  | Arrow f ->
      add ctx "(";
      add ctx (String.concat ", " f.params);
      add ctx ") => ";
      emit_block ctx f.body
  | Unary (op, operand) ->
      let s = unop_to_string op in
      add ctx s;
      (match op with
      | Utypeof | Uvoid | Udelete -> add ctx " "
      | Uneg | Uplus -> (
          (* avoid [- -x] gluing into [--x] *)
          match operand.e with
          | Unary ((Uneg | Uplus), _) | Update _ -> add ctx " "
          | _ -> ())
      | _ -> ());
      emit_expr ctx ~min_prec:prec_unary operand
  | Binary (op, a, b) ->
      let p = binop_prec op in
      (* left associative: left child may share the level, right must bind
         tighter; [Exp] is right associative. *)
      let lp, rp = if op = Exp then (p + 1, p) else (p, p + 1) in
      emit_expr ctx ~min_prec:lp a;
      add ctx (" " ^ binop_to_string op ^ " ");
      emit_expr ctx ~min_prec:rp b
  | Logical (op, a, b) ->
      let p = logop_prec op in
      emit_expr ctx ~min_prec:p a;
      add ctx (" " ^ logop_to_string op ^ " ");
      emit_expr ctx ~min_prec:(p + 1) b
  | Assign (op, lhs, rhs) ->
      emit_expr ctx ~min_prec:prec_postfix lhs;
      (match op with
      | None -> add ctx " = "
      | Some op -> add ctx (" " ^ binop_to_string op ^ "= "));
      emit_expr ctx ~min_prec:prec_assign rhs
  | Update (op, prefix, target) ->
      let s = match op with Incr -> "++" | Decr -> "--" in
      if prefix then (
        add ctx s;
        emit_expr ctx ~min_prec:prec_unary target)
      else (
        emit_expr ctx ~min_prec:prec_postfix target;
        add ctx s)
  | Cond (c, t, f) ->
      emit_expr ctx ~min_prec:(prec_cond + 1) c;
      add ctx " ? ";
      emit_expr ctx ~min_prec:prec_assign t;
      add ctx " : ";
      emit_expr ctx ~min_prec:prec_assign f;
      ()
  | Call (f, args) ->
      emit_expr ctx ~min_prec:prec_call f;
      emit_args ctx args
  | New (f, args) ->
      add ctx "new ";
      emit_expr ctx ~min_prec:prec_call f;
      emit_args ctx args
  | Member (o, Pfield name) ->
      (* [1 .toString()] needs separating space or parens; parenthesise
         numeric receivers. *)
      (match o.e with
      | Lit (Lnum _) ->
          add ctx "(";
          emit_expr_naked ctx o;
          add ctx ")"
      | _ -> emit_expr ctx ~min_prec:prec_call o);
      add ctx ".";
      add ctx name
  | Member (o, Pindex i) ->
      emit_expr ctx ~min_prec:prec_call o;
      add ctx "[";
      emit_expr ctx ~min_prec:prec_assign i;
      add ctx "]"
  | Seq (a, b) ->
      emit_expr ctx ~min_prec:prec_assign a;
      add ctx ", ";
      emit_expr ctx ~min_prec:prec_seq b
  | Template parts ->
      add ctx "`";
      List.iter
        (function
          | Tstr s -> add ctx (escape_template s)
          | Tsub e ->
              add ctx "${";
              emit_expr ctx ~min_prec:prec_seq e;
              add ctx "}")
        parts;
      add ctx "`"

and escape_template s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '`' -> Buffer.add_string buf "\\`"
      | '\\' -> Buffer.add_string buf "\\\\"
      | '$' -> Buffer.add_string buf "\\$"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

and emit_args ctx args =
  add ctx "(";
  List.iteri
    (fun i a ->
      if i > 0 then add ctx ", ";
      emit_expr ctx ~min_prec:prec_assign a)
    args;
  add ctx ")"

and emit_func ctx f =
  add ctx "function";
  (match f.fname with None -> () | Some n -> add ctx (" " ^ n));
  add ctx "(";
  add ctx (String.concat ", " f.params);
  add ctx ") ";
  emit_block ctx f.body

and emit_block ctx body =
  add ctx "{";
  ctx.indent <- ctx.indent + 1;
  List.iter
    (fun st ->
      nl ctx;
      emit_stmt ctx st)
    body;
  ctx.indent <- ctx.indent - 1;
  nl ctx;
  add ctx "}"

and emit_stmt ctx (st : stmt) =
  match st.s with
  | Expr_stmt x ->
      (* a leading `function` / `{` would be parsed as a declaration/block *)
      (match x.e with
      | Func _ | Object_lit _ ->
          add ctx "(";
          emit_expr_naked ctx x;
          add ctx ")"
      | _ -> emit_expr ctx ~min_prec:prec_seq x);
      add ctx ";"
  | Var_decl (k, decls) ->
      add ctx (var_kind_to_string k ^ " ");
      List.iteri
        (fun i (n, init) ->
          if i > 0 then add ctx ", ";
          add ctx n;
          match init with
          | None -> ()
          | Some x ->
              add ctx " = ";
              emit_expr ctx ~min_prec:prec_assign x)
        decls;
      add ctx ";"
  | Func_decl f -> emit_func ctx f
  | Return None -> add ctx "return;"
  | Return (Some x) ->
      add ctx "return ";
      emit_expr ctx ~min_prec:prec_seq x;
      add ctx ";"
  | If (c, t, f) -> (
      add ctx "if (";
      emit_expr ctx ~min_prec:prec_seq c;
      add ctx ") ";
      emit_stmt_as_block ctx t;
      match f with
      | None -> ()
      | Some f ->
          add ctx " else ";
          emit_stmt_as_block ctx f)
  | Block body -> emit_block ctx body
  | For (init, c, upd, body) ->
      add ctx "for (";
      (match init with
      | None -> ()
      | Some (FI_decl (k, decls)) ->
          add ctx (var_kind_to_string k ^ " ");
          List.iteri
            (fun i (n, e) ->
              if i > 0 then add ctx ", ";
              add ctx n;
              match e with
              | None -> ()
              | Some e ->
                  add ctx " = ";
                  emit_expr ctx ~min_prec:prec_assign e)
            decls
      | Some (FI_expr x) -> emit_expr ctx ~min_prec:prec_seq x);
      add ctx "; ";
      (match c with None -> () | Some c -> emit_expr ctx ~min_prec:prec_seq c);
      add ctx "; ";
      (match upd with
      | None -> ()
      | Some u -> emit_expr ctx ~min_prec:prec_seq u);
      add ctx ") ";
      emit_stmt_as_block ctx body
  | For_in (k, x, obj, body) ->
      add ctx "for (";
      (match k with
      | None -> ()
      | Some k -> add ctx (var_kind_to_string k ^ " "));
      add ctx x;
      add ctx " in ";
      emit_expr ctx ~min_prec:prec_seq obj;
      add ctx ") ";
      emit_stmt_as_block ctx body
  | For_of (k, x, obj, body) ->
      add ctx "for (";
      (match k with
      | None -> ()
      | Some k -> add ctx (var_kind_to_string k ^ " "));
      add ctx x;
      add ctx " of ";
      emit_expr ctx ~min_prec:prec_assign obj;
      add ctx ") ";
      emit_stmt_as_block ctx body
  | While (c, body) ->
      add ctx "while (";
      emit_expr ctx ~min_prec:prec_seq c;
      add ctx ") ";
      emit_stmt_as_block ctx body
  | Do_while (body, c) ->
      add ctx "do ";
      emit_stmt_as_block ctx body;
      add ctx " while (";
      emit_expr ctx ~min_prec:prec_seq c;
      add ctx ");"
  | Break None -> add ctx "break;"
  | Break (Some l) -> add ctx ("break " ^ l ^ ";")
  | Continue None -> add ctx "continue;"
  | Continue (Some l) -> add ctx ("continue " ^ l ^ ";")
  | Throw x ->
      add ctx "throw ";
      emit_expr ctx ~min_prec:prec_seq x;
      add ctx ";"
  | Try (body, handler, finalizer) ->
      add ctx "try ";
      emit_block ctx body;
      (match handler with
      | None -> ()
      | Some (param, hbody) ->
          add ctx (" catch (" ^ param ^ ") ");
          emit_block ctx hbody);
      (match finalizer with
      | None -> ()
      | Some fbody ->
          add ctx " finally ";
          emit_block ctx fbody)
  | Switch (d, cases) ->
      add ctx "switch (";
      emit_expr ctx ~min_prec:prec_seq d;
      add ctx ") {";
      ctx.indent <- ctx.indent + 1;
      List.iter
        (fun (c, body) ->
          nl ctx;
          (match c with
          | None -> add ctx "default:"
          | Some c ->
              add ctx "case ";
              emit_expr ctx ~min_prec:prec_seq c;
              add ctx ":");
          ctx.indent <- ctx.indent + 1;
          List.iter
            (fun st ->
              nl ctx;
              emit_stmt ctx st)
            body;
          ctx.indent <- ctx.indent - 1)
        cases;
      ctx.indent <- ctx.indent - 1;
      nl ctx;
      add ctx "}"
  | Labeled (l, st) ->
      add ctx (l ^ ": ");
      emit_stmt ctx st
  | Empty -> add ctx ";"
  | Debugger -> add ctx "debugger;"

(* Bodies of if/while/for are always emitted as blocks: it avoids the
   dangling-else ambiguity entirely. *)
and emit_stmt_as_block ctx st =
  match st.s with
  | Block _ -> emit_stmt ctx st
  | _ -> emit_block ctx [ st ]

let expr_to_string (x : expr) =
  let ctx = { buf = Buffer.create 64; indent = 0 } in
  emit_expr ctx ~min_prec:prec_seq x;
  Buffer.contents ctx.buf

let stmt_to_string (st : stmt) =
  let ctx = { buf = Buffer.create 64; indent = 0 } in
  emit_stmt ctx st;
  Buffer.contents ctx.buf

let program_to_string (p : program) =
  let ctx = { buf = Buffer.create 256; indent = 0 } in
  if p.prog_strict then add ctx "\"use strict\";\n";
  List.iter
    (fun st ->
      emit_stmt ctx st;
      add ctx "\n")
    p.prog_body;
  Buffer.contents ctx.buf
