(** JavaScript source emission.

    [program_to_string] produces source that the [jsparse] parser parses
    back to an equivalent AST (round-tripping is property-tested).
    Emission is conservative with parentheses: a child expression is
    parenthesised whenever its precedence is not strictly higher than the
    context requires. *)

(** JS string-literal escaping (double-quoted form, without the quotes). *)
val escape_string : string -> string

(** The engine's number-to-source formatter: shortest round-tripping
    representation, integers without a decimal point, JS exponent style. *)
val print_num : float -> string

val is_valid_ident : string -> bool

val expr_to_string : Ast.expr -> string
val stmt_to_string : Ast.stmt -> string
val program_to_string : Ast.program -> string
