(* Deep rewriting over programs.

   [map_program] rebuilds a program bottom-up, applying [fe] to every
   expression and [fs] to every statement after their children have been
   rewritten. Node ids of untouched nodes are preserved, so coverage data
   and call-site ids stay valid across a rewrite that only replaces a
   subtree. The test-data generator and the reducer are both built on it. *)

open Ast

let rec map_expr ~fe ~fs (x : expr) : expr =
  let remap d = { x with e = d } in
  let x' =
    match x.e with
    | Lit _ | Ident _ | This -> x
    | Array_lit elems ->
        remap (Array_lit (List.map (Option.map (map_expr ~fe ~fs)) elems))
    | Object_lit props ->
        remap
          (Object_lit
             (List.map
                (fun (pn, v) ->
                  let pn =
                    match pn with
                    | PN_computed e -> PN_computed (map_expr ~fe ~fs e)
                    | pn -> pn
                  in
                  (pn, map_expr ~fe ~fs v))
                props))
    | Func f -> remap (Func (map_func ~fe ~fs f))
    | Arrow f -> remap (Arrow (map_func ~fe ~fs f))
    | Unary (op, a) -> remap (Unary (op, map_expr ~fe ~fs a))
    | Binary (op, a, b) ->
        remap (Binary (op, map_expr ~fe ~fs a, map_expr ~fe ~fs b))
    | Logical (op, a, b) ->
        remap (Logical (op, map_expr ~fe ~fs a, map_expr ~fe ~fs b))
    | Assign (op, a, b) ->
        remap (Assign (op, map_expr ~fe ~fs a, map_expr ~fe ~fs b))
    | Update (op, pre, a) -> remap (Update (op, pre, map_expr ~fe ~fs a))
    | Cond (c, t, f) ->
        remap (Cond (map_expr ~fe ~fs c, map_expr ~fe ~fs t, map_expr ~fe ~fs f))
    | Call (f, args) ->
        remap (Call (map_expr ~fe ~fs f, List.map (map_expr ~fe ~fs) args))
    | New (f, args) ->
        remap (New (map_expr ~fe ~fs f, List.map (map_expr ~fe ~fs) args))
    | Member (o, Pfield n) -> remap (Member (map_expr ~fe ~fs o, Pfield n))
    | Member (o, Pindex i) ->
        remap (Member (map_expr ~fe ~fs o, Pindex (map_expr ~fe ~fs i)))
    | Seq (a, b) -> remap (Seq (map_expr ~fe ~fs a, map_expr ~fe ~fs b))
    | Template parts ->
        remap
          (Template
             (List.map
                (function
                  | Tstr s -> Tstr s
                  | Tsub e -> Tsub (map_expr ~fe ~fs e))
                parts))
  in
  fe x'

and map_func ~fe ~fs (f : func) : func =
  { f with body = List.map (map_stmt ~fe ~fs) f.body }

and map_stmt ~fe ~fs (st : stmt) : stmt =
  let remap d = { st with s = d } in
  let e = map_expr ~fe ~fs in
  let s = map_stmt ~fe ~fs in
  let st' =
    match st.s with
    | Expr_stmt x -> remap (Expr_stmt (e x))
    | Var_decl (k, decls) ->
        remap (Var_decl (k, List.map (fun (n, i) -> (n, Option.map e i)) decls))
    | Func_decl f -> remap (Func_decl (map_func ~fe ~fs f))
    | Return x -> remap (Return (Option.map e x))
    | If (c, t, f) -> remap (If (e c, s t, Option.map s f))
    | Block body -> remap (Block (List.map s body))
    | For (init, c, upd, body) ->
        let init =
          Option.map
            (function
              | FI_decl (k, decls) ->
                  FI_decl (k, List.map (fun (n, i) -> (n, Option.map e i)) decls)
              | FI_expr x -> FI_expr (e x))
            init
        in
        remap (For (init, Option.map e c, Option.map e upd, s body))
    | For_in (k, n, o, body) -> remap (For_in (k, n, e o, s body))
    | For_of (k, n, o, body) -> remap (For_of (k, n, e o, s body))
    | While (c, body) -> remap (While (e c, s body))
    | Do_while (body, c) -> remap (Do_while (s body, e c))
    | Break _ | Continue _ | Empty | Debugger -> st
    | Throw x -> remap (Throw (e x))
    | Try (b, h, f) ->
        remap
          (Try
             ( List.map s b,
               Option.map (fun (p, hb) -> (p, List.map s hb)) h,
               Option.map (List.map s) f ))
    | Switch (d, cases) ->
        remap
          (Switch (e d, List.map (fun (c, body) -> (Option.map e c, List.map s body)) cases))
    | Labeled (l, inner) -> remap (Labeled (l, s inner))
  in
  fs st'

let map_program ?(fe = fun x -> x) ?(fs = fun s -> s) (p : program) : program =
  { p with prog_body = List.map (map_stmt ~fe ~fs) p.prog_body }

(* Replace the expression with node id [eid] by [replacement]. *)
let replace_expr (p : program) ~(eid : int) ~(replacement : expr) : program =
  map_program ~fe:(fun x -> if x.eid = eid then replacement else x) p

(* Replace the initializer of the first declaration of variable [name]. *)
let replace_var_init (p : program) ~(name : string) ~(init : expr) : program =
  let done_ = ref false in
  map_program
    ~fs:(fun st ->
      match st.s with
      | Var_decl (k, decls) when not !done_ ->
          let decls =
            List.map
              (fun (n, i) ->
                if n = name && not !done_ then begin
                  done_ := true;
                  (n, Some init)
                end
                else (n, i))
              decls
          in
          { st with s = Var_decl (k, decls) }
      | _ -> st)
    p
