(** Deep rewriting over programs.

    [map_program] rebuilds a program bottom-up, applying [fe] to every
    expression and [fs] to every statement after their children have been
    rewritten. Node ids of untouched nodes are preserved, so coverage data
    and call-site ids stay valid across a rewrite that only replaces a
    subtree. *)

val map_expr :
  fe:(Ast.expr -> Ast.expr) -> fs:(Ast.stmt -> Ast.stmt) -> Ast.expr -> Ast.expr

val map_stmt :
  fe:(Ast.expr -> Ast.expr) -> fs:(Ast.stmt -> Ast.stmt) -> Ast.stmt -> Ast.stmt

val map_program :
  ?fe:(Ast.expr -> Ast.expr) ->
  ?fs:(Ast.stmt -> Ast.stmt) ->
  Ast.program ->
  Ast.program

(** Replace the expression with node id [eid] by [replacement]. *)
val replace_expr : Ast.program -> eid:int -> replacement:Ast.expr -> Ast.program

(** Replace the initializer of the first declaration of variable [name]
    — the [var len = undefined] move of the paper's Figure 2. *)
val replace_var_init : Ast.program -> name:string -> init:Ast.expr -> Ast.program
