lib/jsinterp/builtins_array.ml: Array Builtins_util Float List Ops Quirk String Value
