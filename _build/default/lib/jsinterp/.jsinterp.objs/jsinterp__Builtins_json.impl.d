lib/jsinterp/builtins_json.ml: Array Buffer Builtins_util Char Float List Ops Printf Quirk String Value
