lib/jsinterp/builtins_number.ml: Builtins_util Char Float List Ops Printf Quirk String Value
