lib/jsinterp/builtins_object.ml: Array Builtins_util Float List Ops Option Printf Quirk String Value
