lib/jsinterp/builtins_regexp.ml: Array Builtins_string Builtins_util Float Ops Quirk Regex String Value
