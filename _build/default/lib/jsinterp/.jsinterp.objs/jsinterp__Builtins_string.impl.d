lib/jsinterp/builtins_string.ml: Array Buffer Builtins_util Char Float List Ops Quirk Regex String Value
