lib/jsinterp/builtins_typed.ml: Array Builtins_util Bytes Char Float Int64 List Ops Option Quirk String Value
