lib/jsinterp/builtins_util.ml: Float List Ops Value
