lib/jsinterp/coverage.ml: Ast Float Hashtbl Jsast List Visit
