lib/jsinterp/coverage.mli: Jsast
