lib/jsinterp/interp.ml: Buffer Coverage Float Hashtbl Int32 Jsast List Ops Option Printf Quirk Regex String Value
