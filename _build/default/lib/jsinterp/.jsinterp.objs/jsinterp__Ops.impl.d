lib/jsinterp/ops.ml: Array Buffer Char Float Int32 List Option Printf Quirk String Value
