lib/jsinterp/quirk.ml: List Stdlib
