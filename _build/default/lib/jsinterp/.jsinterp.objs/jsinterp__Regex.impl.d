lib/jsinterp/regex.ml: Array Char List Option Printf String
