lib/jsinterp/regex.mli:
