lib/jsinterp/run.ml: Buffer Builtins Coverage Hashtbl Interp Jsast Jsparse Ops Option Printf Quirk Value
