lib/jsinterp/run.mli: Coverage Jsparse Quirk
