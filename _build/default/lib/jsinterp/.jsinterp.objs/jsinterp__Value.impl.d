lib/jsinterp/value.ml: Buffer Coverage Hashtbl Jsast Jsparse List Quirk Regex
