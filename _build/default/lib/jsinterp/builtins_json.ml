(* The JSON object: stringify and parse. *)

open Value
open Builtins_util

let rec stringify ctx ?(indent = "") ?(cur = "") (v : value) : string option =
  match v with
  | Undefined ->
      if fire ctx Quirk.Q_json_stringify_undefined_string then Some "undefined"
      else None
  | Null -> Some "null"
  | Bool b -> Some (if b then "true" else "false")
  | Num f ->
      if Float.is_nan f || Float.abs f = Float.infinity then
        if fire ctx Quirk.Q_json_stringify_nan_literal then
          Some (Ops.number_to_string f)
        else Some "null"
      else Some (Ops.number_to_string f)
  | Str s -> Some (quote s)
  | Obj { call = Some _; _ } -> None
  | Obj ({ arr = Some a; _ }) ->
      let next = cur ^ indent in
      let sep, open_pad, close_pad =
        if indent = "" then (",", "", "")
        else (",\n" ^ next, "\n" ^ next, "\n" ^ cur)
      in
      let parts =
        List.map
          (fun el ->
            match stringify ctx ~indent ~cur:next el with
            | Some s -> s
            | None -> "null")
          (Array.to_list (Array.sub a.elems 0 (min a.alen (Array.length a.elems))))
      in
      if parts = [] then Some "[]"
      else Some ("[" ^ open_pad ^ String.concat sep parts ^ close_pad ^ "]")
  | Obj o -> (
      (* honour toJSON *)
      match Ops.get_obj ctx o "toJSON" with
      | Obj { call = Some _; _ } as fn ->
          stringify ctx ~indent ~cur (ctx.call_hook ctx fn (Obj o) [])
      | _ ->
          let next = cur ^ indent in
          let sep, colon, open_pad, close_pad =
            if indent = "" then (",", ":", "", "")
            else (",\n" ^ next, ": ", "\n" ^ next, "\n" ^ cur)
          in
          let parts =
            List.filter_map
              (fun k ->
                match stringify ctx ~indent ~cur:next (Ops.get_obj ctx o k) with
                | Some s -> Some (quote k ^ colon ^ s)
                | None -> None)
              (Ops.enum_keys ctx o)
          in
          if parts = [] then Some "{}"
          else Some ("{" ^ open_pad ^ String.concat sep parts ^ close_pad ^ "}"))

and quote (s : string) : string =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\x00' .. '\x1f' ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* recursive-descent JSON parser *)
type pstate = { src : string; mutable pos : int }

exception Bad_json of string

let parse ctx (src : string) : value =
  let allow_trailing_comma = fire ctx Quirk.Q_json_parse_trailing_comma in
  let st = { src; pos = 0 } in
  let peek () = if st.pos < String.length src then Some src.[st.pos] else None in
  let skip_ws () =
    while
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          st.pos <- st.pos + 1;
          true
      | _ -> false
    do
      ()
    done
  in
  let expect c =
    if peek () = Some c then st.pos <- st.pos + 1
    else raise (Bad_json (Printf.sprintf "expected '%c'" c))
  in
  let rec value () : value =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> Str (string ())
    | Some ('t' | 'f' | 'n') -> keyword ()
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> raise (Bad_json "unexpected character")
  and obj () =
    expect '{';
    let o = make_obj ~oclass:"Object" ~proto:(proto_of ctx "Object") () in
    skip_ws ();
    if peek () = Some '}' then (st.pos <- st.pos + 1; Obj o)
    else begin
      let rec members () =
        skip_ws ();
        (match peek () with
        | Some '}' when allow_trailing_comma -> ()
        | _ ->
            let k = string () in
            skip_ws ();
            expect ':';
            let v = value () in
            set_own o k (mkprop v);
            skip_ws ();
            if peek () = Some ',' then begin
              st.pos <- st.pos + 1;
              members ()
            end);
      in
      members ();
      skip_ws ();
      expect '}';
      Obj o
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then (st.pos <- st.pos + 1; Obj (Ops.make_array ctx []))
    else begin
      let items = ref [] in
      let rec elems () =
        skip_ws ();
        (match peek () with
        | Some ']' when allow_trailing_comma -> ()
        | _ ->
            items := value () :: !items;
            skip_ws ();
            if peek () = Some ',' then begin
              st.pos <- st.pos + 1;
              elems ()
            end)
      in
      elems ();
      skip_ws ();
      expect ']';
      Obj (Ops.make_array ctx (List.rev !items))
    end
  and string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> raise (Bad_json "unterminated string")
      | Some '"' -> st.pos <- st.pos + 1
      | Some '\\' ->
          st.pos <- st.pos + 1;
          (match peek () with
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some 'r' -> Buffer.add_char buf '\r'
          | Some 'b' -> Buffer.add_char buf '\b'
          | Some 'f' -> Buffer.add_char buf '\x0c'
          | Some 'u' ->
              if st.pos + 4 >= String.length src then raise (Bad_json "bad \\u");
              let hex = String.sub src (st.pos + 1) 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | Some v when v < 128 -> Buffer.add_char buf (Char.chr v)
              | Some _ -> Buffer.add_char buf '?'
              | None -> raise (Bad_json "bad \\u"));
              st.pos <- st.pos + 4
          | Some c -> Buffer.add_char buf c
          | None -> raise (Bad_json "unterminated escape"));
          st.pos <- st.pos + 1;
          loop ()
      | Some c ->
          Buffer.add_char buf c;
          st.pos <- st.pos + 1;
          loop ()
    in
    loop ();
    Buffer.contents buf
  and keyword () =
    let try_kw kw v =
      if
        st.pos + String.length kw <= String.length src
        && String.sub src st.pos (String.length kw) = kw
      then begin
        st.pos <- st.pos + String.length kw;
        Some v
      end
      else None
    in
    match try_kw "true" (Bool true) with
    | Some v -> v
    | None -> (
        match try_kw "false" (Bool false) with
        | Some v -> v
        | None -> (
            match try_kw "null" Null with
            | Some v -> v
            | None -> raise (Bad_json "bad keyword")))
  and number () =
    let start = st.pos in
    (if peek () = Some '-' then st.pos <- st.pos + 1);
    while
      match peek () with
      | Some ('0' .. '9' | '.' | 'e' | 'E' | '+' | '-') ->
          st.pos <- st.pos + 1;
          true
      | _ -> false
    do
      ()
    done;
    let text = String.sub src start (st.pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> raise (Bad_json "bad number")
  in
  let v = value () in
  skip_ws ();
  if st.pos <> String.length src then raise (Bad_json "trailing characters");
  v

let install ctx (json : obj) : unit =
  def_method ctx json "stringify" 3 (fun ctx _ args ->
      let indent =
        match arg 2 args with
        | Num f when f > 0.0 -> String.make (min 10 (Float.to_int f)) ' '
        | Str s -> s
        | _ -> ""
      in
      match stringify ctx ~indent (arg 0 args) with
      | Some s -> Str s
      | None -> Undefined);
  def_method ctx json "parse" 2 (fun ctx _ args ->
      let src = Ops.to_string ctx (arg 0 args) in
      match parse ctx src with
      | v -> v
      | exception Bad_json msg ->
          Ops.syntax_error ctx ("JSON.parse: " ^ msg))
