(* Number.prototype, Number statics, Math, and the numeric global
   functions. The Rhino toFixed bug (Listing 4) lives here. *)

open Value
open Builtins_util

let js_parse_int ctx (s : string) (radix : value) : float =
  let s = String.trim s in
  let sign, s =
    if s <> "" && s.[0] = '-' then (-1.0, String.sub s 1 (String.length s - 1))
    else if s <> "" && s.[0] = '+' then (1.0, String.sub s 1 (String.length s - 1))
    else (1.0, s)
  in
  let radix_n =
    match radix with Undefined -> 0 | v -> Float.to_int (Ops.to_integer ctx v)
  in
  let auto_hex =
    String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X')
  in
  let radix_n, s =
    if (radix_n = 0 || radix_n = 16) && auto_hex then
      if fire ctx Quirk.Q_parseint_no_hex_prefix then (10, s)
      else (16, String.sub s 2 (String.length s - 2))
    else if radix_n = 0 then (10, s)
    else (radix_n, s)
  in
  if radix_n < 2 || radix_n > 36 then Float.nan
  else begin
    let digit c =
      if c >= '0' && c <= '9' then Some (Char.code c - Char.code '0')
      else if c >= 'a' && c <= 'z' then Some (Char.code c - Char.code 'a' + 10)
      else if c >= 'A' && c <= 'Z' then Some (Char.code c - Char.code 'A' + 10)
      else None
    in
    let acc = ref 0.0 and seen = ref false and stop = ref false in
    String.iter
      (fun c ->
        if not !stop then
          match digit c with
          | Some d when d < radix_n ->
              seen := true;
              acc := (!acc *. Float.of_int radix_n) +. Float.of_int d
          | _ -> stop := true)
      s;
    if !seen then sign *. !acc else Float.nan
  end

let js_parse_float ctx (s : string) : float =
  let s = String.trim s in
  if fire ctx Quirk.Q_parsefloat_trailing_nan then
    (* buggy engine requires the whole string to be numeric *)
    Ops.string_to_number s
  else begin
    (* longest numeric prefix *)
    let n = String.length s in
    let best = ref Float.nan in
    (try
       for len = n downto 1 do
         let prefix = String.sub s 0 len in
         let v = Ops.string_to_number prefix in
         if (not (Float.is_nan v)) && String.trim prefix = prefix then begin
           best := v;
           raise Exit
         end
       done
     with Exit -> ());
    !best
  end

let install ctx (number_proto : obj) (number_ctor : obj) (math : obj) : unit =
  (* --- Number.prototype --- *)
  def_method ctx number_proto "toString" 1 (fun ctx this args ->
      let f = this_number ctx this in
      match arg 0 args with
      | Undefined -> Str (Ops.number_to_string f)
      | v ->
          let radix = Float.to_int (Ops.to_integer ctx v) in
          if radix = 10 then Str (Ops.number_to_string f)
          else if radix < 2 || radix > 36 then
            if fire ctx Quirk.Q_tostring_radix_no_rangeerror then
              Str (Ops.number_to_string f)
            else Ops.range_error ctx "toString() radix must be between 2 and 36"
          else Str (Ops.number_to_string_radix f radix));

  def_method ctx number_proto "valueOf" 0 (fun ctx this _ ->
      Num (this_number ctx this));

  (* Number.prototype.toFixed — ECMA-262 requires 0 <= digits <= 100
     (<= 20 before ES2018); Rhino (Listing 4) skips the check. *)
  def_method ctx number_proto "toFixed" 1 (fun ctx this args ->
      let f = this_number ctx this in
      let digits = Float.to_int (Ops.to_integer ctx (arg 0 args)) in
      if digits < 0 || digits > 100 then begin
        if fire ctx Quirk.Q_tofixed_no_rangeerror then
          (* the buggy path rounds to integer and drops the sign handling
             the way old Rhino did: print the truncated value *)
          Str (Ops.number_to_string (Float.trunc f))
        else Ops.range_error ctx "toFixed() digits argument must be between 0 and 100"
      end
      else if Float.is_nan f then Str "NaN"
      else if Float.abs f >= 1e21 then Str (Ops.number_to_string f)
      else Str (Printf.sprintf "%.*f" digits f));

  def_method ctx number_proto "toPrecision" 1 (fun ctx this args ->
      let f = this_number ctx this in
      match arg 0 args with
      | Undefined -> Str (Ops.number_to_string f)
      | v ->
          let p = Float.to_int (Ops.to_integer ctx v) in
          if p < 1 || p > 100 then
            if fire ctx Quirk.Q_toprecision_zero_accepted then
              Str (Ops.number_to_string f)
            else Ops.range_error ctx "toPrecision() argument must be between 1 and 100"
          else Str (Printf.sprintf "%.*g" p f));

  (* --- Number statics --- *)
  def_value number_ctor "MAX_SAFE_INTEGER" ~writable:false (num 9007199254740991.0);
  def_value number_ctor "MIN_SAFE_INTEGER" ~writable:false (num (-9007199254740991.0));
  def_value number_ctor "MAX_VALUE" ~writable:false (num Float.max_float);
  def_value number_ctor "MIN_VALUE" ~writable:false (num 5e-324);
  def_value number_ctor "EPSILON" ~writable:false (num epsilon_float);
  def_value number_ctor "POSITIVE_INFINITY" ~writable:false (num Float.infinity);
  def_value number_ctor "NEGATIVE_INFINITY" ~writable:false (num Float.neg_infinity);
  def_value number_ctor "NaN" ~writable:false (num Float.nan);

  def_method ctx number_ctor "isInteger" 1 (fun ctx _ args ->
      match arg 0 args with
      | Num f -> bool_ (Float.is_integer f)
      | v ->
          if fire ctx Quirk.Q_number_isinteger_coerces then
            let f = Ops.to_number ctx v in
            bool_ ((not (Float.is_nan f)) && Float.is_integer f)
          else bool_ false);

  def_method ctx number_ctor "isNaN" 1 (fun _ _ args ->
      match arg 0 args with Num f -> bool_ (Float.is_nan f) | _ -> bool_ false);

  def_method ctx number_ctor "isFinite" 1 (fun _ _ args ->
      match arg 0 args with
      | Num f -> bool_ (Float.is_finite f)
      | _ -> bool_ false);

  def_method ctx number_ctor "isSafeInteger" 1 (fun _ _ args ->
      match arg 0 args with
      | Num f -> bool_ (Float.is_integer f && Float.abs f <= 9007199254740991.0)
      | _ -> bool_ false);

  def_method ctx number_ctor "parseFloat" 1 (fun ctx _ args ->
      num (js_parse_float ctx (Ops.to_string ctx (arg 0 args))));
  def_method ctx number_ctor "parseInt" 2 (fun ctx _ args ->
      num (js_parse_int ctx (Ops.to_string ctx (arg 0 args)) (arg 1 args)));

  (* --- Math --- *)
  let unary name f =
    def_method ctx math name 1 (fun ctx _ args ->
        num (f (Ops.to_number ctx (arg 0 args))))
  in
  unary "abs" Float.abs;
  unary "floor" Float.floor;
  unary "ceil" Float.ceil;
  unary "trunc" Float.trunc;
  unary "sqrt" Float.sqrt;
  unary "cbrt" Float.cbrt;
  unary "sign" (fun f ->
      if Float.is_nan f then Float.nan
      else if f > 0.0 then 1.0
      else if f < 0.0 then -1.0
      else f);
  unary "round" (fun f ->
      (* JS rounds .5 toward +inf, unlike C round *)
      Float.floor (f +. 0.5));
  unary "log" Float.log;
  unary "log2" (fun f -> Float.log f /. Float.log 2.0);
  unary "log10" Float.log10;
  unary "exp" Float.exp;
  unary "sin" Float.sin;
  unary "cos" Float.cos;
  unary "tan" Float.tan;
  unary "atan" Float.atan;

  def_method ctx math "pow" 2 (fun ctx _ args ->
      num (Float.pow (Ops.to_number ctx (arg 0 args)) (Ops.to_number ctx (arg 1 args))));
  def_method ctx math "atan2" 2 (fun ctx _ args ->
      num (Float.atan2 (Ops.to_number ctx (arg 0 args)) (Ops.to_number ctx (arg 1 args))));
  def_method ctx math "max" 2 (fun ctx _ args ->
      match args with
      | [] -> num Float.neg_infinity
      | _ ->
          let ns = List.map (Ops.to_number ctx) args in
          if List.exists Float.is_nan ns then num Float.nan
          else num (List.fold_left Float.max Float.neg_infinity ns));
  def_method ctx math "min" 2 (fun ctx _ args ->
      match args with
      | [] -> num Float.infinity
      | _ ->
          let ns = List.map (Ops.to_number ctx) args in
          if List.exists Float.is_nan ns then num Float.nan
          else num (List.fold_left Float.min Float.infinity ns));
  def_method ctx math "hypot" 2 (fun ctx _ args ->
      let ns = List.map (Ops.to_number ctx) args in
      num (Float.sqrt (List.fold_left (fun acc x -> acc +. (x *. x)) 0.0 ns)));
  (* deterministic "random": differential testing needs identical outputs
     across testbeds, so every simulated engine shares this LCG seeded per
     run (real Comfort avoids Math.random in generated programs). *)
  let rand_state = ref 88172645463325252 in
  def_method ctx math "random" 0 (fun _ _ _ ->
      rand_state := ((!rand_state * 25214903917) + 11) land 0x3FFFFFFFFFFFF;
      num (Float.of_int !rand_state /. Float.of_int 0x3FFFFFFFFFFFF));

  def_value math "PI" ~writable:false (num Float.pi);
  def_value math "E" ~writable:false (num (Float.exp 1.0));
  def_value math "LN2" ~writable:false (num (Float.log 2.0));
  def_value math "LN10" ~writable:false (num (Float.log 10.0));
  def_value math "SQRT2" ~writable:false (num (Float.sqrt 2.0))
