(* String constructor and String.prototype.

   The substr implementation follows the ECMA-262 pseudo-code reproduced in
   the paper's Figure 1 step by step; the Rhino bug of Figure 2 is the
   [Q_substr_undefined_length_empty] deviation in step 6. *)

open Value
open Builtins_util

let clamp_index len i = max 0 (min len i)

let rec install ctx (string_proto : obj) : unit =
  let to_int ctx v = Float.to_int (max (-1e9) (min 1e9 (Ops.to_integer ctx v))) in

  def_method ctx string_proto "toString" 0 (fun ctx this _ ->
      match this with
      | Str _ -> this
      | Obj { prim = Some (Str s); _ } -> Str s
      | _ -> Ops.type_error ctx "String.prototype.toString requires a string");
  def_method ctx string_proto "valueOf" 0 (fun ctx this _ ->
      match this with
      | Str _ -> this
      | Obj { prim = Some (Str s); _ } -> Str s
      | _ -> Ops.type_error ctx "String.prototype.valueOf requires a string");

  def_method ctx string_proto "charAt" 1 (fun ctx this args ->
      let s = this_string ctx this in
      let i = to_int ctx (arg 0 args) in
      let i =
        if i < 0 && fire ctx Quirk.Q_charat_negative_wraps then
          String.length s + i
        else i
      in
      if i >= 0 && i < String.length s then Str (String.make 1 s.[i]) else Str "");

  def_method ctx string_proto "charCodeAt" 1 (fun ctx this args ->
      let s = this_string ctx this in
      let i = to_int ctx (arg 0 args) in
      if i >= 0 && i < String.length s then num (Float.of_int (Char.code s.[i]))
      else Num Float.nan);

  def_method ctx string_proto "indexOf" 1 (fun ctx this args ->
      let s = this_string ctx this in
      let search = Ops.to_string ctx (arg 0 args) in
      let from =
        if fire ctx Quirk.Q_string_indexof_fromindex_ignored then 0
        else clamp_index (String.length s) (to_int ctx (arg 1 args))
      in
      let n = String.length s and m = String.length search in
      let rec find i =
        if i + m > n then -1
        else if String.sub s i m = search then i
        else find (i + 1)
      in
      int_ (find from));

  def_method ctx string_proto "lastIndexOf" 1 (fun ctx this args ->
      let s = this_string ctx this in
      let search = Ops.to_string ctx (arg 0 args) in
      let n = String.length s and m = String.length search in
      let posv = arg 1 args in
      let posn = Ops.to_number ctx posv in
      let start =
        if Float.is_nan posn then
          if fire ctx Quirk.Q_lastindexof_nan_zero then 0 else n
        else clamp_index n (Float.to_int (max (-1e9) (min 1e9 posn)))
      in
      let rec find i =
        if i < 0 then -1
        else if i + m <= n && String.sub s i m = search then i
        else find (i - 1)
      in
      int_ (find (min start (n - m) |> max (-1))));

  def_method ctx string_proto "includes" 1 (fun ctx this args ->
      let s = this_string ctx this in
      let search = Ops.to_string ctx (arg 0 args) in
      let from = clamp_index (String.length s) (to_int ctx (arg 1 args)) in
      let n = String.length s and m = String.length search in
      let rec find i =
        if i + m > n then false
        else String.sub s i m = search || find (i + 1)
      in
      bool_ (find from));

  def_method ctx string_proto "startsWith" 1 (fun ctx this args ->
      let s = this_string ctx this in
      let search = Ops.to_string ctx (arg 0 args) in
      let pos =
        if fire ctx Quirk.Q_startswith_position_ignored then 0
        else clamp_index (String.length s) (to_int ctx (arg 1 args))
      in
      let m = String.length search in
      bool_ (pos + m <= String.length s && String.sub s pos m = search));

  def_method ctx string_proto "endsWith" 1 (fun ctx this args ->
      let s = this_string ctx this in
      let search = Ops.to_string ctx (arg 0 args) in
      let endpos =
        match arg 1 args with
        | Undefined -> String.length s
        | v -> clamp_index (String.length s) (to_int ctx v)
      in
      let m = String.length search in
      bool_ (endpos - m >= 0 && String.sub s (endpos - m) m = search));

  def_method ctx string_proto "slice" 2 (fun ctx this args ->
      let s = this_string ctx this in
      let n = String.length s in
      let resolve v dflt =
        match v with
        | Undefined -> dflt
        | v ->
            let i = to_int ctx v in
            if i < 0 then
              if fire ctx Quirk.Q_slice_negative_start_zero then 0
              else max 0 (n + i)
            else min i n
      in
      let a = resolve (arg 0 args) 0 in
      let b = resolve (arg 1 args) n in
      if a < b then Str (String.sub s a (b - a)) else Str "");

  def_method ctx string_proto "substring" 2 (fun ctx this args ->
      let s = this_string ctx this in
      let n = String.length s in
      let resolve v dflt =
        match v with Undefined -> dflt | v -> clamp_index n (to_int ctx v)
      in
      let a = resolve (arg 0 args) 0 in
      let b = resolve (arg 1 args) n in
      let lo = min a b and hi = max a b in
      Str (String.sub s lo (hi - lo)));

  (* String.prototype.substr(start, length) — Figure 1 of the paper. *)
  def_method ctx string_proto "substr" 2 (fun ctx this args ->
      let s = this_string ctx this in
      let size = String.length s in
      let int_start = Ops.to_integer ctx (arg 0 args) in
      let end_ =
        match arg 1 args with
        | Undefined ->
            (* step 6: if length is undefined, let end be +inf. The Rhino
               bug treats it as 0, yielding the empty string. *)
            if fire ctx Quirk.Q_substr_undefined_length_empty then 0.0
            else Float.infinity
        | v -> Ops.to_integer ctx v
      in
      let int_start =
        if int_start < 0.0 then Float.max (Float.of_int size +. int_start) 0.0
        else int_start
      in
      let int_start = Float.to_int (Float.min int_start (Float.of_int size)) in
      let result_length =
        Float.min (Float.max end_ 0.0) (Float.of_int (size - int_start))
      in
      if result_length <= 0.0 then Str ""
      else Str (String.sub s int_start (Float.to_int result_length)));

  def_method ctx string_proto "concat" 1 (fun ctx this args ->
      let s = this_string ctx this in
      Str (List.fold_left (fun acc a -> acc ^ Ops.to_string ctx a) s args));

  def_method ctx string_proto "toUpperCase" 0 (fun ctx this _ ->
      Str (String.uppercase_ascii (this_string ctx this)));
  def_method ctx string_proto "toLowerCase" 0 (fun ctx this _ ->
      Str (String.lowercase_ascii (this_string ctx this)));

  def_method ctx string_proto "trim" 0 (fun ctx this _ ->
      let s = this_string ctx this in
      let is_ws c =
        c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '\x0c'
        || (c = '\x0b' && not (fire ctx Quirk.Q_trim_missing_vt))
      in
      let n = String.length s in
      let a = ref 0 and b = ref n in
      while !a < n && is_ws s.[!a] do incr a done;
      while !b > !a && is_ws s.[!b - 1] do decr b done;
      Str (String.sub s !a (!b - !a)));

  def_method ctx string_proto "repeat" 1 (fun ctx this args ->
      let s = this_string ctx this in
      let n = Ops.to_integer ctx (arg 0 args) in
      if n < 0.0 || n = Float.infinity then
        if fire ctx Quirk.Q_repeat_negative_empty then Str ""
        else Ops.range_error ctx "invalid count value"
      else begin
        let n = Float.to_int n in
        if n * String.length s > 100_000_000 then
          Ops.range_error ctx "repeat count too large";
        burn ctx (n * String.length s / 16);
        let buf = Buffer.create (n * String.length s) in
        for _ = 1 to n do Buffer.add_string buf s done;
        Str (Buffer.contents buf)
      end);

  let pad ~at_start ctx this args =
    let s = this_string ctx this in
    let target = to_int ctx (arg 0 args) in
    let filler =
      match arg 1 args with Undefined -> " " | v -> Ops.to_string ctx v
    in
    if target <= String.length s then
      if at_start && target > 0 && target < String.length s
         && fire ctx Quirk.Q_padstart_overlong_truncates
      then Str (String.sub s 0 target)
      else Str s
    else if filler = "" then Str s
    else begin
      let need = target - String.length s in
      (* ECMA-262 bounds string length at 2^53-1 but real engines throw
         far earlier; model the memory with fuel and a hard cap *)
      if need > 50_000_000 then Ops.range_error ctx "Invalid string length";
      burn ctx (need / 16 + 1);
      let buf = Buffer.create need in
      while Buffer.length buf < need do
        Buffer.add_string buf filler
      done;
      let padding = String.sub (Buffer.contents buf) 0 need in
      Str (if at_start then padding ^ s else s ^ padding)
    end
  in
  def_method ctx string_proto "padStart" 1 (pad ~at_start:true);
  def_method ctx string_proto "padEnd" 1 (pad ~at_start:false);

  (* split: string or regexp separator *)
  def_method ctx string_proto "split" 2 (fun ctx this args ->
      let s = this_string ctx this in
      let limit =
        match arg 1 args with
        | Undefined -> max_int
        | v -> Float.to_int (Ops.to_uint32 ctx v)
      in
      let pieces =
        match arg 0 args with
        | Undefined -> [ s ]
        | Obj ({ regex = Some rd; _ }) ->
            let sem = regex_semantics ctx in
            let anchor_bug =
              has_leading_anchor rd.rx_prog
              && Regex.exec ~sem rd.rx_prog s 0 = None
              && fire ctx Quirk.Q_split_regexp_anchor_bug
            in
            if anchor_bug then begin
              (* the buggy engine drops the anchor, splits, and discards the
                 trailing empty piece: "anA".split(/^A/) -> ["an"] *)
              let prog_noanchor = strip_leading_anchor rd.rx_prog in
              let ps = regex_split ctx ~sem prog_noanchor s in
              let rec drop_trailing_empty = function
                | [] -> []
                | [ "" ] -> []
                | x :: tl -> x :: drop_trailing_empty tl
              in
              drop_trailing_empty ps
            end
            else regex_split ctx ~sem rd.rx_prog s
        | sep -> (
            let sep = Ops.to_string ctx sep in
            if sep = "" then List.init (String.length s) (fun i -> String.make 1 s.[i])
            else
              let rec go acc start =
                match find_sub s sep start with
                | Some i -> go (String.sub s start (i - start) :: acc) (i + String.length sep)
                | None -> List.rev (String.sub s start (String.length s - start) :: acc)
              in
              go [] 0)
      in
      let pieces =
        if limit = max_int then pieces
        else List.filteri (fun i _ -> i < limit) pieces
      in
      Obj (Ops.make_array ctx (List.map str pieces)));

  (* replace: first-match only (String.prototype.replace) *)
  def_method ctx string_proto "replace" 2 (fun ctx this args ->
      let s = this_string ctx this in
      let apply_repl ~matched ~offset ~groups =
        match arg 1 args with
        | Obj { call = Some _; _ } as fn ->
            let call_args =
              if fire ctx Quirk.Q_replace_fn_missing_offset then [ Str matched ]
              else
                Str matched
                :: (List.map (fun g -> match g with Some g -> Str g | None -> Undefined) groups
                   @ [ int_ offset; Str s ])
            in
            Ops.to_string ctx (ctx.call_hook ctx fn Undefined call_args)
        | v ->
            let repl = Ops.to_string ctx v in
            if fire ctx Quirk.Q_replace_dollar_group_literal then repl
            else expand_replacement repl ~matched ~offset ~subject:s ~groups
      in
      match arg 0 args with
      | Obj ({ regex = Some rd; _ }) -> (
          let sem = regex_semantics ctx in
          let global = rd.rx_prog.Regex.flag_g in
          let buf = Buffer.create (String.length s) in
          let rec go pos count =
            if pos > String.length s then ()
            else
              match Regex.exec ~sem rd.rx_prog s pos with
              | Some m when count = 0 || global ->
                  Buffer.add_string buf (String.sub s pos (m.Regex.m_start - pos));
                  let matched = String.sub s m.Regex.m_start (m.Regex.m_end - m.Regex.m_start) in
                  let groups =
                    Array.to_list
                      (Array.map
                         (function
                           | Some (a, b) -> Some (String.sub s a (b - a))
                           | None -> None)
                         m.Regex.m_groups)
                  in
                  Buffer.add_string buf
                    (apply_repl ~matched ~offset:m.Regex.m_start ~groups);
                  let next =
                    if m.Regex.m_end = m.Regex.m_start then begin
                      if m.Regex.m_end < String.length s then
                        Buffer.add_char buf s.[m.Regex.m_end];
                      m.Regex.m_end + 1
                    end
                    else m.Regex.m_end
                  in
                  if global then go next (count + 1)
                  else
                    Buffer.add_string buf
                      (String.sub s next (String.length s - next))
              | _ ->
                  Buffer.add_string buf (String.sub s pos (String.length s - pos))
          in
          go 0 0;
          Str (Buffer.contents buf))
      | Undefined when fire ctx Quirk.Q_replace_undefined_search_noop ->
          (* the search value should be coerced to "undefined" and looked
             up; this engine bails out and returns the subject unchanged *)
          Str s
      | search_v -> (
          let search = Ops.to_string ctx search_v in
          if search = "" then
            if fire ctx Quirk.Q_replace_empty_pattern_skips then Str s
            else Str (apply_repl ~matched:"" ~offset:0 ~groups:[] ^ s)
          else
            match find_sub s search 0 with
            | None -> Str s
            | Some i ->
                Str
                  (String.sub s 0 i
                  ^ apply_repl ~matched:search ~offset:i ~groups:[]
                  ^ String.sub s (i + String.length search)
                      (String.length s - i - String.length search))));

  def_method ctx string_proto "match" 1 (fun ctx this args ->
      let s = this_string ctx this in
      match arg 0 args with
      | Obj ({ regex = Some rd; _ }) ->
          let sem = regex_semantics ctx in
          if rd.rx_prog.Regex.flag_g then begin
            let rec go acc pos =
              if pos > String.length s then List.rev acc
              else
                match Regex.exec ~sem rd.rx_prog s pos with
                | Some m ->
                    let matched = String.sub s m.Regex.m_start (m.Regex.m_end - m.Regex.m_start) in
                    let next = if m.Regex.m_end = m.Regex.m_start then pos + 1 else m.Regex.m_end in
                    go (Str matched :: acc) next
                | None -> List.rev acc
            in
            match go [] 0 with
            | [] -> Null
            | ms -> Obj (Ops.make_array ctx ms)
          end
          else (
            match Regex.exec ~sem rd.rx_prog s 0 with
            | None -> Null
            | Some m ->
                let matched = String.sub s m.Regex.m_start (m.Regex.m_end - m.Regex.m_start) in
                let groups =
                  Array.to_list
                    (Array.map
                       (function
                         | Some (a, b) -> Str (String.sub s a (b - a))
                         | None -> Undefined)
                       m.Regex.m_groups)
                in
                let res = Ops.make_array ctx (Str matched :: groups) in
                set_own res "index" (mkprop (int_ m.Regex.m_start));
                set_own res "input" (mkprop (Str s));
                Obj res)
      | v ->
          (* non-regexp: coerced to a regexp source *)
          let pat = Ops.to_string ctx v in
          let quoted = quote_regex pat in
          (match Regex.compile quoted "" with
          | prog -> (
              match Regex.exec prog s 0 with
              | None -> Null
              | Some m ->
                  let matched = String.sub s m.Regex.m_start (m.Regex.m_end - m.Regex.m_start) in
                  Obj (Ops.make_array ctx [ Str matched ]))
          | exception Regex.Parse_error _ -> Null));

  def_method ctx string_proto "search" 1 (fun ctx this args ->
      let s = this_string ctx this in
      match arg 0 args with
      | Obj ({ regex = Some rd; _ }) -> (
          let sem = regex_semantics ctx in
          match Regex.exec ~sem rd.rx_prog s 0 with
          | Some m -> int_ m.Regex.m_start
          | None -> int_ (-1))
      | _ -> int_ (-1));

  def_method ctx string_proto "normalize" 0 (fun ctx this args ->
      let s = this_string ctx this in
      (* QuickJS memory-safety bug (Listing 9) *)
      if s = "" && args <> [] && fire ctx Quirk.Q_normalize_empty_crash then
        raise (Engine_crash "String.prototype.normalize heap corruption");
      let form =
        match arg 0 args with Undefined -> "NFC" | v -> Ops.to_string ctx v
      in
      if not (List.mem form [ "NFC"; "NFD"; "NFKC"; "NFKD" ]) then
        Ops.range_error ctx "invalid normalization form"
      else Str s (* ASCII corpus: all forms are the identity *));

  (* legacy annex-B method; the CodeAlchemist-found Rhino bug lives here *)
  def_method ctx string_proto "big" 0 (fun ctx this _ ->
      match this with
      | Undefined | Null ->
          if fire ctx Quirk.Q_string_big_null_no_typeerror then
            Str ("<big>" ^ Ops.to_string ctx this ^ "</big>")
          else
            Ops.type_error ctx "String.prototype.big called on null or undefined"
      | v -> Str ("<big>" ^ Ops.to_string ctx v ^ "</big>"));

  def_method ctx string_proto "codePointAt" 1 (fun ctx this args ->
      let s = this_string ctx this in
      let i = to_int ctx (arg 0 args) in
      if i >= 0 && i < String.length s then num (Float.of_int (Char.code s.[i]))
      else Undefined);

  def_method ctx string_proto "at" 1 (fun ctx this args ->
      let s = this_string ctx this in
      let i = to_int ctx (arg 0 args) in
      let i = if i < 0 then String.length s + i else i in
      if i >= 0 && i < String.length s then Str (String.make 1 s.[i]) else Undefined)

(* The replace builtin needs an early return for the undefined-search
   quirk; OCaml exceptions keep the code flat. *)
and regex_semantics ctx : Regex.semantics =
  {
    Regex.dot_matches_newline = fire ctx Quirk.Q_regex_dot_matches_newline;
    ignorecase_broken = fire ctx Quirk.Q_regex_ignorecase_broken;
    class_negation_broken = fire ctx Quirk.Q_regex_class_negation_broken;
  }

and has_leading_anchor (p : Regex.prog) : bool =
  match p.Regex.nodes with
  | [ Regex.Alt alts ] ->
      List.exists (function Regex.Start :: _ -> true | _ -> false) alts
  | Regex.Start :: _ -> true
  | _ -> false

and strip_leading_anchor (p : Regex.prog) : Regex.prog =
  let strip_seq = function Regex.Start :: rest -> rest | seq -> seq in
  let nodes =
    match p.Regex.nodes with
    | [ Regex.Alt alts ] -> [ Regex.Alt (List.map strip_seq alts) ]
    | nodes -> strip_seq nodes
  in
  { p with Regex.nodes }

and regex_split ctx ~sem (prog : Regex.prog) (s : string) : string list =
  ignore ctx;
  let n = String.length s in
  let rec go acc start pos =
    if pos > n then List.rev (String.sub s start (n - start) :: acc)
    else
      match Regex.exec ~sem prog s pos with
      | Some m when m.Regex.m_end > m.Regex.m_start || m.Regex.m_start > start ->
          if m.Regex.m_start >= n then
            List.rev (String.sub s start (n - start) :: acc)
          else
            go
              (String.sub s start (m.Regex.m_start - start) :: acc)
              m.Regex.m_end
              (max m.Regex.m_end (m.Regex.m_start + 1))
      | Some m ->
          (* empty match at current position: step forward *)
          ignore m;
          go acc start (pos + 1)
      | None -> List.rev (String.sub s start (n - start) :: acc)
  in
  if n = 0 then (
    match Regex.exec ~sem prog s 0 with Some _ -> [] | None -> [ "" ])
  else go [] 0 0

and find_sub (s : string) (sub : string) (from : int) : int option =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1)
  in
  go (max 0 from)

and expand_replacement (repl : string) ~matched ~offset ~subject ~groups : string =
  let buf = Buffer.create (String.length repl) in
  let n = String.length repl in
  let i = ref 0 in
  while !i < n do
    if repl.[!i] = '$' && !i + 1 < n then begin
      (match repl.[!i + 1] with
      | '$' -> Buffer.add_char buf '$'
      | '&' -> Buffer.add_string buf matched
      | '`' -> Buffer.add_string buf (String.sub subject 0 offset)
      | '\'' ->
          Buffer.add_string buf
            (String.sub subject (offset + String.length matched)
               (String.length subject - offset - String.length matched))
      | '1' .. '9' as c ->
          let g = Char.code c - Char.code '0' in
          (match List.nth_opt groups (g - 1) with
          | Some (Some g) -> Buffer.add_string buf g
          | Some None -> ()
          | None ->
              Buffer.add_char buf '$';
              Buffer.add_char buf c)
      | c ->
          Buffer.add_char buf '$';
          Buffer.add_char buf c);
      i := !i + 2
    end
    else begin
      Buffer.add_char buf repl.[!i];
      incr i
    end
  done;
  Buffer.contents buf

and quote_regex (s : string) : string =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if String.contains "\\^$.|?*+()[]{}/" c then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf
