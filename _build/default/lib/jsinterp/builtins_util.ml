(* Helpers shared by all builtin modules. *)

open Value

let arg n args = match List.nth_opt args n with Some v -> v | None -> Undefined

let nargs = List.length

(* Define a native method [name] on object [o]. Builtin methods are
   writable+configurable but not enumerable, per ECMA-262. *)
let def_method ctx (o : obj) (name : string) (arity : int)
    (impl : ctx -> value -> value list -> value) : unit =
  let f = make_obj ~oclass:"Function" ~proto:(proto_of ctx "Function") () in
  f.call <- Some (Native (name, arity, impl));
  set_own f "length"
    (mkprop ~writable:false ~enumerable:false (Num (Float.of_int arity)));
  set_own f "name" (mkprop ~writable:false ~enumerable:false (Str name));
  set_own o name (mkprop ~enumerable:false (Obj f))

(* A bare native function value. *)
let make_native ctx (name : string) (arity : int)
    (impl : ctx -> value -> value list -> value) : obj =
  let f = make_obj ~oclass:"Function" ~proto:(proto_of ctx "Function") () in
  f.call <- Some (Native (name, arity, impl));
  set_own f "length"
    (mkprop ~writable:false ~enumerable:false (Num (Float.of_int arity)));
  set_own f "name" (mkprop ~writable:false ~enumerable:false (Str name));
  f

let def_value (o : obj) (name : string) ?(writable = true) ?(enumerable = false)
    ?(configurable = true) (v : value) : unit =
  set_own o name (mkprop ~writable ~enumerable ~configurable v)

(* Coerce [this] for String.prototype methods (CheckObjectCoercible +
   ToString). *)
let this_string ctx (this : value) : string =
  match this with
  | Undefined | Null ->
      Ops.type_error ctx "String.prototype method called on null or undefined"
  | v -> Ops.to_string ctx v

let this_number ctx (this : value) : float =
  match this with
  | Num f -> f
  | Obj { prim = Some (Num f); _ } -> f
  | _ -> Ops.type_error ctx "Number.prototype method called on a non-number"

(* [this] for Array.prototype generics: any object. *)
let this_object ctx (this : value) : obj =
  match this with
  | Obj o -> o
  | Undefined | Null -> Ops.type_error ctx "method called on null or undefined"
  | prim -> Ops.to_object ctx prim

let str v = Str v
let num f = Num f
let int_ i = Num (Float.of_int i)
let bool_ b = Bool b
