(* Execution coverage recorder (Istanbul substitute, §5.3.3).

   Tracks, per test program, which statement nodes executed, which branch
   arms were taken and which functions were entered. AST node ids (assigned
   by [Jsast.Builder]) identify locations; denominators come from the static
   counts in [Jsast.Visit]. *)

type t = {
  stmts : (int, unit) Hashtbl.t;        (* sid *)
  branches : (int * int, unit) Hashtbl.t;  (* node id, arm index *)
  funcs : (int, unit) Hashtbl.t;        (* node id of Func/Arrow/Func_decl *)
}

let create () =
  { stmts = Hashtbl.create 64; branches = Hashtbl.create 32; funcs = Hashtbl.create 8 }

let record_stmt t sid = Hashtbl.replace t.stmts sid ()
let record_branch t id arm = Hashtbl.replace t.branches (id, arm) ()
let record_func t id = Hashtbl.replace t.funcs id ()

type summary = {
  stmt_covered : int;
  stmt_total : int;
  branch_covered : int;
  branch_total : int;
  func_covered : int;
  func_total : int;
}

let ratio num den = if den = 0 then 1.0 else Float.of_int num /. Float.of_int den

(* Only count locations that belong to [prog]: code executed through [eval]
   is parsed at run time with fresh node ids and must not inflate the test
   program's own coverage. *)
let summarize (t : t) (prog : Jsast.Ast.program) : summary =
  let open Jsast in
  let stmt_ids = Hashtbl.create 64 in
  let branch_keys = Hashtbl.create 64 in
  let func_ids = Hashtbl.create 16 in
  Visit.iter_program
    ~fe:(fun x ->
      match x.Ast.e with
      | Ast.Cond _ | Ast.Logical _ ->
          Hashtbl.replace branch_keys (x.Ast.eid, 0) ();
          Hashtbl.replace branch_keys (x.Ast.eid, 1) ()
      | Ast.Func _ | Ast.Arrow _ -> Hashtbl.replace func_ids x.Ast.eid ()
      | _ -> ())
    ~fs:(fun st ->
      Hashtbl.replace stmt_ids st.Ast.sid ();
      match st.Ast.s with
      | Ast.If _ | Ast.While _ | Ast.Do_while _ | Ast.For _ | Ast.For_in _
      | Ast.For_of _ ->
          Hashtbl.replace branch_keys (st.Ast.sid, 0) ();
          Hashtbl.replace branch_keys (st.Ast.sid, 1) ()
      | Ast.Switch (_, cases) ->
          List.iteri (fun i _ -> Hashtbl.replace branch_keys (st.Ast.sid, i) ()) cases
      | Ast.Func_decl _ -> Hashtbl.replace func_ids st.Ast.sid ()
      | _ -> ())
    prog;
  let count_in recorded universe =
    Hashtbl.fold
      (fun k () acc -> if Hashtbl.mem universe k then acc + 1 else acc)
      recorded 0
  in
  {
    stmt_covered = count_in t.stmts stmt_ids;
    stmt_total = Hashtbl.length stmt_ids;
    branch_covered = count_in t.branches branch_keys;
    branch_total = Hashtbl.length branch_keys;
    func_covered = count_in t.funcs func_ids;
    func_total = Hashtbl.length func_ids;
  }

let stmt_ratio s = ratio s.stmt_covered s.stmt_total
let branch_ratio s = ratio s.branch_covered s.branch_total
let func_ratio s = ratio s.func_covered s.func_total
