(** Execution coverage recorder (Istanbul substitute, paper §5.3.3).

    Tracks which statement nodes executed, which branch arms were taken and
    which functions were entered, keyed by the AST node ids assigned at
    construction time. Code evaluated through [eval] at run time does not
    count towards the test program's own coverage. *)

type t

val create : unit -> t

val record_stmt : t -> int -> unit
val record_branch : t -> int -> int -> unit
val record_func : t -> int -> unit

type summary = {
  stmt_covered : int;
  stmt_total : int;
  branch_covered : int;
  branch_total : int;
  func_covered : int;
  func_total : int;
}

(** Intersect the recorder with the program's own locations. *)
val summarize : t -> Jsast.Ast.program -> summary

val stmt_ratio : summary -> float
val branch_ratio : summary -> float
val func_ratio : summary -> float
