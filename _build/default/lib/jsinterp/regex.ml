(* Miniature JavaScript regular-expression engine.

   A backtracking matcher over a small AST, supporting the constructs the
   test corpus uses: literals, [.], character classes with ranges and
   negation, the escapes [\d \D \w \W \s \S \n \t \r \b(class only)],
   anchors [^ $], alternation, capturing and non-capturing groups, and the
   quantifiers [* + ? {m} {m,} {m,n}] with lazy variants.

   JS regex semantics differ from POSIX/[Re] in backtracking order and
   capture reset rules, which is why this is hand-built rather than mapped
   onto the [re] library. The engine-deviation knobs ([semantics]) let a
   simulated engine's regex component misbehave (Fig. 7's "Regex Engine"
   bug class). *)

type node =
  | Char of char
  | Any                                  (* . *)
  | Class of bool * (char * char) list   (* negated?, ranges *)
  | Start                                (* ^ *)
  | End                                  (* $ *)
  | Group of int option * node list      (* capture index or None *)
  | Alt of node list list
  | Repeat of node * int * int option * bool  (* node, min, max, greedy *)

type prog = {
  nodes : node list;
  ngroups : int;
  flag_g : bool;
  flag_i : bool;
  flag_m : bool;
}

(* Deviation knobs consulted at match time. *)
type semantics = {
  dot_matches_newline : bool;   (* quirk: [.] matches '\n' without /s *)
  ignorecase_broken : bool;     (* quirk: /i treated as case-sensitive *)
  class_negation_broken : bool; (* quirk: [^...] behaves as [...] *)
}

let standard_semantics =
  { dot_matches_newline = false; ignorecase_broken = false; class_negation_broken = false }

exception Parse_error of string

(* --- pattern parser --- *)

type pstate = { src : string; mutable pos : int; mutable ngroups : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None
let advance st = st.pos <- st.pos + 1

let digit_ranges = [ ('0', '9') ]
let word_ranges = [ ('a', 'z'); ('A', 'Z'); ('0', '9'); ('_', '_') ]
let space_ranges =
  [ (' ', ' '); ('\t', '\t'); ('\n', '\n'); ('\r', '\r'); ('\x0b', '\x0c') ]

let parse_escape st : node =
  match peek st with
  | None -> raise (Parse_error "trailing backslash")
  | Some c ->
      advance st;
      (match c with
      | 'd' -> Class (false, digit_ranges)
      | 'D' -> Class (true, digit_ranges)
      | 'w' -> Class (false, word_ranges)
      | 'W' -> Class (true, word_ranges)
      | 's' -> Class (false, space_ranges)
      | 'S' -> Class (true, space_ranges)
      | 'n' -> Char '\n'
      | 't' -> Char '\t'
      | 'r' -> Char '\r'
      | 'f' -> Char '\x0c'
      | 'v' -> Char '\x0b'
      | '0' -> Char '\x00'
      | 'x' ->
          if st.pos + 2 > String.length st.src then
            raise (Parse_error "bad \\x escape");
          let hex = String.sub st.src st.pos 2 in
          st.pos <- st.pos + 2;
          (match int_of_string_opt ("0x" ^ hex) with
          | Some v -> Char (Char.chr (v land 0xff))
          | None -> raise (Parse_error "bad \\x escape"))
      | c -> Char c)

let parse_class st : node =
  (* '[' already consumed *)
  let negated = peek st = Some '^' in
  if negated then advance st;
  let ranges = ref [] in
  let rec loop () =
    match peek st with
    | None -> raise (Parse_error "unterminated character class")
    | Some ']' -> advance st
    | Some '\\' ->
        advance st;
        (match parse_escape st with
        | Char c -> push_range c
        | Class (false, rs) ->
            ranges := rs @ !ranges;
            loop ()
        | Class (true, _) ->
            (* negated shorthand inside a class: approximate with full range
               minus nothing (rare in corpus); accept as any-char *)
            ranges := [ ('\x00', '\xff') ] @ !ranges;
            loop ()
        | _ -> raise (Parse_error "bad escape in class"))
    | Some c ->
        advance st;
        push_range c
  and push_range lo =
    match (peek st, st.pos + 1 < String.length st.src) with
    | Some '-', true when st.src.[st.pos + 1] <> ']' ->
        advance st;
        (match peek st with
        | Some '\\' ->
            advance st;
            (match parse_escape st with
            | Char hi ->
                ranges := (lo, hi) :: !ranges;
                loop ()
            | _ -> raise (Parse_error "bad range bound"))
        | Some hi ->
            advance st;
            if hi < lo then raise (Parse_error "range out of order");
            ranges := (lo, hi) :: !ranges;
            loop ()
        | None -> raise (Parse_error "unterminated class"))
    | _ ->
        ranges := (lo, lo) :: !ranges;
        loop ()
  in
  loop ();
  Class (negated, List.rev !ranges)

let rec parse_alt st : node =
  let first = parse_seq st in
  if peek st = Some '|' then begin
    let alts = ref [ first ] in
    while peek st = Some '|' do
      advance st;
      alts := parse_seq st :: !alts
    done;
    Alt (List.rev !alts)
  end
  else Alt [ first ]

and parse_seq st : node list =
  let items = ref [] in
  let rec loop () =
    match peek st with
    | None | Some '|' | Some ')' -> ()
    | Some _ ->
        items := parse_quantified st :: !items;
        loop ()
  in
  loop ();
  List.rev !items

and parse_quantified st : node =
  let atom = parse_atom st in
  let quant =
    match peek st with
    | Some '*' ->
        advance st;
        Some (0, None)
    | Some '+' ->
        advance st;
        Some (1, None)
    | Some '?' ->
        advance st;
        Some (0, Some 1)
    | Some '{' -> (
        (* try {m}, {m,}, {m,n}; otherwise literal '{' was the atom *)
        let save = st.pos in
        advance st;
        let num () =
          let start = st.pos in
          while (match peek st with Some ('0' .. '9') -> true | _ -> false) do
            advance st
          done;
          if st.pos = start then None
          else Some (int_of_string (String.sub st.src start (st.pos - start)))
        in
        match num () with
        | None ->
            st.pos <- save;
            None
        | Some m -> (
            match peek st with
            | Some '}' ->
                advance st;
                Some (m, Some m)
            | Some ',' -> (
                advance st;
                match (num (), peek st) with
                | None, Some '}' ->
                    advance st;
                    Some (m, None)
                | Some n, Some '}' ->
                    advance st;
                    if n < m then raise (Parse_error "bad repetition range");
                    Some (m, Some n)
                | _ ->
                    st.pos <- save;
                    None)
            | _ ->
                st.pos <- save;
                None))
    | _ -> None
  in
  match quant with
  | None -> atom
  | Some (min, max) ->
      (match atom with
      | Start | End -> raise (Parse_error "nothing to repeat")
      | _ -> ());
      let greedy =
        if peek st = Some '?' then (
          advance st;
          false)
        else true
      in
      Repeat (atom, min, max, greedy)

and parse_atom st : node =
  match peek st with
  | None -> raise (Parse_error "unexpected end of pattern")
  | Some '(' ->
      advance st;
      let capture =
        if
          st.pos + 1 < String.length st.src
          && st.src.[st.pos] = '?'
          && st.src.[st.pos + 1] = ':'
        then begin
          st.pos <- st.pos + 2;
          None
        end
        else begin
          st.ngroups <- st.ngroups + 1;
          Some st.ngroups
        end
      in
      let inner = parse_alt st in
      if peek st <> Some ')' then raise (Parse_error "unterminated group");
      advance st;
      Group (capture, [ inner ])
  | Some ')' -> raise (Parse_error "unmatched ')'")
  | Some '[' ->
      advance st;
      parse_class st
  | Some '.' ->
      advance st;
      Any
  | Some '^' ->
      advance st;
      Start
  | Some '$' ->
      advance st;
      End
  | Some '\\' ->
      advance st;
      parse_escape st
  | Some ('*' | '+' | '?') -> raise (Parse_error "nothing to repeat")
  | Some c ->
      advance st;
      Char c

let compile (pattern : string) (flags : string) : prog =
  let st = { src = pattern; pos = 0; ngroups = 0 } in
  let node = parse_alt st in
  if st.pos <> String.length pattern then
    raise (Parse_error "trailing characters in pattern");
  String.iter
    (fun c ->
      if not (String.contains "gimsuy" c) then
        raise (Parse_error (Printf.sprintf "unknown flag %c" c)))
    flags;
  {
    nodes = [ node ];
    ngroups = st.ngroups;
    flag_g = String.contains flags 'g';
    flag_i = String.contains flags 'i';
    flag_m = String.contains flags 'm';
  }

(* --- matcher --- *)

type match_result = {
  m_start : int;
  m_end : int;
  m_groups : (int * int) option array;  (* 1-based capture index - 1 *)
}

let lower c = if c >= 'A' && c <= 'Z' then Char.chr (Char.code c + 32) else c

(* Backtracking via CPS: [mtch node input pos groups k] succeeds if the node
   matches at [pos] and the continuation accepts the resulting position. *)
let exec ?(sem = standard_semantics) (p : prog) (input : string) (start : int) :
    match_result option =
  let n = String.length input in
  let fold_case = p.flag_i && not sem.ignorecase_broken in
  let char_eq a b = if fold_case then lower a = lower b else a = b
  in
  let in_ranges c ranges =
    List.exists
      (fun (lo, hi) ->
        (c >= lo && c <= hi)
        || (fold_case && lower c >= lower lo && lower c <= lower hi))
      ranges
  in
  let groups = Array.make (max p.ngroups 1) None in
  let rec match_node node pos (k : int -> bool) : bool =
    match node with
    | Char c -> pos < n && char_eq input.[pos] c && k (pos + 1)
    | Any ->
        pos < n
        && (sem.dot_matches_newline || input.[pos] <> '\n')
        && k (pos + 1)
    | Class (negated, ranges) ->
        let negated = if sem.class_negation_broken then false else negated in
        pos < n
        && in_ranges input.[pos] ranges <> negated
        && k (pos + 1)
    | Start ->
        (pos = 0 || (p.flag_m && input.[pos - 1] = '\n')) && k pos
    | End -> (pos = n || (p.flag_m && input.[pos] = '\n')) && k pos
    | Group (cap, inner) -> (
        match cap with
        | None -> match_seq inner pos k
        | Some g ->
            let saved = groups.(g - 1) in
            match_seq inner pos (fun pos' ->
                groups.(g - 1) <- Some (pos, pos');
                k pos' || (groups.(g - 1) <- saved; false)))
    | Alt alts ->
        List.exists (fun seq -> match_seq seq pos k) alts
    | Repeat (inner, rmin, rmax, greedy) ->
        let maxr = match rmax with Some m -> m | None -> max_int in
        (* [go count pos] tries to satisfy the remaining repetitions. The
           zero-width-progress check prevents infinite loops on patterns
           like (a?)* . *)
        let rec go count pos =
          if count >= rmin && ((not greedy) && k pos) then true
          else if count < maxr then
            let stepped =
              match_node inner pos (fun pos' ->
                  if pos' = pos && count >= rmin then false
                  else go (count + 1) pos')
            in
            if stepped then true else count >= rmin && greedy && k pos
          else count >= rmin && k pos
        in
        go 0 pos
  and match_seq seq pos k : bool =
    match seq with
    | [] -> k pos
    | node :: rest -> match_node node pos (fun pos' -> match_seq rest pos' k)
  in
  let try_at pos =
    Array.fill groups 0 (Array.length groups) None;
    let final = ref (-1) in
    if
      match_seq p.nodes pos (fun e ->
          final := e;
          true)
    then
      Some
        {
          m_start = pos;
          m_end = !final;
          m_groups = Array.sub groups 0 p.ngroups;
        }
    else None
  in
  let rec scan pos =
    if pos > n then None
    else match try_at pos with Some r -> Some r | None -> scan (pos + 1)
  in
  scan (max start 0)

let test ?sem p input = Option.is_some (exec ?sem p input 0)
