(** Miniature JavaScript regular-expression engine.

    A backtracking matcher supporting literals, [.], character classes with
    ranges and negation, the common escapes, anchors, alternation,
    capturing and non-capturing groups, and greedy/lazy quantifiers
    including bounded repetition. JS semantics (leftmost match with ordered
    alternation, capture reset on group re-entry) differ from POSIX, which
    is why this is hand-built rather than mapped onto the [re] library. *)

type node =
  | Char of char
  | Any
  | Class of bool * (char * char) list  (** negated?, ranges *)
  | Start
  | End
  | Group of int option * node list     (** capture index or [None] *)
  | Alt of node list list
  | Repeat of node * int * int option * bool  (** node, min, max, greedy *)

type prog = {
  nodes : node list;
  ngroups : int;
  flag_g : bool;
  flag_i : bool;
  flag_m : bool;
}

(** Engine-deviation knobs consulted at match time (the paper's "Regex
    Engine" bug component, Fig. 7). *)
type semantics = {
  dot_matches_newline : bool;
  ignorecase_broken : bool;
  class_negation_broken : bool;
}

val standard_semantics : semantics

exception Parse_error of string

(** Compile a pattern and flag string.
    @raise Parse_error on invalid patterns or flags. *)
val compile : string -> string -> prog

type match_result = {
  m_start : int;
  m_end : int;
  m_groups : (int * int) option array;  (** capture [i] is groups.(i-1) *)
}

(** Leftmost match at or after [start]. *)
val exec : ?sem:semantics -> prog -> string -> int -> match_result option

val test : ?sem:semantics -> prog -> string -> bool
