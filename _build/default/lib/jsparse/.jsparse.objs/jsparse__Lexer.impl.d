lib/jsparse/lexer.ml: Buffer Char Float List Printf String Token
