lib/jsparse/parser.ml: Array Ast Builder Hashtbl Jsast Lexer List Printf Result String Token
