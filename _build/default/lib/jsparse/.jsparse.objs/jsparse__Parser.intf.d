lib/jsparse/parser.mli: Jsast
