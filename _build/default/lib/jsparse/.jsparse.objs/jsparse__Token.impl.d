lib/jsparse/token.ml: List Printf
