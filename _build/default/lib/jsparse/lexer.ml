(* Hand-written lexer for the JavaScript subset.

   Produces the whole token stream up front (generated test programs are
   small, a few KB at most). Each token records whether a line terminator
   preceded it, which the parser needs for automatic semicolon insertion and
   the restricted productions (return/throw/break/continue).

   Regular-expression literals are disambiguated from division with the
   usual heuristic on the previous significant token. *)

exception Error of string * int (* message, line *)

type lexed = {
  tok : Token.t;
  line : int;
  newline_before : bool;
}

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable nl_pending : bool;
  mutable prev : Token.t option; (* previous significant token *)
}

let error st msg = raise (Error (msg, st.line))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (if st.pos < String.length st.src && st.src.[st.pos] = '\n' then (
     st.line <- st.line + 1;
     st.nl_pending <- true));
  st.pos <- st.pos + 1

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance st;
      skip_trivia st
  | Some '/' when peek2 st = Some '/' ->
      while peek st <> None && peek st <> Some '\n' do
        advance st
      done;
      skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
      advance st;
      advance st;
      let rec loop () =
        match (peek st, peek2 st) with
        | Some '*', Some '/' ->
            advance st;
            advance st
        | None, _ -> error st "unterminated block comment"
        | _ ->
            advance st;
            loop ()
      in
      loop ();
      skip_trivia st
  | _ -> ()

let is_ident_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | '$' -> true
  | _ -> false

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true
  | _ -> false

let is_digit = function '0' .. '9' -> true | _ -> false

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let lex_number st =
  let start = st.pos in
  let hex = peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X') in
  if hex then (
    advance st;
    advance st;
    while
      match peek st with
      | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> true
      | _ -> false
    do
      advance st
    done;
    let text = String.sub st.src start (st.pos - start) in
    if String.length text = 2 then error st "invalid hex literal";
    Float.of_int (int_of_string text))
  else begin
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
    (if peek st = Some '.' then (
       advance st;
       while (match peek st with Some c -> is_digit c | None -> false) do
         advance st
       done));
    (match peek st with
    | Some ('e' | 'E') ->
        advance st;
        (match peek st with Some ('+' | '-') -> advance st | _ -> ());
        if not (match peek st with Some c -> is_digit c | None -> false) then
          error st "missing exponent digits";
        while (match peek st with Some c -> is_digit c | None -> false) do
          advance st
        done
    | _ -> ());
    (* ECMA-262 11.8.3: the character immediately following a NumericLiteral
       must not be an IdentifierStart — [3in], [1abc] are syntax errors *)
    (match peek st with
    | Some c when is_ident_start c ->
        error st (Printf.sprintf "identifier starts immediately after number (%c)" c)
    | _ -> ());
    let text = String.sub st.src start (st.pos - start) in
    try float_of_string text with _ -> error st ("bad number literal " ^ text)
  end

let lex_string st quote =
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> error st "unterminated string literal"
    | Some '\n' -> error st "newline in string literal"
    | Some c when c = quote -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> error st "unterminated escape"
        | Some 'n' ->
            Buffer.add_char buf '\n';
            advance st;
            loop ()
        | Some 't' ->
            Buffer.add_char buf '\t';
            advance st;
            loop ()
        | Some 'r' ->
            Buffer.add_char buf '\r';
            advance st;
            loop ()
        | Some 'b' ->
            Buffer.add_char buf '\b';
            advance st;
            loop ()
        | Some '0' ->
            Buffer.add_char buf '\x00';
            advance st;
            loop ()
        | Some 'x' ->
            advance st;
            let h1 = peek st and h2 = peek2 st in
            (match (h1, h2) with
            | Some a, Some b -> (
                advance st;
                advance st;
                match int_of_string_opt (Printf.sprintf "0x%c%c" a b) with
                | Some code ->
                    Buffer.add_char buf (Char.chr code);
                    loop ()
                | None -> error st "bad \\x escape")
            | _ -> error st "bad \\x escape")
        | Some 'u' ->
            (* keep BMP escapes as UTF-8-ish bytes; good enough for the
               generated corpus which stays in ASCII *)
            advance st;
            let take4 () =
              if st.pos + 4 > String.length st.src then error st "bad \\u escape";
              let s = String.sub st.src st.pos 4 in
              st.pos <- st.pos + 4;
              match int_of_string_opt ("0x" ^ s) with
              | Some v -> v
              | None -> error st "bad \\u escape"
            in
            let v = take4 () in
            if v < 128 then Buffer.add_char buf (Char.chr v)
            else Buffer.add_string buf (Printf.sprintf "\\u%04x" v);
            loop ()
        | Some c ->
            Buffer.add_char buf c;
            advance st;
            loop ())
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        loop ()
  in
  loop ();
  Buffer.contents buf

let lex_regexp st =
  advance st (* consume '/' *);
  let buf = Buffer.create 16 in
  let rec loop in_class =
    match peek st with
    | None | Some '\n' -> error st "unterminated regexp literal"
    | Some '\\' -> (
        advance st;
        match peek st with
        | None -> error st "unterminated regexp literal"
        | Some c ->
            Buffer.add_char buf '\\';
            Buffer.add_char buf c;
            advance st;
            loop in_class)
    | Some '[' ->
        Buffer.add_char buf '[';
        advance st;
        loop true
    | Some ']' when in_class ->
        Buffer.add_char buf ']';
        advance st;
        loop false
    | Some '/' when not in_class -> advance st
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        loop in_class
  in
  loop false;
  let fstart = st.pos in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let flags = String.sub st.src fstart (st.pos - fstart) in
  String.iter
    (fun c ->
      if not (String.contains "gimsuy" c) then
        error st (Printf.sprintf "invalid regexp flag %c" c))
    flags;
  (Buffer.contents buf, flags)

(* May a '/' at this point start a regexp literal (vs. division)? *)
let regexp_allowed prev =
  match prev with
  | None -> true
  | Some (Token.Tpunct (")" | "]")) -> false
  | Some (Token.Tpunct _) -> true
  | Some (Token.Tkeyword ("this" | "null" | "true" | "false")) -> false
  | Some (Token.Tkeyword _) -> true
  | Some (Token.Tnum _ | Token.Tstr _ | Token.Ttemplate _ | Token.Tregexp _
         | Token.Tident _ | Token.Teof) ->
      false

let puncts_3 = [ "==="; "!=="; ">>>"; "**=" ]
let puncts_2 =
  [
    "=="; "!="; "<="; ">="; "&&"; "||"; "++"; "--"; "+="; "-="; "*="; "/=";
    "%="; "&="; "|="; "^="; "<<"; ">>"; "=>"; "**";
  ]

let rec lex_token st : Token.t =
  skip_trivia st;
  match peek st with
  | None -> Token.Teof
  | Some c when is_ident_start c ->
      let word = lex_ident st in
      if Token.is_keyword word then Token.Tkeyword word
      else if List.mem word Token.reserved_words then
        error st ("reserved word used as identifier: " ^ word)
      else Token.Tident word
  | Some c when is_digit c -> Token.Tnum (lex_number st)
  | Some '.' when (match peek2 st with Some d -> is_digit d | None -> false) ->
      Token.Tnum (lex_number st)
  | Some ('"' as q) | Some ('\'' as q) -> Token.Tstr (lex_string st q)
  | Some '`' -> lex_template st
  | Some '/' when regexp_allowed st.prev ->
      let body, flags = lex_regexp st in
      Token.Tregexp (body, flags)
  | Some _ ->
      let try_punct n lst =
        if st.pos + n <= String.length st.src then
          let s = String.sub st.src st.pos n in
          if List.mem s lst then Some s else None
        else None
      in
      let p =
        match try_punct 3 puncts_3 with
        | Some s -> Some s
        | None -> (
            match try_punct 2 puncts_2 with
            | Some s -> Some s
            | None ->
                let c = st.src.[st.pos] in
                if String.contains "+-*/%=<>!&|^~?:;,.(){}[]" c then
                  Some (String.make 1 c)
                else None)
      in
      (match p with
      | Some s ->
          st.pos <- st.pos + String.length s;
          Token.Tpunct s
      | None -> error st (Printf.sprintf "unexpected character %C" st.src.[st.pos]))

and lex_template st : Token.t =
  advance st (* '`' *);
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then (
      parts := Token.Pstr (Buffer.contents buf) :: !parts;
      Buffer.clear buf)
  in
  let rec loop () =
    match peek st with
    | None -> error st "unterminated template literal"
    | Some '`' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' -> Buffer.add_char buf '\n'; advance st; loop ()
        | Some 't' -> Buffer.add_char buf '\t'; advance st; loop ()
        | Some c -> Buffer.add_char buf c; advance st; loop ()
        | None -> error st "unterminated template literal")
    | Some '$' when peek2 st = Some '{' ->
        flush ();
        advance st;
        advance st;
        (* lex the substitution up to the matching '}' *)
        let toks = ref [] in
        let depth = ref 0 in
        let rec sub () =
          skip_trivia st;
          match peek st with
          | Some '}' when !depth = 0 -> advance st
          | None -> error st "unterminated template substitution"
          | _ ->
              let t = lex_token st in
              (match t with
              | Token.Tpunct "{" -> incr depth
              | Token.Tpunct "}" -> decr depth
              | _ -> ());
              st.prev <- Some t;
              toks := t :: !toks;
              sub ()
        in
        sub ();
        parts := Token.Psub (List.rev !toks) :: !parts;
        loop ()
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        loop ()
  in
  loop ();
  flush ();
  Token.Ttemplate (List.rev !parts)

(* Tokenize the full input. Raises {!Error} on lexical errors. *)
let tokenize (src : string) : lexed list =
  let st = { src; pos = 0; line = 1; nl_pending = false; prev = None } in
  let acc = ref [] in
  let rec loop () =
    skip_trivia st;
    let nl = st.nl_pending in
    st.nl_pending <- false;
    let line = st.line in
    let tok = lex_token st in
    st.prev <- Some tok;
    acc := { tok; line; newline_before = nl } :: !acc;
    if tok <> Token.Teof then loop ()
  in
  loop ();
  List.rev !acc
