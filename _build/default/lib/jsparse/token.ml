(* Lexical tokens for the JavaScript subset. *)

type t =
  | Tnum of float
  | Tstr of string
  | Ttemplate of part list
  | Tregexp of string * string (* body, flags *)
  | Tident of string
  | Tkeyword of string
  | Tpunct of string
  | Teof

and part = Pstr of string | Psub of t list
    (* a template substitution is lexed to a token list and re-parsed *)

let keywords =
  [
    "var"; "let"; "const"; "function"; "return"; "if"; "else"; "for"; "while";
    "do"; "break"; "continue"; "new"; "delete"; "typeof"; "instanceof"; "in";
    "of"; "void"; "this"; "null"; "true"; "false"; "throw"; "try"; "catch";
    "finally"; "switch"; "case"; "default"; "debugger";
  ]

let is_keyword s = List.mem s keywords

(* Words reserved by ECMA-262 that this subset does not implement; using one
   as an identifier is still a syntax error. *)
let reserved_words =
  [ "class"; "extends"; "super"; "import"; "export"; "yield"; "enum"; "with" ]

let to_string = function
  | Tnum f -> Printf.sprintf "number %g" f
  | Tstr s -> Printf.sprintf "string %S" s
  | Ttemplate _ -> "template literal"
  | Tregexp (b, f) -> Printf.sprintf "regexp /%s/%s" b f
  | Tident s -> Printf.sprintf "identifier %s" s
  | Tkeyword s -> Printf.sprintf "keyword %s" s
  | Tpunct s -> Printf.sprintf "'%s'" s
  | Teof -> "end of input"
