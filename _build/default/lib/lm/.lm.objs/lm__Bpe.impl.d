lib/lm/bpe.ml: Hashtbl List Option String
