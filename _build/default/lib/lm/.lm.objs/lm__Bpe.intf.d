lib/lm/bpe.mli:
