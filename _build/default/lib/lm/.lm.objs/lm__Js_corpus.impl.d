lib/lm/js_corpus.ml: String
