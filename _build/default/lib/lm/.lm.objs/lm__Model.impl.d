lib/lm/model.ml: Bpe Buffer Cutil Js_corpus Lazy List Ngram String
