lib/lm/model.mli: Bpe Cutil Lazy Ngram
