lib/lm/ngram.ml: Array Cutil Hashtbl List String
