lib/lm/ngram.mli: Cutil
