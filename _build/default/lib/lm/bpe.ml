(* Byte-pair-encoding tokenizer (paper §3.2).

   Pre-tokenization splits source text into word runs, operator runs,
   single punctuation characters and whitespace; BPE merges are then
   learned inside word runs only, exactly the "common keywords become whole
   tokens, rare identifiers break into subwords" behaviour the paper
   describes. The vocabulary maps every resulting symbol to an integer id
   for the n-gram model. *)

type token = string

let is_word_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true
  | _ -> false

let is_op_char c = String.contains "+-*/%=<>!&|^~?:" c

(* Split text into pre-tokens. Whitespace is preserved as tokens so that the
   model learns layout; newline runs collapse to a single "\n". *)
let pre_tokenize (text : string) : token list =
  let n = String.length text in
  let out = ref [] in
  let i = ref 0 in
  let take pred =
    let start = !i in
    while !i < n && pred text.[!i] do incr i done;
    String.sub text start (!i - start)
  in
  while !i < n do
    let c = text.[!i] in
    if is_word_char c then out := take is_word_char :: !out
    else if c = ' ' || c = '\t' then out := take (fun c -> c = ' ' || c = '\t') :: !out
    else if c = '\n' || c = '\r' then begin
      ignore (take (fun c -> c = '\n' || c = '\r'));
      out := "\n" :: !out
    end
    else if is_op_char c then out := take is_op_char :: !out
    else begin
      incr i;
      out := String.make 1 c :: !out
    end
  done;
  List.rev !out

(* --- merge learning --- *)

type t = {
  merges : (string * string) list;        (* in learned order *)
  vocab : (string, int) Hashtbl.t;
  rev : (int, string) Hashtbl.t;
  mutable next_id : int;
}

let intern t (s : string) : int =
  match Hashtbl.find_opt t.vocab s with
  | Some id -> id
  | None ->
      let id = t.next_id in
      t.next_id <- id + 1;
      Hashtbl.replace t.vocab s id;
      Hashtbl.replace t.rev id s;
      id

let token_of t id = Hashtbl.find_opt t.rev id

(* Apply the learned merges to the character split of one word. *)
let apply_merges (merges : (string * string) list) (word : string) : string list =
  let symbols = ref (List.init (String.length word) (fun i -> String.make 1 word.[i])) in
  List.iter
    (fun (a, b) ->
      let rec merge = function
        | x :: y :: rest when x = a && y = b -> (a ^ b) :: merge rest
        | x :: rest -> x :: merge rest
        | [] -> []
      in
      symbols := merge !symbols)
    merges;
  !symbols

(* Learn [n_merges] merges from word-frequency statistics. *)
let learn ?(n_merges = 200) (text : string) : t =
  let pre = pre_tokenize text in
  (* word frequency table *)
  let freq : (string, int) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun tok ->
      if String.length tok > 0 && is_word_char tok.[0] then
        Hashtbl.replace freq tok (1 + Option.value (Hashtbl.find_opt freq tok) ~default:0))
    pre;
  (* represent each distinct word as a mutable symbol list *)
  let words =
    Hashtbl.fold (fun w c acc -> (ref (List.init (String.length w) (fun i -> String.make 1 w.[i])), c) :: acc) freq []
    |> List.sort (fun (a, _) (b, _) -> compare (String.concat "" !a) (String.concat "" !b))
  in
  let merges = ref [] in
  (try
     for _ = 1 to n_merges do
       (* count adjacent pairs weighted by word frequency *)
       let pairs : (string * string, int) Hashtbl.t = Hashtbl.create 256 in
       List.iter
         (fun (syms, c) ->
           let rec go = function
             | a :: (b :: _ as rest) ->
                 Hashtbl.replace pairs (a, b)
                   (c + Option.value (Hashtbl.find_opt pairs (a, b)) ~default:0);
                 go rest
             | _ -> ()
           in
           go !syms)
         words;
       if Hashtbl.length pairs = 0 then raise Exit;
       (* deterministically pick the most frequent pair *)
       let best =
         Hashtbl.fold (fun k v acc -> (v, k) :: acc) pairs []
         |> List.sort (fun (v1, k1) (v2, k2) ->
                match compare v2 v1 with 0 -> compare k1 k2 | c -> c)
         |> List.hd
       in
       let count, (a, b) = best in
       if count < 2 then raise Exit;
       merges := (a, b) :: !merges;
       List.iter
         (fun (syms, _) ->
           let rec merge = function
             | x :: y :: rest when x = a && y = b -> (a ^ b) :: merge rest
             | x :: rest -> x :: merge rest
             | [] -> []
           in
           syms := merge !syms)
         words
     done
   with Exit -> ());
  let t =
    {
      merges = List.rev !merges;
      vocab = Hashtbl.create 512;
      rev = Hashtbl.create 512;
      next_id = 0;
    }
  in
  (* stabilise ids: intern the whole corpus encoding *)
  ignore (intern t "<EOF>");
  List.iter
    (fun tok ->
      if String.length tok > 0 && is_word_char tok.[0] then
        List.iter (fun s -> ignore (intern t s)) (apply_merges t.merges tok)
      else ignore (intern t tok))
    pre;
  t

(* Encode arbitrary text; unseen characters intern new ids on the fly. *)
let encode (t : t) (text : string) : int list =
  List.concat_map
    (fun tok ->
      if String.length tok > 0 && is_word_char tok.[0] then
        List.map (intern t) (apply_merges t.merges tok)
      else [ intern t tok ])
    (pre_tokenize text)

let decode (t : t) (ids : int list) : string =
  String.concat "" (List.filter_map (token_of t) ids)

let eof_id (t : t) : int = Hashtbl.find t.vocab "<EOF>"

let vocab_size (t : t) = t.next_id

(* Character-level "tokenizer" for the DeepSmith baseline: every character
   is its own token, no merges. *)
let char_tokenizer () : t =
  { merges = []; vocab = Hashtbl.create 256; rev = Hashtbl.create 256; next_id = 0 }

let encode_chars (t : t) (text : string) : int list =
  ignore (intern t "<EOF>");
  List.init (String.length text) (fun i -> intern t (String.make 1 text.[i]))
