(** Byte-pair-encoding tokenizer (paper §3.2).

    Pre-tokenization splits source into word runs, operator runs, single
    punctuation and whitespace; merges are learned inside word runs only —
    common keywords become whole tokens, rare identifiers break into
    subwords, exactly as the paper describes. *)

type token = string

type t

(** Split text into pre-tokens; concatenating them reproduces the text
    (modulo newline-run collapsing). *)
val pre_tokenize : string -> token list

(** Learn [n_merges] merges from a training text. *)
val learn : ?n_merges:int -> string -> t

val encode : t -> string -> int list
val decode : t -> int list -> string

(** The id of the dedicated [<EOF>] termination symbol. *)
val eof_id : t -> int

val vocab_size : t -> int

(** Look up a token's surface string. *)
val token_of : t -> int -> string option

(** Character-level "tokenizer" for the DeepSmith baseline. *)
val char_tokenizer : unit -> t

val encode_chars : t -> string -> int list
