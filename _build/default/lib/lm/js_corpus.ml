(* The embedded JS training corpus.

   Substitute for the paper's 140k GitHub files (see DESIGN.md): a few
   hundred small hand-written programs in the style the paper's Figure 2
   test cases take — one or two functions exercising standard APIs, driver
   variables, and a [print] of the result. The language model learns JS
   purely from these strings; nothing below is quoted by the generator
   directly, only token statistics.

   Style is deliberately uniform (same style rules a GitHub-top-projects
   corpus has after lint): [var] declarations, function expressions,
   semicolons everywhere, double-quoted strings. *)

let programs : string list =
  [
    {|var greet = function(name) {
  var msg = "Hello, " + name + "!";
  return msg;
};
var who = "world";
print(greet(who));|};
    {|function add(a, b) {
  return a + b;
}
var x = 3;
var y = 4;
print(add(x, y));|};
    {|var clamp = function(value, lo, hi) {
  if (value < lo) { return lo; }
  if (value > hi) { return hi; }
  return value;
};
print(clamp(15, 0, 10));|};
    {|var sum = function(arr) {
  var total = 0;
  for (var i = 0; i < arr.length; i++) {
    total += arr[i];
  }
  return total;
};
var nums = [1, 2, 3, 4, 5];
print(sum(nums));|};
    {|var head = function(str, count) {
  var part = str.substr(0, count);
  return part;
};
var text = "abcdefgh";
print(head(text, 3));|};
    {|var tail = function(str, start) {
  var rest = str.substr(start);
  return rest;
};
var word = "JavaScript";
print(tail(word, 4));|};
    {|function repeatWord(word, times) {
  var out = word.repeat(times);
  return out;
}
print(repeatWord("ab", 3));|};
    {|var shout = function(str) {
  var loud = str.toUpperCase();
  return loud + "!";
};
print(shout("quiet"));|};
    {|var whisper = function(str) {
  return str.toLowerCase();
};
print(whisper("LOUD"));|};
    {|var firstChar = function(str, index) {
  var ch = str.charAt(index);
  return ch;
};
var s = "hello";
print(firstChar(s, 1));|};
    {|var codeAt = function(str, pos) {
  return str.charCodeAt(pos);
};
print(codeAt("A", 0));|};
    {|var findIn = function(str, what, from) {
  var where = str.indexOf(what, from);
  return where;
};
print(findIn("banana", "an", 2));|};
    {|var cutMiddle = function(str, a, b) {
  var piece = str.substring(a, b);
  return piece;
};
print(cutMiddle("abcdef", 1, 4));|};
    {|var takeSlice = function(str, start, end) {
  var piece = str.slice(start, end);
  return piece;
};
print(takeSlice("abcdef", -3, -1));|};
    {|var pieces = function(str, sep) {
  var parts = str.split(sep);
  return parts.length;
};
print(pieces("a,b,c", ","));|};
    {|var swap = function(str, from, to) {
  var out = str.replace(from, to);
  return out;
};
print(swap("good day", "good", "bad"));|};
    {|var tidy = function(str) {
  var out = str.trim();
  return out;
};
print(tidy("  spaced  "));|};
    {|var padded = function(str, width) {
  return str.padStart(width, "0");
};
print(padded("7", 3));|};
    {|var padRight = function(str, width) {
  return str.padEnd(width, ".");
};
print(padRight("x", 4));|};
    {|var hasPrefix = function(str, prefix) {
  return str.startsWith(prefix);
};
print(hasPrefix("filename.txt", "file"));|};
    {|var hasSuffix = function(str, suffix) {
  return str.endsWith(suffix);
};
print(hasSuffix("filename.txt", ".txt"));|};
    {|var contains = function(str, piece) {
  return str.includes(piece);
};
print(contains("haystack", "needle"));|};
    {|var joinAll = function(items, sep) {
  var line = items.join(sep);
  return line;
};
print(joinAll(["a", "b", "c"], "-"));|};
    {|var lastOf = function(arr) {
  return arr[arr.length - 1];
};
print(lastOf([10, 20, 30]));|};
    {|var pushTwo = function(arr, a, b) {
  arr.push(a);
  arr.push(b);
  return arr.length;
};
print(pushTwo([1], 2, 3));|};
    {|var takeLast = function(arr) {
  var v = arr.pop();
  return v;
};
print(takeLast([4, 5, 6]));|};
    {|var dropFirst = function(arr) {
  arr.shift();
  return arr;
};
print(dropFirst([1, 2, 3]));|};
    {|var prepend = function(arr, v) {
  var n = arr.unshift(v);
  return n;
};
print(prepend([2, 3], 1));|};
    {|var middle = function(arr, a, b) {
  var part = arr.slice(a, b);
  return part;
};
print(middle([1, 2, 3, 4, 5], 1, 3));|};
    {|var cutOut = function(arr, start, count) {
  var removed = arr.splice(start, count);
  return removed;
};
print(cutOut([1, 2, 3, 4], 1, 2));|};
    {|var whereIs = function(arr, v) {
  return arr.indexOf(v);
};
print(whereIs([5, 6, 7], 6));|};
    {|var hasValue = function(arr, v) {
  return arr.includes(v);
};
print(hasValue([1, 2, 3], 4));|};
    {|var backwards = function(arr) {
  return arr.reverse();
};
print(backwards([1, 2, 3]));|};
    {|var sorted = function(arr) {
  arr.sort();
  return arr;
};
print(sorted([3, 1, 2]));|};
    {|var sortNums = function(arr) {
  arr.sort(function(a, b) { return a - b; });
  return arr;
};
print(sortNums([30, 4, 100]));|};
    {|var doubled = function(arr) {
  var out = arr.map(function(x) { return x * 2; });
  return out;
};
print(doubled([1, 2, 3]));|};
    {|var evens = function(arr) {
  var out = arr.filter(function(x) { return x % 2 === 0; });
  return out;
};
print(evens([1, 2, 3, 4]));|};
    {|var total = function(arr) {
  return arr.reduce(function(acc, x) { return acc + x; }, 0);
};
print(total([1, 2, 3, 4]));|};
    {|var anyBig = function(arr, limit) {
  return arr.some(function(x) { return x > limit; });
};
print(anyBig([1, 5, 9], 8));|};
    {|var allPositive = function(arr) {
  return arr.every(function(x) { return x > 0; });
};
print(allPositive([1, 2, -3]));|};
    {|var firstBig = function(arr, limit) {
  return arr.find(function(x) { return x > limit; });
};
print(firstBig([1, 8, 3], 5));|};
    {|var flatten = function(arr) {
  return arr.flat();
};
print(flatten([1, [2, 3], [4]]));|};
    {|var filled = function(size, v) {
  var arr = new Array(size);
  arr.fill(v);
  return arr;
};
print(filled(3, 7));|};
    {|var countdown = function(size) {
  var array = new Array(size);
  while (size--) {
    array[size] = size;
  }
  return array.length;
};
print(countdown(5));|};
    {|var rounded = function(num, digits) {
  var out = num.toFixed(digits);
  return out;
};
var value = 3.14159;
print(rounded(value, 2));|};
    {|var precise = function(num, digits) {
  return num.toPrecision(digits);
};
print(precise(123.456, 4));|};
    {|var inBase = function(num, radix) {
  return num.toString(radix);
};
var n = 255;
print(inBase(n, 16));|};
    {|var readInt = function(str) {
  var n = parseInt(str, 10);
  return n;
};
print(readInt("42px"));|};
    {|var readHex = function(str) {
  return parseInt(str, 16);
};
print(readHex("ff"));|};
    {|var readFloat = function(str) {
  var f = parseFloat(str);
  return f;
};
print(readFloat("2.5 kg"));|};
    {|var isWhole = function(v) {
  return Number.isInteger(v);
};
print(isWhole(5.0));|};
    {|var biggest = function(a, b, c) {
  return Math.max(a, b, c);
};
print(biggest(3, 9, 5));|};
    {|var smallest = function(a, b) {
  return Math.min(a, b);
};
print(smallest(-1, 1));|};
    {|var magnitude = function(x) {
  return Math.abs(x);
};
print(magnitude(-7));|};
    {|var rounddown = function(x) {
  return Math.floor(x);
};
print(rounddown(2.9));|};
    {|var roundup = function(x) {
  return Math.ceil(x);
};
print(roundup(2.1));|};
    {|var power = function(base, exp) {
  return Math.pow(base, exp);
};
print(power(2, 10));|};
    {|var root = function(x) {
  return Math.sqrt(x);
};
print(root(81));|};
    {|var keysOf = function(obj) {
  var keys = Object.keys(obj);
  return keys;
};
var data = {a: 1, b: 2};
print(keysOf(data));|};
    {|var frozen = function(obj) {
  Object.freeze(obj);
  obj.x = 99;
  return obj.x;
};
print(frozen({x: 1}));|};
    {|var sealed = function(obj) {
  Object.seal(obj);
  obj.y = 2;
  return obj.y;
};
print(sealed({x: 1}));|};
    {|var merged = function(a, b) {
  var out = Object.assign({}, a, b);
  return out.b;
};
print(merged({a: 1}, {b: 2}));|};
    {|var defined = function(obj) {
  Object.defineProperty(obj, "k", { value: 5, writable: false });
  return obj.k;
};
print(defined({}));|};
    {|var owned = function(obj, key) {
  return obj.hasOwnProperty(key);
};
print(owned({a: 1}, "a"));|};
    {|var names = function(obj) {
  return Object.getOwnPropertyNames(obj);
};
print(names({z: 1, a: 2}));|};
    {|var hidden = function(obj, key) {
  Object.defineProperty(obj, key, { value: 1, enumerable: false });
  return Object.keys(obj);
};
print(hidden({a: 1}, "secret"));|};
    {|var encode = function(value) {
  var text = JSON.stringify(value);
  return text;
};
print(encode({a: [1, 2], b: "x"}));|};
    {|var decode = function(text) {
  var value = JSON.parse(text);
  return value.a;
};
print(decode("{\"a\": 7}"));|};
    {|var roundtrip = function(obj) {
  return JSON.parse(JSON.stringify(obj)).n;
};
print(roundtrip({n: 1.5}));|};
    {|var matches = function(str) {
  var re = /[a-z]+/;
  return re.test(str);
};
print(matches("abc123"));|};
    {|var firstMatch = function(str) {
  var m = /(\d+)/.exec(str);
  return m[1];
};
print(firstMatch("order 66 ready"));|};
    {|var splitWords = function(str) {
  var words = str.split(/\s+/);
  return words.length;
};
print(splitWords("one two  three"));|};
    {|var digitsOnly = function(str) {
  return str.replace(/\D/g, "");
};
print(digitsOnly("a1b2c3"));|};
    {|var bytes = function(size) {
  var buf = new Uint8Array(size);
  buf[0] = 300;
  return buf[0];
};
print(bytes(4));|};
    {|var words32 = function(length) {
  var array = new Uint32Array(length);
  print(array.length);
  return array;
};
words32(3);|};
    {|var copyInto = function(values) {
  var target = new Uint8Array(8);
  target.set(values, 2);
  return target;
};
print(copyInto([1, 2, 3]));|};
    {|var viewByte = function(offset) {
  var view = new DataView(4);
  view.setUint8(offset, 200);
  return view.getUint8(offset);
};
print(viewByte(1));|};
    {|var tryEval = function(code) {
  var result = eval(code);
  return result;
};
print(tryEval("1 + 2 * 3"));|};
    {|var safeEval = function(code) {
  try {
    return eval(code);
  } catch (e) {
    return e.name;
  }
};
print(safeEval("for(var i = 0; i < 5; i++)"));|};
    {|var guard = function(fn) {
  try {
    return fn();
  } catch (e) {
    return "caught " + e.name;
  }
};
print(guard(function() { throw new TypeError("bad"); }));|};
    {|var attempt = function(value) {
  try {
    if (value < 0) {
      throw new RangeError("negative");
    }
    return value;
  } catch (e) {
    return e.message;
  } finally {
    print("done");
  }
};
print(attempt(-1));|};
    {|var counter = function() {
  var count = 0;
  return function() {
    count = count + 1;
    return count;
  };
};
var tick = counter();
tick();
print(tick());|};
    {|var apply = function(fn, x) {
  return fn(x);
};
print(apply(function(v) { return v * v; }, 6));|};
    {|var compose = function(f, g) {
  return function(x) { return f(g(x)); };
};
var inc = function(x) { return x + 1; };
var dbl = function(x) { return x * 2; };
print(compose(inc, dbl)(5));|};
    {|var fib = function(n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
};
print(fib(10));|};
    {|var fact = function(n) {
  var acc = 1;
  while (n > 1) {
    acc = acc * n;
    n = n - 1;
  }
  return acc;
};
print(fact(6));|};
    {|var gcd = function(a, b) {
  while (b !== 0) {
    var t = b;
    b = a % b;
    a = t;
  }
  return a;
};
print(gcd(48, 18));|};
    {|var isPrime = function(n) {
  if (n < 2) { return false; }
  for (var i = 2; i * i <= n; i++) {
    if (n % i === 0) { return false; }
  }
  return true;
};
print(isPrime(97));|};
    {|var countVowels = function(str) {
  var count = 0;
  for (var i = 0; i < str.length; i++) {
    if ("aeiou".indexOf(str.charAt(i)) >= 0) {
      count++;
    }
  }
  return count;
};
print(countVowels("education"));|};
    {|var reverseStr = function(str) {
  var out = "";
  for (var i = str.length - 1; i >= 0; i--) {
    out += str.charAt(i);
  }
  return out;
};
print(reverseStr("stressed"));|};
    {|var buildList = function(n) {
  var items = [];
  for (var i = 0; i < n; i++) {
    items.push(i * i);
  }
  return items;
};
print(buildList(5));|};
    {|var histogram = function(values) {
  var bins = {};
  for (var i = 0; i < values.length; i++) {
    var key = values[i];
    if (bins[key] === undefined) {
      bins[key] = 0;
    }
    bins[key] = bins[key] + 1;
  }
  return JSON.stringify(bins);
};
print(histogram([1, 2, 2, 3]));|};
    {|var pick = function(obj, key) {
  var value = obj[key];
  if (value === undefined) {
    return "missing";
  }
  return value;
};
var config = {mode: "fast", size: 10};
print(pick(config, "mode"));|};
    {|var describe = function(v) {
  var kind = typeof v;
  switch (kind) {
    case "number":
      return "num:" + v;
    case "string":
      return "str:" + v;
    default:
      return kind;
  }
};
print(describe(3));
print(describe("x"));|};
    {|var classify = function(n) {
  return n < 0 ? "neg" : n > 0 ? "pos" : "zero";
};
print(classify(-5));|};
    {|var loopSum = function(limit) {
  var s = 0;
  var i = 0;
  do {
    s += i;
    i++;
  } while (i < limit);
  return s;
};
print(loopSum(5));|};
    {|var keysJoined = function(obj) {
  var out = [];
  for (var k in obj) {
    out.push(k);
  }
  return out.join("+");
};
print(keysJoined({x: 1, y: 2}));|};
    {|var sumOf = function(items) {
  var s = 0;
  for (var v of items) {
    s += v;
  }
  return s;
};
print(sumOf([2, 4, 6]));|};
    {|var zip = function(a, b) {
  var out = [];
  for (var i = 0; i < a.length && i < b.length; i++) {
    out.push(a[i] + ":" + b[i]);
  }
  return out;
};
print(zip([1, 2], ["a", "b"]));|};
    {|var range = function(from, to) {
  var out = [];
  while (from < to) {
    out.push(from);
    from++;
  }
  return out;
};
print(range(2, 6));|};
    {|var unique = function(arr) {
  var seen = {};
  var out = [];
  for (var i = 0; i < arr.length; i++) {
    if (!seen[arr[i]]) {
      seen[arr[i]] = true;
      out.push(arr[i]);
    }
  }
  return out;
};
print(unique([1, 2, 1, 3, 2]));|};
    {|var swapEnds = function(arr) {
  var tmp = arr[0];
  arr[0] = arr[arr.length - 1];
  arr[arr.length - 1] = tmp;
  return arr;
};
print(swapEnds([1, 2, 3]));|};
    {|var maxOf = function(arr) {
  var best = arr[0];
  for (var i = 1; i < arr.length; i++) {
    if (arr[i] > best) {
      best = arr[i];
    }
  }
  return best;
};
print(maxOf([3, 9, 4]));|};
    {|var truthy = function(v) {
  if (v) {
    return "yes";
  } else {
    return "no";
  }
};
print(truthy(""));
print(truthy(0));
print(truthy("a"));|};
    {|var compare = function(a, b) {
  if (a === b) { return "same"; }
  if (a == b) { return "loose"; }
  return "diff";
};
print(compare(1, "1"));
print(compare(null, undefined));|};
    {|var bits = function(a, b) {
  return (a & b) + (a | b) + (a ^ b);
};
print(bits(12, 10));|};
    {|var shifted = function(x, n) {
  return (x << n) + (x >> 1) + (x >>> 1);
};
print(shifted(8, 2));|};
    {|var wrap = function(v) {
  return { value: v, twice: v * 2 };
};
var box = wrap(21);
print(box.twice);|};
    {|var point = {x: 3, y: 4};
var dist = function(p) {
  return Math.sqrt(p.x * p.x + p.y * p.y);
};
print(dist(point));|};
    {|var Stack = function() {
  this.items = [];
};
var s = new Stack();
s.items.push(1);
s.items.push(2);
print(s.items.length);|};
    {|var label = function(n) {
  var text = `value=${n}`;
  return text;
};
print(label(7));|};
    {|var sumArrow = (a, b) => {
  return a + b;
};
print(sumArrow(2, 3));|};
    {|let limit = 3;
const step = 2;
let acc = 0;
for (let i = 0; i < limit; i++) {
  acc += step;
}
print(acc);|};
    {|var checkType = function(v) {
  if (typeof v === "undefined") {
    return "undef";
  }
  return typeof v;
};
var nothing = undefined;
print(checkType(nothing));|};
    {|var deleteKey = function(obj, key) {
  delete obj[key];
  return Object.keys(obj).length;
};
print(deleteKey({a: 1, b: 2}, "a"));|};
    {|var hasKey = function(obj, key) {
  return key in obj;
};
print(hasKey({a: 1}, "b"));|};
    {|var instance = function() {
  var err = new TypeError("oops");
  return err instanceof TypeError;
};
print(instance());|};
    {|var chain = function(str) {
  return str.trim().toUpperCase().split("").reverse().join("");
};
print(chain(" abc "));|};
    {|var nested = function(matrix) {
  var total = 0;
  for (var i = 0; i < matrix.length; i++) {
    for (var j = 0; j < matrix[i].length; j++) {
      total += matrix[i][j];
    }
  }
  return total;
};
print(nested([[1, 2], [3, 4]]));|};
    {|var labelAll = function(items) {
  var out = items.map(function(v, i) { return i + ":" + v; });
  return out.join(",");
};
print(labelAll(["a", "b"]));|};
    {|var defaults = function(value, fallback) {
  return value !== undefined ? value : fallback;
};
print(defaults(undefined, 9));|};
    {|var stringy = function(value) {
  var out = "" + value;
  return out.length;
};
print(stringy(12345));|};
    {|var negate = function(x) {
  var y = -x;
  return 1 / y;
};
print(negate(0));|};
    {|var remainder = function(a, b) {
  return a % b;
};
print(remainder(-5, 3));|};
    {|var compareStrings = function(a, b) {
  return a < b;
};
print(compareStrings("10", "9"));|};
    {|var grow = function(start) {
  var x = start;
  x = x + 1000000;
  x = x + 2000000000;
  return x;
};
print(grow(1500000000));|};
    {|var concatLoop = function(n) {
  var s = "";
  for (var i = 0; i < n; i++) {
    s += "x";
  }
  return s.length;
};
print(concatLoop(200));|};
    {|var normalized = function(str) {
  return str.normalize("NFC");
};
print(normalized("abc"));|};
    {|var lastIndexIn = function(str, what) {
  return str.lastIndexOf(what);
};
print(lastIndexIn("abcabc", "b"));|};
    {|"use strict";
var strictAdd = function(a, b) {
  return a + b;
};
print(strictAdd(1, 2));|};
    {|"use strict";
function strictCheck(v) {
  return this === undefined && v > 0;
}
print(strictCheck(1));|};
    {|var fromChars = function(a, b) {
  return String.fromCharCode(a, b);
};
print(fromChars(72, 105));|};
    {|var arrayLike = function() {
  var obj = {0: "a", 1: "b", length: 2};
  return Array.from(obj).length;
};
print(arrayLike());|};
    {|var checker = function(list) {
  return Array.isArray(list);
};
print(checker([1]));
print(checker("no"));|};
    {|var setProp = function(obj, property, v) {
  obj[property] = v;
  return obj[property];
};
var target = [1, 2, 5];
print(setProp(target, 1, 10));|};
    {|var concatAll = function(a, b, c) {
  return a.concat(b, c);
};
print(concatAll([1], [2, 3], 4));|};
    {|var flatCount = function(nested, depth) {
  var flat = nested.flat(depth);
  return flat.length;
};
var data = [1, [2, [3, [4]]]];
print(flatCount(data, 1));|};
    {|var clampByte = function(v) {
  var c = new Uint8ClampedArray(1);
  c[0] = v;
  return c[0];
};
print(clampByte(97));|};
    {|var swapAll = function(str, from, to) {
  var out = str.replace(from, to);
  return out.length;
};
print(swapAll("mississippi", "ss", "-"));|};
    {|var stamp = function(text, mark) {
  return text.replace(mark, "[$&]");
};
print(stamp("deploy v2 now", "v2"));|};
    {|var firstDigit = function(str) {
  var m = str.match(/\d/);
  if (m === null) { return "none"; }
  return m[0];
};
print(firstDigit("abc7def8"));|};
    {|var negate = function(x) {
  var y = -x;
  return 1 / y;
};
print(negate(4));|};
    {|var wrapMod = function(a, b) {
  var r = a % b;
  return r;
};
print(wrapMod(-17, 5));|};
    {|var shiftLeft = function(x, count) {
  return x << count;
};
print(shiftLeft(3, 4));|};
    {|var unsigned = function(x) {
  return x >>> 0;
};
print(unsigned(255));|};
    {|var accumulate = function(rounds) {
  var s = "";
  for (var i = 0; i < rounds; i++) {
    s += "ab";
  }
  return s.length;
};
print(accumulate(120));|};
    {|var bigSum = function(a, b) {
  var total = a + b;
  return total;
};
print(bigSum(1000000000, 1200000000));|};
    {|var compareText = function(a, b) {
  if (a < b) { return "less"; }
  if (a > b) { return "more"; }
  return "same";
};
print(compareText("apple", "banana"));|};
    {|var looseEq = function(a, b) {
  return a == b;
};
print(looseEq(0, ""));
print(looseEq(1, "1"));|};
    {|var addMixed = function(flag, n) {
  return flag + n;
};
print(addMixed(false, 10));|};
    {|var viewRound = function(value) {
  var view = new DataView(4);
  view.setUint8(2, value);
  return view.getUint8(2);
};
print(viewRound(77));|};
    {|var wordAt = function(view, offset) {
  return view.getUint16(offset);
};
var dv = new DataView(8);
dv.setUint16(0, 513);
print(wordAt(dv, 0));|};
    {|var encodePretty = function(obj, indent) {
  return JSON.stringify(obj, null, indent);
};
print(encodePretty({a: 1}, 0).length);|};
    {|var parseList = function(text) {
  var arr = JSON.parse(text);
  return arr.length;
};
print(parseList("[10, 20, 30]"));|};
    {|var tryParse = function(text) {
  try {
    return JSON.parse(text);
  } catch (e) {
    return e.name;
  }
};
print(tryParse("{broken"));|};
    {|var evalSum = function(expr) {
  var value = eval(expr);
  return value * 2;
};
print(evalSum("3 + 4"));|};
    {|var evalText = function(code) {
  return eval(code);
};
print(evalText("'ev' + 'al'"));|};
    {|var protect = function(obj) {
  Object.freeze(obj);
  obj.extra = true;
  return Object.keys(obj).length;
};
print(protect({kept: 1}));|};
    {|var shield = function(arr) {
  Object.freeze(arr);
  arr[0] = 99;
  return arr[0];
};
print(shield([7]));|};
    {|var describeProp = function(obj, key) {
  var d = Object.getOwnPropertyDescriptor(obj, key);
  return d.writable;
};
print(describeProp({k: 1}, "k"));|};
    {|var lockLength = function(arr) {
  Object.defineProperty(arr, "length", { writable: false });
  arr.push(9);
  return arr.length;
};
var locked = [1, 2];
print(lockLength(locked));|};
    {|var propNames = function(obj) {
  var names = Object.getOwnPropertyNames(obj);
  return names.join("|");
};
print(propNames({beta: 1, alpha: 2}));|};
    {|var countKeys = function(source) {
  var copy = Object.assign({}, source);
  return Object.keys(copy).length;
};
print(countKeys({0: "a", one: "b", two: "c"}));|};
    {|var ownOnly = function(obj) {
  return obj.hasOwnProperty("valueOf");
};
print(ownOnly({plain: 1}));|};
    {|var removable = function(obj, key) {
  var ok = delete obj[key];
  return ok && obj[key] === undefined;
};
print(removable({tmp: 9}, "tmp"));|};
    {|var precision = function(value, digits) {
  return value.toPrecision(digits);
};
print(precision(0.001234, 2));|};
    {|var toBinary = function(n) {
  return n.toString(2);
};
print(toBinary(37));|};
    {|var money = function(amount) {
  return amount.toFixed(2);
};
print(money(19.999));|};
    {|var fromHexWord = function(word) {
  return parseInt(word, 16);
};
print(fromHexWord("cafe"));|};
    {|var measure = function(text) {
  var n = parseFloat(text);
  if (isNaN(n)) { return -1; }
  return n;
};
print(measure("12.5em"));|};
    {|var isCount = function(v) {
  return Number.isInteger(v) && v >= 0;
};
print(isCount(12));
print(isCount(-3));|};
    {|var safeDivide = function(a, b) {
  if (b === 0) { return Infinity; }
  return a / b;
};
print(safeDivide(10, 4));|};
    {|var roundTrip = function(x) {
  return Math.round(x * 100) / 100;
};
print(roundTrip(2.345));|};
    {|var hyp = function(a, b) {
  return Math.sqrt(a * a + b * b);
};
print(hyp(3, 4));|};
    {|var splitLimit = function(str, sep, limit) {
  var parts = str.split(sep, limit);
  return parts.join("+");
};
print(splitLimit("a:b:c:d", ":", 2));|};
    {|var splitChars = function(word) {
  return word.split("");
};
print(splitChars("xyz"));|};
    {|var extract = function(line) {
  var m = /(\w+)=(\w+)/.exec(line);
  return m[1] + " is " + m[2];
};
print(extract("mode=fast"));|};
    {|var anyMatch = function(str, re) {
  return re.test(str);
};
print(anyMatch("Hello World", /world/i));|};
    {|var countMatches = function(str) {
  var all = str.match(/a/g);
  if (all === null) { return 0; }
  return all.length;
};
print(countMatches("banana"));|};
    {|var searchAt = function(str, re) {
  return str.search(re);
};
print(searchAt("xx42yy", /\d+/));|};
    {|var copyBytes = function(source, offset) {
  var target = new Uint8Array(6);
  target.set(source, offset);
  return target.join(",");
};
print(copyBytes([7, 8, 9], 2));|};
    {|var sliceView = function(values, a, b) {
  var t = new Uint8Array(values);
  return t.subarray(a, b).join("-");
};
print(sliceView([1, 2, 3, 4], 1, 3));|};
    {|var widen = function(count) {
  var words = new Uint32Array(count);
  words[0] = 70000;
  return words[0];
};
print(widen(2));|};
    {|var signByte = function(v) {
  var t = new Int8Array(1);
  t[0] = v;
  return t[0];
};
print(signByte(130));|};
    {|var fillBytes = function(v) {
  var t = new Uint8Array(3);
  t.fill(v);
  return t.join(",");
};
print(fillBytes(9));|};
    {|var countdownSum = function(n) {
  var total = 0;
  do {
    total += n;
    n--;
  } while (n > 0);
  return total;
};
print(countdownSum(4));|};
    {|var firstTruthy = function(a, b, c) {
  return a || b || c;
};
print(firstTruthy(0, "", "third"));|};
    {|var guardAll = function(a, b) {
  return a && b && "both";
};
print(guardAll(1, 2));|};
    {|var pickBranch = function(mode) {
  switch (mode) {
    case "fast": return 1;
    case "slow": return 2;
    default: return 0;
  }
};
print(pickBranch("slow"));|};
    {|var chainOps = function(str) {
  return str.trim().split(",").map(function(p) { return p.toUpperCase(); }).join(";");
};
print(chainOps(" a,b "));|};
    {|var table = {};
var put = function(k, v) { table[k] = v; };
var get = function(k) { return table[k]; };
put("x", 10);
put("y", 20);
print(get("x") + get("y"));|};
    {|var Account = function(start) {
  this.balance = start;
};
Account.prototype.deposit = function(amount) {
  this.balance += amount;
  return this.balance;
};
var acct = new Account(100);
acct.deposit(50);
print(acct.balance);|};
    {|var later = function(v) {
  var thunk = function() { return v; };
  return thunk();
};
print(later("deferred"));|};
    {|var applyAll = function(fns, x) {
  var out = x;
  for (var i = 0; i < fns.length; i++) {
    out = fns[i](out);
  }
  return out;
};
var inc2 = function(v) { return v + 1; };
print(applyAll([inc2, inc2, inc2], 0));|};
    {|var memo = {};
var squareOf = function(n) {
  if (memo[n] !== undefined) { return memo[n]; }
  memo[n] = n * n;
  return memo[n];
};
squareOf(9);
print(squareOf(9));|};
    {|var truthTable = function(a, b) {
  return [a && b, a || b, !a].join("/");
};
print(truthTable(true, false));|};
    {|var stamps = [];
var record = function(label) {
  stamps.push(label);
  return stamps.length;
};
record("one");
record("two");
print(stamps.join(">"));|};
    {|var isEmpty = function(value) {
  if (value === null || value === undefined) { return true; }
  if (value.length !== undefined) { return value.length === 0; }
  return Object.keys(value).length === 0;
};
print(isEmpty([]));
print(isEmpty({a: 1}));|};
    {|var deepGet = function(obj, path) {
  var parts = path.split(".");
  var cur = obj;
  for (var i = 0; i < parts.length; i++) {
    cur = cur[parts[i]];
  }
  return cur;
};
print(deepGet({a: {b: {c: "deep"}}}, "a.b.c"));|};
    {|var padTable = function(rows) {
  return rows.map(function(r) { return ("" + r).padStart(4, " "); }).join("|");
};
print(padTable([1, 22, 333]));|};
  ]


(* Function headers that seed generation (paper §3.2: a corpus of headers
   sampled from the training set). *)
let seed_headers : string list =
  [
    "var a = function(x) {";
    "var f = function(str) {";
    "var check = function(value) {";
    "var run = function(arr, n) {";
    "function foo(a, b) {";
    "function process(str, start, len) {";
    "var helper = function(obj, key) {";
    "var calc = function(num, digits) {";
    "function main(input) {";
    "var test = function(list) {";
    "var convert = function(value, radix) {";
    "function build(size) {";
    "var op = function(a, b, c) {";
    "var pick = function(items, index) {";
    "function compare(x, y) {";
  ]

let full_text : string = String.concat "\n\n" programs
