lib/specdb/db.ml: Ecma_corpus Float Hashtbl Lazy List Option Printf Spec_ast Spec_parser String
