lib/specdb/db.mli: Hashtbl Lazy Spec_ast
