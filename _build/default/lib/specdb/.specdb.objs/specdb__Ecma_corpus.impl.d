lib/specdb/ecma_corpus.ml:
