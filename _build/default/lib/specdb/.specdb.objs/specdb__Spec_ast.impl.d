lib/specdb/spec_ast.ml: Float List Printf String
