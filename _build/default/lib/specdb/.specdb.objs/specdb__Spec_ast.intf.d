lib/specdb/spec_ast.mli:
