lib/specdb/spec_parser.ml: Hashtbl List Printf Re Spec_ast String
