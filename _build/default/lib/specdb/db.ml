(* The structured specification database (the JSON store of Figure 3/4).

   Lookup happens by the last path component of the API name, because the
   data generator sees call sites like [str.substr(a, b)] where the receiver
   type is unknown statically — matching "substr" against
   "String.prototype.substr" is exactly what the paper's tool does. *)

open Spec_ast

type t = {
  entries : entry list;
  by_key : (string, entry list) Hashtbl.t;
}

let last_component (name : string) : string =
  match List.rev (String.split_on_char '.' name) with
  | last :: _ -> last
  | [] -> name

let build (entries : entry list) : t =
  let by_key = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let key = last_component e.e_name in
      let existing = Option.value (Hashtbl.find_opt by_key key) ~default:[] in
      Hashtbl.replace by_key key (existing @ [ e ]))
    entries;
  { entries; by_key }

(* The standard database: the embedded corpus parsed once. *)
let standard : t Lazy.t =
  lazy (build (Spec_parser.parse_document Ecma_corpus.text))

let lookup (db : t) (callee : string) : entry list =
  Option.value (Hashtbl.find_opt db.by_key callee) ~default:[]

(* Entries that actually carry exploitable data: at least one parameter
   with boundary values. *)
let usable_entries (db : t) : entry list =
  List.filter (fun e -> e.e_params <> [] && e.e_parsed_rules > 0) db.entries

(* Aggregate rule coverage over the whole document (§3.1: "around 82%"). *)
let rule_coverage (db : t) : float =
  let total, parsed =
    List.fold_left
      (fun (t, p) e -> (t + e.e_rule_count, p + e.e_parsed_rules))
      (0, 0) db.entries
  in
  if total = 0 then 1.0 else Float.of_int parsed /. Float.of_int total

let stats (db : t) : string =
  Printf.sprintf "%d sections, %d with extractable rules, rule coverage %.1f%%"
    (List.length db.entries)
    (List.length (usable_entries db))
    (100.0 *. rule_coverage db)
