(** The structured specification database (the JSON store of Figure 3/4).

    Lookup happens by the last path component of the API name, because the
    data generator sees call sites like [str.substr(a, b)] whose receiver
    type is unknown statically — matching ["substr"] against
    ["String.prototype.substr"] is exactly what the paper's tool does. *)

type t = {
  entries : Spec_ast.entry list;
  by_key : (string, Spec_ast.entry list) Hashtbl.t;
}

val last_component : string -> string

val build : Spec_ast.entry list -> t

(** The standard database: the embedded ECMA-262 corpus parsed once. *)
val standard : t Lazy.t

val lookup : t -> string -> Spec_ast.entry list

(** Entries carrying exploitable boundary data. *)
val usable_entries : t -> Spec_ast.entry list

(** Aggregate rule coverage over the whole document (paper §3.1: ~82%). *)
val rule_coverage : t -> float

val stats : t -> string
