(* An embedded mini ECMA-262 document.

   Substitution for the real ECMA-262 HTML (see DESIGN.md): sections are
   written in exactly the pseudo-code style of the paper's Figure 1 — a
   header line [Name ( params )] followed by numbered algorithm steps. A
   handful of sections are deliberately written in free-form prose instead;
   these model the parts of the real standard the paper's extractor cannot
   handle (§3.1 reports 82% rule coverage, and §5.3.2 attributes the
   DIE-found lastIndex bug to exactly such a prose rule). *)

let text =
  {ecma|
String.prototype.substr ( start, length )
  1. Let O be RequireObjectCoercible(this value).
  2. Let S be ToString(O).
  3. ReturnIfAbrupt(S).
  4. Let intStart be ToInteger(start).
  5. ReturnIfAbrupt(intStart).
  6. If length is undefined, let end be +Infinity; else let end be ToInteger(length).
  7. ReturnIfAbrupt(end).
  8. Let size be the number of code units in S.
  9. If intStart < 0, let intStart be max(size + intStart, 0).
  10. Let resultLength be min(max(end, 0), size - intStart).
  11. If resultLength <= 0, return the empty String "".
  12. Return a String containing resultLength consecutive code units from S beginning with the code unit at index intStart.

String.prototype.substring ( start, end )
  1. Let O be RequireObjectCoercible(this value).
  2. Let S be ToString(O).
  3. Let len be the number of code units in S.
  4. Let intStart be ToInteger(start).
  5. If end is undefined, let intEnd be len; else let intEnd be ToInteger(end).
  6. Let finalStart be min(max(intStart, 0), len).
  7. Let finalEnd be min(max(intEnd, 0), len).
  8. Let from be min(finalStart, finalEnd).
  9. Let to be max(finalStart, finalEnd).
  10. Return a String of length to - from, containing code units from S.

String.prototype.slice ( start, end )
  1. Let O be RequireObjectCoercible(this value).
  2. Let S be ToString(O).
  3. Let len be the number of code units in S.
  4. Let intStart be ToInteger(start).
  5. If end is undefined, let intEnd be len; else let intEnd be ToInteger(end).
  6. If intStart < 0, let from be max(len + intStart, 0); else let from be min(intStart, len).
  7. If intEnd < 0, let to be max(len + intEnd, 0); else let to be min(intEnd, len).
  8. Let span be max(to - from, 0).
  9. Return a String containing span consecutive code units from S beginning at from.

String.prototype.charAt ( pos )
  1. Let O be RequireObjectCoercible(this value).
  2. Let S be ToString(O).
  3. Let position be ToInteger(pos).
  4. Let size be the number of code units in S.
  5. If position < 0 or position >= size, return the empty String "".
  6. Return a String of length 1 containing one code unit from S, namely the code unit at index position.

String.prototype.charCodeAt ( pos )
  1. Let O be RequireObjectCoercible(this value).
  2. Let S be ToString(O).
  3. Let position be ToInteger(pos).
  4. Let size be the number of code units in S.
  5. If position < 0 or position >= size, return NaN.
  6. Return the Number value of the code unit at index position within S.

String.prototype.indexOf ( searchString, position )
  1. Let O be RequireObjectCoercible(this value).
  2. Let S be ToString(O).
  3. Let searchStr be ToString(searchString).
  4. Let pos be ToInteger(position).
  5. If position is undefined, this step produces the value 0.
  6. Let len be the number of code units in S.
  7. Let start be min(max(pos, 0), len).
  8. Return the smallest possible integer k not smaller than start such that searchStr occurs at k within S; or -1 if there is no such integer.

String.prototype.lastIndexOf ( searchString, position )
  1. Let O be RequireObjectCoercible(this value).
  2. Let S be ToString(O).
  3. Let searchStr be ToString(searchString).
  4. Let numPos be ToNumber(position).
  5. If numPos is NaN, let pos be +Infinity; otherwise, let pos be ToInteger(numPos).
  6. Let len be the number of code units in S.
  7. Let start be min(max(pos, 0), len).
  8. Return the largest possible nonnegative integer k not larger than start such that searchStr occurs at k within S; or -1 if there is no such integer.

String.prototype.includes ( searchString, position )
  1. Let O be RequireObjectCoercible(this value).
  2. Let S be ToString(O).
  3. Let searchStr be ToString(searchString).
  4. Let pos be ToInteger(position).
  5. Let len be the number of code units in S.
  6. Let start be min(max(pos, 0), len).
  7. If searchStr occurs at or after start within S, return true; otherwise return false.

String.prototype.startsWith ( searchString, position )
  1. Let O be RequireObjectCoercible(this value).
  2. Let S be ToString(O).
  3. Let searchStr be ToString(searchString).
  4. Let pos be ToInteger(position).
  5. Let len be the number of code units in S.
  6. Let start be min(max(pos, 0), len).
  7. If the sequence of code units of searchStr occurs at start within S, return true; otherwise return false.

String.prototype.endsWith ( searchString, endPosition )
  1. Let O be RequireObjectCoercible(this value).
  2. Let S be ToString(O).
  3. Let searchStr be ToString(searchString).
  4. If endPosition is undefined, let pos be the number of code units in S; else let pos be ToInteger(endPosition).
  5. Let len be the number of code units in S.
  6. Let end be min(max(pos, 0), len).
  7. If the sequence of code units of searchStr occurs ending at end within S, return true; otherwise return false.

String.prototype.repeat ( count )
  1. Let O be RequireObjectCoercible(this value).
  2. Let S be ToString(O).
  3. Let n be ToInteger(count).
  4. If n < 0, throw a RangeError exception.
  5. If n is +Infinity, throw a RangeError exception.
  6. Return the String value that is made from n copies of S appended together.

String.prototype.padStart ( maxLength, fillString )
  1. Let O be RequireObjectCoercible(this value).
  2. Let S be ToString(O).
  3. Let intMaxLength be ToLength(maxLength).
  4. Let stringLength be the number of code units in S.
  5. If intMaxLength <= stringLength, return S.
  6. If fillString is undefined, let filler be the String consisting solely of one space.
  7. Else, let filler be ToString(fillString).
  8. If filler is the empty String "", return S.
  9. Let truncatedStringFiller be a String of length intMaxLength - stringLength, made of repeated copies of filler.
  10. Return the string-concatenation of truncatedStringFiller and S.

String.prototype.padEnd ( maxLength, fillString )
  1. Let O be RequireObjectCoercible(this value).
  2. Let S be ToString(O).
  3. Let intMaxLength be ToLength(maxLength).
  4. Let stringLength be the number of code units in S.
  5. If intMaxLength <= stringLength, return S.
  6. If fillString is undefined, let filler be the String consisting solely of one space.
  7. Else, let filler be ToString(fillString).
  8. If filler is the empty String "", return S.
  9. Return the string-concatenation of S and repeated copies of filler truncated to intMaxLength - stringLength code units.

String.prototype.split ( separator, limit )
  1. Let O be RequireObjectCoercible(this value).
  2. Let S be ToString(O).
  3. If limit is undefined, let lim be 4294967295; else let lim be ToUint32(limit).
  4. If separator is undefined, return an Array containing the single String S.
  5. If separator is a RegExp object, split S on each match of separator.
  6. Let R be ToString(separator).
  7. If lim = 0, return an empty Array.
  8. If R is the empty String "", return an Array of single code unit Strings.
  9. Return an Array containing the substrings of S delimited by R.

String.prototype.replace ( searchValue, replaceValue )
  1. Let O be RequireObjectCoercible(this value).
  2. Let string be ToString(O).
  3. If searchValue is a RegExp object, apply its match semantics.
  4. Let searchString be ToString(searchValue).
  5. If searchValue is undefined, searchString is the String "undefined".
  6. Let pos be the index of the first occurrence of searchString in string; if there is none, return string.
  7. If IsCallable(replaceValue) is true, let replacement be ToString(Call(replaceValue, undefined, searchString, pos, string)).
  8. Else, let replacement be the result of applying GetSubstitution with ToString(replaceValue).
  9. If searchString is the empty String "", the match occurs at position 0.
  10. Return the string-concatenation of the preceding substring, replacement, and the following substring.

String.prototype.concat ( arg1 )
  1. Let O be RequireObjectCoercible(this value).
  2. Let S be ToString(O).
  3. Let R be S.
  4. Let nextString be ToString(arg1).
  5. Set R to the string-concatenation of R and nextString.
  6. Return R.

String.prototype.trim ( )
  1. Let O be RequireObjectCoercible(this value).
  2. Let S be ToString(O).
  3. Let T be the String value that is a copy of S with both leading and trailing white space removed.
  4. Return T.

String.prototype.normalize ( form )
  1. Let O be RequireObjectCoercible(this value).
  2. Let S be ToString(O).
  3. If form is undefined, let f be "NFC"; else let f be ToString(form).
  4. If f is not one of "NFC", "NFD", "NFKC", or "NFKD", throw a RangeError exception.
  5. Return the String value that is the result of normalizing S into the normalization form named by f.

String.prototype.big ( )
  1. Let O be RequireObjectCoercible(this value).
  2. Let S be ToString(O).
  3. Return the string-concatenation of "<big>", S, and "</big>".

String.prototype.toUpperCase ( )
  1. Let O be RequireObjectCoercible(this value).
  2. Let S be ToString(O).
  3. Return a String where each code unit of S is mapped to its uppercase equivalent.

String.prototype.toLowerCase ( )
  1. Let O be RequireObjectCoercible(this value).
  2. Let S be ToString(O).
  3. Return a String where each code unit of S is mapped to its lowercase equivalent.

Number.prototype.toFixed ( fractionDigits )
  1. Let x be thisNumberValue(this value).
  2. Let f be ToInteger(fractionDigits).
  3. If f < 0 or f > 100, throw a RangeError exception.
  4. If x is NaN, return the String "NaN".
  5. If x >= 1e21, return ToString(x).
  6. Return a String containing x represented in fixed-point notation with f digits after the decimal point.

Number.prototype.toPrecision ( precision )
  1. Let x be thisNumberValue(this value).
  2. If precision is undefined, return ToString(x).
  3. Let p be ToInteger(precision).
  4. If p < 1 or p > 100, throw a RangeError exception.
  5. Return a String containing x represented with p significant digits.

Number.prototype.toString ( radix )
  1. Let x be thisNumberValue(this value).
  2. If radix is undefined, let radixNumber be 10; else let radixNumber be ToInteger(radix).
  3. If radixNumber < 2 or radixNumber > 36, throw a RangeError exception.
  4. If radixNumber = 10, return ToString(x).
  5. Return the String representation of x in the specified radix.

Number.isInteger ( number )
  1. If Type(number) is not Number, return false.
  2. If number is NaN, +Infinity, or -Infinity, return false.
  3. Let integer be ToInteger(number).
  4. If integer is not equal to number, return false.
  5. Return true.

parseInt ( string, radix )
  1. Let inputString be ToString(string).
  2. Let S be a substring of inputString with leading white space removed.
  3. Let R be ToInt32(radix).
  4. If R < 2 or R > 36, return NaN, unless R = 0.
  5. If R = 16 or R = 0, the characters "0x" or "0X" at the start of S are skipped and R becomes 16.
  6. Return the integer value represented by the longest prefix of S made of radix-R digits; if there is no such prefix, return NaN.

parseFloat ( string )
  1. Let inputString be ToString(string).
  2. Let trimmedString be a substring of inputString with leading white space removed.
  3. If neither trimmedString nor any prefix of trimmedString satisfies the syntax of a StrDecimalLiteral, return NaN.
  4. Return the Number value for the longest prefix of trimmedString that satisfies the syntax of a StrDecimalLiteral.

Object.defineProperty ( O, P, Attributes )
  1. If Type(O) is not Object, throw a TypeError exception.
  2. Let key be ToPropertyKey(P).
  3. Let desc be ToPropertyDescriptor(Attributes).
  4. If O is an Array object and key is "length", the length property is not configurable.
  5. If desc.configurable is true and the existing property is not configurable, throw a TypeError exception.
  6. Perform DefinePropertyOrThrow(O, key, desc).
  7. Return O.

Object.freeze ( O )
  1. If Type(O) is not Object, return O.
  2. Let status be SetIntegrityLevel(O, frozen).
  3. If status is false, throw a TypeError exception.
  4. Every own property of O becomes non-configurable, and every data property becomes non-writable.
  5. Return O.

Object.seal ( O )
  1. If Type(O) is not Object, return O.
  2. Let status be SetIntegrityLevel(O, sealed).
  3. If status is false, throw a TypeError exception.
  4. Every own property of O becomes non-configurable.
  5. Return O.

Object.keys ( O )
  1. Let obj be ToObject(O).
  2. Let nameList be EnumerableOwnPropertyNames(obj, key).
  3. Return CreateArrayFromList(nameList).

Object.assign ( target, source )
  1. Let to be ToObject(target).
  2. If source is undefined or null, return to.
  3. Let from be ToObject(source).
  4. For each own enumerable key of from, set the corresponding property of to.
  5. Return to.

Object.create ( O, Properties )
  1. If Type(O) is neither Object nor Null, throw a TypeError exception.
  2. Let obj be OrdinaryObjectCreate(O).
  3. If Properties is not undefined, apply ObjectDefineProperties(obj, Properties).
  4. Return obj.

Object.getOwnPropertyNames ( O )
  1. Let obj be ToObject(O).
  2. Return CreateArrayFromList(the own property keys of obj, in ascending numeric index order followed by property creation order).

Array ( len )
  1. If len is not a Number, return an Array with len as its single element.
  2. Let intLen be ToUint32(len).
  3. If intLen is not equal to ToNumber(len), throw a RangeError exception.
  4. Return an Array object with its length property set to intLen.

Array.prototype.push ( element )
  1. Let O be ToObject(this value).
  2. Let len be ToLength(Get(O, "length")).
  3. Set the property at key ToString(len) of O to element.
  4. Set the length property of O to len + 1.
  5. Return the new length.

Array.prototype.unshift ( element )
  1. Let O be ToObject(this value).
  2. Let len be ToLength(Get(O, "length")).
  3. Move each element of O up by one index.
  4. Set the property at key "0" of O to element.
  5. Set the length property of O to len + 1.
  6. Return the new value of the length property of O.

Array.prototype.splice ( start, deleteCount )
  1. Let O be ToObject(this value).
  2. Let len be ToLength(Get(O, "length")).
  3. Let relativeStart be ToInteger(start).
  4. If relativeStart < 0, let actualStart be max(len + relativeStart, 0); else let actualStart be min(relativeStart, len).
  5. Let dc be ToInteger(deleteCount).
  6. Let actualDeleteCount be min(max(dc, 0), len - actualStart).
  7. Remove actualDeleteCount elements of O starting at index actualStart.
  8. Return an Array containing the removed elements.

Array.prototype.indexOf ( searchElement, fromIndex )
  1. Let O be ToObject(this value).
  2. Let len be ToLength(Get(O, "length")).
  3. Let n be ToInteger(fromIndex).
  4. If n >= len, return -1.
  5. If n < 0, let k be max(len + n, 0); else let k be n.
  6. Return the smallest index not below k whose element is strictly equal to searchElement, or -1.

Array.prototype.includes ( searchElement, fromIndex )
  1. Let O be ToObject(this value).
  2. Let len be ToLength(Get(O, "length")).
  3. Let n be ToInteger(fromIndex).
  4. If n < 0, let k be max(len + n, 0); else let k be n.
  5. Return true if any element at index not below k is SameValueZero equal to searchElement; NaN is considered equal to NaN.
  6. Otherwise return false.

Array.prototype.join ( separator )
  1. Let O be ToObject(this value).
  2. Let len be ToLength(Get(O, "length")).
  3. If separator is undefined, let sep be ",".
  4. Else, let sep be ToString(separator).
  5. For each element, if the element is undefined or null, use the empty String ""; else use ToString of the element.
  6. Return the String made by concatenating the element Strings separated by sep.

Array.prototype.fill ( value, start, end )
  1. Let O be ToObject(this value).
  2. Let len be ToLength(Get(O, "length")).
  3. Let relativeStart be ToInteger(start).
  4. If relativeStart < 0, let k be max(len + relativeStart, 0); else let k be min(relativeStart, len).
  5. If end is undefined, let relativeEnd be len; else let relativeEnd be ToInteger(end).
  6. If relativeEnd < 0, let final be max(len + relativeEnd, 0); else let final be min(relativeEnd, len).
  7. Set every element of O at an index not below k and below final to value.
  8. Return O.

Array.prototype.flat ( depth )
  1. Let O be ToObject(this value).
  2. Let sourceLen be ToLength(Get(O, "length")).
  3. If depth is undefined, let depthNum be 1; else let depthNum be ToInteger(depth).
  4. Return a new Array with the elements of O flattened to depth depthNum.

Array.prototype.reduce ( callbackfn, initialValue )
  1. Let O be ToObject(this value).
  2. Let len be ToLength(Get(O, "length")).
  3. If IsCallable(callbackfn) is false, throw a TypeError exception.
  4. If len = 0 and initialValue is not present, throw a TypeError exception.
  5. If initialValue is undefined and len = 0, throw a TypeError exception.
  6. Accumulate the result of calling callbackfn over the elements of O.
  7. Return the accumulated result.

Array.prototype.sort ( comparefn )
  1. Let O be ToObject(this value).
  2. If comparefn is not undefined and IsCallable(comparefn) is false, throw a TypeError exception.
  3. If comparefn is undefined, elements are compared by the relational comparison of their ToString values.
  4. Sort the elements of O; undefined elements are moved to the end.
  5. Return O.

Array.prototype.slice ( start, end )
  1. Let O be ToObject(this value).
  2. Let len be ToLength(Get(O, "length")).
  3. Let relativeStart be ToInteger(start).
  4. If relativeStart < 0, let k be max(len + relativeStart, 0); else let k be min(relativeStart, len).
  5. If end is undefined, let relativeEnd be len; else let relativeEnd be ToInteger(end).
  6. If relativeEnd < 0, let final be max(len + relativeEnd, 0); else let final be min(relativeEnd, len).
  7. Return a new Array containing the elements of O from index k up to but not including final.

Uint32Array ( length )
  1. If length is undefined, return a new Uint32Array of length 0.
  2. Let elementLength be ToIndex(length).
  3. ToIndex converts length via ToInteger; a fractional Number such as 3.14 is converted to 3.
  4. If elementLength < 0, throw a RangeError exception.
  5. Return a new Uint32Array of length elementLength with all elements set to +0.

Uint8Array ( length )
  1. If length is undefined, return a new Uint8Array of length 0.
  2. Let elementLength be ToIndex(length).
  3. If elementLength < 0, throw a RangeError exception.
  4. Return a new Uint8Array of length elementLength with all elements set to +0.

%TypedArray%.prototype.set ( source, offset )
  1. Let target be the this value; it must be a TypedArray object, or a TypeError exception is thrown.
  2. Let targetOffset be ToInteger(offset).
  3. If targetOffset < 0, throw a RangeError exception.
  4. Let src be ToObject(source); a String value of source such as "123" is treated as an array-like of single code unit Strings.
  5. Let srcLength be ToLength(Get(src, "length")).
  6. If srcLength + targetOffset is greater than the length of target, throw a RangeError exception.
  7. For each index k below srcLength, set target at targetOffset + k to ToNumber of the element of src at k.
  8. Return undefined.

%TypedArray%.prototype.fill ( value, start, end )
  1. Let O be the this value; it must be a TypedArray object.
  2. Let numValue be ToNumber(value).
  3. Let len be the length of O.
  4. Let relativeStart be ToInteger(start).
  5. If end is undefined, let relativeEnd be len; else let relativeEnd be ToInteger(end).
  6. Set every selected element of O to numValue converted to the element type of O.
  7. Return O.

DataView.prototype.getUint8 ( byteOffset )
  1. Let view be the this value; it must be a DataView object, or a TypeError exception is thrown.
  2. Let getIndex be ToIndex(byteOffset).
  3. If getIndex < 0 or getIndex + 1 > the byte length of view, throw a RangeError exception.
  4. Return the unsigned 8-bit integer stored at getIndex.

DataView.prototype.setUint8 ( byteOffset, value )
  1. Let view be the this value; it must be a DataView object, or a TypeError exception is thrown.
  2. Let setIndex be ToIndex(byteOffset).
  3. Let numValue be ToNumber(value).
  4. If setIndex < 0 or setIndex + 1 > the byte length of view, throw a RangeError exception.
  5. Store numValue modulo 256 as an unsigned 8-bit integer at setIndex.
  6. Return undefined.

JSON.stringify ( value, replacer, space )
  1. If value is undefined, return undefined.
  2. If value is a function, return undefined.
  3. If value is NaN or +Infinity or -Infinity, the serialization is the String "null".
  4. If space is a Number, let gap be min(10, ToInteger(space)) space characters.
  5. Return the JSON text serialization of value.

JSON.parse ( text, reviver )
  1. Let jsonString be ToString(text).
  2. If jsonString is not a valid JSON text as specified in ECMA-404, throw a SyntaxError exception.
  3. A trailing comma before a closing bracket or brace, as in "[1, 2, ]", is not valid JSON text; such a text must cause a SyntaxError exception.
  4. Return the ECMAScript value corresponding to jsonString.

eval ( x )
  1. If Type(x) is not String, return x.
  2. Parse x as a Script; if parsing fails, throw a SyntaxError exception.
  3. An IterationStatement such as "for ( Expression ; Expression ; Expression ) Statement" requires the Statement to be present; "for(var i = 0; i < 5; i++)" alone is a SyntaxError.
  4. Evaluate the Script and return its completion value.
  5. If the completion value is empty, return undefined.

RegExp.prototype.test ( S )
  1. Let R be the this value; it must be a RegExp object, or a TypeError exception is thrown.
  2. Let string be ToString(S).
  3. Let match be RegExpExec(R, string).
  4. If match is not null, return true; else return false.

RegExp.prototype.exec ( string )
  1. Let R be the this value; it must be a RegExp object, or a TypeError exception is thrown.
  2. Let S be ToString(string).
  3. Let lastIndex be ToLength(Get(R, "lastIndex")).
  4. If the global flag is false, let lastIndex be 0.
  5. Attempt to match the pattern against S starting at lastIndex.
  6. If the match fails and the global flag is true, perform Set(R, "lastIndex", 0, true).
  7. If the match succeeds and the global flag is true, perform Set(R, "lastIndex", end, true).
  8. Return the match result Array, or null.

Array.prototype.pop ( )
  1. Let O be ToObject(this value).
  2. Let len be ToLength(Get(O, "length")).
  3. If len = 0, return undefined.
  4. Remove and return the element of O at index len - 1.

Array.prototype.shift ( )
  1. Let O be ToObject(this value).
  2. Let len be ToLength(Get(O, "length")).
  3. If len = 0, return undefined.
  4. Remove and return the element of O at index 0, moving the remaining elements down.

Array.prototype.concat ( arg )
  1. Let O be ToObject(this value).
  2. Let A be a new Array.
  3. Append the elements of O to A.
  4. If arg is an Array, append its elements to A; otherwise append arg itself.
  5. Return A.

Boolean ( value )
  1. Let b be ToBoolean(value).
  2. If NewTarget is undefined, return b.
  3. Return a new Boolean object whose BooleanData is b.

RegExp.prototype.compile ( pattern, flags )
  The compile method of a RegExp object re-initialises the pattern and the
  flags of the receiver in place. Its observable behaviour with respect to
  the lastIndex property is specified in prose elsewhere in this document:
  re-initialising a RegExp performs Set(R, "lastIndex", 0, true), and when
  the lastIndex property has been made non-writable that Set operation must
  throw a TypeError exception. Because this requirement is stated in
  running prose rather than numbered algorithm steps, simple rule
  extraction does not capture it.

String.prototype.localeCompare ( that )
  The localeCompare method returns a Number other than NaN that reflects
  the locale-sensitive ordering of the receiver and the argument. The
  actual return values are implementation-defined and depend on the host
  environment's locale data; this clause intentionally places no numbered
  algorithm on the comparison itself.

Date.prototype.toLocaleString ( )
  This function returns a String value whose contents are
  implementation-defined and represent the Date in a convenient,
  human-readable form appropriate to the host environment's current locale
  conventions.

Function.prototype.toString ( )
  The returned String is implementation-defined, with the requirement that
  it has the syntax of a FunctionDeclaration, FunctionExpression, or native
  function placeholder, corresponding to the target function. The exact
  character sequence is deliberately unspecified.

Named function expressions ( )
  The BindingIdentifier of a FunctionExpression is bound inside the
  closure's own scope as an immutable binding: assignments to it in
  non-strict code are silently ignored, and in strict code they throw a
  TypeError exception. This requirement is specified as prose attached to
  the FunctionExpression evaluation semantics rather than as numbered
  steps, so rule extraction passes over it.

Math.random ( )
  Returns a Number value with positive sign, greater than or equal to 0 but
  less than 1, chosen randomly or pseudo randomly with approximately
  uniform distribution over that range, using an implementation-defined
  algorithm or strategy.
Array.prototype.map ( callbackfn, thisArg )
  1. Let O be ToObject(this value).
  2. Let len be ToLength(Get(O, "length")).
  3. If IsCallable(callbackfn) is false, throw a TypeError exception.
  4. Let A be a new Array of length len.
  5. For each index k below len, set A at k to Call(callbackfn, thisArg, element, k, O).
  6. Return A.

Array.prototype.filter ( callbackfn, thisArg )
  1. Let O be ToObject(this value).
  2. Let len be ToLength(Get(O, "length")).
  3. If IsCallable(callbackfn) is false, throw a TypeError exception.
  4. Return a new Array containing the elements of O for which Call(callbackfn, thisArg, element, k, O) is true.

Array.prototype.forEach ( callbackfn, thisArg )
  1. Let O be ToObject(this value).
  2. Let len be ToLength(Get(O, "length")).
  3. If IsCallable(callbackfn) is false, throw a TypeError exception.
  4. For each index k below len, perform Call(callbackfn, thisArg, element, k, O).
  5. Return undefined.

Array.prototype.find ( predicate, thisArg )
  1. Let O be ToObject(this value).
  2. Let len be ToLength(Get(O, "length")).
  3. If IsCallable(predicate) is false, throw a TypeError exception.
  4. Return the first element for which Call(predicate, thisArg, element, k, O) is true, or undefined.

Array.prototype.findIndex ( predicate, thisArg )
  1. Let O be ToObject(this value).
  2. Let len be ToLength(Get(O, "length")).
  3. If IsCallable(predicate) is false, throw a TypeError exception.
  4. Return the index of the first element for which the predicate holds, or -1.

Array.prototype.every ( callbackfn, thisArg )
  1. Let O be ToObject(this value).
  2. Let len be ToLength(Get(O, "length")).
  3. If IsCallable(callbackfn) is false, throw a TypeError exception.
  4. Return false on the first element for which the callback is falsy; otherwise return true.

Array.prototype.some ( callbackfn, thisArg )
  1. Let O be ToObject(this value).
  2. Let len be ToLength(Get(O, "length")).
  3. If IsCallable(callbackfn) is false, throw a TypeError exception.
  4. Return true on the first element for which the callback is truthy; otherwise return false.

Array.prototype.reverse ( )
  1. Let O be ToObject(this value).
  2. Let len be ToLength(Get(O, "length")).
  3. Reverse the order of the elements of O in place.
  4. Return O.

Array.prototype.copyWithin ( target, start, end )
  1. Let O be ToObject(this value).
  2. Let len be ToLength(Get(O, "length")).
  3. Let relativeTarget be ToInteger(target).
  4. Let relativeStart be ToInteger(start).
  5. If end is undefined, let relativeEnd be len; else let relativeEnd be ToInteger(end).
  6. Copy the selected range onto the target position, handling overlap as by a temporary copy.
  7. Return O.

String.prototype.match ( regexp )
  1. Let O be RequireObjectCoercible(this value).
  2. Let S be ToString(O).
  3. If regexp is not a RegExp object, construct one from ToString(regexp).
  4. Return the match result Array of regexp against S, or null.

String.prototype.search ( regexp )
  1. Let O be RequireObjectCoercible(this value).
  2. Let S be ToString(O).
  3. Return the index of the first match of regexp within S, or -1.

String.prototype.at ( index )
  1. Let O be RequireObjectCoercible(this value).
  2. Let S be ToString(O).
  3. Let relativeIndex be ToInteger(index).
  4. If relativeIndex < 0, let k be len + relativeIndex; else let k be relativeIndex.
  5. If k < 0 or k >= len, return undefined.
  6. Return the code unit at index k within S.

Math.max ( value1, value2 )
  1. Let n1 be ToNumber(value1).
  2. Let n2 be ToNumber(value2).
  3. If n1 is NaN, return NaN.
  4. If n2 is NaN, return NaN.
  5. Return the largest of the arguments.

Math.min ( value1, value2 )
  1. Let n1 be ToNumber(value1).
  2. Let n2 be ToNumber(value2).
  3. If n1 is NaN, return NaN.
  4. If n2 is NaN, return NaN.
  5. Return the smallest of the arguments.

Number ( value )
  1. If value is not present, return +0.
  2. Let n be ToNumber(value).
  3. If NewTarget is undefined, return n.
  4. Return a new Number object whose NumberData is n.
|ecma}

