(* The extracted-specification AST of the paper's Figure 4.

   Each ECMA-262 function/constructor section parses to an [entry]: the API
   name plus one [param] per formal parameter, carrying the inferred
   argument type, the boundary values worth probing, and the textual
   boundary conditions the pseudo-code mentions. The [to_json] printer emits
   the Figure 4(b) shape. *)

type jtype =
  | Tinteger
  | Tnumber
  | Tstring
  | Tboolean
  | Tobject
  | Tfunction
  | Tany

let jtype_to_string = function
  | Tinteger -> "integer"
  | Tnumber -> "number"
  | Tstring -> "string"
  | Tboolean -> "boolean"
  | Tobject -> "object"
  | Tfunction -> "function"
  | Tany -> "any"

(* A boundary value is a small JS expression in source form, e.g.
   ["undefined"], ["NaN"], ["-1"], ["\"\""]. Keeping source text (rather
   than a semantic value) is what lets the data generator splice them into
   test programs directly. *)
type boundary = string

type param = {
  p_name : string;
  p_type : jtype;
  p_values : boundary list;     (** boundary values from the spec text *)
  p_conditions : string list;   (** e.g. ["length === undefined"] *)
  p_optional : bool;
}

type entry = {
  e_name : string;              (** e.g. "String.prototype.substr" *)
  e_params : param list;
  e_receiver : jtype;           (** type of a sensible [this] value *)
  e_returns_exn : string list;  (** exception kinds the steps may throw *)
  e_rule_count : int;           (** numbered steps in the section *)
  e_parsed_rules : int;         (** steps the extractor understood *)
}

let coverage (e : entry) : float =
  if e.e_rule_count = 0 then 1.0
  else Float.of_int e.e_parsed_rules /. Float.of_int e.e_rule_count

let quote s = "\"" ^ String.concat "\\\"" (String.split_on_char '"' s) ^ "\""

let param_to_json (p : param) : string =
  Printf.sprintf
    "{ \"name\": %s, \"type\": %s, \"values\": [%s], \"conditions\": [%s] }"
    (quote p.p_name)
    (quote (jtype_to_string p.p_type))
    (String.concat ", " (List.map quote p.p_values))
    (String.concat ", " (List.map quote p.p_conditions))

let to_json (e : entry) : string =
  Printf.sprintf "{ %s: [%s] }" (quote e.e_name)
    (String.concat ", " (List.map param_to_json e.e_params))
