(** The extracted-specification AST of the paper's Figure 4.

    Each ECMA-262 function/constructor section parses to an {!entry}: the
    API name plus one {!param} per formal parameter, carrying the inferred
    argument type, the boundary values worth probing and the textual
    boundary conditions the pseudo-code mentions. {!to_json} emits the
    Figure 4(b) shape. *)

type jtype =
  | Tinteger
  | Tnumber
  | Tstring
  | Tboolean
  | Tobject
  | Tfunction
  | Tany

val jtype_to_string : jtype -> string

(** A boundary value is a small JS expression in source form (e.g.
    ["undefined"], ["-1"], ["\"\""]) so the data generator can splice it
    into test programs directly. *)
type boundary = string

type param = {
  p_name : string;
  p_type : jtype;
  p_values : boundary list;
  p_conditions : string list;  (** e.g. ["length === undefined"] *)
  p_optional : bool;
}

type entry = {
  e_name : string;             (** e.g. "String.prototype.substr" *)
  e_params : param list;
  e_receiver : jtype;          (** type of a sensible [this] value *)
  e_returns_exn : string list; (** exception kinds the steps may throw *)
  e_rule_count : int;          (** numbered steps + prose lines *)
  e_parsed_rules : int;        (** rules the extractor understood *)
}

val coverage : entry -> float

val param_to_json : param -> string
val to_json : entry -> string
