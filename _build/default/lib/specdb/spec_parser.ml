(* Regex-based extraction of specification rules (paper §3.1).

   The extractor mirrors the paper's approach: hand-written regular
   expressions over the pseudo-code steps of each section ("Let $Var be
   $Func($Edn)", "If $Var is undefined, ...", "If $Var < $N or $Var > $M,
   throw a $Kind exception", ...). Sections written in free-form prose
   contribute to the rule count but produce no extracted rules, which is
   what bounds the overall coverage below 100% (the paper reports 82%). *)

open Spec_ast

type section = {
  s_name : string;
  s_params : string list;
  s_steps : string list;   (* numbered algorithm steps *)
  s_prose : string list;   (* non-numbered body lines *)
}

let header_re =
  Re.Pcre.re {|^([A-Za-z%][A-Za-z0-9_.%]*(?:\.[A-Za-z0-9_]+)*)\s*\(\s*([^)]*)\)\s*$|}
  |> Re.compile

let step_re = Re.Pcre.re {|^\s*(\d+)\.\s+(.*)$|} |> Re.compile

let split_sections (doc : string) : section list =
  let lines = String.split_on_char '\n' doc in
  let sections = ref [] in
  let current = ref None in
  let flush () =
    match !current with
    | Some s ->
        sections := { s with s_steps = List.rev s.s_steps; s_prose = List.rev s.s_prose } :: !sections;
        current := None
    | None -> ()
  in
  List.iter
    (fun line ->
      match Re.exec_opt header_re line with
      | Some g ->
          flush ();
          let name = Re.Group.get g 1 in
          let params =
            Re.Group.get g 2 |> String.split_on_char ','
            |> List.map String.trim
            |> List.filter (fun s -> s <> "")
          in
          current := Some { s_name = name; s_params = params; s_steps = []; s_prose = [] }
      | None -> (
          match !current with
          | None -> ()
          | Some s -> (
              match Re.exec_opt step_re line with
              | Some g ->
                  current := Some { s with s_steps = Re.Group.get g 2 :: s.s_steps }
              | None ->
                  let t = String.trim line in
                  if t <> "" then current := Some { s with s_prose = t :: s.s_prose })))
    lines;
  flush ();
  List.rev !sections

(* --- step-level extraction --- *)

let re c = Re.compile (Re.Pcre.re c)

let let_conv_re = re {|Let\s+(\w+)\s+be\s+(To\w+|IsCallable)\((\w+)\)|}
let conv_re = re {|(To\w+|IsCallable|thisNumberValue)\((\w+)\)|}
let is_undefined_re = re {|If\s+(\w+)\s+is\s+undefined|}
let is_nan_re = re {|If\s+(\w+)\s+is\s+NaN|}
let not_present_re = re {|(\w+)\s+is\s+not\s+present|}
let range_throw_re =
  (* note: the [re] library has no backreferences, so the "same variable on
     both sides" constraint is checked in code after matching *)
  re {|If\s+(\w+)\s*<\s*(-?\d+)\s+or\s+(\w+)\s*>\s*(-?\d+),\s*throw\s+a\s+(\w+Error)|}
let lt_zero_re = re {|If\s+(\w+)\s*<\s*0|}
let throw_re = re {|throw(?:s)?\s+a\s+(\w+Error)|}
let quoted_re = re {|"([^"]*)"|}
let is_infinity_re = re {|If\s+(\w+)\s+is\s+\+?Infinity|}

let type_of_conversion = function
  | "ToInteger" | "ToLength" | "ToUint32" | "ToInt32" | "ToIndex" -> Tinteger
  | "ToNumber" | "thisNumberValue" -> Tnumber
  | "ToString" -> Tstring
  | "ToBoolean" -> Tboolean
  | "ToObject" | "ToPropertyDescriptor" | "ToPropertyKey" -> Tobject
  | "IsCallable" -> Tfunction
  | _ -> Tany

(* Default boundary values per inferred type — the values column of
   Figure 4(b). *)
let default_values = function
  | Tinteger -> [ "1"; "-1"; "0"; "NaN"; "3.14"; "Infinity"; "-Infinity"; "undefined" ]
  | Tnumber -> [ "0"; "-1"; "3.14"; "NaN"; "Infinity"; "undefined" ]
  | Tstring -> [ "\"\""; "\"abc\""; "undefined"; "null" ]
  | Tboolean -> [ "true"; "false"; "undefined" ]
  | Tobject ->
      (* descriptor-shaped objects first: they are the canonical
         object-typed boundary inputs for the reflection APIs *)
      [ "{ value: 1, configurable: true }"; "{ writable: false }";
        "{ enumerable: false }"; "null"; "undefined"; "{}" ]
  | Tfunction -> [ "undefined" ]
  | Tany -> [ "undefined"; "null"; "0"; "\"\"" ]

type accum = {
  mutable ty : jtype;
  mutable values : string list;
  mutable conditions : string list;
  mutable optional : bool;
}

let parse_section (s : section) : entry =
  let accums =
    List.map
      (fun p -> (p, { ty = Tany; values = []; conditions = []; optional = false }))
      s.s_params
  in
  (* map derived variables back to the parameter they came from:
     "Let intStart be ToInteger(start)" makes intStart an alias of start *)
  let aliases : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let resolve v =
    match Hashtbl.find_opt aliases v with Some p -> p | None -> v
  in
  let accum_of v = List.assoc_opt (resolve v) accums in
  let parsed = ref 0 in
  let exns = ref [] in
  let add_value acc v = if not (List.mem v acc.values) then acc.values <- acc.values @ [ v ] in
  let add_cond acc c =
    if not (List.mem c acc.conditions) then acc.conditions <- acc.conditions @ [ c ]
  in
  List.iter
    (fun step ->
      let understood = ref false in
      (* conversions establish parameter types and aliases *)
      (match Re.exec_opt let_conv_re step with
      | Some g ->
          let var = Re.Group.get g 1
          and conv = Re.Group.get g 2
          and src = Re.Group.get g 3 in
          (match accum_of src with
          | Some acc ->
              if acc.ty = Tany then acc.ty <- type_of_conversion conv;
              Hashtbl.replace aliases var (resolve src);
              understood := true
          | None -> ())
      | None -> ());
      (match Re.exec_opt conv_re step with
      | Some g ->
          let conv = Re.Group.get g 1 and src = Re.Group.get g 2 in
          (match accum_of src with
          | Some acc ->
              if acc.ty = Tany then acc.ty <- type_of_conversion conv;
              understood := true
          | None -> ())
      | None -> ());
      (* boundary conditions *)
      (match Re.exec_opt is_undefined_re step with
      | Some g -> (
          match accum_of (Re.Group.get g 1) with
          | Some acc ->
              add_value acc "undefined";
              add_cond acc (resolve (Re.Group.get g 1) ^ " === undefined");
              understood := true
          | None -> ())
      | None -> ());
      (match Re.exec_opt is_nan_re step with
      | Some g -> (
          match accum_of (Re.Group.get g 1) with
          | Some acc ->
              add_value acc "NaN";
              add_cond acc ("isNaN(" ^ resolve (Re.Group.get g 1) ^ ")");
              understood := true
          | None -> ())
      | None -> ());
      (match Re.exec_opt is_infinity_re step with
      | Some g -> (
          match accum_of (Re.Group.get g 1) with
          | Some acc ->
              add_value acc "Infinity";
              understood := true
          | None -> ())
      | None -> ());
      (match Re.exec_opt not_present_re step with
      | Some g -> (
          match accum_of (Re.Group.get g 1) with
          | Some acc ->
              acc.optional <- true;
              understood := true
          | None -> ())
      | None -> ());
      (match Re.exec_opt range_throw_re step with
      | Some g when Re.Group.get g 1 = Re.Group.get g 3 -> (
          match accum_of (Re.Group.get g 1) with
          | Some acc ->
              let lo = int_of_string (Re.Group.get g 2) in
              let hi = int_of_string (Re.Group.get g 4) in
              List.iter
                (fun v -> add_value acc (string_of_int v))
                [ lo - 1; lo; hi; hi + 1 ];
              add_cond acc
                (Printf.sprintf "%s < %d || %s > %d"
                   (resolve (Re.Group.get g 1)) lo
                   (resolve (Re.Group.get g 1)) hi);
              exns := Re.Group.get g 5 :: !exns;
              understood := true
          | None -> ())
      | _ -> ());
      (match Re.exec_opt lt_zero_re step with
      | Some g -> (
          match accum_of (Re.Group.get g 1) with
          | Some acc ->
              add_value acc "-1";
              add_cond acc (resolve (Re.Group.get g 1) ^ " < 0");
              understood := true
          | None -> ())
      | None -> ());
      (match Re.exec_opt throw_re step with
      | Some g ->
          exns := Re.Group.get g 1 :: !exns;
          understood := true
      | None -> ());
      (* quoted literals are boundary inputs in their own right (the eval
         for-loop edge case, the "length" key of defineProperty, the "123"
         array-like of %TypedArray%.set): attach each literal of a step to
         the parameter the step talks about — the single parameter for
         unary entries, or any parameter whose name (or alias) occurs in
         the step text *)
      (let attach acc lit =
         if String.length lit > 2 then begin
           add_value acc
             ("\"" ^ String.concat "\\\"" (String.split_on_char '"' lit) ^ "\"");
           understood := true
         end
       in
       let mentioned_params =
         match s.s_params with
         | [ only ] -> [ only ]
         | params ->
             List.filter
               (fun pn ->
                 let word_re =
                   re ("\\b" ^ pn ^ "\\b")
                 in
                 Re.execp word_re step
                 || Hashtbl.fold
                      (fun alias target acc ->
                        acc || (target = pn && Re.execp (re ("\\b" ^ alias ^ "\\b")) step))
                      aliases false)
               params
       in
       match mentioned_params with
       | [ pn ] -> (
           match List.assoc_opt pn accums with
           | Some acc ->
               List.iter (fun g -> attach acc (Re.Group.get g 1)) (Re.all quoted_re step)
           | None -> ())
       | _ -> ());
      (* bookkeeping steps we recognise but that carry no data *)
      let trivial =
        List.exists
          (fun pat -> Re.execp (re pat) step)
          [
            {|^ReturnIfAbrupt|}; {|^Return\b|}; {|^Let\s+\w+\s+be\b|};
            {|RequireObjectCoercible|}; {|^Set\b|}; {|^Remove\b|};
            {|^Sort\b|}; {|^Accumulate\b|}; {|^Append\b|}; {|^Move\b|};
            {|^Store\b|}; {|^Attempt\b|}; {|^Evaluate\b|}; {|^Parse\b|};
            {|^Perform\b|}; {|^For each\b|}; {|^If\b.*\breturn\b|};
            {|^Else,?\s+let\s+\w+\s+be\b|};
          ]
      in
      if !understood || trivial then incr parsed)
    s.s_steps;
  (* enrich with type-default boundary values *)
  let params =
    List.map
      (fun (name, acc) ->
        {
          p_name = name;
          p_type = acc.ty;
          p_values = acc.values @ List.filter (fun v -> not (List.mem v acc.values)) (default_values acc.ty);
          p_conditions = acc.conditions;
          p_optional = acc.optional;
        })
      accums
  in
  let receiver =
    if String.length s.s_name >= 7 && String.sub s.s_name 0 7 = "String." then Tstring
    else if String.length s.s_name >= 7 && String.sub s.s_name 0 7 = "Number." then Tnumber
    else Tobject
  in
  {
    e_name = s.s_name;
    e_params = params;
    e_receiver = receiver;
    e_returns_exn = List.sort_uniq compare !exns;
    e_rule_count = List.length s.s_steps + List.length s.s_prose;
    e_parsed_rules = !parsed;
  }

let parse_document (doc : string) : entry list =
  List.map parse_section (split_sections doc)
