lib/util/rng.mli:
