lib/util/table.mli:
