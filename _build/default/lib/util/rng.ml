(* Deterministic splittable pseudo-random number generator (splitmix64).

   Every stochastic component of the reproduction (language-model sampling,
   datagen mutation, baseline fuzzers, campaign scheduling) draws from an
   explicit [t] so that experiments are reproducible from a single integer
   seed, independently of OCaml's global [Random] state. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 step; see Steele, Lea & Flood, OOPSLA 2014. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Derive an independent stream; used to give each fuzzing worker its own
   generator without correlating their draws. *)
let split t =
  let s = next_int64 t in
  { state = Int64.mul s 0x2545F4914F6CDD1DL }

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod n

let float t x = Float.of_int (bits t) /. Float.of_int (1 lsl 62 - 1) *. x

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* True with probability [p]. *)
let chance t p = float t 1.0 < p

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let pick_arr t a =
  if Array.length a = 0 then invalid_arg "Rng.pick_arr: empty array";
  a.(int t (Array.length a))

(* Weighted choice over [(weight, value)] pairs with positive weights. *)
let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 choices in
  if total <= 0 then invalid_arg "Rng.weighted: weights must sum positive";
  let k = int t total in
  let rec go k = function
    | [] -> invalid_arg "Rng.weighted: unreachable"
    | (w, v) :: tl -> if k < w then v else go (k - w) tl
  in
  go k choices

let shuffle t a =
  let a = Array.copy a in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

(* [sample t n l] draws [n] elements without replacement (fewer if [l] is
   shorter than [n]). *)
let sample t n l =
  let a = shuffle t (Array.of_list l) in
  Array.to_list (Array.sub a 0 (min n (Array.length a)))
