(** Deterministic splittable pseudo-random number generator (splitmix64).

    Every stochastic component of the reproduction draws from an explicit
    [t] so that experiments replay exactly from a single integer seed. *)

type t

val create : int -> t
val copy : t -> t

(** Derive an independent stream. *)
val split : t -> t

val next_int64 : t -> int64
val bits : t -> int

(** Uniform in [\[0, n)]. @raise Invalid_argument if [n <= 0]. *)
val int : t -> int -> int

(** Uniform in [\[0, x\]]. *)
val float : t -> float -> float

val bool : t -> bool

(** True with probability [p]. *)
val chance : t -> float -> bool

val pick : t -> 'a list -> 'a
val pick_arr : t -> 'a array -> 'a

(** Weighted choice over positive [(weight, value)] pairs. *)
val weighted : t -> (int * 'a) list -> 'a

(** A shuffled copy. *)
val shuffle : t -> 'a array -> 'a array

(** [sample t n l] draws up to [n] elements without replacement. *)
val sample : t -> int -> 'a list -> 'a list
