(* Plain-text table rendering for experiment reports.

   The bench harness prints every reproduced paper table through this module
   so that `bench/main.exe` output can be diffed across runs. *)

type align = Left | Right

type t = {
  header : string list;
  aligns : align list;
  mutable rows : string list list; (* reverse order *)
}

let create ?aligns header =
  let aligns =
    match aligns with
    | Some a -> a
    | None -> List.map (fun _ -> Left) header
  in
  if List.length aligns <> List.length header then
    invalid_arg "Table.create: aligns/header length mismatch";
  { header; aligns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.header then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else
    match align with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          (String.length h) rows)
      t.header
  in
  let line ch =
    "+"
    ^ String.concat "+" (List.map (fun w -> String.make (w + 2) ch) widths)
    ^ "+"
  in
  let render_row row =
    let cells =
      List.mapi
        (fun i cell ->
          let w = List.nth widths i and a = List.nth t.aligns i in
          " " ^ pad a w cell ^ " ")
        row
    in
    "|" ^ String.concat "|" cells ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_row t.header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line '=');
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf (line '-');
  Buffer.contents buf

let print t = print_string (render t ^ "\n")
