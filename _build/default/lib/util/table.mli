(** Plain-text table rendering for experiment reports. The bench harness
    prints every reproduced paper table through this module so that
    [bench/main.exe] output diffs cleanly across runs. *)

type align = Left | Right

type t

(** @raise Invalid_argument when [aligns] and [header] lengths differ. *)
val create : ?aligns:align list -> string list -> t

(** @raise Invalid_argument on arity mismatch with the header. *)
val add_row : t -> string list -> unit

val render : t -> string
val print : t -> unit
