test/helpers.ml: Alcotest Jsinterp List Printf Quirk Run String
