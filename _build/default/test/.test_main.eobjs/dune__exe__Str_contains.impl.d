test/str_contains.ml: String
