test/test_array_builtins.ml: Helpers List
