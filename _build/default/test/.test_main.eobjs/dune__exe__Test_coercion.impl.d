test/test_coercion.ml: Helpers List
