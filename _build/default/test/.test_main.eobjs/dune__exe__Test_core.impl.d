test/test_core.ml: Alcotest Comfort Engines Helpers Jsast Jsinterp Jsparse List Option Str_contains String
