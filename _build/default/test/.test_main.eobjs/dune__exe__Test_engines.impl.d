test/test_engines.ml: Alcotest Catalogue Engine Engines Helpers Jsinterp List Option Printf Quirk Registry Run
