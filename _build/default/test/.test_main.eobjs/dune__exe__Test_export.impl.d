test/test_export.ml: Alcotest Comfort Engines Filename Helpers Jsinterp Jsparse List Option Quirk Str_contains
