test/test_feedback.ml: Alcotest Comfort Helpers Jsparse List
