test/test_groundtruth.ml: Alcotest Comfort Engines Helpers Jsinterp List Quirk Test_quirks
