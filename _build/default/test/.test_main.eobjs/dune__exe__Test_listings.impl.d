test/test_listings.ml: Alcotest Engines Helpers Jsinterp Option Printf
