test/test_lm.ml: Alcotest Comfort Cutil Helpers Jsinterp Jsparse Lazy List Lm Printf Str_contains String
