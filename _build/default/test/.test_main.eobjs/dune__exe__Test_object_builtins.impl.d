test/test_object_builtins.ml: Helpers List
