test/test_parser.ml: Alcotest Float Helpers Jsast Jsparse List QCheck2 QCheck_alcotest
