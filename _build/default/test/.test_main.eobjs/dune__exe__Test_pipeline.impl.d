test/test_pipeline.ml: Alcotest Baselines Comfort Engines Helpers Jsast Jsinterp Jsparse List
