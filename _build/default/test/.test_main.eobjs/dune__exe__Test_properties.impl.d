test/test_properties.ml: Comfort Engines Jsast Jsinterp Jsparse List QCheck2 QCheck_alcotest String
