test/test_quirks.ml: Alcotest Engines Helpers Jsinterp List Printf Quirk Run
