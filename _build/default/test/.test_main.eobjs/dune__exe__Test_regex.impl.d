test/test_regex.ml: Alcotest Array Helpers Jsinterp List Option QCheck2 QCheck_alcotest Regex String
