test/test_specdb.ml: Alcotest Db Helpers Lazy List Printf Spec_ast Specdb Str_contains String
