test/test_string_builtins.ml: Helpers List
