test/test_util.ml: Alcotest Array Cutil Helpers List Str_contains
