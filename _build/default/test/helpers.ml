(* Shared helpers for the test suite. *)

open Jsinterp

let quirks_of (l : Quirk.t list) =
  List.fold_left (fun s q -> Quirk.Set.add q s) Quirk.Set.empty l

(* Run on the conforming reference engine and return printed output. *)
let out ?(strict = false) src =
  let r = Run.run ~strict src in
  (match r.Run.r_parse_error with
  | Some e -> Alcotest.failf "unexpected syntax error: %s in %s" e src
  | None -> ());
  (match r.Run.r_status with
  | Run.Sts_normal -> ()
  | s -> Alcotest.failf "unexpected status %s for %s" (Run.status_to_string s) src);
  r.Run.r_output

(* Run with a quirk set. *)
let out_q ?(strict = false) quirks src =
  (Run.run ~strict ~quirks:(quirks_of quirks) src).Run.r_output

(* Name of the error an uncaught throw carries, or "none". *)
let error_of ?(strict = false) ?(quirks = []) src =
  match (Run.run ~strict ~quirks:(quirks_of quirks) src).Run.r_status with
  | Run.Sts_uncaught (name, _) -> name
  | Run.Sts_crash _ -> "crash"
  | Run.Sts_timeout -> "timeout"
  | Run.Sts_normal -> "none"

let status ?(quirks = []) ?(strict = false) src =
  Run.status_to_string
    (Run.run ~strict ~quirks:(quirks_of quirks) src).Run.r_status

(* Assert the program prints [expected] (trailing newline added). *)
let check_out ?strict name src expected =
  Alcotest.(check string) name (expected ^ "\n") (out ?strict src)

(* Assert a snippet prints [expected]. The snippet is an expression, or
   "stmt; stmt; expr" — everything up to the last top-level ';' runs as
   statements and the final expression is printed. *)
let check_expr name snippet expected =
  (* find the last ';' at nesting depth 0, outside string literals *)
  let last_top_semi =
    let depth = ref 0 and in_str = ref None and found = ref None in
    String.iteri
      (fun i c ->
        match !in_str with
        | Some q -> if c = q then in_str := None
        | None -> (
            match c with
            | '"' | '\'' -> in_str := Some c
            | '(' | '{' | '[' -> incr depth
            | ')' | '}' | ']' -> decr depth
            | ';' when !depth = 0 -> found := Some i
            | _ -> ()))
      snippet;
    !found
  in
  let src =
    match last_top_semi with
    | Some i ->
        let stmts = String.sub snippet 0 (i + 1) in
        let last = String.sub snippet (i + 1) (String.length snippet - i - 1) in
        Printf.sprintf "%s\nprint(%s);" stmts (String.trim last)
    | None -> Printf.sprintf "print(%s);" snippet
  in
  check_out name src expected

(* Assert the program throws an error with the given name. *)
let check_error ?strict name src kind =
  Alcotest.(check string) name kind (error_of ?strict src)

let case name f = Alcotest.test_case name `Quick f
