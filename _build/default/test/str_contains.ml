(* Tiny substring predicate used across test modules. *)

let contains (haystack : string) (needle : string) : bool =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  m = 0 || go 0
