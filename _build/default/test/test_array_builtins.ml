(* Array.prototype conformance on the reference engine. *)

open Helpers

let tests =
  [
    ("length", {|[1, 2, 3].length|}, "3");
    ("empty length", {|[].length|}, "0");
    ("elision length", {|[1, , 3].length|}, "3");
    ("index read", {|[10, 20][1]|}, "20");
    ("oob read", {|[1][5]|}, "undefined");
    ("push returns length", {|[1].push(2, 3)|}, "3");
    ("pop", {|[1, 2, 3].pop()|}, "3");
    ("pop empty", {|[].pop()|}, "undefined");
    ("shift", {|[1, 2].shift()|}, "1");
    ("unshift returns length", {|[2, 3].unshift(1)|}, "3");
    ("slice", {|[1, 2, 3, 4].slice(1, 3)|}, "2,3");
    ("slice negative", {|[1, 2, 3, 4].slice(-2)|}, "3,4");
    ("slice copy", {|[1, 2].slice() + ""|}, "1,2");
    ("splice removes", {|[1, 2, 3, 4].splice(1, 2)|}, "2,3");
    ("splice inserts", {|var a = [1, 4]; a.splice(1, 0, 2, 3); a + ""|}, "1,2,3,4");
    ("splice negative delcount clamps", {|var a = [1, 2, 3]; a.splice(0, -1); a + ""|}, "1,2,3");
    ("splice negative start", {|var a = [1, 2, 3]; a.splice(-1, 1); a + ""|}, "1,2");
    ("indexOf", {|[5, 6, 7].indexOf(6)|}, "1");
    ("indexOf strict", {|[1, "1"].indexOf("1")|}, "1");
    ("indexOf NaN never found", {|[NaN].indexOf(NaN)|}, "-1");
    ("indexOf fromIndex", {|[1, 2, 1].indexOf(1, 1)|}, "2");
    ("lastIndexOf", {|[1, 2, 1].lastIndexOf(1)|}, "2");
    ("includes", {|[1, 2].includes(2)|}, "true");
    ("includes NaN found", {|[NaN].includes(NaN)|}, "true");
    ("includes miss", {|[1, 2].includes(3)|}, "false");
    ("join", {|[1, 2, 3].join("-")|}, "1-2-3");
    ("join default comma", {|[1, 2].join()|}, "1,2");
    ("join null/undefined empty", {|[1, null, undefined, 2].join("-")|}, "1---2");
    ("concat", {|[1].concat([2, 3], 4)|}, "1,2,3,4");
    ("reverse in place", {|var a = [1, 2, 3]; a.reverse(); a + ""|}, "3,2,1");
    ("sort lexicographic", {|[10, 9, 1].sort()|}, "1,10,9");
    ("sort strings", {|["b", "a", "c"].sort()|}, "a,b,c");
    ("sort comparator", {|[10, 9, 1].sort(function(a, b) { return a - b; })|}, "1,9,10");
    ("sort undefined last", {|[3, undefined, 1].sort()|}, "1,3,");
    ("sort returns this", {|var a = [2, 1]; a.sort() === a|}, "true");
    ("map", {|[1, 2, 3].map(function(x) { return x * x; })|}, "1,4,9");
    ("map index arg", {|["a", "b"].map(function(v, i) { return i + v; })|}, "0a,1b");
    ("filter", {|[1, 2, 3, 4].filter(function(x) { return x % 2; })|}, "1,3");
    ("forEach", {|var s = 0; [1, 2, 3].forEach(function(x) { s += x; }); s|}, "6");
    ("reduce with seed", {|[1, 2, 3].reduce(function(a, b) { return a + b; }, 10)|}, "16");
    ("reduce no seed", {|[1, 2, 3].reduce(function(a, b) { return a + b; })|}, "6");
    ("every", {|[1, 2].every(function(x) { return x > 0; })|}, "true");
    ("some", {|[1, 2].some(function(x) { return x > 1; })|}, "true");
    ("find", {|[1, 8, 3].find(function(x) { return x > 5; })|}, "8");
    ("find miss", {|[1].find(function(x) { return x > 5; })|}, "undefined");
    ("findIndex", {|[1, 8, 3].findIndex(function(x) { return x > 5; })|}, "1");
    ("fill", {|[1, 2, 3].fill(0)|}, "0,0,0");
    ("fill range", {|[1, 2, 3, 4].fill(9, 1, 3)|}, "1,9,9,4");
    ("flat default depth", {|[1, [2, [3]]].flat()|}, "1,2,3");
    ("flat depth 2", {|[1, [2, [3, [4]]]].flat(2)|}, "1,2,3,4");
    ("Array.isArray yes", {|Array.isArray([])|}, "true");
    ("Array.isArray no", {|Array.isArray("no")|}, "false");
    ("Array.of", {|Array.of(7, 8)|}, "7,8");
    ("Array.from string", {|Array.from("ab")|}, "a,b");
    ("new Array(n) length", {|new Array(4).length|}, "4");
    ("new Array elements", {|new Array(1, 2, 3)|}, "1,2,3");
    ("length assignment truncates", {|var a = [1, 2, 3]; a.length = 1; a + ""|}, "1");
    ("length assignment extends", {|var a = [1]; a.length = 3; a.length|}, "3");
    ("sparse write grows", {|var a = []; a[3] = 1; a.length|}, "4");
    ("array in for-in", {|var ks = []; for (var k in [9, 8]) ks.push(k); ks + ""|}, "0,1");
    ("nested arrays", {|[[1, 2], [3]][0][1]|}, "2");
    ("at positive", {|[10, 20, 30].at(1)|}, "20");
    ("at negative", {|[10, 20, 30].at(-1)|}, "30");
    ("at out of range", {|[1].at(5)|}, "undefined");
    ("copyWithin basic", {|[1, 2, 3, 4, 5].copyWithin(0, 3)|}, "4,5,3,4,5");
    ("copyWithin range", {|[1, 2, 3, 4, 5].copyWithin(1, 3, 4)|}, "1,4,3,4,5");
    ("copyWithin returns this", {|var a = [1, 2]; a.copyWithin(0, 1) === a|}, "true");
    ("keys of array", {|[9, 8, 7].keys()|}, "0,1,2");
  ]

let error_tests () =
  check_error "reduce empty no seed"
    {|print([].reduce(function(a, b) { return a + b; }));|} "TypeError";
  check_error "new Array negative" {|print(new Array(-1));|} "RangeError";
  check_error "new Array fractional" {|print(new Array(1.5));|} "RangeError";
  check_error "array length invalid" {|var a = []; a.length = -1; print(a);|} "RangeError"

let mutation_tests () =
  check_out "push then index" "var a = []; a.push(\"x\"); print(a[0]);" "x";
  check_out "element write" "var a = [1, 2]; a[0] = 9; print(a);" "9,2";
  check_out "array of arrays mutation"
    "var m = [[0, 0], [0, 0]]; m[1][0] = 5; print(m);" "0,0,5,0";
  check_out "delete element leaves hole"
    "var a = [1, 2, 3]; delete a[1]; print(a.length); print(a[1]);" "3\nundefined"

let suite =
  List.map
    (fun (name, expr, expected) -> case name (fun () -> check_expr name expr expected))
    tests
  @ [ case "error cases" error_tests; case "mutation" mutation_tests ]
