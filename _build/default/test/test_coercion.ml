(* The ECMA-262 abstract-operation matrix: ToString / ToNumber / ToBoolean
   / ToPrimitive / equality across every value-kind pairing. Conformance
   bugs live in coercions, so the reference engine must be right here. *)

open Helpers

let to_string_matrix =
  [
    ("undefined", "\"\" + undefined", "undefined");
    ("null", "\"\" + null", "null");
    ("true", "\"\" + true", "true");
    ("false", "\"\" + false", "false");
    ("int", "\"\" + 42", "42");
    ("negative", "\"\" + -42", "-42");
    ("float", "\"\" + 1.5", "1.5");
    ("trailing zero dropped", "\"\" + 2.0", "2");
    ("nan", "\"\" + NaN", "NaN");
    ("infinity", "\"\" + Infinity", "Infinity");
    ("exponent large", "\"\" + 1e25", "1e+25");
    ("exponent small", "\"\" + 1e-7", "1e-7");
    ("max safe int", "\"\" + 9007199254740991", "9007199254740991");
    ("empty array", "\"\" + []", "");
    ("one elem array", "\"\" + [7]", "7");
    ("nested array", "\"\" + [1, [2, 3]]", "1,2,3");
    ("array with null", "\"\" + [null]", "");
    ("object", "\"\" + {}", "[object Object]");
    ("function-ish", "typeof (\"\" + print)", "string");
  ]

let to_number_matrix =
  [
    ("undefined", "+undefined", "NaN");
    ("null", "+null", "0");
    ("true", "+true", "1");
    ("false", "+false", "0");
    ("numeric string", "+\"42\"", "42");
    ("float string", "+\"1.5\"", "1.5");
    ("whitespace string", "+\"  7  \"", "7");
    ("empty string", "+\"\"", "0");
    ("blank string", "+\"   \"", "0");
    ("hex string", "+\"0x10\"", "16");
    ("garbage string", "+\"4x\"", "NaN");
    ("exp string", "+\"2e3\"", "2000");
    ("plus-prefixed", "+\"+5\"", "5");
    ("minus-prefixed", "+\"-5\"", "-5");
    ("infinity string", "+\"Infinity\"", "Infinity");
    ("double dot", "+\"1.2.3\"", "NaN");
    ("empty array", "+[]", "0");
    ("single numeric array", "+[9]", "9");
    ("multi array", "+[1, 2]", "NaN");
    ("object", "typeof +{}", "number");
    ("object is nan", "isNaN(+{})", "true");
  ]

let to_boolean_matrix =
  [
    ("undefined", "!!undefined", "false");
    ("null", "!!null", "false");
    ("zero", "!!0", "false");
    ("neg zero", "!!-0", "false");
    ("nan", "!!NaN", "false");
    ("empty string", "!!\"\"", "false");
    ("zero string truthy", "!!\"0\"", "true");
    ("false string truthy", "!!\"false\"", "true");
    ("empty array truthy", "!![]", "true");
    ("empty object truthy", "!!{}", "true");
    ("one", "!!1", "true");
    ("negative", "!!-1", "true");
  ]

let equality_matrix =
  [
    ("1 == true", "1 == true", "true");
    ("2 == true", "2 == true", "false");
    ("0 == false", "0 == false", "true");
    ("'' == false", "\"\" == false", "true");
    ("'' == 0", "\"\" == 0", "true");
    ("'0' == 0", "\"0\" == 0", "true");
    ("'' == '0'", "\"\" == \"0\"", "false");
    ("null == false", "null == false", "false");
    ("undefined == false", "undefined == false", "false");
    ("null == null", "null == null", "true");
    ("[] == false", "[] == false", "true");
    ("[] == ''", "[] == \"\"", "true");
    ("[0] == false", "[0] == false", "true");
    ("[1] == 1", "[1] == 1", "true");
    ("nan self", "NaN == NaN", "false");
    ("obj to prim", "({toString: function() { return \"5\"; }}) == 5", "true");
    ("valueOf preferred", "({valueOf: function() { return 7; }, toString: function() { return \"9\"; }}) == 7", "true");
  ]

let to_primitive_tests () =
  check_out "valueOf drives arithmetic"
    {|var o = {valueOf: function() { return 6; }}; print(o * 7);|} "42";
  check_out "toString drives string context"
    {|var o = {toString: function() { return "str"; }}; print("<" + o + ">");|}
    "<str>";
  check_out "valueOf preferred for +"
    {|var o = {valueOf: function() { return 1; }, toString: function() { return "t"; }};
print(o + 0);|}
    "1";
  check_out "object valueOf returning object falls back"
    {|var o = {valueOf: function() { return {}; }, toString: function() { return "fb"; }};
print(o + "");|}
    "fb";
  check_error "no primitive at all"
    {|var o = Object.create(null); print(o + 1);|} "TypeError";
  check_out "Date-like prefers valueOf for arithmetic"
    {|print(new Date(100) - new Date(40));|} "60"

let relational_coercion () =
  check_out "string vs number compares numerically" {|print("5" < 6);|} "true";
  check_out "both strings compare lexically" {|print("5" < "06");|} "false";
  check_out "undefined comparisons are false"
    {|print(undefined < 1); print(undefined >= 1);|} "false\nfalse";
  check_out "null behaves as zero" {|print(null < 1); print(null >= 0);|} "true\ntrue";
  check_out "array compares via join" {|print([2] < [10]);|} "false"

let int32_coercions () =
  check_out "to int32 wraps" {|print((4294967296 + 5) | 0);|} "5";
  check_out "nan to int32 is 0" {|print(NaN | 0);|} "0";
  check_out "infinity to int32 is 0" {|print(Infinity | 0);|} "0";
  check_out "fraction truncates" {|print(3.9 | 0); print(-3.9 | 0);|} "3\n-3";
  check_out "uint32 via ushr" {|print(-4 >>> 0);|} "4294967292"

let mk (name, expr, expected) = case name (fun () -> check_expr name expr expected)

let suite =
  List.map mk to_string_matrix
  @ List.map mk to_number_matrix
  @ List.map mk to_boolean_matrix
  @ List.map mk equality_matrix
  @ [
      case "ToPrimitive protocol" to_primitive_tests;
      case "relational coercion" relational_coercion;
      case "int32/uint32" int32_coercions;
    ]
