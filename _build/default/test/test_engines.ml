(* Engine registry and bug catalogue invariants. *)

open Engines
open Jsinterp
open Helpers

let registry_shape () =
  Alcotest.(check int) "51 engine-version configurations (Table 1)" 51
    (List.length Registry.all_configs);
  Alcotest.(check int) "102 testbeds" 102 (List.length Engine.all_testbeds);
  Alcotest.(check int) "10 engines" 10 (List.length Registry.all_engines);
  (* version counts per engine, per Table 1 *)
  List.iter
    (fun (e, n) ->
      Alcotest.(check int)
        (Registry.engine_name e ^ " version count")
        n
        (List.length (Registry.configs_of e)))
    Registry.
      [
        (V8, 3); (ChakraCore, 5); (JSC, 4); (SpiderMonkey, 7); (Rhino, 7);
        (Nashorn, 5); (Hermes, 4); (JerryScript, 9); (QuickJS, 6); (Graaljs, 1);
      ]

let bug_distribution () =
  (* Table 2's ordering property: Rhino and JerryScript carry the most
     seeded bugs; V8, SpiderMonkey, Graaljs the fewest *)
  let count e = List.length (Registry.assignments e) in
  Alcotest.(check bool) "Rhino most buggy" true
    (List.for_all
       (fun e -> count Registry.Rhino >= count e)
       Registry.all_engines);
  Alcotest.(check bool) "JerryScript second" true
    (List.for_all
       (fun e -> e = Registry.Rhino || count Registry.JerryScript >= count e)
       Registry.all_engines);
  Alcotest.(check bool) "Graaljs fewest" true
    (List.for_all (fun e -> count Registry.Graaljs <= count e) Registry.all_engines);
  Alcotest.(check bool) "total population reasonable" true
    (let n = List.length Registry.all_bugs in
     n >= 80 && n <= 120)

let version_ranges () =
  (* a quirk fixed in version k is absent from k onward *)
  let check_absent engine version q =
    let cfg = Option.get (Registry.find_config ~engine ~version) in
    Alcotest.(check bool)
      (Printf.sprintf "%s absent in %s %s" (Quirk.to_string q)
         (Registry.engine_name engine) version)
      false
      (Quirk.Set.mem q cfg.Registry.cfg_quirks)
  in
  let check_present engine version q =
    let cfg = Option.get (Registry.find_config ~engine ~version) in
    Alcotest.(check bool)
      (Printf.sprintf "%s present in %s %s" (Quirk.to_string q)
         (Registry.engine_name engine) version)
      true
      (Quirk.Set.mem q cfg.Registry.cfg_quirks)
  in
  (* JSC TypedArray.set bug: present before 261782, fixed there (Listing 5) *)
  check_present Registry.JSC "246135" Quirk.Q_typedarray_set_string_typeerror;
  check_absent Registry.JSC "261782" Quirk.Q_typedarray_set_string_typeerror;
  (* Hermes quadratic fill: fixed in 0.3.0 (Listing 2) *)
  check_present Registry.Hermes "0.1.1" Quirk.Q_array_reverse_fill_quadratic;
  check_absent Registry.Hermes "0.3.0" Quirk.Q_array_reverse_fill_quadratic;
  (* Rhino's ES2015-transition bugs appear at 1.7.12 (§5.1.1) *)
  check_present Registry.Rhino "1.7.12" Quirk.Q_array_sort_numeric_default;
  check_absent Registry.Rhino "1.7.11" Quirk.Q_array_sort_numeric_default;
  check_present Registry.Rhino "1.7.11" Quirk.Q_seal_string_object_crash;
  check_absent Registry.Rhino "1.7.10" Quirk.Q_seal_string_object_crash

let earliest_attribution () =
  Alcotest.(check (option string)) "substr bug earliest = 1.7.10"
    (Some "1.7.10")
    (Registry.earliest_version Registry.Rhino Quirk.Q_substr_undefined_length_empty);
  Alcotest.(check (option string)) "unassigned quirk has no version" None
    (Registry.earliest_version Registry.V8 Quirk.Q_substr_undefined_length_empty)

let catalogue_total () =
  Alcotest.(check int) "metadata for every quirk" (List.length Quirk.all)
    (List.length Catalogue.all);
  (* paper-grounded metadata spot checks *)
  let m = Catalogue.find Quirk.Q_substr_undefined_length_empty in
  Alcotest.(check string) "substr api" "String.prototype.substr" m.Catalogue.api;
  Alcotest.(check string) "substr type" "String" m.Catalogue.object_type;
  Alcotest.(check bool) "substr in test262" true m.Catalogue.test262_accepted;
  let h = Catalogue.find Quirk.Q_array_reverse_fill_quadratic in
  Alcotest.(check string) "hermes component" "CodeGen"
    (Catalogue.component_to_string h.Catalogue.component);
  let s = Catalogue.find Quirk.Q_strict_this_is_global in
  Alcotest.(check bool) "strict-only flagged" true s.Catalogue.strict_only;
  (* every object type used in Table 5 is a known group *)
  let known =
    [ "Object"; "String"; "Array"; "TypedArray"; "Number"; "eval function";
      "DataView"; "JSON"; "RegExp"; "Date" ]
  in
  List.iter
    (fun (meta : Catalogue.meta) ->
      Alcotest.(check bool)
        (Quirk.to_string meta.Catalogue.quirk ^ " has known object type")
        true
        (List.mem meta.Catalogue.object_type known))
    Catalogue.all

let es_edition_gating () =
  (* old ES5 front ends reject ES2015 syntax, so [supports] excludes them *)
  let rhino_old = Option.get (Registry.find_config ~engine:Registry.Rhino ~version:"1.7R3") in
  let rhino_new = Option.get (Registry.find_config ~engine:Registry.Rhino ~version:"1.7.12") in
  let es6_src = "let x = 1; print(x);" in
  Alcotest.(check bool) "old Rhino does not support let" false
    (Engine.supports rhino_old es6_src);
  Alcotest.(check bool) "new Rhino supports let" true
    (Engine.supports rhino_new es6_src);
  Alcotest.(check bool) "both support ES5 code" true
    (Engine.supports rhino_old "var x = 1; print(x);")

let engine_run_isolation () =
  (* testbed runs are isolated realms: globals do not leak across runs *)
  let tb =
    { Engine.tb_config = Registry.latest Registry.V8; tb_mode = Engine.Normal }
  in
  let r1 = Engine.run tb "leak = 42; print(leak);" in
  let r2 = Engine.run tb "print(typeof leak);" in
  Alcotest.(check string) "first run sets" "42\n" r1.Run.r_output;
  Alcotest.(check string) "second run clean" "undefined\n" r2.Run.r_output

let strict_mode_testbeds () =
  let cfg = Registry.latest Registry.V8 in
  let strict_tb = { Engine.tb_config = cfg; tb_mode = Engine.Strict } in
  let r = Engine.run strict_tb "function f() { return this === undefined; } print(f());" in
  Alcotest.(check string) "strict testbed forces strict" "true\n" r.Run.r_output

let suite =
  [
    case "registry shape (Table 1)" registry_shape;
    case "bug distribution (Table 2 shape)" bug_distribution;
    case "version ranges" version_ranges;
    case "earliest-version attribution" earliest_attribution;
    case "catalogue metadata" catalogue_total;
    case "ES edition gating" es_edition_gating;
    case "realm isolation" engine_run_isolation;
    case "strict testbeds" strict_mode_testbeds;
  ]
