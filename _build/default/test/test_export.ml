(* Test262-style export (§5.4): every authored conformance assertion must
   pass on a conforming engine and fail on an engine carrying the bug. *)

open Helpers
open Jsinterp

let exportable_quirks : Quirk.t list =
  List.filter
    (fun q ->
      Comfort.Test262_export.assertion_for q <> None)
    Quirk.all

let fake_discovery (engine : Engines.Registry.engine) (q : Quirk.t) :
    Comfort.Campaign.discovery =
  {
    Comfort.Campaign.disc_engine = engine;
    disc_quirk = q;
    disc_case = Comfort.Testcase.make "print(1);";
    disc_reduced = None;
    disc_kind = Comfort.Difftest.Dev_output;
    disc_behavior = "WrongOutput";
    disc_at = 1;
    disc_version =
      Option.value (Engines.Registry.earliest_version engine q) ~default:"?";
    disc_mode = Engines.Engine.Normal;
  }

(* find an engine version carrying this quirk *)
let carrier (q : Quirk.t) : Engines.Registry.config option =
  List.find_opt
    (fun (c : Engines.Registry.config) ->
      Quirk.Set.mem q c.Engines.Registry.cfg_quirks)
    Engines.Registry.all_configs

let export_round_trip () =
  Alcotest.(check bool) "at least 15 exportable assertions" true
    (List.length exportable_quirks >= 15);
  List.iter
    (fun q ->
      match carrier q with
      | None -> () (* quirk not assigned to any engine *)
      | Some cfg -> (
          let engine = cfg.Engines.Registry.cfg_engine in
          match Comfort.Test262_export.render (fake_discovery engine q) with
          | None -> Alcotest.failf "no render for %s" (Quirk.to_string q)
          | Some (name, source) ->
              Alcotest.(check bool) "filename is a .js file" true
                (Filename.check_suffix name ".js");
              Alcotest.(check bool) "has front matter" true
                (Str_contains.contains source "/*---");
              (* a conforming engine passes *)
              let clean =
                { cfg with Engines.Registry.cfg_quirks = Quirk.Set.empty }
              in
              if not (Comfort.Test262_export.passes clean source) then
                Alcotest.failf "conforming engine fails export for %s:\n%s"
                  (Quirk.to_string q) source;
              (* the buggy engine version fails *)
              if Comfort.Test262_export.passes cfg source then
                Alcotest.failf "buggy engine passes export for %s"
                  (Quirk.to_string q)))
    exportable_quirks

let export_from_campaign () =
  let fz = Comfort.Campaign.comfort_fuzzer ~seed:77 () in
  let res = Comfort.Campaign.run ~budget:400 fz in
  let files = Comfort.Test262_export.export res in
  (* exports are consistent with the discovery list *)
  Alcotest.(check bool) "export count bounded by discoveries" true
    (List.length files <= List.length res.Comfort.Campaign.cp_discoveries);
  List.iter
    (fun (name, source) ->
      Alcotest.(check bool) (name ^ " parses") true (Jsparse.Parser.is_valid source))
    files

let suite =
  [
    case "assertions pass/fail on the right engines" export_round_trip;
    case "campaign export" export_from_campaign;
  ]
