(* The §5.5 feedback extension: mutation of bug-exposing test cases. *)

open Helpers

let records_and_mutates () =
  let fb = Comfort.Feedback.create ~seed:9 (Comfort.Campaign.comfort_fuzzer ~seed:9 ()) in
  Alcotest.(check int) "empty bank" 0 (Comfort.Feedback.bank_size fb);
  Alcotest.(check bool) "no mutant from empty bank" true
    (Comfort.Feedback.mutate_banked fb = None);
  let exposing =
    Comfort.Testcase.make {|print("abcdef".substr(2, undefined));|}
  in
  Comfort.Feedback.record fb exposing;
  Alcotest.(check int) "banked" 1 (Comfort.Feedback.bank_size fb);
  (* mutants of banked cases parse and stay in the neighbourhood *)
  for _ = 1 to 20 do
    match Comfort.Feedback.mutate_banked fb with
    | None -> Alcotest.fail "bank should produce mutants"
    | Some src ->
        Alcotest.(check bool) "mutant parses" true (Jsparse.Parser.is_valid src)
  done;
  (* syntactically invalid cases are not banked *)
  Comfort.Feedback.record fb (Comfort.Testcase.make "var = broken");
  Alcotest.(check int) "invalid not banked" 1 (Comfort.Feedback.bank_size fb)

let wrapped_fuzzer_mixes () =
  let fb = Comfort.Feedback.create ~seed:10 ~mix:0.5 (Comfort.Campaign.comfort_fuzzer ~seed:10 ()) in
  Comfort.Feedback.record fb (Comfort.Testcase.make {|print([10, 9, 1].sort());|});
  let batch = (Comfort.Feedback.fuzzer fb).Comfort.Campaign.fz_batch 20 in
  Alcotest.(check int) "batch size" 20 (List.length batch);
  let from_feedback =
    List.filter
      (fun (tc : Comfort.Testcase.t) ->
        tc.Comfort.Testcase.tc_provenance = Comfort.Testcase.P_fuzzer "feedback")
      batch
  in
  Alcotest.(check int) "half from the bank" 10 (List.length from_feedback)

let rounds_accumulate () =
  let fb = Comfort.Feedback.create ~seed:11 (Comfort.Campaign.comfort_fuzzer ~seed:11 ()) in
  let res = Comfort.Feedback.run_rounds ~rounds:2 ~budget_per_round:200 fb in
  Alcotest.(check int) "total cases" 400 res.Comfort.Campaign.cp_cases_run;
  (* merged discoveries stay unique *)
  let keys =
    List.map
      (fun d -> (d.Comfort.Campaign.disc_engine, d.Comfort.Campaign.disc_quirk))
      res.Comfort.Campaign.cp_discoveries
  in
  Alcotest.(check int) "no duplicates across rounds"
    (List.length keys)
    (List.length (List.sort_uniq compare keys))

let suite =
  [
    case "bank and mutate" records_and_mutates;
    case "wrapped fuzzer mixes mutants" wrapped_fuzzer_mixes;
    case "rounds accumulate" rounds_accumulate;
  ]
