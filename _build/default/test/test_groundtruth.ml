(* Registry/ground-truth consistency: for every (engine, bug) assignment,
   the bug's trigger program (from the quirk trigger table) deviates from
   the conforming reference exactly on the versions that carry the bug —
   present in [since, fixed), absent outside. This is what makes Table 3's
   per-version attribution measured rather than asserted. *)

open Jsinterp
open Helpers

let trigger_of (q : Quirk.t) : (string * bool) option =
  List.find_map
    (fun (q', src, strict) -> if Quirk.equal q q' then Some (src, strict) else None)
    Test_quirks.triggers

let deviates (cfg : Engines.Registry.config) ~strict (src : string) : bool =
  let tb =
    {
      Engines.Engine.tb_config = cfg;
      tb_mode = (if strict then Engines.Engine.Strict else Engines.Engine.Normal);
    }
  in
  let target = Engines.Engine.run ~fuel:2_000_000 tb src in
  let reference = Engines.Engine.run_reference ~fuel:2_000_000 ~strict src in
  Comfort.Difftest.signature_of_result target
  <> Comfort.Difftest.signature_of_result reference

(* Check one engine's full assignment list across its whole version
   history. ES-edition gating can hide a trigger from old front ends: skip
   versions that cannot parse the trigger at all. *)
let check_engine (e : Engines.Registry.engine) () =
  List.iter
    (fun (a : Engines.Registry.assignment) ->
      match trigger_of a.Engines.Registry.aq with
      | None ->
          Alcotest.failf "no trigger for %s" (Quirk.to_string a.Engines.Registry.aq)
      | Some (src, strict) ->
          List.iter
            (fun (cfg : Engines.Registry.config) ->
              if Engines.Engine.supports cfg src then begin
                let carries =
                  Quirk.Set.mem a.Engines.Registry.aq cfg.Engines.Registry.cfg_quirks
                in
                let dev = deviates cfg ~strict src in
                if carries && not dev then
                  Alcotest.failf "%s %s should deviate on %s"
                    (Engines.Registry.id cfg)
                    (Quirk.to_string a.Engines.Registry.aq)
                    src;
                (* a version without this bug may still deviate if it
                   carries another bug the same trigger tickles; only
                   insist on agreement when the version is entirely
                   quirk-free on the APIs involved, which we approximate by
                   checking that no quirk fires at all *)
                if (not carries) && dev then begin
                  let tb =
                    {
                      Engines.Engine.tb_config = cfg;
                      tb_mode =
                        (if strict then Engines.Engine.Strict
                         else Engines.Engine.Normal);
                    }
                  in
                  let r = Engines.Engine.run ~fuel:2_000_000 tb src in
                  if Quirk.Set.is_empty r.Jsinterp.Run.r_fired then
                    Alcotest.failf
                      "%s deviates on %s without any quirk firing"
                      (Engines.Registry.id cfg)
                      (Quirk.to_string a.Engines.Registry.aq)
                end
              end)
            (Engines.Registry.configs_of e))
    (Engines.Registry.assignments e)

let suite =
  List.map
    (fun e ->
      case
        (Engines.Registry.engine_name e ^ " version ranges are observable")
        (check_engine e))
    Engines.Registry.all_engines
