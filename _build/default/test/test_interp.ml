(* Core interpreter semantics: expressions, statements, control flow,
   scoping, coercions, operators, strict mode. *)

open Helpers

let expr_tests =
  [
    (* literals and ToString *)
    ("number int", "42", "42");
    ("number float", "3.5", "3.5");
    ("number negative zero prints 0", "-0", "0");
    ("number huge", "1e21", "1e+21");
    ("number tiny", "1.5e-7", "1.5e-7");
    ("nan", "NaN", "NaN");
    ("infinity", "Infinity", "Infinity");
    ("neg infinity", "-Infinity", "-Infinity");
    ("string", "\"hi\"", "hi");
    ("bool true", "true", "true");
    ("null", "null", "null");
    ("undefined", "undefined", "undefined");
    (* arithmetic *)
    ("add", "1 + 2", "3");
    ("add float", "0.1 + 0.2", "0.30000000000000004");
    ("string concat", "\"a\" + 1", "a1");
    ("concat left", "1 + \"a\"", "1a");
    ("add null", "1 + null", "1");
    ("add undefined", "1 + undefined", "NaN");
    ("add bool", "true + 1", "2");
    ("sub", "7 - 10", "-3");
    ("sub string coerce", "\"7\" - \"2\"", "5");
    ("mul", "6 * 7", "42");
    ("div", "1 / 4", "0.25");
    ("div zero", "1 / 0", "Infinity");
    ("div neg zero", "1 / -0", "-Infinity");
    ("mod", "7 % 3", "1");
    ("mod negative dividend", "-5 % 3", "-2");
    ("mod negative divisor", "5 % -3", "2");
    ("exp", "2 ** 10", "1024");
    ("exp right assoc", "2 ** 3 ** 2", "512");
    (* comparisons *)
    ("lt", "1 < 2", "true");
    ("lt strings", "\"10\" < \"9\"", "true");
    ("lt mixed", "\"10\" < 9", "false");
    ("le", "2 <= 2", "true");
    ("gt nan", "NaN > 1", "false");
    ("ge nan", "NaN >= NaN", "false");
    (* equality *)
    ("eq coerce", "1 == \"1\"", "true");
    ("eq null undefined", "null == undefined", "true");
    ("eq null zero", "null == 0", "false");
    ("eq nan", "NaN == NaN", "false");
    ("strict eq", "1 === 1", "true");
    ("strict neq types", "1 === \"1\"", "false");
    ("strict eq zeros", "0 === -0", "true");
    ("neq", "1 != 2", "true");
    ("object identity", "({}) === ({})", "false");
    ("bool eq number", "true == 1", "true");
    (* bitwise *)
    ("bitand", "12 & 10", "8");
    ("bitor", "12 | 10", "14");
    ("bitxor", "12 ^ 10", "6");
    ("bitnot", "~5", "-6");
    ("shl", "1 << 4", "16");
    ("shl masked", "1 << 33", "2");
    ("shr", "-16 >> 2", "-4");
    ("ushr", "-1 >>> 0", "4294967295");
    ("ushr shift", "-1 >>> 28", "15");
    ("int32 wrap", "(2147483647 + 1) | 0", "-2147483648");
    (* logical *)
    ("and truthy", "1 && 2", "2");
    ("and falsy", "0 && 2", "0");
    ("or truthy", "1 || 2", "1");
    ("or falsy", "0 || \"x\"", "x");
    ("not", "!0", "true");
    ("double not", "!!\"a\"", "true");
    (* unary *)
    ("unary plus string", "+\"3.5\"", "3.5");
    ("unary plus bad", "+\"abc\"", "NaN");
    ("unary minus", "-(5)", "-5");
    ("typeof number", "typeof 1", "number");
    ("typeof string", "typeof \"\"", "string");
    ("typeof undefined", "typeof undefined", "undefined");
    ("typeof null", "typeof null", "object");
    ("typeof function", "typeof print", "function");
    ("typeof object", "typeof {}", "object");
    ("typeof undeclared", "typeof never_declared_xyz", "undefined");
    ("void", "void 42", "undefined");
    (* conditional / sequence *)
    ("cond true", "1 ? \"y\" : \"n\"", "y");
    ("cond false", "0 ? \"y\" : \"n\"", "n");
    ("template", "`a${1 + 1}b`", "a2b");
    (* string coercion of values *)
    ("array tostring", "[1, 2, 3] + \"\"", "1,2,3");
    ("empty array number", "+[]", "0");
    ("object tostring", "({}) + \"\"", "[object Object]");
    ("instanceof", "new TypeError(\"x\") instanceof TypeError", "true");
    ("instanceof parent", "new TypeError(\"x\") instanceof Error", "true");
    ("in operator", "\"a\" in {a: 1}", "true");
    ("in missing", "\"b\" in {a: 1}", "false");
  ]

let stmt_tests () =
  check_out "var and reassign" "var x = 1; x = x + 1; print(x);" "2";
  check_out "multi declaration" "var a = 1, b = 2; print(a + b);" "3";
  check_out "if else" "if (false) { print(1); } else { print(2); }" "2";
  check_out "while" "var n = 0; while (n < 5) { n++; } print(n);" "5";
  check_out "do while runs once" "var n = 9; do { n++; } while (false); print(n);" "10";
  check_out "for loop" "var s = 0; for (var i = 1; i <= 4; i++) { s += i; } print(s);" "10";
  check_out "for no init" "var i = 0; for (; i < 3; i++) {} print(i);" "3";
  check_out "break" "for (var i = 0; i < 10; i++) { if (i === 3) break; } print(i);" "3";
  check_out "continue"
    "var s = 0; for (var i = 0; i < 5; i++) { if (i % 2 === 0) continue; s += i; } print(s);"
    "4";
  check_out "labeled break"
    "outer: for (var i = 0; i < 3; i++) { for (var j = 0; j < 3; j++) { if (j === 1) break outer; } } print(i + \":\" + j);"
    "0:1";
  check_out "for in"
    "var ks = []; for (var k in {x: 1, y: 2}) { ks.push(k); } print(ks.sort());" "x,y";
  check_out "for of array" "var s = 0; for (var v of [1, 2, 3]) { s += v; } print(s);" "6";
  check_out "for of string" "var out = \"\"; for (var c of \"ab\") { out += c + \".\"; } print(out);" "a.b.";
  check_out "switch match"
    "switch (2) { case 1: print(\"one\"); break; case 2: print(\"two\"); break; default: print(\"other\"); }"
    "two";
  check_out "switch fallthrough"
    "var o = \"\"; switch (1) { case 1: o += \"a\"; case 2: o += \"b\"; break; case 3: o += \"c\"; } print(o);"
    "ab";
  check_out "switch default"
    "switch (9) { case 1: print(\"one\"); break; default: print(\"dflt\"); }" "dflt";
  check_out "switch strict matching"
    "switch (\"1\") { case 1: print(\"num\"); break; default: print(\"no\"); }" "no";
  check_out "throw catch"
    "try { throw new RangeError(\"r\"); } catch (e) { print(e.name); }" "RangeError";
  check_out "throw value" "try { throw 42; } catch (e) { print(e + 1); }" "43";
  check_out "finally runs" "try { print(1); } finally { print(2); }" "1\n2";
  check_out "finally after catch"
    "try { throw 1; } catch (e) { print(\"c\"); } finally { print(\"f\"); }" "c\nf";
  check_out "finally on return"
    "function f() { try { return \"r\"; } finally { print(\"f\"); } } print(f());" "f\nr";
  check_out "nested try"
    "try { try { throw new TypeError(\"inner\"); } finally { print(\"in-f\"); } } catch (e) { print(e.message); }"
    "in-f\ninner";
  check_error "uncaught" "throw new TypeError(\"boom\");" "TypeError";
  check_out "empty statement" ";;; print(\"ok\");" "ok"

let function_tests () =
  check_out "function decl hoisting" "print(f()); function f() { return \"hoisted\"; }" "hoisted";
  check_out "var hoisting" "print(typeof x); var x = 1;" "undefined";
  check_out "closure captures"
    "function mk() { var c = 0; return function() { return ++c; }; } var t = mk(); t(); print(t());"
    "2";
  check_out "closures are independent"
    "function mk() { var c = 0; return function() { return ++c; }; } var a = mk(); var b = mk(); a(); print(b());"
    "1";
  check_out "missing args are undefined" "function f(a, b) { return b; } print(f(1));" "undefined";
  check_out "extra args ignored" "function f(a) { return a; } print(f(1, 2, 3));" "1";
  check_out "arguments object" "function f() { return arguments.length; } print(f(1, 2, 3));" "3";
  check_out "arguments values" "function f() { return arguments[1]; } print(f(\"a\", \"b\"));" "b";
  check_out "recursion" "function fib(n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); } print(fib(12));" "144";
  check_out "function expression" "var sq = function(x) { return x * x; }; print(sq(9));" "81";
  check_out "named funcexpr self-reference"
    "var f = function g(n) { return n <= 0 ? 0 : n + g(n - 1); }; print(f(3));" "6";
  check_out "named funcexpr name not outside"
    "var f = function g() { return 1; }; print(typeof g);" "undefined";
  check_out "named funcexpr binding immutable"
    "(function v1() { v1 = 20; print(typeof v1); }());" "function";
  check_out "arrow function" "var add = (a, b) => { return a + b; }; print(add(2, 3));" "5";
  check_out "arrow expression body" "var inc = x => x + 1; print(inc(41));" "42";
  check_out "arrow captures this"
    "var obj = {v: 7, get: function() { var f = () => this.v; return f(); }}; print(obj.get());"
    "7";
  check_out "method call this" "var o = {x: 3, m: function() { return this.x; }}; print(o.m());" "3";
  check_out "call with this" "function f() { return this.tag; } print(f.call({tag: \"T\"}));" "T";
  check_out "apply with array" "function f(a, b) { return a - b; } print(f.apply(null, [10, 4]));" "6";
  check_out "bind" "function f(a, b) { return a + b; } var g = f.bind(null, 10); print(g(5));" "15";
  check_out "new sets prototype"
    "function T() { this.x = 1; } T.prototype.get = function() { return this.x; }; print(new T().get());"
    "1";
  check_out "new returns object override"
    "function T() { return {x: 9}; } print(new T().x);" "9";
  check_out "constructor instanceof" "function T() {} print(new T() instanceof T);" "true";
  check_out "function length property" "function f(a, b, c) {} print(f.length);" "3";
  check_out "function name property" "function myFn() {} print(myFn.name);" "myFn";
  check_error "call non-function" "var x = 3; x();" "TypeError";
  check_error "method of undefined" "var u; u.m();" "TypeError"

let scope_tests () =
  check_out "let block scoping" "var x = 1; { let x = 2; print(x); } print(x);" "2\n1";
  check_out "const declaration" "const k = 5; print(k + 1);" "6";
  check_out "global assignment sloppy" "function f() { implicitG = 7; } f(); print(implicitG);" "7";
  check_error "undeclared read" "print(no_such_variable_here);" "ReferenceError";
  check_out "shadowing param" "var x = \"outer\"; function f(x) { return x; } print(f(\"inner\"));" "inner";
  check_out "var in loop leaks" "for (var i = 0; i < 3; i++) {} print(i);" "3";
  check_out "this at toplevel is global" "print(this === globalThis);" "true"

let strict_tests () =
  Alcotest.(check string)
    "strict undeclared assignment throws" "ReferenceError"
    (error_of ~strict:true "function f() { undeclared_w = 1; } f();");
  Alcotest.(check string)
    "sloppy undeclared assignment ok" "none"
    (error_of "function f() { undeclared_w2 = 1; } f();");
  check_out "strict this undefined" ~strict:true
    "function f() { return this === undefined; } print(f());" "true";
  check_out "sloppy this global" "function f() { return this === globalThis; } print(f());" "true";
  (* parse-level strict rules *)
  (match Jsparse.Parser.parse_program "\"use strict\";\nfunction f(a, a) {}" with
  | exception Jsparse.Parser.Syntax_error _ -> ()
  | _ -> Alcotest.fail "duplicate params should be rejected in strict mode");
  (match Jsparse.Parser.parse_program "\"use strict\";\nvar x = 1; delete x;" with
  | exception Jsparse.Parser.Syntax_error _ -> ()
  | _ -> Alcotest.fail "delete of unqualified name should be rejected in strict mode");
  (* function-level "use strict" *)
  Alcotest.(check string)
    "function-level strict" "ReferenceError"
    (error_of "function f() { \"use strict\"; zz_undeclared = 1; } f();")

let object_semantics_tests () =
  check_out "property access" "var o = {a: 1}; print(o.a);" "1";
  check_out "computed access" "var o = {a: 1}; print(o[\"a\"]);" "1";
  check_out "missing property" "print(({}).missing);" "undefined";
  check_out "property add" "var o = {}; o.x = 5; print(o.x);" "5";
  check_out "numeric keys coerce" "var o = {}; o[1] = \"a\"; print(o[\"1\"]);" "a";
  check_out "nested objects" "var o = {a: {b: {c: 42}}}; print(o.a.b.c);" "42";
  check_out "delete property" "var o = {a: 1}; delete o.a; print(o.a);" "undefined";
  check_out "delete result" "var o = {a: 1}; print(delete o.a);" "true";
  check_out "prototype chain via constructor"
    "function A() {} A.prototype.greet = \"hi\"; print(new A().greet);" "hi";
  check_out "property shadowing"
    "function A() {} A.prototype.x = 1; var a = new A(); a.x = 2; print(a.x);" "2";
  check_out "object literal shorthand" "var a = 1; var o = {a}; print(o.a);" "1";
  check_out "computed property name" "var k = \"ke\"; var o = {[k + \"y\"]: 9}; print(o.key);" "9";
  check_out "update operators" "var x = 5; print(x++); print(x); print(++x); print(--x);" "5\n6\n7\n6";
  check_out "compound assignment" "var x = 8; x += 2; x *= 3; x -= 10; x /= 4; print(x);" "5";
  check_out "member compound" "var o = {n: 1}; o.n += 9; print(o.n);" "10";
  check_out "seq expression" "var x = (1, 2, 3); print(x);" "3"

let timeout_tests () =
  Alcotest.(check string) "infinite loop runs out of fuel" "timeout"
    (status "while (true) {}");
  Alcotest.(check string) "deep recursion raises RangeError"
    "uncaught RangeError: Maximum call stack size exceeded"
    (status "function f() { return f(); } f();")

let suite =
  List.map (fun (name, expr, expected) -> case name (fun () -> check_expr name expr expected)) expr_tests
  @ [
      case "statements" stmt_tests;
      case "functions" function_tests;
      case "scoping" scope_tests;
      case "strict mode" strict_tests;
      case "objects" object_semantics_tests;
      case "timeouts" timeout_tests;
    ]
