(* The paper's §5.2 bug listings, asserted byte-for-byte: the engine
   version the paper names produces the buggy observable behaviour, and the
   conforming reference produces the specified one. *)

open Helpers

type expect =
  | Out of string             (* normal termination with this output *)
  | Err of string             (* uncaught error with this name *)
  | Crash
  | Timeout

let run_on engine version src =
  let cfg = Option.get (Engines.Registry.find_config ~engine ~version) in
  let tb = { Engines.Engine.tb_config = cfg; tb_mode = Engines.Engine.Normal } in
  Engines.Engine.run ~fuel:2_000_000 tb src

let classify (r : Jsinterp.Run.result) : expect =
  if not r.Jsinterp.Run.r_parsed then Err "SyntaxError"
  else
    match r.Jsinterp.Run.r_status with
    | Jsinterp.Run.Sts_normal -> Out r.Jsinterp.Run.r_output
    | Jsinterp.Run.Sts_uncaught (name, _) -> Err name
    | Jsinterp.Run.Sts_crash _ -> Crash
    | Jsinterp.Run.Sts_timeout -> Timeout

let expect_to_string = function
  | Out s -> Printf.sprintf "output %S" s
  | Err n -> "uncaught " ^ n
  | Crash -> "crash"
  | Timeout -> "timeout"

let check_listing name engine version src ~buggy ~conforming =
  case name (fun () ->
      let b = classify (run_on engine version src) in
      let c = classify (Engines.Engine.run_reference ~fuel:2_000_000 src) in
      if b <> buggy then
        Alcotest.failf "%s: buggy engine gave %s, expected %s" name
          (expect_to_string b) (expect_to_string buggy);
      if c <> conforming then
        Alcotest.failf "%s: reference gave %s, expected %s" name
          (expect_to_string c) (expect_to_string conforming))

let suite =
  Engines.Registry.
    [
      check_listing "Figure 2: Rhino substr" Rhino "1.7.12"
        {|function foo(str, start, len) { var ret = str.substr(start, len); return ret; }
var s = "Name: Albert";
var pre = "Name: ";
var len = undefined;
var name = foo(s, pre.length, len);
print(name);|}
        ~buggy:(Out "\n") ~conforming:(Out "Albert\n");
      check_listing "Listing 1: V8 defineProperty length" V8 "8.5-d891c59"
        {|var foo = function() {
  var arrobj = [0, 1];
  Object.defineProperty(arrobj, "length", { value: 1, configurable: true });
};
foo();
print("compiled and ran");|}
        ~buggy:(Out "compiled and ran\n") ~conforming:(Err "TypeError");
      check_listing "Listing 2: Hermes quadratic fill" Hermes "0.1.1"
        {|var foo = function(size) {
  var array = new Array(size);
  while (size--) { array[size] = 0; }
};
foo(90486);
print("done");|}
        ~buggy:Timeout ~conforming:(Out "done\n");
      check_listing "Listing 3: SpiderMonkey Uint32Array" SpiderMonkey "52.9"
        {|var foo = function(length) { var array = new Uint32Array(length); print(array.length); };
var parameter = 3.14;
foo(parameter);|}
        ~buggy:(Err "TypeError") ~conforming:(Out "3\n");
      check_listing "Listing 4: Rhino toFixed" Rhino "1.7.12"
        {|var foo = function(num) { var p = num.toFixed(-2); print(p); };
var parameter = -634619;
foo(parameter);|}
        ~buggy:(Out "-634619\n") ~conforming:(Err "RangeError");
      check_listing "Listing 5: JSC TypedArray.set" JSC "246135"
        {|var foo = function() { var e = '123'; A = new Uint8Array(5); A.set(e); print(A); };
foo();|}
        ~buggy:(Err "TypeError") ~conforming:(Out "1,2,3,0,0\n");
      check_listing "Listing 5 also hits Graaljs" Graaljs "20.1.0"
        {|var A = new Uint8Array(5); A.set('123'); print(A);|}
        ~buggy:(Err "TypeError") ~conforming:(Out "1,2,3,0,0\n");
      check_listing "Listing 6: QuickJS bool property" QuickJS "2020-04-12"
        {|var foo = function() {
  var property = true;
  var obj = [1,2,5];
  obj[property] = 10;
  print(obj);
  print(obj[property]);
};
foo();|}
        ~buggy:(Out "1,2,5,10\nundefined\n") ~conforming:(Out "1,2,5\n10\n");
      check_listing "Listing 7: ChakraCore eval for" ChakraCore "1.11.19"
        {|eval("for(var i = 0; i < 5; i++)");
print("no SyntaxError");|}
        ~buggy:(Out "no SyntaxError\n") ~conforming:(Err "SyntaxError");
      check_listing "Listing 8: JerryScript split" JerryScript "2.3.0"
        {|var foo = function() { var a = "anA".split(/^A/); print(a); };
foo();|}
        ~buggy:(Out "an\n") ~conforming:(Out "anA\n");
      check_listing "Listing 9: QuickJS normalize crash" QuickJS "2020-04-12"
        {|var foo = function(str){ str.normalize(true); };
var parameter = "";
foo(parameter);|}
        ~buggy:Crash ~conforming:(Err "RangeError");
      check_listing "Listing 10: Rhino big.call(null)" Rhino "1.7.12"
        {|var v1 = String.prototype.big.call(null);
print(v1);|}
        ~buggy:(Out "<big>null</big>\n") ~conforming:(Err "TypeError");
      check_listing "Listing 11: Rhino seal(new String)" Rhino "1.7.12"
        {|function main() { var v2 = new String(2477); var v4 = Object.seal(v2); }
main();
print("survived");|}
        ~buggy:Crash ~conforming:(Out "survived\n");
      check_listing "Listing 12: Rhino lastIndex" Rhino "1.7.12"
        {|var regexp5 = /a/g;
Object.defineProperty(regexp5, "lastIndex", { writable: false });
regexp5.compile("b");
print("no TypeError");|}
        ~buggy:(Out "no TypeError\n") ~conforming:(Err "TypeError");
      check_listing "Listing 12 also hits JerryScript" JerryScript "2.3.0"
        {|var re = /a/g;
Object.defineProperty(re, "lastIndex", { writable: false });
re.compile("b");
print("no TypeError");|}
        ~buggy:(Out "no TypeError\n") ~conforming:(Err "TypeError");
      check_listing "Listing 13: Hermes funcexpr binding" Hermes "0.6.0"
        {|(function v1() {
  v1 = 20;
  print(v1 !== 20);
  print(typeof v1);
}());|}
        ~buggy:(Out "false\nnumber\n") ~conforming:(Out "true\nfunction\n");
      check_listing "Listing 13 also hits Rhino" Rhino "1.7.12"
        {|(function v1() {
  v1 = 20;
  print(typeof v1);
}());|}
        ~buggy:(Out "number\n") ~conforming:(Out "function\n");
    ]
