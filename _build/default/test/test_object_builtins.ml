(* Object statics, Object.prototype, property attributes, typed arrays,
   DataView, JSON, Number, Math, global functions. *)

open Helpers

let object_tests =
  [
    ("keys", {|Object.keys({a: 1, b: 2})|}, "a,b");
    ("keys insertion order", {|Object.keys({z: 1, a: 2})|}, "z,a");
    ("keys of array", {|Object.keys([7, 8])|}, "0,1");
    ("values", {|Object.values({a: 1, b: 2})|}, "1,2");
    ("entries", {|Object.entries({a: 1})[0]|}, "a,1");
    ("fromEntries", {|Object.fromEntries([["k", 5], ["j", 6]]).k|}, "5");
    ("entries roundtrip", {|Object.fromEntries(Object.entries({x: 1, y: 2})).y|}, "2");
    ("assign", {|Object.assign({}, {a: 1}, {b: 2}).b|}, "2");
    ("assign overwrites", {|Object.assign({a: 1}, {a: 2}).a|}, "2");
    ("assign returns target", {|var t = {}; Object.assign(t, {x: 1}) === t|}, "true");
    ("create proto", {|var p = {greet: "hi"}; Object.create(p).greet|}, "hi");
    ("create null", {|Object.keys(Object.create(null)).length|}, "0");
    ("getPrototypeOf", {|Object.getPrototypeOf([]) === Object.getPrototypeOf([1])|}, "true");
    ("getOwnPropertyNames", {|Object.getOwnPropertyNames({b: 1, a: 2})|}, "b,a");
    ("hasOwnProperty", {|({a: 1}).hasOwnProperty("a")|}, "true");
    ("hasOwnProperty inherited", {|({}).hasOwnProperty("toString")|}, "false");
    ("isPrototypeOf", {|var p = {}; p.isPrototypeOf(Object.create(p))|}, "true");
    ("propertyIsEnumerable", {|({a: 1}).propertyIsEnumerable("a")|}, "true");
    ("toString", {|({}).toString()|}, "[object Object]");
    ("array class", {|Object.prototype.toString.call([])|}, "[object Array]");
    ("isExtensible default", {|Object.isExtensible({})|}, "true");
    ("preventExtensions", {|var o = {}; Object.preventExtensions(o); o.x = 1; o.x|}, "undefined");
    ("freeze blocks writes", {|var o = {a: 1}; Object.freeze(o); o.a = 9; o.a|}, "1");
    ("freeze blocks adds", {|var o = {}; Object.freeze(o); o.b = 1; o.b|}, "undefined");
    ("isFrozen", {|var o = {a: 1}; Object.freeze(o); Object.isFrozen(o)|}, "true");
    ("seal allows writes", {|var o = {a: 1}; Object.seal(o); o.a = 2; o.a|}, "2");
    ("seal blocks adds", {|var o = {a: 1}; Object.seal(o); o.b = 2; o.b|}, "undefined");
    ("seal blocks delete", {|var o = {a: 1}; Object.seal(o); delete o.a; o.a|}, "1");
    ("isSealed", {|var o = {}; Object.seal(o); Object.isSealed(o)|}, "true");
    ("frozen array elements", {|var a = [1]; Object.freeze(a); a[0] = 9; a[0]|}, "1");
    (* defineProperty *)
    ("defineProperty value", {|var o = {}; Object.defineProperty(o, "k", {value: 7}); o.k|}, "7");
    ("defineProperty default non-writable",
     {|var o = {}; Object.defineProperty(o, "k", {value: 1}); o.k = 2; o.k|}, "1");
    ("defineProperty writable",
     {|var o = {}; Object.defineProperty(o, "k", {value: 1, writable: true}); o.k = 2; o.k|}, "2");
    ("defineProperty non-enumerable hidden",
     {|var o = {}; Object.defineProperty(o, "k", {value: 1}); Object.keys(o).length|}, "0");
    ("defineProperty getter",
     {|var o = {}; Object.defineProperty(o, "k", {get: function() { return 42; }}); o.k|}, "42");
    ("getOwnPropertyDescriptor",
     {|var o = {a: 1}; Object.getOwnPropertyDescriptor(o, "a").writable|}, "true");
    ("descriptor of array length",
     {|Object.getOwnPropertyDescriptor([1], "length").value|}, "1");
    ("writable false then write",
     {|var o = {a: 1}; Object.defineProperty(o, "a", {writable: false}); o.a = 5; o.a|}, "1");
  ]

let object_error_tests () =
  check_error "defineProperty array length configurable"
    {|var a = [0, 1]; Object.defineProperty(a, "length", {value: 1, configurable: true});|}
    "TypeError";
  check_out "defineProperty array length value ok"
    {|var a = [0, 1, 2]; Object.defineProperty(a, "length", {value: 1}); print(a);|} "0";
  check_error "redefine non-configurable"
    {|var o = {}; Object.defineProperty(o, "k", {value: 1});
Object.defineProperty(o, "k", {value: 2, configurable: true});|}
    "TypeError";
  check_error "strict write to frozen"
    {|"use strict"; var o = Object.freeze({a: 1}); o.a = 2;|} "TypeError";
  check_error "strict add to sealed"
    {|"use strict"; var o = Object.seal({}); o.b = 1;|} "TypeError";
  check_error "keys of non-object" {|print(Object.keys(null));|} "TypeError"

let number_tests =
  [
    ("toFixed", {|(3.14159).toFixed(2)|}, "3.14");
    ("toFixed zero digits", {|(2.5).toFixed(0)|}, "2");
    ("toFixed pads", {|(2).toFixed(3)|}, "2.000");
    ("toFixed NaN", {|(NaN).toFixed(2)|}, "NaN");
    ("toPrecision", {|(123.456).toPrecision(4)|}, "123.5");
    ("toString radix 2", {|(10).toString(2)|}, "1010");
    ("toString radix 16", {|(255).toString(16)|}, "ff");
    ("toString radix 36", {|(35).toString(36)|}, "z");
    ("toString default", {|(1.5).toString()|}, "1.5");
    ("isInteger yes", {|Number.isInteger(5)|}, "true");
    ("isInteger float", {|Number.isInteger(5.5)|}, "false");
    ("isInteger string no coerce", {|Number.isInteger("5")|}, "false");
    ("isNaN strict", {|Number.isNaN("abc")|}, "false");
    ("isFinite strict", {|Number.isFinite("5")|}, "false");
    ("isSafeInteger", {|Number.isSafeInteger(9007199254740991)|}, "true");
    ("MAX_SAFE_INTEGER", {|Number.MAX_SAFE_INTEGER|}, "9007199254740991");
    ("Number()", {|Number("42")|}, "42");
    ("Number bad", {|Number("4x")|}, "NaN");
    ("Number empty string", {|Number("")|}, "0");
    ("Number null", {|Number(null)|}, "0");
    ("Number hex string", {|Number("0x10")|}, "16");
    ("parseInt", {|parseInt("42px")|}, "42");
    ("parseInt radix", {|parseInt("ff", 16)|}, "255");
    ("parseInt hex prefix", {|parseInt("0x1f")|}, "31");
    ("parseInt bad", {|parseInt("px")|}, "NaN");
    ("parseInt negative", {|parseInt("-12")|}, "-12");
    ("parseFloat prefix", {|parseFloat("3.5kg")|}, "3.5");
    ("parseFloat exponent", {|parseFloat("1e2")|}, "100");
    ("parseFloat bad", {|parseFloat("kg")|}, "NaN");
    ("global isNaN coerces", {|isNaN("abc")|}, "true");
    ("global isFinite coerces", {|isFinite("5")|}, "true");
  ]

let number_error_tests () =
  check_error "toFixed negative" {|print((1.5).toFixed(-2));|} "RangeError";
  check_error "toFixed > 100" {|print((1.5).toFixed(101));|} "RangeError";
  check_error "toPrecision 0" {|print((1.5).toPrecision(0));|} "RangeError";
  check_error "toString radix 1" {|print((5).toString(1));|} "RangeError";
  check_error "toString radix 37" {|print((5).toString(37));|} "RangeError"

let math_tests =
  [
    ("abs", {|Math.abs(-3)|}, "3");
    ("floor", {|Math.floor(2.7)|}, "2");
    ("floor negative", {|Math.floor(-2.1)|}, "-3");
    ("ceil", {|Math.ceil(2.1)|}, "3");
    ("round half up", {|Math.round(2.5)|}, "3");
    ("round negative half", {|Math.round(-2.5)|}, "-2");
    ("trunc", {|Math.trunc(-2.9)|}, "-2");
    ("max", {|Math.max(1, 9, 4)|}, "9");
    ("max empty", {|Math.max()|}, "-Infinity");
    ("max NaN", {|Math.max(1, NaN)|}, "NaN");
    ("min", {|Math.min(3, -2)|}, "-2");
    ("pow", {|Math.pow(2, 8)|}, "256");
    ("sqrt", {|Math.sqrt(144)|}, "12");
    ("sign", {|Math.sign(-9)|}, "-1");
    ("PI", {|Math.floor(Math.PI * 100)|}, "314");
  ]

let json_tests =
  [
    ("stringify number", {|JSON.stringify(1.5)|}, "1.5");
    ("stringify string", {|JSON.stringify("hi")|}, "\"hi\"");
    ("stringify escape", {|JSON.stringify("a\"b")|}, "\"a\\\"b\"");
    ("stringify null", {|JSON.stringify(null)|}, "null");
    ("stringify bool", {|JSON.stringify(true)|}, "true");
    ("stringify array", {|JSON.stringify([1, "a", null])|}, "[1,\"a\",null]");
    ("stringify object", {|JSON.stringify({a: 1, b: [2]})|}, "{\"a\":1,\"b\":[2]}");
    ("stringify nested", {|JSON.stringify({a: {b: {}}})|}, "{\"a\":{\"b\":{}}}");
    ("stringify NaN is null", {|JSON.stringify(NaN)|}, "null");
    ("stringify Infinity is null", {|JSON.stringify([Infinity])|}, "[null]");
    ("stringify skips functions", {|JSON.stringify({f: function() {}})|}, "{}");
    ("stringify undefined member skipped", {|JSON.stringify({u: undefined})|}, "{}");
    ("stringify undefined in array", {|JSON.stringify([undefined])|}, "[null]");
    ("stringify undefined top-level", {|typeof JSON.stringify(undefined)|}, "undefined");
    ("stringify indent", {|JSON.stringify({a: 1}, null, 2).length|}, "12");
    ("parse number", {|JSON.parse("42")|}, "42");
    ("parse array", {|JSON.parse("[1, 2]")[1]|}, "2");
    ("parse object", {|JSON.parse("{\"k\": \"v\"}").k|}, "v");
    ("parse nested", {|JSON.parse("{\"a\": {\"b\": [true]}}").a.b[0]|}, "true");
    ("parse string escape", {|JSON.parse("\"a\\nb\"").length|}, "3");
    ("roundtrip", {|JSON.parse(JSON.stringify({x: [1.5, "s"]})).x[1]|}, "s");
  ]

let json_error_tests () =
  check_error "parse trailing comma" {|print(JSON.parse("[1, 2, ]"));|} "SyntaxError";
  check_error "parse garbage" {|print(JSON.parse("{bad}"));|} "SyntaxError";
  check_error "parse single quotes" {|print(JSON.parse("'str'"));|} "SyntaxError";
  check_error "parse trailing chars" {|print(JSON.parse("1 2"));|} "SyntaxError"

let typed_tests =
  [
    ("u8 length", {|new Uint8Array(4).length|}, "4");
    ("u8 zero filled", {|new Uint8Array(2)[0]|}, "0");
    ("u8 wrap", {|var t = new Uint8Array(1); t[0] = 300; t[0]|}, "44");
    ("i8 sign", {|var t = new Int8Array(1); t[0] = 200; t[0]|}, "-56");
    ("u16 wrap", {|var t = new Uint16Array(1); t[0] = 65537; t[0]|}, "1");
    ("u32 big", {|var t = new Uint32Array(1); t[0] = 4294967295; t[0]|}, "4294967295");
    ("clamped clamps high", {|var t = new Uint8ClampedArray(1); t[0] = 300; t[0]|}, "255");
    ("clamped clamps low", {|var t = new Uint8ClampedArray(1); t[0] = -5; t[0]|}, "0");
    ("f64 pass-through", {|var t = new Float64Array(1); t[0] = 1.25; t[0]|}, "1.25");
    ("fractional length converts", {|new Uint32Array(3.14).length|}, "3");
    ("from array", {|new Uint8Array([1, 2, 300])|}, "1,2,44");
    ("set array", {|var t = new Uint8Array(4); t.set([9, 8], 1); t|}, "0,9,8,0");
    ("set string arraylike", {|var t = new Uint8Array(5); t.set("123"); t|}, "1,2,3,0,0");
    ("subarray", {|new Uint8Array([1, 2, 3, 4]).subarray(1, 3)|}, "2,3");
    ("join", {|new Uint8Array([1, 2]).join("-")|}, "1-2");
    ("oob write dropped", {|var t = new Uint8Array(1); t[5] = 1; t.length|}, "1");
    ("BYTES_PER_ELEMENT", {|Uint32Array.BYTES_PER_ELEMENT|}, "4");
    ("typed fill coerces", {|var t = new Uint8Array(2); t.fill(257); t|}, "1,1");
  ]

let typed_error_tests () =
  check_error "set oob" {|var t = new Uint8Array(2); t.set([1, 2, 3]);|} "RangeError";
  check_error "negative length" {|print(new Uint8Array(-1));|} "RangeError";
  check_error "dataview oob read" {|new DataView(2).getUint8(5);|} "RangeError";
  check_out "dataview roundtrip"
    {|var v = new DataView(4); v.setUint16(0, 770); print(v.getUint16(0)); print(v.getUint8(1));|}
    "770\n2";
  check_out "dataview u32"
    {|var v = new DataView(8); v.setUint32(0, 123456789); print(v.getUint32(0));|}
    "123456789"

let eval_tests () =
  check_out "eval expression" {|print(eval("1 + 2 * 3"));|} "7";
  check_out "eval string result" {|print(eval("'str' + 'ing'"));|} "string";
  check_out "eval sees scope" {|var x = 5; print(eval("x + 1"));|} "6";
  check_out "eval defines var" {|eval("var ev = 9;"); print(ev);|} "9";
  check_out "eval non-string passthrough" {|print(eval(42));|} "42";
  check_error "eval syntax error" {|eval("var = ;");|} "SyntaxError";
  check_error "eval for without body" {|eval("for(var i = 0; i < 5; i++)");|} "SyntaxError";
  check_out "eval catches" {|try { eval("}{"); } catch (e) { print(e.name); }|} "SyntaxError"

let regexp_object_tests () =
  check_out "test true" {|print(/a.c/.test("abc"));|} "true";
  check_out "test false" {|print(/a.c/.test("a\nc"));|} "false";
  check_out "exec groups" {|var m = /(\d+)-(\d+)/.exec("10-20"); print(m[1]); print(m[2]);|} "10\n20";
  check_out "exec index" {|print(/b/.exec("abc").index);|} "1";
  check_out "exec miss" {|print(/z/.exec("abc"));|} "null";
  check_out "global lastIndex advances"
    {|var re = /a/g; re.exec("aa"); print(re.lastIndex); re.exec("aa"); print(re.lastIndex);|}
    "1\n2";
  check_out "lastIndex resets on miss"
    {|var re = /a/g; re.exec("xa"); re.exec("xa"); print(re.lastIndex);|} "0";
  check_out "source and flags" {|var re = /ab/gi; print(re.source); print(re.flags);|} "ab\ngi";
  check_out "RegExp constructor" {|print(new RegExp("\\d+").test("x5"));|} "true";
  check_out "compile replaces" {|var re = /a/; re.compile("b"); print(re.test("b"));|} "true";
  check_out "toString" {|print(/x/g + "");|} "/x/g";
  check_error "lastIndex non-writable compile"
    {|var re = /a/g; Object.defineProperty(re, "lastIndex", {writable: false}); re.compile("b");|}
    "TypeError";
  check_error "bad regexp" {|new RegExp("(");|} "SyntaxError"

let date_tests () =
  check_out "Date.now deterministic" {|print(Date.now() === Date.now());|} "true";
  check_out "getTime" {|print(new Date(123).getTime());|} "123";
  check_out "valueOf" {|print(new Date(5) - new Date(2));|} "3"

let suite =
  List.map
    (fun (name, expr, expected) -> case name (fun () -> check_expr name expr expected))
    (object_tests @ number_tests @ math_tests @ json_tests @ typed_tests)
  @ [
      case "object errors" object_error_tests;
      case "number errors" number_error_tests;
      case "json errors" json_error_tests;
      case "typed arrays + dataview" typed_error_tests;
      case "eval" eval_tests;
      case "regexp objects" regexp_object_tests;
      case "date stub" date_tests;
    ]
