(* Lexer, parser, printer: acceptance, rejection, ASI, engine front-end
   options, and a QCheck print/parse round-trip over random ASTs. *)

open Helpers
module Ast = Jsast.Ast
module B = Jsast.Builder
module P = Jsparse.Parser

let parses src =
  match P.parse_program src with
  | _ -> true
  | exception P.Syntax_error _ -> false

let accepted =
  [
    "var x = 1;";
    "let y = 2; const z = 3;";
    "function f(a, b) { return a + b; }";
    "var f = function() {};";
    "var f = (a) => a + 1;";
    "var f = x => x;";
    "if (a) b(); else c();";
    "for (var i = 0; i < 10; i++) work();";
    "for (;;) { break; }";
    "for (var k in obj) {}";
    "for (k in obj) {}";
    "for (var v of list) {}";
    "while (x) x--;";
    "do { x++; } while (x < 3);";
    "switch (x) { case 1: break; default: }";
    "try {} catch (e) {}";
    "try {} finally {}";
    "throw new Error(\"x\");";
    "a.b.c.d;";
    "a[0][\"k\"];";
    "new Foo(1, 2);";
    "new Foo;";
    "new new Wrap(Inner)();";
    "x = y = z = 1;";
    "x += 1; x -= 1; x *= 2; x /= 2; x %= 2; x **= 2;";
    "x &= 1; x |= 1; x ^= 1;";
    "a ? b : c;";
    "a, b, c;";
    "var o = {a: 1, \"b\": 2, 3: 4, [k]: 5, shorthand};";
    "var a = [1, , 3];";
    "var a = [];";
    "/abc/.test(s);";
    "var re = /a\\/b/gi;";
    "s.split(/,\\s*/);";
    "`template ${x + 1} tail`;";
    "label: while (1) { break label; }";
    "x++; x--; ++x; --x;";
    "typeof x; void 0; delete o.k;";
    "a instanceof B;";
    "\"k\" in o;";
    "1 .toString();";
    "(1).toString();";
    "x.in;"; (* keyword as property name *)
    "var of = 3; print(of);";
    "0x1F + 0Xff;";
    "1e3 + 1.5e-2 + .5;";
    "a() && b() || c();";
    "var s = 'single quotes';";
    "f(function() { return 1; });";
    "print(- -1);";
    "debugger;";
    (* ASI *)
    "var a = 1\nvar b = 2\nprint(a + b)";
    "x = 1\ny = 2";
    "return_less();\n{ }";
  ]

let rejected =
  [
    "var = 1;";
    "var 1x = 2;";
    "function () {}";
    "if (x";
    "for (var i = 0; i < 5; i++)"; (* missing loop body *)
    "while (x)";
    "x = ;";
    "a.;";
    "var o = {a 1};";
    "try {}"; (* no catch/finally *)
    "switch (x) { default: ; default: ; }";
    "const c;";
    "throw\n1;"; (* newline after throw *)
    "var s = \"unterminated;";
    "/* unterminated";
    "var class = 1;"; (* reserved word *)
    "x = 3in y;";
    "0x;";
    "1.5e;";
    "var re = /a/q;"; (* bad flag *)
    "continue outside;"; (* label after continue is parsed; outside a loop is semantic... *)
  ]

let acceptance_tests () =
  List.iter
    (fun src ->
      if not (parses src) then Alcotest.failf "should parse: %s" src)
    accepted

let rejection_tests () =
  List.iter
    (fun src ->
      match src with
      | "continue outside;" -> () (* parsed fine; runtime concern *)
      | _ ->
          if parses src then Alcotest.failf "should NOT parse: %s" src)
    rejected

let es5_options_tests () =
  let es5 src =
    match P.parse_program ~opts:P.es5_options src with
    | _ -> true
    | exception P.Syntax_error _ -> false
  in
  Alcotest.(check bool) "es5 rejects let" false (es5 "let x = 1;");
  Alcotest.(check bool) "es5 rejects const" false (es5 "const x = 1;");
  Alcotest.(check bool) "es5 rejects arrows" false (es5 "var f = (x) => x;");
  Alcotest.(check bool) "es5 rejects templates" false (es5 "var t = `x`;");
  Alcotest.(check bool) "es5 rejects for-of" false (es5 "for (var v of a) {}");
  Alcotest.(check bool) "es5 rejects exponent" false (es5 "var x = 2 ** 3;");
  Alcotest.(check bool) "es5 accepts plain code" true
    (es5 "var x = 1; function f() { return x; }");
  (* quirk options *)
  let chakra =
    { P.default_options with P.accept_for_missing_body = true }
  in
  Alcotest.(check bool) "chakra accepts bodiless for" true
    (match P.parse_program ~opts:chakra "for(var i = 0; i < 5; i++)" with
    | _ -> true
    | exception P.Syntax_error _ -> false)

let asi_tests () =
  check_out "asi basic" "var a = 1\nvar b = 2\nprint(a + b)" "3";
  check_out "asi return restriction"
    "function f() { return\n42; }\nprint(f());" "undefined";
  check_out "asi before close brace" "function f() { return 7 }\nprint(f())" "7";
  check_out "postfix stays on line"
    "var x = 1\nx++\nprint(x)" "2"

let directive_tests () =
  let p = P.parse_program "\"use strict\";\nvar x = 1;" in
  Alcotest.(check bool) "program strict flag" true p.Ast.prog_strict;
  let p2 = P.parse_program "var x = 1;" in
  Alcotest.(check bool) "no strict flag" false p2.Ast.prog_strict

(* --- QCheck: printer/parser round-trip over random programs --- *)

let gen_ident =
  QCheck2.Gen.(oneofl [ "a"; "b"; "x"; "y"; "foo"; "bar"; "v1"; "tmp" ])

let gen_lit =
  QCheck2.Gen.(
    oneof
      [
        map (fun i -> B.int i) (int_range (-1000) 1000);
        map (fun f -> B.num (Float.abs f)) (float_bound_inclusive 1e6);
        map (fun s -> B.str s) (string_size ~gen:(char_range 'a' 'z') (int_range 0 8));
        return (B.bool true);
        return (B.bool false);
        return B.null;
      ])

let rec gen_expr depth =
  let open QCheck2.Gen in
  if depth = 0 then oneof [ gen_lit; map B.ident gen_ident ]
  else
    oneof
      [
        gen_lit;
        map B.ident gen_ident;
        map2 (B.binary Ast.Add) (gen_expr (depth - 1)) (gen_expr (depth - 1));
        map2 (B.binary Ast.Mul) (gen_expr (depth - 1)) (gen_expr (depth - 1));
        map2 (B.binary Ast.Lt) (gen_expr (depth - 1)) (gen_expr (depth - 1));
        map2 (B.logical Ast.And) (gen_expr (depth - 1)) (gen_expr (depth - 1));
        map (fun e -> B.unary Ast.Unot e) (gen_expr (depth - 1));
        map (fun e -> B.unary Ast.Uneg e) (gen_expr (depth - 1));
        map3 (fun c t f -> B.cond c t f) (gen_expr (depth - 1))
          (gen_expr (depth - 1)) (gen_expr (depth - 1));
        map2 (fun o n -> B.field o n) (gen_expr (depth - 1)) gen_ident;
        map2 (fun f a -> B.call f [ a ]) (map B.ident gen_ident) (gen_expr (depth - 1));
        map (fun es -> B.array es) (list_size (int_range 0 3) (gen_expr (depth - 1)));
      ]

let rec gen_stmt depth =
  let open QCheck2.Gen in
  if depth = 0 then map B.expr_stmt (gen_expr 1)
  else
    oneof
      [
        map B.expr_stmt (gen_expr 2);
        map2 (fun n e -> B.var n e) gen_ident (gen_expr 2);
        map2 (fun c b -> B.if_ c b) (gen_expr 1) (gen_stmt (depth - 1));
        map2 (fun c b -> B.s (Ast.While (c, b))) (gen_expr 1) (gen_stmt (depth - 1));
        map (fun b -> B.block [ b ]) (gen_stmt (depth - 1));
        map (fun e -> B.return_ e) (gen_expr 2);
        map3
          (fun n ps b -> B.func_decl n ps [ b ])
          gen_ident
          (list_size (int_range 0 3) gen_ident)
          (gen_stmt (depth - 1));
        map (fun e -> B.throw e) (gen_expr 1);
      ]

let gen_program =
  QCheck2.Gen.(
    map (fun stmts -> B.program stmts) (list_size (int_range 1 6) (gen_stmt 2)))

let roundtrip_prop =
  QCheck2.Test.make ~count:300 ~name:"print/parse round-trip" gen_program
    (fun p ->
      let s1 = Jsast.Printer.program_to_string p in
      match P.parse_program s1 with
      | exception P.Syntax_error (msg, line) ->
          QCheck2.Test.fail_reportf "emitted invalid syntax (line %d: %s):\n%s"
            line msg s1
      | p2 ->
          let s2 = Jsast.Printer.program_to_string p2 in
          if s1 = s2 then true
          else
            QCheck2.Test.fail_reportf "round-trip mismatch:\n--- 1:\n%s\n--- 2:\n%s" s1 s2)

let idempotent_prop =
  QCheck2.Test.make ~count:200 ~name:"refresh preserves printing" gen_program
    (fun p ->
      let s1 = Jsast.Printer.program_to_string p in
      let s2 = Jsast.Printer.program_to_string (B.refresh_program p) in
      s1 = s2)

let suite =
  [
    case "accepted programs" acceptance_tests;
    case "rejected programs" rejection_tests;
    case "es5 and quirk options" es5_options_tests;
    case "automatic semicolon insertion" asi_tests;
    case "directive prologue" directive_tests;
    QCheck_alcotest.to_alcotest roundtrip_prop;
    QCheck_alcotest.to_alcotest idempotent_prop;
  ]
