(* Ground-truth quirk validation: for every quirk in the catalogue there is
   a trigger program such that
   - the quirked engine's observable behaviour differs from the reference,
   - the quirk is recorded as fired on the quirked run,
   - and the reference run does not fire anything.
   This guarantees every seeded bug is discoverable by differential
   testing, i.e. the ground truth of the campaign experiments is sound. *)

open Jsinterp
open Helpers

(* quirk, trigger program, strict-mode testbed? *)
let triggers : (Quirk.t * string * bool) list =
  Quirk.
    [
      (Q_substr_undefined_length_empty, {|print("abcdef".substr(2, undefined));|}, false);
      ( Q_defineproperty_array_length_no_typeerror,
        {|try { Object.defineProperty([0, 1], "length", {value: 1, configurable: true}); print("ok"); } catch (e) { print(e.name); }|},
        false );
      ( Q_array_reverse_fill_quadratic,
        {|var size = 60000; var a = new Array(size); while (size--) { a[size] = 0; } print("done");|},
        false );
      (Q_uint32array_fractional_length_typeerror,
       {|try { print(new Uint32Array(3.14).length); } catch (e) { print(e.name); }|}, false);
      (Q_tofixed_no_rangeerror,
       {|try { print((-634619).toFixed(-2)); } catch (e) { print(e.name); }|}, false);
      (Q_typedarray_set_string_typeerror,
       {|try { var A = new Uint8Array(5); A.set("123"); print(A); } catch (e) { print(e.name); }|},
       false);
      (Q_bool_prop_appends_to_array,
       {|var obj = [1, 2, 5]; obj[true] = 10; print(obj); print(obj[true]);|}, false);
      (Q_eval_for_missing_body_accepted,
       {|try { eval("for(var i = 0; i < 5; i++)"); print("ok"); } catch (e) { print(e.name); }|},
       false);
      (Q_split_regexp_anchor_bug, {|print("anA".split(/^A/));|}, false);
      (Q_normalize_empty_crash, {|"".normalize(true);|}, false);
      (Q_seal_string_object_crash, {|Object.seal(new String(2477)); print("ok");|}, false);
      (Q_string_big_null_no_typeerror,
       {|try { print(String.prototype.big.call(null)); } catch (e) { print(e.name); }|}, false);
      ( Q_regexp_lastindex_nonwritable_silent,
        {|var re = /a/g; Object.defineProperty(re, "lastIndex", {writable: false});
try { re.compile("b"); print("ok"); } catch (e) { print(e.name); }|},
        false );
      (Q_named_funcexpr_binding_mutable,
       {|(function v1() { v1 = 20; print(typeof v1); }());|}, false);
      (Q_replace_dollar_group_literal,
       {|print("a b".replace(/(\w) (\w)/, "$2 $1"));|}, false);
      (Q_replace_fn_missing_offset,
       {|print("abc".replace("b", function(m, off) { return "" + off; }));|}, false);
      (Q_replace_undefined_search_noop,
       {|print("x undefined y".replace(undefined, "Z"));|}, false);
      (Q_replace_empty_pattern_skips, {|print("abc".replace("", "-"));|}, false);
      (Q_charat_negative_wraps, {|print("abc".charAt(-1) === "");|}, false);
      (Q_padstart_overlong_truncates, {|print("abcdef".padStart(3, "x"));|}, false);
      (Q_trim_missing_vt, {|print("\x0bx\x0b".trim());|}, false);
      (Q_repeat_negative_empty,
       {|try { print("x".repeat(-1)); } catch (e) { print(e.name); }|}, false);
      (Q_string_indexof_fromindex_ignored, {|print("banana".indexOf("an", 2));|}, false);
      (Q_slice_negative_start_zero, {|print("abcdef".slice(-2));|}, false);
      (Q_startswith_position_ignored, {|print("abcdef".startsWith("cd", 2));|}, false);
      (Q_lastindexof_nan_zero, {|print("banana".lastIndexOf("an", NaN));|}, false);
      (Q_array_sort_numeric_default, {|print([10, 9, 1].sort());|}, false);
      (Q_splice_negative_delcount_deletes,
       {|var a = [1, 2, 3]; a.splice(0, -1); print(a);|}, false);
      (Q_array_indexof_nan_found, {|print([NaN].indexOf(NaN));|}, false);
      (Q_array_includes_strict_nan, {|print([NaN].includes(NaN));|}, false);
      (Q_unshift_returns_undefined, {|print([2].unshift(1));|}, false);
      (Q_join_prints_null_undefined, {|print([1, null, undefined, 2].join("-"));|}, false);
      (Q_reduce_empty_returns_undefined,
       {|try { print([].reduce(function(a, b) { return a + b; })); } catch (e) { print(e.name); }|},
       false);
      (Q_flat_ignores_depth, {|print([1, [2, [3, [4]]]].flat(1).length);|}, false);
      (Q_array_fill_skips_last, {|print([0, 0, 0].fill(7, 0, 3));|}, false);
      (Q_tostring_radix_no_rangeerror,
       {|try { print((255).toString(40)); } catch (e) { print(e.name); }|}, false);
      (Q_toprecision_zero_accepted,
       {|try { print((1.5).toPrecision(0)); } catch (e) { print(e.name); }|}, false);
      (Q_parseint_no_hex_prefix, {|print(parseInt("0x1f"));|}, false);
      (Q_parsefloat_trailing_nan, {|print(parseFloat("3.5kg"));|}, false);
      (Q_number_isinteger_coerces, {|print(Number.isInteger("5"));|}, false);
      (Q_freeze_array_elements_writable,
       {|var a = [1]; Object.freeze(a); a[0] = 9; print(a[0]);|}, false);
      (Q_keys_includes_nonenumerable,
       {|var o = {}; Object.defineProperty(o, "h", {value: 1, enumerable: false});
print(Object.keys(o).length);|},
       false);
      (Q_getownpropertynames_sorted,
       {|print(Object.getOwnPropertyNames({z: 1, a: 2}));|}, false);
      (Q_defineproperty_defaults_writable,
       {|var o = {}; Object.defineProperty(o, "k", {value: 1}); o.k = 2; print(o.k);|}, false);
      (Q_assign_skips_numeric_keys,
       {|var t = Object.assign({}, {1: "a", x: "b"}); print(t[1]); print(t.x);|}, false);
      (Q_hasownproperty_walks_proto, {|print(({}).hasOwnProperty("toString"));|}, false);
      (Q_delete_nonconfigurable_succeeds,
       {|var o = {}; Object.defineProperty(o, "k", {value: 1, configurable: false});
delete o.k; print(o.k);|},
       false);
      (Q_json_stringify_undefined_string,
       {|print(typeof JSON.stringify(undefined));|}, false);
      (Q_json_parse_trailing_comma,
       {|try { print(JSON.parse("[1, 2, ]")); } catch (e) { print(e.name); }|}, false);
      (Q_json_stringify_nan_literal, {|print(JSON.stringify(NaN));|}, false);
      (Q_regex_dot_matches_newline, {|print(/a.c/.test("a\nc"));|}, false);
      (Q_regex_ignorecase_broken, {|print(/HELLO/i.test("hello"));|}, false);
      (Q_regex_class_negation_broken, {|print(/[^x]/.test("x"));|}, false);
      (Q_typedarray_oob_write_crash,
       {|var t = new Uint8Array(2); t[9] = 1; print("ok");|}, false);
      (Q_uint8clamped_wraps,
       {|var c = new Uint8ClampedArray(1); c[0] = 300; print(c[0]);|}, false);
      (Q_dataview_no_bounds_check,
       {|try { print(new DataView(2).getUint8(9)); } catch (e) { print(e.name); }|}, false);
      (Q_typedarray_fill_no_coerce,
       {|var t = new Uint8Array(2); t.fill(257); print(t);|}, false);
      (Q_eval_expr_returns_undefined, {|print(eval("1 + 2"));|}, false);
      (Q_eval_string_result_quoted, {|print(eval("'str'"));|}, false);
      (Q_codegen_neg_zero_positive, {|var z = 0; print(1 / -z);|}, false);
      (Q_codegen_mod_sign_wrong, {|print(-5 % 3);|}, false);
      (Q_codegen_shift_count_unmasked, {|print(1 << 33);|}, false);
      (Q_codegen_ushr_signed, {|print(-1 >>> 0);|}, false);
      (Q_codegen_string_relational_numeric, {|print("10" < "9");|}, false);
      (Q_codegen_null_eq_undefined_false, {|print(null == undefined);|}, false);
      (Q_codegen_plus_bool_concat, {|print(true + 1);|}, false);
      (Q_opt_int_add_overflow_wraps, {|print(2000000000 + 2000000000);|}, false);
      ( Q_opt_loop_strconcat_drops,
        {|var s = ""; for (var i = 0; i < 150; i++) { s += "x"; } print(s.length);|},
        false );
      (Q_strict_undeclared_assign_silent,
       {|function f() { qq_undeclared = 1; } try { f(); print("silent"); } catch (e) { print(e.name); }|},
       true);
      (Q_strict_this_is_global,
       {|function f() { return this === undefined; } print(f());|}, true);
      (Q_strict_delete_unqualified_accepted, {|var x = 1; print(delete x);|}, true);
      (Q_strict_dup_params_accepted,
       {|print((function(a, a) { return a; })(1, 2));|}, true);
    ]

let run_one ?(strict = false) quirks src =
  Run.run ~strict ~quirks ~fuel:2_000_000 src

let signature (r : Run.result) =
  if not r.Run.r_parsed then "parse-fail"
  else
    Printf.sprintf "%s|%s" (Run.status_to_string r.Run.r_status) r.Run.r_output

let quirk_case (q, src, strict) =
  case (Quirk.to_string q) (fun () ->
      let reference = run_one ~strict Quirk.Set.empty src in
      let quirked = run_one ~strict (Quirk.Set.singleton q) src in
      if not (Quirk.Set.is_empty reference.Run.r_fired) then
        Alcotest.failf "reference run fired quirks for %s" (Quirk.to_string q);
      if not (Quirk.Set.mem q quirked.Run.r_fired) then
        Alcotest.failf "quirk %s did not fire on its trigger" (Quirk.to_string q);
      if signature reference = signature quirked then
        Alcotest.failf "quirk %s is not observable: both runs gave %s"
          (Quirk.to_string q) (signature reference))

let coverage_case =
  case "every catalogued quirk has a trigger" (fun () ->
      let covered = List.map (fun (q, _, _) -> q) triggers in
      List.iter
        (fun q ->
          if not (List.exists (Quirk.equal q) covered) then
            Alcotest.failf "no trigger test for quirk %s" (Quirk.to_string q))
        Quirk.all;
      Alcotest.(check int) "catalogue metadata is total"
        (List.length Quirk.all)
        (List.length Engines.Catalogue.all))

let suite = coverage_case :: List.map quirk_case triggers
