(* The miniature JS regex engine. *)

open Jsinterp
open Helpers

let m pat flags input =
  let prog = Regex.compile pat flags in
  match Regex.exec prog input 0 with
  | Some r -> Some (String.sub input r.Regex.m_start (r.Regex.m_end - r.Regex.m_start))
  | None -> None

let check_match name pat flags input expected =
  Alcotest.(check (option string)) name expected (m pat flags input)

let basics () =
  check_match "literal" "abc" "" "xxabcxx" (Some "abc");
  check_match "no match" "abc" "" "xyz" None;
  check_match "dot" "a.c" "" "abc" (Some "abc");
  check_match "dot not newline" "a.c" "" "a\nc" None;
  check_match "star" "ab*c" "" "abbbc" (Some "abbbc");
  check_match "star empty" "ab*c" "" "ac" (Some "ac");
  check_match "plus" "ab+c" "" "abc" (Some "abc");
  check_match "plus requires one" "ab+c" "" "ac" None;
  check_match "question" "colou?r" "" "color" (Some "color");
  check_match "greedy" "a.*c" "" "abcabc" (Some "abcabc");
  check_match "lazy" "a.*?c" "" "abcabc" (Some "abc");
  check_match "alternation" "cat|dog" "" "hotdog" (Some "dog");
  check_match "alternation first wins" "a|ab" "" "ab" (Some "a");
  check_match "group" "(ab)+" "" "ababx" (Some "abab");
  check_match "non-capturing" "(?:ab)+c" "" "ababc" (Some "ababc");
  check_match "nested groups" "((a)b)c" "" "abc" (Some "abc")

let classes () =
  check_match "class" "[abc]+" "" "xxbca" (Some "bca");
  check_match "range" "[a-f]+" "" "zzabf" (Some "abf");
  check_match "negated" "[^0-9]+" "" "12ab3" (Some "ab");
  check_match "digit" "\\d+" "" "ab123" (Some "123");
  check_match "non-digit" "\\D+" "" "12ab" (Some "ab");
  check_match "word" "\\w+" "" "!!a_1!" (Some "a_1");
  check_match "space" "\\s+" "" "a \t b" (Some " \t ");
  check_match "escaped dot" "a\\.c" "" "a.c" (Some "a.c");
  check_match "escaped dot no wild" "a\\.c" "" "abc" None;
  check_match "class with dash end" "[a-]" "" "-" (Some "-");
  check_match "hex escape" "\\x41+" "" "zAAB" (Some "AA")

let anchors_flags () =
  check_match "caret" "^ab" "" "abc" (Some "ab");
  check_match "caret mid fails" "^b" "" "ab" None;
  check_match "dollar" "bc$" "" "abc" (Some "bc");
  check_match "dollar mid fails" "a$" "" "ab" None;
  check_match "both anchors" "^abc$" "" "abc" (Some "abc");
  check_match "ignorecase" "HeLLo" "i" "hello" (Some "hello");
  check_match "ignorecase class" "[A-Z]+" "i" "abc" (Some "abc");
  check_match "multiline caret" "^b" "m" "a\nb" (Some "b");
  check_match "multiline dollar" "a$" "m" "a\nb" (Some "a")

let quantifiers () =
  check_match "exact count" "a{3}" "" "aaaa" (Some "aaa");
  check_match "exact too few" "a{3}" "" "aa" None;
  check_match "min count" "a{2,}" "" "aaaa" (Some "aaaa");
  check_match "range count" "a{2,3}" "" "aaaa" (Some "aaa");
  check_match "brace literal when invalid" "a{x}" "" "a{x}" (Some "a{x}");
  check_match "zero-width star terminates" "(a?)*b" "" "b" (Some "b")

let captures () =
  let prog = Regex.compile "(\\d+)-(\\d+)" "" in
  match Regex.exec prog "ab 12-34 cd" 0 with
  | None -> Alcotest.fail "expected a match"
  | Some r ->
      Alcotest.(check int) "start" 3 r.Regex.m_start;
      (match r.Regex.m_groups.(0) with
      | Some (a, b) -> Alcotest.(check string) "group 1" "12" (String.sub "ab 12-34 cd" a (b - a))
      | None -> Alcotest.fail "group 1 missing");
      (match r.Regex.m_groups.(1) with
      | Some (a, b) -> Alcotest.(check string) "group 2" "34" (String.sub "ab 12-34 cd" a (b - a))
      | None -> Alcotest.fail "group 2 missing")

let errors () =
  let bad pat =
    match Regex.compile pat "" with
    | exception Regex.Parse_error _ -> ()
    | _ -> Alcotest.failf "pattern should be rejected: %s" pat
  in
  bad "(";
  bad "a)";
  bad "[abc";
  bad "*a";
  bad "a{3,1}";
  match Regex.compile "a" "gz" with
  | exception Regex.Parse_error _ -> ()
  | _ -> Alcotest.fail "bad flag should be rejected"

let deviated_semantics () =
  let sem_dot = { Regex.standard_semantics with Regex.dot_matches_newline = true } in
  let prog = Regex.compile "a.c" "" in
  Alcotest.(check bool) "dot-newline quirk" true
    (Option.is_some (Regex.exec ~sem:sem_dot prog "a\nc" 0));
  let sem_ci = { Regex.standard_semantics with Regex.ignorecase_broken = true } in
  let prog_i = Regex.compile "ABC" "i" in
  Alcotest.(check bool) "broken ignorecase" false
    (Option.is_some (Regex.exec ~sem:sem_ci prog_i "abc" 0))

(* property: every match the engine reports is a real substring occurrence
   for literal-only patterns *)
let literal_prop =
  QCheck2.Test.make ~count:300 ~name:"literal patterns find real occurrences"
    QCheck2.Gen.(
      pair
        (string_size ~gen:(char_range 'a' 'c') (int_range 1 4))
        (string_size ~gen:(char_range 'a' 'c') (int_range 0 12)))
    (fun (pat, input) ->
      let prog = Regex.compile pat "" in
      match Regex.exec prog input 0 with
      | Some r ->
          String.sub input r.Regex.m_start (r.Regex.m_end - r.Regex.m_start) = pat
      | None ->
          (* no occurrence: check exhaustively *)
          let n = String.length input and m = String.length pat in
          not
            (List.exists
               (fun i -> String.sub input i m = pat)
               (List.init (max 0 (n - m + 1)) (fun i -> i))))

let suite =
  [
    case "basics" basics;
    case "character classes" classes;
    case "anchors and flags" anchors_flags;
    case "quantifiers" quantifiers;
    case "captures" captures;
    case "parse errors" errors;
    case "deviation knobs" deviated_semantics;
    QCheck_alcotest.to_alcotest literal_prop;
  ]
