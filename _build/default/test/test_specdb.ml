(* Specification extraction (§3.1): the Figure 1 -> Figure 4 pipeline. *)

open Specdb
open Helpers

let db () = Lazy.force Db.standard

let lookup_one name =
  match Db.lookup (db ()) name with
  | e :: _ -> e
  | [] -> Alcotest.failf "no spec entry for %s" name

let substr_entry () =
  let e = lookup_one "substr" in
  Alcotest.(check string) "name" "String.prototype.substr" e.Spec_ast.e_name;
  Alcotest.(check int) "two params" 2 (List.length e.Spec_ast.e_params);
  let start = List.nth e.Spec_ast.e_params 0 in
  let length = List.nth e.Spec_ast.e_params 1 in
  Alcotest.(check string) "start name" "start" start.Spec_ast.p_name;
  Alcotest.(check string) "start type" "integer"
    (Spec_ast.jtype_to_string start.Spec_ast.p_type);
  Alcotest.(check bool) "start negative boundary" true
    (List.mem "-1" start.Spec_ast.p_values);
  Alcotest.(check bool) "start condition" true
    (List.mem "start < 0" start.Spec_ast.p_conditions);
  (* the Figure 2 bug needs this: undefined must be a boundary of length *)
  Alcotest.(check bool) "length undefined boundary" true
    (List.mem "undefined" length.Spec_ast.p_values);
  Alcotest.(check bool) "length undefined condition" true
    (List.mem "length === undefined" length.Spec_ast.p_conditions);
  Alcotest.(check string) "receiver is string" "string"
    (Spec_ast.jtype_to_string e.Spec_ast.e_receiver)

let range_extraction () =
  let e = lookup_one "toFixed" in
  let p = List.hd e.Spec_ast.e_params in
  (* "If f < 0 or f > 100, throw a RangeError" -> boundary values around
     both limits and the exception kind *)
  List.iter
    (fun v ->
      Alcotest.(check bool) ("boundary " ^ v) true (List.mem v p.Spec_ast.p_values))
    [ "-1"; "0"; "100"; "101" ];
  Alcotest.(check bool) "RangeError recorded" true
    (List.mem "RangeError" e.Spec_ast.e_returns_exn)

let type_inference () =
  let check_type api param_idx expected =
    let e = lookup_one api in
    let p = List.nth e.Spec_ast.e_params param_idx in
    Alcotest.(check string)
      (api ^ " param type")
      expected
      (Spec_ast.jtype_to_string p.Spec_ast.p_type)
  in
  check_type "charAt" 0 "integer";
  check_type "repeat" 0 "integer";
  check_type "indexOf" 0 "string";
  check_type "lastIndexOf" 1 "number";
  check_type "normalize" 0 "string";
  check_type "sort" 0 "function";
  check_type "parseInt" 1 "integer"

let optional_params () =
  let e = lookup_one "reduce" in
  let init = List.nth e.Spec_ast.e_params 1 in
  Alcotest.(check bool) "initialValue optional" true init.Spec_ast.p_optional

let quoted_literal_boundary () =
  let e = lookup_one "eval" in
  let p = List.hd e.Spec_ast.e_params in
  Alcotest.(check bool) "for-loop edge case extracted" true
    (List.exists
       (fun v ->
         String.length v > 10
         &&
         let re = Str_contains.contains v "for(var i = 0; i < 5; i++)" in
         re)
       p.Spec_ast.p_values)

let prose_sections () =
  let db = db () in
  (* prose-only sections contribute rules but no extraction: the lastIndex
     rule of Listing 12 lives there *)
  let compile_entry = lookup_one "compile" in
  Alcotest.(check int) "compile has no extracted rules" 0
    compile_entry.Spec_ast.e_parsed_rules;
  Alcotest.(check bool) "compile counts rules" true
    (compile_entry.Spec_ast.e_rule_count > 0);
  (* coverage near the paper's 82% *)
  let cov = Db.rule_coverage db in
  Alcotest.(check bool)
    (Printf.sprintf "coverage %.1f%% within [75%%, 95%%]" (100.0 *. cov))
    true
    (cov >= 0.75 && cov <= 0.95)

let lookup_by_last_component () =
  Alcotest.(check string) "last component" "substr" (Db.last_component "String.prototype.substr");
  Alcotest.(check string) "bare" "parseInt" (Db.last_component "parseInt");
  Alcotest.(check bool) "lookup split finds entry" true (Db.lookup (db ()) "split" <> []);
  Alcotest.(check bool) "lookup unknown empty" true (Db.lookup (db ()) "zzznope" = [])

let json_shape () =
  let e = lookup_one "substr" in
  let json = Spec_ast.to_json e in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) ("json contains " ^ fragment) true
        (Str_contains.contains json fragment))
    [
      "\"String.prototype.substr\"";
      "\"name\": \"start\"";
      "\"type\": \"integer\"";
      "\"undefined\"";
      "\"conditions\"";
    ]

let usable_entries () =
  let db = db () in
  let usable = Db.usable_entries db in
  Alcotest.(check bool) "at least 40 usable entries" true (List.length usable >= 40);
  List.iter
    (fun (e : Spec_ast.entry) ->
      Alcotest.(check bool)
        (e.Spec_ast.e_name ^ " has parsed rules")
        true
        (e.Spec_ast.e_parsed_rules > 0))
    usable

let suite =
  [
    case "substr entry matches Figure 4" substr_entry;
    case "range boundaries" range_extraction;
    case "type inference" type_inference;
    case "optional parameters" optional_params;
    case "quoted literal boundaries" quoted_literal_boundary;
    case "prose sections and coverage" prose_sections;
    case "lookup" lookup_by_last_component;
    case "json output" json_shape;
    case "usable entries" usable_entries;
  ]
