(* String.prototype conformance on the reference engine. *)

open Helpers

let tests =
  [
    (* substr — the Figure 1 algorithm *)
    ("substr basic", {|"abcdef".substr(2, 3)|}, "cde");
    ("substr undefined length", {|"abcdef".substr(2, undefined)|}, "cdef");
    ("substr omitted length", {|"abcdef".substr(2)|}, "cdef");
    ("substr negative start", {|"abcdef".substr(-2)|}, "ef");
    ("substr negative beyond", {|"abc".substr(-10)|}, "abc");
    ("substr zero length", {|"abc".substr(1, 0)|}, "");
    ("substr negative length", {|"abc".substr(1, -1)|}, "");
    ("substr NaN start", {|"abc".substr(NaN)|}, "abc");
    ("substr infinity length", {|"abc".substr(1, Infinity)|}, "bc");
    ("substr on number via wrapper", {|(12345).toString().substr(1, 2)|}, "23");
    (* substring *)
    ("substring basic", {|"abcdef".substring(1, 4)|}, "bcd");
    ("substring swapped", {|"abcdef".substring(4, 1)|}, "bcd");
    ("substring negative clamps", {|"abcdef".substring(-3, 2)|}, "ab");
    ("substring undefined end", {|"abcdef".substring(3)|}, "def");
    (* slice *)
    ("slice basic", {|"abcdef".slice(1, 3)|}, "bc");
    ("slice negative", {|"abcdef".slice(-3, -1)|}, "de");
    ("slice crossing", {|"abcdef".slice(4, 2)|}, "");
    (* charAt / charCodeAt *)
    ("charAt", {|"abc".charAt(1)|}, "b");
    ("charAt negative", {|"abc".charAt(-1)|}, "");
    ("charAt out of range", {|"abc".charAt(10)|}, "");
    ("charAt coerces", {|"abc".charAt("1")|}, "b");
    ("charCodeAt", {|"A".charCodeAt(0)|}, "65");
    ("charCodeAt oob", {|"A".charCodeAt(5)|}, "NaN");
    (* indexOf family *)
    ("indexOf", {|"banana".indexOf("an")|}, "1");
    ("indexOf from", {|"banana".indexOf("an", 2)|}, "3");
    ("indexOf missing", {|"banana".indexOf("x")|}, "-1");
    ("indexOf empty", {|"abc".indexOf("")|}, "0");
    ("lastIndexOf", {|"banana".lastIndexOf("an")|}, "3");
    ("lastIndexOf NaN position searches all", {|"banana".lastIndexOf("an", NaN)|}, "3");
    ("includes", {|"haystack".includes("ys")|}, "true");
    ("includes position", {|"aaa".includes("a", 5)|}, "false");
    ("startsWith", {|"filename.txt".startsWith("file")|}, "true");
    ("startsWith position", {|"abcdef".startsWith("cd", 2)|}, "true");
    ("endsWith", {|"filename.txt".endsWith(".txt")|}, "true");
    ("endsWith endPosition", {|"abcdef".endsWith("cd", 4)|}, "true");
    (* case / trim / pad / repeat *)
    ("toUpperCase", {|"MiXeD1".toUpperCase()|}, "MIXED1");
    ("toLowerCase", {|"MiXeD1".toLowerCase()|}, "mixed1");
    ("trim", {|"  pad  ".trim()|}, "pad");
    ("trim tabs and newlines", {|"\t x \n".trim()|}, "x");
    ("repeat", {|"ab".repeat(3)|}, "ababab");
    ("repeat zero", {|"ab".repeat(0)|}, "");
    ("padStart", {|"7".padStart(3, "0")|}, "007");
    ("padStart default space", {|"7".padStart(2)|}, " 7");
    ("padStart already long", {|"abcdef".padStart(3, "x")|}, "abcdef");
    ("padEnd", {|"7".padEnd(3, ".")|}, "7..");
    ("padEnd multi-char filler", {|"x".padEnd(6, "ab")|}, "xababa");
    (* concat *)
    ("concat", {|"a".concat("b", 1, null)|}, "ab1null");
    (* split *)
    ("split basic", {|"a,b,c".split(",")|}, "a,b,c");
    ("split limit", {|"a,b,c".split(",", 2).length|}, "2");
    ("split empty separator", {|"abc".split("")|}, "a,b,c");
    ("split no separator", {|"abc".split()|}, "abc");
    ("split missing separator", {|"abc".split("-")|}, "abc");
    ("split regexp", {|"a1b22c".split(/\d+/)|}, "a,b,c");
    ("split anchored no match", {|"anA".split(/^A/)|}, "anA");
    ("split anchored match", {|"Abc".split(/^A/).length|}, "2");
    (* replace *)
    ("replace string", {|"good day".replace("good", "bad")|}, "bad day");
    ("replace only first", {|"aaa".replace("a", "b")|}, "baa");
    ("replace regexp global", {|"x1y2".replace(/\d/g, "#")|}, "x#y#");
    ("replace $& group", {|"abc".replace("b", "[$&]")|}, "a[b]c");
    ("replace $1 capture", {|"john smith".replace(/(\w+) (\w+)/, "$2 $1")|}, "smith john");
    ("replace function", {|"abc".replace("b", function(m) { return m.toUpperCase(); })|}, "aBc");
    ("replace function offset", {|"abc".replace("b", function(m, off) { return "" + off; })|}, "a1c");
    ("replace undefined search", {|"x undefined y".replace(undefined, "Z")|}, "x Z y");
    ("replace empty pattern", {|"abc".replace("", "-")|}, "-abc");
    ("replace dollar-dollar", {|"a".replace("a", "$$")|}, "$");
    (* match / search *)
    ("match", {|"order 66".match(/\d+/)[0]|}, "66");
    ("match global", {|"a1b2c3".match(/\d/g)|}, "1,2,3");
    ("match miss", {|"abc".match(/\d/)|}, "null");
    ("search", {|"abc123".search(/\d/)|}, "3");
    ("search miss", {|"abc".search(/\d/)|}, "-1");
    (* normalize / big / at / fromCharCode *)
    ("normalize identity", {|"abc".normalize()|}, "abc");
    ("normalize NFD", {|"abc".normalize("NFD")|}, "abc");
    ("big", {|"x".big()|}, "<big>x</big>");
    ("codePointAt", {|"A".codePointAt(0)|}, "65");
    ("codePointAt oob", {|"A".codePointAt(5)|}, "undefined");
    ("at positive", {|"abc".at(1)|}, "b");
    ("at negative", {|"abc".at(-1)|}, "c");
    ("fromCharCode", {|String.fromCharCode(72, 105)|}, "Hi");
    (* String conversion *)
    ("String()", {|String(123)|}, "123");
    ("String(null)", {|String(null)|}, "null");
    ("new String is object", {|typeof new String("x")|}, "object");
    ("wrapper length", {|new String("abcd").length|}, "4");
    ("string index access", {|"abc"[1]|}, "b");
    ("string length", {|"hello".length|}, "5");
  ]

let error_tests () =
  check_error "repeat negative" {|print("x".repeat(-1));|} "RangeError";
  check_error "repeat infinity" {|print("x".repeat(Infinity));|} "RangeError";
  check_error "normalize bad form" {|print("a".normalize("XXX"));|} "RangeError";
  check_error "normalize boolean form" {|print("a".normalize(true));|} "RangeError";
  check_error "big on null" {|print(String.prototype.big.call(null));|} "TypeError";
  check_error "charAt on undefined" {|var u; print(String.prototype.charAt.call(u, 0));|} "TypeError"

let suite =
  List.map
    (fun (name, expr, expected) -> case name (fun () -> check_expr name expr expected))
    tests
  @ [ case "error cases" error_tests ]
