(* Utility library: RNG determinism and distribution, table rendering. *)

open Helpers
module Rng = Cutil.Rng

let rng_determinism () =
  let seq seed = List.init 20 (fun _ -> Rng.int (Rng.create seed) 1000) |> List.hd in
  Alcotest.(check int) "same seed same draw" (seq 7) (seq 7);
  let r = Rng.create 7 in
  let a = Rng.int r 1000 and b = Rng.int r 1000 in
  Alcotest.(check bool) "stream advances" true (a <> b || Rng.int r 1000 <> b)

let rng_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 2000 do
    let v = Rng.int r 7 in
    if v < 0 || v >= 7 then Alcotest.failf "int out of bounds: %d" v;
    let f = Rng.float r 2.5 in
    if f < 0.0 || f > 2.5 then Alcotest.failf "float out of bounds: %f" f
  done

let rng_distribution () =
  let r = Rng.create 99 in
  let counts = Array.make 4 0 in
  for _ = 1 to 4000 do
    let v = Rng.int r 4 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < 800 || c > 1200 then
        Alcotest.failf "bucket %d badly skewed: %d/4000" i c)
    counts

let rng_weighted () =
  let r = Rng.create 5 in
  let a = ref 0 and b = ref 0 in
  for _ = 1 to 3000 do
    match Rng.weighted r [ (9, `A); (1, `B) ] with
    | `A -> incr a
    | `B -> incr b
  done;
  Alcotest.(check bool) "9:1 weighting" true (!a > !b * 4)

let rng_helpers () =
  let r = Rng.create 11 in
  let picked = Rng.pick r [ 1; 2; 3 ] in
  Alcotest.(check bool) "pick from list" true (List.mem picked [ 1; 2; 3 ]);
  let sampled = Rng.sample r 2 [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "sample size" 2 (List.length sampled);
  Alcotest.(check int) "sample distinct" 2 (List.length (List.sort_uniq compare sampled));
  let shuffled = Rng.shuffle r [| 1; 2; 3; 4; 5 |] in
  Alcotest.(check (list int)) "shuffle is a permutation" [ 1; 2; 3; 4; 5 ]
    (List.sort compare (Array.to_list shuffled));
  let s1 = Rng.split r and s2 = Rng.split r in
  Alcotest.(check bool) "split streams differ" true
    (Rng.int s1 1000000 <> Rng.int s2 1000000 || Rng.int s1 1000000 <> Rng.int s2 1000000)

let table_render () =
  let t =
    Cutil.Table.create ~aligns:[ Cutil.Table.Left; Cutil.Table.Right ]
      [ "name"; "count" ]
  in
  Cutil.Table.add_row t [ "alpha"; "1" ];
  Cutil.Table.add_row t [ "b"; "22" ];
  let s = Cutil.Table.render t in
  Alcotest.(check bool) "has header" true (Str_contains.contains s "name");
  Alcotest.(check bool) "right aligned" true (Str_contains.contains s "|     1 |");
  Alcotest.(check bool) "left aligned" true (Str_contains.contains s "| alpha |");
  match
    try
      Cutil.Table.add_row t [ "only-one" ];
      None
    with Invalid_argument m -> Some m
  with
  | Some _ -> ()
  | None -> Alcotest.fail "arity mismatch should raise"

let suite =
  [
    case "rng determinism" rng_determinism;
    case "rng bounds" rng_bounds;
    case "rng distribution" rng_distribution;
    case "rng weighted" rng_weighted;
    case "rng helpers" rng_helpers;
    case "table rendering" table_render;
  ]
