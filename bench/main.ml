(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (§5), printing paper-reported values next to measured ones.

   Budgets are scaled from the paper's 200-hour / 250k-test-case campaigns
   down to minutes of laptop time; set COMFORT_BENCH_SCALE to an integer
   multiplier to run longer campaigns (default 1).

   Set COMFORT_JOBS=N to run every campaign in here on N worker domains;
   results are identical at any job count. `campaign` measures throughput
   in all four (execution sharing on/off) x (1 job / N jobs) combinations
   — counting real interpreter executions per case either way — and
   writes BENCH_campaign.json.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe table2     # one experiment
     dune exec bench/main.exe campaign   # executor throughput + JSON
     dune exec bench/main.exe interp     # interpreter core ns/op + JSON
     dune exec bench/main.exe micro      # Bechamel micro-benchmarks

   See EXPERIMENTS.md for the recorded paper-vs-measured comparison. *)

module Table = Cutil.Table

let scale =
  match Sys.getenv_opt "COMFORT_BENCH_SCALE" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 1)
  | None -> 1

let campaign_budget = 6000 * scale
let fig8_budget = 3000 * scale
let fig9_samples = 600 * scale

let header title =
  Printf.printf "\n================ %s ================\n%!" title

(* Campaign results are reused across tables; memoised. *)
let comfort_result : Comfort.Campaign.result Lazy.t =
  lazy
    (let fz = Comfort.Campaign.comfort_fuzzer ~seed:11 () in
     (* the paper's main campaign runs against all 102 testbeds (51
        engine-version configurations x 2 modes) *)
     Comfort.Campaign.run ~testbeds:Engines.Engine.all_testbeds
       ~budget:campaign_budget fz)

(* ---------- Table 1 ---------- *)

let table1 () =
  header "Table 1: JS engines under test";
  let t =
    Table.create [ "JS Engine"; "Version"; "Build"; "Release"; "Supported ES" ]
  in
  List.iter
    (fun (c : Engines.Registry.config) ->
      Table.add_row t
        [
          Engines.Registry.engine_name c.Engines.Registry.cfg_engine;
          c.Engines.Registry.cfg_version;
          c.Engines.Registry.cfg_build;
          c.Engines.Registry.cfg_release;
          Engines.Registry.es_to_string c.Engines.Registry.cfg_es;
        ])
    Engines.Registry.all_configs;
  Table.print t;
  Printf.printf "configurations: %d (paper: 51); testbeds: %d (paper: 102)\n"
    (List.length Engines.Registry.all_configs)
    (List.length Engines.Engine.all_testbeds)

(* ---------- Table 2 ---------- *)

let paper_table2 =
  [
    ("V8", (4, 4, 3, 1)); ("ChakraCore", (7, 7, 5, 1)); ("JSC", (12, 11, 11, 3));
    ("SpiderMonkey", (3, 3, 3, 0)); ("Rhino", (44, 29, 29, 4));
    ("Nashorn", (18, 12, 2, 1)); ("Hermes", (16, 16, 15, 4));
    ("JerryScript", (35, 31, 31, 3)); ("QuickJS", (17, 14, 14, 4));
    ("Graaljs", (2, 2, 2, 0));
  ]

let table2 () =
  header "Table 2: bug statistics per engine";
  let res = Lazy.force comfort_result in
  let rows = Comfort.Report.table2 res in
  let t =
    Table.create
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Left ]
      [ "JS Engine"; "#Found"; "#Verified"; "#Fixed"; "#Test262"; "paper (F/V/Fx/T262)" ]
  in
  let totals = ref (0, 0, 0, 0) in
  List.iter
    (fun (name, s, v, f, a) ->
      let ps, pv, pf, pa =
        Option.value (List.assoc_opt name paper_table2) ~default:(0, 0, 0, 0)
      in
      let a', b', c', d' = !totals in
      totals := (a' + s, b' + v, c' + f, d' + a);
      Table.add_row t
        [
          name; string_of_int s; string_of_int v; string_of_int f; string_of_int a;
          Printf.sprintf "%d/%d/%d/%d" ps pv pf pa;
        ])
    rows;
  let a, b, c, d = !totals in
  Table.add_row t
    [ "Total"; string_of_int a; string_of_int b; string_of_int c; string_of_int d;
      "158/129/115/21" ];
  Table.print t;
  Printf.printf
    "campaign: %d test cases; %d ground-truth bugs seeded across the registry\n"
    res.Comfort.Campaign.cp_cases_run
    (Comfort.Report.ground_truth_total ())

(* ---------- Table 3 ---------- *)

let table3 () =
  header "Table 3: bugs per engine version (earliest-version attribution)";
  let res = Lazy.force comfort_result in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "JS Engine"; "Version"; "#Found"; "#Verified"; "#Fixed"; "#New" ]
  in
  List.iter
    (fun (e, v, s, ver, fix, nw) ->
      Table.add_row t
        [ e; v; string_of_int s; string_of_int ver; string_of_int fix; string_of_int nw ])
    (Comfort.Report.table3 res);
  Table.print t;
  print_endline
    "(paper Table 3: 33 versions with bugs; totals 158 found / 129 verified / 115 fixed / 109 new)"

(* ---------- Table 4 ---------- *)

let table4 () =
  header "Table 4: bugs per discovery mechanism";
  let res = Lazy.force comfort_result in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Left ]
      [ "Category"; "#Found"; "#Confirmed"; "#Fixed"; "#Test262"; "paper" ]
  in
  List.iter
    (fun (cat, s, v, f, a) ->
      let paper =
        if cat = "Test program generation" then "97/78/67/5" else "61/51/48/16"
      in
      Table.add_row t
        [ cat; string_of_int s; string_of_int v; string_of_int f; string_of_int a; paper ])
    (Comfort.Report.table4 res);
  Table.print t

(* ---------- Table 5 ---------- *)

let paper_table5 =
  [
    ("Object", "23/21/18"); ("String", "22/20/19"); ("Array", "17/12/9");
    ("TypedArray", "8/5/5"); ("Number", "5/4/4"); ("eval function", "4/4/4");
    ("DataView", "4/2/2"); ("JSON", "3/3/2"); ("RegExp", "2/2/1");
    ("Date", "2/1/1");
  ]

let table5 () =
  header "Table 5: top buggy object types";
  let res = Lazy.force comfort_result in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Left ]
      [ "API Type"; "#Found"; "#Confirmed"; "#Fixed"; "paper (S/C/F)" ]
  in
  List.iter
    (fun (ot, s, v, f) ->
      Table.add_row t
        [
          ot; string_of_int s; string_of_int v; string_of_int f;
          Option.value (List.assoc_opt ot paper_table5) ~default:"-";
        ])
    (Comfort.Report.table5 res);
  Table.print t

(* ---------- Figure 7 ---------- *)

let fig7 () =
  header "Figure 7: bugs per compiler component";
  let res = Lazy.force comfort_result in
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Left ]
      [ "Component"; "#Found"; "#Fixed"; "paper trend" ]
  in
  let trend = function
    | "CodeGen" -> "largest group"
    | "Implementation" -> "45 confirmed / 41 fixed"
    | "Strict mode" -> "reported separately"
    | _ -> "smaller group"
  in
  List.iter
    (fun (comp, s, f) ->
      Table.add_row t [ comp; string_of_int s; string_of_int f; trend comp ])
    (Comfort.Report.fig7 res);
  Table.print t

(* ---------- Figure 8 ---------- *)

let fig8 () =
  header "Figure 8: unique bugs over equal testing budget, per fuzzer";
  let fuzzers =
    Comfort.Campaign.comfort_fuzzer ~seed:11 () :: Baselines.Fuzzers.all ()
  in
  let t =
    Table.create
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      [ "Fuzzer"; "25%"; "50%"; "75%"; "100% of budget" ]
  in
  let all_results =
    List.map
      (fun fz ->
        let res = Comfort.Campaign.run ~budget:fig8_budget fz in
        let at frac =
          let target = fig8_budget * frac / 100 in
          List.fold_left
            (fun acc (n, c) -> if n <= target then c else acc)
            0 res.Comfort.Campaign.cp_timeline
        in
        Table.add_row t
          [
            res.Comfort.Campaign.cp_fuzzer;
            string_of_int (at 25); string_of_int (at 50); string_of_int (at 75);
            string_of_int (at 100);
          ];
        res)
      fuzzers
  in
  Table.print t;
  (* exclusivity: bugs Comfort alone found, and bugs baselines found that
     Comfort missed (§5.3.1-2) *)
  let key d = (d.Comfort.Campaign.disc_engine, d.Comfort.Campaign.disc_quirk) in
  (match all_results with
  | comfort :: baselines ->
      let comfort_keys = List.map key comfort.Comfort.Campaign.cp_discoveries in
      let baseline_keys =
        List.concat_map
          (fun r -> List.map key r.Comfort.Campaign.cp_discoveries)
          baselines
      in
      let only_comfort =
        List.filter (fun k -> not (List.mem k baseline_keys)) comfort_keys
      in
      let only_baselines =
        List.sort_uniq compare
          (List.filter (fun k -> not (List.mem k comfort_keys)) baseline_keys)
      in
      Printf.printf
        "bugs only Comfort found: %d (paper: 31); bugs only baselines found: %d (paper: 29)\n"
        (List.length only_comfort)
        (List.length only_baselines);
      List.iter
        (fun (e, q) ->
          Printf.printf "  baseline-only: %s %s\n"
            (Engines.Registry.engine_name e)
            (Jsinterp.Quirk.to_string q))
        only_baselines
  | [] -> ());
  print_endline
    "(paper: Comfort found 60 unique bugs in 200h, more than any baseline; DeepSmith found 6)"

(* ---------- Figure 9 ---------- *)

let fig9 () =
  header "Figure 9: test-case quality per fuzzer";
  let fuzzers =
    Comfort.Campaign.comfort_fuzzer ~seed:31 () :: Baselines.Fuzzers.all ~seed:30 ()
  in
  let t =
    Table.create
      ~aligns:
        [ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Left ]
      [ "Fuzzer"; "passing"; "stmt cov"; "branch cov"; "func cov"; "paper passing" ]
  in
  List.iter
    (fun fz ->
      let q = Comfort.Metrics.measure fz ~n:fig9_samples in
      let paper =
        match q.Comfort.Metrics.q_fuzzer with "Comfort" -> "80%" | _ -> "<60%"
      in
      Table.add_row t
        [
          q.Comfort.Metrics.q_fuzzer;
          Printf.sprintf "%.0f%%" (100.0 *. q.Comfort.Metrics.q_validity);
          Printf.sprintf "%.0f%%" (100.0 *. q.Comfort.Metrics.q_stmt_cov);
          Printf.sprintf "%.0f%%" (100.0 *. q.Comfort.Metrics.q_branch_cov);
          Printf.sprintf "%.0f%%" (100.0 *. q.Comfort.Metrics.q_func_cov);
          paper;
        ])
    fuzzers;
  Table.print t;
  let exn_rate =
    Comfort.Metrics.runtime_exception_rate
      (Comfort.Campaign.comfort_fuzzer ~seed:33 ())
      ~n:(fig9_samples / 2)
  in
  Printf.printf
    "runtime-exception rate of valid Comfort cases: %.0f%% (paper: ~18%%)\n"
    (100.0 *. exn_rate)

(* ---------- §5.2 listings ---------- *)

let listings () =
  header "Section 5.2 bug-example listings (reproduced end to end)";
  let check name ~engine ~version ~src ~expect_deviation =
    let cfg = Option.get (Engines.Registry.find_config ~engine ~version) in
    let tb = { Engines.Engine.tb_config = cfg; tb_mode = Engines.Engine.Normal } in
    let target = Engines.Engine.run ~fuel:2_000_000 tb src in
    let reference = Engines.Engine.run_reference ~fuel:2_000_000 src in
    let tsig = Comfort.Difftest.signature_of_result target in
    let rsig = Comfort.Difftest.signature_of_result reference in
    let deviates = tsig <> rsig in
    Printf.printf "%-46s %-20s %s\n" name
      (Engines.Registry.engine_name engine ^ " " ^ version)
      (if deviates = expect_deviation then
         Printf.sprintf "OK (%s | expected %s)"
           (Comfort.Difftest.signature_to_string tsig)
           (Comfort.Difftest.signature_to_string rsig)
       else "MISMATCH")
  in
  check "Fig. 2: substr(start, undefined)" ~engine:Engines.Registry.Rhino
    ~version:"1.7.12" ~expect_deviation:true
    ~src:
      {|function foo(str, start, len) { var ret = str.substr(start, len); return ret; }
var s = "Name: Albert";
var pre = "Name: ";
var len = undefined;
var name = foo(s, pre.length, len);
print(name);|};
  check "Listing 1: defineProperty on array length" ~engine:Engines.Registry.V8
    ~version:"8.5-d891c59" ~expect_deviation:true
    ~src:
      {|var foo = function() {
  var arrobj = [0, 1];
  Object.defineProperty(arrobj, "length", { value: 1, configurable: true });
};
try { foo(); print("no error"); } catch (e) { print(e.name); }|};
  check "Listing 2: reverse array fill (scaled 1/10)"
    ~engine:Engines.Registry.Hermes ~version:"0.1.1" ~expect_deviation:true
    ~src:
      {|var foo = function(size) {
  var array = new Array(size);
  while (size--) { array[size] = 0; }
};
var parameter = 90486;
foo(parameter);
print("done");|};
  check "Listing 3: new Uint32Array(3.14)" ~engine:Engines.Registry.SpiderMonkey
    ~version:"52.9" ~expect_deviation:true
    ~src:
      {|var foo = function(length) { var array = new Uint32Array(length); print(array.length); };
var parameter = 3.14;
foo(parameter);|};
  check "Listing 4: toFixed(-2)" ~engine:Engines.Registry.Rhino ~version:"1.7.12"
    ~expect_deviation:true
    ~src:
      {|var foo = function(num) { var p = num.toFixed(-2); print(p); };
var parameter = -634619;
foo(parameter);|};
  check "Listing 5: typed array set from string" ~engine:Engines.Registry.JSC
    ~version:"246135" ~expect_deviation:true
    ~src:
      {|var foo = function() { var e = '123'; A = new Uint8Array(5); A.set(e); print(A); };
foo();|};
  check "Listing 6: obj[true] = 10 appends" ~engine:Engines.Registry.QuickJS
    ~version:"2020-04-12" ~expect_deviation:true
    ~src:
      {|var foo = function() {
  var property = true;
  var obj = [1,2,5];
  obj[property] = 10;
  print(obj);
  print(obj[property]);
};
foo();|};
  check "Listing 7: eval for-loop without body"
    ~engine:Engines.Registry.ChakraCore ~version:"1.11.19" ~expect_deviation:true
    ~src:
      {|try { eval("for(var i = 0; i < 5; i++)"); print("compiled"); } catch (e) { print(e.name); }|};
  check "Listing 8: \"anA\".split(/^A/)" ~engine:Engines.Registry.JerryScript
    ~version:"2.3.0" ~expect_deviation:true
    ~src:
      {|var foo = function() { var a = "anA".split(/^A/); print(a); };
foo();|};
  check "Listing 9: normalize on empty string crash"
    ~engine:Engines.Registry.QuickJS ~version:"2020-04-12" ~expect_deviation:true
    ~src:
      {|var foo = function(str){ str.normalize(true); };
var parameter = "";
foo(parameter);|};
  check "Listing 10: String.prototype.big.call(null)"
    ~engine:Engines.Registry.Rhino ~version:"1.7.12" ~expect_deviation:true
    ~src:{|var v1 = String.prototype.big.call(null);
print(v1);|};
  check "Listing 11: Object.seal(new String(n))" ~engine:Engines.Registry.Rhino
    ~version:"1.7.12" ~expect_deviation:true
    ~src:
      {|function main() { var v2 = new String(2477); var v4 = Object.seal(v2); }
main();
print("ok");|};
  check "Listing 12: non-writable lastIndex + compile"
    ~engine:Engines.Registry.Rhino ~version:"1.7.12" ~expect_deviation:true
    ~src:
      {|var regexp5 = /a/g;
Object.defineProperty(regexp5, "lastIndex", { writable: false });
try { regexp5.compile("b"); print("no error"); } catch (e) { print(e.name); }|};
  check "Listing 13: named funcexpr binding" ~engine:Engines.Registry.Hermes
    ~version:"0.6.0" ~expect_deviation:true
    ~src:
      {|(function v1() {
  v1 = 20;
  print(v1 !== 20);
  print(typeof v1);
}());|}

(* ---------- spec extraction ---------- *)

let spec () =
  header "Section 3.1: specification rule extraction";
  let db = Lazy.force Specdb.Db.standard in
  print_endline (Specdb.Db.stats db);
  print_endline "(paper: ~82% of API and object specification rules extracted)";
  match Specdb.Db.lookup db "substr" with
  | e :: _ ->
      print_endline "Figure 4(b) JSON for String.prototype.substr:";
      print_endline (Specdb.Spec_ast.to_json e)
  | [] -> print_endline "substr entry missing!"

(* ---------- ablations ---------- *)

let ablate () =
  header "Ablations (DESIGN.md, section 4)";
  (* 1. top-k sweep *)
  Printf.printf "[1] top-k sampling vs syntactic validity and diversity (n=200):\n";
  List.iter
    (fun k ->
      let g = Comfort.Generator.create ~seed:41 ~top_k:k () in
      let samples = List.init 200 (fun _ -> Comfort.Generator.sample_program g) in
      let valid =
        List.length (List.filter Jsparse.Parser.is_valid samples)
      in
      let distinct = List.length (List.sort_uniq compare samples) in
      Printf.printf "  k=%-3d validity=%3.0f%%  distinct=%3.0f%%\n" k
        (100.0 *. Float.of_int valid /. 200.0)
        (100.0 *. Float.of_int distinct /. 200.0))
    [ 1; 5; 10; 50 ];
  (* 2. keeping invalid programs *)
  Printf.printf "[2] keep-invalid ratio vs parser-component bugs (budget=%d):\n"
    (fig8_budget / 2);
  List.iter
    (fun keep ->
      let fz =
        let gen = Comfort.Generator.create ~seed:43 ~keep_invalid:keep () in
        let dg = Comfort.Datagen.create ~seed:44 () in
        let queue = Queue.create () in
        {
          Comfort.Campaign.fz_name =
            Printf.sprintf "Comfort-keep%.0f%%" (100.0 *. keep);
          fz_raw = None;
          fz_batch =
            (fun n ->
              while Queue.length queue < n do
                match Comfort.Generator.generate gen ~n:1 with
                | [] -> ()
                | tc :: _ ->
                    Queue.add tc queue;
                    List.iter
                      (fun m -> Queue.add m queue)
                      (Comfort.Datagen.mutate dg tc)
              done;
              List.init n (fun _ -> Queue.pop queue));
        }
      in
      let res = Comfort.Campaign.run ~budget:(fig8_budget / 2) fz in
      let parser_bugs =
        List.length
          (List.filter
             (fun d ->
               (Engines.Catalogue.find d.Comfort.Campaign.disc_quirk)
                 .Engines.Catalogue.component = Engines.Catalogue.Parser)
             res.Comfort.Campaign.cp_discoveries)
      in
      Printf.printf "  keep=%.0f%%: %d unique bugs, %d in the parser component\n"
        (100.0 *. keep)
        (List.length res.Comfort.Campaign.cp_discoveries)
        parser_bugs)
    [ 0.0; 0.2 ];
  (* 3. ECMA-262 guidance on/off *)
  Printf.printf "[3] spec-guided data generation on/off (budget=%d):\n"
    (fig8_budget / 2);
  List.iter
    (fun with_datagen ->
      let fz = Comfort.Campaign.comfort_fuzzer ~seed:45 ~with_datagen () in
      let res = Comfort.Campaign.run ~budget:(fig8_budget / 2) fz in
      Printf.printf "  datagen=%b: %d unique bugs\n" with_datagen
        (List.length res.Comfort.Campaign.cp_discoveries))
    [ true; false ];
  (* 4. LM context length *)
  Printf.printf "[4] LM context order vs validity (n=200):\n";
  List.iter
    (fun order ->
      let model = Lm.Model.train_bpe ~order Lm.Js_corpus.programs in
      let g = Comfort.Generator.create ~seed:46 ~model () in
      Printf.printf "  order=%d validity=%.0f%%\n" order
        (100.0 *. Comfort.Generator.validity_rate g ~n:200))
    [ 2; 3; 4; 6; 8 ];
  (* 5. dedup filter *)
  let res = Lazy.force comfort_result in
  Printf.printf
    "[5] Fig. 6 dedup tree: %d repeated miscompilations filtered across the campaign\n"
    res.Comfort.Campaign.cp_filtered_repeats;
  (* 6. feedback mutation of bug-exposing cases (§5.5 future work) *)
  Printf.printf "[6] feedback mutation of bug-exposing cases (equal budget %d):\n"
    (fig8_budget * 2 / 3);
  let fb = Comfort.Feedback.create (Comfort.Campaign.comfort_fuzzer ~seed:11 ()) in
  let fb_res =
    Comfort.Feedback.run_rounds ~rounds:4
      ~budget_per_round:(fig8_budget / 6) fb
  in
  let plain =
    Comfort.Campaign.run ~budget:(fig8_budget * 2 / 3)
      (Comfort.Campaign.comfort_fuzzer ~seed:11 ())
  in
  Printf.printf "  plain Comfort:    %d unique bugs\n"
    (List.length plain.Comfort.Campaign.cp_discoveries);
  Printf.printf "  Comfort+feedback: %d unique bugs (bank of %d exposing cases)\n"
    (List.length fb_res.Comfort.Campaign.cp_discoveries)
    (Comfort.Feedback.bank_size fb)

(* ---------- campaign throughput (parallel executor) ---------- *)

(* End-to-end campaign wall-clock against the full 102-testbed setup,
   across the (execution sharing on/off) x (slot compilation on/off) x
   (static reach analysis on/off) x (quirk specialisation on/off) x
   (1 job / N jobs) grid. Verifies on the way that every combination
   found the same discoveries in the same order (the executor's ordering
   guarantee, the sharing soundness argument of DESIGN.md §8, the
   compilation parity argument of §9, the reach invariance argument of
   §11, and the specialisation invisibility argument of §12), counts
   real interpreter executions via [Run.run_count] to report
   executions-per-case — the reach and specialize rows must execute
   exactly as often as the share+resolve row, since neither changes a
   sharing decision — records the whole-pipeline profile per row via
   [Run.Stage]/[Metrics.profile]: the disjoint pipeline stages
   (generate / screen / sweep / vote / attr / reduce / fold) with wall
   ns and allocated bytes each, the nested interpreter substages
   (parse / compile / realm-install / execute), the total driver-domain
   allocation, and the unaccounted residual — then emits the numbers as
   machine-readable BENCH_campaign.json for CI and EXPERIMENTS.md.
   Gates: every jobs=1 row must account for >= 90% of its wall clock,
   and the production row must stay within the allocation budget.

   On a single-CPU container the jobs>1 row is pure scheduling overhead,
   not a measurement of the executor, so it is skipped (and flagged in
   the JSON) when [Domain.recommended_domain_count] reports one core.
   Every row is measured as the best of three interleaved passes — see
   the comment at the measurement loop. *)
let campaign_bench () =
  header
    "Campaign throughput: sharing x compilation x reach x specialisation";
  let budget = 400 * scale in
  let testbeds = Engines.Engine.all_testbeds in
  let cores = Domain.recommended_domain_count () in
  let njobs =
    let env = Comfort.Executor.default_jobs () in
    if env > 1 then env else min 4 cores
  in
  let multi = cores > 1 && njobs > 1 in
  (* process-isolated workers row: measured once, up front — it must
     run before any jobs>1 row spawns a domain, which permanently
     disables fork — and outside the best-of-3 grid. The jobs=1
     profiler and allocation gates do not apply to it: the sweep
     executes in forked children, so driver-side stage probes and
     Gc.allocated_bytes see only the coordinator, and wall clock on a
     shared container is dominated by fork/IPC noise anyway. Its gates
     (identity, folded execution count) are checked against the grid's
     rows below. Skipped (and flagged in the JSON) where fork is
     unavailable. *)
  let wn = 2 in
  let workers_row =
    if not (Comfort.Coordinator.available ()) then None
    else begin
      let fz = Comfort.Campaign.comfort_fuzzer ~seed:11 () in
      let e0 = Jsinterp.Run.run_count () in
      let k0 = Comfort.Coordinator.stat_kills () in
      let r0 = Comfort.Coordinator.stat_respawns () in
      let t0 = Unix.gettimeofday () in
      let res =
        Comfort.Campaign.run ~testbeds ~budget ~jobs:1 ~share:true
          ~resolve:true ~reach:true ~specialize:true ~workers:wn fz
      in
      let dt = Unix.gettimeofday () -. t0 in
      let execs = Jsinterp.Run.run_count () - e0 in
      Some
        ( res,
          dt,
          execs,
          Comfort.Coordinator.stat_kills () - k0,
          Comfort.Coordinator.stat_respawns () - r0 )
    end
  in
  Jsinterp.Run.Stage.enabled := true;
  let measure ~jobs ~share ~resolve ~reach ~specialize =
    let fz = Comfort.Campaign.comfort_fuzzer ~seed:11 () in
    let e0 = Jsinterp.Run.run_count () in
    Jsinterp.Run.Stage.reset ();
    let a0 = Gc.allocated_bytes () in
    let t0 = Unix.gettimeofday () in
    let res =
      Comfort.Campaign.run ~testbeds ~budget ~jobs ~share ~resolve ~reach
        ~specialize fz
    in
    let dt = Unix.gettimeofday () -. t0 in
    (* driver-domain allocation; at jobs=1 the whole campaign runs here,
       so this is the campaign's total allocation. (jobs>1 workers
       allocate on their own domains — their stage probes still land in
       the per-stage byte columns below.) *)
    let alloc = Gc.allocated_bytes () -. a0 in
    let profile =
      Comfort.Metrics.profile ~wall_ns:(int_of_float (dt *. 1e9))
    in
    let execs = Jsinterp.Run.run_count () - e0 in
    let per_case =
      Float.of_int execs /. Float.of_int res.Comfort.Campaign.cp_cases_run
    in
    Printf.printf
      "  share=%-5b resolve=%-5b reach=%-5b specialize=%-5b jobs=%d: %6.2fs wall, %6.1f cases/s, %5.1f executions/case, %d unique bugs, %4.1f%% unaccounted\n%!"
      share resolve reach specialize jobs dt
      (Float.of_int res.Comfort.Campaign.cp_cases_run /. dt)
      per_case
      (List.length res.Comfort.Campaign.cp_discoveries)
      profile.Comfort.Metrics.pr_unaccounted_pct;
    (res, dt, execs, per_case, (profile, alloc))
  in
  Printf.printf "budget=%d cases, %d testbeds, %d cores\n%!" budget
    (List.length testbeds) cores;
  if not multi then
    Printf.printf
      "  (single-CPU container: the parallel jobs>1 row is skipped — it \
       would measure scheduling overhead, not the executor)\n%!";
  let combos =
    [
      (false, false, false, false, 1);
      (true, false, false, false, 1);
      (false, true, false, false, 1);
      (true, true, false, false, 1);
      (true, true, true, false, 1);
      (true, true, true, true, 1);
    ]
    @ (if multi then [ (true, true, true, true, njobs) ] else [])
  in
  (* Each row is the best of three interleaved passes. A campaign row is
     deterministic (fixed fuzzer seed), so wall-clock spread between
     passes is scheduler and cache noise — on a shared single-CPU
     container it reaches ±30%, enough to flip the reach-vs-share+resolve
     comparison on a single measurement. Interleaving the passes (round
     robin over the combos, not three back-to-back runs of one combo)
     cancels slow drift; the minimum is the run the machine interfered
     with least. *)
  let reps = 3 in
  let best = Hashtbl.create 8 in
  for rep = 1 to reps do
    if reps > 1 then Printf.printf "  -- pass %d/%d --\n%!" rep reps;
    List.iter
      (fun ((share, resolve, reach, specialize, jobs) as c) ->
        let ((_, dt, _, _, _) as m) =
          measure ~jobs ~share ~resolve ~reach ~specialize
        in
        match Hashtbl.find_opt best c with
        | Some (_, bdt, _, _, _) when bdt <= dt -> ()
        | _ -> Hashtbl.replace best c m)
      combos
  done;
  let runs = List.map (fun c -> (c, Hashtbl.find best c)) combos in
  Jsinterp.Run.Stage.enabled := false;
  let key d = (d.Comfort.Campaign.disc_engine, d.Comfort.Campaign.disc_quirk) in
  let base, _, _, _, _ = List.assoc (false, false, false, false, 1) runs in
  let same =
    List.for_all
      (fun (_, (r, _, _, _, _)) ->
        List.map key r.Comfort.Campaign.cp_discoveries
        = List.map key base.Comfort.Campaign.cp_discoveries
        && r.Comfort.Campaign.cp_timeline = base.Comfort.Campaign.cp_timeline
        && r.Comfort.Campaign.cp_filtered_repeats
           = base.Comfort.Campaign.cp_filtered_repeats)
      runs
  in
  let _, direct_dt, direct_execs, direct_pc, _ =
    List.assoc (false, false, false, false, 1) runs
  in
  let _, shared_dt, shared_execs, shared_pc, _ =
    List.assoc (true, false, false, false, 1) runs
  in
  let _, resolved_dt, _, _, _ = List.assoc (false, true, false, false, 1) runs in
  let _, both_dt, _, _, _ = List.assoc (true, true, false, false, 1) runs in
  let reach_res, reach_dt, reach_execs, reach_pc, (reach_prof, _) =
    List.assoc (true, true, true, false, 1) runs
  in
  let spec_res, spec_dt, spec_execs, spec_pc, (_spec_prof, spec_alloc) =
    List.assoc (true, true, true, true, 1) runs
  in
  let _, _, _, _, (both_prof, _) =
    List.assoc (true, true, false, false, 1) runs
  in
  let reduction = Float.of_int direct_execs /. Float.of_int shared_execs in
  Printf.printf
    "execution sharing: %.1f -> %.1f executions/case (%.1fx fewer), %.2fx faster at 1 job\n"
    direct_pc shared_pc reduction (direct_dt /. shared_dt);
  Printf.printf
    "slot compilation: %.2fx over tree-walking direct, %.2fx on top of sharing (share+resolve vs share-only)\n"
    (direct_dt /. resolved_dt)
    (shared_dt /. both_dt);
  (* the reach row's marginal cost over plain share+resolve, attributed
     by the profiler: the sweep stage carries the cell bookkeeping and
     the reach-set forcing, the compile substage carries the
     consultation-folding pass. Since PR 9 packed the class-sharing
     check into two machine-word compares, the full-scan path the cell
     partition short-circuits is nearly free, so reach's residual is
     expected to sit at or slightly above zero in isolation — it pays
     off through the specialisation layer built on its cells (the
     [specialize] row below), not on this row. *)
  let stage_of rows name =
    match
      List.find_opt (fun r -> r.Comfort.Metrics.st_name = name) rows
    with
    | Some r -> r.Comfort.Metrics.st_ns
    | None -> 0
  in
  let reach_overhead_pct = 100.0 *. (reach_dt -. both_dt) /. both_dt in
  Printf.printf
    "static reach: %.1f executions/case (same executions as share+resolve: %b), %+.1f%% wall vs share+resolve (sweep %+.1fms, compile substage %+.1fms), %d reach-seeded shares\n"
    reach_pc
    (reach_execs = shared_execs)
    reach_overhead_pct
    (Float.of_int
       (stage_of reach_prof.Comfort.Metrics.pr_stages "sweep"
       - stage_of both_prof.Comfort.Metrics.pr_stages "sweep")
    /. 1e6)
    (Float.of_int
       (stage_of reach_prof.Comfort.Metrics.pr_substages "compile"
       - stage_of both_prof.Comfort.Metrics.pr_substages "compile")
    /. 1e6)
    reach_res.Comfort.Campaign.cp_reach_seeded;
  Printf.printf
    "specialisation: %.1f executions/case (same executions as share+resolve: %b), %.2fx vs reach row; %d specialised compilations, %d COW clones, %d IC hits\n"
    spec_pc
    (spec_execs = shared_execs)
    (reach_dt /. spec_dt)
    spec_res.Comfort.Campaign.cp_specialized
    spec_res.Comfort.Campaign.cp_cow_clones
    spec_res.Comfort.Campaign.cp_ic_hits;
  (if multi then
     let _, par_dt, _, _, _ = List.assoc (true, true, true, true, njobs) runs in
     Printf.printf
       "full fast path + %d jobs vs direct sequential: %.2fx; all results identical: %b\n"
       njobs (direct_dt /. par_dt) same
   else
     Printf.printf
       "full fast path vs direct sequential: %.2fx; all results identical: %b\n"
       (direct_dt /. spec_dt) same);
  (* the specialize row must not change a single sharing decision: same
     executions as the share+resolve baseline or the bench fails loudly *)
  if spec_execs <> shared_execs then begin
    Printf.eprintf
      "FAIL: specialisation changed the execution count (%d vs %d)\n"
      spec_execs shared_execs;
    exit 1
  end;
  if not same then begin
    Printf.eprintf "FAIL: the combinations disagree on the campaign report\n";
    exit 1
  end;
  (* profiler-accounting gate (jobs=1 rows only: a parallel row's stage
     sums measure CPU time, so "unaccounted wall" is not meaningful
     there): every sequential row must pin at least 90% of its wall
     clock to a named pipeline stage, or the profiler has a hole *)
  let max_unaccounted =
    List.fold_left
      (fun acc ((_, _, _, _, jobs), (_, _, _, _, (p, _))) ->
        if jobs = 1 then Float.max acc p.Comfort.Metrics.pr_unaccounted_pct
        else acc)
      0.0 runs
  in
  Printf.printf "profiler: max unaccounted wall across jobs=1 rows %.1f%%\n"
    max_unaccounted;
  if max_unaccounted >= 10.0 then begin
    Printf.eprintf
      "FAIL: profiler leaves %.1f%% of a row's wall clock unaccounted \
       (>= 10%%)\n"
      max_unaccounted;
    exit 1
  end;
  (* allocation-regression gate on the production row (everything on,
     jobs=1): scratch recycling and the quirk-word migration hold the
     steady state near 0.5 MB/case; the budget leaves headroom for
     machine variance but catches a reverted optimisation, which costs
     several MB/case *)
  let alloc_budget_per_case = 2_000_000.0 in
  let spec_alloc_per_case =
    spec_alloc /. Float.of_int spec_res.Comfort.Campaign.cp_cases_run
  in
  Printf.printf "allocation: %.0f bytes/case on the production row (budget %.0f)\n"
    spec_alloc_per_case alloc_budget_per_case;
  if spec_alloc_per_case > alloc_budget_per_case then begin
    Printf.eprintf
      "FAIL: production row allocates %.0f bytes/case (budget %.0f)\n"
      spec_alloc_per_case alloc_budget_per_case;
    exit 1
  end;
  (* gates on the process-isolated row measured up front (before the
     grid could spawn domains): identity with the in-process report and
     an exact folded execution count — the determinism contract of
     DESIGN.md §14 *)
  let workers_same =
    match workers_row with
    | None -> true
    | Some (r, _, _, _, _) ->
        List.map key r.Comfort.Campaign.cp_discoveries
        = List.map key base.Comfort.Campaign.cp_discoveries
        && r.Comfort.Campaign.cp_timeline = base.Comfort.Campaign.cp_timeline
        && r.Comfort.Campaign.cp_filtered_repeats
           = base.Comfort.Campaign.cp_filtered_repeats
  in
  let workers_execs_ok =
    match workers_row with
    | None -> true
    | Some (_, _, execs, _, _) -> execs = shared_execs
  in
  (match workers_row with
  | None ->
      Printf.printf
        "process isolation: fork unavailable on this host; workers row \
         skipped\n"
  | Some (_, dt, _, kills, respawns) ->
      Printf.printf
        "process isolation: %d workers, %.2fs wall (%.2fx vs in-process \
         production row), identical results: %b, folded executions match \
         share row: %b, %d respawns (%d hard-kills)\n"
        wn dt (spec_dt /. dt) workers_same workers_execs_ok respawns kills);
  if not workers_same then begin
    Printf.eprintf
      "FAIL: the process-isolated row disagrees with the in-process report\n";
    exit 1
  end;
  if not workers_execs_ok then begin
    Printf.eprintf
      "FAIL: the process-isolated row's folded execution count diverged\n";
    exit 1
  end;
  let json_stage_obj rows get =
    String.concat ", "
      (List.map
         (fun r -> Printf.sprintf "%S: %d" r.Comfort.Metrics.st_name (get r))
         rows)
  in
  let json_run
      ( (share, resolve, reach, specialize, jobs),
        (r, dt, execs, per_case, (p, alloc)) ) =
    Printf.sprintf
      {|    { "share": %b, "resolve": %b, "reach": %b, "specialize": %b, "jobs": %d, "wall_s": %.3f, "cases_per_s": %.1f, "executions": %d, "executions_per_case": %.1f, "reach_seeded": %d, "specialized": %d, "cow_clones": %d, "ic_hits": %d, "discoveries": %d,
      "alloc_bytes": %.0f, "alloc_bytes_per_case": %.0f, "accounted_ns": %d, "unaccounted_pct": %.1f,
      "pipeline_ns": { %s },
      "pipeline_bytes": { %s },
      "stages_ns": { %s },
      "stages_bytes": { %s } }|}
      share resolve reach specialize jobs dt
      (Float.of_int r.Comfort.Campaign.cp_cases_run /. dt)
      execs per_case r.Comfort.Campaign.cp_reach_seeded
      r.Comfort.Campaign.cp_specialized r.Comfort.Campaign.cp_cow_clones
      r.Comfort.Campaign.cp_ic_hits
      (List.length r.Comfort.Campaign.cp_discoveries)
      alloc
      (alloc /. Float.of_int r.Comfort.Campaign.cp_cases_run)
      p.Comfort.Metrics.pr_accounted_ns p.Comfort.Metrics.pr_unaccounted_pct
      (json_stage_obj p.Comfort.Metrics.pr_stages (fun r ->
           r.Comfort.Metrics.st_ns))
      (json_stage_obj p.Comfort.Metrics.pr_stages (fun r ->
           r.Comfort.Metrics.st_bytes))
      (json_stage_obj p.Comfort.Metrics.pr_substages (fun r ->
           r.Comfort.Metrics.st_ns))
      (json_stage_obj p.Comfort.Metrics.pr_substages (fun r ->
           r.Comfort.Metrics.st_bytes))
  in
  let json =
    Printf.sprintf
      {|{
  "budget": %d,
  "testbeds": %d,
  "cores": %d,
  "parallel_row_skipped": %b,
  "runs": [
%s
  ],
  "sharing_execution_reduction": %.2f,
  "sharing_speedup_1job": %.2f,
  "resolve_speedup_direct": %.2f,
  "resolve_speedup_shared": %.2f,
  "speedup_share_resolve_vs_direct": %.2f,
  "reach_executions_match_share": %b,
  "reach_overhead_pct": %.1f,
  "reach_plus_specialize_beats_share_resolve": %b,
  "reach_seeded": %d,
  "specialize_executions_match_share": %b,
  "specialize_speedup_vs_reach": %.2f,
  "specialized": %d,
  "cow_clones": %d,
  "ic_hits": %d,
  "max_unaccounted_pct": %.1f,
  "alloc_budget_bytes_per_case": %.0f,
  "alloc_bytes_per_case_production": %.0f,
  "identical_results": %b,
  "workers_row_skipped": %b,
  "workers": %d,
  "workers_wall_s": %.3f,
  "workers_identical_results": %b,
  "workers_executions_match_share": %b,
  "workers_respawns": %d,
  "workers_kills": %d
}
|}
      budget (List.length testbeds) cores (not multi)
      (String.concat ",\n" (List.map json_run runs))
      reduction
      (direct_dt /. shared_dt)
      (direct_dt /. resolved_dt)
      (shared_dt /. both_dt)
      (direct_dt /. both_dt)
      (reach_execs = shared_execs)
      reach_overhead_pct
      (spec_dt <= both_dt)
      reach_res.Comfort.Campaign.cp_reach_seeded
      (spec_execs = shared_execs)
      (reach_dt /. spec_dt)
      spec_res.Comfort.Campaign.cp_specialized
      spec_res.Comfort.Campaign.cp_cow_clones
      spec_res.Comfort.Campaign.cp_ic_hits
      max_unaccounted
      alloc_budget_per_case
      spec_alloc_per_case
      same
      (workers_row = None)
      wn
      (match workers_row with Some (_, dt, _, _, _) -> dt | None -> 0.0)
      workers_same workers_execs_ok
      (match workers_row with Some (_, _, _, _, r) -> r | None -> 0)
      (match workers_row with Some (_, _, _, k, _) -> k | None -> 0)
  in
  let oc = open_out "BENCH_campaign.json" in
  output_string oc json;
  close_out oc;
  print_endline "wrote BENCH_campaign.json"

(* ---------- interpreter-core micro-benchmark ---------- *)

(* ns/op for the quirk-specialised and generic slot-compiled cores vs
   the tree walker on four workload shapes, each stressing a different
   part of the interpreter: deep lexical scope chains, function calls,
   string building, and property traffic. Each program is parsed once up
   front; the timed body is execution only (with [resolve] on, the
   closure compilation is cached in the front end after the first run,
   matching production where one compile serves a whole testbed sweep).
   Emits BENCH_interp.json. *)
let interp_programs =
  [
    ( "scope",
      {js|function f() {
  var a = 0, b = 1, c = 2, d = 3;
  for (var i = 0; i < 400; i = i + 1) {
    let t = a + b;
    a = b + c; b = c + d; c = d + t; d = t + i;
    a = a % 100003; b = b % 100003; c = c % 100003; d = d % 100003;
  }
  return a + b + c + d;
}
var r = 0;
for (var j = 0; j < 4; j = j + 1) { r = r + f(); }
print(r);|js}
    );
    ( "call",
      {js|function add(x, y) { return x + y; }
function mul(x, y) { return (x * y) % 10007; }
function step(s, i) { return add(mul(s, 3), mul(i, 7)) % 10007; }
var s = 1;
for (var i = 0; i < 900; i = i + 1) { s = step(s, i); }
print(s);|js}
    );
    ( "string",
      {js|var s = "";
for (var i = 0; i < 250; i = i + 1) { s = s + "ab" + i; }
var n = 0;
for (var j = 0; j < 200; j = j + 1) { n = n + s.charCodeAt(j); }
print(s.length + ":" + n);|js}
    );
    ( "property",
      {js|var o = { n: 0, m: 1 };
for (var i = 0; i < 700; i = i + 1) {
  o.n = (o.n + o.m) % 99991;
  o.m = o.m + 1;
  o["k" + (i % 7)] = o.n;
}
print(o.n + ":" + o.k3);|js}
    );
  ]

let interp_bench () =
  header "Interpreter core: specialised vs slot-compiled vs tree-walked (ns/op)";
  let fuel = 5_000_000 in
  (* three-way parity sanity check before timing anything: the
     specialised core must be observationally identical to the generic
     compiled core and the tree walker, fuel accounting included *)
  List.iter
    (fun (name, src) ->
      let t = Jsinterp.Run.run ~fuel ~resolve:false ~specialize:false src in
      let c = Jsinterp.Run.run ~fuel ~resolve:true ~specialize:false src in
      let s = Jsinterp.Run.run ~fuel ~resolve:true ~specialize:true src in
      let agrees (a : Jsinterp.Run.result) (b : Jsinterp.Run.result) =
        a.Jsinterp.Run.r_status = b.Jsinterp.Run.r_status
        && a.Jsinterp.Run.r_output = b.Jsinterp.Run.r_output
        && a.Jsinterp.Run.r_fuel_used = b.Jsinterp.Run.r_fuel_used
      in
      if
        t.Jsinterp.Run.r_status <> Jsinterp.Run.Sts_normal
        || (not (agrees t c))
        || not (agrees t s)
      then (
        Printf.eprintf
          "interp bench %s: modes disagree (tree: %s %S fuel=%d / compiled: %s %S fuel=%d / specialised: %s %S fuel=%d)\n"
          name
          (Jsinterp.Run.status_to_string t.Jsinterp.Run.r_status)
          t.Jsinterp.Run.r_output t.Jsinterp.Run.r_fuel_used
          (Jsinterp.Run.status_to_string c.Jsinterp.Run.r_status)
          c.Jsinterp.Run.r_output c.Jsinterp.Run.r_fuel_used
          (Jsinterp.Run.status_to_string s.Jsinterp.Run.r_status)
          s.Jsinterp.Run.r_output s.Jsinterp.Run.r_fuel_used;
        exit 1))
    interp_programs;
  let open Bechamel in
  let open Toolkit in
  let make_test ~mode (name, src) =
    (* one front end per (program, mode): compiled modes reuse their
       cached compilation across iterations, tree mode never compiles *)
    let fe = Jsinterp.Run.parse_frontend src in
    let resolve = mode <> "tree" in
    let specialize = mode = "specialized" in
    Test.make
      ~name:(Printf.sprintf "%s/%s" name mode)
      (Staged.stage (fun () ->
           ignore
             (Jsinterp.Run.run ~fuel ~resolve ~specialize ~frontend:fe src)))
  in
  let modes = [ "tree"; "resolved"; "specialized" ] in
  let tests =
    Test.make_grouped ~name:"interp"
      (List.concat_map
         (fun p -> List.map (fun mode -> make_test ~mode p) modes)
         interp_programs)
  in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let estimate name =
    match Hashtbl.find_opt results name with
    | Some r -> (
        match Analyze.OLS.estimates r with Some (t :: _) -> Some t | _ -> None)
    | None -> None
  in
  let rows =
    List.filter_map
      (fun (name, _) ->
        match
          ( estimate (Printf.sprintf "interp/%s/tree" name),
            estimate (Printf.sprintf "interp/%s/resolved" name),
            estimate (Printf.sprintf "interp/%s/specialized" name) )
        with
        | Some tree, Some resolved, Some specialized ->
            Some (name, tree, resolved, specialized)
        | _ -> None)
      interp_programs
  in
  List.iter
    (fun (name, tree, resolved, specialized) ->
      Printf.printf
        "  %-10s tree %10.0f ns/op   resolved %10.0f ns/op (%.2fx)   specialized %10.0f ns/op (%.2fx)\n"
        name tree resolved (tree /. resolved) specialized
        (tree /. specialized))
    rows;
  let json =
    Printf.sprintf
      {|{
  "fuel": %d,
  "benchmarks": [
%s
  ]
}
|}
      fuel
      (String.concat ",\n"
         (List.map
            (fun (name, tree, resolved, specialized) ->
              Printf.sprintf
                {|    { "name": %S, "tree_ns_per_op": %.0f, "resolved_ns_per_op": %.0f, "specialized_ns_per_op": %.0f, "speedup": %.2f, "specialized_speedup": %.2f }|}
                name tree resolved specialized (tree /. resolved)
                (tree /. specialized))
            rows))
  in
  let oc = open_out "BENCH_interp.json" in
  output_string oc json;
  close_out oc;
  print_endline "wrote BENCH_interp.json"

(* ---------- Bechamel micro-benchmarks ---------- *)

let micro () =
  header "Micro-benchmarks (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let sample = List.nth Lm.Js_corpus.programs 3 in
  let parsed = Jsparse.Parser.parse_program sample in
  let model = Lazy.force Lm.Model.comfort in
  let db = Lazy.force Specdb.Db.standard in
  let rng = Cutil.Rng.create 99 in
  let tests =
    Test.make_grouped ~name:"comfort"
      [
        Test.make ~name:"parse"
          (Staged.stage (fun () -> ignore (Jsparse.Parser.parse_program sample)));
        Test.make ~name:"print"
          (Staged.stage (fun () ->
               ignore (Jsast.Printer.program_to_string parsed)));
        Test.make ~name:"interp-run"
          (Staged.stage (fun () -> ignore (Jsinterp.Run.run ~fuel:100_000 sample)));
        Test.make ~name:"lm-sample"
          (Staged.stage (fun () ->
               ignore
                 (Lm.Model.generate model rng ~prefix:"var a = function(x) {"
                    ~k:10 ~max_tokens:120 ~stop:(Comfort.Generator.brace_stop ()))));
        Test.make ~name:"spec-lookup"
          (Staged.stage (fun () -> ignore (Specdb.Db.lookup db "substr")));
        Test.make ~name:"regex-exec"
          (Staged.stage
             (let prog = Jsinterp.Regex.compile "(a|b)+c" "" in
              fun () -> ignore (Jsinterp.Regex.exec prog "abababac" 0)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some (t :: _) -> Printf.printf "  %-28s %12.1f ns/run\n" name t
      | _ -> Printf.printf "  %-28s (no estimate)\n" name)
    (List.sort compare rows)

(* ---------- main ---------- *)

let all () =
  table1 ();
  spec ();
  listings ();
  table2 ();
  table3 ();
  table4 ();
  table5 ();
  fig7 ();
  fig8 ();
  fig9 ();
  ablate ();
  campaign_bench ();
  interp_bench ();
  micro ()

let () =
  let t0 = Unix.gettimeofday () in
  (match if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" with
  | "table1" -> table1 ()
  | "table2" -> table2 ()
  | "table3" -> table3 ()
  | "table4" -> table4 ()
  | "table5" -> table5 ()
  | "fig7" -> fig7 ()
  | "fig8" -> fig8 ()
  | "fig9" -> fig9 ()
  | "listings" -> listings ()
  | "spec" -> spec ()
  | "ablate" -> ablate ()
  | "campaign" -> campaign_bench ()
  | "interp" -> interp_bench ()
  | "micro" -> micro ()
  | "all" -> all ()
  | other ->
      Printf.eprintf
        "unknown experiment %s (try: table1..5, fig7..9, listings, spec, ablate, campaign, interp, micro, all)\n"
        other;
      exit 1);
  Printf.printf "\n[done in %.1fs]\n" (Unix.gettimeofday () -. t0)
