(* The `comfort` command-line tool.

     comfort generate --count 5            sample test programs from the LM
     comfort mutate FILE                   ECMA-262-guided mutants of a file
     comfort run FILE [--engine E --version V --strict]
                                           run JS on a simulated engine
     comfort difftest FILE                 differential-test one file
     comfort fuzz --budget N [--fuzzer F --feedback]
                                           run a fuzzing campaign
     comfort analyze FILE | --generate N   static analysis: scope, early
                                           errors, lint, screening verdict
     comfort export --budget N [--dir D]   fuzz and emit Test262-style tests
     comfort reduce FILE --engine E --version V
                                           reduce a bug-exposing test case
     comfort spec [API]                    dump extracted spec rules
     comfort engines                       list the engine registry *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* [--jobs 0] (the default) defers to COMFORT_JOBS, else sequential.
   Campaign results are byte-identical at any job count. *)
let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for the differential sweep. 0 reads \
           $(b,COMFORT_JOBS) from the environment (default 1). Results \
           are identical at any job count.")

let resolve_jobs n = if n <= 0 then Comfort.Executor.default_jobs () else n

(* [--workers 0] (the default) defers to COMFORT_WORKERS, else in-process.
   Campaign results are byte-identical at any worker count. *)
let workers_arg =
  Arg.(
    value & opt int 0
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Process-isolated campaign workers: fork $(docv) worker \
           processes and run every per-case sweep in one of them, so an \
           execution that segfaults, hangs or is hard-killed (the \
           $(b,worker_kill) fault class) costs one worker, never the \
           campaign. 0 reads $(b,COMFORT_WORKERS) from the environment \
           (default: in-process). Results are identical at any worker \
           count.")

let resolve_workers n =
  if n <= 0 then Comfort.Coordinator.default_workers () else n

(* [--no-share] disables execution sharing for one invocation; without it
   the default comes from COMFORT_NO_SHARE (sharing on if unset). *)
let no_share_arg =
  Arg.(
    value & flag
    & info [ "no-share" ]
        ~doc:
          "Interpret once per testbed instead of once per behavioural \
           equivalence class. Results are byte-identical either way; this \
           is the sharing escape hatch (env: $(b,COMFORT_NO_SHARE)).")

(* [None] defers to the COMFORT_NO_SHARE-aware library default *)
let resolve_share no_share = if no_share then Some false else None

(* [--no-resolve] disables the slot-compiled interpreter core for one
   invocation; without it the default comes from COMFORT_NO_RESOLVE
   (compilation on if unset). *)
let no_resolve_arg =
  Arg.(
    value & flag
    & info [ "no-resolve" ]
        ~doc:
          "Tree-walk every reference execution instead of compiling \
           programs to slot-resolved closures. Results are byte-identical \
           either way; this is the interpreter-core escape hatch (env: \
           $(b,COMFORT_NO_RESOLVE)).")

(* [None] defers to the COMFORT_NO_RESOLVE-aware library default *)
let resolve_resolve no_resolve = if no_resolve then Some false else None

(* [--no-reach] disables the static checkpoint-reachability analysis for
   one invocation; without it the default comes from COMFORT_NO_REACH
   (analysis on if unset). *)
let no_reach_arg =
  Arg.(
    value & flag
    & info [ "no-reach" ]
        ~doc:
          "Skip the static checkpoint-reachability analysis (sharing-cell \
           seeding and checkpoint folding). Results are byte-identical \
           either way; this is the analysis escape hatch (env: \
           $(b,COMFORT_NO_REACH)).")

(* [None] defers to the COMFORT_NO_REACH-aware library default *)
let resolve_reach no_reach = if no_reach then Some false else None

(* [--no-specialize] disables the quirk-specialised fast path for one
   invocation; without it the default comes from COMFORT_NO_SPECIALIZE
   (specialisation on if unset). *)
let no_specialize_arg =
  Arg.(
    value & flag
    & info [ "no-specialize" ]
        ~doc:
          "Skip the quirk-specialised fast path (copy-on-write realms, \
           per-cell compiled closures, inline caches) and execute every \
           run through the generic compiled form. Results are \
           byte-identical either way; this is the specialisation escape \
           hatch (env: $(b,COMFORT_NO_SPECIALIZE)).")

(* [None] defers to the COMFORT_NO_SPECIALIZE-aware library default *)
let resolve_specialize no_specialize =
  if no_specialize then Some false else None

let engine_conv =
  let parse s =
    match
      List.find_opt
        (fun e -> String.lowercase_ascii (Engines.Registry.engine_name e)
                  = String.lowercase_ascii s)
        Engines.Registry.all_engines
    with
    | Some e -> Ok e
    | None -> Error (`Msg ("unknown engine " ^ s))
  in
  let print fmt e = Format.pp_print_string fmt (Engines.Registry.engine_name e) in
  Arg.conv (parse, print)

(* --- generate --- *)

let generate count seed =
  let g = Comfort.Generator.create ~seed () in
  List.iteri
    (fun i (tc : Comfort.Testcase.t) ->
      Printf.printf "// sample %d (syntax %s)\n%s\n" (i + 1)
        (if tc.Comfort.Testcase.tc_syntax_valid then "valid" else "INVALID")
        tc.Comfort.Testcase.tc_source)
    (Comfort.Generator.generate g ~n:count)

let generate_cmd =
  let count =
    Arg.(value & opt int 3 & info [ "count"; "n" ] ~doc:"Number of programs.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"RNG seed.") in
  Cmd.v (Cmd.info "generate" ~doc:"Sample JS test programs from the language model")
    Term.(const generate $ count $ seed)

(* --- mutate --- *)

let mutate file seed =
  let src = read_file file in
  let dg = Comfort.Datagen.create ~seed () in
  let ms = Comfort.Datagen.mutants_of_program dg src in
  if ms = [] then print_endline "// no ECMA-262-guided mutants (no known API call sites)"
  else
    List.iteri
      (fun i (m : Comfort.Datagen.mutant) ->
        Printf.printf "// mutant %d: %s (%s)\n%s\n" (i + 1)
          (if m.Comfort.Datagen.m_api = "" then "(driver)" else m.Comfort.Datagen.m_api)
          (if m.Comfort.Datagen.m_guided then "boundary-guided" else "random data")
          m.Comfort.Datagen.m_source)
      ms

let mutate_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let seed = Arg.(value & opt int 2 & info [ "seed" ] ~doc:"RNG seed.") in
  Cmd.v (Cmd.info "mutate" ~doc:"Apply ECMA-262-guided test-data generation to a program")
    Term.(const mutate $ file $ seed)

(* --- run --- *)

let run_js file engine version strict =
  let src = read_file file in
  let result =
    match engine with
    | None -> Engines.Engine.run_reference ~strict src
    | Some e -> (
        let cfg =
          match version with
          | Some v -> Engines.Registry.find_config ~engine:e ~version:v
          | None -> Some (Engines.Registry.latest e)
        in
        match cfg with
        | None ->
            Printf.eprintf "unknown version; available: %s\n"
              (String.concat ", "
                 (List.map
                    (fun c -> c.Engines.Registry.cfg_version)
                    (Engines.Registry.configs_of e)));
            exit 1
        | Some cfg ->
            Engines.Engine.run
              {
                Engines.Engine.tb_config = cfg;
                tb_mode = (if strict then Engines.Engine.Strict else Engines.Engine.Normal);
              }
              src)
  in
  print_string result.Jsinterp.Run.r_output;
  (match result.Jsinterp.Run.r_parse_error with
  | Some e -> Printf.eprintf "SyntaxError: %s\n" e
  | None -> ());
  (match result.Jsinterp.Run.r_status with
  | Jsinterp.Run.Sts_normal -> ()
  | s -> Printf.eprintf "%s\n" (Jsinterp.Run.status_to_string s));
  if not (Jsinterp.Quirk.Set.is_empty result.Jsinterp.Run.r_fired) then
    Printf.eprintf "[quirks fired: %s]\n"
      (String.concat ", "
         (List.map Jsinterp.Quirk.to_string
            (Jsinterp.Quirk.Set.elements result.Jsinterp.Run.r_fired)))

let run_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let engine =
    Arg.(value & opt (some engine_conv) None & info [ "engine" ] ~doc:"Simulated engine.")
  in
  let version =
    Arg.(value & opt (some string) None & info [ "version" ] ~doc:"Engine version.")
  in
  let strict = Arg.(value & flag & info [ "strict" ] ~doc:"Strict mode testbed.") in
  Cmd.v (Cmd.info "run" ~doc:"Run a JS file on a simulated engine")
    Term.(const run_js $ file $ engine $ version $ strict)

(* --- difftest --- *)

let difftest file no_share no_resolve no_reach no_specialize =
  let src = read_file file in
  let tc = Comfort.Testcase.make src in
  let report =
    Comfort.Difftest.run_case
      ?share:(resolve_share no_share)
      ?resolve:(resolve_resolve no_resolve)
      ?reach:(resolve_reach no_reach)
      ?specialize:(resolve_specialize no_specialize)
      (Engines.Engine.latest_testbeds ()) tc
  in
  Printf.printf "testbeds run: %d\n" report.Comfort.Difftest.cr_tested;
  if report.Comfort.Difftest.cr_deviations = [] then
    print_endline "no deviations: all engines agree"
  else
    List.iter
      (fun (d : Comfort.Difftest.deviation) ->
        Printf.printf "%s deviates [%s]\n  actual:   %s\n  expected: %s\n"
          (Engines.Engine.testbed_id d.Comfort.Difftest.d_testbed)
          (Comfort.Difftest.deviation_kind_to_string d.Comfort.Difftest.d_kind)
          d.Comfort.Difftest.d_actual d.Comfort.Difftest.d_expected;
        Jsinterp.Quirk.Set.iter
          (fun q -> Printf.printf "  ground-truth bug: %s\n" (Jsinterp.Quirk.to_string q))
          d.Comfort.Difftest.d_fired)
      report.Comfort.Difftest.cr_deviations

let difftest_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "difftest" ~doc:"Differential-test one file across the latest engines")
    Term.(const difftest $ file $ no_share_arg $ no_resolve_arg $ no_reach_arg
          $ no_specialize_arg)

(* --- fuzz --- *)

let fuzz budget fuzzer_name seed feedback jobs workers no_share no_resolve
    no_reach no_specialize audit_share audit_reach audit_specialize faults
    checkpoint checkpoint_every resume halt_after profile =
  let jobs = resolve_jobs jobs in
  let workers = resolve_workers workers in
  let share = resolve_share no_share in
  let resolve = resolve_resolve no_resolve in
  let reach = resolve_reach no_reach in
  let specialize = resolve_specialize no_specialize in
  let plan =
    match faults with
    | None -> (
        (* resolve COMFORT_FAULTS here so a malformed spec is a clean
           diagnostic, not an uncaught exception out of Campaign.run *)
        try Comfort.Supervisor.Faultplan.from_env ()
        with Invalid_argument msg ->
          Printf.eprintf "bad %s\n" msg;
          exit 2)
    | Some spec -> (
        match Comfort.Supervisor.Faultplan.of_spec spec with
        | Ok p -> Some p
        | Error e ->
            Printf.eprintf "bad --faults spec: %s\n" e;
            exit 2)
  in
  let checkpoint =
    Option.map (fun path -> (path, max 1 checkpoint_every)) checkpoint
  in
  if
    feedback
    && (Option.is_some plan || Option.is_some resume
       || Option.is_some checkpoint || Option.is_some halt_after
       || workers > 0)
  then begin
    Printf.eprintf
      "--feedback cannot be combined with --faults/--checkpoint/--resume/\
       --halt-after/--workers\n";
    exit 2
  end;
  let respawns0 = Comfort.Coordinator.stat_respawns () in
  let kills0 = Comfort.Coordinator.stat_kills () in
  let hangs0 = Comfort.Coordinator.stat_hangs () in
  if profile then begin
    Jsinterp.Run.Stage.enabled := true;
    Jsinterp.Run.Stage.reset ()
  end;
  let t0 = Unix.gettimeofday () in
  let res =
    try
      match resume with
      | Some path -> (
          match Comfort.Campaign.Checkpoint.load path with
          | Error e ->
              Printf.eprintf "cannot resume from %s: %s\n" path e;
              exit 2
          | Ok st ->
              Printf.printf "resuming %s\n"
                (Comfort.Campaign.Checkpoint.describe st);
              Comfort.Campaign.resume ~jobs ~workers ?checkpoint
                ?halt_after st)
      | None -> (
          (* constructing the fuzzer forces the spec database and the LM
             model — real generation cost, attributed to the generate
             stage so the profile's residual only holds true unknowns *)
          let fz =
            Jsinterp.Run.Stage.time Jsinterp.Run.Stage.generate (fun () ->
                match String.lowercase_ascii fuzzer_name with
                | "comfort" -> Comfort.Campaign.comfort_fuzzer ~seed ()
                | "deepsmith" -> Baselines.Fuzzers.deepsmith ~seed ()
                | "fuzzilli" -> Baselines.Fuzzers.fuzzilli ~seed ()
                | "codealchemist" -> Baselines.Fuzzers.codealchemist ~seed ()
                | "die" -> Baselines.Fuzzers.die ~seed ()
                | "montage" -> Baselines.Fuzzers.montage ~seed ()
                | other ->
                    Printf.eprintf "unknown fuzzer %s\n" other;
                    exit 1)
          in
          if feedback then
            let t = Comfort.Feedback.create fz in
            Comfort.Feedback.run_rounds ~rounds:4
              ~budget_per_round:(max 1 (budget / 4))
              ~jobs ?share ?resolve ?reach ?specialize t
          else
            Comfort.Campaign.run ~budget ~jobs ~workers ?share ?resolve
              ?reach ?specialize ~audit_share ~audit_reach ~audit_specialize
              ?faults:plan ?checkpoint ?halt_after fz)
    with
    | Comfort.Campaign.Halted { halted_at; halted_checkpoint } ->
        Printf.printf "campaign halted after %d cases%s\n" halted_at
          (match halted_checkpoint with
          | Some p -> Printf.sprintf "; resume with --resume %s" p
          | None -> " (no --checkpoint configured; progress discarded)");
        exit 0
    | Comfort.Campaign.Interrupted { int_signal; int_at; int_checkpoint } ->
        (* operator kill: the worker pool is already torn down and a
           final checkpoint written; 130 is the conventional
           killed-by-signal exit *)
        Printf.eprintf "campaign interrupted by %s after %d cases%s\n"
          int_signal int_at
          (match int_checkpoint with
          | Some p -> Printf.sprintf "; resume with --resume %s" p
          | None -> " (no --checkpoint configured; progress discarded)");
        exit 130
  in
  (* robustness telemetry goes to stderr so stdout stays byte-comparable
     across worker counts (the CI chaos jobs diff it) *)
  if workers > 0 then begin
    let r = Comfort.Coordinator.stat_respawns () - respawns0 in
    let k = Comfort.Coordinator.stat_kills () - kills0 in
    let h = Comfort.Coordinator.stat_hangs () - hangs0 in
    if Comfort.Coordinator.available () then
      Printf.eprintf
        "process isolation: %d workers, %d respawns (%d hard-kills, %d \
         watchdog reaps)\n"
        workers r k h
    else
      Printf.eprintf
        "process isolation unavailable (no fork); ran in-process\n"
  end;
  let wall_ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
  Printf.printf "fuzzer: %s\ncases: %d\nunique bugs: %d\nrepeats filtered: %d\n"
    res.Comfort.Campaign.cp_fuzzer res.Comfort.Campaign.cp_cases_run
    (List.length res.Comfort.Campaign.cp_discoveries)
    res.Comfort.Campaign.cp_filtered_repeats;
  Printf.printf "screened out: %d (repaired %d)\n"
    res.Comfort.Campaign.cp_screened_out res.Comfort.Campaign.cp_repaired;
  if res.Comfort.Campaign.cp_reach_seeded > 0 then
    Printf.printf "reach-seeded shares: %d\n"
      res.Comfort.Campaign.cp_reach_seeded;
  if res.Comfort.Campaign.cp_specialized > 0 then
    Printf.printf
      "specialized compilations: %d (COW clones %d, inline-cache hits %d)\n"
      res.Comfort.Campaign.cp_specialized res.Comfort.Campaign.cp_cow_clones
      res.Comfort.Campaign.cp_ic_hits;
  List.iter
    (fun (reason, n) -> Printf.printf "  %-35s %d\n" reason n)
    res.Comfort.Campaign.cp_screen_reasons;
  (* supervision only makes noise when it did something (or was asked to) *)
  let sup_rows = Comfort.Report.supervision_summary res in
  if Option.is_some plan || Option.is_some resume
     || List.exists (fun (_, n) -> n <> 0) sup_rows
  then begin
    print_endline "supervision:";
    List.iter (fun (label, n) -> Printf.printf "  %-35s %d\n" label n) sup_rows
  end;
  List.iter
    (fun (d : Comfort.Campaign.discovery) ->
      Printf.printf "  [case %4d] %-13s %-10s %s\n" d.Comfort.Campaign.disc_at
        (Engines.Registry.engine_name d.Comfort.Campaign.disc_engine)
        d.Comfort.Campaign.disc_behavior
        (Jsinterp.Quirk.to_string d.Comfort.Campaign.disc_quirk))
    res.Comfort.Campaign.cp_discoveries;
  if profile then begin
    (if jobs > 1 then
       Printf.printf
         "profile (jobs=%d: stage sums are CPU time across domains and may \
          exceed wall)\n"
         jobs);
    print_string (Comfort.Metrics.profile_to_string
                    (Comfort.Metrics.profile ~wall_ns))
  end;
  match res.Comfort.Campaign.cp_aborted with
  | Some reason ->
      Printf.eprintf "campaign aborted early: %s\n" reason;
      exit 1
  | None -> ()

let fuzz_cmd =
  let budget =
    Arg.(value & opt int 1000 & info [ "budget" ] ~doc:"Number of test cases.")
  in
  let fuzzer =
    Arg.(value & opt string "comfort" & info [ "fuzzer" ]
           ~doc:"comfort | deepsmith | fuzzilli | codealchemist | die | montage")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"RNG seed.") in
  let feedback =
    Arg.(value & flag & info [ "feedback" ]
           ~doc:"Mutate bug-exposing cases between rounds (the §5.5 extension).")
  in
  let audit_share =
    Arg.(
      value
      & opt ~vopt:1 int 0
      & info [ "audit-share" ] ~docv:"N"
          ~doc:
            "Cross-check execution sharing: every $(docv)-th case (1 = \
             every case when the option is given bare; 0 = off) runs down \
             both the shared and the direct path and the campaign aborts \
             on any divergence. Incompatible with $(b,--feedback).")
  in
  let audit_reach =
    Arg.(
      value
      & opt ~vopt:1 int 0
      & info [ "audit-reach" ] ~docv:"N"
          ~doc:
            "Audit the static reachability analysis: every $(docv)-th case \
             (1 = every case when the option is given bare; 0 = off) \
             additionally executes directly on every testbed and the \
             campaign aborts if any run consults a checkpoint outside its \
             static reach set. Incompatible with $(b,--feedback).")
  in
  let audit_specialize =
    Arg.(
      value
      & opt ~vopt:1 int 0
      & info [ "audit-specialize" ] ~docv:"N"
          ~doc:
            "Cross-check quirk specialisation: every $(docv)-th case (1 = \
             every case when the option is given bare; 0 = off) runs once \
             down the specialised fast path and once down the generic \
             compiled path and the campaign aborts on any report \
             divergence. Incompatible with $(b,--feedback).")
  in
  let faults =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Deterministic fault-injection plan for a chaos campaign, e.g. \
             $(b,seed=9;targets=V8;crash=0.1;hang=0.05;flaky=0.3). Injected \
             faults are retried, quarantined and reported — never counted \
             as bugs. Defaults to $(b,COMFORT_FAULTS) from the environment.")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"PATH"
          ~doc:
            "Write a resumable campaign snapshot to $(docv) (atomically) \
             every $(b,--checkpoint-every) cases and when the campaign \
             ends.")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 25
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Cases between checkpoint snapshots (default 25).")
  in
  let resume =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"PATH"
          ~doc:
            "Continue a checkpointed campaign instead of starting fresh. \
             Every campaign parameter except $(b,--jobs) is restored from \
             the checkpoint; the final report is identical to the \
             uninterrupted run's.")
  in
  let halt_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "halt-after" ] ~docv:"N"
          ~doc:
            "Deterministically stop once $(docv) cases are consumed \
             (writing a final checkpoint when $(b,--checkpoint) is set) — \
             the kill-simulation hook behind the CI kill-and-resume job.")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Profile the whole campaign pipeline: per-stage wall time and \
             allocation (generate, screen, sweep, vote, attr, reduce, fold \
             plus the nested interpreter substages), printed after the \
             campaign summary.")
  in
  Cmd.v (Cmd.info "fuzz" ~doc:"Run a fuzzing campaign against the simulated engines")
    Term.(const fuzz $ budget $ fuzzer $ seed $ feedback $ jobs_arg
          $ workers_arg $ no_share_arg $ no_resolve_arg $ no_reach_arg
          $ no_specialize_arg $ audit_share $ audit_reach $ audit_specialize
          $ faults $ checkpoint $ checkpoint_every $ resume $ halt_after
          $ profile)

(* --- analyze --- *)

let print_analysis label src =
  (match label with Some l -> Printf.printf "// %s\n" l | None -> ());
  match Analysis.screen ~strict:false src with
  | Error msg -> Printf.printf "syntax error: %s\n" msg
  | Ok (verdict, diag) ->
      if diag.Analysis.d_free <> [] then
        Printf.printf "free variables: %s\n"
          (String.concat ", " diag.Analysis.d_free);
      List.iter
        (fun (e : Analysis.Early_errors.error) ->
          Printf.printf "early error [%s]: %s\n"
            (Analysis.Early_errors.rule_to_string e.Analysis.Early_errors.ee_rule)
            e.Analysis.Early_errors.ee_msg)
        diag.Analysis.d_errors;
      List.iter
        (fun (e : Analysis.Early_errors.error) ->
          Printf.printf "strict-only [%s]: %s\n"
            (Analysis.Early_errors.rule_to_string e.Analysis.Early_errors.ee_rule)
            e.Analysis.Early_errors.ee_msg)
        diag.Analysis.d_strict_only;
      List.iter
        (fun (f : Analysis.Lint.finding) ->
          Printf.printf "lint: %s\n"
            (match f with
            | Analysis.Lint.Nondeterministic api -> "nondeterministic " ^ api
            | Analysis.Lint.No_observable_output -> "no observable output"))
        diag.Analysis.d_lint;
      Printf.printf "verdict: %s\n" (Analysis.verdict_to_string verdict)

(* [--quirks]: the static checkpoint-reachability view of a case — which
   quirk checkpoints any testbed's execution could consult, and which of
   the 102 testbeds are therefore statically distinguishable on it. Rows
   use the same label/count format as the Report summaries. *)
let print_quirk_reach label src =
  (match label with Some l -> Printf.printf "// %s\n" l | None -> ());
  let fe_sloppy = Jsinterp.Run.parse_frontend ~strict:false src in
  match fe_sloppy.Jsinterp.Run.fe_program with
  | Error (msg, _) -> Printf.printf "syntax error: %s\n" msg
  | Ok _ ->
      let s_sloppy = Jsinterp.Run.reach_set fe_sloppy in
      let fe_strict = Jsinterp.Run.parse_frontend ~strict:true src in
      let s_strict =
        (* a program the strict front end rejects reaches no execution
           checkpoint on strict testbeds — only its parse-stage quirks *)
        match fe_strict.Jsinterp.Run.fe_program with
        | Ok _ -> Jsinterp.Run.reach_set fe_strict
        | Error _ -> fe_strict.Jsinterp.Run.fe_fired
      in
      let union = Jsinterp.Quirk.Set.union s_sloppy s_strict in
      if Analysis.Reach.is_top union then
        print_endline
          "static quirk reach: TOP (dynamic construct — every checkpoint \
           presumed consultable)"
      else begin
        Printf.printf "static quirk reach: %d of %d checkpoints\n"
          (Jsinterp.Quirk.Set.cardinal union)
          (List.length Jsinterp.Quirk.all);
        Jsinterp.Quirk.Set.iter
          (fun q ->
            let modes =
              match
                ( Jsinterp.Quirk.Set.mem q s_sloppy,
                  Jsinterp.Quirk.Set.mem q s_strict )
              with
              | true, true -> "both modes"
              | true, false -> "normal only"
              | _ -> "strict only"
            in
            Printf.printf "  %-45s %s\n" (Jsinterp.Quirk.to_string q) modes)
          union
      end;
      let distinguishable =
        List.filter
          (fun (tb : Engines.Engine.testbed) ->
            let s =
              if tb.Engines.Engine.tb_mode = Engines.Engine.Strict then
                s_strict
              else s_sloppy
            in
            not
              (Jsinterp.Quirk.Set.is_empty
                 (Jsinterp.Quirk.Set.inter
                    tb.Engines.Engine.tb_config.Engines.Registry.cfg_quirks s)))
          Engines.Engine.all_testbeds
      in
      Printf.printf "distinguishable testbeds: %d of %d\n"
        (List.length distinguishable)
        (List.length Engines.Engine.all_testbeds);
      List.iter
        (fun tb -> Printf.printf "  %s\n" (Engines.Engine.testbed_id tb))
        distinguishable

let analyze file generate seed quirks =
  let print = if quirks then print_quirk_reach else print_analysis in
  match (file, generate) with
  | Some f, _ -> print None (read_file f)
  | None, n when n > 0 ->
      let g = Comfort.Generator.create ~seed () in
      List.iteri
        (fun i (tc : Comfort.Testcase.t) ->
          if i > 0 then print_newline ();
          print
            (Some (Printf.sprintf "sample %d" (i + 1)))
            tc.Comfort.Testcase.tc_source)
        (Comfort.Generator.generate g ~n)
  | None, _ ->
      prerr_endline "pass a FILE or --generate N";
      exit 1

let analyze_cmd =
  let file = Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE") in
  let generate =
    Arg.(value & opt int 0 & info [ "generate" ]
           ~doc:"Analyze $(docv) freshly generated programs instead of a file."
           ~docv:"N")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"RNG seed.") in
  let quirks =
    Arg.(value & flag & info [ "quirks" ]
           ~doc:
             "Show the static checkpoint-reachability view instead: the \
              quirk checkpoints any execution of the case could consult \
              (per mode) and the statically distinguishable testbeds.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Static analysis of a JS program: scope, early errors, lint, verdict")
    Term.(const analyze $ file $ generate $ seed $ quirks)

(* --- export --- *)

let export budget seed dir jobs workers no_share no_resolve no_reach
    no_specialize =
  let fz = Comfort.Campaign.comfort_fuzzer ~seed () in
  let res =
    Comfort.Campaign.run ~budget ~jobs:(resolve_jobs jobs)
      ~workers:(resolve_workers workers)
      ?share:(resolve_share no_share)
      ?resolve:(resolve_resolve no_resolve)
      ?reach:(resolve_reach no_reach)
      ?specialize:(resolve_specialize no_specialize) fz
  in
  let files = Comfort.Test262_export.export res in
  (match dir with
  | None ->
      List.iter
        (fun (name, source) -> Printf.printf "// %s\n%s\n" name source)
        files
  | Some dir ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      List.iter
        (fun (name, source) ->
          let oc = open_out (Filename.concat dir name) in
          output_string oc source;
          close_out oc)
        files;
      Printf.printf "wrote %d conformance tests to %s/\n" (List.length files) dir);
  Printf.printf "// %d discoveries, %d exportable\n"
    (List.length res.Comfort.Campaign.cp_discoveries)
    (List.length files)

let export_cmd =
  let budget =
    Arg.(value & opt int 1500 & info [ "budget" ] ~doc:"Campaign size.")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"RNG seed.") in
  let dir =
    Arg.(value & opt (some string) None & info [ "dir" ] ~doc:"Output directory.")
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Fuzz, then render discoveries as Test262-style conformance tests")
    Term.(const export $ budget $ seed $ dir $ jobs_arg $ workers_arg
          $ no_share_arg $ no_resolve_arg $ no_reach_arg $ no_specialize_arg)

(* --- reduce --- *)

let reduce file engine version jobs no_share no_resolve no_reach
    no_specialize =
  let src = read_file file in
  let cfg =
    match version with
    | Some v -> Engines.Registry.find_config ~engine ~version:v
    | None -> Some (Engines.Registry.latest engine)
  in
  match cfg with
  | None ->
      Printf.eprintf "unknown version\n";
      exit 1
  | Some cfg -> (
      let tb = { Engines.Engine.tb_config = cfg; tb_mode = Engines.Engine.Normal } in
      let resolve = resolve_resolve no_resolve in
      let reach = resolve_reach no_reach in
      let specialize = resolve_specialize no_specialize in
      let target = Engines.Engine.run ?resolve ?reach ?specialize tb src in
      let reference =
        Engines.Engine.run_reference ?resolve ?reach ?specialize src
      in
      let tsig = Comfort.Difftest.signature_of_result target in
      let rsig = Comfort.Difftest.signature_of_result reference in
      if tsig = rsig then print_endline "// no deviation on that engine; nothing to reduce"
      else
        let dev =
          {
            Comfort.Difftest.d_testbed = tb;
            d_kind = Comfort.Difftest.kind_of tsig rsig;
            d_expected = Comfort.Difftest.signature_to_string rsig;
            d_actual = Comfort.Difftest.signature_to_string tsig;
            d_behavior = Comfort.Difftest.behavior_label tsig rsig;
            d_fired = target.Jsinterp.Run.r_fired;
          }
        in
        let reduced =
          Comfort.Reducer.reduce ~jobs:(resolve_jobs jobs)
            ~still_triggers:
              (Comfort.Reducer.still_triggers_deviation
                 ?share:(resolve_share no_share) ?resolve ?reach ?specialize
                 tb dev)
            src
        in
        Printf.printf "// reduced from %d to %d bytes\n%s"
          (String.length src) (String.length reduced) reduced)

let reduce_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let engine =
    Arg.(required & opt (some engine_conv) None & info [ "engine" ] ~doc:"Deviating engine.")
  in
  let version =
    Arg.(value & opt (some string) None & info [ "version" ] ~doc:"Engine version.")
  in
  Cmd.v (Cmd.info "reduce" ~doc:"Reduce a bug-exposing test case")
    Term.(const reduce $ file $ engine $ version $ jobs_arg $ no_share_arg
          $ no_resolve_arg $ no_reach_arg $ no_specialize_arg)

(* --- spec --- *)

let spec api =
  let db = Lazy.force Specdb.Db.standard in
  match api with
  | None ->
      print_endline (Specdb.Db.stats db);
      List.iter
        (fun (e : Specdb.Spec_ast.entry) ->
          Printf.printf "%-45s rules %d/%d\n" e.Specdb.Spec_ast.e_name
            e.Specdb.Spec_ast.e_parsed_rules e.Specdb.Spec_ast.e_rule_count)
        db.Specdb.Db.entries
  | Some name -> (
      match Specdb.Db.lookup db (Specdb.Db.last_component name) with
      | [] -> Printf.eprintf "no spec entry for %s\n" name
      | entries ->
          List.iter (fun e -> print_endline (Specdb.Spec_ast.to_json e)) entries)

let spec_cmd =
  let api = Arg.(value & pos 0 (some string) None & info [] ~docv:"API") in
  Cmd.v (Cmd.info "spec" ~doc:"Show extracted ECMA-262 specification rules")
    Term.(const spec $ api)

(* --- engines --- *)

let engines_list () =
  List.iter
    (fun (c : Engines.Registry.config) ->
      Printf.printf "%-14s %-14s %-10s %s (%d seeded bugs)\n"
        (Engines.Registry.engine_name c.Engines.Registry.cfg_engine)
        c.Engines.Registry.cfg_version c.Engines.Registry.cfg_release
        (Engines.Registry.es_to_string c.Engines.Registry.cfg_es)
        (Jsinterp.Quirk.Set.cardinal c.Engines.Registry.cfg_quirks))
    Engines.Registry.all_configs

let engines_cmd =
  Cmd.v (Cmd.info "engines" ~doc:"List the simulated engine registry")
    Term.(const engines_list $ const ())

(* A downstream pipe closing early (e.g. `comfort export | head`) must be
   a clean exit, not a SIGPIPE death or an uncaught Unix_error: ignore the
   signal so writes fail with EPIPE instead, and treat that (in either its
   Unix or its out_channel clothing) as "the consumer has seen enough".
   Stdlib's at_exit flush ignores write errors, so exit itself is safe. *)
let broken_pipe = function
  | Unix.Unix_error (Unix.EPIPE, _, _) -> true
  | Sys_error msg ->
      let needle = "roken pipe" in
      let lm = String.length msg and ln = String.length needle in
      let rec scan i = i + ln <= lm && (String.sub msg i ln = needle || scan (i + 1)) in
      scan 0
  | _ -> false

let () =
  if Sys.unix then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let doc = "Comfort: conformance fuzzing for (simulated) JavaScript engines" in
  exit
    (try
       Cmd.eval ~catch:false
         (Cmd.group (Cmd.info "comfort" ~doc)
            [
              generate_cmd; mutate_cmd; run_cmd; difftest_cmd; fuzz_cmd;
              analyze_cmd; export_cmd; reduce_cmd; spec_cmd; engines_cmd;
            ])
     with
    | e when broken_pipe e ->
        (* Stdlib's at_exit flush ignores errors but Format's does not:
           point the standard formatters at the void so exiting cannot
           re-raise from their flush *)
        List.iter
          (fun fmt ->
            Format.pp_set_formatter_output_functions fmt
              (fun _ _ _ -> ())
              (fun () -> ()))
          [ Format.std_formatter; Format.err_formatter ];
        0
    | e ->
        (* what Cmd.eval ~catch:true would have done *)
        Printf.eprintf "comfort: internal error, uncaught exception:\n%s\n"
          (Printexc.to_string e);
        124)
