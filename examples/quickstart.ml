(* Quickstart: the whole Comfort pipeline on one test program.

     dune exec examples/quickstart.exe

   1. sample a JS test program from the language model;
   2. screen it with the static-analysis pass (scope, early errors, lint);
   3. apply ECMA-262-guided test-data generation (Algorithm 1);
   4. differential-test each case across the ten simulated engines;
   5. report any deviation together with the ground-truth bug it hit. *)

let () =
  print_endline "=== 1. generate a test program (GPT-2 substitute) ===";
  let gen = Comfort.Generator.create ~seed:2024 () in
  let tc = List.hd (Comfort.Generator.generate gen ~n:1) in
  print_endline tc.Comfort.Testcase.tc_source;

  print_endline "=== 2. static-analysis screen ===";
  let tc =
    match Comfort.Campaign.screen_case tc with
    | Comfort.Campaign.S_kept tc ->
        print_endline "verdict: keep\n";
        tc
    | Comfort.Campaign.S_repaired tc ->
        Printf.printf "verdict: repaired (free variables bound)\n\n%s\n"
          tc.Comfort.Testcase.tc_source;
        tc
    | Comfort.Campaign.S_dropped reason ->
        (* in the campaign driver a dropped case is replaced by a fresh
           draw; here we just keep going with the original *)
        Printf.printf "verdict: drop (%s) — campaign would redraw\n\n" reason;
        tc
  in

  print_endline "=== 3. ECMA-262-guided test data (Algorithm 1) ===";
  let dg = Comfort.Datagen.create ~seed:5 () in
  let mutants = Comfort.Datagen.mutate dg tc in
  Printf.printf "%d mutated test cases; first one:\n\n" (List.length mutants);
  (match mutants with
  | m :: _ -> print_endline m.Comfort.Testcase.tc_source
  | [] -> print_endline "(no API call sites found in this sample)");

  print_endline "=== 4. differential testing across ten engines ===";
  let testbeds = Engines.Engine.latest_testbeds () in
  let deviations = ref 0 in
  List.iter
    (fun case ->
      let report = Comfort.Difftest.run_case testbeds case in
      List.iter
        (fun (d : Comfort.Difftest.deviation) ->
          incr deviations;
          Printf.printf "deviation on %s: %s (expected %s)\n"
            (Engines.Engine.testbed_id d.Comfort.Difftest.d_testbed)
            d.Comfort.Difftest.d_actual d.Comfort.Difftest.d_expected;
          Jsinterp.Quirk.Set.iter
            (fun q ->
              Printf.printf "  -> ground-truth bug: %s\n" (Jsinterp.Quirk.to_string q))
            d.Comfort.Difftest.d_fired)
        report.Comfort.Difftest.cr_deviations)
    (tc :: mutants);
  if !deviations = 0 then
    print_endline
      "all engines agreed on every case (typical: most cases pass; run the\n\
       fuzz campaign in examples/conformance_hunt.ml to find bugs at scale)"
