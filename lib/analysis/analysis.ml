(* Screening façade over the scope resolver, early-error checker and lint;
   see the interface for the policy rationale. *)

module Scope = Scope
module Early_errors = Early_errors
module Lint = Lint
module Reach = Reach

type verdict = Keep | Repair of string | Drop of string

type diagnostics = {
  d_free : string list;
  d_errors : Early_errors.error list;
  d_strict_only : Early_errors.error list;
  d_lint : Lint.finding list;
}

let verdict_to_string = function
  | Keep -> "keep"
  | Repair r -> "repair:" ^ r
  | Drop r -> "drop:" ^ r

let analyze ?strict (p : Jsast.Ast.program) : diagnostics =
  let strict_mode =
    match strict with Some s -> s | None -> p.Jsast.Ast.prog_strict
  in
  let errors = Early_errors.check ~strict:strict_mode p in
  let strict_only =
    if strict_mode then []
    else
      List.filter
        (fun e -> not (List.mem e errors))
        (Early_errors.check ~strict:true p)
  in
  {
    d_free = Scope.free_variables p;
    d_errors = errors;
    d_strict_only = strict_only;
    d_lint = Lint.lint p;
  }

let verdict_of (d : diagnostics) : verdict =
  match d.d_errors with
  | e :: _ -> Drop (Early_errors.rule_to_string e.Early_errors.ee_rule)
  | [] -> (
      let nondet =
        List.find_map
          (function Lint.Nondeterministic api -> Some api | _ -> None)
          d.d_lint
      in
      match nondet with
      | Some api -> Drop ("nondeterministic:" ^ api)
      | None ->
          if List.mem Lint.No_observable_output d.d_lint then
            Drop "no-observable-output"
          else
            (* unbound names are repairable; everything else was fatal *)
            match d.d_free with
            | [] -> Keep
            | free -> Repair ("unbound:" ^ String.concat "," free))

let screen_program ?strict (p : Jsast.Ast.program) : verdict * diagnostics =
  let d = analyze ?strict p in
  (verdict_of d, d)

let screen ?strict (src : string) : (verdict * diagnostics, string) result =
  match Jsparse.Parser.check_syntax src with
  | Ok p -> Ok (screen_program ?strict p)
  | Error (msg, line) -> Error (Printf.sprintf "%s (line %d)" msg line)

let bind_free ?(value = fun _ -> Jsast.Builder.int 1)
    (p : Jsast.Ast.program) : Jsast.Ast.program =
  match Scope.free_variables p with
  | [] -> p
  | free ->
      let decls = List.map (fun n -> Jsast.Builder.var n (value n)) free in
      { p with Jsast.Ast.prog_body = decls @ p.Jsast.Ast.prog_body }
