(** Semantic static analysis over generated programs — the screening pass
    that sits between generation and differential execution.

    A multi-engine differential run is the expensive step of the pipeline;
    this pass rejects or repairs the programs that cannot possibly expose a
    conformance bug before any testbed executes them:

    - spec-invalid programs the reference parser happens to accept
      ({!Early_errors}): every conforming engine rejects them identically,
      so they carry no differential signal;
    - nondeterministic or observably-inert programs ({!Lint}): they poison
      or starve the majority vote;
    - programs with unbound identifiers ({!Scope}): they die on an
      immediate [ReferenceError] — but are repairable by synthesizing
      bindings, so they earn [Repair] rather than [Drop].

    Strict-only early errors never cause a [Drop] of sloppy code: under a
    strict testbed those programs make conforming front ends disagree with
    the quirky ones, which is exactly the signal the campaign wants. *)

module Scope = Scope
module Early_errors = Early_errors
module Lint = Lint
module Reach = Reach

(** The screening verdict. [Repair]/[Drop] carry a machine-readable reason
    (e.g. ["unbound:a,b"], ["nondeterministic:Math.random"],
    ["no-observable-output"], or an early-error rule name). *)
type verdict = Keep | Repair of string | Drop of string

type diagnostics = {
  d_free : string list;
      (** identifiers needing a synthesized binding (builtins excluded) *)
  d_errors : Early_errors.error list;
      (** early errors under the program's own mode *)
  d_strict_only : Early_errors.error list;
      (** additional errors a strict testbed's front end would raise —
          reported for diagnosis, never grounds for dropping sloppy code *)
  d_lint : Lint.finding list;
}

val verdict_to_string : verdict -> string

(** Full diagnostics for a parsed program. [strict] defaults to the
    program's own ["use strict"] prologue. *)
val analyze : ?strict:bool -> Jsast.Ast.program -> diagnostics

(** Screen a parsed program. *)
val screen_program :
  ?strict:bool -> Jsast.Ast.program -> verdict * diagnostics

(** Parse and screen a source string; [Error] is a parser diagnostic. *)
val screen : ?strict:bool -> string -> (verdict * diagnostics, string) result

(** [bind_free ?value p] prepends [var n = value n] for every free
    variable of [p] — the repair for [Repair "unbound:..."] verdicts.
    [value] defaults to a small constant. *)
val bind_free :
  ?value:(string -> Jsast.Ast.expr) -> Jsast.Ast.program -> Jsast.Ast.program
