(* ECMA-262 early errors (a practical slice).

   Scope-level violations (redeclaration, const assignment, TDZ) come from
   {!Scope.resolve}; this module adds the control-flow placement rules
   (break/continue/return/labels), which need syntactic context rather
   than a binding table, and the strict-mode restrictions. *)

open Jsast
open Ast

type rule =
  | R_duplicate_lexical
  | R_const_assign
  | R_tdz
  | R_break_outside
  | R_continue_outside
  | R_unknown_label
  | R_return_outside
  | R_strict_dup_params
  | R_strict_delete

type error = { ee_rule : rule; ee_msg : string }

let rule_to_string = function
  | R_duplicate_lexical -> "duplicate-lexical-declaration"
  | R_const_assign -> "assignment-to-const"
  | R_tdz -> "use-before-declaration"
  | R_break_outside -> "break-outside-loop"
  | R_continue_outside -> "continue-outside-loop"
  | R_unknown_label -> "unknown-label"
  | R_return_outside -> "return-outside-function"
  | R_strict_dup_params -> "strict-duplicate-params"
  | R_strict_delete -> "strict-delete-unqualified"

let of_scope_issue (i : Scope.issue) : error =
  match i with
  | Scope.Duplicate_decl n ->
      { ee_rule = R_duplicate_lexical; ee_msg = Scope.issue_to_string i ^ " — " ^ n ^ " redeclared in the same scope" }
  | Scope.Const_assign _ ->
      { ee_rule = R_const_assign; ee_msg = Scope.issue_to_string i }
  | Scope.Tdz_use _ -> { ee_rule = R_tdz; ee_msg = Scope.issue_to_string i }

(* --- placement of break / continue / return / labels --- *)

type ctx = {
  c_in_function : bool;
  c_in_loop : bool;
  c_in_switch : bool;
  c_labels : (string * bool) list;  (* label, labels-an-iteration-statement *)
}

let top_ctx =
  { c_in_function = false; c_in_loop = false; c_in_switch = false; c_labels = [] }

let func_ctx = { top_ctx with c_in_function = true }

let is_iteration (s : stmt) =
  match s.s with
  | While _ | Do_while _ | For _ | For_in _ | For_of _ -> true
  | _ -> false

let placement_errors (p : program) : error list =
  let errs = ref [] in
  let err rule msg = errs := { ee_rule = rule; ee_msg = msg } :: !errs in
  let rec stmt (c : ctx) (s : stmt) : unit =
    match s.s with
    | Expr_stmt x | Throw x -> expr x
    | Var_decl (_, decls) ->
        List.iter (fun (_, i) -> Option.iter expr i) decls
    | Func_decl f -> func f
    | Return _ ->
        if not c.c_in_function then
          err R_return_outside "return outside a function body"
    | If (cd, a, b) ->
        expr cd;
        stmt c a;
        Option.iter (stmt c) b
    | Block body -> List.iter (stmt c) body
    | For (init, cond, upd, body) ->
        (match init with
        | Some (FI_decl (_, decls)) ->
            List.iter (fun (_, i) -> Option.iter expr i) decls
        | Some (FI_expr x) -> expr x
        | None -> ());
        Option.iter expr cond;
        Option.iter expr upd;
        stmt { c with c_in_loop = true } body
    | For_in (_, _, obj, body) | For_of (_, _, obj, body) ->
        expr obj;
        stmt { c with c_in_loop = true } body
    | While (cd, body) ->
        expr cd;
        stmt { c with c_in_loop = true } body
    | Do_while (body, cd) ->
        stmt { c with c_in_loop = true } body;
        expr cd
    | Break None ->
        if not (c.c_in_loop || c.c_in_switch) then
          err R_break_outside "break outside a loop or switch"
    | Break (Some l) ->
        if not (List.mem_assoc l c.c_labels) then
          err R_unknown_label ("break to undefined label '" ^ l ^ "'")
    | Continue None ->
        if not c.c_in_loop then
          err R_continue_outside "continue outside a loop"
    | Continue (Some l) -> (
        match List.assoc_opt l c.c_labels with
        | Some true -> ()
        | Some false ->
            err R_unknown_label
              ("continue to label '" ^ l ^ "' which does not label a loop")
        | None -> err R_unknown_label ("continue to undefined label '" ^ l ^ "'"))
    | Try (b, h, f) ->
        List.iter (stmt c) b;
        Option.iter (fun (_, hb) -> List.iter (stmt c) hb) h;
        Option.iter (List.iter (stmt c)) f
    | Switch (d, cases) ->
        expr d;
        List.iter
          (fun (ce, body) ->
            Option.iter expr ce;
            List.iter (stmt { c with c_in_switch = true }) body)
          cases
    | Labeled (l, body) ->
        (* the label is in scope inside the labeled statement; continue is
           only legal towards a label on an iteration statement *)
        let rec target (s : stmt) =
          match s.s with Labeled (_, inner) -> target inner | _ -> s
        in
        stmt { c with c_labels = (l, is_iteration (target body)) :: c.c_labels } body
    | Empty | Debugger -> ()
  and expr (x : expr) : unit =
    match x.e with
    | Lit _ | Ident _ | This -> ()
    | Array_lit elems -> List.iter (Option.iter expr) elems
    | Object_lit props ->
        List.iter
          (fun (pn, v) ->
            (match pn with PN_computed k -> expr k | _ -> ());
            expr v)
          props
    | Func f | Arrow f -> func f
    | Unary (_, a) | Update (_, _, a) -> expr a
    | Binary (_, a, b) | Logical (_, a, b) | Assign (_, a, b) | Seq (a, b) ->
        expr a;
        expr b
    | Cond (a, b, cc) ->
        expr a;
        expr b;
        expr cc
    | Call (f, args) | New (f, args) ->
        expr f;
        List.iter expr args
    | Member (o, Pfield _) -> expr o
    | Member (o, Pindex i) ->
        expr o;
        expr i
    | Template parts ->
        List.iter (function Tstr _ -> () | Tsub s -> expr s) parts
  and func (f : func) : unit = List.iter (stmt func_ctx) f.body in
  List.iter (stmt top_ctx) p.prog_body;
  List.rev !errs

(* --- strict-mode restrictions --- *)

let dup_params (params : string list) : string option =
  let rec go seen = function
    | [] -> None
    | p :: rest -> if List.mem p seen then Some p else go (p :: seen) rest
  in
  go [] params

let strict_errors (p : program) : error list =
  let errs = ref [] in
  let err rule msg = errs := { ee_rule = rule; ee_msg = msg } :: !errs in
  let check_params (f : func) =
    match dup_params f.params with
    | Some name ->
        err R_strict_dup_params
          ("duplicate parameter '" ^ name ^ "' in strict code")
    | None -> ()
  in
  Visit.iter_program
    ~fe:(fun x ->
      match x.e with
      | Func f | Arrow f -> check_params f
      | Unary (Udelete, { e = Ident n; _ }) ->
          err R_strict_delete ("delete of unqualified name '" ^ n ^ "'")
      | _ -> ())
    ~fs:(fun s -> match s.s with Func_decl f -> check_params f | _ -> ())
    p;
  List.rev !errs

let check ?strict (p : program) : error list =
  let strict = Option.value strict ~default:p.prog_strict in
  let scoped = List.map of_scope_issue (Scope.resolve p).Scope.res_issues in
  scoped @ placement_errors p @ (if strict then strict_errors p else [])
