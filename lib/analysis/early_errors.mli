(** A useful slice of ECMA-262 early errors.

    These are programs the reference parser accepts but a conforming
    engine must reject (or that are guaranteed dead on arrival): lexical
    redeclarations, assignment to [const], TDZ uses, [break]/[continue]
    outside an iteration statement, [return] outside a function, unknown
    labels, and — when the code is strict — duplicate parameters and
    [delete] of an unqualified name.

    Strict-only rules are applied only when [strict] holds: in sloppy
    code those constructs are legal, and under a strict testbed they are
    rejected by conforming front ends at parse time — that disagreement is
    differential signal (the seeded strict-parser quirks), not dead
    weight, so the screening pass must not eat it. *)

type rule =
  | R_duplicate_lexical
  | R_const_assign
  | R_tdz
  | R_break_outside        (** [break] outside loop or switch *)
  | R_continue_outside     (** [continue] outside a loop *)
  | R_unknown_label        (** break/continue to an unbound or non-loop label *)
  | R_return_outside
  | R_strict_dup_params
  | R_strict_delete        (** [delete x] on an unqualified name *)

type error = { ee_rule : rule; ee_msg : string }

val rule_to_string : rule -> string

(** [check ?strict p] — [strict] defaults to the program's own
    ["use strict"] prologue. *)
val check : ?strict:bool -> Jsast.Ast.program -> error list
