(* Determinism and triviality lint; see the interface for the rationale. *)

open Jsast
open Ast

type finding =
  | Nondeterministic of string
  | No_observable_output

let finding_to_string = function
  | Nondeterministic api -> "nondeterministic call to " ^ api
  | No_observable_output -> "no observable output"

(* Wall-clock or RNG reads that make output run-dependent. [new Date(v)]
   with arguments is a fixed instant and stays allowed. *)
let nondet_api (x : expr) : string option =
  match x.e with
  | Call (f, _) -> (
      match Visit.callee_path f with
      | Some [ "Math"; "random" ] -> Some "Math.random"
      | Some [ "Date"; "now" ] -> Some "Date.now"
      | Some [ "Date" ] -> Some "Date()"
      | _ -> None)
  | New ({ e = Ident "Date"; _ }, []) -> Some "new Date()"
  | _ -> None

let lint (p : program) : finding list =
  let nondet = ref [] in
  let has_call = ref false in
  let has_throw = ref false in
  Visit.iter_program
    ~fe:(fun x ->
      (match x.e with Call _ | New _ -> has_call := true | _ -> ());
      match nondet_api x with
      | Some api when not (List.mem api !nondet) -> nondet := api :: !nondet
      | _ -> ())
    ~fs:(fun s -> match s.s with Throw _ -> has_throw := true | _ -> ())
    p;
  let findings = List.rev_map (fun api -> Nondeterministic api) !nondet in
  if (not !has_call) && not !has_throw then findings @ [ No_observable_output ]
  else findings
