(** Determinism and triviality lint.

    Differential testing votes on observable behaviour, so two classes of
    program are dead weight before any engine runs:

    - nondeterministic programs ([Math.random], wall-clock [Date] reads):
      testbeds can legitimately disagree, poisoning the majority vote;
    - programs with no observable effect: nothing is printed and nothing
      can throw, so every testbed produces the empty signature and no
      conformance deviation can surface.

    The observability test is a conservative syntactic approximation: a
    program is flagged only when it contains no call (nothing can reach
    [print], the harness's only output channel, and no API can throw) and
    no [throw] statement. *)

type finding =
  | Nondeterministic of string  (** offending API, e.g. ["Math.random"] *)
  | No_observable_output

val finding_to_string : finding -> string

val lint : Jsast.Ast.program -> finding list
