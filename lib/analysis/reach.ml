(* Static quirk-reachability: a conservative over-approximation of the
   checkpoint ids a program can consult at run time.

   Every conformance-relevant decision in the interpreter funnels through
   [Value.quirk_on] (directly or via [fire]); the consultation sites fall
   into three syntactic families, and the abstract domain here is simply a
   set of quirk ids closed under them:

   - operator sites: a fixed map from AST operators to the codegen /
     optimizer checkpoints their evaluation consults (e.g. every [%]
     consults the mod-sign checkpoint, every [>>>] the unsigned-shift one);
   - builtin API sites: a map from property / global names to the
     checkpoints the named builtin consults ([substr], [defineProperty],
     [test], ...). The map is mention-based — any static occurrence of the
     name, as a field, a string index or a free identifier, contributes —
     because a mentioned method value can flow anywhere and be invoked
     implicitly (e.g. stored as a [toString] and triggered by coercion);
   - dynamic constructs: computed member access with a non-literal key can
     reach any builtin method on any prototype, so it joins with the union
     of every name-mapped checkpoint ([name_top]); if the global object is
     also reachable ([this] / [globalThis]) or [eval] is mentioned, the
     result is the top element (all checkpoints).

   Scoping reuses {!Scope}: a global like [parseInt] or [eval] only
   contributes when some occurrence of the name resolves free — a program
   that rebinds the name everywhere cannot reach the builtin through it
   (members and string indices are still counted unconditionally).

   Soundness is what the dynamic audit ([--audit-reach]) asserts: for every
   execution, the static set computed here is a superset of the run's
   touched set. Precision only costs sharing/bucketing efficiency, never
   correctness — the consumers (class seeding in [Engines.Engine.Exec],
   checkpoint folding in [Jsinterp.Compile]) all degrade gracefully. *)

open Jsast.Ast
module Q = Quirkdef

let top : Q.Set.t = Q.Set.of_list Q.all
let is_top (s : Q.Set.t) = Q.Set.cardinal s = List.length Q.all

(* --- the builtin-name map --- *)

(* The three regex-semantics checkpoints are consulted together at match
   time, from every matching entry point (test/exec/split/replace/match/
   search). *)
let regex3 =
  [
    Q.Q_regex_dot_matches_newline;
    Q.Q_regex_ignorecase_broken;
    Q.Q_regex_class_negation_broken;
  ]

let replace_quirks =
  [
    Q.Q_replace_dollar_group_literal;
    Q.Q_replace_fn_missing_offset;
    Q.Q_replace_undefined_search_noop;
    Q.Q_replace_empty_pattern_skips;
  ]
  @ regex3

(* [test]/[exec] update [lastIndex] through the guarded setter on g-flagged
   regexes in addition to running the matcher. *)
let regex_use = Q.Q_regexp_lastindex_nonwritable_silent :: regex3

let typed_ctor_quirks =
  [ Q.Q_uint32array_fractional_length_typeerror; Q.Q_typedarray_oob_write_crash ]

let dataview_quirks = [ Q.Q_dataview_no_bounds_check ]

(* What a name mention can reach. [`Top] is [eval]: evaluated code is
   arbitrary, so every checkpoint is reachable through it. *)
type entry = Quirks of Q.t list | Top

let dataview_names =
  List.concat_map
    (fun op ->
      List.map
        (fun ty -> op ^ ty)
        [
          "Int8"; "Uint8"; "Int16"; "Uint16"; "Int32"; "Uint32"; "Float32";
          "Float64";
        ])
    [ "get"; "set" ]

let name_table : (string * entry) list =
  [
    ("eval", Top);
    (* String.prototype *)
    ("substr", Quirks [ Q.Q_substr_undefined_length_empty ]);
    ("charAt", Quirks [ Q.Q_charat_negative_wraps ]);
    ( "indexOf",
      Quirks [ Q.Q_string_indexof_fromindex_ignored; Q.Q_array_indexof_nan_found ]
    );
    ("lastIndexOf", Quirks [ Q.Q_lastindexof_nan_zero ]);
    ("startsWith", Quirks [ Q.Q_startswith_position_ignored ]);
    ("slice", Quirks [ Q.Q_slice_negative_start_zero ]);
    ("trim", Quirks [ Q.Q_trim_missing_vt ]);
    ("repeat", Quirks [ Q.Q_repeat_negative_empty ]);
    ("padStart", Quirks [ Q.Q_padstart_overlong_truncates ]);
    ("split", Quirks (Q.Q_split_regexp_anchor_bug :: regex3));
    ("replace", Quirks replace_quirks);
    ("match", Quirks regex3);
    ("search", Quirks regex3);
    ("normalize", Quirks [ Q.Q_normalize_empty_crash ]);
    ("big", Quirks [ Q.Q_string_big_null_no_typeerror ]);
    (* RegExp.prototype *)
    ("test", Quirks regex_use);
    ("exec", Quirks regex_use);
    ("compile", Quirks [ Q.Q_regexp_lastindex_nonwritable_silent ]);
    (* Array.prototype; stores through [push]/[fill] reach the element
       store and its relocation-cost checkpoint *)
    ("sort", Quirks [ Q.Q_array_sort_numeric_default ]);
    ("splice", Quirks [ Q.Q_splice_negative_delcount_deletes ]);
    ("includes", Quirks [ Q.Q_array_includes_strict_nan ]);
    ( "unshift",
      Quirks [ Q.Q_unshift_returns_undefined; Q.Q_join_prints_null_undefined ] );
    ("join", Quirks [ Q.Q_join_prints_null_undefined ]);
    ("reduce", Quirks [ Q.Q_reduce_empty_returns_undefined ]);
    ("flat", Quirks [ Q.Q_flat_ignores_depth ]);
    ( "fill",
      Quirks
        [
          Q.Q_array_fill_skips_last;
          Q.Q_typedarray_fill_no_coerce;
          Q.Q_array_reverse_fill_quadratic;
          Q.Q_uint8clamped_wraps;
        ] );
    ( "push",
      Quirks [ Q.Q_array_reverse_fill_quadratic; Q.Q_uint8clamped_wraps ] );
    (* Number *)
    ( "toString",
      Quirks [ Q.Q_tostring_radix_no_rangeerror; Q.Q_join_prints_null_undefined ]
    );
    ("toFixed", Quirks [ Q.Q_tofixed_no_rangeerror ]);
    ("toPrecision", Quirks [ Q.Q_toprecision_zero_accepted ]);
    ("parseInt", Quirks [ Q.Q_parseint_no_hex_prefix ]);
    ("parseFloat", Quirks [ Q.Q_parsefloat_trailing_nan ]);
    ("isInteger", Quirks [ Q.Q_number_isinteger_coerces ]);
    (* Object *)
    ( "freeze",
      Quirks
        [ Q.Q_freeze_array_elements_writable; Q.Q_seal_string_object_crash ] );
    ("seal", Quirks [ Q.Q_seal_string_object_crash ]);
    ("keys", Quirks [ Q.Q_keys_includes_nonenumerable ]);
    ("getOwnPropertyNames", Quirks [ Q.Q_getownpropertynames_sorted ]);
    ( "defineProperty",
      Quirks
        [
          Q.Q_defineproperty_defaults_writable;
          Q.Q_defineproperty_array_length_no_typeerror;
          Q.Q_array_reverse_fill_quadratic;
          Q.Q_uint8clamped_wraps;
        ] );
    ( "assign",
      Quirks
        [
          Q.Q_assign_skips_numeric_keys;
          Q.Q_array_reverse_fill_quadratic;
          Q.Q_uint8clamped_wraps;
        ] );
    ("hasOwnProperty", Quirks [ Q.Q_hasownproperty_walks_proto ]);
    (* JSON *)
    ( "stringify",
      Quirks
        [ Q.Q_json_stringify_undefined_string; Q.Q_json_stringify_nan_literal ]
    );
    ("parse", Quirks [ Q.Q_json_parse_trailing_comma ]);
    (* TypedArray / DataView *)
    ("set", Quirks [ Q.Q_typedarray_set_string_typeerror ]);
    ("RegExp", Quirks regex_use);
    ("Uint8Array", Quirks typed_ctor_quirks);
    ("Int8Array", Quirks typed_ctor_quirks);
    ("Uint16Array", Quirks typed_ctor_quirks);
    ("Int16Array", Quirks typed_ctor_quirks);
    ("Uint32Array", Quirks typed_ctor_quirks);
    ("Int32Array", Quirks typed_ctor_quirks);
    ("Float32Array", Quirks typed_ctor_quirks);
    ("Float64Array", Quirks typed_ctor_quirks);
    ("Uint8ClampedArray", Quirks (Q.Q_uint8clamped_wraps :: typed_ctor_quirks));
    ("DataView", Quirks dataview_quirks);
  ]
  @ List.map (fun n -> (n, Quirks dataview_quirks)) dataview_names

let lookup_name : string -> entry option =
  let tbl = Hashtbl.create 97 in
  List.iter (fun (n, e) -> Hashtbl.replace tbl n e) name_table;
  fun n -> Hashtbl.find_opt tbl n

(* Join of every name-mapped checkpoint: what a computed member access with
   a dynamic key can reach without the global object. Builtins that live
   only on the global object ([eval], [parseInt], the constructors) are
   still included — conservative, and they are reachable through prototype
   [constructor] chains anyway. Still a strict subset of [top]: operator,
   optimizer, strict-mode and parse-stage checkpoints need their own
   syntax. *)
let name_top : Q.Set.t =
  List.fold_left
    (fun acc (_, e) ->
      match e with Quirks qs -> Q.Set.union acc (Q.Set.of_list qs) | Top -> acc)
    Q.Set.empty name_table

(* --- operator sites --- *)

let binop_quirks : binop -> Q.t list = function
  | Add -> [ Q.Q_codegen_plus_bool_concat; Q.Q_opt_int_add_overflow_wraps ]
  | Mod -> [ Q.Q_codegen_mod_sign_wrong ]
  | Shl -> [ Q.Q_codegen_shift_count_unmasked ]
  | Ushr -> [ Q.Q_codegen_ushr_signed ]
  | Eq | Neq -> [ Q.Q_codegen_null_eq_undefined_false ]
  | Lt | Gt | Le | Ge -> [ Q.Q_codegen_string_relational_numeric ]
  | Sub | Mul | Div | Exp | StrictEq | StrictNeq | BitAnd | BitOr | BitXor
  | Shr | Instanceof | In ->
      []

(* Does evaluating this operator coerce an operand with ToPrimitive /
   ToString / ToNumber? Coercing an array (or arguments object) runs
   [Array.prototype.toString] -> [join], which consults the
   join-prints-null-undefined checkpoint per elided element. *)
let binop_coerces : binop -> bool = function
  | StrictEq | StrictNeq | Instanceof -> false
  | _ -> true

(* Element stores ([a[i] = v], [a[i] += v], [a[i]++]): the dense store
   consults the relocation-cost model, a boolean key consults the
   QuickJS append deviation, and a typed-array target coerces the value. *)
let index_store_quirks =
  [
    Q.Q_array_reverse_fill_quadratic;
    Q.Q_bool_prop_appends_to_array;
    Q.Q_uint8clamped_wraps;
  ]

(* --- the traversal --- *)

type acc = {
  mutable set : Q.Set.t;
  mutable saw_top : bool;        (* eval mentioned / global + dynamic key *)
  mutable dyn_index : bool;      (* computed member with non-literal key *)
  mutable global_obj : bool;     (* [this] or [globalThis] reachable *)
  mutable coerces : bool;        (* any ToPrimitive-capable construct *)
  mutable any_func : bool;       (* a user function is defined *)
  mutable any_loop : bool;
  mutable compound_add : bool;   (* [+=] / [++]-style string append *)
  mutable strict_body : bool;    (* some function body opts into strict *)
  mutable writes : string list;  (* identifiers targeted by an assignment *)
}

let add acc qs = acc.set <- Q.Set.union acc.set (Q.Set.of_list qs)

let mention acc n =
  match lookup_name n with
  | Some (Quirks qs) -> add acc qs
  | Some Top -> acc.saw_top <- true
  | None -> ()

let body_opts_strict (body : stmt list) =
  match body with
  | { s = Expr_stmt { e = Lit (Lstr "use strict"); _ }; _ } :: _ -> true
  | _ -> false

let store_target acc (target : expr) =
  match target.e with
  | Ident n -> acc.writes <- n :: acc.writes
  | Member (_, Pindex { e = Lit (Lstr k); _ }) ->
      mention acc k;
      add acc index_store_quirks
  | Member (_, Pindex _) -> add acc index_store_quirks
  | Member (_, Pfield _) -> ()
  | _ -> ()

let visit_expr acc (x : expr) =
  match x.e with
  | Lit (Lregexp _) -> add acc regex_use
  | Lit _ -> ()
  | Ident _ -> ()  (* free-name contributions come from [Scope.resolve] *)
  | This -> acc.global_obj <- true
  | Member (_, Pfield n) -> mention acc n
  | Member (_, Pindex { e = Lit (Lstr k); _ }) -> mention acc k
  | Member (_, Pindex { e = Lit _; _ }) -> ()
  | Member (_, Pindex _) ->
      acc.dyn_index <- true;
      acc.coerces <- true
  | Unary (Uneg, _) ->
      add acc [ Q.Q_codegen_neg_zero_positive ];
      acc.coerces <- true
  | Unary ((Uplus | Ubnot), _) -> acc.coerces <- true
  | Unary (Udelete, { e = Member _; _ }) ->
      add acc [ Q.Q_delete_nonconfigurable_succeeds ];
      acc.coerces <- true
  | Unary _ -> ()
  | Binary (op, _, _) ->
      add acc (binop_quirks op);
      if binop_coerces op then acc.coerces <- true
  | Assign (op, lhs, _) ->
      (match op with
      | Some op ->
          add acc (binop_quirks op);
          if binop_coerces op then acc.coerces <- true;
          if op = Add then acc.compound_add <- true
      | None -> ());
      store_target acc lhs
  | Update (_, _, tgt) ->
      acc.coerces <- true;
      store_target acc tgt
  | Call _ | New _ -> acc.coerces <- true
  | Template _ -> acc.coerces <- true
  | Object_lit props ->
      List.iter
        (fun (pn, _) ->
          match pn with
          | PN_computed _ -> acc.coerces <- true
          | PN_ident n | PN_str n -> ignore n
          | PN_num _ -> ())
        props
  | Func f ->
      acc.any_func <- true;
      if f.fname <> None then add acc [ Q.Q_named_funcexpr_binding_mutable ];
      if body_opts_strict f.body then acc.strict_body <- true
  | Arrow f ->
      acc.any_func <- true;
      if body_opts_strict f.body then acc.strict_body <- true
  | Array_lit _ | Logical _ | Cond _ | Seq _ -> ()

let visit_stmt acc (st : stmt) =
  match st.s with
  | For _ | While _ | Do_while _ -> acc.any_loop <- true
  | For_in (k, n, _, _) | For_of (k, n, _, _) ->
      acc.any_loop <- true;
      if k = None then acc.writes <- n :: acc.writes
  | Func_decl f ->
      acc.any_func <- true;
      if body_opts_strict f.body then acc.strict_body <- true
  | _ -> ()

let checkpoints ?(strict = false) (p : program) : Q.Set.t =
  let acc =
    {
      set = Q.Set.empty;
      saw_top = false;
      dyn_index = false;
      global_obj = false;
      coerces = false;
      any_func = false;
      any_loop = false;
      compound_add = false;
      strict_body = false;
      writes = [];
    }
  in
  Jsast.Visit.iter_program ~fe:(visit_expr acc) ~fs:(visit_stmt acc) p;
  let res = Scope.resolve p in
  let free = res.Scope.res_free_all in
  List.iter (mention acc) free;
  if List.mem "globalThis" free then acc.global_obj <- true;
  if acc.saw_top || (acc.dyn_index && acc.global_obj) then top
  else begin
    if acc.dyn_index then acc.set <- Q.Set.union acc.set name_top;
    if acc.coerces then add acc [ Q.Q_join_prints_null_undefined ];
    if acc.compound_add && acc.any_loop then
      add acc [ Q.Q_opt_loop_strconcat_drops ];
    (* strict-mode checkpoints: reachable when the testbed forces strict
       mode, the program opts in, or some function body does *)
    let strict_possible = strict || p.prog_strict || acc.strict_body in
    if strict_possible then begin
      if acc.any_func then add acc [ Q.Q_strict_this_is_global ];
      (* an undeclared-assignment consultation needs a write whose target
         resolves to no binding *)
      if List.exists (fun n -> List.mem n free) acc.writes then
        add acc [ Q.Q_strict_undeclared_assign_silent ]
    end;
    acc.set
  end

let checkpoints_src ?strict (src : string) : Q.Set.t =
  match Jsparse.Parser.check_syntax src with
  | Ok p -> checkpoints ?strict p
  | Error _ -> Q.Set.empty
