(** Static quirk-reachability analysis (DESIGN.md §11).

    Computes, per program, a conservative over-approximation of the quirk
    checkpoints ([Quirkdef.t]) an execution can consult — the set
    [Value.quirk_on] records into a run's touched set. The abstract domain
    is a set of checkpoint ids with [top] (all checkpoints) as the value of
    dynamic constructs the analysis cannot bound ([eval], computed member
    access with the global object in reach).

    Soundness contract (asserted dynamically by [--audit-reach]): for every
    execution of the program under any quirk configuration, fuel budget and
    mode compatible with the [strict] argument,
    [checkpoints p] ⊇ the execution's touched set.

    Consumers: [Engines.Engine.Exec] keys equivalence-class buckets on the
    set's intersection with each testbed's quirks (zero-probe class
    seeding); [Jsinterp.Compile] constant-folds consultation sites whose
    checkpoint is statically unreachable, with [Deopt_to_tree] as the
    escape hatch. *)

(** All checkpoint ids — the top element of the domain. *)
val top : Quirkdef.Set.t

val is_top : Quirkdef.Set.t -> bool

(** The join of every builtin-name-mapped checkpoint: what a computed
    member access with a dynamic key can reach without the global object.
    A strict subset of [top] (operator, optimizer, strict-mode and
    parse-stage checkpoints all need their own syntax). *)
val name_top : Quirkdef.Set.t

(** [checkpoints ?strict p] is the static touch-set of [p]. [strict]
    (default [false]) widens the result with the strict-mode-only
    checkpoints; it must be [true] whenever the program may execute under
    forced strict mode. A program-level ["use strict"] prologue or one in
    any function body widens regardless of the argument. *)
val checkpoints : ?strict:bool -> Jsast.Ast.program -> Quirkdef.Set.t

(** Parse-and-analyze convenience for diagnostics ([comfort analyze]);
    returns the empty set when [src] does not parse (a parse-failing case
    consults nothing at run time). *)
val checkpoints_src : ?strict:bool -> string -> Quirkdef.Set.t
