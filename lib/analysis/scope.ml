(* Lexical scope resolution.

   One pass over the AST with an explicit scope stack. Entering a function
   (or the program) first hoists its [var] and function declarations, then
   pre-registers the body's top-level [let]/[const] names as
   not-yet-initialised — they shadow outer bindings from the start of the
   block, which is what makes TDZ references detectable lexically. Blocks,
   catch clauses, for-heads and switch bodies each push their own frame.

   The approximation is lexical, matching what a linter (and an engine's
   early-error phase) can decide without running the program: a reference
   that resolves to a not-yet-declared lexical binding is a TDZ use unless
   a function boundary lies between the reference and the binding (the
   function may legitimately be called after the declaration). *)

open Jsast
open Ast

type binding_kind = Bvar | Blet | Bconst | Bfunc | Bparam | Bcatch

type scope_kind = Kprogram | Kfunction | Kblock | Kcatch | Kfor

type binding = { b_name : string; b_kind : binding_kind; b_scope : int }

type issue =
  | Duplicate_decl of string
  | Const_assign of string
  | Tdz_use of string

type resolution = {
  res_scopes : int;
  res_bindings : binding list;
  res_free : string list;
  res_free_all : string list;
  res_issues : issue list;
}

let binding_kind_to_string = function
  | Bvar -> "var"
  | Blet -> "let"
  | Bconst -> "const"
  | Bfunc -> "function"
  | Bparam -> "param"
  | Bcatch -> "catch"

let issue_to_string = function
  | Duplicate_decl n -> "duplicate declaration of '" ^ n ^ "'"
  | Const_assign n -> "assignment to constant '" ^ n ^ "'"
  | Tdz_use n -> "'" ^ n ^ "' used before its let/const declaration"

(* A binding entry; [declared = false] while the lexical declaration has
   not been reached in statement order (its temporal dead zone). *)
type entry = { mutable declared : bool; e_kind : binding_kind }

type frame = {
  f_id : int;
  f_fun : bool;  (* function boundary: program or function body *)
  f_tbl : (string, entry) Hashtbl.t;
}

type st = {
  mutable frames : frame list;  (* innermost first *)
  mutable next_id : int;
  mutable bindings : binding list;  (* reverse declaration order *)
  mutable issues : issue list;      (* reverse order *)
  free_seen : (string, unit) Hashtbl.t;
  mutable free : string list;       (* reverse first-reference order *)
}

let push_frame (t : st) ~(is_fun : bool) : frame =
  let fr = { f_id = t.next_id; f_fun = is_fun; f_tbl = Hashtbl.create 8 } in
  t.next_id <- t.next_id + 1;
  t.frames <- fr :: t.frames;
  fr

let pop_frame (t : st) = t.frames <- List.tl t.frames

let issue (t : st) (i : issue) = t.issues <- i :: t.issues

let is_lexical = function Blet | Bconst -> true | _ -> false

(* Declare [name] in [fr]. Lexical kinds conflict with any existing binding
   of the same scope; var/function conflict only with lexical ones (var/var
   and function/function redeclaration is legal). [declared:false] marks a
   pre-registered lexical still in its TDZ. *)
let declare (t : st) (fr : frame) ?(declared = true) (name : string)
    (kind : binding_kind) : unit =
  (match Hashtbl.find_opt fr.f_tbl name with
  | Some prev when is_lexical kind || is_lexical prev.e_kind ->
      issue t (Duplicate_decl name)
  | _ -> ());
  Hashtbl.replace fr.f_tbl name { declared; e_kind = kind };
  t.bindings <- { b_name = name; b_kind = kind; b_scope = fr.f_id } :: t.bindings

(* The lexical declaration statement has been reached: close its TDZ. *)
let mark_declared (t : st) (name : string) : unit =
  match t.frames with
  | fr :: _ -> (
      match Hashtbl.find_opt fr.f_tbl name with
      | Some e -> e.declared <- true
      | None -> ())
  | [] -> ()

(* Resolve a reference against the scope chain. *)
let reference (t : st) ~(write : bool) (name : string) : unit =
  let rec look frames crossed_fun =
    match frames with
    | [] ->
        if not (Hashtbl.mem t.free_seen name) then begin
          Hashtbl.replace t.free_seen name ();
          t.free <- name :: t.free
        end
    | fr :: rest -> (
        match Hashtbl.find_opt fr.f_tbl name with
        | Some e ->
            if (not e.declared) && not crossed_fun then issue t (Tdz_use name);
            if write && e.e_kind = Bconst then issue t (Const_assign name)
        | None -> look rest (crossed_fun || fr.f_fun))
  in
  look t.frames false

(* --- hoisting: [var] and function declarations of a function body,
   stopping at nested function boundaries. The traversal is the shared
   [Jsast.Visit.hoist_stmt] — the same walk the interpreter uses to build
   its environments, so resolver and engine cannot drift. --- *)

let hoist_stmt (t : st) (fr : frame) (s : stmt) : unit =
  Jsast.Visit.hoist_stmt s
    ~on_var:(fun n -> declare t fr n Bvar)
    ~on_func:(fun (_, f) ->
      match f.fname with Some n -> declare t fr n Bfunc | None -> ())

(* Pre-register a block's immediate let/const declarations (their TDZ spans
   the whole block). *)
let prescan_lexicals (t : st) (fr : frame) (body : stmt list) : unit =
  List.iter
    (fun (s : stmt) ->
      match s.s with
      | Var_decl ((Let as k), decls) | Var_decl ((Const as k), decls) ->
          let kind = if k = Let then Blet else Bconst in
          List.iter (fun (n, _) -> declare t fr ~declared:false n kind) decls
      | _ -> ())
    body

(* --- the walk --- *)

let rec walk_expr (t : st) (x : expr) : unit =
  let e = walk_expr t in
  match x.e with
  | Lit _ | This -> ()
  | Ident n -> reference t ~write:false n
  | Array_lit elems -> List.iter (Option.iter e) elems
  | Object_lit props ->
      List.iter
        (fun (pn, v) ->
          (match pn with PN_computed k -> e k | _ -> ());
          e v)
        props
  | Func f | Arrow f -> walk_func t f
  | Unary (_, a) -> e a
  | Update (_, _, a) -> (
      match a.e with Ident n -> reference t ~write:true n | _ -> e a)
  | Binary (_, a, b) | Logical (_, a, b) | Seq (a, b) ->
      e a;
      e b
  | Assign (_, lhs, rhs) ->
      (match lhs.e with
      | Ident n -> reference t ~write:true n
      | _ -> e lhs);
      e rhs
  | Cond (a, b, c) ->
      e a;
      e b;
      e c
  | Call (f, args) | New (f, args) ->
      e f;
      List.iter e args
  | Member (o, Pfield _) -> e o
  | Member (o, Pindex i) ->
      e o;
      e i
  | Template parts ->
      List.iter (function Tstr _ -> () | Tsub s -> e s) parts

and walk_func (t : st) (f : func) : unit =
  let fr = push_frame t ~is_fun:true in
  (* a named function expression binds its own name inside the body *)
  Option.iter (fun n -> declare t fr n Bfunc) f.fname;
  List.iter (fun p -> Hashtbl.replace fr.f_tbl p { declared = true; e_kind = Bparam }) f.params;
  List.iter
    (fun p -> t.bindings <- { b_name = p; b_kind = Bparam; b_scope = fr.f_id } :: t.bindings)
    f.params;
  List.iter (hoist_stmt t fr) f.body;
  prescan_lexicals t fr f.body;
  List.iter (walk_stmt t) f.body;
  pop_frame t

and walk_block (t : st) (body : stmt list) : unit =
  let fr = push_frame t ~is_fun:false in
  prescan_lexicals t fr body;
  List.iter (walk_stmt t) body;
  pop_frame t

and walk_stmt (t : st) (s : stmt) : unit =
  let e = walk_expr t in
  let st_ = walk_stmt t in
  match s.s with
  | Expr_stmt x -> e x
  | Var_decl (Var, decls) ->
      (* names already hoisted; only the initialisers evaluate here *)
      List.iter (fun (_, init) -> Option.iter e init) decls
  | Var_decl ((Let | Const), decls) ->
      (* each initialiser evaluates before its binding leaves the TDZ,
         so [let x = x] is caught *)
      List.iter
        (fun (n, init) ->
          Option.iter e init;
          mark_declared t n)
        decls
  | Func_decl f -> walk_func t f
  | Return x -> Option.iter e x
  | If (c, a, b) ->
      e c;
      st_ a;
      Option.iter st_ b
  | Block body -> walk_block t body
  | For (init, cond, upd, body) ->
      let fr = push_frame t ~is_fun:false in
      (match init with
      | Some (FI_decl (Var, decls)) ->
          List.iter (fun (_, i) -> Option.iter e i) decls
      | Some (FI_decl ((Let as k), decls)) | Some (FI_decl ((Const as k), decls))
        ->
          let kind = if k = Let then Blet else Bconst in
          List.iter (fun (n, _) -> declare t fr ~declared:false n kind) decls;
          List.iter
            (fun (n, i) ->
              Option.iter e i;
              mark_declared t n)
            decls
      | Some (FI_expr x) -> e x
      | None -> ());
      Option.iter e cond;
      Option.iter e upd;
      st_ body;
      pop_frame t
  | For_in (k, n, obj, body) | For_of (k, n, obj, body) ->
      (* the iterated object evaluates outside the loop binding's scope *)
      e obj;
      (match k with
      | None ->
          reference t ~write:true n;
          st_ body
      | Some Var ->
          (* hoisted already *)
          st_ body
      | Some (Let | Const) ->
          let fr = push_frame t ~is_fun:false in
          declare t fr n (if k = Some Let then Blet else Bconst);
          st_ body;
          pop_frame t)
  | While (c, body) ->
      e c;
      st_ body
  | Do_while (body, c) ->
      st_ body;
      e c
  | Break _ | Continue _ | Empty | Debugger -> ()
  | Throw x -> e x
  | Try (b, h, f) ->
      walk_block t b;
      Option.iter
        (fun (param, hb) ->
          let fr = push_frame t ~is_fun:false in
          declare t fr param Bcatch;
          prescan_lexicals t fr hb;
          List.iter st_ hb;
          pop_frame t)
        h;
      Option.iter (walk_block t) f
  | Switch (d, cases) ->
      e d;
      (* all cases of a switch share one block scope *)
      let fr = push_frame t ~is_fun:false in
      List.iter (fun (_, body) -> prescan_lexicals t fr body) cases;
      List.iter
        (fun (c, body) ->
          Option.iter e c;
          List.iter st_ body)
        cases;
      pop_frame t
  | Labeled (_, body) -> st_ body

let resolve (p : program) : resolution =
  let t =
    {
      frames = [];
      next_id = 0;
      bindings = [];
      issues = [];
      free_seen = Hashtbl.create 16;
      free = [];
    }
  in
  let fr = push_frame t ~is_fun:true in
  List.iter (hoist_stmt t fr) p.prog_body;
  prescan_lexicals t fr p.prog_body;
  List.iter (walk_stmt t) p.prog_body;
  pop_frame t;
  let free_all = List.rev t.free in
  (* keep the first occurrence of each repeated issue *)
  let dedup l =
    let seen = Hashtbl.create 8 in
    List.filter
      (fun i ->
        if Hashtbl.mem seen i then false
        else begin
          Hashtbl.replace seen i ();
          true
        end)
      l
  in
  {
    res_scopes = t.next_id;
    res_bindings = List.rev t.bindings;
    res_free =
      List.filter (fun n -> not (List.mem n Visit.builtin_globals)) free_all;
    res_free_all = free_all;
    res_issues = dedup (List.rev t.issues);
  }

let free_variables (p : program) : string list = (resolve p).res_free
