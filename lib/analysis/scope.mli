(** Lexical scope resolution over {!Jsast.Ast} programs.

    Builds the scope tree the way an engine's early-error phase does:
    [var] declarations and function declarations hoist to the nearest
    enclosing function (or program) scope; [let]/[const] bind in their
    block, are visible throughout it, and references lexically before the
    declaration fall in the temporal dead zone; parameters, named
    function-expression names and catch parameters bind in their own
    function/catch scopes.

    The resolver produces the per-program binding table, the precise
    free-variable set (replacing the scope-insensitive approximation the
    test-data generator used to rely on), and the scope-level spec
    violations (lexical redeclaration, assignment to [const], TDZ use)
    that {!Early_errors} folds into its report. *)

type binding_kind =
  | Bvar    (** [var] declaration, hoisted to function scope *)
  | Blet
  | Bconst
  | Bfunc   (** function declaration or named function expression *)
  | Bparam
  | Bcatch  (** catch clause parameter *)

type scope_kind = Kprogram | Kfunction | Kblock | Kcatch | Kfor

type binding = {
  b_name : string;
  b_kind : binding_kind;
  b_scope : int;  (** id of the scope holding the binding *)
}

(** Spec violations detectable during resolution. *)
type issue =
  | Duplicate_decl of string  (** lexical redeclaration in the same scope *)
  | Const_assign of string    (** assignment or update targeting a const *)
  | Tdz_use of string
      (** reference lexically before the let/const declaration, with no
          intervening function boundary *)

type resolution = {
  res_scopes : int;           (** number of scopes in the program *)
  res_bindings : binding list;  (** declaration order *)
  res_free : string list;
      (** identifiers resolved by no scope and not builtin globals, in
          first-reference order *)
  res_free_all : string list;   (** as [res_free], builtins included *)
  res_issues : issue list;
}

val resolve : Jsast.Ast.program -> resolution

(** [free_variables p] = [(resolve p).res_free]: the names a harness must
    bind for the program to execute without an immediate ReferenceError. *)
val free_variables : Jsast.Ast.program -> string list

val binding_kind_to_string : binding_kind -> string
val issue_to_string : issue -> string
