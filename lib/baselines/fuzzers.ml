(* The five baseline fuzzers of §4.4, behind the same [Campaign.fuzzer]
   interface as Comfort. Each is a faithful miniature of the corresponding
   system's test-case generation strategy:

   - DeepSmith: DNN generation (character-level LM here) + random inputs;
   - Fuzzilli: coverage-guided mutation over a corpus seeded from scratch;
   - CodeAlchemist: semantics-aware assembly of def/use-annotated bricks;
   - DIE: aspect-preserving mutation (types and structure kept);
   - Montage: LM-guided replacement of AST subtrees in seed programs. *)

open Jsast
module B = Builder
module Rng = Cutil.Rng

let mk_case name src =
  Comfort.Testcase.make ~provenance:(Comfort.Testcase.P_fuzzer name) src

(* Synthesize a naive driver for uncalled top-level functions: random
   argument values, print the result. This is the "random input generation
   relying on typing information" the paper ascribes to prior fuzzers. *)
let naive_driver (rng : Rng.t) (p : Ast.program) : Ast.program =
  let funcs =
    List.filter_map
      (fun (st : Ast.stmt) ->
        match st.Ast.s with
        | Ast.Func_decl { fname = Some n; params; _ } -> Some (n, params)
        | Ast.Var_decl (_, [ (n, Some { Ast.e = Ast.Func f; _ }) ]) ->
            Some (n, f.Ast.params)
        | _ -> None)
      p.Ast.prog_body
  in
  let called p name =
    List.exists (fun cs -> cs.Visit.cs_path = [ name ]) (Visit.call_sites p)
  in
  let rand_lit () =
    match Rng.int rng 6 with
    | 0 -> B.int (Rng.int rng 20 - 10)
    | 1 -> B.str (String.init (Rng.int rng 4 + 1) (fun _ -> Char.chr (97 + Rng.int rng 26)))
    | 2 -> B.bool (Rng.bool rng)
    | 3 -> B.array [ B.int (Rng.int rng 9); B.int (Rng.int rng 9) ]
    | 4 -> B.num (Rng.float rng 10.0)
    | _ -> B.undefined ()
  in
  let driver =
    List.concat_map
      (fun (name, params) ->
        if called p name then []
        else
          [
            B.expr_stmt
              (B.call (B.ident "print")
                 [ B.call (B.ident name) (List.map (fun _ -> rand_lit ()) params) ]);
          ])
      funcs
  in
  (* bind leftover free identifiers so the program can execute *)
  let p = { p with Ast.prog_body = p.Ast.prog_body @ driver } in
  match Analysis.Scope.free_variables p with
  | [] -> p
  | free ->
      let decls = List.map (fun n -> B.var n (rand_lit ())) free in
      { p with Ast.prog_body = decls @ p.Ast.prog_body }

(* --- DeepSmith --- *)

let deepsmith ?(seed = 21) () : Comfort.Campaign.fuzzer =
  let rng = Rng.create seed in
  let model = Lazy.force Lm.Model.deepsmith in
  let gen () =
    let header = Rng.pick rng Lm.Js_corpus.seed_headers in
    Lm.Model.generate model rng ~prefix:header ~k:10 ~max_tokens:3000
      ~stop:(Comfort.Generator.brace_stop ())
  in
  {
    Comfort.Campaign.fz_name = "DeepSmith";
    fz_raw = Some (fun n -> List.init n (fun _ -> gen ()));
    fz_batch =
      (fun n ->
        List.init n (fun _ ->
            let src = gen () in
            let src =
              match Mutator.parse_opt src with
              | Some p -> Mutator.to_src (naive_driver rng p)
              | None -> src
            in
            mk_case "DeepSmith" src));
  }

(* --- Fuzzilli --- *)

(* Coverage proxy: the structural/behavioural feature set a successfully
   executed program exhibits. New features admit the mutant to the corpus,
   approximating edge-coverage-guided corpus growth. *)
let features_of (src : string) : string list =
  match Mutator.parse_opt src with
  | None -> []
  | Some p ->
      let feats = ref [] in
      List.iter
        (fun cs -> feats := ("call:" ^ String.concat "." cs.Visit.cs_path) :: !feats)
        (Visit.call_sites p);
      Visit.iter_program
        ~fe:(fun x ->
          match x.Ast.e with
          | Ast.Binary (op, _, _) -> feats := ("op:" ^ Ast.binop_to_string op) :: !feats
          | Ast.Lit (Ast.Lregexp _) -> feats := "regexp" :: !feats
          | _ -> ())
        ~fs:(fun st ->
          let tag =
            match st.Ast.s with
            | Ast.For _ -> "for"
            | Ast.While _ -> "while"
            | Ast.Try _ -> "try"
            | Ast.Switch _ -> "switch"
            | Ast.For_in _ -> "forin"
            | _ -> ""
          in
          if tag <> "" then feats := ("stmt:" ^ tag) :: !feats)
        p;
      !feats

let fuzzilli ?(seed = 22) () : Comfort.Campaign.fuzzer =
  let rng = Rng.create seed in
  let corpus =
    ref (List.filter_map Mutator.parse_opt (Seeds.common @ Seeds.fuzzilli_extra))
  in
  let covered : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun p ->
      List.iter (fun f -> Hashtbl.replace covered f ()) (features_of (Mutator.to_src p)))
    !corpus;
  let mutate_once () =
    let parent = Rng.pick rng !corpus in
    let child =
      match Rng.int rng 4 with
      | 0 -> Mutator.splice rng ~host:parent ~donor:(Rng.pick rng !corpus)
      | 1 -> Mutator.mutate_literal rng parent
      | 2 -> Mutator.mutate_operator rng parent
      | _ -> Mutator.drop_statement rng parent
    in
    let src = Mutator.to_src child in
    (* corpus admission: runs without crashing the reference engine and
       exhibits a new feature *)
    let feats = features_of src in
    let novel = List.exists (fun f -> not (Hashtbl.mem covered f)) feats in
    if novel then begin
      let r = Jsinterp.Run.run ~fuel:50_000 src in
      if r.Jsinterp.Run.r_parsed then begin
        List.iter (fun f -> Hashtbl.replace covered f ()) feats;
        corpus := child :: !corpus
      end
    end;
    src
  in
  {
    Comfort.Campaign.fz_name = "Fuzzilli";
    fz_raw = None;
    fz_batch = (fun n -> List.init n (fun _ -> mk_case "Fuzzilli" (mutate_once ())));
  }

(* --- CodeAlchemist --- *)

(* A brick is a top-level statement tagged with the variables it defines
   and the non-builtin names it uses. *)
type brick = { b_stmt : Ast.stmt; b_defs : string list; b_uses : string list }

let bricks_of_seeds () : brick list =
  List.concat_map
    (fun src ->
      match Mutator.parse_opt src with
      | None -> []
      | Some p ->
          List.map
            (fun (st : Ast.stmt) ->
              let mini = { p with Ast.prog_body = [ st ] } in
              {
                b_stmt = st;
                b_defs = Visit.declared_names mini;
                b_uses = Analysis.Scope.free_variables mini;
              })
            p.Ast.prog_body)
    (Seeds.common @ Seeds.codealchemist_extra)

let codealchemist ?(seed = 23) () : Comfort.Campaign.fuzzer =
  let rng = Rng.create seed in
  let bricks = bricks_of_seeds () in
  let assemble () =
    let defined : (string, unit) Hashtbl.t = Hashtbl.create 8 in
    let chosen = ref [] in
    let target = 3 + Rng.int rng 6 in
    let tries = ref 0 in
    while List.length !chosen < target && !tries < 60 do
      incr tries;
      let b = Rng.pick rng bricks in
      (* def-before-use constraint: every use must already be defined *)
      if List.for_all (Hashtbl.mem defined) b.b_uses then begin
        chosen := B.refresh_stmt b.b_stmt :: !chosen;
        List.iter (fun d -> Hashtbl.replace defined d ()) b.b_defs
      end
    done;
    Mutator.to_src (B.program (List.rev !chosen))
  in
  {
    Comfort.Campaign.fz_name = "CodeAlchemist";
    fz_raw = None;
    fz_batch = (fun n -> List.init n (fun _ -> mk_case "CodeAlchemist" (assemble ())));
  }

(* --- DIE --- *)

let die ?(seed = 24) () : Comfort.Campaign.fuzzer =
  let rng = Rng.create seed in
  let seeds =
    List.filter_map Mutator.parse_opt (Seeds.common @ Seeds.die_extra)
  in
  let mutate_once () =
    let parent = Rng.pick rng seeds in
    let rounds = 1 + Rng.int rng 3 in
    let child = ref parent in
    for _ = 1 to rounds do
      child :=
        if Rng.chance rng 0.7 then
          Mutator.mutate_literal ~preserve_type:true rng !child
        else Mutator.mutate_operator rng !child
    done;
    Mutator.to_src !child
  in
  {
    Comfort.Campaign.fz_name = "DIE";
    fz_raw = None;
    fz_batch = (fun n -> List.init n (fun _ -> mk_case "DIE" (mutate_once ())));
  }

(* --- Montage --- *)

let montage ?(seed = 25) () : Comfort.Campaign.fuzzer =
  let rng = Rng.create seed in
  let model = Lazy.force Lm.Model.comfort in
  let seeds =
    List.filter_map Mutator.parse_opt (Seeds.common @ Seeds.montage_extra)
  in
  (* an LM-generated fragment: the first statement of a fresh sample *)
  let lm_fragment () : Ast.stmt option =
    let header = Rng.pick rng Lm.Js_corpus.seed_headers in
    let src =
      Lm.Model.generate model rng ~prefix:header ~k:10 ~max_tokens:500
        ~stop:(Comfort.Generator.brace_stop ())
    in
    match Mutator.parse_opt src with
    | Some { Ast.prog_body = st :: _; _ } -> Some (B.refresh_stmt st)
    | _ -> None
  in
  let mutate_once () =
    let parent = Rng.pick rng seeds in
    match (lm_fragment (), parent.Ast.prog_body) with
    | Some frag, (_ :: _ as body) ->
        let victim = Rng.int rng (List.length body) in
        let body =
          List.mapi (fun i st -> if i = victim then frag else st) body
        in
        Mutator.to_src { parent with Ast.prog_body = body }
    | _ -> Mutator.to_src parent
  in
  {
    Comfort.Campaign.fz_name = "Montage";
    fz_raw = None;
    fz_batch = (fun n -> List.init n (fun _ -> mk_case "Montage" (mutate_once ())));
  }

let all ?(seed = 20) () : Comfort.Campaign.fuzzer list =
  [
    deepsmith ~seed:(seed + 1) ();
    fuzzilli ~seed:(seed + 2) ();
    codealchemist ~seed:(seed + 3) ();
    die ~seed:(seed + 4) ();
    montage ~seed:(seed + 5) ();
  ]
