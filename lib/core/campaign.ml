(* Fuzzing campaign driver.

   Feeds test cases from a fuzzer into differential testing across a set of
   testbeds, attributes observed deviations to ground-truth bugs (the
   quirks that fired on the deviating engine), de-duplicates repeats with
   the Fig. 6 filter tree, and keeps the discovery timeline that Fig. 8
   plots.

   Testbeds are grouped by mode before voting: a strict-mode engine and a
   sloppy-mode engine can legitimately disagree, so each mode votes among
   its own ranks — this mirrors the paper's 102-testbed setup where bugs
   are reported "under both the normal and the strict modes". *)

open Jsinterp

type fuzzer = {
  fz_name : string;
  fz_batch : int -> Testcase.t list;
      (** produce at least [n] fresh test cases *)
  fz_raw : (int -> string list) option;
      (** raw generator output before any screening/mutation, used for the
          Fig. 9 syntax-passing-rate metric; [None] means the batch output
          is already the raw output (mutation-based fuzzers) *)
}

type discovery = {
  disc_engine : Engines.Registry.engine;
  disc_quirk : Quirk.t;
  disc_case : Testcase.t;
  disc_reduced : string option;
  disc_kind : Difftest.deviation_kind;
  disc_behavior : string;
  disc_at : int;          (** how many cases had run when it was found *)
  disc_version : string;  (** earliest engine version exhibiting the bug *)
  disc_mode : Engines.Engine.mode;
}

type result = {
  cp_fuzzer : string;
  cp_cases_run : int;
  cp_discoveries : discovery list;
  cp_filtered_repeats : int;   (** deviations suppressed by the Fig. 6 tree *)
  cp_unattributed : int;       (** deviations with no fired quirk (noise) *)
  cp_timeline : (int * int) list;  (** (cases run, cumulative unique bugs) *)
  cp_screened_out : int;       (** cases dropped by the static-analysis screen *)
  cp_screen_reasons : (string * int) list;  (** drop reason -> count *)
  cp_repaired : int;           (** cases kept after free-variable repair *)
}

(* --- the Comfort fuzzer: LM generation + Algorithm 1 mutants --- *)

let comfort_fuzzer ?(seed = 7) ?(with_datagen = true) () : fuzzer =
  let gen = Generator.create ~seed () in
  (* [with_datagen:false] isolates the ECMA-262 guidance (Table 4 /
     ablation 3): drivers and free-variable bindings are still synthesized,
     but from an empty specification database, so every input value is
     random rather than a spec boundary *)
  let db =
    if with_datagen then Lazy.force Specdb.Db.standard else Specdb.Db.build []
  in
  let dg = Datagen.create ~seed:(seed + 1) ~db () in
  let queue : Testcase.t Queue.t = Queue.create () in
  let rec refill n =
    if n > 0 then begin
      match Generator.generate gen ~n:1 with
      | [] -> ()
      | tc :: _ ->
          Queue.add tc queue;
          let mutants = Datagen.mutate dg tc in
          List.iter (fun m -> Queue.add m queue) mutants;
          refill (n - 1 - List.length mutants)
    end
  in
  let raw_gen = Generator.create ~seed:(seed + 2) () in
  {
    fz_name = (if with_datagen then "Comfort" else "Comfort-nodata");
    fz_raw =
      Some (fun n -> List.init n (fun _ -> Generator.sample_program raw_gen));
    fz_batch =
      (fun n ->
        (* [Generator.generate] can legally return [] (its attempt cap);
           bound the refill retries so an exhausted generator fails loudly
           instead of spinning forever *)
        let stalls = ref 0 in
        while Queue.length queue < n do
          let before = Queue.length queue in
          refill (n - before);
          if Queue.length queue = before then begin
            incr stalls;
            if !stalls >= 20 then
              failwith
                "Campaign.comfort_fuzzer: generator produced no test cases \
                 after 20 consecutive attempts"
          end
          else stalls := 0
        done;
        List.init n (fun _ -> Queue.pop queue));
  }

(* --- semantic screening (the §3.2 "filter" step, upgraded to the full
   static-analysis pass: scope resolution, early errors, determinism
   lint) --- *)

type screened =
  | S_kept of Testcase.t
  | S_repaired of Testcase.t  (** free variables bound by the repair step *)
  | S_dropped of string       (** drop reason, for the reason histogram *)

let screen_case (tc : Testcase.t) : screened =
  (* syntactically invalid cases are deliberate (the generator keeps a
     fraction to exercise the parsers) and carry differential signal of
     their own — the semantic screen only judges parseable programs *)
  if not tc.Testcase.tc_syntax_valid then S_kept tc
  else
    match Jsparse.Parser.parse_program tc.Testcase.tc_source with
    | exception Jsparse.Parser.Syntax_error _ -> S_kept tc
    | p -> (
        match fst (Analysis.screen_program p) with
        | Analysis.Keep -> S_kept tc
        | Analysis.Repair _ ->
            let src = Jsast.Printer.program_to_string (Analysis.bind_free p) in
            S_repaired
              (Testcase.make ~provenance:tc.Testcase.tc_provenance src)
        | Analysis.Drop reason -> S_dropped reason)

(* --- campaign --- *)

let api_of_deviation (dev : Difftest.deviation) (tc : Testcase.t)
    ~(ast : Jsast.Ast.program option Lazy.t) : string option =
  match Quirk.Set.choose_opt dev.Difftest.d_fired with
  | Some q -> Some (Engines.Catalogue.find q).Engines.Catalogue.api
  | None -> (
      match tc.Testcase.tc_provenance with
      | Testcase.P_ecma_mutated api -> Some api
      | _ -> (
          match Lazy.force ast with
          | Some p -> (
              match Jsast.Visit.call_sites p with
              | cs :: _ -> Some cs.Jsast.Visit.cs_callee
              | [] -> None)
          | None -> None))

(* Causal attribution: a fired quirk is credited with a deviation only if
   disabling that quirk alone changes the deviating engine's behaviour on
   the test case. This keeps incidental quirk firings (a deviant path that
   executed but produced the same observable output) from inflating the
   bug count. The per-quirk re-executions are independent, so [jobs > 1]
   probes them in parallel; the returned order is identical either way. *)
let causal_quirks ?(jobs = 1) ?resolve (tb : Engines.Engine.testbed)
    (src : string) (dev : Difftest.deviation) ~fuel : Quirk.t list =
  let cfg = tb.Engines.Engine.tb_config in
  let base_sig = dev.Difftest.d_actual in
  let changes q =
    let quirks = Quirk.Set.remove q cfg.Engines.Registry.cfg_quirks in
    let r =
      Run.run ~quirks ?resolve
        ~parse_opts:(Engines.Registry.parse_opts_of_config cfg)
        ~strict:(tb.Engines.Engine.tb_mode = Engines.Engine.Strict)
        ~fuel src
    in
    Difftest.signature_to_string (Difftest.signature_of_result r) <> base_sig
  in
  let probed =
    Executor.map ~jobs
      (fun q -> (q, changes q))
      (Quirk.Set.elements dev.Difftest.d_fired)
  in
  (* descending quirk order, as the original Set.fold/prepend produced *)
  List.rev
    (List.filter_map (fun (q, causal) -> if causal then Some q else None) probed)

let default_testbeds () =
  Engines.Engine.latest_testbeds ~mode:Engines.Engine.Normal ()
  @ Engines.Engine.latest_testbeds ~mode:Engines.Engine.Strict ()

let run ?(testbeds = default_testbeds ()) ?(budget = 200)
    ?(fuel = Difftest.campaign_fuel) ?(reduce = false) ?(screen = true)
    ?(jobs = Executor.default_jobs ()) ?share ?resolve ?(audit_share = 0)
    (fz : fuzzer) : result =
  let share =
    match share with Some s -> s | None -> Difftest.share_by_default ()
  in
  let by_mode =
    [
      List.filter (fun tb -> tb.Engines.Engine.tb_mode = Engines.Engine.Normal) testbeds;
      List.filter (fun tb -> tb.Engines.Engine.tb_mode = Engines.Engine.Strict) testbeds;
    ]
    |> List.filter (fun l -> l <> [])
  in
  let filter = Bugfilter.create () in
  let seen : (Engines.Registry.engine * Quirk.t, unit) Hashtbl.t =
    Hashtbl.create 64
  in
  let discoveries = ref [] in
  let unattributed = ref 0 in
  let timeline = ref [] in
  let screened_out = ref 0 in
  let repaired = ref 0 in
  let reasons : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let drop reason =
    incr screened_out;
    Hashtbl.replace reasons reason
      (1 + Option.value (Hashtbl.find_opt reasons reason) ~default:0)
  in
  (* gather [budget] screen-surviving cases, drawing replacements for the
     dropped ones so the execution budget is spent in full; a stall
     counter bounds the extra draws in case the fuzzer only produces
     droppable programs *)
  let cases =
    if not screen then fz.fz_batch budget
    else begin
      let kept = ref [] in
      let n_kept = ref 0 in
      let stalls = ref 0 in
      while !n_kept < budget && !stalls < 3 do
        let want = budget - !n_kept in
        let progressed = ref false in
        List.iter
          (fun tc ->
            if !n_kept < budget then
              match screen_case tc with
              | S_kept tc ->
                  kept := tc :: !kept; incr n_kept; progressed := true
              | S_repaired tc ->
                  kept := tc :: !kept; incr n_kept; incr repaired;
                  progressed := true
              | S_dropped reason -> drop reason)
          (fz.fz_batch want);
        if !progressed then stalls := 0 else incr stalls
      done;
      List.rev !kept
    end
  in
  (* The per-case differential sweep — the dominant cost — runs on the
     worker pool; every stateful stage below (Fig. 6 tree, dedup, causal
     attribution, reduction, timeline) runs on this domain, in submission
     order, so the outcome is byte-identical at any job count. Workers
     only read the immutable test case and build their own realms; the
     shared lazies (spec db, LM) were forced when the fuzzer was built. *)
  let consume idx tc (reports : Difftest.case_report list) =
      (* one parse per case, shared by every deviation it produces *)
      let ast =
        lazy
          (match Jsparse.Parser.parse_program tc.Testcase.tc_source with
          | p -> Some p
          | exception Jsparse.Parser.Syntax_error _ -> None)
      in
      List.iter
        (fun (report : Difftest.case_report) ->
          List.iter
            (fun (dev : Difftest.deviation) ->
              let tb = dev.Difftest.d_testbed in
              let engine = tb.Engines.Engine.tb_config.Engines.Registry.cfg_engine in
              let api = api_of_deviation dev tc ~ast in
              (* developer-facing dedup: the Fig. 6 tree. A repeat of a
                 known (engine, api, behaviour) leaf cannot yield a new
                 discovery, so the expensive causal re-execution is
                 skipped for it *)
              match
                Bugfilter.classify filter
                  ~engine:(Engines.Registry.engine_name engine)
                  ~api ~behavior:dev.Difftest.d_behavior
              with
              | `Seen_before -> ()
              | `New_bug ->
              if Quirk.Set.is_empty dev.Difftest.d_fired then incr unattributed
              else
                let causal =
                  causal_quirks ~jobs ?resolve tb tc.Testcase.tc_source dev
                    ~fuel
                in
                if causal = [] then incr unattributed
                else
                List.iter
                  (fun q ->
                    if not (Hashtbl.mem seen (engine, q)) then begin
                      Hashtbl.replace seen (engine, q) ();
                      let reduced =
                        if reduce then
                          Some
                            (Reducer.reduce ~jobs
                               ~still_triggers:
                                 (Reducer.still_triggers_deviation ~share
                                    ?resolve tb dev)
                               tc.Testcase.tc_source)
                        else None
                      in
                      let d =
                        {
                          disc_engine = engine;
                          disc_quirk = q;
                          disc_case = tc;
                          disc_reduced = reduced;
                          disc_kind = dev.Difftest.d_kind;
                          disc_behavior = dev.Difftest.d_behavior;
                          disc_at = idx + 1;
                          disc_version =
                            Option.value
                              (Engines.Registry.earliest_version engine q)
                              ~default:
                                tb.Engines.Engine.tb_config
                                  .Engines.Registry.cfg_version;
                          disc_mode = tb.Engines.Engine.tb_mode;
                        }
                      in
                      discoveries := d :: !discoveries
                    end)
                  causal)
            report.Difftest.cr_deviations)
        reports;
      timeline := (idx + 1, Hashtbl.length seen) :: !timeline
  in
  (* cases are zipped with their submission index so the audit sample is
     deterministic — the same cases are cross-checked at any job count *)
  Executor.with_pool ~jobs (fun pool ->
      Executor.run_ordered pool
        (fun (i, tc) ->
          let audit = audit_share > 0 && i mod audit_share = 0 in
          List.map
            (fun tbs ->
              if audit then Difftest.audit_case ~fuel ?resolve tbs tc
              else Difftest.run_case ~fuel ~share ?resolve tbs tc)
            by_mode)
        (List.mapi (fun i tc -> (i, tc)) cases)
        ~consume:(fun idx (_, tc) reports -> consume idx tc reports));
  {
    cp_fuzzer = fz.fz_name;
    cp_cases_run = List.length cases;
    cp_discoveries = List.rev !discoveries;
    cp_filtered_repeats = Bugfilter.filtered_count filter;
    cp_unattributed = !unattributed;
    cp_timeline = List.rev !timeline;
    cp_screened_out = !screened_out;
    cp_screen_reasons =
      Hashtbl.fold (fun r n acc -> (r, n) :: acc) reasons []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    cp_repaired = !repaired;
  }
