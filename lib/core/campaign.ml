(* Fuzzing campaign driver.

   Feeds test cases from a fuzzer into differential testing across a set of
   testbeds, attributes observed deviations to ground-truth bugs (the
   quirks that fired on the deviating engine), de-duplicates repeats with
   the Fig. 6 filter tree, and keeps the discovery timeline that Fig. 8
   plots.

   Testbeds are grouped by mode before voting: a strict-mode engine and a
   sloppy-mode engine can legitimately disagree, so each mode votes among
   its own ranks — this mirrors the paper's 102-testbed setup where bugs
   are reported "under both the normal and the strict modes".

   The driver runs supervised (DESIGN.md §10): every per-case sweep may be
   subjected to a deterministic fault-injection plan, faulted testbeds are
   retried and eventually quarantined, a killed campaign can be resumed
   from a checkpoint, and a campaign that loses its fuzzer or its whole
   testbed pool finishes with an abort reason instead of dying. *)

open Jsinterp

type fuzzer = {
  fz_name : string;
  fz_batch : int -> Testcase.t list;
      (** produce at least [n] fresh test cases *)
  fz_raw : (int -> string list) option;
      (** raw generator output before any screening/mutation, used for the
          Fig. 9 syntax-passing-rate metric; [None] means the batch output
          is already the raw output (mutation-based fuzzers) *)
}

type discovery = {
  disc_engine : Engines.Registry.engine;
  disc_quirk : Quirk.t;
  disc_case : Testcase.t;
  disc_reduced : string option;
  disc_kind : Difftest.deviation_kind;
  disc_behavior : string;
  disc_at : int;          (** how many cases had run when it was found *)
  disc_version : string;  (** earliest engine version exhibiting the bug *)
  disc_mode : Engines.Engine.mode;
}

type result = {
  cp_fuzzer : string;
  cp_cases_run : int;
  cp_discoveries : discovery list;
  cp_filtered_repeats : int;   (** deviations suppressed by the Fig. 6 tree *)
  cp_unattributed : int;       (** deviations with no fired quirk (noise) *)
  cp_timeline : (int * int) list;  (** (cases run, cumulative unique bugs) *)
  cp_screened_out : int;       (** cases dropped by the static-analysis screen *)
  cp_screen_reasons : (string * int) list;  (** drop reason -> count *)
  cp_repaired : int;           (** cases kept after free-variable repair *)
  cp_reach_seeded : int;
      (** shared runs answered by the static reach partition's fast path
          (0 with the analysis off); executions and reports are identical
          either way — see [Engines.Engine.Exec.seeded] *)
  cp_specialized : int;
      (** quirk-specialised compilations performed (0 with specialisation
          off); reports are identical either way — see [Compile] *)
  cp_cow_clones : int;
      (** realm-template objects lazily journaled by the copy-on-write
          write barrier (0 with specialisation off) *)
  cp_ic_hits : int;
      (** property accesses answered by a compiled site's inline cache
          (0 with specialisation off) *)
  cp_skipped_cases : int;      (** cases lost to worker failures (supervised
                                   executor: recorded, not fatal) *)
  cp_faults : Supervisor.stats;    (** aggregate supervision counters *)
  cp_quarantined : (string * int) list;
      (** quarantined testbeds as (id, case that tripped the threshold) *)
  cp_aborted : string option;  (** why the campaign ended early, if it did *)
}

exception Halted of { halted_at : int; halted_checkpoint : string option }

exception
  Interrupted of {
    int_signal : string;
    int_at : int;
    int_checkpoint : string option;
  }

(* --- the Comfort fuzzer: LM generation + Algorithm 1 mutants --- *)

let comfort_fuzzer ?(seed = 7) ?(with_datagen = true) () : fuzzer =
  let gen = Generator.create ~seed () in
  (* [with_datagen:false] isolates the ECMA-262 guidance (Table 4 /
     ablation 3): drivers and free-variable bindings are still synthesized,
     but from an empty specification database, so every input value is
     random rather than a spec boundary *)
  let db =
    if with_datagen then Lazy.force Specdb.Db.standard else Specdb.Db.build []
  in
  let dg = Datagen.create ~seed:(seed + 1) ~db () in
  let queue : Testcase.t Queue.t = Queue.create () in
  let rec refill n =
    if n > 0 then begin
      match Generator.generate gen ~n:1 with
      | [] -> ()
      | tc :: _ ->
          Queue.add tc queue;
          let mutants = Datagen.mutate dg tc in
          List.iter (fun m -> Queue.add m queue) mutants;
          refill (n - 1 - List.length mutants)
    end
  in
  let raw_gen = Generator.create ~seed:(seed + 2) () in
  {
    fz_name = (if with_datagen then "Comfort" else "Comfort-nodata");
    fz_raw =
      Some (fun n -> List.init n (fun _ -> Generator.sample_program raw_gen));
    fz_batch =
      (fun n ->
        (* [Generator.generate] can legally return [] (its attempt cap);
           bound the refill retries so an exhausted generator fails loudly
           instead of spinning forever *)
        let stalls = ref 0 in
        while Queue.length queue < n do
          let before = Queue.length queue in
          refill (n - before);
          if Queue.length queue = before then begin
            incr stalls;
            if !stalls >= 20 then
              failwith
                "Campaign.comfort_fuzzer: generator produced no test cases \
                 after 20 consecutive attempts"
          end
          else stalls := 0
        done;
        List.init n (fun _ -> Queue.pop queue));
  }

(* --- semantic screening (the §3.2 "filter" step, upgraded to the full
   static-analysis pass: scope resolution, early errors, determinism
   lint) --- *)

type screened =
  | S_kept of Testcase.t
  | S_repaired of Testcase.t  (** free variables bound by the repair step *)
  | S_dropped of string       (** drop reason, for the reason histogram *)

let screen_case (tc : Testcase.t) : screened =
  (* syntactically invalid cases are deliberate (the generator keeps a
     fraction to exercise the parsers) and carry differential signal of
     their own — the semantic screen only judges parseable programs *)
  if not tc.Testcase.tc_syntax_valid then S_kept tc
  else
    match Jsparse.Parser.parse_program tc.Testcase.tc_source with
    | exception Jsparse.Parser.Syntax_error _ -> S_kept tc
    | p -> (
        match fst (Analysis.screen_program p) with
        | Analysis.Keep -> S_kept tc
        | Analysis.Repair _ ->
            let src = Jsast.Printer.program_to_string (Analysis.bind_free p) in
            S_repaired
              (Testcase.make ~provenance:tc.Testcase.tc_provenance src)
        | Analysis.Drop reason -> S_dropped reason)

(* --- campaign --- *)

let api_of_deviation (dev : Difftest.deviation) (tc : Testcase.t)
    ~(ast : Jsast.Ast.program option Lazy.t) : string option =
  match Quirk.Set.choose_opt dev.Difftest.d_fired with
  | Some q -> Some (Engines.Catalogue.find q).Engines.Catalogue.api
  | None -> (
      match tc.Testcase.tc_provenance with
      | Testcase.P_ecma_mutated api -> Some api
      | _ -> (
          match Lazy.force ast with
          | Some p -> (
              match Jsast.Visit.call_sites p with
              | cs :: _ -> Some cs.Jsast.Visit.cs_callee
              | [] -> None)
          | None -> None))

(* Causal attribution: a fired quirk is credited with a deviation only if
   disabling that quirk alone changes the deviating engine's behaviour on
   the test case. This keeps incidental quirk firings (a deviant path that
   executed but produced the same observable output) from inflating the
   bug count.

   Probe execution has two regimes. Down the direct path (no [cache]) the
   per-quirk re-executions are independent, so [jobs > 1] probes them in
   parallel on ephemeral domains. When the driver passes a per-case
   [Engines.Engine.Exec.cache], probes instead join the class-shared
   execution machinery the sweep itself uses: two probes whose reduced
   quirk sets agree on every consulted checkpoint share one execution
   (the common case — most removed quirks were never touched), and probes
   repeated across rule applications on the same case hit the same class
   representatives. A shared cache is not domain-safe, so cached probes
   run serially on the calling domain — the fired sets being probed are
   small (typically 1–3 quirks), so the parallelism given up is noise
   next to the executions saved. The [memo] table short-circuits exact
   repeats — same testbed, same removed quirk, same baseline signature —
   without even a signature comparison. Returned order is identical down
   every path. *)
let causal_quirks ?(jobs = 1) ?resolve ?reach ?specialize ?cache ?memo
    (tb : Engines.Engine.testbed) (src : string) (dev : Difftest.deviation)
    ~fuel : Quirk.t list =
  let cfg = tb.Engines.Engine.tb_config in
  let strict = tb.Engines.Engine.tb_mode = Engines.Engine.Strict in
  let parse_opts = Engines.Registry.parse_opts_of_config cfg in
  let base_sig = dev.Difftest.d_actual in
  let probe q =
    let quirks = Quirk.Set.remove q cfg.Engines.Registry.cfg_quirks in
    match cache with
    | Some ec ->
        (* the parse key is derived from the quirk set, so removing a
           parser-level quirk must move the probe to the parse group it
           actually belongs to — clearing the corresponding flag keeps
           the cache's (front end, mode) invariant intact *)
        let pk = Engines.Registry.parse_key cfg in
        let pkey =
          {
            pk with
            Engines.Registry.pk_for_missing_body =
              pk.Engines.Registry.pk_for_missing_body
              && q <> Quirk.Q_eval_for_missing_body_accepted;
            pk_dup_params =
              pk.Engines.Registry.pk_dup_params
              && q <> Quirk.Q_strict_dup_params_accepted;
            pk_delete_unqualified =
              pk.Engines.Registry.pk_delete_unqualified
              && q <> Quirk.Q_strict_delete_unqualified_accepted;
          }
        in
        Engines.Engine.Exec.run_keyed ?resolve ?reach ?specialize
          ~qbits:(Quirk.Bits.remove q cfg.Engines.Registry.cfg_qbits)
          ec ~pkey ~quirks ~parse_opts ~strict ~fuel
    | None -> Run.run ~quirks ?resolve ?reach ?specialize ~parse_opts ~strict ~fuel src
  in
  let changes q =
    let decide () =
      Difftest.signature_to_string (Difftest.signature_of_result (probe q))
      <> base_sig
    in
    match memo with
    | None -> decide ()
    | Some m -> (
        let key = (Engines.Engine.testbed_id tb, q, base_sig) in
        match Hashtbl.find_opt m key with
        | Some b -> b
        | None ->
            let b = decide () in
            Hashtbl.replace m key b;
            b)
  in
  let fired = Quirk.Set.elements dev.Difftest.d_fired in
  let probed =
    match cache with
    | Some _ -> List.map (fun q -> (q, changes q)) fired
    | None -> Executor.map ~jobs (fun q -> (q, changes q)) fired
  in
  (* descending quirk order, as the original Set.fold/prepend produced *)
  List.rev
    (List.filter_map (fun (q, causal) -> if causal then Some q else None) probed)

let default_testbeds () =
  Engines.Engine.latest_testbeds ~mode:Engines.Engine.Normal ()
  @ Engines.Engine.latest_testbeds ~mode:Engines.Engine.Strict ()

(* --- checkpoint / resume --- *)

module Checkpoint = struct
  (* A checkpoint is a versioned header line followed by a [Marshal] of
     the plain-data [state] record below. Everything in it is immutable
     data or hashtables of immutable data (Testcase.t, registry variants,
     Bugfilter.t, Supervisor.frozen) — no closures — so the default
     marshal flags suffice and the file survives process restarts of the
     same binary.

     There is no separate RNG cursor: the campaign's only random draws
     (the fuzzer batch, screening replacements) all happen before the
     first case executes, so storing the fully-drawn case list together
     with the consumed count replays the exact remaining cases on
     resume. *)

  let magic = "COMFORT-CKPT"

  (* v2: added ck_reach / ck_audit_reach / ck_reach_seeded (the static
     reachability analysis). v3: added ck_specialize /
     ck_audit_specialize and the specialisation counters (quirk-
     specialised execution). The header check rejects older files rather
     than guess defaults for fields that change what a resumed campaign
     runs. *)
  let version = 3

  type state = {
    ck_fuzzer : string;
    ck_fuel : int;
    ck_share : bool;
    ck_resolve : bool option;
    ck_reach : bool option;
    ck_specialize : bool option;
    ck_reduce : bool;
    ck_audit_share : int;
    ck_audit_reach : int;
    ck_audit_specialize : int;
    ck_reach_seeded : int;  (* seeded-share tally accumulated so far *)
    ck_specialized : int;   (* specialised-compilation tally so far *)
    ck_cow_clones : int;    (* COW write-barrier tally so far *)
    ck_ic_hits : int;       (* inline-cache hit tally so far *)
    ck_testbeds : string list;       (* Engine.testbed_id, sweep order *)
    ck_plan : string option;         (* Faultplan.to_spec *)
    ck_cases : Testcase.t list;      (* the full drawn case list *)
    ck_consumed : int;               (* cases fully consumed, in order *)
    ck_filter : Bugfilter.t;
    ck_seen : (Engines.Registry.engine * Quirk.t) list;
    ck_discoveries : discovery list; (* newest first, as the driver holds them *)
    ck_unattributed : int;
    ck_timeline : (int * int) list;  (* newest first *)
    ck_screened_out : int;
    ck_screen_reasons : (string * int) list;
    ck_repaired : int;
    ck_skipped_cases : int;
    ck_supervisor : Supervisor.frozen option;  (* Some iff supervised *)
  }

  let consumed (st : state) = st.ck_consumed
  let total (st : state) = List.length st.ck_cases

  let describe (st : state) =
    Printf.sprintf "%s: %d/%d cases consumed, %d discoveries"
      st.ck_fuzzer st.ck_consumed (total st)
      (List.length st.ck_discoveries)

  (* Write-to-temp plus rename keeps checkpointing atomic: a campaign
     killed mid-save leaves the previous checkpoint intact. The tmp file
     is fsynced before the rename and the directory after it, so a
     host crash cannot publish a torn checkpoint under [path] or lose
     the rename itself; without the first fsync the rename could land
     before the data. (A torn tmp file from a SIGKILL mid-write is
     unreachable by [load] either way — it only ever reads [path].) *)
  let save (path : string) (st : state) : unit =
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        Printf.fprintf oc "%s v%d\n" magic version;
        Marshal.to_channel oc st [];
        flush oc;
        Unix.fsync (Unix.descr_of_out_channel oc));
    Sys.rename tmp path;
    (* directory fsync is best-effort: some filesystems refuse it *)
    try
      let dfd = Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close dfd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync dfd with Unix.Unix_error _ -> ())
    with Unix.Unix_error _ -> ()

  let load (path : string) : (state, string) Stdlib.result =
    match open_in_bin path with
    | exception Sys_error e -> Error e
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () ->
            match input_line ic with
            | exception End_of_file -> Error "empty checkpoint file"
            | header ->
                let expect = Printf.sprintf "%s v%d" magic version in
                if not (String.equal header expect) then
                  Error
                    (Printf.sprintf "bad checkpoint header %S (want %S)"
                       header expect)
                else (
                  match (Marshal.from_channel ic : state) with
                  | st -> Ok st
                  | exception _ -> Error "truncated or corrupt checkpoint"))
end

(* --- the driver loop --- *)

(* Everything the in-order consumption loop needs, whether freshly
   gathered by [run] or thawed from a checkpoint by [resume]. Mutable
   fields are touched only on the driver domain, in submission order. *)
type st = {
  d_fuzzer : string;
  d_fuel : int;
  d_share : bool;
  d_resolve : bool option;
  d_reach : bool option;
  d_specialize : bool option;
  d_reduce : bool;
  d_audit_share : int;
  d_audit_reach : int;
  d_audit_specialize : int;
  mutable d_reach_seeded : int;
      (* seeded shares attributable to this campaign, synced from the
         process-wide counter by the driver before every checkpoint *)
  mutable d_specialized : int;  (* specialised compilations, same protocol *)
  mutable d_cow_clones : int;   (* COW write-barrier journals, same protocol *)
  mutable d_ic_hits : int;      (* inline-cache hits, same protocol *)
  d_testbeds : Engines.Engine.testbed list;
  d_plan : Supervisor.Faultplan.t option;
  d_sup : Supervisor.t option;  (* Some iff supervision is on *)
  d_cases : Testcase.t list;
  mutable d_consumed : int;
  d_filter : Bugfilter.t;
  d_seen : (Engines.Registry.engine * Quirk.t, unit) Hashtbl.t;
  mutable d_discoveries : discovery list;  (* newest first *)
  mutable d_unattributed : int;
  mutable d_timeline : (int * int) list;   (* newest first *)
  d_screened_out : int;
  d_screen_reasons : (string * int) list;  (* sorted *)
  d_repaired : int;
  mutable d_skipped_cases : int;
  mutable d_aborted : string option;
  mutable d_stop : bool;  (* stop submitting further cases (pool exhausted) *)
}

(* What one worker hands back for one case. Unsupervised sweeps are judged
   on the worker (judging is pure without a supervisor — the pre-existing
   path, byte for byte); supervised sweeps defer judging to the driver so
   quarantine and the vote evolve in submission order. *)
type work =
  | W_judged of Difftest.case_report list
  | W_swept of Difftest.sweep list
  | W_failed of exn  (* the worker itself blew up: case failed-and-skipped *)

(* [work], flattened for the pipe to a forked worker: exceptions are not
   Marshal-safe, so worker failures travel as strings and the three audit
   divergences — which must poison the whole run, not one case — as a
   tagged constructor the driver re-raises. *)
type audit_kind = A_share | A_reach | A_specialize

type wire =
  | Wire_judged of Difftest.case_report list
  | Wire_swept of Difftest.sweep list
  | Wire_failed of string
  | Wire_audit of audit_kind * string

let snapshot (d : st) : Checkpoint.state =
  {
    Checkpoint.ck_fuzzer = d.d_fuzzer;
    ck_fuel = d.d_fuel;
    ck_share = d.d_share;
    ck_resolve = d.d_resolve;
    ck_reach = d.d_reach;
    ck_specialize = d.d_specialize;
    ck_reduce = d.d_reduce;
    ck_audit_share = d.d_audit_share;
    ck_audit_reach = d.d_audit_reach;
    ck_audit_specialize = d.d_audit_specialize;
    ck_reach_seeded = d.d_reach_seeded;
    ck_specialized = d.d_specialized;
    ck_cow_clones = d.d_cow_clones;
    ck_ic_hits = d.d_ic_hits;
    ck_testbeds = List.map Engines.Engine.testbed_id d.d_testbeds;
    ck_plan = Option.map Supervisor.Faultplan.to_spec d.d_plan;
    ck_cases = d.d_cases;
    ck_consumed = d.d_consumed;
    ck_filter = d.d_filter;
    ck_seen = Hashtbl.fold (fun k () acc -> k :: acc) d.d_seen [];
    ck_discoveries = d.d_discoveries;
    ck_unattributed = d.d_unattributed;
    ck_timeline = d.d_timeline;
    ck_screened_out = d.d_screened_out;
    ck_screen_reasons = d.d_screen_reasons;
    ck_repaired = d.d_repaired;
    ck_skipped_cases = d.d_skipped_cases;
    ck_supervisor = Option.map Supervisor.freeze d.d_sup;
  }

let final (d : st) : result =
  {
    cp_fuzzer = d.d_fuzzer;
    cp_cases_run = d.d_consumed;
    cp_discoveries = List.rev d.d_discoveries;
    cp_filtered_repeats = Bugfilter.filtered_count d.d_filter;
    cp_unattributed = d.d_unattributed;
    cp_timeline = List.rev d.d_timeline;
    cp_screened_out = d.d_screened_out;
    cp_screen_reasons = d.d_screen_reasons;
    cp_repaired = d.d_repaired;
    cp_reach_seeded = d.d_reach_seeded;
    cp_specialized = d.d_specialized;
    cp_cow_clones = d.d_cow_clones;
    cp_ic_hits = d.d_ic_hits;
    cp_skipped_cases = d.d_skipped_cases;
    cp_faults =
      (match d.d_sup with
      | Some s -> Supervisor.stats s
      | None -> Supervisor.zero_stats);
    cp_quarantined =
      (match d.d_sup with
      | Some s -> Supervisor.quarantine_list s
      | None -> []);
    cp_aborted = d.d_aborted;
  }

let drive ~jobs ~workers ?worker_limits ?checkpoint ?halt_after (d : st) :
    result =
  (match checkpoint with
  | Some (_, every) when every <= 0 ->
      invalid_arg "Campaign: checkpoint interval must be positive"
  | _ -> ());
  let by_mode =
    [
      List.filter
        (fun tb -> tb.Engines.Engine.tb_mode = Engines.Engine.Normal)
        d.d_testbeds;
      List.filter
        (fun tb -> tb.Engines.Engine.tb_mode = Engines.Engine.Strict)
        d.d_testbeds;
    ]
    |> List.filter (fun l -> l <> [])
  in
  let total = List.length d.d_cases in
  (* seeded-share accounting: per-case Exec caches die with their worker,
     so the campaign's tally is a before/after delta of the process-wide
     counter, folded into [d] (on top of any checkpointed prior) before
     every snapshot and before the final result *)
  let seeded0 = Engines.Engine.Exec.seeded_count () in
  let specialized0 = Compile.specialized_count () in
  let cow0 = Value.cow_count () in
  let ic0 = Value.ic_count () in
  let seeded_prior = d.d_reach_seeded in
  let specialized_prior = d.d_specialized in
  let cow_prior = d.d_cow_clones in
  let ic_prior = d.d_ic_hits in
  let sync_seeded () =
    d.d_reach_seeded <-
      seeded_prior + (Engines.Engine.Exec.seeded_count () - seeded0);
    d.d_specialized <-
      specialized_prior + (Compile.specialized_count () - specialized0);
    d.d_cow_clones <- cow_prior + (Value.cow_count () - cow0);
    d.d_ic_hits <- ic_prior + (Value.ic_count () - ic0)
  in
  let save_ck () =
    match checkpoint with
    | Some (path, _) ->
        sync_seeded ();
        Checkpoint.save path (snapshot d);
        Some path
    | None -> None
  in
  (* The per-case differential sweep — the dominant cost — runs on the
     worker pool; every stateful stage below (judging under supervision,
     Fig. 6 tree, dedup, causal attribution, reduction, timeline,
     checkpointing) runs on this domain, in submission order, so the
     outcome is byte-identical at any job count. Workers only read the
     immutable test case (and the supervisor's monotone quarantine
     snapshot, racily, to skip doomed work); the shared lazies (spec db,
     LM) are forced by [Executor.create] before workers spawn. *)
  let consume (i : int) (tc : Testcase.t) (w : work) =
    let reports =
      match w with
      | W_judged rs -> rs
      | W_swept sws ->
          List.map (fun sw -> Difftest.judge ?supervisor:d.d_sup sw) sws
      | W_failed _ ->
          d.d_skipped_cases <- d.d_skipped_cases + 1;
          []
    in
    (* one parse per case, shared by every deviation it produces *)
    let ast =
      lazy
        (match Jsparse.Parser.parse_program tc.Testcase.tc_source with
        | p -> Some p
        | exception Jsparse.Parser.Syntax_error _ -> None)
    in
    (* one execution-sharing cache and one probe memo per case, shared by
       every causal attribution the case's deviations trigger: probes for
       different deviations (and different removed quirks) of the same
       case collapse into shared class representatives instead of
       re-running the interpreter per probe. Built lazily — most cases
       produce no new bug and never pay for either. The worker's own
       sweep cache died with the worker; this one lives on the driver,
       where attribution runs. *)
    let probe_cache =
      lazy (Engines.Engine.Exec.cache tc.Testcase.tc_source)
    in
    let probe_memo : (string * Quirk.t * string, bool) Hashtbl.t =
      Hashtbl.create 8
    in
    List.iter
      (fun (report : Difftest.case_report) ->
        List.iter
          (fun (dev : Difftest.deviation) ->
            let tb = dev.Difftest.d_testbed in
            let engine = tb.Engines.Engine.tb_config.Engines.Registry.cfg_engine in
            let api =
              Run.Stage.time Run.Stage.attr (fun () ->
                  api_of_deviation dev tc ~ast)
            in
            (* developer-facing dedup: the Fig. 6 tree. A repeat of a
               known (engine, api, behaviour) leaf cannot yield a new
               discovery, so the expensive causal re-execution is
               skipped for it *)
            match
              Run.Stage.time Run.Stage.attr (fun () ->
                  Bugfilter.classify d.d_filter
                    ~engine:(Engines.Registry.engine_name engine)
                    ~api ~behavior:dev.Difftest.d_behavior)
            with
            | `Seen_before -> ()
            | `New_bug ->
            if Quirk.Set.is_empty dev.Difftest.d_fired then
              d.d_unattributed <- d.d_unattributed + 1
            else
              (* diagnostic re-executions (causal probes, reduction
                 candidates) run the reach layer off: its static analysis
                 only pays for itself across a wide per-case sweep, and a
                 two-run probe on a fresh parse would fund it with nothing
                 to amortize. Results are bit-identical either way, so the
                 discovery stream does not depend on this choice. *)
              let causal =
                Run.Stage.time Run.Stage.attr (fun () ->
                    causal_quirks ~jobs ?resolve:d.d_resolve ~reach:false
                      ?specialize:d.d_specialize
                      ~cache:(Lazy.force probe_cache) ~memo:probe_memo tb
                      tc.Testcase.tc_source dev ~fuel:d.d_fuel)
              in
              if causal = [] then d.d_unattributed <- d.d_unattributed + 1
              else
              List.iter
                (fun q ->
                  if not (Hashtbl.mem d.d_seen (engine, q)) then begin
                    Hashtbl.replace d.d_seen (engine, q) ();
                    let reduced =
                      if d.d_reduce then
                        Some
                          (Run.Stage.time Run.Stage.reduce (fun () ->
                               Reducer.reduce ~jobs
                                 ~still_triggers:
                                   (Reducer.still_triggers_deviation
                                      ~share:d.d_share ?resolve:d.d_resolve
                                      ~reach:false ?specialize:d.d_specialize
                                      tb dev)
                                 tc.Testcase.tc_source))
                      else None
                    in
                    let disc =
                      {
                        disc_engine = engine;
                        disc_quirk = q;
                        disc_case = tc;
                        disc_reduced = reduced;
                        disc_kind = dev.Difftest.d_kind;
                        disc_behavior = dev.Difftest.d_behavior;
                        disc_at = i + 1;
                        disc_version =
                          Option.value
                            (Engines.Registry.earliest_version engine q)
                            ~default:
                              tb.Engines.Engine.tb_config
                                .Engines.Registry.cfg_version;
                        disc_mode = tb.Engines.Engine.tb_mode;
                      }
                    in
                    d.d_discoveries <- disc :: d.d_discoveries
                  end)
                causal)
          report.Difftest.cr_deviations)
      reports;
    d.d_timeline <- (i + 1, Hashtbl.length d.d_seen) :: d.d_timeline;
    d.d_consumed <- i + 1;
    (* pool-exhaustion abort: once no mode group retains two live
       testbeds, differential comparison is impossible and the campaign
       winds down (remaining in-flight results are discarded) *)
    (match d.d_sup with
    | Some sup when d.d_aborted = None ->
        let survivors tbs =
          List.length
            (List.filter
               (fun tb ->
                 not (Supervisor.quarantined sup (Engines.Engine.testbed_id tb)))
               tbs)
        in
        if List.for_all (fun tbs -> survivors tbs < 2) by_mode then begin
          d.d_aborted <-
            Some
              "testbed pool exhausted: quarantine left no mode group with \
               two live testbeds";
          d.d_stop <- true
        end
    | _ -> ());
    (match checkpoint with
    | Some (path, every) when (i + 1) mod every = 0 && i + 1 < total ->
        Run.Stage.time Run.Stage.fold (fun () ->
            sync_seeded ();
            Checkpoint.save path (snapshot d))
    | _ -> ());
    match halt_after with
    | Some n when i + 1 >= n && i + 1 < total && not d.d_stop ->
        let ck = save_ck () in
        raise (Halted { halted_at = i + 1; halted_checkpoint = ck })
    | _ -> ()
  in
  let worker ((i, tc) : int * Testcase.t) : work =
    (* one execution-sharing cache per case, shared by the per-mode-group
       sweeps below: the base parses and their reach analyses run once
       per case instead of once per group. The cache is built and
       consumed entirely inside this worker call (it is not domain-safe),
       and classes are keyed by mode, so reports are byte-identical to
       per-group caches. Lazy: audit cases build their own caches. *)
    let case_cache =
      lazy (Engines.Engine.Exec.cache tc.Testcase.tc_source)
    in
    match d.d_sup with
    | Some sup ->
        W_swept
          (List.map
             (fun tbs ->
               Difftest.sweep_case ~fuel:d.d_fuel ~share:d.d_share
                 ?resolve:d.d_resolve ?reach:d.d_reach
                 ?specialize:d.d_specialize ?plan:d.d_plan
                 ~policy:(Supervisor.policy sup) ~supervisor:sup ~case_key:i
                 ~cache:(Lazy.force case_cache) tbs tc)
             by_mode)
    | None ->
        (* cases are keyed by their submission index, so the audit samples
           are deterministic — the same cases are cross-checked at any job
           count and across resume; a case matching several audit strides
           runs the first applicable audit (share, then reach, then
           specialise), never more than one *)
        let audit = d.d_audit_share > 0 && i mod d.d_audit_share = 0 in
        let audit_reach = d.d_audit_reach > 0 && i mod d.d_audit_reach = 0 in
        let audit_specialize =
          d.d_audit_specialize > 0 && i mod d.d_audit_specialize = 0
        in
        W_judged
          (List.map
             (fun tbs ->
               if audit then
                 Difftest.audit_case ~fuel:d.d_fuel ?resolve:d.d_resolve
                   ?reach:d.d_reach ?specialize:d.d_specialize tbs tc
               else if audit_reach then
                 Difftest.audit_reach_case ~fuel:d.d_fuel ~share:d.d_share
                   ?resolve:d.d_resolve ?reach:d.d_reach
                   ?specialize:d.d_specialize tbs tc
               else if audit_specialize then
                 Difftest.audit_specialize_case ~fuel:d.d_fuel
                   ~share:d.d_share ?resolve:d.d_resolve ?reach:d.d_reach
                   tbs tc
               else
                 Difftest.run_case ~fuel:d.d_fuel ~share:d.d_share
                   ?resolve:d.d_resolve ?reach:d.d_reach
                   ?specialize:d.d_specialize
                   ~cache:(Lazy.force case_cache) tbs tc)
             by_mode)
  in
  let items =
    List.filteri
      (fun k _ -> k >= d.d_consumed)
      (List.mapi (fun i tc -> (i, tc)) d.d_cases)
  in
  let use_workers = workers > 0 && Coordinator.available () in
  if not use_workers then
    Executor.with_pool ~jobs (fun pool ->
        Executor.run_ordered pool
          ~on_exn:(fun _ _ e ->
            (* an audit divergence is a soundness bug, never a fault to
               absorb — let it poison the run loudly *)
            match e with
            | Difftest.Share_mismatch _ | Difftest.Reach_unsound _
            | Difftest.Specialize_mismatch _ ->
                raise e
            | e -> W_failed e)
          ~stop:(fun () -> d.d_stop)
          worker items
          ~consume:(fun _ (i, tc) w -> consume i tc w))
  else begin
    (* Process-isolated fan-out (DESIGN.md §14): same worker function and
       same in-submission-order consume, so the report is byte-identical
       to the in-process pool — but a segfaulting, hung or hard-killed
       execution now costs one child process, not the campaign. Runs in
       the child, so results cross a pipe as [wire]. *)
    let worker_wire (it : int * Testcase.t) : wire =
      match worker it with
      | W_judged rs -> Wire_judged rs
      | W_swept sws -> Wire_swept sws
      | W_failed e -> Wire_failed (Printexc.to_string e)
      | exception Difftest.Share_mismatch m -> Wire_audit (A_share, m)
      | exception Difftest.Reach_unsound m -> Wire_audit (A_reach, m)
      | exception Difftest.Specialize_mismatch m ->
          Wire_audit (A_specialize, m)
    in
    (* SIGINT/SIGTERM land between consumes: finish the case in hand,
       write a final checkpoint, and surface [Interrupted] so the
       operator kill is always resumable. Installed only around the
       multi-process phase; the previous behaviour is restored even if
       the run raises. *)
    let interrupted = ref None in
    let note_signal name = Sys.Signal_handle (fun _ -> interrupted := Some name) in
    let prev_int = Sys.signal Sys.sigint (note_signal "SIGINT") in
    let prev_term = Sys.signal Sys.sigterm (note_signal "SIGTERM") in
    Fun.protect
      ~finally:(fun () ->
        Sys.set_signal Sys.sigint prev_int;
        Sys.set_signal Sys.sigterm prev_term)
      (fun () ->
        try
          Coordinator.with_pool ~workers ?limits:worker_limits
            ~worker:worker_wire (fun pool ->
              Coordinator.run_ordered pool
                ~on_task_fail:(fun _ _ msg -> Wire_failed msg)
                ~stop:(fun () -> d.d_stop || !interrupted <> None)
                items
                ~consume:(fun _ (i, tc) w ->
                  let work =
                    match w with
                    | Wire_judged rs -> W_judged rs
                    | Wire_swept sws -> W_swept sws
                    | Wire_failed msg ->
                        W_failed (Failure ("worker: " ^ msg))
                    | Wire_audit (A_share, m) ->
                        raise (Difftest.Share_mismatch m)
                    | Wire_audit (A_reach, m) ->
                        raise (Difftest.Reach_unsound m)
                    | Wire_audit (A_specialize, m) ->
                        raise (Difftest.Specialize_mismatch m)
                  in
                  consume i tc work))
        with Coordinator.Exhausted msg ->
          (* PR 5 pool-exhaustion semantics: partial report, marked
             aborted, non-zero CLI exit — never a crash *)
          if d.d_aborted = None then
            d.d_aborted <- Some ("worker pool exhausted: " ^ msg));
    match !interrupted with
    | Some name ->
        let ck = save_ck () in
        raise (Interrupted { int_signal = name; int_at = d.d_consumed; int_checkpoint = ck })
    | None -> ()
  end;
  sync_seeded ();
  (* final checkpoint: resuming a finished campaign is a cheap no-op that
     reproduces its result *)
  Run.Stage.time Run.Stage.fold (fun () ->
      ignore (save_ck ());
      final d)

let run ?(testbeds = default_testbeds ()) ?(budget = 200)
    ?(fuel = Difftest.campaign_fuel) ?(reduce = false) ?(screen = true)
    ?(jobs = Executor.default_jobs ())
    ?(workers = Coordinator.default_workers ()) ?worker_limits ?share
    ?resolve ?reach ?specialize ?(audit_share = 0) ?(audit_reach = 0)
    ?(audit_specialize = 0) ?faults ?policy ?checkpoint ?halt_after
    (fz : fuzzer) : result =
  let share =
    match share with Some s -> s | None -> Difftest.share_by_default ()
  in
  let plan =
    match faults with Some _ -> faults | None -> Supervisor.Faultplan.from_env ()
  in
  let supervised = Option.is_some plan || Option.is_some policy in
  if audit_share > 0 && supervised then
    invalid_arg
      "Campaign.run: audit_share cannot be combined with fault injection \
       or supervision";
  if audit_reach > 0 && supervised then
    invalid_arg
      "Campaign.run: audit_reach cannot be combined with fault injection \
       or supervision";
  if audit_specialize > 0 && supervised then
    invalid_arg
      "Campaign.run: audit_specialize cannot be combined with fault \
       injection or supervision";
  let sup = if supervised then Some (Supervisor.create ?policy ()) else None in
  let aborted = ref None in
  (* a fuzzer that dies (e.g. the generator's refill cap) aborts the
     campaign gracefully: whatever was gathered still runs, the report is
     marked aborted, and the CLI exits non-zero *)
  let batch n =
    match Run.Stage.time Run.Stage.generate (fun () -> fz.fz_batch n) with
    | l -> l
    | exception e ->
        aborted := Some ("fuzzer exhausted: " ^ Printexc.to_string e);
        []
  in
  let screened_out = ref 0 in
  let repaired = ref 0 in
  let reasons : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let drop reason =
    incr screened_out;
    Hashtbl.replace reasons reason
      (1 + Option.value (Hashtbl.find_opt reasons reason) ~default:0)
  in
  (* gather [budget] screen-surviving cases, drawing replacements for the
     dropped ones so the execution budget is spent in full; a stall
     counter bounds the extra draws in case the fuzzer only produces
     droppable programs *)
  let cases =
    if not screen then batch budget
    else begin
      let kept = ref [] in
      let n_kept = ref 0 in
      let stalls = ref 0 in
      while !n_kept < budget && !stalls < 3 && !aborted = None do
        let want = budget - !n_kept in
        let progressed = ref false in
        List.iter
          (fun tc ->
            if !n_kept < budget then
              match Run.Stage.time Run.Stage.screen (fun () -> screen_case tc) with
              | S_kept tc ->
                  kept := tc :: !kept; incr n_kept; progressed := true
              | S_repaired tc ->
                  kept := tc :: !kept; incr n_kept; incr repaired;
                  progressed := true
              | S_dropped reason -> drop reason)
          (batch want);
        if !progressed then stalls := 0 else incr stalls
      done;
      List.rev !kept
    end
  in
  (if !aborted = None then
     let got = List.length cases in
     if got < budget then
       aborted :=
         Some
           (Printf.sprintf "fuzzer exhausted: gathered %d of %d budgeted cases"
              got budget));
  let d =
    {
      d_fuzzer = fz.fz_name;
      d_fuel = fuel;
      d_share = share;
      d_resolve = resolve;
      d_reach = reach;
      d_specialize = specialize;
      d_reduce = reduce;
      d_audit_share = audit_share;
      d_audit_reach = audit_reach;
      d_audit_specialize = audit_specialize;
      d_reach_seeded = 0;
      d_specialized = 0;
      d_cow_clones = 0;
      d_ic_hits = 0;
      d_testbeds = testbeds;
      d_plan = plan;
      d_sup = sup;
      d_cases = cases;
      d_consumed = 0;
      d_filter = Bugfilter.create ();
      d_seen = Hashtbl.create 64;
      d_discoveries = [];
      d_unattributed = 0;
      d_timeline = [];
      d_screened_out = !screened_out;
      d_screen_reasons =
        Hashtbl.fold (fun r n acc -> (r, n) :: acc) reasons []
        |> List.sort (fun (a, _) (b, _) -> compare a b);
      d_repaired = !repaired;
      d_skipped_cases = 0;
      d_aborted = !aborted;
      d_stop = false;
    }
  in
  drive ~jobs ~workers ?worker_limits ?checkpoint ?halt_after d

let resume ?(jobs = Executor.default_jobs ())
    ?(workers = Coordinator.default_workers ()) ?worker_limits ?checkpoint
    ?halt_after (ck : Checkpoint.state) : result =
  let testbeds =
    List.map
      (fun id ->
        match Engines.Engine.testbed_of_id id with
        | Some tb -> tb
        | None ->
            invalid_arg
              ("Campaign.resume: checkpoint names unknown testbed " ^ id))
      ck.Checkpoint.ck_testbeds
  in
  let plan =
    match ck.Checkpoint.ck_plan with
    | None -> None
    | Some spec -> (
        match Supervisor.Faultplan.of_spec spec with
        | Ok p -> Some p
        | Error e ->
            invalid_arg ("Campaign.resume: bad fault plan in checkpoint: " ^ e))
  in
  let seen : (Engines.Registry.engine * Quirk.t, unit) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter (fun k -> Hashtbl.replace seen k ()) ck.Checkpoint.ck_seen;
  let d =
    {
      d_fuzzer = ck.Checkpoint.ck_fuzzer;
      d_fuel = ck.Checkpoint.ck_fuel;
      d_share = ck.Checkpoint.ck_share;
      d_resolve = ck.Checkpoint.ck_resolve;
      d_reach = ck.Checkpoint.ck_reach;
      d_specialize = ck.Checkpoint.ck_specialize;
      d_reduce = ck.Checkpoint.ck_reduce;
      d_audit_share = ck.Checkpoint.ck_audit_share;
      d_audit_reach = ck.Checkpoint.ck_audit_reach;
      d_audit_specialize = ck.Checkpoint.ck_audit_specialize;
      d_reach_seeded = ck.Checkpoint.ck_reach_seeded;
      d_specialized = ck.Checkpoint.ck_specialized;
      d_cow_clones = ck.Checkpoint.ck_cow_clones;
      d_ic_hits = ck.Checkpoint.ck_ic_hits;
      d_testbeds = testbeds;
      d_plan = plan;
      d_sup = Option.map Supervisor.thaw ck.Checkpoint.ck_supervisor;
      d_cases = ck.Checkpoint.ck_cases;
      d_consumed = ck.Checkpoint.ck_consumed;
      d_filter = ck.Checkpoint.ck_filter;
      d_seen = seen;
      d_discoveries = ck.Checkpoint.ck_discoveries;
      d_unattributed = ck.Checkpoint.ck_unattributed;
      d_timeline = ck.Checkpoint.ck_timeline;
      d_screened_out = ck.Checkpoint.ck_screened_out;
      d_screen_reasons = ck.Checkpoint.ck_screen_reasons;
      d_repaired = ck.Checkpoint.ck_repaired;
      d_skipped_cases = ck.Checkpoint.ck_skipped_cases;
      d_aborted = None;
      d_stop = false;
    }
  in
  drive ~jobs ~workers ?worker_limits ?checkpoint ?halt_after d
