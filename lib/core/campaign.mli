(** Fuzzing campaign driver: the paper's end-to-end testing loop.

    Feeds test cases from a fuzzer into differential testing across a set
    of testbeds, attributes deviations to ground-truth bugs via the quirks
    that causally fired on the deviating engine, de-duplicates repeats with
    the Fig. 6 filter tree, and records the discovery timeline plotted in
    Fig. 8.

    Campaigns run supervised (DESIGN.md §10): executions can be subjected
    to a deterministic fault-injection plan, persistently faulting
    testbeds are quarantined and the vote recomputed over the survivors,
    progress can be checkpointed and a killed campaign resumed, and a
    campaign that loses its fuzzer or its testbed pool finishes with an
    abort reason instead of dying. *)

(** The common fuzzer interface shared by Comfort and all baselines. *)
type fuzzer = {
  fz_name : string;
  fz_batch : int -> Testcase.t list;
      (** produce at least [n] fresh test cases *)
  fz_raw : (int -> string list) option;
      (** raw generator output before screening/mutation, for the Fig. 9
          passing-rate metric; [None] when the batch is already raw *)
}

type discovery = {
  disc_engine : Engines.Registry.engine;
  disc_quirk : Jsinterp.Quirk.t;      (** the ground-truth bug *)
  disc_case : Testcase.t;             (** the exposing test case *)
  disc_reduced : string option;       (** §3.5 reduction, when requested *)
  disc_kind : Difftest.deviation_kind;
  disc_behavior : string;
  disc_at : int;                      (** cases run when it was found *)
  disc_version : string;              (** earliest affected engine version *)
  disc_mode : Engines.Engine.mode;
}

type result = {
  cp_fuzzer : string;
  cp_cases_run : int;
  cp_discoveries : discovery list;    (** unique (engine, bug) pairs *)
  cp_filtered_repeats : int;          (** suppressed by the Fig. 6 tree *)
  cp_unattributed : int;              (** deviations with no causal quirk *)
  cp_timeline : (int * int) list;     (** (cases run, cumulative bugs) *)
  cp_screened_out : int;              (** dropped by the static-analysis screen *)
  cp_screen_reasons : (string * int) list;  (** drop reason -> count, sorted *)
  cp_repaired : int;                  (** kept after free-variable repair *)
  cp_reach_seeded : int;
      (** shared runs answered by the static reach partition's fast path
          (DESIGN.md §11); 0 with the analysis off. Statistics only:
          executions, discoveries and reports are identical either way *)
  cp_specialized : int;
      (** quirk-specialised compilations performed (DESIGN.md §12); 0 with
          specialisation off. Statistics only, like [cp_reach_seeded] *)
  cp_cow_clones : int;
      (** realm-template objects lazily journaled by the copy-on-write
          write barrier; 0 with specialisation off. Statistics only *)
  cp_ic_hits : int;
      (** property accesses answered by a compiled site's inline cache;
          0 with specialisation off. Statistics only *)
  cp_skipped_cases : int;
      (** cases lost to worker failures: the supervised executor records
          them as failed-and-skipped instead of letting one poisoned case
          kill the campaign *)
  cp_faults : Supervisor.stats;       (** aggregate supervision counters *)
  cp_quarantined : (string * int) list;
      (** quarantined testbeds as (testbed id, case index that tripped
          the threshold), oldest first; the vote was recomputed over the
          survivors from that point on *)
  cp_aborted : string option;
      (** why the campaign ended early, if it did (fuzzer exhaustion,
          testbed pool exhausted by quarantine). The report still covers
          everything that ran; the CLI turns this into a non-zero exit. *)
}

(** Raised by a campaign run with [halt_after] once that many cases are
    consumed: the deterministic stand-in for killing the process, used by
    the checkpoint/resume tests and the CI kill-and-resume job.
    [halted_checkpoint] is the checkpoint written at the halt point, when
    a checkpoint sink was configured. *)
exception Halted of { halted_at : int; halted_checkpoint : string option }

(** Raised by a [workers > 0] campaign when the operator SIGINT/SIGTERMs
    the driver: the case in hand is finished, a final checkpoint is
    written (when a checkpoint sink is configured), the worker pool is
    torn down, and this surfaces with the resume path. The CLI converts
    it into exit code 130. *)
exception
  Interrupted of {
    int_signal : string;       (** ["SIGINT"] or ["SIGTERM"] *)
    int_at : int;              (** cases consumed before stopping *)
    int_checkpoint : string option;  (** where the final checkpoint went *)
  }

(** The Comfort fuzzer: LM program generation plus Algorithm 1 mutants.
    [with_datagen:false] keeps driver synthesis but strips all spec
    boundary values (the guidance ablation). *)
val comfort_fuzzer : ?seed:int -> ?with_datagen:bool -> unit -> fuzzer

(** Latest version of every engine, in both modes (20 testbeds). *)
val default_testbeds : unit -> Engines.Engine.testbed list

(** Campaign checkpoints: a versioned, marshalled snapshot of the whole
    driver state — drawn cases, consumed count, discoveries, filter tree,
    timeline, screening counters, supervisor (quarantine + stats). The
    case list subsumes an RNG cursor: every random draw happens before
    the first case executes, so resume replays the exact remaining
    cases (format notes in DESIGN.md §10). *)
module Checkpoint : sig
  type state

  (** Atomic save (write to [path ^ ".tmp"], then rename). *)
  val save : string -> state -> unit

  val load : string -> (state, string) Stdlib.result

  (** Cases fully consumed when the snapshot was taken. *)
  val consumed : state -> int

  (** Total cases the campaign drew. *)
  val total : state -> int

  (** One-line human summary, for the CLI. *)
  val describe : state -> string
end

(** Run a campaign. Testbeds vote within their own mode group, since
    strict and sloppy semantics legitimately differ.
    @param testbeds  defaults to {!default_testbeds}; pass
                     [Engines.Engine.all_testbeds] for the paper's full
                     102-testbed setup
    @param budget    number of test cases to execute
    @param reduce    reduce the first exposing case of each discovery
    @param screen    run the {!Analysis} static screen on every candidate
                     case (default [true]): dropped programs never reach
                     differential testing and replacements are drawn so
                     the budget is still spent in full; [false] is the
                     screening ablation
    @param jobs      worker domains for the per-case differential sweep
                     (default [COMFORT_JOBS], else 1). Results are consumed
                     in submission order, so discoveries, the filter tree,
                     and the timeline are byte-identical at any job count
    @param share     collapse each testbed sweep into behavioural
                     equivalence classes, executing once per class
                     (default {!Difftest.share_by_default}); reports are
                     byte-identical either way (DESIGN.md §8)
    @param resolve   run reference executions through the slot-compiled
                     interpreter core (default
                     {!Jsinterp.Run.resolve_by_default}); reports are
                     byte-identical either way (DESIGN.md §9)
    @param reach     consult the static checkpoint-reachability analysis
                     (default {!Jsinterp.Run.reach_by_default}): sharing
                     cells are pre-partitioned by the static reach set
                     and the compiler folds provably-unreachable
                     checkpoint consultations; reports are byte-identical
                     either way (DESIGN.md §11)
    @param specialize execute on the quirk-specialised fast path:
                     copy-on-write realms, per-cell compiled closures with
                     baked-in checkpoint answers, inline caches (default
                     {!Jsinterp.Run.specialize_by_default}); reports are
                     byte-identical either way (DESIGN.md §12)
    @param audit_share when positive, every [audit_share]-th case (by
                     submission index, so the sample is deterministic)
                     runs down both the shared and the direct path and
                     raises {!Difftest.Share_mismatch} on any divergence.
                     Incompatible with [faults]/[policy]
    @param audit_reach when positive, every [audit_reach]-th case
                     additionally asserts static ⊇ dynamic touched on
                     every testbed's direct execution, raising
                     {!Difftest.Reach_unsound} on a violation (a case
                     matching several audit strides runs the first
                     applicable audit: share, then reach, then
                     specialise). Incompatible with [faults]/[policy]
    @param audit_specialize when positive, every [audit_specialize]-th
                     case runs once specialised and once generic and
                     raises {!Difftest.Specialize_mismatch} on any
                     report divergence. Incompatible with
                     [faults]/[policy]
    @param faults    deterministic fault-injection plan applied to every
                     supervised testbed execution (chaos campaigns);
                     defaults to [COMFORT_FAULTS] from the environment.
                     Injected faults are retried, quarantined and counted
                     in {!result.cp_faults} — they can never surface as
                     deviations or discoveries
    @param policy    supervision policy (retries, backoff, watchdog,
                     quarantine threshold); supplying either [faults] or
                     [policy] turns supervision on, with all three absent
                     the pipeline is byte-identical to the unsupervised one
    @param checkpoint [(path, every)]: snapshot the driver state to [path]
                     after every [every] consumed cases (atomically), and
                     once more when the campaign finishes
    @param halt_after deterministically halt (raising {!Halted}) once this
                     many cases are consumed — the kill-simulation hook;
                     a halt writes a final checkpoint first when a sink is
                     configured. No effect when >= the drawn case count
    @param workers   when positive (default [COMFORT_WORKERS], else 0)
                     and {!Coordinator.available}, run every per-case
                     sweep in one of this many forked worker processes
                     instead of the in-process executor: a segfault,
                     runaway or hard-killed execution costs one worker,
                     never the campaign, and reports stay byte-identical
                     at any worker count (DESIGN.md §14). Otherwise
                     degrades to the in-process pool. [jobs] only
                     affects driver-side diagnostics in this mode
    @param worker_limits watchdog/respawn budgets for the worker pool;
                     budget exhaustion aborts with a partial report
                     ({!result.cp_aborted}), mirroring testbed-pool
                     exhaustion *)
val run :
  ?testbeds:Engines.Engine.testbed list ->
  ?budget:int ->
  ?fuel:int ->
  ?reduce:bool ->
  ?screen:bool ->
  ?jobs:int ->
  ?workers:int ->
  ?worker_limits:Coordinator.limits ->
  ?share:bool ->
  ?resolve:bool ->
  ?reach:bool ->
  ?specialize:bool ->
  ?audit_share:int ->
  ?audit_reach:int ->
  ?audit_specialize:int ->
  ?faults:Supervisor.Faultplan.t ->
  ?policy:Supervisor.policy ->
  ?checkpoint:string * int ->
  ?halt_after:int ->
  fuzzer ->
  result

(** Continue a checkpointed campaign to completion. Every campaign
    parameter except [jobs] and [workers] (both orthogonal to the
    outcome) is restored from the checkpoint; the final report is
    byte-identical to the uninterrupted run's, at any combination of
    job/worker counts on either side of the kill.
    [checkpoint]/[halt_after] behave as in {!run}, so a resumed campaign
    can itself checkpoint and halt.
    @raise Invalid_argument when the checkpoint names testbeds or a fault
    plan this binary does not know. *)
val resume :
  ?jobs:int ->
  ?workers:int ->
  ?worker_limits:Coordinator.limits ->
  ?checkpoint:string * int ->
  ?halt_after:int ->
  Checkpoint.state ->
  result

(** Outcome of screening one candidate test case. *)
type screened =
  | S_kept of Testcase.t
  | S_repaired of Testcase.t  (** free variables bound by the repair step *)
  | S_dropped of string       (** drop reason *)

(** Apply the static-analysis screen to one test case. Syntactically
    invalid cases pass through untouched: they are deliberate
    parser-exercise inputs with differential signal of their own. *)
val screen_case : Testcase.t -> screened
