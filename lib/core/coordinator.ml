(* Fork-based process-isolated worker pool — see coordinator.mli and
   DESIGN.md §14.

   Anatomy: the driver forks N single-threaded children before any
   domain exists. Each child loops { read task; ack; execute; reply }
   over a pair of pipes speaking Ipc frames. The driver multiplexes the
   result pipes with select, SIGKILLs deadline overruns, respawns the
   dead (within budget), and consumes replies strictly in submission
   order through a reorder buffer — the process-isolated mirror of
   Executor.run_ordered.

   Child discipline: a forked child shares the parent's buffered
   channels copy-on-write, so it must never write to them and must
   leave via Unix._exit (plain exit would flush duplicated buffers into
   the parent's output). Children talk only over their own two pipes. *)

open Jsinterp

type limits = {
  li_watchdog_s : float;
  li_task_deaths : int;
  li_respawn_budget : int;
  li_backoff_ms : int;
}

let default_limits =
  {
    li_watchdog_s = 30.0;
    li_task_deaths = 2;
    li_respawn_budget = 32;
    li_backoff_ms = 25;
  }

exception Exhausted of string

(* What a self-watchdogged child exits with; the driver reads it back at
   reap time to classify the death as a hang rather than a crash. *)
let exit_watchdog = 86

(* --- process-wide robustness telemetry (driver-mutated only) ------- *)

let respawns_total = ref 0
let kills_total = ref 0
let hangs_total = ref 0
let stat_respawns () = !respawns_total
let stat_kills () = !kills_total
let stat_hangs () = !hangs_total

let available () =
  Sys.unix
  (* OCaml 5 forbids fork in a process that ever spawned a domain, even
     one long since joined; a prior jobs>1 pool permanently rules out
     process isolation, so degrade instead of tripping the runtime *)
  && (not (Executor.domains_ever_spawned ()))
  &&
  match Sys.getenv_opt "COMFORT_NO_FORK" with
  | None | Some "" -> true
  | Some _ -> false

let default_workers () =
  match Sys.getenv_opt "COMFORT_WORKERS" with
  | Some s -> ( try max 0 (int_of_string (String.trim s)) with _ -> 0)
  | None -> 0

(* --- wire protocol ------------------------------------------------- *)

type 'a dispatch =
  | D_task of { dt_seq : int; dt_absorbed : int; dt_payload : 'a }

(* Per-task deltas of the process-wide campaign counters. A child's
   address space dies with it, so completed replies carry their counter
   contribution home; deltas from dispatches that died are lost with
   the child — exactly right, because the surviving re-dispatch redoes
   that work, keeping folded totals identical to an in-process run. *)
type counters = {
  c_runs : int;
  c_seeded : int;
  c_specialized : int;
  c_cow : int;
  c_ic : int;
}

type 'b reply =
  | R_hello  (* child is up and speaking the protocol *)
  | R_beat of int  (* heartbeat: dispatch [seq] received, starting *)
  | R_killme of int  (* unabsorbed worker_kill draw: SIGKILL me *)
  | R_done of {
      rd_seq : int;
      rd_reply : ('b, string) result;  (* Error: the task raised *)
      rd_counters : counters;
    }

let sample_counters () =
  {
    c_runs = Run.run_count ();
    c_seeded = Engines.Engine.Exec.seeded_count ();
    c_specialized = Compile.specialized_count ();
    c_cow = Value.cow_count ();
    c_ic = Value.ic_count ();
  }

let delta_counters a b =
  {
    c_runs = b.c_runs - a.c_runs;
    c_seeded = b.c_seeded - a.c_seeded;
    c_specialized = b.c_specialized - a.c_specialized;
    c_cow = b.c_cow - a.c_cow;
    c_ic = b.c_ic - a.c_ic;
  }

let fold_counters c =
  Run.add_runs c.c_runs;
  Engines.Engine.Exec.add_seeded c.c_seeded;
  Compile.add_specialized c.c_specialized;
  Value.add_cow c.c_cow;
  Value.add_ic c.c_ic

(* --- child side ---------------------------------------------------- *)

let arm_itimer (s : float) : unit =
  ignore
    (Unix.setitimer Unix.ITIMER_REAL { Unix.it_interval = 0.0; it_value = s })

(* The child's whole life. Never returns; never raises past itself. *)
let run_child ~(limits : limits) ~(fn : 'a -> 'b) ~(task_r : Unix.file_descr)
    ~(result_w : Unix.file_descr) : unit =
  (* The operator's SIGINT goes to the whole foreground group; the
     decision to stop is the driver's alone (it checkpoints first, then
     SIGKILLs us), so children ignore the polite signals. *)
  Sys.set_signal Sys.sigint Sys.Signal_ignore;
  Sys.set_signal Sys.sigterm Sys.Signal_ignore;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* First watchdog layer: self-destruct at the per-task wall budget.
     SIGALRM interrupts anything OCaml can interrupt; what it can't, the
     driver's deadline SIGKILL (second layer) reaps. *)
  Sys.set_signal Sys.sigalrm
    (Sys.Signal_handle (fun _ -> Unix._exit exit_watchdog));
  let send (r : 'b reply) : unit =
    (* the only reader is the driver; if it is gone, so is our reason
       to exist *)
    try Ipc.write result_w r with _ -> Unix._exit 0
  in
  send R_hello;
  let parent = Unix.getppid () in
  let rec loop () =
    match (Ipc.read task_r : ('a dispatch, Ipc.error) result) with
    | Error _ -> Unix._exit 0 (* driver closed the pipe: clean quit *)
    | Ok (D_task { dt_seq; dt_absorbed; dt_payload }) ->
        send (R_beat dt_seq);
        Supervisor.arm_kill_hook ~absorb:dt_absorbed ~die:(fun () ->
            arm_itimer 0.0;
            send (R_killme dt_seq);
            (* park until the driver's SIGKILL lands — unless the driver
               itself dies first (we get reparented), in which case
               nobody will ever deliver that kill and we must not
               outlive the campaign as an orphan *)
            while true do
              Unix.sleepf 0.05;
              if Unix.getppid () <> parent then Unix._exit 0
            done);
        arm_itimer limits.li_watchdog_s;
        let c0 = sample_counters () in
        let r = try Ok (fn dt_payload) with e -> Error (Printexc.to_string e) in
        arm_itimer 0.0;
        Supervisor.disarm_kill_hook ();
        let c1 = sample_counters () in
        send
          (R_done
             { rd_seq = dt_seq; rd_reply = r; rd_counters = delta_counters c0 c1 });
        loop ()
  in
  loop ()

(* --- driver side --------------------------------------------------- *)

type wstate = {
  mutable w_pid : int;
  mutable w_task_w : Unix.file_descr;
  mutable w_result_r : Unix.file_descr;
  mutable w_alive : bool;
  mutable w_seq : int; (* in-flight task, -1 when idle *)
  mutable w_started : float; (* dispatch wall-clock time *)
}

type ('a, 'b) t = {
  co_limits : limits;
  co_fn : 'a -> 'b;
  co_ws : wstate array;
  mutable co_consec : int; (* consecutive deaths, for backoff *)
  mutable co_respawns : int;
  mutable co_shut : bool;
  co_prev_sigpipe : Sys.signal_behavior;
}

let rec reap pid : Unix.process_status option =
  match Unix.waitpid [] pid with
  | _, status -> Some status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap pid
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> None

(* SIGKILL then reap. An already-dead child is a zombie until reaped, so
   the kill is a harmless no-op and the status read back is its real
   one — which is how the driver recognises a self-watchdogged worker
   (clean [exit_watchdog]) after the fact. *)
let kill_reap pid : Unix.process_status option =
  (try Unix.kill pid Sys.sigkill
   with Unix.Unix_error (Unix.ESRCH, _, _) -> ());
  reap pid

(* [siblings] are the driver-side pipe ends of every other live worker
   at fork time. The child must close its inherited copies: a sibling's
   task pipe with a surviving writer never delivers EOF, so a
   SIGKILLed driver would otherwise leave every worker parked in
   [Ipc.read] forever instead of noticing the closed pipe and exiting. *)
let spawn ?(siblings = []) ~(limits : limits) ~(fn : 'a -> 'b) () : wstate =
  let task_r, task_w = Unix.pipe ~cloexec:false () in
  let result_r, result_w = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | 0 ->
      Unix.close task_w;
      Unix.close result_r;
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        siblings;
      (try run_child ~limits ~fn ~task_r ~result_w with _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close task_r;
      Unix.close result_w;
      {
        w_pid = pid;
        w_task_w = task_w;
        w_result_r = result_r;
        w_alive = true;
        w_seq = -1;
        w_started = 0.0;
      }

let create ~workers ?(limits = default_limits) ~worker () : ('a, 'b) t =
  if workers <= 0 then invalid_arg "Coordinator.create: workers must be > 0";
  if limits.li_watchdog_s <= 0.0 then
    invalid_arg "Coordinator.create: li_watchdog_s must be > 0";
  (* Children inherit shared immutable state copy-on-write; force the
     expensive lazies now so each child doesn't rebuild them. (Mirrors
     Executor.create. Must run before any domain is spawned.) *)
  ignore (Lazy.force Specdb.Db.standard);
  ignore (Lazy.force Lm.Model.comfort);
  (* EPIPE (a dead worker under our write) must be an error to classify,
     not a process-killing signal *)
  let prev = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  {
    co_limits = limits;
    co_fn = worker;
    co_ws =
      (* fork sequentially, telling each child which driver-side fds of
         its elder siblings to close *)
      (let rec build acc i =
         if i = workers then Array.of_list (List.rev acc)
         else
           let siblings =
             List.concat_map (fun w -> [ w.w_task_w; w.w_result_r ]) acc
           in
           build (spawn ~siblings ~limits ~fn:worker () :: acc) (i + 1)
       in
       build [] 0);
    co_consec = 0;
    co_respawns = 0;
    co_shut = false;
    co_prev_sigpipe = prev;
  }

let retire (w : wstate) : Unix.process_status option =
  w.w_alive <- false;
  (try Unix.close w.w_task_w with Unix.Unix_error _ -> ());
  (try Unix.close w.w_result_r with Unix.Unix_error _ -> ());
  kill_reap w.w_pid

let shutdown (t : ('a, 'b) t) : unit =
  if not t.co_shut then begin
    t.co_shut <- true;
    Array.iter (fun w -> if w.w_alive then ignore (retire w)) t.co_ws;
    Sys.set_signal Sys.sigpipe t.co_prev_sigpipe
  end

let with_pool ~workers ?limits ~worker f =
  let t = create ~workers ?limits ~worker () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Replace a retired worker's slot with a fresh child. [charge] is true
   for unexpected deaths (crashes, watchdog reaps): those count against
   the respawn budget and back off on consecutive deaths. Deliberate
   [worker_kill] deaths respawn free of charge and without backoff —
   they are injected chaos, deterministic and self-bounding (each one
   increments the task's absorb count, which converges), so they must
   never starve a long chaos campaign of the budget that guards against
   real death storms. *)
let respawn (t : ('a, 'b) t) ~(charge : bool) (w : wstate) : unit =
  incr respawns_total;
  if charge then begin
    t.co_respawns <- t.co_respawns + 1;
    if t.co_respawns > t.co_limits.li_respawn_budget then
      raise
        (Exhausted
           (Printf.sprintf "respawn budget (%d) exhausted"
              t.co_limits.li_respawn_budget));
    let slot = min t.co_consec 6 in
    t.co_consec <- t.co_consec + 1;
    let ms = t.co_limits.li_backoff_ms * (1 lsl slot) in
    if ms > 0 then Unix.sleepf (float_of_int ms /. 1000.0)
  end;
  let siblings =
    Array.to_list t.co_ws
    |> List.concat_map (fun w' ->
           if w' != w && w'.w_alive then [ w'.w_task_w; w'.w_result_r ]
           else [])
  in
  let nw = spawn ~siblings ~limits:t.co_limits ~fn:t.co_fn () in
  w.w_pid <- nw.w_pid;
  w.w_task_w <- nw.w_task_w;
  w.w_result_r <- nw.w_result_r;
  w.w_alive <- true;
  w.w_seq <- -1;
  w.w_started <- 0.0

let run_ordered (type a b) (t : (a, b) t) ?on_task_fail
    ?(stop = fun () -> false) (xs : a list)
    ~(consume : int -> a -> b -> unit) : unit =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if n > 0 then begin
    let limits = t.co_limits in
    (* the driver SIGKILLs a worker this long after dispatch; the child's
       own itimer (li_watchdog_s) gets the first shot *)
    let deadline_s = (limits.li_watchdog_s *. 2.0) +. 0.5 in
    (* dispatch lookahead past the consume cursor, bounding the reorder
       buffer exactly as Executor.run_ordered's ring window does *)
    let window = 4 * Array.length t.co_ws in
    let absorbed = Array.make n 0 in
    let deaths = Array.make n 0 in
    (* Landed replies waiting for the in-order cursor, with their
       counter deltas. The deltas are folded into the process-wide
       counters only when the reply is CONSUMED, not when it arrives: a
       checkpoint taken at consume point k must account for exactly the
       first k cases, or a resumed campaign would replay — and
       double-count — the lookahead work folded early. *)
    let pending : (int, (b, string) result * counters option) Hashtbl.t =
      Hashtbl.create 64
    in
    let redis = ref [] in (* tasks owed a re-dispatch, any order *)
    let next_new = ref 0 in
    let next_consume = ref 0 in
    let halted = ref false in
    (* A worker died holding [w_seq]. Deliberate kills re-dispatch with
       one more draw absorbed; crashes and hangs burn one of the task's
       lives and beyond that the task is failed (the driver's existing
       poisoned-work lane decides what that means). *)
    let handle_death (w : wstate) (kind : [ `Kill | `Crash | `Hang ]) : unit =
      let seq = w.w_seq in
      let status = retire w in
      (* a child that hit its own itimer first looks like a plain death
         on the pipe; its exit status says what really happened *)
      let kind =
        match (kind, status) with
        | `Crash, Some (Unix.WEXITED e) when e = exit_watchdog -> `Hang
        | kind, _ -> kind
      in
      (match kind with
      | `Kill -> incr kills_total
      | `Hang -> incr hangs_total
      | `Crash -> ());
      (match (seq, kind) with
      | -1, _ -> ()
      | seq, `Kill ->
          absorbed.(seq) <- absorbed.(seq) + 1;
          redis := seq :: !redis
      | seq, (`Crash | `Hang) ->
          deaths.(seq) <- deaths.(seq) + 1;
          if deaths.(seq) > limits.li_task_deaths then
            Hashtbl.replace pending seq
              ( Error
                  (Printf.sprintf "worker %s; task gave up after %d deaths"
                     (match kind with
                     | `Hang -> "exceeded the wall-clock watchdog (SIGKILL)"
                     | _ -> "died unexpectedly")
                     deaths.(seq)),
                None )
          else redis := seq :: !redis);
      respawn t w ~charge:(match kind with `Kill -> false | `Crash | `Hang -> true)
    in
    let dispatch (w : wstate) (seq : int) : unit =
      match
        Ipc.write w.w_task_w
          (D_task { dt_seq = seq; dt_absorbed = absorbed.(seq); dt_payload = arr.(seq) })
      with
      | () ->
          w.w_seq <- seq;
          w.w_started <- Unix.gettimeofday ()
      | exception _ ->
          (* died idle, before taking the task: the task is untouched *)
          redis := seq :: !redis;
          handle_death w `Crash
    in
    while !next_consume < n && not !halted do
      if stop () then halted := true
      else begin
        (* 1. keep idle workers fed *)
        Array.iter
          (fun w ->
            if w.w_alive && w.w_seq = -1 then
              match !redis with
              | seq :: rest ->
                  redis := rest;
                  dispatch w seq
              | [] ->
                  if !next_new < n && !next_new < !next_consume + window then begin
                    let seq = !next_new in
                    incr next_new;
                    dispatch w seq
                  end)
          t.co_ws;
        (* 2. wait for replies (bounded, so the deadline sweep and the
           stop poll stay responsive even with every worker wedged) *)
        let fds =
          Array.to_list t.co_ws
          |> List.filter_map (fun w ->
                 if w.w_alive then Some w.w_result_r else None)
        in
        let readable =
          match Unix.select fds [] [] 0.05 with
          | r, _, _ -> r
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
        in
        List.iter
          (fun fd ->
            match
              Array.to_list t.co_ws
              |> List.find_opt (fun w -> w.w_alive && w.w_result_r = fd)
            with
            | None -> ()
            | Some w -> (
                match (Ipc.read w.w_result_r : (b reply, Ipc.error) result) with
                | Ok R_hello | Ok (R_beat _) -> ()
                | Ok (R_killme _) -> handle_death w `Kill
                | Ok (R_done { rd_seq; rd_reply; rd_counters }) ->
                    t.co_consec <- 0;
                    w.w_seq <- -1;
                    Hashtbl.replace pending rd_seq (rd_reply, Some rd_counters)
                | Error _ ->
                    (* EOF or a torn/corrupt frame: the child died (or
                       lost its mind, which costs it its life) *)
                    handle_death w `Crash))
          readable;
        (* 3. watchdog backstop: SIGKILL deadline overruns *)
        let now = Unix.gettimeofday () in
        Array.iter
          (fun w ->
            if w.w_alive && w.w_seq >= 0 && now -. w.w_started > deadline_s
            then handle_death w `Hang)
          t.co_ws;
        (* 4. consume strictly in submission order *)
        let continue = ref true in
        while !continue && not !halted do
          match Hashtbl.find_opt pending !next_consume with
          | None -> continue := false
          | Some (r, cnt) ->
              let seq = !next_consume in
              Hashtbl.remove pending seq;
              (* fold before [consume]: a checkpoint taken inside the
                 consume callback must already account for this case *)
              Option.iter fold_counters cnt;
              let v =
                match (r, on_task_fail) with
                | Ok v, _ -> v
                | Error msg, Some f -> f seq arr.(seq) msg
                | Error msg, None ->
                    failwith ("Coordinator worker failed: " ^ msg)
              in
              consume seq arr.(seq) v;
              incr next_consume;
              if stop () then halted := true
        done
      end
    done
  end
