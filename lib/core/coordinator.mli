(** Fork-based process-isolated worker pool for campaigns.

    The paper's campaigns drove 51 external engine builds that segfault,
    hang and leak for infrastructure reasons; PR 5's supervisor
    reproduced the {e policy} half (fault injection, retry, quarantine,
    checkpoint/resume) but every execution still ran in the driver's
    address space. This module supplies the {e mechanism} half: the
    driver [fork]s N workers, ships case tasks over pipes ({!Ipc}
    frames), and folds replies back in submission order — the same
    in-order consume contract as [Executor.run_ordered] — so campaign
    reports are byte-identical at any worker count. A worker that
    segfaults, is hard-killed by a [worker_kill] fault draw, wedges in
    an un-interruptible loop, or dies mid-frame costs a re-dispatch,
    never the campaign.

    Robustness layers (DESIGN.md §14):
    - {b watchdog}: each worker arms [Unix.setitimer ITIMER_REAL] per
      task and self-exits on SIGALRM; the driver's deadline poll
      SIGKILLs any worker that overruns twice that budget, so even an
      un-interruptible hang is reaped.
    - {b heartbeat}: workers acknowledge each dispatch before starting
      it, distinguishing "died idle" from "died executing".
    - {b bounded recovery}: a task survives at most [li_task_deaths]
      unexpected worker deaths before it is failed-and-skipped (the
      driver's existing poisoned-work lane); the pool survives at most
      [li_respawn_budget] respawns after unexpected deaths — with
      exponential backoff — before {!Exhausted} aborts the campaign
      with a partial report. Deliberate [worker_kill] deaths respawn
      without charging the budget: they are self-bounding (each
      increments the task's absorb count, which converges), so injected
      chaos can never exhaust the allowance that guards against real
      death storms.

    Determinism: tasks must be pure (a function of the dispatched
    payload), which campaign sweeps are; replies are consumed strictly
    in submission order; deliberate [worker_kill] deaths re-dispatch
    with an incremented absorb count (see [Supervisor.arm_kill_hook]) so
    the surviving execution is exactly the in-process one; and counter
    deltas are folded only from completed replies, so statistics also
    match in-process runs exactly. *)

(** Pool limits. *)
type limits = {
  li_watchdog_s : float;
      (** per-dispatch wall-clock budget, seconds. The worker self-exits
          at this age; the driver SIGKILLs at [2x + 0.5s] as a backstop. *)
  li_task_deaths : int;
      (** unexpected worker deaths (crash or watchdog reap) a single
          task survives before it is failed-and-skipped *)
  li_respawn_budget : int;
      (** worker respawns after {e unexpected} deaths (crashes, watchdog
          reaps) before {!Exhausted}; deliberate [worker_kill] respawns
          are not charged *)
  li_backoff_ms : int;
      (** respawn backoff base; consecutive deaths double it (capped) *)
}

val default_limits : limits
(** [{ li_watchdog_s = 30.0; li_task_deaths = 2; li_respawn_budget = 32;
      li_backoff_ms = 25 }] *)

exception Exhausted of string
(** The respawn budget ran out: workers are dying faster than the pool
    may replace them. The campaign driver converts this into an aborted
    partial report with a non-zero exit, mirroring PR 5's
    pool-exhaustion semantics. *)

type ('a, 'b) t
(** A pool dispatching ['a] tasks and collecting ['b] replies. *)

val available : unit -> bool
(** Can this process fork workers at all? False on non-Unix systems,
    when COMFORT_NO_FORK is set non-empty (the CI escape hatch), and —
    permanently — once any executor domain has ever been spawned
    (OCaml 5 forbids [fork] from then on, even after the domains are
    joined); callers degrade to the in-process executor. *)

val default_workers : unit -> int
(** COMFORT_WORKERS, else 0 (in-process). The [--workers] default. *)

val create :
  workers:int -> ?limits:limits -> worker:('a -> 'b) -> unit -> ('a, 'b) t
(** Fork [workers] children, each looping over dispatched tasks with
    [worker]. Must be called before any domains are spawned (fork and
    domains do not mix); shared lazy state (spec database, LM) is
    forced first so children inherit it copy-on-write. [worker] runs in
    the child; exceptions it raises are shipped back as strings and
    surface through [run_ordered]'s [on_task_fail]. *)

val shutdown : ('a, 'b) t -> unit
(** SIGKILL and reap every worker. Idempotent. *)

val with_pool :
  workers:int ->
  ?limits:limits ->
  worker:('a -> 'b) ->
  (('a, 'b) t -> 'c) ->
  'c
(** [create]/[shutdown] bracket; the pool is torn down on any exit. *)

val run_ordered :
  ('a, 'b) t ->
  ?on_task_fail:(int -> 'a -> string -> 'b) ->
  ?stop:(unit -> bool) ->
  'a list ->
  consume:(int -> 'a -> 'b -> unit) ->
  unit
(** Dispatch every task and call [consume i task reply] strictly in
    submission order from the calling thread — the process-isolated
    mirror of [Executor.run_ordered]. [on_task_fail i task msg]
    supplies the reply for a task whose worker raised, or that exceeded
    [li_task_deaths] (absent: such a task raises [Failure msg]).
    [stop], polled between consumes and before each new dispatch, ends
    the run early, discarding in-flight work. May raise {!Exhausted}.
    A pool outlives its runs; a wedged pool is recovered by
    {!shutdown}. *)

(** {2 Process-wide robustness telemetry}

    Monotone counters over every pool in this process, driver-mutated
    only. The CLI prints the deltas of a run; tests use them to assert
    that real process deaths (not just simulated faults) occurred. *)

val stat_respawns : unit -> int
(** Workers forked to replace a dead one (any cause). *)

val stat_kills : unit -> int
(** Deliberate [worker_kill] hard-kills performed. *)

val stat_hangs : unit -> int
(** Workers reaped by the driver's watchdog deadline. *)
