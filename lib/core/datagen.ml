(* ECMA-262-guided test-data generation — Algorithm 1 of the paper.

   Takes a generated test program, finds the JS API call sites it contains,
   looks each up in the specification database, and emits mutated test
   cases whose inputs hit the boundary conditions the spec text mentions
   (plus some purely random inputs to enrich the pool, §3.3).

   Three mutation strategies cover the shapes generated programs take:
   - driver synthesis: the program defines [function foo(str, start, len)]
     but never calls it — synthesize the Figure-2-style driver that assigns
     boundary values to fresh variables, calls the function, and prints the
     result;
   - variable-initialiser mutation: an argument traces back to a [var]
     declaration — rewrite its initialiser (the [var len = undefined] move);
   - in-place argument substitution: replace an argument expression at the
     call site, or drop trailing optional arguments. *)

open Jsast
module B = Builder

type mutant = {
  m_source : string;
  m_api : string;   (** spec entry that guided the mutation *)
  m_guided : bool;  (** true when boundary values from the spec were used;
                        false for purely random ("normal condition") data *)
}

(* Parse a boundary-value source fragment into an expression. *)
let expr_of_value (v : string) : Ast.expr option =
  match Jsparse.Parser.parse_program ("(" ^ v ^ ");") with
  | { Ast.prog_body = [ { Ast.s = Ast.Expr_stmt e; _ } ]; _ } -> Some e
  | _ -> None
  | exception Jsparse.Parser.Syntax_error _ -> None

(* A plausible receiver for an API, from the spec entry's receiver type. *)
let receiver_value (entry : Specdb.Spec_ast.entry) : Ast.expr =
  let name = entry.Specdb.Spec_ast.e_name in
  let starts_with p = String.length name >= String.length p && String.sub name 0 (String.length p) = p in
  if starts_with "Array.prototype" then B.array [ B.int 1; B.int 2; B.int 5 ]
  else if starts_with "%TypedArray%" then
    B.new_ (B.ident "Uint8Array") [ B.int 5 ]
  else if starts_with "RegExp.prototype" then B.regexp "a" "g"
  else if starts_with "DataView.prototype" then
    B.new_ (B.ident "DataView") [ B.int 8 ]
  else
    match entry.Specdb.Spec_ast.e_receiver with
    | Specdb.Spec_ast.Tstring -> B.str "Name: Albert"
    | Specdb.Spec_ast.Tnumber -> B.num 42.5
    | _ -> B.object_ [ (Ast.PN_ident "a", B.int 1) ]

(* Random values for the "normal conditions" part of §3.3. *)
let random_value (rng : Cutil.Rng.t) : Ast.expr =
  match Cutil.Rng.int rng 8 with
  | 0 -> B.int (Cutil.Rng.int rng 100 - 50)
  | 1 -> B.num (Cutil.Rng.float rng 100.0)
  | 2 -> B.str (String.init (Cutil.Rng.int rng 6 + 1) (fun _ -> Char.chr (97 + Cutil.Rng.int rng 26)))
  | 3 -> B.bool (Cutil.Rng.bool rng)
  | 4 -> B.array [ B.int (Cutil.Rng.int rng 10); B.int (Cutil.Rng.int rng 10) ]
  | 5 -> B.null
  | 6 -> B.int (Cutil.Rng.int rng 100000)
  | _ -> B.undefined ()

type t = {
  db : Specdb.Db.t;
  rng : Cutil.Rng.t;
  max_mutants_per_program : int;
}

let create ?(seed = 2) ?(db = Lazy.force Specdb.Db.standard)
    ?(max_mutants = 16) () : t =
  { db; rng = Cutil.Rng.create seed; max_mutants_per_program = max_mutants }

(* Generated programs frequently reference identifiers they never declare
   (the model glues fragments from different training programs). Binding
   those names to synthesized values is part of "embedding test data into
   the JS code by assigning values to variables" (§3.3) and is what makes a
   generated function body actually executable. The scope resolver yields
   exactly the unbound names, so a parameter shadowing a global no longer
   suppresses the binding the call site needs. *)
let bind_free_vars (t : t) (p : Ast.program) : Ast.program =
  match Analysis.Scope.free_variables p with
  | [] -> p
  | free ->
      (* prefer a type-appropriate value when the call sites reveal how the
         name is used: receivers get a value of the API's receiver type,
         arguments a value matching the spec parameter type *)
      let sites = Visit.call_sites p in
      let preferred (n : string) : Ast.expr option =
        List.find_map
          (fun cs ->
            match Specdb.Db.lookup t.db cs.Visit.cs_callee with
            | [] -> None
            | entry :: _ ->
                if cs.Visit.cs_receiver = Some n then
                  Some (receiver_value entry)
                else
                  List.find_map
                    (fun (i, (arg : Ast.expr)) ->
                      match (arg.Ast.e, List.nth_opt entry.Specdb.Spec_ast.e_params i) with
                      | Ast.Ident m, Some sp when m = n -> (
                          match sp.Specdb.Spec_ast.p_type with
                          | Specdb.Spec_ast.Tinteger -> Some (B.int (Cutil.Rng.int t.rng 10))
                          | Specdb.Spec_ast.Tnumber -> Some (B.num (Cutil.Rng.float t.rng 10.0))
                          | Specdb.Spec_ast.Tstring -> Some (B.str "ab")
                          | Specdb.Spec_ast.Tboolean -> Some (B.bool (Cutil.Rng.bool t.rng))
                          | _ -> None)
                      | _ -> None)
                    (List.mapi (fun i a -> (i, a)) cs.Visit.cs_args))
          sites
      in
      let decls =
        List.map
          (fun n ->
            let v =
              match preferred n with
              | Some v -> v
              | None -> random_value t.rng
            in
            B.var n v)
          free
      in
      { p with Ast.prog_body = decls @ p.Ast.prog_body }

(* Generated function bodies frequently compute an API result and then
   discard it (return some other variable), which would make a conformance
   deviation invisible to differential testing. Comfort "generates code to
   call functions with supplied parameters and print out the results"
   (§3.3); this harness makes every known-API call observable by recording
   its value: each call expression [C] becomes [__obs[__obs.length] = C]
   (an assignment evaluates to its right-hand side, so program semantics
   are unchanged) and the recorded values are printed at the end. *)
let observe_calls (db : Specdb.Db.t) (p : Ast.program) : Ast.program =
  let known_call (x : Ast.expr) =
    match x.Ast.e with
    | Ast.Call (f, _) | Ast.New (f, _) -> (
        match Visit.callee_path f with
        | Some path when path <> [] ->
            let callee = List.nth path (List.length path - 1) in
            callee <> "print" && Specdb.Db.lookup db callee <> []
        | _ -> false)
    | _ -> false
  in
  let any_known =
    let acc = ref false in
    Visit.iter_program ~fe:(fun x -> if known_call x then acc := true) p;
    !acc
  in
  if not any_known then p
  else begin
    let wrapped =
      Transform.map_program
        ~fe:(fun x ->
          if known_call x then
            B.assign
              (B.index (B.ident "__obs") (B.field (B.ident "__obs") "length"))
              x
          else x)
        p
    in
    let prologue = [ B.var "__obs" (B.array []) ] in
    let epilogue =
      [
        B.s
          (Ast.For
             ( Some (Ast.FI_decl (Ast.Var, [ ("__i", Some (B.int 0)) ])),
               Some
                 (B.binary Ast.Lt (B.ident "__i")
                    (B.field (B.ident "__obs") "length")),
               Some (B.e (Ast.Update (Ast.Incr, false, B.ident "__i"))),
               B.block [ B.print (B.index (B.ident "__obs") (B.ident "__i")) ] ));
      ]
    in
    { wrapped with Ast.prog_body = prologue @ wrapped.Ast.prog_body @ epilogue }
  end

(* Known top-level function definitions: (name, params, body call sites). *)
let toplevel_functions (p : Ast.program) : (string * string list) list =
  List.filter_map
    (fun (st : Ast.stmt) ->
      match st.Ast.s with
      | Ast.Func_decl { fname = Some n; params; _ } -> Some (n, params)
      | Ast.Var_decl (_, [ (n, Some { Ast.e = Ast.Func f; _ }) ]) ->
          Some (n, f.Ast.params)
      | Ast.Var_decl (_, [ (n, Some { Ast.e = Ast.Arrow f; _ }) ]) ->
          Some (n, f.Ast.params)
      | _ -> None)
    p.Ast.prog_body

let has_call_to (p : Ast.program) (fname : string) : bool =
  List.exists
    (fun cs -> cs.Visit.cs_path = [ fname ])
    (Visit.call_sites p)

(* Map each parameter of enclosing function [params] to the spec boundary
   values it should take, by matching call-site arguments that are plain
   identifiers against API parameter positions. *)
let param_boundaries (db : Specdb.Db.t) (p : Ast.program)
    (params : string list) :
    (string * (Specdb.Spec_ast.entry * Specdb.Spec_ast.param) list) list
    * Specdb.Spec_ast.entry option =
  let sites = Visit.call_sites p in
  let assoc : (string, (Specdb.Spec_ast.entry * Specdb.Spec_ast.param) list) Hashtbl.t =
    Hashtbl.create 8
  in
  let receiver_entry = ref None in
  List.iter
    (fun cs ->
      match Specdb.Db.lookup db cs.Visit.cs_callee with
      | [] -> ()
      | entry :: _ ->
          if !receiver_entry = None then receiver_entry := Some (entry, cs.Visit.cs_receiver);
          List.iteri
            (fun i (arg : Ast.expr) ->
              match (arg.Ast.e, List.nth_opt entry.Specdb.Spec_ast.e_params i) with
              | Ast.Ident name, Some sp when List.mem name params ->
                  let prev = Option.value (Hashtbl.find_opt assoc name) ~default:[] in
                  Hashtbl.replace assoc name (prev @ [ (entry, sp) ])
              | _ -> ())
            cs.Visit.cs_args)
    sites;
  ( List.map
      (fun pn -> (pn, Option.value (Hashtbl.find_opt assoc pn) ~default:[]))
      params,
    Option.map fst !receiver_entry )

(* --- strategy 1: driver synthesis --- *)

let synthesize_drivers (t : t) (p : Ast.program) : mutant list =
  let funcs = toplevel_functions p in
  List.concat_map
    (fun (fname, params) ->
      if has_call_to p fname || params = [] then []
      else begin
        let bindings, recv_entry = param_boundaries t.db p params in
        (* receiver-typed params: if the function body calls
           [param.api(...)], give that param a receiver value *)
        let sites = Visit.call_sites p in
        let recv_params =
          List.filter_map
            (fun cs ->
              match (cs.Visit.cs_receiver, Specdb.Db.lookup t.db cs.Visit.cs_callee) with
              | Some r, entry :: _ when List.mem r params -> Some (r, entry)
              | _ -> None)
            sites
        in
        let api_name =
          match recv_entry with
          | Some e -> e.Specdb.Spec_ast.e_name
          | None -> (
              match bindings with
              | (_, (e, _) :: _) :: _ -> e.Specdb.Spec_ast.e_name
              | _ -> "")
        in
        (* Enumerate boundary probes one parameter at a time: each guided
           driver sets exactly one parameter to one of its spec boundary
           values while the others take neutral type-appropriate defaults;
           two purely random drivers cover the "normal conditions" side of
           §3.3. *)
        let neutral (pn : string) : Ast.expr =
          match List.assoc_opt pn recv_params with
          | Some entry -> receiver_value entry
          | None -> (
              match List.assoc_opt pn bindings with
              | Some ((_, sp) :: _) -> (
                  match sp.Specdb.Spec_ast.p_type with
                  | Specdb.Spec_ast.Tinteger -> B.int 2
                  | Specdb.Spec_ast.Tnumber -> B.num 1.5
                  | Specdb.Spec_ast.Tstring -> B.str "ab"
                  | Specdb.Spec_ast.Tboolean -> B.bool true
                  | Specdb.Spec_ast.Tobject -> (
                      (* a descriptor-shaped object is the most revealing
                         neutral companion when another parameter is being
                         probed (the Listing 1 pattern needs the pair) *)
                      match expr_of_value "{ value: 1, configurable: true }" with
                      | Some e -> Builder.refresh_expr e
                      | None -> random_value t.rng)
                  | _ -> random_value t.rng)
              | _ -> random_value t.rng)
        in
        let probes : (string * string) list =
          List.concat_map
            (fun (pn, guided) ->
              List.concat_map
                (fun ((_, sp) : Specdb.Spec_ast.entry * Specdb.Spec_ast.param) ->
                  List.map (fun v -> (pn, v)) sp.Specdb.Spec_ast.p_values)
                guided)
            bindings
        in
        let plans =
          List.map (fun probe -> Some probe) probes
          @ [ None; None ] (* random drivers *)
        in
        let plans =
          List.filteri (fun i _ -> i < t.max_mutants_per_program) plans
        in
        List.map
          (fun plan ->
            let used_boundary = ref false in
            let decls =
              List.map
                (fun pn ->
                  let value =
                    match plan with
                    | Some (target, v) when target = pn -> (
                        match expr_of_value v with
                        | Some e ->
                            used_boundary := true;
                            e
                        | None -> neutral pn)
                    | Some _ -> neutral pn
                    | None -> (
                        (* random driver; receivers still get their type *)
                        match List.assoc_opt pn recv_params with
                        | Some entry -> receiver_value entry
                        | None -> random_value t.rng)
                  in
                  (pn, value))
                params
            in
            let driver =
              List.map
                (fun (pn, v) -> B.var ("arg_" ^ pn) (Builder.refresh_expr v))
                decls
              @ [
                  B.var "result"
                    (B.call (B.ident fname)
                       (List.map (fun (pn, _) -> B.ident ("arg_" ^ pn)) decls));
                  B.print (B.ident "result");
                ]
            in
            let p' = { p with Ast.prog_body = p.Ast.prog_body @ driver } in
            {
              m_source = Printer.program_to_string p';
              m_api = api_name;
              m_guided = !used_boundary;
            })
          plans
      end)
    funcs

(* --- strategy 2: variable-initialiser mutation --- *)

let mutate_var_inits (t : t) (p : Ast.program) : mutant list =
  let sites = Visit.call_sites p in
  let decls = Visit.declared_names p in
  List.concat_map
    (fun cs ->
      match Specdb.Db.lookup t.db cs.Visit.cs_callee with
      | [] -> []
      | entry :: _ ->
          List.concat
            (List.mapi
               (fun i (arg : Ast.expr) ->
                 match (arg.Ast.e, List.nth_opt entry.Specdb.Spec_ast.e_params i) with
                 | Ast.Ident name, Some sp when List.mem name decls ->
                     List.filter_map
                       (fun v ->
                         match expr_of_value v with
                         | None -> None
                         | Some init ->
                             let p' = Transform.replace_var_init p ~name ~init in
                             Some
                               {
                                 m_source = Printer.program_to_string p';
                                 m_api = entry.Specdb.Spec_ast.e_name;
                                 m_guided = true;
                               })
                       (List.filteri (fun j _ -> j < 3) sp.Specdb.Spec_ast.p_values)
                 | _ -> [])
               cs.Visit.cs_args))
    sites

(* --- strategy 3: in-place argument substitution --- *)

let mutate_call_args (t : t) (p : Ast.program) : mutant list =
  let sites = Visit.call_sites p in
  List.concat_map
    (fun cs ->
      match Specdb.Db.lookup t.db cs.Visit.cs_callee with
      | [] -> []
      | entry :: _ ->
          List.concat
            (List.mapi
               (fun i (arg : Ast.expr) ->
                 match List.nth_opt entry.Specdb.Spec_ast.e_params i with
                 | None -> []
                 | Some sp ->
                     List.filter_map
                       (fun v ->
                         match expr_of_value v with
                         | None -> None
                         | Some replacement ->
                             let p' =
                               Transform.replace_expr p ~eid:arg.Ast.eid
                                 ~replacement
                             in
                             Some
                               {
                                 m_source = Printer.program_to_string p';
                                 m_api = entry.Specdb.Spec_ast.e_name;
                                 m_guided = true;
                               })
                       (List.filteri (fun j _ -> j < 3) sp.Specdb.Spec_ast.p_values))
               cs.Visit.cs_args))
    sites

(* Algorithm 1 entry point.

   The strategies compose: driver synthesis first produces *executable*
   bases (a program whose functions are never called cannot expose
   anything); the initialiser and argument mutations are then applied to
   the first executable base, so their boundary values actually flow into
   an API call at run time. *)
let mutants_of_program (t : t) (src : string) : mutant list =
  match Jsparse.Parser.parse_program src with
  | exception Jsparse.Parser.Syntax_error _ -> []
  | p ->
      let p = bind_free_vars t p in
      let drivers = synthesize_drivers t p in
      let bases =
        match drivers with
        | [] -> [ p ] (* program already calls its functions *)
        | d :: _ -> (
            (* mutate on top of one executable base *)
            match Jsparse.Parser.parse_program d.m_source with
            | base -> [ base ]
            | exception Jsparse.Parser.Syntax_error _ -> [ p ])
      in
      let all =
        drivers
        @ List.concat_map
            (fun base -> mutate_var_inits t base @ mutate_call_args t base)
            bases
      in
      (* dedup identical sources, cap the total *)
      let seen = Hashtbl.create 16 in
      let uniq =
        List.filter
          (fun m ->
            if Hashtbl.mem seen m.m_source then false
            else begin
              Hashtbl.add seen m.m_source ();
              true
            end)
          all
      in
      let finalize (m : mutant) : mutant =
        match Jsparse.Parser.parse_program m.m_source with
        | p ->
            {
              m with
              m_source = Printer.program_to_string (observe_calls t.db p);
            }
        | exception Jsparse.Parser.Syntax_error _ -> m
      in
      List.map finalize
        (List.filteri (fun i _ -> i < t.max_mutants_per_program) uniq)

let mutate (t : t) (tc : Testcase.t) : Testcase.t list =
  if not tc.Testcase.tc_syntax_valid then []
  else
    List.map
      (fun m ->
        (* boundary-guided data is what Table 4 counts as "ECMA-262 guided
           mutation"; drivers with random data belong to the program-
           generation category *)
        let provenance =
          if m.m_guided then Testcase.P_ecma_mutated m.m_api
          else Testcase.P_generated
        in
        Testcase.make ~provenance m.m_source)
      (mutants_of_program t tc.Testcase.tc_source)
