(* Differential testing with majority voting (paper §3.4, Fig. 5).

   A test case runs on every applicable testbed; testbeds whose front end
   does not support the program's ECMAScript edition are excluded (§2.2).
   Each run is summarised to a behaviour signature; the majority signature
   is taken as ground truth and every minority testbed is reported as a
   deviation, classified into the Figure-5 vocabulary. Crashes and
   timeouts are flagged regardless of the vote. *)

open Jsinterp

type signature =
  | Sig_parse_fail
  | Sig_normal of string           (** printed output *)
  | Sig_exception of string * string  (** error name, output before throw *)
  | Sig_crash
  | Sig_timeout

let signature_to_string = function
  | Sig_parse_fail -> "parse error"
  | Sig_normal out -> "output " ^ String.escaped out
  | Sig_exception (name, _) -> "uncaught " ^ name
  | Sig_crash -> "crash"
  | Sig_timeout -> "timeout"

type deviation_kind =
  | Dev_parse       (** inconsistent parse outcome *)
  | Dev_output      (** wrong output *)
  | Dev_exception   (** throws where majority doesn't, or vice versa *)
  | Dev_crash       (** runtime crash *)
  | Dev_timeout     (** runtime timeout (2t rule) *)

let deviation_kind_to_string = function
  | Dev_parse -> "ParseError"
  | Dev_output -> "WrongOutput"
  | Dev_exception -> "Exception"
  | Dev_crash -> "Crash"
  | Dev_timeout -> "TimeOut"

type deviation = {
  d_testbed : Engines.Engine.testbed;
  d_kind : deviation_kind;
  d_expected : string;   (** majority signature, rendered *)
  d_actual : string;
  d_behavior : string;   (** leaf label for the bug-filter tree *)
  d_fired : Quirk.Set.t; (** ground-truth quirks that fired on this testbed *)
}

type case_report = {
  cr_case : Testcase.t;
  cr_deviations : deviation list;
  cr_all_parse_failed : bool;
  cr_all_timeout : bool;
  cr_tested : int;  (** testbeds that actually ran the case *)
  cr_faulted : (string * Supervisor.fault_report) list;
      (** testbeds whose supervised execution exhausted its retry budget;
          excluded from the vote, never reported as deviations *)
  cr_skipped : int;  (** testbeds dropped from the sweep by quarantine *)
}

(* Behaviour label in the style of the paper's Fig. 6 leaves. *)
let behavior_label (sig_ : signature) (majority : signature) : string =
  match (sig_, majority) with
  | Sig_crash, _ -> "Crash"
  | Sig_timeout, _ -> "TimeOut"
  | Sig_exception (name, _), _ -> name
  | Sig_normal _, Sig_exception (name, _) -> "Missing" ^ name
  | Sig_normal _, _ -> "WrongOutput"
  | Sig_parse_fail, _ -> "ParseError"

let kind_of (sig_ : signature) (majority : signature) : deviation_kind =
  match (sig_, majority) with
  | Sig_crash, _ -> Dev_crash
  | Sig_timeout, _ -> Dev_timeout
  | Sig_parse_fail, _ | _, Sig_parse_fail -> Dev_parse
  | Sig_exception _, _ | _, Sig_exception _ -> Dev_exception
  | Sig_normal _, _ -> Dev_output

(* Convert a run result to a signature; timeouts via fuel exhaustion. *)
let signature_of_result (r : Run.result) : signature =
  if not r.Run.r_parsed then Sig_parse_fail
  else
    match r.Run.r_status with
    | Run.Sts_normal -> Sig_normal r.Run.r_output
    | Run.Sts_uncaught (name, _) -> Sig_exception (name, r.Run.r_output)
    | Run.Sts_crash _ -> Sig_crash
    | Run.Sts_timeout -> Sig_timeout

(* The campaign's per-testbed execution budget, the single source of truth
   threaded through [run_case], [Campaign.run] and [Feedback.run_rounds].
   300k fuel units is deliberately far below [Run.default_fuel] (2M, sized
   for one-off interactive runs): it is deep enough to reach every seeded
   quirk's trigger — the costliest, the Hermes reverse-fill cost model,
   burns ~100k on generator-sized arrays — while keeping the 2t rule's
   20k-fuel timeout floor meaningful and bounding the worst case of a
   102-testbed sweep per case. *)
let campaign_fuel = 300_000

(* Execution sharing is on unless the user opts out, either per call
   ([~share:false]) or globally via the COMFORT_NO_SHARE environment
   variable (any non-empty value) — the escape hatch CI uses to run the
   whole suite down the direct path. *)
let share_by_default () =
  match Sys.getenv_opt "COMFORT_NO_SHARE" with
  | None | Some "" -> true
  | Some _ -> false

(* The 2t rule (§3.4): an engine that terminated but consumed more than
   twice the slowest of the other engines — with a floor to avoid noise —
   is flagged as a timeout. Each run excludes only itself from the "other
   engines" pool, by position: excluding by fuel value would also drop
   unrelated engines that happened to burn the same amount, letting two
   equally-slow engines each hide the other and both be falsely flagged. *)
let apply_2t_rule (results : (Engines.Engine.testbed * Run.result) list) :
    (Engines.Engine.testbed * Run.result * signature) list =
  (* One pass computes the count and top-two max fuels of the
     normally-terminated pool; excluding run [i] is then O(1): the pool
     max without [i] is the second max when [i] holds the unique maximum
     and the max otherwise (a duplicated maximum leaves second = first,
     which is also what excluding one copy yields). This runs once per
     execution per case, so the old quadratic rebuild of the pool was a
     measurable slice of the vote stage. *)
  let nf = ref 0 and m1 = ref 0 and m2 = ref 0 in
  List.iter
    (fun (_, (r : Run.result)) ->
      if r.Run.r_parsed && r.Run.r_status = Run.Sts_normal then begin
        incr nf;
        let f = r.Run.r_fuel_used in
        if f >= !m1 then begin
          m2 := !m1;
          m1 := f
        end
        else if f > !m2 then m2 := f
      end)
    results;
  List.map
    (fun (tb, (r : Run.result)) ->
      let sig_ = signature_of_result r in
      let normal = r.Run.r_parsed && r.Run.r_status = Run.Sts_normal in
      let n_others = if normal then !nf - 1 else !nf in
      let t = if normal && r.Run.r_fuel_used = !m1 then !m2 else !m1 in
      let slow =
        sig_ <> Sig_timeout && n_others > 0
        && r.Run.r_fuel_used > max (2 * t) 20_000
      in
      (tb, r, if slow then Sig_timeout else sig_))
    results

(* --- the worker half: the supervised testbed sweep --- *)

(* The raw material of one differential test, before any vote: every
   applicable testbed's supervised execution outcome. Produced on a
   worker domain; judged (vote, quarantine filtering) on the driver. The
   split is what keeps supervision deterministic: fault draws depend only
   on (plan, testbed, case key), while every stateful decision — which
   testbeds are quarantined, what the majority is — happens in
   submission order on the driver. *)
type sweep = {
  sw_case : Testcase.t;
  sw_key : int;  (** the case key the fault draws were keyed by *)
  sw_execs :
    (Engines.Engine.testbed * Jsinterp.Run.result Supervisor.outcome) list;
}

let sweep_case ?(fuel = campaign_fuel) ?share ?resolve ?reach ?specialize
    ?plan ?policy ?supervisor ?(case_key = 0) ?cache
    (testbeds : Engines.Engine.testbed list) (tc : Testcase.t) : sweep =
  Run.Stage.time Run.Stage.sweep @@ fun () ->
  let share =
    match share with Some s -> s | None -> share_by_default ()
  in
  (* one execution-sharing cache per case: edition gating and the
     per-group parse are shared across the whole testbed sweep either
     way; with [share] on, whole executions are shared across behavioural
     equivalence classes too (DESIGN.md §8). [cache] lets the campaign
     driver share one cache across this case's several sweeps (one per
     mode group) so the base parses and their reach analyses run once per
     case, not once per group — classes are keyed by mode, so no
     execution is ever shared across groups; it must have been built for
     [tc]'s source, on the calling domain. *)
  let ec =
    match cache with
    | Some ec -> ec
    | None -> Engines.Engine.Exec.cache tc.Testcase.tc_source
  in
  let fc = Engines.Engine.Exec.frontend_cache ec in
  (* edition gating: skip engines whose front end cannot express the
     program when the standard front end can *)
  let applicable =
    List.filter
      (fun (tb : Engines.Engine.testbed) ->
        Engines.Engine.Frontend.supports fc tb.Engines.Engine.tb_config)
      testbeds
  in
  let supervised = supervisor <> None || plan <> None || policy <> None in
  let execs =
    List.map
      (fun (tb : Engines.Engine.testbed) ->
        let thunk () =
          if share then
            Engines.Engine.Exec.run ~fuel ?resolve ?reach ?specialize ec tb
          else
            Engines.Engine.run ~fuel ?resolve ?reach ?specialize
              ~frontend:(Engines.Engine.Frontend.frontend fc tb)
              tb tc.Testcase.tc_source
        in
        let outcome =
          if not supervised then
            (* happy path: no supervision requested, run bare — a real
               escaped exception then still poisons the item, as before
               this layer existed. The testbed-id string is only built on
               the supervised path; at ~12.5 executions per case the
               sprintf was visible in the sweep-stage profile. *)
            Supervisor.Done (thunk (), Supervisor.ok_meta)
          else
            let tb_id = Engines.Engine.testbed_id tb in
            (* the racy peek: skipping work for an already-quarantined
               testbed is sound because the judge re-checks against
               driver state, and the quarantine set only grows *)
            match supervisor with
            | Some sup when Supervisor.quarantined_now sup tb_id ->
                Supervisor.Skipped
            | _ ->
                if plan = None && policy = None then
                  Supervisor.Done (thunk (), Supervisor.ok_meta)
                else
                  Supervisor.execute ?plan ?policy ~testbed_id:tb_id
                    ~case_key thunk
        in
        (tb, outcome))
      applicable
  in
  { sw_case = tc; sw_key = case_key; sw_execs = execs }

(* --- the driver half: quarantine filtering, the vote, the verdict --- *)

let judge ?supervisor (sw : sweep) : case_report =
  Run.Stage.time Run.Stage.vote @@ fun () ->
  let tc = sw.sw_case in
  (* split the sweep against *driver* quarantine state: results from
     testbeds quarantined by an earlier case are discarded whether or not
     the worker skipped them (it may have raced ahead), so the report is
     a pure function of the in-order case stream *)
  let results = ref [] and faulted = ref [] and skipped = ref 0 in
  (match supervisor with
  | None ->
      (* unsupervised: no quarantine to consult and no observation log to
         feed, so skip building the per-testbed id strings entirely (the
         ids are only needed for the rare Faulted/Skipped outcomes) *)
      List.iter
        (fun ((tb : Engines.Engine.testbed), outcome) ->
          match outcome with
          | Supervisor.Done (r, _) -> results := (tb, r) :: !results
          | Supervisor.Faulted fr ->
              faulted := (Engines.Engine.testbed_id tb, fr) :: !faulted
          | Supervisor.Skipped -> incr skipped)
        sw.sw_execs
  | Some sup ->
      let observations =
        List.filter_map
          (fun ((tb : Engines.Engine.testbed), outcome) ->
            let tb_id = Engines.Engine.testbed_id tb in
            if Supervisor.quarantined sup tb_id then begin
              incr skipped;
              Some (tb_id, Supervisor.Ob_skipped)
            end
            else
              match outcome with
              | Supervisor.Done (r, meta) ->
                  results := (tb, r) :: !results;
                  Some (tb_id, Supervisor.Ob_ok meta)
              | Supervisor.Faulted fr ->
                  faulted := (tb_id, fr) :: !faulted;
                  Some (tb_id, Supervisor.Ob_faulted fr)
              | Supervisor.Skipped ->
                  (* worker saw a quarantine the driver has not reached
                     yet; impossible under the monotone protocol, but
                     treat it as skipped rather than invent a result *)
                  incr skipped;
                  Some (tb_id, Supervisor.Ob_skipped))
          sw.sw_execs
      in
      Supervisor.observe sup ~case_key:sw.sw_key observations);
  let results = List.rev !results in
  let faulted = List.rev !faulted in
  let skipped = !skipped in
  let runs = apply_2t_rule results in
  let tested = List.length runs in
  let all_parse_failed =
    runs <> [] && List.for_all (fun (_, _, s) -> s = Sig_parse_fail) runs
  in
  let all_timeout =
    runs <> [] && List.for_all (fun (_, _, s) -> s = Sig_timeout) runs
  in
  if all_parse_failed || all_timeout || tested < 3 then
    {
      cr_case = tc;
      cr_deviations = [];
      cr_all_parse_failed = all_parse_failed;
      cr_all_timeout = all_timeout;
      cr_tested = tested;
      cr_faulted = faulted;
      cr_skipped = skipped;
    }
  else begin
    (* majority vote over signatures: one counting pass, then one
       deterministic scan in testbed order (first-seen wins ties) *)
    let counts : (signature, int) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (_, _, s) ->
        Hashtbl.replace counts s
          (1 + Option.value (Hashtbl.find_opt counts s) ~default:0))
      runs;
    let majority_sig, majority_n =
      List.fold_left
        (fun (bs, bn) (_, _, s) ->
          let n = Hashtbl.find counts s in
          if n > bn then (s, n) else (bs, bn))
        (Sig_parse_fail, 0) runs
    in
    let have_majority = 2 * majority_n > tested in
    let deviations =
      List.filter_map
        (fun ((tb : Engines.Engine.testbed), (r : Run.result), s) ->
          let is_anomaly =
            match s with
            | Sig_crash | Sig_timeout -> true (* always of interest *)
            | _ -> have_majority && s <> majority_sig
          in
          if not is_anomaly then None
          else
            Some
              {
                d_testbed = tb;
                d_kind = kind_of s majority_sig;
                d_expected = signature_to_string majority_sig;
                d_actual = signature_to_string s;
                d_behavior = behavior_label s majority_sig;
                d_fired = r.Run.r_fired;
              })
        runs
    in
    {
      cr_case = tc;
      cr_deviations = deviations;
      cr_all_parse_failed = false;
      cr_all_timeout = false;
      cr_tested = tested;
      cr_faulted = faulted;
      cr_skipped = skipped;
    }
  end

(* One differential test, sweep and judge in one go — the entry point for
   everything that tests a case outside a supervised campaign loop. With
   no [plan]/[policy]/[supervisor] this computes exactly what it did
   before the supervision layer existed. *)
let run_case ?fuel ?share ?resolve ?reach ?specialize ?plan ?policy
    ?supervisor ?case_key ?cache (testbeds : Engines.Engine.testbed list)
    (tc : Testcase.t) : case_report =
  judge ?supervisor
    (sweep_case ?fuel ?share ?resolve ?reach ?specialize ?plan ?policy
       ?supervisor ?case_key ?cache testbeds tc)

(* Field-wise report equality. [Quirk.Set.t] is a balanced tree whose
   shape depends on insertion order, so structural [(=)] on the whole
   record is unreliable; deviations are compared field by field with
   [Quirk.Set.equal] on the fired sets. *)
let deviation_equal (a : deviation) (b : deviation) : bool =
  Engines.Engine.testbed_id a.d_testbed = Engines.Engine.testbed_id b.d_testbed
  && a.d_kind = b.d_kind
  && a.d_expected = b.d_expected
  && a.d_actual = b.d_actual
  && a.d_behavior = b.d_behavior
  && Quirk.Set.equal a.d_fired b.d_fired

let report_equal (a : case_report) (b : case_report) : bool =
  a.cr_case.Testcase.tc_source = b.cr_case.Testcase.tc_source
  && a.cr_all_parse_failed = b.cr_all_parse_failed
  && a.cr_all_timeout = b.cr_all_timeout
  && a.cr_tested = b.cr_tested
  && List.length a.cr_deviations = List.length b.cr_deviations
  && List.for_all2 deviation_equal a.cr_deviations b.cr_deviations
  && List.map fst a.cr_faulted = List.map fst b.cr_faulted
  && a.cr_skipped = b.cr_skipped

exception Share_mismatch of string

(* The audit mode: run the case down both paths and fail loudly on any
   divergence. Returns the shared report so an auditing campaign can use
   it as the real result of the case. *)
let audit_case ?(fuel = campaign_fuel) ?resolve ?reach ?specialize
    (testbeds : Engines.Engine.testbed list) (tc : Testcase.t) : case_report =
  let shared =
    run_case ~fuel ~share:true ?resolve ?reach ?specialize testbeds tc
  in
  let direct =
    run_case ~fuel ~share:false ?resolve ?reach ?specialize testbeds tc
  in
  if not (report_equal shared direct) then
    raise
      (Share_mismatch
         (Printf.sprintf
            "execution sharing changed the report of case %d \
             (shared: %d deviations, direct: %d)\nsource:\n%s"
            tc.Testcase.tc_id
            (List.length shared.cr_deviations)
            (List.length direct.cr_deviations)
            tc.Testcase.tc_source));
  shared

exception Reach_unsound of string

(* The reach-audit mode: before producing the case's ordinary report,
   execute the case *directly* (no sharing, so every testbed's own
   r_touched is observed, not inherited) on every applicable testbed and
   assert the static reach set of its parse group covers the dynamic
   touched set. A violation is a soundness bug in [Analysis.Reach] —
   never a fault to absorb. *)
let audit_reach_case ?(fuel = campaign_fuel) ?share ?resolve ?reach
    ?specialize (testbeds : Engines.Engine.testbed list) (tc : Testcase.t) :
    case_report =
  let fc = Engines.Engine.Frontend.cache tc.Testcase.tc_source in
  List.iter
    (fun (tb : Engines.Engine.testbed) ->
      if Engines.Engine.Frontend.supports fc tb.Engines.Engine.tb_config
      then begin
        let fe = Engines.Engine.Frontend.frontend fc tb in
        let r =
          (* the dynamic touched set must be the testbed's own observation,
             so this probe runs generic: a specialised closure's baked-in
             answers record the same touched set, but the audit should not
             have to trust that *)
          Engines.Engine.run ~fuel ?resolve ?reach ~specialize:false
            ~frontend:fe tb tc.Testcase.tc_source
        in
        let static = Jsinterp.Run.reach_set fe in
        if not (Jsinterp.Quirk.Set.subset r.Run.r_touched static) then
          let missing =
            Jsinterp.Quirk.Set.diff r.Run.r_touched static
            |> Jsinterp.Quirk.Set.elements
            |> List.map Jsinterp.Quirk.to_string
            |> String.concat ", "
          in
          raise
            (Reach_unsound
               (Printf.sprintf
                  "static reach set of case %d misses checkpoints consulted \
                   on %s: %s\nsource:\n%s"
                  tc.Testcase.tc_id
                  (Engines.Engine.testbed_id tb)
                  missing tc.Testcase.tc_source))
      end)
    testbeds;
  run_case ~fuel ?share ?resolve ?reach ?specialize testbeds tc

exception Specialize_mismatch of string

(* The specialise-audit mode: run the case once down the quirk-specialised
   fast path and once down the generic compiled path, and fail loudly on
   any field-wise report divergence. This is the dynamic check backing the
   static argument of DESIGN.md §12: baked-in checkpoint answers, inline
   caches and copy-on-write realm reuse must all be invisible in results.
   Returns the specialised report so an auditing campaign can use it as
   the real result of the case. *)
let audit_specialize_case ?(fuel = campaign_fuel) ?share ?resolve ?reach
    (testbeds : Engines.Engine.testbed list) (tc : Testcase.t) : case_report =
  let fast =
    run_case ~fuel ?share ?resolve ?reach ~specialize:true testbeds tc
  in
  let generic =
    run_case ~fuel ?share ?resolve ?reach ~specialize:false testbeds tc
  in
  if not (report_equal fast generic) then
    raise
      (Specialize_mismatch
         (Printf.sprintf
            "quirk specialisation changed the report of case %d \
             (specialised: %d deviations, generic: %d)\nsource:\n%s"
            tc.Testcase.tc_id
            (List.length fast.cr_deviations)
            (List.length generic.cr_deviations)
            tc.Testcase.tc_source));
  fast
