(** Differential testing with majority voting (paper §3.4, Figure 5).

    A test case runs on every applicable testbed; engines whose front end
    does not support the program's ECMAScript edition are excluded (§2.2).
    Each run is summarised to a behaviour signature, the majority signature
    is taken as ground truth, and minority testbeds are reported as
    deviations. Crashes and timeouts are flagged regardless of the vote. *)

type signature =
  | Sig_parse_fail
  | Sig_normal of string              (** printed output *)
  | Sig_exception of string * string  (** error name, output before throw *)
  | Sig_crash
  | Sig_timeout

val signature_to_string : signature -> string

(** The Figure-5 outcome classes a deviation can take. *)
type deviation_kind = Dev_parse | Dev_output | Dev_exception | Dev_crash | Dev_timeout

val deviation_kind_to_string : deviation_kind -> string

type deviation = {
  d_testbed : Engines.Engine.testbed;
  d_kind : deviation_kind;
  d_expected : string;   (** majority signature, rendered *)
  d_actual : string;
  d_behavior : string;   (** leaf label for the Fig. 6 filter tree *)
  d_fired : Jsinterp.Quirk.Set.t;
      (** ground-truth quirks that fired on the deviating run *)
}

type case_report = {
  cr_case : Testcase.t;
  cr_deviations : deviation list;
  cr_all_parse_failed : bool;  (** consistent parse error — case ignored *)
  cr_all_timeout : bool;       (** likely an infinite loop — case ignored *)
  cr_tested : int;             (** testbeds that actually ran the case *)
  cr_faulted : (string * Supervisor.fault_report) list;
      (** testbeds whose supervised execution exhausted its retry budget
          (infrastructure faults, Fig. 5's harness-failure lane): excluded
          from the vote, never reported as deviations *)
  cr_skipped : int;            (** testbeds dropped by quarantine *)
}

(** Classify one engine run. *)
val signature_of_result : Jsinterp.Run.result -> signature

val behavior_label : signature -> signature -> string
val kind_of : signature -> signature -> deviation_kind

(** The campaign's per-testbed execution budget (fuel units standing in
    for wall-clock) — the single constant behind [run_case],
    [Campaign.run] and [Feedback.run_rounds]. Deliberately far below
    [Run.default_fuel]: deep enough for every seeded quirk trigger while
    keeping the 2t rule's timeout floor meaningful across a 102-testbed
    sweep. *)
val campaign_fuel : int

(** Is execution sharing enabled by default? True unless the
    COMFORT_NO_SHARE environment variable is set to a non-empty value. *)
val share_by_default : unit -> bool

(** The §3.4 2t rule: a run that terminated normally but burned more than
    twice the slowest {e other} run (floor 20k fuel) is reclassified as a
    timeout. Exclusion of "self" from the comparison pool is by position,
    never by fuel value, so two equally-slow engines cannot hide each
    other. Exposed for the test suite. *)
val apply_2t_rule :
  (Engines.Engine.testbed * Jsinterp.Run.result) list ->
  (Engines.Engine.testbed * Jsinterp.Run.result * signature) list

(** The raw material of one differential test: every applicable testbed's
    supervised execution outcome, before any vote. Produced on a worker
    domain by {!sweep_case}; turned into a {!case_report} on the driver by
    {!judge}. The split is what keeps supervision deterministic
    (DESIGN.md §10): fault draws depend only on (plan, testbed, case
    key), and every stateful decision — quarantine, the majority — runs
    in submission order on the driver. *)
type sweep = {
  sw_case : Testcase.t;
  sw_key : int;  (** the case key the fault draws were keyed by *)
  sw_execs :
    (Engines.Engine.testbed * Jsinterp.Run.result Supervisor.outcome) list;
}

(** The worker half of one differential test: execute the case on every
    applicable testbed under the fault plan and supervision policy.
    [supervisor] is consulted only through its racy monotone quarantine
    snapshot, to skip work {!judge} would discard. With no
    [plan]/[policy] the per-testbed execution is the bare engine run.
    [cache] shares one per-case {!Engines.Engine.Exec} cache across this
    case's several sweeps (the campaign sweeps each mode group
    separately), so the base parses and reach analyses run once per case;
    it must have been built for [tc]'s source on the calling domain.
    Classes are keyed by mode, so no execution is shared across groups —
    the report is byte-identical with or without it. *)
val sweep_case :
  ?fuel:int ->
  ?share:bool ->
  ?resolve:bool ->
  ?reach:bool ->
  ?specialize:bool ->
  ?plan:Supervisor.Faultplan.t ->
  ?policy:Supervisor.policy ->
  ?supervisor:Supervisor.t ->
  ?case_key:int ->
  ?cache:Engines.Engine.Exec.cache ->
  Engines.Engine.testbed list ->
  Testcase.t ->
  sweep

(** The driver half: discard results from quarantined testbeds, feed the
    supervisor its per-testbed observations (updating consecutive-fault
    counters and the quarantine set), then vote over the surviving runs
    exactly as an unsupervised sweep would. Must be called in case
    submission order when a supervisor is threaded through. *)
val judge : ?supervisor:Supervisor.t -> sweep -> case_report

(** Run one test case across the given testbeds and vote —
    [judge (sweep_case ...)]. [share] (default {!share_by_default})
    collapses the sweep into behavioural equivalence classes via
    {!Engines.Engine.Exec}, executing once per class instead of once per
    testbed; the report is byte-identical either way (DESIGN.md §8).
    [resolve] (default {!Jsinterp.Run.resolve_by_default}) selects the
    slot-compiled interpreter core for reference executions (DESIGN.md
    §9); the report is byte-identical either way. [reach] (default
    {!Jsinterp.Run.reach_by_default}) consults the static checkpoint
    reachability analysis (DESIGN.md §11) to seed sharing cells and fold
    unreachable checkpoint consultations; the report is byte-identical
    either way. [specialize] (default
    {!Jsinterp.Run.specialize_by_default}) executes on the
    quirk-specialised fast path — copy-on-write realms, per-cell compiled
    closures with baked-in checkpoint answers, inline caches (DESIGN.md
    §12); the report is byte-identical either way.
    [plan]/[policy]/[supervisor] enable supervised execution
    (DESIGN.md §10); with all three absent the report is exactly the
    pre-supervision one. [cache] is passed through to {!sweep_case}. *)
val run_case :
  ?fuel:int ->
  ?share:bool ->
  ?resolve:bool ->
  ?reach:bool ->
  ?specialize:bool ->
  ?plan:Supervisor.Faultplan.t ->
  ?policy:Supervisor.policy ->
  ?supervisor:Supervisor.t ->
  ?case_key:int ->
  ?cache:Engines.Engine.Exec.cache ->
  Engines.Engine.testbed list ->
  Testcase.t ->
  case_report

(** Field-wise equality of deviations / reports, using
    [Quirk.Set.equal] on the fired sets (structural [(=)] is unreliable
    on sets). *)
val deviation_equal : deviation -> deviation -> bool

val report_equal : case_report -> case_report -> bool

exception Share_mismatch of string

(** Cross-check mode: run the case once shared and once direct, raise
    {!Share_mismatch} if the reports differ in any observable field, and
    return the shared report otherwise. *)
val audit_case :
  ?fuel:int ->
  ?resolve:bool ->
  ?reach:bool ->
  ?specialize:bool ->
  Engines.Engine.testbed list ->
  Testcase.t ->
  case_report

exception Reach_unsound of string

(** Soundness-audit mode for the static reachability analysis: execute
    the case directly (no sharing) on every applicable testbed, raise
    {!Reach_unsound} if any run consulted a checkpoint outside the static
    reach set of its parse group ([Run.reach_set]), and return the
    ordinary {!run_case} report otherwise. *)
val audit_reach_case :
  ?fuel:int ->
  ?share:bool ->
  ?resolve:bool ->
  ?reach:bool ->
  ?specialize:bool ->
  Engines.Engine.testbed list ->
  Testcase.t ->
  case_report

exception Specialize_mismatch of string

(** Cross-check mode for the quirk-specialised fast path: run the case
    once specialised and once generic, raise {!Specialize_mismatch} if
    the reports differ in any observable field, and return the
    specialised report otherwise (the dynamic check behind DESIGN.md
    §12's correctness ladder). *)
val audit_specialize_case :
  ?fuel:int ->
  ?share:bool ->
  ?resolve:bool ->
  ?reach:bool ->
  Engines.Engine.testbed list ->
  Testcase.t ->
  case_report
