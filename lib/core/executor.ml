(* Parallel campaign executor: a fixed-size Domain-based worker pool.

   The paper's campaigns run 250k test cases against 102 testbeds; the
   per-case differential sweep dominates the cost and is embarrassingly
   parallel, so [run_ordered] fans it out across OCaml 5 domains while the
   caller consumes completed results strictly in submission order. In-order
   consumption is what keeps the campaign driver's stateful stages — the
   Fig. 6 filter tree, (engine, quirk) dedup, the Fig. 8 timeline —
   byte-identical to a sequential run at any job count.

   Domain-safety contract for submitted work: a job must only touch state
   it owns (each engine run builds a fresh realm; per-case caches live in
   the worker that owns the case). The few process-wide counters the jobs
   reach (AST node ids, object ids, the parse counter) are atomics. The
   shared lazies every job reads (the spec database, the language model)
   are forced by [create] itself before any worker domain exists, so
   callers no longer have to remember.

   The pool holds [jobs] worker domains pulling thunks from one queue; the
   submitting domain never blocks inside a worker's critical section. With
   [jobs <= 1] no domain is ever spawned and every entry point degrades to
   the plain sequential loop, so `--jobs 1` is exactly the old behaviour. *)

type task = Task of (unit -> unit) | Quit

type t = {
  jobs : int;
  queue : task Queue.t;
  lock : Mutex.t;
  has_task : Condition.t;
  workers : unit Domain.t array;  (* empty when jobs <= 1 *)
  mutable stopped : bool;         (* set (under [lock]) by [shutdown] *)
}

let default_jobs () =
  match Sys.getenv_opt "COMFORT_JOBS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 1)
  | None -> 1

let jobs (t : t) = t.jobs

(* OCaml 5 forbids [Unix.fork] in any process that has ever spawned a
   domain — permanently, even after every domain is joined. The
   coordinator consults this flag to degrade to in-process execution
   instead of tripping the runtime's failure. *)
let domains_spawned = Atomic.make false

let domains_ever_spawned () = Atomic.get domains_spawned

let spawn_domain f =
  Atomic.set domains_spawned true;
  Domain.spawn f

let create ?(jobs = default_jobs ()) () : t =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      queue = Queue.create ();
      lock = Mutex.create ();
      has_task = Condition.create ();
      workers = [||];
      stopped = false;
    }
  in
  if jobs <= 1 then t
  else begin
    (* force the process-wide lazies before any worker domain exists: a
       lazy forced concurrently from two domains raises Lazy.Undefined on
       the loser, and these two are the ones every campaign job reads *)
    ignore (Lazy.force Specdb.Db.standard);
    ignore (Lazy.force Lm.Model.comfort);
    let worker () =
      let rec loop () =
        Mutex.lock t.lock;
        while Queue.is_empty t.queue do
          Condition.wait t.has_task t.lock
        done;
        let task = Queue.pop t.queue in
        Mutex.unlock t.lock;
        match task with
        | Quit -> ()
        | Task f ->
            f ();
            loop ()
      in
      loop ()
    in
    (* the workers share [t]'s queue/lock through the closure; only the
       array field differs between the two records *)
    { t with workers = Array.init jobs (fun _ -> spawn_domain worker) }
  end

let submit (t : t) (f : unit -> unit) : unit =
  Mutex.lock t.lock;
  Queue.add (Task f) t.queue;
  Condition.signal t.has_task;
  Mutex.unlock t.lock

(* Idempotent for every pool size: the first call drains pending work and
   joins every worker; later calls (and calls racing the first from the
   same driver, e.g. an exception handler followed by [with_pool]'s
   [finally]) see [stopped] and return. *)
let shutdown (t : t) : unit =
  if Array.length t.workers > 0 then begin
    Mutex.lock t.lock;
    let first = not t.stopped in
    if first then begin
      t.stopped <- true;
      Array.iter (fun _ -> Queue.add Quit t.queue) t.workers;
      Condition.broadcast t.has_task
    end;
    Mutex.unlock t.lock;
    if first then Array.iter Domain.join t.workers
  end
  else t.stopped <- true

let with_pool ?jobs (f : t -> 'a) : 'a =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Fan [f] over [xs] with bounded in-flight work; [consume i x (f x)] runs
   on the calling domain in submission order (i = 0, 1, 2, ...). The
   window is a ring of result slots: job [i] lands in slot [i mod window],
   and slot [i mod window] is guaranteed free when job [i] is submitted
   because job [i - window] was consumed first.

   Failure handling: a worker exception is re-raised at the job's
   consumption point, preserving order — unless [on_exn] is given, in
   which case the exception is mapped to an ordinary consumable value and
   the sweep carries on (the supervised mode: one poisoned item must not
   kill a campaign). Either way, before [run_ordered] returns or raises it
   waits for every in-flight job to land, so no worker still references
   the ring afterwards and the pool is immediately reusable or
   shutdown-able.

   [stop], polled after each consumption, halts the fan-out early: no new
   jobs are submitted, the in-flight tail is drained without being
   consumed, and the call returns. Used by the campaign driver to abort
   when every testbed is quarantined (and by checkpoint halts) without
   poisoning the pool. *)
let run_ordered (t : t) ?window ?on_exn ?(stop = fun () -> false)
    (f : 'a -> 'b) (xs : 'a list) ~(consume : int -> 'a -> 'b -> unit) : unit
    =
  if t.jobs <= 1 then begin
    let rec seq i = function
      | [] -> ()
      | x :: rest ->
          let y =
            match f x with
            | y -> y
            | exception e -> (
                match on_exn with Some h -> h i x e | None -> raise e)
          in
          consume i x y;
          if not (stop ()) then seq (i + 1) rest
    in
    seq 0 xs
  end
  else begin
    let arr = Array.of_list xs in
    let n = Array.length arr in
    if n > 0 then begin
      let window =
        let w = match window with Some w -> w | None -> 4 * t.jobs in
        max t.jobs (min w n)
      in
      let slots : ('b, exn) Stdlib.result option array =
        Array.make window None
      in
      let slot_done = Condition.create () in
      let submitted = ref 0 in
      let submit_job i =
        incr submitted;
        submit t (fun () ->
            let r = try Ok (f arr.(i)) with e -> Error e in
            Mutex.lock t.lock;
            slots.(i mod window) <- Some r;
            Condition.broadcast slot_done;
            Mutex.unlock t.lock)
      in
      (* take job [i]'s landed result out of the ring, blocking until the
         worker has delivered it *)
      let take i =
        Mutex.lock t.lock;
        while Option.is_none slots.(i mod window) do
          Condition.wait slot_done t.lock
        done;
        let r = Option.get slots.(i mod window) in
        slots.(i mod window) <- None;
        Mutex.unlock t.lock;
        r
      in
      (* wait out jobs submitted but not yet consumed, discarding their
         results: the exception/early-stop path must leave no worker
         holding a reference into the ring *)
      let drain from =
        for j = from to !submitted - 1 do
          ignore (take j)
        done
      in
      for i = 0 to min window n - 1 do
        submit_job i
      done;
      let i = ref 0 in
      let halted = ref false in
      (try
         while (not !halted) && !i < n do
           let r = take !i in
           (* refill the freed slot before consuming so workers stay busy
              while the driver runs its (potentially slow) stateful stage *)
           if !i + window < n then submit_job (!i + window);
           let y =
             match r with
             | Ok y -> y
             | Error e -> (
                 match on_exn with
                 | Some h -> h !i arr.(!i) e
                 | None -> raise e)
           in
           consume !i arr.(!i) y;
           incr i;
           if stop () then halted := true
         done
       with e ->
         drain (!i + 1);
         raise e);
      if !halted then drain !i
    end
  end

(* Order-preserving parallel map over a short list, on ephemeral domains.
   Used for the small inner fan-outs (causal re-execution per quirk, the
   reducer's candidate probes) where a persistent pool isn't worth its
   coordination. Work is claimed by atomic counter, results land in
   per-index slots, and the join gives the happens-before edge that makes
   reading them back race-free. *)
let map ?(jobs = 1) (f : 'a -> 'b) (xs : 'a list) : 'b list =
  let n = List.length xs in
  let jobs = min (max 1 jobs) n in
  if jobs <= 1 then List.map f xs
  else begin
    let arr = Array.of_list xs in
    let out : ('b, exn) Stdlib.result option array = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          out.(i) <- Some (try Ok (f arr.(i)) with e -> Error e);
          loop ()
        end
      in
      loop ()
    in
    let ds = Array.init jobs (fun _ -> spawn_domain worker) in
    Array.iter Domain.join ds;
    Array.to_list
      (Array.map
         (function
           | Some (Ok y) -> y
           | Some (Error e) -> raise e
           | None -> assert false)
         out)
  end
