(** Parallel campaign executor: a fixed-size Domain-based worker pool.

    {!run_ordered} fans per-item work (the campaign's per-case 102-testbed
    sweep) across OCaml 5 domains in a bounded window while the caller
    consumes completed results strictly in submission order — which keeps
    every stateful driver stage (Fig. 6 filter tree, dedup, Fig. 8
    timeline) byte-identical to a sequential run at any job count.

    Submitted work must only touch state it owns: each engine run builds a
    fresh realm, per-case caches stay inside the worker that owns the
    case, and the process-wide id counters the jobs reach are atomics.
    Shared lazies (spec database, language model) must be forced before
    work is submitted.

    With [jobs <= 1] no domain is spawned and everything degrades to the
    plain sequential loop. *)

type t

(** [COMFORT_JOBS] from the environment, else 1 (sequential). *)
val default_jobs : unit -> int

(** Spawn a pool of [jobs] worker domains (default {!default_jobs}).
    Must be {!shutdown}; prefer {!with_pool}. *)
val create : ?jobs:int -> unit -> t

val jobs : t -> int

(** Run a queued thunk on some worker (callers normally want
    {!run_ordered}). *)
val submit : t -> (unit -> unit) -> unit

(** Drain pending work, stop and join every worker. Idempotent only for
    [jobs <= 1] pools; call exactly once otherwise. *)
val shutdown : t -> unit

(** [with_pool ?jobs f] = [create], [f], guaranteed [shutdown]. *)
val with_pool : ?jobs:int -> (t -> 'a) -> 'a

(** [run_ordered t f xs ~consume] computes [f x] for every element on the
    pool, keeping at most [window] (default [4 * jobs]) items in flight,
    and calls [consume i x (f x)] on the calling domain in strict
    submission order. A worker exception is re-raised at that item's
    consumption point. *)
val run_ordered :
  t ->
  ?window:int ->
  ('a -> 'b) ->
  'a list ->
  consume:(int -> 'a -> 'b -> unit) ->
  unit

(** Order-preserving parallel map on ephemeral domains, for small inner
    fan-outs (causal re-execution, reducer candidate probes). [jobs <= 1]
    (the default) is exactly [List.map]. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
