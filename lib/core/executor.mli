(** Parallel campaign executor: a fixed-size Domain-based worker pool.

    {!run_ordered} fans per-item work (the campaign's per-case 102-testbed
    sweep) across OCaml 5 domains in a bounded window while the caller
    consumes completed results strictly in submission order — which keeps
    every stateful driver stage (Fig. 6 filter tree, dedup, Fig. 8
    timeline) byte-identical to a sequential run at any job count.

    Submitted work must only touch state it owns: each engine run builds a
    fresh realm, per-case caches stay inside the worker that owns the
    case, and the process-wide id counters the jobs reach are atomics.
    The shared lazies every campaign job reads (the spec database, the
    language model) are forced by {!create} before any worker domain is
    spawned, so callers need not remember to.

    With [jobs <= 1] no domain is spawned and everything degrades to the
    plain sequential loop. *)

type t

(** [COMFORT_JOBS] from the environment, else 1 (sequential). *)
val default_jobs : unit -> int

(** Spawn a pool of [jobs] worker domains (default {!default_jobs}),
    forcing the process-wide lazies (spec database, language model) first
    when [jobs > 1]. Must be {!shutdown}; prefer {!with_pool}. *)
val create : ?jobs:int -> unit -> t

val jobs : t -> int

(** Has this process ever spawned a worker domain (by any pool or
    {!map})? OCaml 5 forbids [Unix.fork] from then on — permanently,
    even after every domain is joined — so [Coordinator.available]
    consults this to degrade process isolation to in-process execution
    instead of tripping the runtime failure. *)
val domains_ever_spawned : unit -> bool

(** Run a queued thunk on some worker (callers normally want
    {!run_ordered}). *)
val submit : t -> (unit -> unit) -> unit

(** Drain pending work, stop and join every worker. Idempotent at every
    pool size: the first call joins the workers, later calls return
    immediately. *)
val shutdown : t -> unit

(** [with_pool ?jobs f] = [create], [f], guaranteed [shutdown]. *)
val with_pool : ?jobs:int -> (t -> 'a) -> 'a

(** [run_ordered t f xs ~consume] computes [f x] for every element on the
    pool, keeping at most [window] (default [4 * jobs]) items in flight,
    and calls [consume i x (f x)] on the calling domain in strict
    submission order.

    A worker exception is re-raised at that item's consumption point —
    unless [on_exn] is given, in which case [on_exn i x e] supplies the
    value consumed for the failed item and the fan-out carries on (the
    supervised mode: one poisoned item is recorded, not fatal). On every
    exit path — normal, exception, early stop — all in-flight work is
    drained first, so the pool is left immediately reusable and
    {!shutdown}-safe.

    [stop], polled after each consumption, halts the fan-out early: no
    further jobs are submitted and un-consumed in-flight results are
    discarded. *)
val run_ordered :
  t ->
  ?window:int ->
  ?on_exn:(int -> 'a -> exn -> 'b) ->
  ?stop:(unit -> bool) ->
  ('a -> 'b) ->
  'a list ->
  consume:(int -> 'a -> 'b -> unit) ->
  unit

(** Order-preserving parallel map on ephemeral domains, for small inner
    fan-outs (causal re-execution, reducer candidate probes). [jobs <= 1]
    (the default) is exactly [List.map]. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
