(* Feedback-driven mutation of bug-exposing test cases — the extension the
   paper sketches as future work (§5.5: "extending Comfort to mutate
   bug-exposing test cases could be valuable", in the spirit of LangFuzz).

   [wrap base] produces a fuzzer that behaves like [base] but maintains a
   bank of "interesting" test cases — those that deviated on some testbed —
   and mixes mutants of banked cases into each batch. Mutants preserve the
   bank member's structure (literal and operator mutation, plus splicing a
   statement from another banked case), the aspect-preserving idea the
   paper cites from DIE.

   The campaign driver feeds deviations back through [record]; the wrapper
   then probes the neighbourhood of every bug it has seen so far. *)

type t = {
  fb_base : Campaign.fuzzer;
  fb_rng : Cutil.Rng.t;
  fb_bank : Jsast.Ast.program Queue.t;
  fb_mix : float;  (** fraction of each batch drawn from bank mutants *)
  mutable fb_banked : int;
}

let create ?(seed = 51) ?(mix = 0.3) (base : Campaign.fuzzer) : t =
  {
    fb_base = base;
    fb_rng = Cutil.Rng.create seed;
    fb_bank = Queue.create ();
    fb_mix = mix;
    fb_banked = 0;
  }

(* Bank a test case that exposed a deviation. *)
let record (t : t) (tc : Testcase.t) : unit =
  match Jsparse.Parser.parse_program tc.Testcase.tc_source with
  | p ->
      Queue.add p t.fb_bank;
      t.fb_banked <- t.fb_banked + 1;
      (* bound the bank; oldest cases rotate out *)
      if Queue.length t.fb_bank > 200 then ignore (Queue.pop t.fb_bank)
  | exception Jsparse.Parser.Syntax_error _ -> ()

let bank_size (t : t) = Queue.length t.fb_bank

let mutate_banked (t : t) : string option =
  if Queue.is_empty t.fb_bank then None
  else begin
    let members = List.of_seq (Queue.to_seq t.fb_bank) in
    let parent = Cutil.Rng.pick t.fb_rng members in
    let child =
      match Cutil.Rng.int t.fb_rng 3 with
      | 0 -> Jsast.Mutate.mutate_literal ~preserve_type:true t.fb_rng parent
      | 1 -> Jsast.Mutate.mutate_operator t.fb_rng parent
      | _ ->
          Jsast.Mutate.splice t.fb_rng ~host:parent
            ~donor:(Cutil.Rng.pick t.fb_rng members)
    in
    Some (Jsast.Mutate.to_src child)
  end

(* The wrapped fuzzer: mixes bank mutants into every batch once the bank is
   non-empty. *)
let fuzzer (t : t) : Campaign.fuzzer =
  {
    Campaign.fz_name = t.fb_base.Campaign.fz_name ^ "+feedback";
    fz_raw = t.fb_base.Campaign.fz_raw;
    fz_batch =
      (fun n ->
        let from_bank =
          if Queue.is_empty t.fb_bank then 0
          else Float.to_int (Float.of_int n *. t.fb_mix)
        in
        let mutants =
          List.filter_map
            (fun _ ->
              Option.map
                (fun src ->
                  Testcase.make
                    ~provenance:(Testcase.P_fuzzer "feedback")
                    src)
                (mutate_banked t))
            (List.init from_bank (fun i -> i))
        in
        mutants @ t.fb_base.Campaign.fz_batch (n - List.length mutants));
  }

(* A complete feedback campaign: run in rounds, banking each round's
   deviating cases before the next. Returns the final campaign result
   accumulated over all rounds. *)
let run_rounds ?(testbeds = Campaign.default_testbeds ()) ?(rounds = 4)
    ?(budget_per_round = 500) ?(fuel = Difftest.campaign_fuel)
    ?(jobs = Executor.default_jobs ()) ?share ?resolve ?reach ?specialize
    (t : t) : Campaign.result =
  let merged : Campaign.result option ref = ref None in
  for _ = 1 to rounds do
    let res =
      Campaign.run ~testbeds ~budget:budget_per_round ~fuel ~jobs ?share
        ?resolve ?reach ?specialize (fuzzer t)
    in
    (* bank this round's exposing cases *)
    List.iter (fun d -> record t d.Campaign.disc_case) res.Campaign.cp_discoveries;
    merged :=
      Some
        (match !merged with
        | None -> res
        | Some acc ->
            let seen =
              List.map
                (fun d -> (d.Campaign.disc_engine, d.Campaign.disc_quirk))
                acc.Campaign.cp_discoveries
            in
            let fresh =
              List.filter
                (fun d ->
                  not
                    (List.mem
                       (d.Campaign.disc_engine, d.Campaign.disc_quirk)
                       seen))
                res.Campaign.cp_discoveries
            in
            {
              acc with
              Campaign.cp_cases_run =
                acc.Campaign.cp_cases_run + res.Campaign.cp_cases_run;
              cp_discoveries = acc.Campaign.cp_discoveries @ fresh;
              cp_filtered_repeats =
                acc.Campaign.cp_filtered_repeats + res.Campaign.cp_filtered_repeats;
              cp_unattributed =
                acc.Campaign.cp_unattributed + res.Campaign.cp_unattributed;
              cp_screened_out =
                acc.Campaign.cp_screened_out + res.Campaign.cp_screened_out;
              cp_screen_reasons =
                (let tbl = Hashtbl.create 8 in
                 List.iter
                   (fun (r, n) ->
                     Hashtbl.replace tbl r
                       (n + Option.value (Hashtbl.find_opt tbl r) ~default:0))
                   (acc.Campaign.cp_screen_reasons
                   @ res.Campaign.cp_screen_reasons);
                 Hashtbl.fold (fun r n l -> (r, n) :: l) tbl []
                 |> List.sort (fun (a, _) (b, _) -> compare a b));
              cp_repaired =
                acc.Campaign.cp_repaired + res.Campaign.cp_repaired;
              cp_reach_seeded =
                acc.Campaign.cp_reach_seeded + res.Campaign.cp_reach_seeded;
              cp_specialized =
                acc.Campaign.cp_specialized + res.Campaign.cp_specialized;
              cp_cow_clones =
                acc.Campaign.cp_cow_clones + res.Campaign.cp_cow_clones;
              cp_ic_hits =
                acc.Campaign.cp_ic_hits + res.Campaign.cp_ic_hits;
              cp_skipped_cases =
                acc.Campaign.cp_skipped_cases + res.Campaign.cp_skipped_cases;
              cp_faults =
                (let a = acc.Campaign.cp_faults
                 and b = res.Campaign.cp_faults in
                 {
                   Supervisor.st_injected = a.Supervisor.st_injected + b.Supervisor.st_injected;
                   st_retried = a.Supervisor.st_retried + b.Supervisor.st_retried;
                   st_faulted = a.Supervisor.st_faulted + b.Supervisor.st_faulted;
                   st_skipped = a.Supervisor.st_skipped + b.Supervisor.st_skipped;
                   st_slow = a.Supervisor.st_slow + b.Supervisor.st_slow;
                   st_backoff = a.Supervisor.st_backoff + b.Supervisor.st_backoff;
                 });
              cp_quarantined =
                acc.Campaign.cp_quarantined @ res.Campaign.cp_quarantined;
              cp_aborted =
                (match acc.Campaign.cp_aborted with
                | Some _ as a -> a
                | None -> res.Campaign.cp_aborted);
            })
  done;
  Option.get !merged
