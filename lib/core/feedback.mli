(** Feedback-driven mutation of bug-exposing test cases — the extension the
    paper sketches as future work (§5.5, in the spirit of LangFuzz).

    A wrapped fuzzer maintains a bank of test cases that exposed deviations
    and mixes structure-preserving mutants of banked cases into each batch,
    probing the neighbourhood of every bug seen so far. *)

type t

val create : ?seed:int -> ?mix:float -> Campaign.fuzzer -> t

(** Bank a test case that exposed a deviation. *)
val record : t -> Testcase.t -> unit

val bank_size : t -> int

(** One structure-preserving mutant of a banked case, if any are banked. *)
val mutate_banked : t -> string option

(** The wrapped fuzzer; named ["<base>+feedback"]. *)
val fuzzer : t -> Campaign.fuzzer

(** A complete feedback campaign: [rounds] campaigns of
    [budget_per_round] cases, banking each round's exposing cases before
    the next; results are merged with (engine, bug) dedup. [share],
    [resolve], [reach] and [specialize] are forwarded to
    {!Campaign.run}. *)
val run_rounds :
  ?testbeds:Engines.Engine.testbed list ->
  ?rounds:int ->
  ?budget_per_round:int ->
  ?fuel:int ->
  ?jobs:int ->
  ?share:bool ->
  ?resolve:bool ->
  ?reach:bool ->
  ?specialize:bool ->
  t ->
  Campaign.result
