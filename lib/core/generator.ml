(* The Comfort test-program generator (paper §3.2).

   Samples a seed function header, extends it with top-k language-model
   sampling, and terminates when braces match, the model emits <EOF>, or
   the token cap is reached. Generated programs are screened by the
   JSHint-substitute syntax check; a configurable fraction of syntactically
   invalid programs is kept to exercise engine parsers (the paper keeps
   20%). *)

type t = {
  model : Lm.Model.t;
  rng : Cutil.Rng.t;
  top_k : int;
  max_tokens : int;
  keep_invalid : float;  (** fraction of invalid programs retained *)
}

let create ?(seed = 1) ?(top_k = 10) ?(max_tokens = 5000) ?(keep_invalid = 0.2)
    ?(model = Lazy.force Lm.Model.comfort) () : t =
  { model; rng = Cutil.Rng.create seed; top_k; max_tokens; keep_invalid }

(* Termination test: the brackets opened by the program are matched again
   (and at least one brace was seen). *)
let braces_matched (s : string) : bool =
  let bal = ref 0 and seen = ref false in
  String.iter
    (fun c ->
      if c = '{' then begin
        incr bal;
        seen := true
      end
      else if c = '}' then decr bal)
    s;
  !seen && !bal <= 0

(* The incremental form [Lm.Model.generate] wants: one stateful closure
   per generation, fed the prefix and then every appended chunk, carrying
   the brace balance across calls — same verdicts as [braces_matched] on
   the accumulated text, without the per-token whole-string rescan. *)
let brace_stop () : string -> bool =
  let bal = ref 0 and seen = ref false in
  fun chunk ->
    String.iter
      (fun c ->
        if c = '{' then begin
          incr bal;
          seen := true
        end
        else if c = '}' then decr bal)
      chunk;
    !seen && !bal <= 0

(* One raw sample from the model. *)
let sample_program (g : t) : string =
  let header = Cutil.Rng.pick g.rng Lm.Js_corpus.seed_headers in
  Lm.Model.generate g.model g.rng ~prefix:header ~k:g.top_k
    ~max_tokens:g.max_tokens ~stop:(brace_stop ())

(* Generate until [n] test cases pass the screening policy: all valid
   programs are kept; invalid ones survive with probability
   [keep_invalid]. *)
let generate (g : t) ~(n : int) : Testcase.t list =
  let out = ref [] in
  let count = ref 0 in
  let attempts = ref 0 in
  while !count < n && !attempts < n * 50 do
    incr attempts;
    let src = sample_program g in
    let tc = Testcase.make ~provenance:Testcase.P_generated src in
    let keep =
      tc.Testcase.tc_syntax_valid || Cutil.Rng.chance g.rng g.keep_invalid
    in
    if keep then begin
      out := tc :: !out;
      incr count
    end
  done;
  List.rev !out

(* Syntactic validity rate over [n] raw samples — the Fig. 9 passing-rate
   metric, measured before any screening. *)
let validity_rate (g : t) ~(n : int) : float =
  let valid = ref 0 in
  for _ = 1 to n do
    if Jsparse.Parser.is_valid (sample_program g) then incr valid
  done;
  Float.of_int !valid /. Float.of_int n
