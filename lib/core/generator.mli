(** The Comfort test-program generator (paper §3.2).

    Samples a seed function header, extends it with top-k language-model
    sampling, and terminates when braces match, the model emits [<EOF>], or
    the token cap is reached. A configurable fraction of syntactically
    invalid programs is kept to exercise engine parsers (the paper keeps
    20%). *)

type t

(** [create ()] builds a generator around the standard Comfort model.
    @param seed          RNG seed (default 1)
    @param top_k         sampling breadth (paper: 10)
    @param max_tokens    length cap per program (paper: 5000)
    @param keep_invalid  fraction of invalid programs retained (paper: 0.2)
    @param model         the language model (default: the order-8 BPE model) *)
val create :
  ?seed:int ->
  ?top_k:int ->
  ?max_tokens:int ->
  ?keep_invalid:float ->
  ?model:Lm.Model.t ->
  unit ->
  t

(** The bracket-matching termination condition of §3.2 (whole-string
    form). *)
val braces_matched : string -> bool

(** The incremental, stateful form {!Lm.Model.generate} consumes: each
    call returns a closure carrying the brace balance across the chunks
    it is fed — same verdicts as {!braces_matched} on the accumulated
    text. Build a fresh one per generation. *)
val brace_stop : unit -> string -> bool

(** One raw sample from the model, before any screening. *)
val sample_program : t -> string

(** Generate [n] test cases after the validity screening policy. *)
val generate : t -> n:int -> Testcase.t list

(** Syntactic validity rate over [n] raw samples (Fig. 9 passing rate). *)
val validity_rate : t -> n:int -> float
