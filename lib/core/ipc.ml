(* Length-prefixed Marshal framing over pipes — see ipc.mli and
   DESIGN.md §14. The decoder trusts nothing: the peer is a worker
   process that can be SIGKILLed between any two bytes. *)

type error =
  | Closed
  | Truncated of string
  | Oversized of int
  | Corrupt of string

let error_to_string = function
  | Closed -> "channel closed"
  | Truncated what -> Printf.sprintf "truncated frame (%s)" what
  | Oversized n -> Printf.sprintf "oversized frame (%d bytes)" n
  | Corrupt what -> Printf.sprintf "corrupt frame (%s)" what

let magic = "CFR1"
let header_len = 4 + 4 + 8 (* magic + length + checksum *)
let default_max_frame = 64 * 1024 * 1024

(* FNV-1a over the payload. Cheap, dependency-free, and plenty to
   distinguish "worker died mid-write" from a well-formed frame; this is
   integrity against torn writes, not cryptography. *)
let fnv64 (s : string) : int64 =
  let open Int64 in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := mul (logxor !h (of_int (Char.code c))) 0x100000001b3L)
    s;
  !h

(* --- raw I/O helpers: EINTR-safe, partial-read/write-safe ---------- *)

let rec write_all fd buf off len =
  if len > 0 then
    let n =
      try Unix.write fd buf off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd buf (off + n) (len - n)

(* Reads exactly [len] bytes; [Ok false] on immediate EOF (nothing
   read), [Error short] on EOF mid-buffer. *)
let really_read fd buf len : (bool, int) result =
  let rec go off =
    if off >= len then Ok true
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> if off = 0 then Ok false else Error off
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* --- framing ------------------------------------------------------- *)

let write fd (v : 'a) : unit =
  let payload = Marshal.to_string v [] in
  let plen = String.length payload in
  let buf = Bytes.create (header_len + plen) in
  Bytes.blit_string magic 0 buf 0 4;
  Bytes.set_int32_be buf 4 (Int32.of_int plen);
  Bytes.set_int64_be buf 8 (fnv64 payload);
  Bytes.blit_string payload 0 buf header_len plen;
  write_all fd buf 0 (Bytes.length buf)

let read ?(max_frame = default_max_frame) fd : ('a, error) result =
  let hdr = Bytes.create header_len in
  match really_read fd hdr header_len with
  | Ok false -> Error Closed
  | Error got -> Error (Truncated (Printf.sprintf "header: %d/%d bytes" got header_len))
  | Ok true ->
      if Bytes.sub_string hdr 0 4 <> magic then Error (Corrupt "bad magic")
      else
        (* Read the length as unsigned: a negative int32 is an attack /
           corruption, and must bounce off the bound, not wrap. *)
        let plen = Int32.to_int (Bytes.get_int32_be hdr 4) land 0xFFFFFFFF in
        if plen > max_frame then Error (Oversized plen)
        else
          let sum = Bytes.get_int64_be hdr 8 in
          let payload = Bytes.create plen in
          (match really_read fd payload plen with
          | Ok false when plen > 0 ->
              Error (Truncated (Printf.sprintf "payload: 0/%d bytes" plen))
          | Error got ->
              Error (Truncated (Printf.sprintf "payload: %d/%d bytes" got plen))
          | Ok _ ->
              let payload = Bytes.unsafe_to_string payload in
              if fnv64 payload <> sum then Error (Corrupt "checksum mismatch")
              else if plen < Marshal.header_size then
                Error (Corrupt "short payload")
              else (
                try Ok (Marshal.from_string payload 0)
                with _ -> Error (Corrupt "undecodable payload")))
