(** Length-prefixed Marshal framing over file descriptors.

    The coordinator/worker pipe protocol (DESIGN.md §14) ships OCaml
    values between a campaign driver and its forked workers. Each frame
    is

    {v  "CFR1" | payload length (u32, big-endian) | FNV-1a64 of payload
        (u64, big-endian) | Marshal payload  v}

    The codec is written for a channel whose far end can die at any
    byte: every malformed input — EOF mid-frame, a corrupted or
    adversarial length prefix, garbage where the magic should be, a
    payload that fails its checksum or does not unmarshal — is reported
    as a typed {!error}, never as a raised [Marshal]/[Failure]
    exception, and an oversized length prefix is rejected {e before}
    any allocation so a corrupt frame cannot OOM the driver.

    Reading is only type-safe when both ends run the same binary (true
    for [fork]ed workers); the ['a] of {!read} is trusted, exactly as
    with [Marshal.from_channel]. Values must be closure-free plain
    data. *)

type error =
  | Closed  (** clean EOF between frames: the peer is gone. *)
  | Truncated of string
      (** EOF inside a frame — the peer died mid-write. *)
  | Oversized of int
      (** length prefix exceeds the [max_frame] bound; the offending
          length is reported and nothing was allocated for it. *)
  | Corrupt of string
      (** bad magic, checksum mismatch, or an undecodable payload. *)

val error_to_string : error -> string

(** Default payload-size bound accepted by {!read}: 64 MiB. *)
val default_max_frame : int

(** [write fd v] marshals [v] and writes one frame, retrying on
    [EINTR]/partial writes. Raises [Unix.Unix_error (EPIPE, _, _)] if
    the reader is gone (with SIGPIPE ignored), and
    [Invalid_argument] if [v] contains closures — both are caller
    bugs or peer-death signals, not codec states. *)
val write : Unix.file_descr -> 'a -> unit

(** [read fd] blocks for one frame and returns its decoded payload.
    [max_frame] bounds the payload size accepted (default
    {!default_max_frame}). *)
val read : ?max_frame:int -> Unix.file_descr -> ('a, error) result
