(* Test-case quality metrics (paper §5.3.3, Fig. 9).

   - syntax passing rate: fraction of raw fuzzer output accepted by the
     JSHint-substitute parser;
   - statement / branch / function coverage: average per-program ratio of
     locations executed when the (syntactically valid) test case runs on
     the reference engine, measured with the interpreter's Istanbul-style
     instrumentation. *)

type quality = {
  q_fuzzer : string;
  q_samples : int;
  q_validity : float;
  q_stmt_cov : float;
  q_branch_cov : float;
  q_func_cov : float;
}

let measure ?(fuel = 200_000) (fz : Campaign.fuzzer) ~(n : int) : quality =
  let cases = fz.Campaign.fz_batch n in
  let valid = List.filter (fun c -> c.Testcase.tc_syntax_valid) cases in
  (* passing rate over the generator's raw output where the fuzzer exposes
     it (generative fuzzers); over the emitted cases otherwise *)
  let validity =
    match fz.Campaign.fz_raw with
    | Some raw ->
        let samples = raw n in
        Float.of_int
          (List.length (List.filter Jsparse.Parser.is_valid samples))
        /. Float.of_int (max 1 (List.length samples))
    | None ->
        Float.of_int (List.length valid)
        /. Float.of_int (max 1 (List.length cases))
  in
  let covs =
    List.filter_map
      (fun (tc : Testcase.t) ->
        let r =
          Jsinterp.Run.run ~coverage:true ~fuel tc.Testcase.tc_source
        in
        r.Jsinterp.Run.r_coverage)
      valid
  in
  (* aggregate over location totals rather than averaging per-program
     ratios, so programs without any branch do not count as 100% branch
     coverage *)
  let agg fc ft =
    let covered = List.fold_left (fun a c -> a + fc c) 0 covs in
    let total = List.fold_left (fun a c -> a + ft c) 0 covs in
    if total = 0 then 0.0 else Float.of_int covered /. Float.of_int total
  in
  {
    q_fuzzer = fz.Campaign.fz_name;
    q_samples = List.length cases;
    q_validity = validity;
    q_stmt_cov =
      agg (fun c -> c.Jsinterp.Coverage.stmt_covered)
        (fun c -> c.Jsinterp.Coverage.stmt_total);
    q_branch_cov =
      agg (fun c -> c.Jsinterp.Coverage.branch_covered)
        (fun c -> c.Jsinterp.Coverage.branch_total);
    q_func_cov =
      agg (fun c -> c.Jsinterp.Coverage.func_covered)
        (fun c -> c.Jsinterp.Coverage.func_total);
  }

(* Screening statistics: how the static-analysis pass judges a fuzzer's
   output. Unlike the campaign driver this draws no replacements, so the
   fractions are per-emitted-case. *)
type screening = {
  sc_fuzzer : string;
  sc_samples : int;
  sc_kept : int;
  sc_repaired : int;  (** kept, after free-variable repair *)
  sc_dropped : int;
  sc_reasons : (string * int) list;  (** drop reason -> count, sorted *)
}

let screen_stats (fz : Campaign.fuzzer) ~(n : int) : screening =
  let cases = fz.Campaign.fz_batch n in
  let kept = ref 0 and repaired = ref 0 and dropped = ref 0 in
  let reasons : (string, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun tc ->
      match Campaign.screen_case tc with
      | Campaign.S_kept _ -> incr kept
      | Campaign.S_repaired _ -> incr repaired
      | Campaign.S_dropped reason ->
          incr dropped;
          Hashtbl.replace reasons reason
            (1 + Option.value (Hashtbl.find_opt reasons reason) ~default:0))
    cases;
  {
    sc_fuzzer = fz.Campaign.fz_name;
    sc_samples = List.length cases;
    sc_kept = !kept;
    sc_repaired = !repaired;
    sc_dropped = !dropped;
    sc_reasons =
      Hashtbl.fold (fun r c acc -> (r, c) :: acc) reasons []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
  }

(* Share of valid generated programs that still raise a runtime exception
   (the paper reports ~18% for Comfort). *)
let runtime_exception_rate (fz : Campaign.fuzzer) ~(n : int) : float =
  let cases = fz.Campaign.fz_batch n in
  let valid =
    List.filter (fun (c : Testcase.t) -> c.Testcase.tc_syntax_valid) cases
  in
  match valid with
  | [] -> 0.0
  | _ ->
      let throwing =
        List.filter
          (fun (tc : Testcase.t) ->
            let r = Jsinterp.Run.run ~fuel:200_000 tc.Testcase.tc_source in
            match r.Jsinterp.Run.r_status with
            | Jsinterp.Run.Sts_uncaught _ -> true
            | _ -> false)
          valid
      in
      Float.of_int (List.length throwing) /. Float.of_int (List.length valid)

(* --- the campaign pipeline profile (Run.Stage, folded for reporting) --- *)

type stage_row = { st_name : string; st_ns : int; st_bytes : int }

type profile = {
  pr_wall_ns : int;
  pr_stages : stage_row list;      (* disjoint pipeline layer, campaign order *)
  pr_substages : stage_row list;   (* interpreter layer, nested inside stages *)
  pr_accounted_ns : int;           (* sum of the pipeline layer *)
  pr_unaccounted_pct : float;      (* (wall - accounted) / wall, percent *)
}

(* Fold the process-wide [Run.Stage] counters against a measured campaign
   wall clock. Only meaningful when [Run.Stage.enabled] was set for
   exactly the timed region and the counters were [reset] at its start.
   At jobs>1 the accounted sum is CPU time across domains and can exceed
   wall; the unaccounted percentage clamps at 0 in that case. *)
let profile ~(wall_ns : int) : profile =
  let row (n, ns, bytes) = { st_name = n; st_ns = ns; st_bytes = bytes } in
  let stages = List.map row (Jsinterp.Run.Stage.pipeline ()) in
  let substages = List.map row (Jsinterp.Run.Stage.substages ()) in
  let accounted = List.fold_left (fun a r -> a + r.st_ns) 0 stages in
  let unaccounted_pct =
    if wall_ns <= 0 then 0.0
    else
      Float.max 0.0
        (100.0 *. Float.of_int (wall_ns - accounted) /. Float.of_int wall_ns)
  in
  {
    pr_wall_ns = wall_ns;
    pr_stages = stages;
    pr_substages = substages;
    pr_accounted_ns = accounted;
    pr_unaccounted_pct = unaccounted_pct;
  }

let profile_to_string (p : profile) : string =
  let b = Buffer.create 512 in
  let ms ns = Float.of_int ns /. 1e6 in
  let mb bytes = Float.of_int bytes /. (1024.0 *. 1024.0) in
  let pct ns =
    if p.pr_wall_ns <= 0 then 0.0
    else 100.0 *. Float.of_int ns /. Float.of_int p.pr_wall_ns
  in
  Buffer.add_string b
    (Printf.sprintf "campaign wall        %8.1f ms\n" (ms p.pr_wall_ns));
  Buffer.add_string b "pipeline stages (disjoint):\n";
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "  %-10s %8.1f ms  %5.1f%%  %8.1f MB alloc\n"
           r.st_name (ms r.st_ns) (pct r.st_ns) (mb r.st_bytes)))
    p.pr_stages;
  Buffer.add_string b
    (Printf.sprintf "  %-10s %8.1f ms  %5.1f%%\n" "accounted"
       (ms p.pr_accounted_ns) (pct p.pr_accounted_ns));
  Buffer.add_string b
    (Printf.sprintf "  %-10s %8.1f ms  %5.1f%%\n" "residual"
       (ms (max 0 (p.pr_wall_ns - p.pr_accounted_ns)))
       p.pr_unaccounted_pct);
  Buffer.add_string b "interpreter substages (nested inside stages):\n";
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "  %-10s %8.1f ms  %5.1f%%  %8.1f MB alloc\n"
           r.st_name (ms r.st_ns) (pct r.st_ns) (mb r.st_bytes)))
    p.pr_substages;
  Buffer.contents b

(* Coverage degradation of a supervised campaign: how many testbeds the
   quarantine removed from the vote, and how many executions the fault
   layer absorbed, relative to the sweep the campaign started with. *)
type availability = {
  av_testbeds : int;
  av_quarantined : int;
  av_live : int;
  av_cases : int;
  av_skipped_cases : int;
  av_lost_executions : int;
  av_ratio : float;
}

let availability ~(testbeds : int) (c : Campaign.result) : availability =
  let quarantined = List.length c.Campaign.cp_quarantined in
  let live = max 0 (testbeds - quarantined) in
  let s = c.Campaign.cp_faults in
  {
    av_testbeds = testbeds;
    av_quarantined = quarantined;
    av_live = live;
    av_cases = c.Campaign.cp_cases_run;
    av_skipped_cases = c.Campaign.cp_skipped_cases;
    av_lost_executions = s.Supervisor.st_faulted + s.Supervisor.st_skipped;
    av_ratio =
      (if testbeds <= 0 then 1.0
       else Float.of_int live /. Float.of_int testbeds);
  }
