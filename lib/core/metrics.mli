(** Test-case quality metrics (paper §5.3.3, Figure 9). *)

type quality = {
  q_fuzzer : string;
  q_samples : int;
  q_validity : float;    (** syntax passing rate over raw generator output *)
  q_stmt_cov : float;    (** aggregate statement coverage of valid cases *)
  q_branch_cov : float;
  q_func_cov : float;
}

(** Measure one fuzzer over [n] cases; coverage runs each syntactically
    valid case on the reference engine with instrumentation. *)
val measure : ?fuel:int -> Campaign.fuzzer -> n:int -> quality

(** How the static-analysis screen judges a fuzzer's output. *)
type screening = {
  sc_fuzzer : string;
  sc_samples : int;
  sc_kept : int;       (** passed the screen untouched *)
  sc_repaired : int;   (** kept after free-variable repair *)
  sc_dropped : int;
  sc_reasons : (string * int) list;  (** drop reason -> count, sorted *)
}

(** Screen [n] cases from the fuzzer (no replacement draws: fractions are
    per emitted case). *)
val screen_stats : Campaign.fuzzer -> n:int -> screening

(** Share of valid generated cases that raise a runtime exception (the
    paper reports ~18% for Comfort). *)
val runtime_exception_rate : Campaign.fuzzer -> n:int -> float

(** One row of the campaign pipeline profile. *)
type stage_row = { st_name : string; st_ns : int; st_bytes : int }

(** The whole-pipeline profile of one campaign: the disjoint pipeline
    stages (generate, screen, sweep, vote, attr, reduce, fold) that
    partition the wall clock, plus the interpreter substages (parse,
    compile, realm, exec) that nest inside them. *)
type profile = {
  pr_wall_ns : int;              (** measured campaign wall clock *)
  pr_stages : stage_row list;    (** pipeline layer, campaign order *)
  pr_substages : stage_row list; (** interpreter layer (nested, not added) *)
  pr_accounted_ns : int;         (** sum of the pipeline layer *)
  pr_unaccounted_pct : float;    (** residual as a percentage of wall *)
}

(** Fold the [Jsinterp.Run.Stage] counters against a measured wall clock.
    Callers must have set [Run.Stage.enabled], [reset] the counters at
    the start of the timed region, and measured [wall_ns] around exactly
    that region. With [jobs > 1] the accounted sum is CPU time and may
    exceed wall (the residual clamps at 0). *)
val profile : wall_ns:int -> profile

(** Render a profile as the CLI's human-readable table. *)
val profile_to_string : profile -> string

(** How much coverage a supervised campaign retained in the face of
    faults (DESIGN.md §10): graceful degradation, quantified. *)
type availability = {
  av_testbeds : int;         (** testbeds the campaign started with *)
  av_quarantined : int;      (** dropped by quarantine along the way *)
  av_live : int;             (** still voting when the campaign ended *)
  av_cases : int;            (** cases consumed *)
  av_skipped_cases : int;    (** whole cases lost to worker failures *)
  av_lost_executions : int;  (** per-testbed executions faulted or skipped *)
  av_ratio : float;          (** live / started (1.0 when nothing faulted) *)
}

(** Summarise a campaign's degradation. [testbeds] is the size of the
    sweep the campaign was launched with (the result only records the
    losses). *)
val availability : testbeds:int -> Campaign.result -> availability
