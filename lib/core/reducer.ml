(* Test-case reduction (paper §3.5).

   Walks the AST and iteratively removes code structures, keeping a removal
   whenever the reduced program still triggers the same anomalous behaviour
   — same deviation kind and same fired ground-truth quirks — on the
   deviating testbed. Repeats to a fixpoint. *)

open Jsast

(* All programs obtainable by deleting exactly one statement. *)
let one_step_deletions (p : Ast.program) : Ast.program list =
  let sids = ref [] in
  Visit.iter_program ~fs:(fun st -> sids := st.Ast.sid :: !sids) p;
  List.filter_map
    (fun sid ->
      let removed = ref false in
      let rec drop_stmts (stmts : Ast.stmt list) : Ast.stmt list =
        List.filter_map
          (fun (st : Ast.stmt) ->
            if st.Ast.sid = sid then begin
              removed := true;
              None
            end
            else Some (drop_in_stmt st))
          stmts
      and drop_in_stmt (st : Ast.stmt) : Ast.stmt =
        let remap d = { st with Ast.s = d } in
        match st.Ast.s with
        | Ast.Block body -> remap (Ast.Block (drop_stmts body))
        | Ast.If (c, t, f) ->
            remap (Ast.If (c, drop_in_stmt t, Option.map drop_in_stmt f))
        | Ast.For (i, c, u, b) -> remap (Ast.For (i, c, u, drop_in_stmt b))
        | Ast.For_in (k, n, o, b) -> remap (Ast.For_in (k, n, o, drop_in_stmt b))
        | Ast.For_of (k, n, o, b) -> remap (Ast.For_of (k, n, o, drop_in_stmt b))
        | Ast.While (c, b) -> remap (Ast.While (c, drop_in_stmt b))
        | Ast.Do_while (b, c) -> remap (Ast.Do_while (drop_in_stmt b, c))
        | Ast.Labeled (l, b) -> remap (Ast.Labeled (l, drop_in_stmt b))
        | Ast.Try (b, h, f) ->
            remap
              (Ast.Try
                 ( drop_stmts b,
                   Option.map (fun (pn, hb) -> (pn, drop_stmts hb)) h,
                   Option.map drop_stmts f ))
        | Ast.Switch (d, cases) ->
            remap
              (Ast.Switch
                 (d, List.map (fun (c, body) -> (c, drop_stmts body)) cases))
        | Ast.Func_decl f ->
            remap (Ast.Func_decl { f with Ast.body = drop_stmts f.Ast.body })
        | Ast.Var_decl (k, decls) ->
            remap
              (Ast.Var_decl
                 ( k,
                   List.map
                     (fun (n, init) ->
                       match init with
                       | Some { Ast.e = Ast.Func f; Ast.eid } ->
                           ( n,
                             Some
                               {
                                 Ast.eid;
                                 Ast.e = Ast.Func { f with Ast.body = drop_stmts f.Ast.body };
                               } )
                       | other -> (n, other))
                     decls ))
        | _ -> st
      in
      let body' = drop_stmts p.Ast.prog_body in
      if !removed then Some { p with Ast.prog_body = body' } else None)
    !sids

(* Structure simplifications: replace a compound statement by its body. *)
let one_step_simplifications (p : Ast.program) : Ast.program list =
  let sids = ref [] in
  Visit.iter_program
    ~fs:(fun st ->
      match st.Ast.s with
      | Ast.If _ | Ast.While _ | Ast.For _ | Ast.Try _ | Ast.Labeled _ ->
          sids := st.Ast.sid :: !sids
      | _ -> ())
    p;
  List.map
    (fun sid ->
      Transform.map_program
        ~fs:(fun st ->
          if st.Ast.sid <> sid then st
          else
            match st.Ast.s with
            | Ast.If (_, t, _) -> t
            | Ast.While (_, b) -> b
            | Ast.For (_, _, _, b) -> b
            | Ast.Try (b, _, _) -> { st with Ast.s = Ast.Block b }
            | Ast.Labeled (_, b) -> b
            | _ -> st)
        p)
    !sids

(* First [x] in [xs] satisfying [p], probing in chunks of [jobs] on the
   executor. Chunks are evaluated left to right and the earliest success in
   a chunk wins, so the answer is exactly [List.find_opt p xs] — the extra
   probes past the winner inside its chunk are the parallelism tax. *)
let find_first ~jobs (p : 'a -> bool) (xs : 'a list) : 'a option =
  if jobs <= 1 then List.find_opt p xs
  else
    let rec chunks = function
      | [] -> None
      | xs ->
          let rec take n = function
            | x :: rest when n > 0 ->
                let hd, tl = take (n - 1) rest in
                (x :: hd, tl)
            | rest -> ([], rest)
          in
          let chunk, rest = take jobs xs in
          let verdicts = Executor.map ~jobs (fun x -> (x, p x)) chunk in
          (match List.find_opt snd verdicts with
          | Some (x, _) -> Some x
          | None -> chunks rest)
    in
    chunks xs

(* Reduce [src] while [still_triggers] holds. Greedy first-improvement
   search to a fixpoint; the candidate order prefers large deletions first
   (top-level statements come first in id order). With [jobs > 1] the
   per-candidate probes run in parallel; the accepted candidate is still
   the sequentially-first improvement, so the result is jobs-invariant. *)
let reduce ?(jobs = 1) ~(still_triggers : string -> bool) (src : string) :
    string =
  match Jsparse.Parser.parse_program src with
  | exception Jsparse.Parser.Syntax_error _ -> src
  | p0 ->
      let to_src p = Printer.program_to_string p in
      let rec fixpoint p budget =
        if budget = 0 then p
        else
          let candidates = one_step_deletions p @ one_step_simplifications p in
          let len = String.length (to_src p) in
          let better =
            find_first ~jobs
              (fun cand ->
                let s = to_src cand in
                String.length s < len && still_triggers s)
              candidates
          in
          match better with
          | Some cand -> fixpoint cand (budget - 1)
          | None -> p
      in
      to_src (fixpoint p0 200)

(* Convenience: build the predicate from a deviation observed on a testbed.
   The reduced program must still fire the same quirks and produce the same
   behaviour class on that testbed. *)
let still_triggers_deviation ?share ?resolve ?reach ?specialize
    (tb : Engines.Engine.testbed) (original : Difftest.deviation) :
    string -> bool =
  let share =
    match share with Some s -> s | None -> Difftest.share_by_default ()
  in
  fun src ->
  (* compare the deviating testbed directly against the reference engine:
     the reduced program must keep the same behaviour class and keep firing
     the same ground-truth quirks. With [share] on both runs go through one
     per-candidate [Engine.Exec] cache, so they share the parse and — when
     the quirks the target touched are all absent from its config — the
     execution itself *)
  let target, reference =
    if share then begin
      let ec = Engines.Engine.Exec.cache src in
      let target =
        Engines.Engine.Exec.run ?resolve ?reach ?specialize ec tb
      in
      (target, Engines.Engine.Exec.run_reference ?resolve ?reach ?specialize ec)
    end
    else
      ( Engines.Engine.run ?resolve ?reach ?specialize tb src,
        Engines.Engine.run_reference ?resolve ?reach ?specialize src )
  in
  let tsig = Difftest.signature_of_result target in
  let rsig = Difftest.signature_of_result reference in
  tsig <> rsig
  && Difftest.behavior_label tsig rsig = original.Difftest.d_behavior
  && Jsinterp.Quirk.Set.subset original.Difftest.d_fired
       target.Jsinterp.Run.r_fired
