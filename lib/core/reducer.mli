(** Test-case reduction (paper §3.5).

    Iteratively removes code structures — statement deletion at every
    nesting depth, plus replacing compound statements by their bodies —
    keeping a step whenever the reduced program still triggers the same
    anomalous behaviour, until a fixpoint. *)

(** [reduce ~still_triggers src] shrinks [src] greedily while the predicate
    holds on each candidate. Returns [src] unchanged if it does not parse.
    [jobs] parallelises the per-candidate probes (chunked first-improvement:
    the accepted candidate is the sequentially-first one, so the result is
    identical at any job count). *)
val reduce : ?jobs:int -> still_triggers:(string -> bool) -> string -> string

(** Build the predicate from an observed deviation: the reduced program
    must keep the same behaviour class on the deviating testbed (vs the
    conforming reference) and keep firing the same ground-truth quirks.
    [share] (default {!Difftest.share_by_default}) routes the target and
    reference runs through one per-candidate {!Engines.Engine.Exec}
    cache, sharing the parse and often the execution itself. [resolve]
    selects the slot-compiled interpreter core for both runs (default
    {!Jsinterp.Run.resolve_by_default}); [reach] consults the static
    reachability analysis (default {!Jsinterp.Run.reach_by_default});
    [specialize] selects the quirk-specialised fast path (default
    {!Jsinterp.Run.specialize_by_default}). *)
val still_triggers_deviation :
  ?share:bool ->
  ?resolve:bool ->
  ?reach:bool ->
  ?specialize:bool ->
  Engines.Engine.testbed ->
  Difftest.deviation ->
  string ->
  bool
