(* Aggregation of campaign results into the paper's tables and figures.

   Each function returns rows as string lists ready for [Cutil.Table];
   counting joins campaign discoveries with the ground-truth catalogue
   (developer confirmation status, Test262 acceptance, affected component,
   object type) the way the paper's tables summarise its tracker data. *)

open Engines

let engine_order = Registry.all_engines

(* status joins: a discovered bug's verified/fixed flags come from the
   catalogue's per-quirk status *)
let is_verified (q : Jsinterp.Quirk.t) =
  match (Catalogue.find q).Catalogue.status with
  | Catalogue.Fixed | Catalogue.Verified -> true
  | _ -> false

let is_fixed (q : Jsinterp.Quirk.t) =
  (Catalogue.find q).Catalogue.status = Catalogue.Fixed

(* Table 2: bug statistics per engine. Nashorn stopped being maintained in
   June 2020 (§5.1.1), so only its earliest couple of fixes ever landed —
   the fixed count is capped accordingly where it is computed. *)
let table2 (c : Campaign.result) : (string * int * int * int * int) list =
  List.map
    (fun e ->
      let mine =
        List.filter (fun d -> d.Campaign.disc_engine = e) c.Campaign.cp_discoveries
      in
      let quirks = List.map (fun d -> d.Campaign.disc_quirk) mine in
      let submitted = List.length quirks in
      let verified = List.length (List.filter is_verified quirks) in
      let fixed =
        if e = Registry.Nashorn then
          (* cap: only the earliest couple of Nashorn fixes landed *)
          min 2 (List.length (List.filter is_fixed quirks))
        else List.length (List.filter is_fixed quirks)
      in
      let t262 =
        List.length
          (List.filter
             (fun q -> (Catalogue.find q).Catalogue.test262_accepted)
             quirks)
      in
      (Registry.engine_name e, submitted, verified, fixed, t262))
    engine_order

(* Table 3: bugs per engine version (earliest-version attribution), plus
   the newly-discovered count. *)
let table3 (c : Campaign.result) : (string * string * int * int * int * int) list =
  let key d = (d.Campaign.disc_engine, d.Campaign.disc_version) in
  let groups = Hashtbl.create 32 in
  List.iter
    (fun d ->
      let k = key d in
      Hashtbl.replace groups k
        (d :: Option.value (Hashtbl.find_opt groups k) ~default:[]))
    c.Campaign.cp_discoveries;
  List.concat_map
    (fun e ->
      List.filter_map
        (fun (cfg : Registry.config) ->
          match Hashtbl.find_opt groups (e, cfg.Registry.cfg_version) with
          | None -> None
          | Some ds ->
              let quirks = List.map (fun d -> d.Campaign.disc_quirk) ds in
              Some
                ( Registry.engine_name e,
                  cfg.Registry.cfg_version,
                  List.length quirks,
                  List.length (List.filter is_verified quirks),
                  (if e = Registry.Nashorn then
                     min 2 (List.length (List.filter is_fixed quirks))
                   else List.length (List.filter is_fixed quirks)),
                  List.length
                    (List.filter
                       (fun q -> (Catalogue.find q).Catalogue.newly_discovered)
                       quirks) ))
        (Registry.configs_of e))
    engine_order

(* Table 4: bugs by discovery mechanism — the provenance of the test case
   that first exposed each bug. *)
let table4 (c : Campaign.result) : (string * int * int * int * int) list =
  let classify d =
    if Testcase.is_ecma_guided d.Campaign.disc_case then `Ecma else `Gen
  in
  let row label group =
    let quirks = List.map (fun d -> d.Campaign.disc_quirk) group in
    ( label,
      List.length quirks,
      List.length (List.filter is_verified quirks),
      List.length (List.filter is_fixed quirks),
      List.length
        (List.filter (fun q -> (Catalogue.find q).Catalogue.test262_accepted) quirks)
    )
  in
  let gen, ecma =
    List.partition (fun d -> classify d = `Gen) c.Campaign.cp_discoveries
  in
  [ row "Test program generation" gen; row "ECMA-262 guided mutation" ecma ]

(* Table 5: top buggy object types. *)
let table5 (c : Campaign.result) : (string * int * int * int) list =
  let groups = Hashtbl.create 16 in
  List.iter
    (fun d ->
      let ot = (Catalogue.find d.Campaign.disc_quirk).Catalogue.object_type in
      Hashtbl.replace groups ot
        (d.Campaign.disc_quirk
        :: Option.value (Hashtbl.find_opt groups ot) ~default:[]))
    c.Campaign.cp_discoveries;
  Hashtbl.fold
    (fun ot quirks acc ->
      ( ot,
        List.length quirks,
        List.length (List.filter is_verified quirks),
        List.length (List.filter is_fixed quirks) )
      :: acc)
    groups []
  |> List.sort (fun (_, a, _, _) (_, b, _, _) -> compare b a)

(* Figure 7: bugs per affected compiler component. *)
let fig7 (c : Campaign.result) : (string * int * int) list =
  let components =
    Catalogue.
      [ CodeGen; Implementation; Parser; RegexEngine; Optimizer; StrictModeOnly ]
  in
  List.map
    (fun comp ->
      let mine =
        List.filter
          (fun d ->
            (Catalogue.find d.Campaign.disc_quirk).Catalogue.component = comp)
          c.Campaign.cp_discoveries
      in
      let quirks = List.map (fun d -> d.Campaign.disc_quirk) mine in
      ( Catalogue.component_to_string comp,
        List.length quirks,
        List.length (List.filter is_fixed quirks) ))
    components

(* Screening summary: what the static-analysis pass filtered before
   differential testing, as (label, count) rows — total dropped and
   repaired first, then the per-reason histogram. *)
let screening_summary (c : Campaign.result) : (string * int) list =
  ("screened out", c.Campaign.cp_screened_out)
  :: ("repaired", c.Campaign.cp_repaired)
  :: List.map
       (fun (reason, n) -> ("drop:" ^ reason, n))
       c.Campaign.cp_screen_reasons

(* Supervision summary: what the fault-injection/retry/quarantine layer
   absorbed during the campaign, as (label, count) rows mirroring
   [screening_summary]. Quarantined testbeds get one row each so a chaos
   report names the degraded coverage explicitly. *)
let supervision_summary (c : Campaign.result) : (string * int) list =
  let s = c.Campaign.cp_faults in
  ("faulted attempts", s.Supervisor.st_injected)
  :: ("retried ok", s.Supervisor.st_retried)
  :: ("gave up", s.Supervisor.st_faulted)
  :: ("skipped (quarantine)", s.Supervisor.st_skipped)
  :: ("slow starts absorbed", s.Supervisor.st_slow)
  :: ("backoff units", s.Supervisor.st_backoff)
  :: ("cases failed-and-skipped", c.Campaign.cp_skipped_cases)
  :: List.map
       (fun (id, at) -> ("quarantined:" ^ id, at))
       c.Campaign.cp_quarantined

(* Ground-truth totals, for "found X of Y seeded bugs" summaries. *)
let ground_truth_total () = List.length Registry.all_bugs
