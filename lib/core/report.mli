(** Aggregation of campaign results into the paper's tables and figures.

    Counting joins campaign discoveries with the ground-truth catalogue
    (developer confirmation status, Test262 acceptance, affected component,
    object type), the way the paper's tables summarise tracker data. *)

(** Table 2 rows: engine, found, verified, fixed, accepted-by-Test262. *)
val table2 : Campaign.result -> (string * int * int * int * int) list

(** Table 3 rows: engine, version (earliest-version attribution), found,
    verified, fixed, newly-discovered. Only versions with bugs appear. *)
val table3 :
  Campaign.result -> (string * string * int * int * int * int) list

(** Table 4 rows: discovery mechanism, found, confirmed, fixed, Test262. *)
val table4 : Campaign.result -> (string * int * int * int * int) list

(** Table 5 rows: object type, found, confirmed, fixed — sorted by count. *)
val table5 : Campaign.result -> (string * int * int * int) list

(** Figure 7 rows: compiler component, found, fixed. *)
val fig7 : Campaign.result -> (string * int * int) list

(** Screening summary rows: total screened-out and repaired counts,
    followed by the per-reason drop histogram (["drop:<reason>"]). *)
val screening_summary : Campaign.result -> (string * int) list

(** Supervision summary rows: aggregate fault/retry/quarantine counters,
    cases lost to worker failures, then one ["quarantined:<testbed>"] row
    per dropped testbed (value = the case index that tripped the
    threshold). All-zero/empty for an unsupervised campaign. *)
val supervision_summary : Campaign.result -> (string * int) list

(** Size of the seeded ground-truth bug population. *)
val ground_truth_total : unit -> int
