(* Supervised execution: fault injection, bounded retry, quarantine.

   The real Comfort drove 51 external engine builds that crash, hang and
   flake for reasons that have nothing to do with conformance; the paper's
   Fig. 5 pipeline (and its 2t timeout rule) exists to keep a 200-hour
   campaign alive through such infrastructure faults and to keep them out
   of the bug statistics. Our engines are in-process simulations, so the
   faults have to be simulated too: a {!Faultplan} deterministically
   injects engine-process crashes, hangs (killed by a watchdog), transient
   flakes and slow starts into individual testbed executions, and the
   supervisor layered on top retries transient faults with deterministic
   backoff and quarantines testbeds that fault persistently.

   Two halves, split by domain-safety:

   - the {e worker} half ([execute]) wraps one testbed execution. It only
     reads the immutable fault plan and policy, so any number of worker
     domains can run it concurrently; every draw is a pure function of
     (plan seed, testbed id, case key, attempt), which makes a chaos
     campaign byte-identical at any job count and across checkpoint
     resume.

   - the {e driver} half ({!t}: [observe], [quarantined]) folds the
     per-case fault observations in submission order, tracks consecutive
     faults per testbed, and grows the quarantine set. Only the driver
     mutates it, so its decisions are a deterministic function of the
     consumed case stream. Workers may peek at the current quarantine set
     through an atomic snapshot ([quarantined_now]) purely to skip work:
     the set is monotone (nothing is ever un-quarantined) and the judge
     re-checks against driver state, so a stale read can only cost a
     wasted execution, never change a report. *)

(* --- fault taxonomy --- *)

type fault_kind =
  | F_crash         (* simulated engine-process crash *)
  | F_hang          (* simulated hang; the watchdog kills it *)
  | F_kill          (* the coordinator hard-kills the whole worker
                       process (in-process runs treat it as a crash) *)
  | F_flaky         (* transient failure that clears after N attempts *)
  | F_slow of int   (* slow start of the given latency; beyond the
                       watchdog budget it is killed like a hang *)
  | F_exn of string (* a real exception escaped the engine harness *)

let fault_kind_to_string = function
  | F_crash -> "crash"
  | F_hang -> "hang"
  | F_kill -> "kill"
  | F_flaky -> "flaky"
  | F_slow l -> Printf.sprintf "slow(%d)" l
  | F_exn m -> "exn:" ^ m

(* Injected faults travel as this exception so they can never be mistaken
   for an engine outcome: [Run] knows nothing about it, so no injected
   fault can surface as a [Sts_crash]/[Sts_timeout] signature — it either
   clears on retry or removes the execution from the vote entirely. *)
exception Injected of fault_kind

(* --- the fault plan --- *)

module Faultplan = struct
  type t = {
    fp_seed : int;
    fp_crash : float;        (* per-attempt probability *)
    fp_hang : float;
    fp_flaky : float;        (* per-execution probability *)
    fp_flaky_tries : int;    (* failed attempts before a flake clears *)
    fp_slow : float;         (* per-attempt probability *)
    fp_slow_max : int;       (* latency drawn uniformly in [1, max] *)
    fp_kill : float;         (* per-attempt probability of a real
                                worker-process hard-kill *)
    fp_targets : string list;(* testbed-id substrings; [] = everywhere *)
  }

  let default =
    {
      fp_seed = 1;
      fp_crash = 0.0;
      fp_hang = 0.0;
      fp_flaky = 0.0;
      fp_flaky_tries = 1;
      fp_slow = 0.0;
      fp_slow_max = 150;
      fp_kill = 0.0;
      fp_targets = [];
    }

  (* Spec syntax, e.g. COMFORT_FAULTS="seed=9;targets=V8|Hermes;crash=0.1;
     hang=0.05;flaky=0.3;flaky_tries=2;slow=0.2". Unknown keys are
     rejected so a typo cannot silently disable a chaos campaign. *)
  let of_spec (spec : string) : (t, string) result =
    let fields =
      String.split_on_char ';' spec
      |> List.concat_map (String.split_on_char ',')
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    let parse_float k v =
      match float_of_string_opt v with
      | Some f when f >= 0.0 && f <= 1.0 -> Ok f
      | _ -> Error (Printf.sprintf "%s wants a probability in [0,1], got %S" k v)
    in
    let parse_int k v =
      match int_of_string_opt v with
      | Some n when n >= 0 -> Ok n
      | _ -> Error (Printf.sprintf "%s wants a non-negative integer, got %S" k v)
    in
    List.fold_left
      (fun acc field ->
        Result.bind acc (fun t ->
            match String.index_opt field '=' with
            | None -> Error (Printf.sprintf "malformed field %S (want key=value)" field)
            | Some i -> (
                let k = String.sub field 0 i in
                let v = String.sub field (i + 1) (String.length field - i - 1) in
                match k with
                | "seed" -> Result.map (fun n -> { t with fp_seed = n }) (parse_int k v)
                | "crash" -> Result.map (fun f -> { t with fp_crash = f }) (parse_float k v)
                | "hang" -> Result.map (fun f -> { t with fp_hang = f }) (parse_float k v)
                | "flaky" -> Result.map (fun f -> { t with fp_flaky = f }) (parse_float k v)
                | "flaky_tries" ->
                    Result.map (fun n -> { t with fp_flaky_tries = max 1 n }) (parse_int k v)
                | "slow" -> Result.map (fun f -> { t with fp_slow = f }) (parse_float k v)
                | "slow_max" ->
                    Result.map (fun n -> { t with fp_slow_max = max 1 n }) (parse_int k v)
                | "worker_kill" ->
                    Result.map (fun f -> { t with fp_kill = f }) (parse_float k v)
                | "targets" ->
                    Ok
                      {
                        t with
                        fp_targets =
                          String.split_on_char '|' v
                          |> List.map String.trim
                          |> List.filter (fun s -> s <> "");
                      }
                | _ -> Error (Printf.sprintf "unknown fault-plan key %S" k))))
      (Ok default) fields

  let to_spec (t : t) : string =
    let f k v = if v = 0.0 then [] else [ Printf.sprintf "%s=%g" k v ] in
    String.concat ";"
      ([ Printf.sprintf "seed=%d" t.fp_seed ]
      @ (if t.fp_targets = [] then []
         else [ "targets=" ^ String.concat "|" t.fp_targets ])
      @ f "crash" t.fp_crash @ f "hang" t.fp_hang @ f "flaky" t.fp_flaky
      @ (if t.fp_flaky > 0.0 && t.fp_flaky_tries <> 1 then
           [ Printf.sprintf "flaky_tries=%d" t.fp_flaky_tries ]
         else [])
      @ f "slow" t.fp_slow
      @ (if t.fp_slow > 0.0 && t.fp_slow_max <> default.fp_slow_max then
           [ Printf.sprintf "slow_max=%d" t.fp_slow_max ]
         else [])
      @ f "worker_kill" t.fp_kill)

  (* COMFORT_FAULTS, the chaos-campaign switch CI uses. A malformed spec
     fails loudly: silently fuzzing without faults would defeat the job. *)
  let from_env () : t option =
    match Sys.getenv_opt "COMFORT_FAULTS" with
    | None | Some "" -> None
    | Some spec -> (
        match of_spec spec with
        | Ok t -> Some t
        | Error msg -> invalid_arg ("COMFORT_FAULTS: " ^ msg))

  let targets (t : t) (testbed_id : string) : bool =
    t.fp_targets = []
    || List.exists
         (fun needle ->
           let lh = String.lowercase_ascii testbed_id
           and ln = String.lowercase_ascii needle in
           let nh = String.length lh and nn = String.length ln in
           let rec scan i = i + nn <= nh && (String.sub lh i nn = ln || scan (i + 1)) in
           nn > 0 && scan 0)
         t.fp_targets

  (* Deterministic uniform draw in [0,1) from (seed, testbed, case,
     attempt, salt): FNV-1a over the key material, finalised splitmix-
     style. No global RNG state is touched, so draws are independent of
     scheduling, job count and checkpoint boundaries. *)
  let hash01 (t : t) ~(testbed_id : string) ~(case_key : int) ~(attempt : int)
      ~(salt : int) : float =
    let h = ref 0xcbf29ce484222325L in
    let mix byte =
      h := Int64.mul (Int64.logxor !h (Int64.of_int (byte land 0xff))) 0x100000001b3L
    in
    let mix_int n =
      for shift = 0 to 7 do
        mix ((n lsr (shift * 8)) land 0xff)
      done
    in
    mix_int t.fp_seed;
    String.iter (fun c -> mix (Char.code c)) testbed_id;
    mix_int case_key;
    mix_int attempt;
    mix_int salt;
    (* splitmix64 finaliser to spread the low bits *)
    let z = ref !h in
    z := Int64.mul (Int64.logxor !z (Int64.shift_right_logical !z 30)) 0xbf58476d1ce4e5b9L;
    z := Int64.mul (Int64.logxor !z (Int64.shift_right_logical !z 27)) 0x94d049bb133111ebL;
    z := Int64.logxor !z (Int64.shift_right_logical !z 31);
    Int64.to_float (Int64.shift_right_logical !z 11) /. 9007199254740992.0

  (* The fault (if any) injected into attempt [attempt] of this testbed's
     execution of case [case_key]. Flakes are drawn once per execution
     (attempt 0's draw) and persist for [fp_flaky_tries] attempts, which
     is what makes "fails N times then succeeds" reproducible; crashes,
     hangs and slow starts are drawn independently per attempt, so a
     retry genuinely re-rolls them. *)
  let draw (t : t) ~(testbed_id : string) ~(case_key : int) ~(attempt : int) :
      fault_kind option =
    if not (targets t testbed_id) then None
    else
      let u salt a = hash01 t ~testbed_id ~case_key ~attempt:a ~salt in
      if t.fp_flaky > 0.0 && u 3 0 < t.fp_flaky && attempt < t.fp_flaky_tries
      then Some F_flaky
      else if t.fp_crash > 0.0 && u 1 attempt < t.fp_crash then Some F_crash
      else if t.fp_hang > 0.0 && u 2 attempt < t.fp_hang then Some F_hang
      else if t.fp_kill > 0.0 && u 6 attempt < t.fp_kill then Some F_kill
      else if t.fp_slow > 0.0 && u 4 attempt < t.fp_slow then
        Some
          (F_slow (1 + int_of_float (u 5 attempt *. float_of_int t.fp_slow_max)))
      else None
end

(* --- supervision policy --- *)

type policy = {
  p_retries : int;          (* extra attempts after a faulted first try *)
  p_backoff_base : int;     (* simulated backoff units; attempt k waits
                               base * 2^k (fuel is the wall-clock
                               stand-in, so backoff is accounted, not
                               slept) *)
  p_watchdog : int;         (* slow-start budget in latency units; a slow
                               start beyond it is killed like a hang *)
  p_quarantine_after : int; (* consecutive faulted cases before a testbed
                               is dropped from the sweep *)
}

let default_policy =
  { p_retries = 2; p_backoff_base = 10; p_watchdog = 100; p_quarantine_after = 3 }

(* --- worker-process kill hook (set only inside Coordinator children) ---

   [worker_kill] draws must behave identically in-process and under real
   process isolation for reports to be byte-identical at any worker
   count. In-process, a drawn [F_kill] simply fails the attempt like a
   crash. In a forked worker the coordinator arms this hook per dispatch
   with the number of kill draws to absorb (how many times this task's
   worker has already been hard-killed): the first [absorb] draws — in
   the same deterministic sweep order as in-process — again fail the
   attempt in-process, and the next one invokes [die], which asks the
   coordinator for a real SIGKILL and never returns. Re-dispatch with
   [absorb+1] therefore makes monotone progress and converges on exactly
   the in-process outcome.

   Plain refs, not atomics: the hook is armed only in single-threaded
   forked children; the driver and its domains only ever observe [None]. *)

let kill_hook : (unit -> unit) option ref = ref None
let kill_absorb : int ref = ref 0

let arm_kill_hook ~(absorb : int) ~(die : unit -> unit) : unit =
  kill_hook := Some die;
  kill_absorb := absorb

let disarm_kill_hook () : unit =
  kill_hook := None;
  kill_absorb := 0

(* --- worker half: one supervised execution --- *)

type exec_meta = {
  em_retries : int;   (* failed attempts absorbed before success *)
  em_backoff : int;   (* total simulated backoff units *)
  em_slow : int;      (* slow starts absorbed (within watchdog budget) *)
}

let ok_meta = { em_retries = 0; em_backoff = 0; em_slow = 0 }

type fault_report = {
  fr_kind : fault_kind;       (* the fault that exhausted the retry budget *)
  fr_attempts : int;          (* attempts made (>= 1) *)
  fr_trail : fault_kind list; (* fault per failed attempt, oldest first *)
  fr_backoff : int;           (* total simulated backoff units *)
}

type 'a outcome =
  | Done of 'a * exec_meta
  | Faulted of fault_report
  | Skipped  (* quarantined before execution *)

(* Run [thunk] under the plan and policy. Every attempt first consults the
   fault plan; an injected (or real, escaped) fault burns one attempt and
   a deterministic backoff, and the next attempt re-rolls. With no plan
   this is [thunk ()] plus one exception handler — the happy path stays
   allocation-free. Real exceptions are retried like injected crashes:
   infrastructure flakes clear, deterministic harness bugs exhaust the
   budget and surface as [F_exn] faults (never as engine behaviour). *)
let execute ?plan ?(policy = default_policy) ~(testbed_id : string)
    ~(case_key : int) (thunk : unit -> 'a) : 'a outcome =
  let rec attempt_from ~attempt ~trail ~backoff ~slow =
    let backoff =
      if attempt = 0 then backoff
      else backoff + (policy.p_backoff_base * (1 lsl (attempt - 1)))
    in
    let injected =
      match plan with
      | None -> None
      | Some p -> Faultplan.draw p ~testbed_id ~case_key ~attempt
    in
    let fail kind =
      if attempt >= policy.p_retries then
        Faulted
          {
            fr_kind = kind;
            fr_attempts = attempt + 1;
            fr_trail = List.rev (kind :: trail);
            fr_backoff = backoff;
          }
      else
        attempt_from ~attempt:(attempt + 1) ~trail:(kind :: trail) ~backoff ~slow
    in
    let run ~slow =
      match thunk () with
      | v -> Done (v, { em_retries = attempt; em_backoff = backoff; em_slow = slow })
      | exception Injected k -> fail k
      | exception e -> fail (F_exn (Printexc.to_string e))
    in
    match injected with
    | Some F_crash -> fail F_crash
    | Some F_hang -> fail F_hang
    | Some F_kill -> (
        match !kill_hook with
        | Some die when !kill_absorb <= 0 ->
            die ();
            (* [die] never returns; keep the fault ladder sound if a
               test-double hook does *)
            fail F_kill
        | Some _ ->
            decr kill_absorb;
            fail F_kill
        | None -> fail F_kill)
    | Some F_flaky -> fail F_flaky
    | Some (F_slow latency) ->
        (* within the watchdog's startup budget the engine is merely slow;
           beyond it the watchdog cannot tell a slow start from a hang *)
        if latency > policy.p_watchdog then fail (F_slow latency)
        else run ~slow:(slow + 1)
    | Some (F_exn _ as k) -> fail k
    | None -> run ~slow
  in
  attempt_from ~attempt:0 ~trail:[] ~backoff:0 ~slow:0

(* --- driver half: quarantine and accounting --- *)

type stats = {
  st_injected : int;   (* faulted attempts, injected or real *)
  st_retried : int;    (* executions that needed retries but succeeded *)
  st_faulted : int;    (* executions that exhausted the retry budget *)
  st_skipped : int;    (* executions not counted because the testbed was
                          quarantined *)
  st_slow : int;       (* slow starts absorbed within the watchdog budget *)
  st_backoff : int;    (* total simulated backoff units *)
}

let zero_stats =
  { st_injected = 0; st_retried = 0; st_faulted = 0; st_skipped = 0;
    st_slow = 0; st_backoff = 0 }

module Sset = Set.Make (String)

type t = {
  sup_policy : policy;
  sup_consec : (string, int) Hashtbl.t;  (* testbed id -> consecutive
                                            faulted cases *)
  mutable sup_quarantined : (string * int) list;  (* (testbed id, case key
                                                     it tripped at), oldest
                                                     first *)
  mutable sup_stats : stats;
  sup_qset : Sset.t Atomic.t;  (* snapshot workers may read racily *)
}

let create ?(policy = default_policy) () : t =
  {
    sup_policy = policy;
    sup_consec = Hashtbl.create 16;
    sup_quarantined = [];
    sup_stats = zero_stats;
    sup_qset = Atomic.make Sset.empty;
  }

let policy (t : t) = t.sup_policy
let stats (t : t) = t.sup_stats
let quarantine_list (t : t) = t.sup_quarantined

(* Driver-state membership: the deterministic check the judge uses. *)
let quarantined (t : t) (testbed_id : string) : bool =
  Sset.mem testbed_id (Atomic.get t.sup_qset)

(* The racy worker-side peek. Sound to use for skipping only: the set is
   monotone and every skip is re-validated against driver state. *)
let quarantined_now (t : t) (testbed_id : string) : bool =
  Sset.mem testbed_id (Atomic.get t.sup_qset)

(* One per-case observation per testbed, folded by the driver in
   submission order. *)
type observation =
  | Ob_ok of exec_meta
  | Ob_faulted of fault_report
  | Ob_skipped

let observe (t : t) ~(case_key : int)
    (obs : (string * observation) list) : unit =
  let s = ref t.sup_stats in
  List.iter
    (fun (tb_id, ob) ->
      match ob with
      | Ob_skipped -> s := { !s with st_skipped = !s.st_skipped + 1 }
      | Ob_ok meta ->
          Hashtbl.replace t.sup_consec tb_id 0;
          s :=
            {
              !s with
              st_injected = !s.st_injected + meta.em_retries;
              st_retried = !s.st_retried + (if meta.em_retries > 0 then 1 else 0);
              st_slow = !s.st_slow + meta.em_slow;
              st_backoff = !s.st_backoff + meta.em_backoff;
            }
      | Ob_faulted fr ->
          let consec =
            1 + Option.value (Hashtbl.find_opt t.sup_consec tb_id) ~default:0
          in
          Hashtbl.replace t.sup_consec tb_id consec;
          s :=
            {
              !s with
              st_injected = !s.st_injected + fr.fr_attempts;
              st_faulted = !s.st_faulted + 1;
              st_backoff = !s.st_backoff + fr.fr_backoff;
            };
          if
            consec >= t.sup_policy.p_quarantine_after
            && not (quarantined t tb_id)
          then begin
            t.sup_quarantined <- t.sup_quarantined @ [ (tb_id, case_key) ];
            Atomic.set t.sup_qset (Sset.add tb_id (Atomic.get t.sup_qset))
          end)
    obs;
  t.sup_stats <- !s

(* Checkpoint support: the atomic snapshot cannot be marshalled (an
   [Atomic.t] is lazy-free but we rebuild it anyway so a resumed
   supervisor gets a fresh, consistent cell). *)
type frozen = {
  fz_policy : policy;
  fz_consec : (string * int) list;
  fz_quarantined : (string * int) list;
  fz_stats : stats;
}

let freeze (t : t) : frozen =
  {
    fz_policy = t.sup_policy;
    fz_consec = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.sup_consec [];
    fz_quarantined = t.sup_quarantined;
    fz_stats = t.sup_stats;
  }

let thaw (f : frozen) : t =
  let t = create ~policy:f.fz_policy () in
  List.iter (fun (k, v) -> Hashtbl.replace t.sup_consec k v) f.fz_consec;
  t.sup_quarantined <- f.fz_quarantined;
  t.sup_stats <- f.fz_stats;
  Atomic.set t.sup_qset
    (List.fold_left
       (fun s (id, _) -> Sset.add id s)
       Sset.empty f.fz_quarantined);
  t
