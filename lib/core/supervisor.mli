(** Supervised execution: fault injection, bounded retry, quarantine.

    The paper's campaigns drove 51 external engine builds that crash, hang
    and flake for infrastructure reasons; its Fig. 5 pipeline keeps the
    campaign alive through those faults and keeps them out of the bug
    statistics. This module supplies both halves for the in-process
    reproduction: a deterministic {!Faultplan} that injects simulated
    infrastructure faults into individual testbed executions (so CI can
    run chaos campaigns), and the supervision policy — watchdog, bounded
    retry with deterministic backoff, per-testbed quarantine — that the
    differential pipeline runs under.

    Concurrency contract: {!execute} (the worker half) reads only the
    immutable plan and policy, and every fault draw is a pure function of
    (seed, testbed id, case key, attempt) — chaos campaigns are therefore
    byte-identical at any job count and across checkpoint resume. The
    mutable supervisor state {!t} (the driver half) is updated only by
    {!observe}, in case-submission order; workers may consult
    {!quarantined_now} racily, purely to skip work the judge would
    discard anyway. *)

(** The fault taxonomy. Distinct by construction from the Figure-5
    outcome classes: an injected fault travels as {!Injected}, which the
    engine layer knows nothing about, so it can never surface as a
    [Sts_crash]/[Sts_timeout] engine signature or a deviation. *)
type fault_kind =
  | F_crash          (** simulated engine-process crash *)
  | F_hang           (** simulated hang; killed by the watchdog *)
  | F_kill           (** a real worker-process hard-kill: under
                         [Coordinator] the driver SIGKILLs the worker
                         mid-case; in-process it degrades to a simulated
                         crash, with identical reports either way *)
  | F_flaky          (** transient failure that clears after N attempts *)
  | F_slow of int    (** slow start of the given latency; beyond the
                         watchdog budget it is killed like a hang *)
  | F_exn of string  (** a real exception escaped the engine harness *)

val fault_kind_to_string : fault_kind -> string

(** The carrier for injected faults (exposed for tests and for harnesses
    that want to inject faults of their own through {!execute}). *)
exception Injected of fault_kind

(** A seeded, deterministic fault-injection plan. *)
module Faultplan : sig
  type t

  (** Parse a spec such as
      ["seed=9;targets=V8|Hermes;crash=0.1;hang=0.05;flaky=0.3;flaky_tries=2;slow=0.2"].
      Keys: [seed], [crash], [hang], [flaky], [flaky_tries], [slow],
      [slow_max], [worker_kill], [targets] ([|]-separated
      case-insensitive testbed-id substrings; absent = every testbed).
      Probabilities are per attempt (per execution for [flaky]).
      [worker_kill] picks executions whose whole worker process the
      coordinator hard-kills (see {!fault_kind}). Unknown keys are
      errors. *)
  val of_spec : string -> (t, string) result

  (** Render back to a spec that {!of_spec} round-trips. *)
  val to_spec : t -> string

  (** The COMFORT_FAULTS environment variable, parsed; [None] when unset
      or empty. @raise Invalid_argument on a malformed spec — silently
      fuzzing without faults would defeat a chaos job. *)
  val from_env : unit -> t option

  (** Does the plan apply to this testbed at all? *)
  val targets : t -> string -> bool

  (** The fault injected into one attempt, or [None]. Pure: depends only
      on (plan, testbed id, case key, attempt). Flakes are drawn per
      execution and persist for [flaky_tries] attempts; crashes, hangs
      and slow starts re-roll on every retry. *)
  val draw :
    t -> testbed_id:string -> case_key:int -> attempt:int -> fault_kind option
end

(** Supervision policy for one campaign. *)
type policy = {
  p_retries : int;
      (** extra attempts after a faulted first try (default 2) *)
  p_backoff_base : int;
      (** simulated backoff units; attempt [k] is charged
          [base * 2^(k-1)]. Fuel is the repo's wall-clock stand-in, so
          backoff is accounted in {!stats}, not slept. *)
  p_watchdog : int;
      (** slow-start budget in latency units; a slow start beyond it is
          indistinguishable from a hang and killed *)
  p_quarantine_after : int;
      (** consecutive faulted cases before a testbed is dropped *)
}

val default_policy : policy

(** What a successful supervised execution absorbed on the way. *)
type exec_meta = {
  em_retries : int;  (** failed attempts before success *)
  em_backoff : int;  (** total simulated backoff units *)
  em_slow : int;     (** slow starts absorbed within the watchdog budget *)
}

(** [exec_meta] of an execution that succeeded first try, untouched. *)
val ok_meta : exec_meta

(** Why an execution was given up on. *)
type fault_report = {
  fr_kind : fault_kind;        (** the fault that exhausted the budget *)
  fr_attempts : int;           (** attempts made (>= 1) *)
  fr_trail : fault_kind list;  (** fault per failed attempt, oldest first *)
  fr_backoff : int;            (** total simulated backoff units *)
}

type 'a outcome =
  | Done of 'a * exec_meta
  | Faulted of fault_report
  | Skipped  (** quarantined before execution *)

(** Run one testbed execution under the plan and policy: consult the
    fault plan before each attempt, retry faulted attempts (injected or
    real escaped exceptions) with deterministic backoff, give up after
    [p_retries] retries. With no plan the happy path is the bare thunk
    plus one exception handler. Worker-safe: touches no shared state. *)
val execute :
  ?plan:Faultplan.t ->
  ?policy:policy ->
  testbed_id:string ->
  case_key:int ->
  (unit -> 'a) ->
  'a outcome

(** {2 Worker-process kill hook}

    Set only inside [Coordinator]'s forked children, where a drawn
    [F_kill] must escalate to a real process death. [arm_kill_hook]
    is called per dispatch: the first [absorb] kill draws (in
    deterministic sweep order) fail their attempt in-process exactly as
    with no hook, and the next invokes [die], which must not return
    (the coordinator SIGKILLs the worker). With the hook unarmed — the
    driver, its domains, in-process campaigns — [F_kill] always
    degrades to an in-process attempt failure, which is what makes
    reports byte-identical at any worker count. *)

val arm_kill_hook : absorb:int -> die:(unit -> unit) -> unit
val disarm_kill_hook : unit -> unit

(** Aggregate supervision counters for a campaign report. *)
type stats = {
  st_injected : int;  (** faulted attempts, injected or real *)
  st_retried : int;   (** executions that retried and then succeeded *)
  st_faulted : int;   (** executions that exhausted the retry budget *)
  st_skipped : int;   (** executions skipped because of quarantine *)
  st_slow : int;      (** slow starts absorbed *)
  st_backoff : int;   (** total simulated backoff units *)
}

val zero_stats : stats

(** Driver-side supervisor state: consecutive-fault tracking, the
    quarantine set, aggregate stats. Mutated only by {!observe}. *)
type t

val create : ?policy:policy -> unit -> t
val policy : t -> policy
val stats : t -> stats

(** Quarantined testbeds as [(testbed id, case key that tripped the
    threshold)], oldest first. *)
val quarantine_list : t -> (string * int) list

(** Deterministic driver-state membership test (what the judge uses). *)
val quarantined : t -> string -> bool

(** The racy worker-side peek at the quarantine set. Monotone, so a stale
    read can only waste one execution, never change a report. *)
val quarantined_now : t -> string -> bool

(** One testbed's supervised outcome within one case. *)
type observation =
  | Ob_ok of exec_meta
  | Ob_faulted of fault_report
  | Ob_skipped

(** Fold one case's per-testbed observations into the supervisor, in
    case-submission order: reset or bump consecutive-fault counters,
    quarantine testbeds that cross [p_quarantine_after], accumulate
    stats. Driver-only. *)
val observe : t -> case_key:int -> (string * observation) list -> unit

(** Marshal-safe snapshot of the supervisor, for campaign checkpoints. *)
type frozen

val freeze : t -> frozen
val thaw : frozen -> t
