(* Test cases: a JS program plus how it came to be.

   The provenance tag drives Table 4 (program-generation bugs vs
   ECMA-262-guided data-generation bugs) and names the originating fuzzer
   in the comparison experiments. *)

type provenance =
  | P_generated              (** straight from the language model (§3.2) *)
  | P_ecma_mutated of string (** Algorithm 1 mutant; payload = API name *)
  | P_seed                   (** handwritten/baseline seed *)
  | P_fuzzer of string       (** produced by a named baseline fuzzer *)

let provenance_to_string = function
  | P_generated -> "generated"
  | P_ecma_mutated api -> "ecma-mutated:" ^ api
  | P_seed -> "seed"
  | P_fuzzer name -> "fuzzer:" ^ name

type t = {
  tc_id : int;
  tc_source : string;
  tc_provenance : provenance;
  tc_syntax_valid : bool;  (** verdict of the JSHint-substitute check *)
}

(* Atomic so ids stay distinct if cases are ever minted off the main
   domain (e.g. a parallel screening stage). *)
let counter = Atomic.make 0

let make ?(provenance = P_generated) (source : string) : t =
  {
    tc_id = Atomic.fetch_and_add counter 1 + 1;
    tc_source = source;
    tc_provenance = provenance;
    tc_syntax_valid = Jsparse.Parser.is_valid source;
  }

let is_ecma_guided (tc : t) =
  match tc.tc_provenance with P_ecma_mutated _ -> true | _ -> false
