(* Testbed execution: run a test case on one engine-version configuration
   in one mode (normal or strict), per the paper's §4.2 testbed setup. *)

open Jsinterp

type mode = Normal | Strict

let mode_to_string = function Normal -> "normal" | Strict -> "strict"

type testbed = {
  tb_config : Registry.config;
  tb_mode : mode;
}

let testbed_id (tb : testbed) =
  Printf.sprintf "%s[%s]" (Registry.id tb.tb_config) (mode_to_string tb.tb_mode)

(* The paper's 102 testbeds: 51 configurations x 2 modes. *)
let all_testbeds : testbed list =
  List.concat_map
    (fun c -> [ { tb_config = c; tb_mode = Normal }; { tb_config = c; tb_mode = Strict } ])
    Registry.all_configs

(* Testbeds for the newest version of each engine, the default target set
   for a fuzzing campaign. *)
let latest_testbeds ?(mode = Normal) () : testbed list =
  List.map
    (fun e -> { tb_config = Registry.latest e; tb_mode = mode })
    Registry.all_engines

let run ?(fuel = Run.default_fuel) ?(coverage = false) ?frontend
    (tb : testbed) (src : string) : Run.result =
  Run.run
    ~quirks:tb.tb_config.Registry.cfg_quirks
    ~parse_opts:(Registry.parse_opts_of_config tb.tb_config)
    ~strict:(tb.tb_mode = Strict)
    ~fuel ~coverage ?frontend src

(* A reference run: the standard-conforming engine with no quirks. Used by
   the reducer and by examples as the "expected" behaviour. *)
let run_reference ?(fuel = Run.default_fuel) ?(strict = false) (src : string) :
    Run.result =
  Run.run ~strict ~fuel src

(* Can this configuration's front end parse the program at all? Used by the
   campaign to honour the paper's rule of only testing engines against
   programs within their supported edition (§2.2). *)
let supports (c : Registry.config) (src : string) : bool =
  match
    Jsparse.Parser.parse_program ~opts:(Registry.parse_opts_of_config c) src
  with
  | _ -> true
  | exception Jsparse.Parser.Syntax_error _ ->
      (* distinguish "ES edition too old" from genuinely bad syntax: if the
         default front end accepts it, the rejection is a feature gap *)
      not (Jsparse.Parser.is_valid src)

(* The per-case front-end cache. Differential testing sweeps one source
   across many testbeds, and most of the 51 configs share the same
   effective front end; without a cache each testbed costs up to three
   parses (edition gating parses once or twice, the run itself once more).
   A [Frontend.cache] is built once per test case and shares:

   - the [supports] verdict, per base front-end profile ([supports]
     ignores quirk-level options, so only the ES5/standard split matters);
   - the syntactic-validity check backing [supports]'s feature-gap probe;
   - the parsed program plus sunk parse-stage quirks, per distinct
     [(Registry.parse_key, mode)] group — [Run.run ~frontend] then skips
     its own parse and re-filters the quirks per engine.

   A cache is a plain mutable value tied to one source string. It is NOT
   domain-safe: the campaign executor builds one cache per case inside the
   worker that owns that case, and nothing else is sound. *)
module Frontend = struct
  type cache = {
    fc_src : string;
    fc_valid : bool Lazy.t;
    fc_supports : (bool, bool) Hashtbl.t;
        (* keyed by "is the ES5 profile?" — all [supports] depends on *)
    fc_groups : (Registry.parse_key * bool, Run.frontend) Hashtbl.t;
        (* keyed by (effective front end, strict mode) *)
  }

  let cache (src : string) : cache =
    {
      fc_src = src;
      fc_valid = lazy (Jsparse.Parser.is_valid src);
      fc_supports = Hashtbl.create 2;
      fc_groups = Hashtbl.create 8;
    }

  let supports (fc : cache) (c : Registry.config) : bool =
    let key = c.Registry.cfg_es = Registry.ES5 in
    match Hashtbl.find_opt fc.fc_supports key with
    | Some b -> b
    | None ->
        let b =
          match
            Jsparse.Parser.parse_program
              ~opts:(Registry.parse_opts_of_config c) fc.fc_src
          with
          | _ -> true
          | exception Jsparse.Parser.Syntax_error _ ->
              not (Lazy.force fc.fc_valid)
        in
        Hashtbl.replace fc.fc_supports key b;
        b

  let frontend (fc : cache) (tb : testbed) : Run.frontend =
    let cfg = tb.tb_config in
    let key = (Registry.parse_key cfg, tb.tb_mode = Strict) in
    match Hashtbl.find_opt fc.fc_groups key with
    | Some fe -> fe
    | None ->
        let fe =
          Run.parse_frontend ~quirks:cfg.Registry.cfg_quirks
            ~parse_opts:(Registry.parse_opts_of_config cfg)
            ~strict:(tb.tb_mode = Strict) fc.fc_src
        in
        Hashtbl.replace fc.fc_groups key fe;
        fe
end
