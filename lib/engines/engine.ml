(* Testbed execution: run a test case on one engine-version configuration
   in one mode (normal or strict), per the paper's §4.2 testbed setup. *)

open Jsinterp

type mode = Normal | Strict

let mode_to_string = function Normal -> "normal" | Strict -> "strict"

type testbed = {
  tb_config : Registry.config;
  tb_mode : mode;
}

let testbed_id (tb : testbed) =
  Printf.sprintf "%s[%s]" (Registry.id tb.tb_config) (mode_to_string tb.tb_mode)

(* Inverse of [testbed_id], for reviving testbeds named in serialised
   state (campaign checkpoints store the testbed set by id so a resumed
   campaign provably sweeps the same pool). *)
let testbed_of_id (s : string) : testbed option =
  let parse mode suffix =
    if String.length s > String.length suffix
       && String.sub s (String.length s - String.length suffix)
            (String.length suffix)
          = suffix
    then
      Option.map
        (fun cfg -> { tb_config = cfg; tb_mode = mode })
        (Registry.config_of_id
           (String.sub s 0 (String.length s - String.length suffix)))
    else None
  in
  match parse Normal "[normal]" with
  | Some tb -> Some tb
  | None -> parse Strict "[strict]"

(* The paper's 102 testbeds: 51 configurations x 2 modes. *)
let all_testbeds : testbed list =
  List.concat_map
    (fun c -> [ { tb_config = c; tb_mode = Normal }; { tb_config = c; tb_mode = Strict } ])
    Registry.all_configs

(* Testbeds for the newest version of each engine, the default target set
   for a fuzzing campaign. *)
let latest_testbeds ?(mode = Normal) () : testbed list =
  List.map
    (fun e -> { tb_config = Registry.latest e; tb_mode = mode })
    Registry.all_engines

let run ?(fuel = Run.default_fuel) ?(coverage = false) ?resolve ?reach
    ?specialize ?frontend (tb : testbed) (src : string) : Run.result =
  Run.run
    ~quirks:tb.tb_config.Registry.cfg_quirks
    ~parse_opts:(Registry.parse_opts_of_config tb.tb_config)
    ~strict:(tb.tb_mode = Strict)
    ~fuel ~coverage ?resolve ?reach ?specialize ?frontend src

(* A reference run: the standard-conforming engine with no quirks. Used by
   the reducer and by examples as the "expected" behaviour. *)
let run_reference ?(fuel = Run.default_fuel) ?(strict = false) ?resolve ?reach
    ?specialize (src : string) : Run.result =
  Run.run ~strict ~fuel ?resolve ?reach ?specialize src

(* Can this configuration's front end parse the program at all? Used by the
   campaign to honour the paper's rule of only testing engines against
   programs within their supported edition (§2.2). *)
let supports (c : Registry.config) (src : string) : bool =
  match
    Jsparse.Parser.parse_program ~opts:(Registry.parse_opts_of_config c) src
  with
  | _ -> true
  | exception Jsparse.Parser.Syntax_error _ ->
      (* distinguish "ES edition too old" from genuinely bad syntax: if the
         default front end accepts it, the rejection is a feature gap *)
      not (Jsparse.Parser.is_valid src)

(* The per-case front-end cache. Differential testing sweeps one source
   across many testbeds, and most of the 51 configs share the same
   effective front end; without a cache each testbed costs up to three
   parses (edition gating parses once or twice, the run itself once more).
   A [Frontend.cache] is built once per test case and shares:

   - one *permissive base parse* per profile (ES5 / standard): parsed
     sloppy with every parser-level quirk acceptance enabled. Because
     each quirk decision point either sinks its quirk (accept on) or
     raises (accept off), and each strict-divergent construct reports
     through [strict_sensitive_sink], the base parse proves its own
     reuse conditions: any [(parse_key, mode)] group whose quirk set
     covers the sunk quirks — and, for strict groups, whose source
     contains no strict-sensitive construct (or opts into strict
     itself) — parses identically and shares the base front end
     outright, compilations, reach analysis and all. In the common case
     the whole 100-testbed sweep costs one or two parses;
   - the [supports] verdict and the syntactic-validity check backing its
     feature-gap probe, both derived from the base parses for free;
   - a real parse per [(Registry.parse_key, mode)] group whose
     difference from the base is actually observable (rare: the source
     must contain the quirky or strict-sensitive syntax).

   A cache is a plain mutable value tied to one source string. It is NOT
   domain-safe: the campaign executor builds one cache per case inside the
   worker that owns that case, and nothing else is sound. *)
module Frontend = struct
  type cache = {
    fc_src : string;
    fc_base : (bool, Run.frontend) Hashtbl.t;
        (* permissive sloppy parse, keyed by "is the ES5 profile?" *)
    fc_supports : (bool, bool) Hashtbl.t;
        (* keyed by "is the ES5 profile?" — all [supports] depends on *)
    fc_groups : (int, Run.frontend) Hashtbl.t;
        (* keyed by [Registry.pk_int] of the effective front end, with
           the strict-mode bit folded in at bit 4 — an int key hashes in
           a few ns where the (record, bool) pair paid a polymorphic
           structure walk per lookup, once per testbed per case *)
  }

  let cache (src : string) : cache =
    {
      fc_src = src;
      fc_base = Hashtbl.create 2;
      fc_supports = Hashtbl.create 2;
      fc_groups = Hashtbl.create 8;
    }

  (* Every parser-level quirk, enabled at once for the base parse. *)
  let permissive_quirks =
    Quirk.Set.of_list
      [
        Quirk.Q_eval_for_missing_body_accepted;
        Quirk.Q_strict_dup_params_accepted;
        Quirk.Q_strict_delete_unqualified_accepted;
      ]

  let base_frontend (fc : cache) ~(es5 : bool) : Run.frontend =
    match Hashtbl.find_opt fc.fc_base es5 with
    | Some fe -> fe
    | None ->
        let parse_opts =
          if es5 then Jsparse.Parser.es5_options
          else Jsparse.Parser.default_options
        in
        (* [reach_strict]: the base front end may serve strict groups,
           and the strict reach set is a superset of the sloppy one *)
        let fe =
          Run.parse_frontend ~quirks:permissive_quirks ~parse_opts
            ~strict:false ~reach_strict:true fc.fc_src
        in
        Hashtbl.replace fc.fc_base es5 fe;
        fe

  (* Parses under the profile's own options (no quirk acceptances): the
     permissive base succeeded without leaning on any acceptance. *)
  let parses_clean (fe : Run.frontend) : bool =
    (match fe.Run.fe_program with Ok _ -> true | Error _ -> false)
    && Quirk.Set.is_empty fe.Run.fe_fired

  (* Syntactic validity under the standard front end, derived from the
     standard base parse instead of a parse of its own. *)
  let valid (fc : cache) : bool = parses_clean (base_frontend fc ~es5:false)

  let supports (fc : cache) (c : Registry.config) : bool =
    let key = c.Registry.cfg_es = Registry.ES5 in
    match Hashtbl.find_opt fc.fc_supports key with
    | Some b -> b
    | None ->
        let b = parses_clean (base_frontend fc ~es5:key) || not (valid fc) in
        Hashtbl.replace fc.fc_supports key b;
        b

  let source (fc : cache) = fc.fc_src

  (* The shared front end of an arbitrary parse group. Two profiles with
     the same [key] have identical effective options, so whichever member
     arrives first parses on behalf of the whole group — and when the
     base parse's sunk-quirk and strict-sensitivity evidence proves the
     group's options unobservable on this source, the group shares the
     base front end without parsing at all. *)
  (* The packed table key of a parse group: [pk_int] plus the strict bit. *)
  let group_key (pk : Registry.parse_key) ~(strict : bool) : int =
    Registry.pk_int pk lor if strict then 16 else 0

  let frontend_for (fc : cache) ~(key : Registry.parse_key * bool)
      ~(quirks : Quirk.Set.t) ~(parse_opts : Jsparse.Parser.options)
      ~(strict : bool) : Run.frontend =
    let ikey = group_key (fst key) ~strict:(snd key) in
    match Hashtbl.find_opt fc.fc_groups ikey with
    | Some fe -> fe
    | None ->
        let pk, _ = key in
        let base = base_frontend fc ~es5:pk.Registry.pk_es5 in
        let subsumed =
          (* all quirks the base parse leaned on are enabled here, so
             this group's parse accepts at the same points and sinks the
             same (post-filter) set *)
          Quirk.Set.subset base.Run.fe_fired quirks
        in
        let mode_ok =
          (not strict)
          || (not base.Run.fe_strict_sensitive)
          ||
          (* a directive-prologue opt-in makes the sloppy parse strict
             already; forcing the mode changes nothing *)
          match base.Run.fe_program with
          | Ok p -> p.Jsast.Ast.prog_strict
          | Error _ -> false
        in
        let fe =
          if subsumed && mode_ok then base
          else Run.parse_frontend ~quirks ~parse_opts ~strict fc.fc_src
        in
        Hashtbl.replace fc.fc_groups ikey fe;
        fe

  let frontend (fc : cache) (tb : testbed) : Run.frontend =
    let cfg = tb.tb_config in
    frontend_for fc
      ~key:(Registry.parse_key cfg, tb.tb_mode = Strict)
      ~quirks:cfg.Registry.cfg_quirks
      ~parse_opts:(Registry.parse_opts_of_config cfg)
      ~strict:(tb.tb_mode = Strict)
end

(* The per-case execution-sharing cache, extending {!Frontend} from shared
   parses to shared *executions*. Differential testing interprets one case
   on up to 102 testbeds, yet a typical case reaches only a handful of the
   73 registered quirk checkpoints, so most testbeds are guaranteed to
   replay the reference behaviour byte for byte. [Exec.run] therefore
   executes once per *behavioural equivalence class* — testbeds keyed by
   (parse group, mode, quirk set ∩ touched checkpoints) — and lets every
   other member inherit the representative's [Run.result] (output, status,
   fuel, fired), so majority voting and the 2t rule see exactly the
   results a direct sweep would have produced.

   Classes are discovered by a split-and-rerun fixpoint: each incoming
   testbed is validated against the representatives found so far, in
   creation order, using the representative's *own* touched set
   ([Run.shares_class] — sound because a firing quirk can steer control
   flow into new checkpoints, so only the representative's observed
   touched set, never a prediction, may justify sharing). A testbed that
   matches no representative splits off and is rerun as the
   representative of a fresh class. Each iteration retires one testbed,
   so the loop is bounded by the group size and degenerates to the
   unshared sweep in the worst case. Soundness argument: DESIGN.md §8.

   Like [Frontend.cache], a cache is a plain mutable value tied to one
   source string and is NOT domain-safe: the campaign executor builds one
   per case inside the worker that owns the case. *)
module Exec = struct
  (* One (parse group, strict, fuel) equivalence-class table entry: the
     representative list (ground truth, oldest first) plus the static
     partition cells hanging off it. A cell key is the quirk set ∩ the
     parse group's static reach set, packed into its two machine words —
     [Quirk.Bits]; a Quirk.Set.t has order-dependent tree shape and a
     sorted element list allocates and hashes slowly, which PR 6
     measured as a throughput regression. The static reach set
     over-approximates every touched set of the parse group, so two
     quirk sets in one cell agree on every checkpoint any execution can
     consult — a cell hit shares without scanning the full class list.
     Purely an acceleration: the class list stays the ground truth, so
     executions performed are identical with or without the analysis.
     Cells live inside the class entry as a small inline list with the
     two cell words compared directly (rather than in a Hashtbl keyed by
     the full class key, or even by the word pair): a class sees at most
     a handful of distinct cells, and PR 7 measured the polymorphic
     hashing of structured keys — ~0.5µs per call, ~40k calls per
     campaign — as the overhead that made the reach row slower than
     plain sharing. The inline walk is two integer compares per entry
     and allocates nothing on the lookup path. *)
  type cell = {
    ce_lo : int;
    ce_hi : int;  (* quirks ∩ reach set, packed ([Quirk.Bits]) *)
    mutable ce_reps : Run.exec list;
  }

  type cls = {
    mutable cl_reps : Run.exec list;
    mutable cl_cells : cell list;
  }

  type cache = {
    ec_frontend : Frontend.cache;
    ec_classes : (int, cls) Hashtbl.t;
        (* (parse group, strict, fuel) packed into one int — group key
           in the low 5 bits, fuel above — -> class entry; fuel is in
           the key so a cache survives mixed budgets *)
    mutable ec_executed : int;  (* real interpreter executions *)
    mutable ec_shared : int;    (* runs answered by class inheritance *)
    mutable ec_seeded : int;    (* shared runs answered by the static cell *)
  }

  (* Process-wide tally of cell-hit shares, the analogue of
     [Run.run_count]: per-case caches die with their worker, so campaign
     stats read a before/after delta of this counter instead. *)
  let seeded_total = Atomic.make 0
  let seeded_count () = Atomic.get seeded_total

  (* Fold a forked campaign worker's reach-seeded delta into this
     process's count (see [Run.add_runs]). *)
  let add_seeded n = if n > 0 then ignore (Atomic.fetch_and_add seeded_total n)

  let cache (src : string) : cache =
    {
      ec_frontend = Frontend.cache src;
      ec_classes = Hashtbl.create 8;
      ec_executed = 0;
      ec_shared = 0;
      ec_seeded = 0;
    }

  let of_frontend (fc : Frontend.cache) : cache =
    {
      ec_frontend = fc;
      ec_classes = Hashtbl.create 8;
      ec_executed = 0;
      ec_shared = 0;
      ec_seeded = 0;
    }

  let frontend_cache (ec : cache) = ec.ec_frontend
  let supports (ec : cache) (c : Registry.config) =
    Frontend.supports ec.ec_frontend c

  let stats (ec : cache) = (ec.ec_executed, ec.ec_shared)
  let seeded (ec : cache) = ec.ec_seeded


  let run_keyed ?resolve ?reach ?specialize ?qbits (ec : cache)
      ~(pkey : Registry.parse_key) ~(quirks : Quirk.Set.t)
      ~(parse_opts : Jsparse.Parser.options) ~(strict : bool) ~(fuel : int)
      : Run.result =
    let reach =
      match reach with Some r -> r | None -> Run.reach_by_default ()
    in
    (* packed quirk words; callers on the campaign hot path pass the
       precomputed [Registry.cfg_qbits] so nothing is rebuilt per case *)
    let qbits =
      match qbits with Some b -> b | None -> Quirk.Bits.of_set quirks
    in
    let fe =
      Frontend.frontend_for ec.ec_frontend ~key:(pkey, strict) ~quirks
        ~parse_opts ~strict
    in
    match fe.Run.fe_program with
    | Error _ ->
        (* nothing executes; [run ~frontend] only renders the stored
           syntax error and filters the sunk parse quirks *)
        Run.run ~quirks ~parse_opts ~strict ~fuel ?resolve ~reach ?specialize
          ~frontend:fe
          (Frontend.source ec.ec_frontend)
    | Ok _ -> (
        let ckey = Frontend.group_key pkey ~strict lor (fuel lsl 5) in
        let cls =
          match Hashtbl.find_opt ec.ec_classes ckey with
          | Some c -> c
          | None ->
              let c = { cl_reps = []; cl_cells = [] } in
              Hashtbl.replace ec.ec_classes ckey c;
              c
        in
        (* the static cell of this quirk set, when the analysis is on:
           two machine words of intersection, then an inline walk of the
           class's few cells — no hashing, no allocation *)
        let bucket =
          if not reach then None
          else begin
            let qlo, qhi = qbits in
            let rlo, rhi = Lazy.force fe.Run.fe_reach_bits in
            let lo = qlo land rlo and hi = qhi land rhi in
            let rec find = function
              | [] ->
                  let c = { ce_lo = lo; ce_hi = hi; ce_reps = [] } in
                  cls.cl_cells <- c :: cls.cl_cells;
                  c
              | c :: tl ->
                  if c.ce_lo = lo && c.ce_hi = hi then c else find tl
            in
            Some (find cls.cl_cells)
          end
        in
        let cell_hit =
          match bucket with
          | Some c -> List.find_opt (Run.shares_class_bits ~qbits) c.ce_reps
          | None -> None
        in
        match cell_hit with
        | Some ex ->
            (* same-cell representative: [shares_class] is implied by the
               cell equality (touched ⊆ reach set), and re-checked above
               as a cheap defence against an unsound analysis *)
            ec.ec_shared <- ec.ec_shared + 1;
            ec.ec_seeded <- ec.ec_seeded + 1;
            Atomic.incr seeded_total;
            Run.share ~frontend:fe ~quirks ex
        | None -> (
            match
              List.find_opt (Run.shares_class_bits ~qbits) cls.cl_reps
            with
            | Some ex ->
                (* cross-cell share (the representative's cell differs on
                   some statically-reachable but dynamically-untouched
                   checkpoint): remember it in this cell too, so the next
                   same-cell member hits without the full scan *)
                ec.ec_shared <- ec.ec_shared + 1;
                (match bucket with
                | Some c -> c.ce_reps <- c.ce_reps @ [ ex ]
                | None -> ());
                Run.share ~frontend:fe ~quirks ex
            | None ->
                (* split: no representative's touched set validates this
                   quirk set, so it seeds a new class with a direct
                   execution *)
                let ex =
                  Run.run_exec ~quirks ~parse_opts ~strict ~fuel ?resolve
                    ~reach ?specialize ~frontend:fe
                    (Frontend.source ec.ec_frontend)
                in
                ec.ec_executed <- ec.ec_executed + 1;
                cls.cl_reps <- cls.cl_reps @ [ ex ];
                (match bucket with
                | Some c -> c.ce_reps <- c.ce_reps @ [ ex ]
                | None -> ());
                ex.Run.ex_result))

  let run ?(fuel = Run.default_fuel) ?resolve ?reach ?specialize (ec : cache)
      (tb : testbed) : Run.result =
    let cfg = tb.tb_config in
    run_keyed ?resolve ?reach ?specialize ~qbits:cfg.Registry.cfg_qbits ec
      ~pkey:(Registry.parse_key cfg)
      ~quirks:cfg.Registry.cfg_quirks
      ~parse_opts:(Registry.parse_opts_of_config cfg)
      ~strict:(tb.tb_mode = Strict) ~fuel

  (* The conforming reference engine through the same cache: joins the
     standard-front-end, quirk-free parse group and (having no quirks at
     all) shares any class whose representative fired nothing it touched. *)
  let run_reference ?(fuel = Run.default_fuel) ?(strict = false) ?resolve
      ?reach ?specialize (ec : cache) : Run.result =
    run_keyed ?resolve ?reach ?specialize ~qbits:Quirk.Bits.empty ec
      ~pkey:Registry.reference_parse_key
      ~quirks:Quirk.Set.empty
      ~parse_opts:Jsparse.Parser.default_options ~strict ~fuel
end
