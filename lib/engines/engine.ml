(* Testbed execution: run a test case on one engine-version configuration
   in one mode (normal or strict), per the paper's §4.2 testbed setup. *)

open Jsinterp

type mode = Normal | Strict

let mode_to_string = function Normal -> "normal" | Strict -> "strict"

type testbed = {
  tb_config : Registry.config;
  tb_mode : mode;
}

let testbed_id (tb : testbed) =
  Printf.sprintf "%s[%s]" (Registry.id tb.tb_config) (mode_to_string tb.tb_mode)

(* Inverse of [testbed_id], for reviving testbeds named in serialised
   state (campaign checkpoints store the testbed set by id so a resumed
   campaign provably sweeps the same pool). *)
let testbed_of_id (s : string) : testbed option =
  let parse mode suffix =
    if String.length s > String.length suffix
       && String.sub s (String.length s - String.length suffix)
            (String.length suffix)
          = suffix
    then
      Option.map
        (fun cfg -> { tb_config = cfg; tb_mode = mode })
        (Registry.config_of_id
           (String.sub s 0 (String.length s - String.length suffix)))
    else None
  in
  match parse Normal "[normal]" with
  | Some tb -> Some tb
  | None -> parse Strict "[strict]"

(* The paper's 102 testbeds: 51 configurations x 2 modes. *)
let all_testbeds : testbed list =
  List.concat_map
    (fun c -> [ { tb_config = c; tb_mode = Normal }; { tb_config = c; tb_mode = Strict } ])
    Registry.all_configs

(* Testbeds for the newest version of each engine, the default target set
   for a fuzzing campaign. *)
let latest_testbeds ?(mode = Normal) () : testbed list =
  List.map
    (fun e -> { tb_config = Registry.latest e; tb_mode = mode })
    Registry.all_engines

let run ?(fuel = Run.default_fuel) ?(coverage = false) ?resolve ?reach
    ?frontend (tb : testbed) (src : string) : Run.result =
  Run.run
    ~quirks:tb.tb_config.Registry.cfg_quirks
    ~parse_opts:(Registry.parse_opts_of_config tb.tb_config)
    ~strict:(tb.tb_mode = Strict)
    ~fuel ~coverage ?resolve ?reach ?frontend src

(* A reference run: the standard-conforming engine with no quirks. Used by
   the reducer and by examples as the "expected" behaviour. *)
let run_reference ?(fuel = Run.default_fuel) ?(strict = false) ?resolve ?reach
    (src : string) : Run.result =
  Run.run ~strict ~fuel ?resolve ?reach src

(* Can this configuration's front end parse the program at all? Used by the
   campaign to honour the paper's rule of only testing engines against
   programs within their supported edition (§2.2). *)
let supports (c : Registry.config) (src : string) : bool =
  match
    Jsparse.Parser.parse_program ~opts:(Registry.parse_opts_of_config c) src
  with
  | _ -> true
  | exception Jsparse.Parser.Syntax_error _ ->
      (* distinguish "ES edition too old" from genuinely bad syntax: if the
         default front end accepts it, the rejection is a feature gap *)
      not (Jsparse.Parser.is_valid src)

(* The per-case front-end cache. Differential testing sweeps one source
   across many testbeds, and most of the 51 configs share the same
   effective front end; without a cache each testbed costs up to three
   parses (edition gating parses once or twice, the run itself once more).
   A [Frontend.cache] is built once per test case and shares:

   - the [supports] verdict, per base front-end profile ([supports]
     ignores quirk-level options, so only the ES5/standard split matters);
   - the syntactic-validity check backing [supports]'s feature-gap probe;
   - the parsed program plus sunk parse-stage quirks, per distinct
     [(Registry.parse_key, mode)] group — [Run.run ~frontend] then skips
     its own parse and re-filters the quirks per engine.

   A cache is a plain mutable value tied to one source string. It is NOT
   domain-safe: the campaign executor builds one cache per case inside the
   worker that owns that case, and nothing else is sound. *)
module Frontend = struct
  type cache = {
    fc_src : string;
    fc_valid : bool Lazy.t;
    fc_supports : (bool, bool) Hashtbl.t;
        (* keyed by "is the ES5 profile?" — all [supports] depends on *)
    fc_groups : (Registry.parse_key * bool, Run.frontend) Hashtbl.t;
        (* keyed by (effective front end, strict mode) *)
  }

  let cache (src : string) : cache =
    {
      fc_src = src;
      fc_valid = lazy (Jsparse.Parser.is_valid src);
      fc_supports = Hashtbl.create 2;
      fc_groups = Hashtbl.create 8;
    }

  let supports (fc : cache) (c : Registry.config) : bool =
    let key = c.Registry.cfg_es = Registry.ES5 in
    match Hashtbl.find_opt fc.fc_supports key with
    | Some b -> b
    | None ->
        let b =
          match
            Jsparse.Parser.parse_program
              ~opts:(Registry.parse_opts_of_config c) fc.fc_src
          with
          | _ -> true
          | exception Jsparse.Parser.Syntax_error _ ->
              not (Lazy.force fc.fc_valid)
        in
        Hashtbl.replace fc.fc_supports key b;
        b

  let source (fc : cache) = fc.fc_src

  (* The shared front end of an arbitrary parse group. Two profiles with
     the same [key] have identical effective options, so whichever member
     arrives first parses on behalf of the whole group. *)
  let frontend_for (fc : cache) ~(key : Registry.parse_key * bool)
      ~(quirks : Quirk.Set.t) ~(parse_opts : Jsparse.Parser.options)
      ~(strict : bool) : Run.frontend =
    match Hashtbl.find_opt fc.fc_groups key with
    | Some fe -> fe
    | None ->
        let fe = Run.parse_frontend ~quirks ~parse_opts ~strict fc.fc_src in
        Hashtbl.replace fc.fc_groups key fe;
        fe

  let frontend (fc : cache) (tb : testbed) : Run.frontend =
    let cfg = tb.tb_config in
    frontend_for fc
      ~key:(Registry.parse_key cfg, tb.tb_mode = Strict)
      ~quirks:cfg.Registry.cfg_quirks
      ~parse_opts:(Registry.parse_opts_of_config cfg)
      ~strict:(tb.tb_mode = Strict)
end

(* The per-case execution-sharing cache, extending {!Frontend} from shared
   parses to shared *executions*. Differential testing interprets one case
   on up to 102 testbeds, yet a typical case reaches only a handful of the
   73 registered quirk checkpoints, so most testbeds are guaranteed to
   replay the reference behaviour byte for byte. [Exec.run] therefore
   executes once per *behavioural equivalence class* — testbeds keyed by
   (parse group, mode, quirk set ∩ touched checkpoints) — and lets every
   other member inherit the representative's [Run.result] (output, status,
   fuel, fired), so majority voting and the 2t rule see exactly the
   results a direct sweep would have produced.

   Classes are discovered by a split-and-rerun fixpoint: each incoming
   testbed is validated against the representatives found so far, in
   creation order, using the representative's *own* touched set
   ([Run.shares_class] — sound because a firing quirk can steer control
   flow into new checkpoints, so only the representative's observed
   touched set, never a prediction, may justify sharing). A testbed that
   matches no representative splits off and is rerun as the
   representative of a fresh class. Each iteration retires one testbed,
   so the loop is bounded by the group size and degenerates to the
   unshared sweep in the worst case. Soundness argument: DESIGN.md §8.

   Like [Frontend.cache], a cache is a plain mutable value tied to one
   source string and is NOT domain-safe: the campaign executor builds one
   per case inside the worker that owns the case. *)
module Exec = struct
  type cache = {
    ec_frontend : Frontend.cache;
    ec_classes :
      (Registry.parse_key * bool * int, Run.exec list ref) Hashtbl.t;
        (* (parse group, strict, fuel) -> class representatives, oldest
           first; fuel is in the key so a cache survives mixed budgets *)
    ec_buckets :
      (Registry.parse_key * bool * int * Quirk.t list, Run.exec list ref)
      Hashtbl.t;
        (* static partition: (class key, quirks ∩ static reach set, as a
           sorted element list — Quirk.Set.t itself has order-dependent
           tree shape and cannot key a hashtable) -> representatives known
           to serve that partition cell. The static reach set over-
           approximates every touched set of the parse group, so two quirk
           sets in one cell agree on every checkpoint any execution can
           consult — a cell hit shares without scanning the full class
           list. Purely an acceleration: the class list stays the ground
           truth, so executions performed are identical with or without
           the analysis. *)
    mutable ec_executed : int;  (* real interpreter executions *)
    mutable ec_shared : int;    (* runs answered by class inheritance *)
    mutable ec_seeded : int;    (* shared runs answered by the static cell *)
  }

  (* Process-wide tally of cell-hit shares, the analogue of
     [Run.run_count]: per-case caches die with their worker, so campaign
     stats read a before/after delta of this counter instead. *)
  let seeded_total = Atomic.make 0
  let seeded_count () = Atomic.get seeded_total

  let cache (src : string) : cache =
    {
      ec_frontend = Frontend.cache src;
      ec_classes = Hashtbl.create 8;
      ec_buckets = Hashtbl.create 8;
      ec_executed = 0;
      ec_shared = 0;
      ec_seeded = 0;
    }

  let of_frontend (fc : Frontend.cache) : cache =
    {
      ec_frontend = fc;
      ec_classes = Hashtbl.create 8;
      ec_buckets = Hashtbl.create 8;
      ec_executed = 0;
      ec_shared = 0;
      ec_seeded = 0;
    }

  let frontend_cache (ec : cache) = ec.ec_frontend
  let supports (ec : cache) (c : Registry.config) =
    Frontend.supports ec.ec_frontend c

  let stats (ec : cache) = (ec.ec_executed, ec.ec_shared)
  let seeded (ec : cache) = ec.ec_seeded

  let run_keyed ?resolve ?reach (ec : cache) ~(pkey : Registry.parse_key)
      ~(quirks : Quirk.Set.t) ~(parse_opts : Jsparse.Parser.options)
      ~(strict : bool) ~(fuel : int) : Run.result =
    let reach =
      match reach with Some r -> r | None -> Run.reach_by_default ()
    in
    let fe =
      Frontend.frontend_for ec.ec_frontend ~key:(pkey, strict) ~quirks
        ~parse_opts ~strict
    in
    match fe.Run.fe_program with
    | Error _ ->
        (* nothing executes; [run ~frontend] only renders the stored
           syntax error and filters the sunk parse quirks *)
        Run.run ~quirks ~parse_opts ~strict ~fuel ?resolve ~reach ~frontend:fe
          (Frontend.source ec.ec_frontend)
    | Ok _ -> (
        let ckey = (pkey, strict, fuel) in
        let classes =
          match Hashtbl.find_opt ec.ec_classes ckey with
          | Some l -> l
          | None ->
              let l = ref [] in
              Hashtbl.replace ec.ec_classes ckey l;
              l
        in
        (* the static cell of this quirk set, when the analysis is on *)
        let bucket =
          if not reach then None
          else
            let cell =
              Quirk.Set.elements
                (Quirk.Set.inter quirks (Run.reach_set fe))
            in
            let bkey = (pkey, strict, fuel, cell) in
            match Hashtbl.find_opt ec.ec_buckets bkey with
            | Some l -> Some l
            | None ->
                let l = ref [] in
                Hashtbl.replace ec.ec_buckets bkey l;
                Some l
        in
        let cell_hit =
          match bucket with
          | Some l -> List.find_opt (Run.shares_class ~quirks) !l
          | None -> None
        in
        match cell_hit with
        | Some ex ->
            (* same-cell representative: [shares_class] is implied by the
               cell equality (touched ⊆ reach set), and re-checked above
               as a cheap defence against an unsound analysis *)
            ec.ec_shared <- ec.ec_shared + 1;
            ec.ec_seeded <- ec.ec_seeded + 1;
            Atomic.incr seeded_total;
            Run.share ~frontend:fe ~quirks ex
        | None -> (
            match List.find_opt (Run.shares_class ~quirks) !classes with
            | Some ex ->
                (* cross-cell share (the representative's cell differs on
                   some statically-reachable but dynamically-untouched
                   checkpoint): remember it in this cell too, so the next
                   same-cell member hits without the full scan *)
                ec.ec_shared <- ec.ec_shared + 1;
                (match bucket with
                | Some l -> l := !l @ [ ex ]
                | None -> ());
                Run.share ~frontend:fe ~quirks ex
            | None ->
                (* split: no representative's touched set validates this
                   quirk set, so it seeds a new class with a direct
                   execution *)
                let ex =
                  Run.run_exec ~quirks ~parse_opts ~strict ~fuel ?resolve
                    ~reach ~frontend:fe
                    (Frontend.source ec.ec_frontend)
                in
                ec.ec_executed <- ec.ec_executed + 1;
                classes := !classes @ [ ex ];
                (match bucket with
                | Some l -> l := !l @ [ ex ]
                | None -> ());
                ex.Run.ex_result))

  let run ?(fuel = Run.default_fuel) ?resolve ?reach (ec : cache)
      (tb : testbed) : Run.result =
    let cfg = tb.tb_config in
    run_keyed ?resolve ?reach ec ~pkey:(Registry.parse_key cfg)
      ~quirks:cfg.Registry.cfg_quirks
      ~parse_opts:(Registry.parse_opts_of_config cfg)
      ~strict:(tb.tb_mode = Strict) ~fuel

  (* The conforming reference engine through the same cache: joins the
     standard-front-end, quirk-free parse group and (having no quirks at
     all) shares any class whose representative fired nothing it touched. *)
  let run_reference ?(fuel = Run.default_fuel) ?(strict = false) ?resolve
      ?reach (ec : cache) : Run.result =
    run_keyed ?resolve ?reach ec ~pkey:Registry.reference_parse_key
      ~quirks:Quirk.Set.empty
      ~parse_opts:Jsparse.Parser.default_options ~strict ~fuel
end
