(** Testbed execution (paper §4.2): run a test case on one engine-version
    configuration in one mode. The paper's setup is 102 testbeds — 51
    configurations, each in normal and strict mode. *)

type mode = Normal | Strict

val mode_to_string : mode -> string

type testbed = { tb_config : Registry.config; tb_mode : mode }

val testbed_id : testbed -> string

(** All 102 testbeds. *)
val all_testbeds : testbed list

(** The newest version of each engine (default campaign target set). *)
val latest_testbeds : ?mode:mode -> unit -> testbed list

(** Execute a source program on a testbed. [frontend] reuses a pre-parsed
    front end (see {!Frontend}), skipping this run's own parse. *)
val run :
  ?fuel:int ->
  ?coverage:bool ->
  ?frontend:Jsinterp.Run.frontend ->
  testbed ->
  string ->
  Jsinterp.Run.result

(** The standard-conforming engine with no quirks — the oracle used by the
    reducer and examples. *)
val run_reference : ?fuel:int -> ?strict:bool -> string -> Jsinterp.Run.result

(** Can this configuration's front end express the program at all? Used to
    honour the paper's rule of only testing engines against programs within
    their supported ECMAScript edition (§2.2). *)
val supports : Registry.config -> string -> bool

(** Per-test-case front-end cache. Built once per source, it shares the
    {!supports} verdict per base front-end profile and one parse per
    distinct [(Registry.parse_key, mode)] group across a testbed sweep,
    cutting the front-end cost from 2–3 parses per testbed to one per
    group. A cache is mutable and single-domain: the campaign executor
    builds one inside the worker that owns the case. *)
module Frontend : sig
  type cache

  val cache : string -> cache

  (** Memoised {!Engine.supports}: same verdict, at most one parse per
      base front-end profile (plus one validity probe) per case. *)
  val supports : cache -> Registry.config -> bool

  (** The shared front end for this testbed's parse group, parsing on
      first use. Pass to [run ~frontend]. *)
  val frontend : cache -> testbed -> Jsinterp.Run.frontend
end
