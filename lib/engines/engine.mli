(** Testbed execution (paper §4.2): run a test case on one engine-version
    configuration in one mode. The paper's setup is 102 testbeds — 51
    configurations, each in normal and strict mode. *)

type mode = Normal | Strict

val mode_to_string : mode -> string

type testbed = { tb_config : Registry.config; tb_mode : mode }

val testbed_id : testbed -> string

(** Inverse of {!testbed_id}; [None] for an id naming no registered
    configuration. Used to revive campaign checkpoints. *)
val testbed_of_id : string -> testbed option

(** All 102 testbeds. *)
val all_testbeds : testbed list

(** The newest version of each engine (default campaign target set). *)
val latest_testbeds : ?mode:mode -> unit -> testbed list

(** Execute a source program on a testbed. [frontend] reuses a pre-parsed
    front end (see {!Frontend}), skipping this run's own parse. [resolve]
    selects slot-compiled execution (default [Run.resolve_by_default]);
    [reach] lets the compiler fold statically-unreachable checkpoint
    consultations (default [Run.reach_by_default]); [specialize] selects
    the quirk-specialised fast path — copy-on-write realms, per-cell
    compiled closures, inline caches (default
    [Run.specialize_by_default]); results are bit-for-bit identical
    either way. *)
val run :
  ?fuel:int ->
  ?coverage:bool ->
  ?resolve:bool ->
  ?reach:bool ->
  ?specialize:bool ->
  ?frontend:Jsinterp.Run.frontend ->
  testbed ->
  string ->
  Jsinterp.Run.result

(** The standard-conforming engine with no quirks — the oracle used by the
    reducer and examples. *)
val run_reference :
  ?fuel:int ->
  ?strict:bool ->
  ?resolve:bool ->
  ?reach:bool ->
  ?specialize:bool ->
  string ->
  Jsinterp.Run.result

(** Can this configuration's front end express the program at all? Used to
    honour the paper's rule of only testing engines against programs within
    their supported ECMAScript edition (§2.2). *)
val supports : Registry.config -> string -> bool

(** Per-test-case front-end cache. Built once per source, it shares the
    {!supports} verdict per base front-end profile and one parse per
    distinct [(Registry.parse_key, mode)] group across a testbed sweep,
    cutting the front-end cost from 2–3 parses per testbed to one per
    group. A cache is mutable and single-domain: the campaign executor
    builds one inside the worker that owns the case. *)
module Frontend : sig
  type cache

  val cache : string -> cache

  (** The source string the cache was built for. *)
  val source : cache -> string

  (** Memoised {!Engine.supports}: same verdict, at most one parse per
      base front-end profile (plus one validity probe) per case. *)
  val supports : cache -> Registry.config -> bool

  (** The shared front end for this testbed's parse group, parsing on
      first use. Pass to [run ~frontend]. *)
  val frontend : cache -> testbed -> Jsinterp.Run.frontend

  (** The shared front end of an arbitrary parse group, for profiles not
      backed by a registry config (e.g. the reference engine). Profiles
      mapping to the same [key] must have identical effective options. *)
  val frontend_for :
    cache ->
    key:Registry.parse_key * bool ->
    quirks:Jsinterp.Quirk.Set.t ->
    parse_opts:Jsparse.Parser.options ->
    strict:bool ->
    Jsinterp.Run.frontend
end

(** Per-test-case execution-sharing cache, extending {!Frontend} from
    shared parses to shared executions. [run] interprets once per
    behavioural equivalence class — testbeds keyed by (parse group, mode,
    quirks ∩ touched checkpoints) — and every other member inherits the
    representative's [Run.result], byte-identical to a direct sweep
    (soundness argument in DESIGN.md §8). Classes are found by a bounded
    split-and-rerun fixpoint validated against each representative's own
    touched set. Mutable, single-domain, tied to one source string, like
    {!Frontend.cache}. *)
module Exec : sig
  type cache

  val cache : string -> cache

  (** Wrap an existing front-end cache (shares its parse groups). *)
  val of_frontend : Frontend.cache -> cache

  val frontend_cache : cache -> Frontend.cache

  (** Memoised {!Engine.supports}, via the underlying front-end cache. *)
  val supports : cache -> Registry.config -> bool

  (** [(executed, shared)]: interpreter executions actually performed vs.
      runs answered by class inheritance. *)
  val stats : cache -> int * int

  (** Shared runs answered by the static reach partition's fast path
      (a subset of the shares counted by {!stats}) — with the analysis
      off, always 0. Sharing decisions and execution counts are
      identical either way; only the lookup path differs. *)
  val seeded : cache -> int

  (** Process-wide cumulative {!seeded} across all caches (the analogue
      of [Run.run_count]); campaign statistics read before/after
      deltas. *)
  val seeded_count : unit -> int

  (** Fold a forked campaign worker's {!seeded_count} delta into this
      process's count (see [Run.add_runs]). No-op for [n <= 0]. *)
  val add_seeded : int -> unit

  (** Execute an arbitrary quirk profile on the cached source, sharing
      across its behavioural equivalence class — the generalisation of
      {!run} to profiles not backed by a registry config (the campaign's
      causal-attribution probes, which run a testbed's quirk set with one
      quirk removed). [pkey] must be the parse key of the {e effective}
      front end — callers removing a parser-level quirk must clear the
      corresponding flag — and profiles mapping to the same [pkey] must
      have identical effective options, as in {!Frontend.frontend_for}.
      [qbits] defaults to packing [quirks]; pass a precomputed value on
      hot paths. *)
  val run_keyed :
    ?resolve:bool ->
    ?reach:bool ->
    ?specialize:bool ->
    ?qbits:Jsinterp.Quirk.Bits.t ->
    cache ->
    pkey:Registry.parse_key ->
    quirks:Jsinterp.Quirk.Set.t ->
    parse_opts:Jsparse.Parser.options ->
    strict:bool ->
    fuel:int ->
    Jsinterp.Run.result

  (** Execute [tb] on the cached source, sharing across the testbed's
      equivalence class. Same contract as {!Engine.run} on that source. *)
  val run :
    ?fuel:int ->
    ?resolve:bool ->
    ?reach:bool ->
    ?specialize:bool ->
    cache ->
    testbed ->
    Jsinterp.Run.result

  (** The conforming reference engine through the same cache (same
      contract as {!Engine.run_reference} on the cached source). *)
  val run_reference :
    ?fuel:int ->
    ?strict:bool ->
    ?resolve:bool ->
    ?reach:bool ->
    ?specialize:bool ->
    cache ->
    Jsinterp.Run.result
end
