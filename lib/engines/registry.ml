(* The simulated engine/version registry (paper Table 1: 10 engines, 51
   engine-version configurations).

   A [config] is an engine version: a quirk set (the bugs present in that
   build) plus a front-end profile (the ECMAScript edition the version
   supports). Quirks are assigned version ranges [since, fixed): bugs can be
   introduced by a release (e.g. the wave of ES2015-transition bugs in Rhino
   1.7.12 and JerryScript 2.2.0 the paper highlights in §5.1.1) and fixed by
   a later one (e.g. the SpiderMonkey Uint32Array bug gone by v60). *)

open Jsinterp

type engine =
  | V8
  | ChakraCore
  | JSC
  | SpiderMonkey
  | Rhino
  | Nashorn
  | Hermes
  | JerryScript
  | QuickJS
  | Graaljs

let engine_name = function
  | V8 -> "V8"
  | ChakraCore -> "ChakraCore"
  | JSC -> "JSC"
  | SpiderMonkey -> "SpiderMonkey"
  | Rhino -> "Rhino"
  | Nashorn -> "Nashorn"
  | Hermes -> "Hermes"
  | JerryScript -> "JerryScript"
  | QuickJS -> "QuickJS"
  | Graaljs -> "Graaljs"

let all_engines =
  [ V8; ChakraCore; JSC; SpiderMonkey; Rhino; Nashorn; Hermes; JerryScript; QuickJS; Graaljs ]

type es_edition = ES5 | ES2015 | ES2019 | ES2020

let es_to_string = function
  | ES5 -> "ES5.1"
  | ES2015 -> "ES2015"
  | ES2019 -> "ES2019"
  | ES2020 -> "ES2020"

(* The effective front end of a config is fully determined by its base
   option set (ES5 vs standard — see [parse_opts_of_config]) plus the
   three parser-level quirks that [Run.parse_opts_of] folds in. [parse_key]
   projects exactly those inputs into a flat record of booleans, giving a
   comparable and hashable cache key: two configs with equal keys parse any
   source identically and sink the same parse-stage quirks, so one parse
   can serve both. The parser's [quirk_sink] closure makes the options
   record itself unusable as a key. *)

type parse_key = {
  pk_es5 : bool;               (** base front end is the ES5.1 profile *)
  pk_for_missing_body : bool;  (** [Q_eval_for_missing_body_accepted] *)
  pk_dup_params : bool;        (** [Q_strict_dup_params_accepted] *)
  pk_delete_unqualified : bool;(** [Q_strict_delete_unqualified_accepted] *)
}

(* Injective low-4-bit packing, so cache tables can key on a plain int
   (plus mode/fuel bits) instead of polymorphic-hashing the record — the
   lookup runs per testbed per case on the campaign hot path. *)
let pk_int (pk : parse_key) : int =
  (if pk.pk_es5 then 1 else 0)
  lor (if pk.pk_for_missing_body then 2 else 0)
  lor (if pk.pk_dup_params then 4 else 0)
  lor (if pk.pk_delete_unqualified then 8 else 0)

type config = {
  cfg_engine : engine;
  cfg_version : string;
  cfg_build : string;
  cfg_release : string;
  cfg_es : es_edition;
  cfg_quirks : Quirk.Set.t;
  cfg_qbits : Quirk.Bits.t;
      (** [cfg_quirks] packed into machine words, precomputed once — the
          execution-sharing cache consumes it per testbed per case *)
  cfg_pkey : parse_key;
      (** the config's [parse_key], precomputed once, same consumer *)
  cfg_index : int;  (** position in the engine's version history, oldest = 0 *)
}

let id (c : config) = Printf.sprintf "%s-%s" (engine_name c.cfg_engine) c.cfg_version

(* (version, build, release, edition) — oldest first *)
let version_rows (e : engine) : (string * string * string * es_edition) list =
  match e with
  | V8 ->
      [
        ("8.5-0e44fef", "0e44fef", "Apr 2019", ES2019);
        ("8.5-e39c701", "e39c701", "Aug 2019", ES2019);
        ("8.5-d891c59", "d891c59", "Jun 2020", ES2019);
      ]
  | ChakraCore ->
      [
        ("1.11.8", "dbfb5bd", "Apr 2019", ES2019);
        ("1.11.12", "e1f5b03", "Aug 2019", ES2019);
        ("1.11.13", "8fcb0f1", "Aug 2019", ES2019);
        ("1.11.16", "eaaf7ac", "Nov 2019", ES2019);
        ("1.11.19", "5ed2985", "May 2020", ES2019);
      ]
  | JSC ->
      [
        ("244445", "b3fa4c5", "Apr 2019", ES2019);
        ("246135", "d940b47", "Jun 2019", ES2019);
        ("251631", "b96bf75", "Oct 2019", ES2019);
        ("261782", "dbae081", "May 2020", ES2019);
      ]
  | SpiderMonkey ->
      [
        ("1.7.0", "js-1.7.0", "2007", ES5);
        ("38.3.0", "mozjs38.3.0", "2015", ES5);
        ("52.9", "mozjs52.9.1pre", "2018", ES2015);
        ("60.1.1", "mozjs60.1.1pre", "2018", ES2015);
        ("gecko-201255a", "201255a", "2019", ES2019);
        ("gecko-2c619e2", "2c619e2", "2020", ES2019);
        ("78.0", "C69.0a1", "2020", ES2019);
      ]
  | Rhino ->
      [
        ("1.7R3", "d1a8338", "Apr 2011", ES5);
        ("1.7R4", "82ffb8f", "Jun 2012", ES5);
        ("1.7R5", "584e7ec", "Jan 2015", ES5);
        ("1.7.9", "3ee580e", "Mar 2018", ES2015);
        ("1.7.10", "1692f5f", "May 2019", ES2015);
        ("1.7.11", "f0e1c63", "May 2019", ES2015);
        ("1.7.12", "d4021ee", "Jan 2020", ES2015);
      ]
  | Nashorn ->
      [
        ("1.7.6", "JDK7u65", "May 2014", ES5);
        ("1.8.0_201", "JDK8u201", "Jan 2019", ES5);
        ("11.0.3", "JDK11.0.3", "Mar 2019", ES2015);
        ("12.0.1", "JDK12.0.1", "Apr 2019", ES2015);
        ("13.0.1", "JDK13.0.1", "Sep 2019", ES2015);
      ]
  | Hermes ->
      [
        ("0.1.1", "3ed8340", "Jul 2019", ES2015);
        ("0.3.0", "3826084", "Sep 2019", ES2015);
        ("0.4.0", "044cf4b", "Dec 2019", ES2015);
        ("0.6.0", "b6530ae", "May 2020", ES2015);
      ]
  | JerryScript ->
      [
        ("1.0", "e944cda", "2016", ES5);
        ("2.0", "40f7b1c", "Apr 2019", ES2015);
        ("2.0-b6fc4e1", "b6fc4e1", "May 2019", ES2015);
        ("2.0-351acdf", "351acdf", "Jun 2019", ES2015);
        ("2.1.0", "9ab4872", "Sep 2019", ES2015);
        ("2.1.0-84a56ef", "84a56ef", "Oct 2019", ES2015);
        ("2.2.0", "7df87b7", "Oct 2019", ES2015);
        ("2.2.0-996bf76", "996bf76", "Nov 2019", ES2015);
        ("2.3.0", "bd1c4df", "May 2020", ES2015);
      ]
  | QuickJS ->
      [
        ("2019-07-09", "9ccefbf", "Jul 2019", ES2019);
        ("2019-09-01", "3608b16", "Sep 2019", ES2019);
        ("2019-09-18", "6e76fd9", "Sep 2019", ES2019);
        ("2019-10-27", "eb34626", "Oct 2019", ES2019);
        ("2020-01-05", "91459fb", "Jan 2020", ES2019);
        ("2020-04-12", "1722758", "Apr 2020", ES2019);
      ]
  | Graaljs -> [ ("20.1.0", "299f61f", "May 2020", ES2020) ]

(* Bug assignments: (quirk, version introduced, version fixed). *)
type assignment = { aq : Quirk.t; since : int; fixed : int option }

let a ?(since = 0) ?fixed aq = { aq; since; fixed }

let assignments (e : engine) : assignment list =
  Quirk.(
    match e with
    | V8 ->
        [
          a Q_defineproperty_array_length_no_typeerror;
          a Q_opt_int_add_overflow_wraps;
          a ~since:1 Q_json_stringify_nan_literal;
          a ~since:2 Q_keys_includes_nonenumerable;
        ]
    | ChakraCore ->
        [
          a Q_eval_for_missing_body_accepted;
          a Q_codegen_shift_count_unmasked;
          a ~since:1 Q_dataview_no_bounds_check;
          a ~since:2 Q_eval_expr_returns_undefined;
          a ~since:3 Q_replace_fn_missing_offset;
          a ~since:3 Q_startswith_position_ignored;
          a ~since:3 Q_json_stringify_nan_literal;
        ]
    | JSC ->
        [
          a ~fixed:3 Q_typedarray_set_string_typeerror;
          a ~since:1 Q_codegen_mod_sign_wrong;
          a ~since:1 Q_splice_negative_delcount_deletes;
          a ~since:1 Q_padstart_overlong_truncates;
          a ~since:1 Q_json_parse_trailing_comma;
          a ~since:1 Q_regex_dot_matches_newline;
          a ~since:1 Q_array_fill_skips_last;
          a ~since:1 Q_strict_delete_unqualified_accepted;
          a ~since:2 Q_toprecision_zero_accepted;
          a ~since:3 Q_keys_includes_nonenumerable;
        ]
    | SpiderMonkey ->
        [
          a ~fixed:1 Q_lastindexof_nan_zero;
          a ~since:1 ~fixed:2 Q_getownpropertynames_sorted;
          a ~since:2 ~fixed:3 Q_uint32array_fractional_length_typeerror;
        ]
    | Rhino ->
        [
          a ~since:4 Q_substr_undefined_length_empty;
          a ~since:4 Q_tofixed_no_rangeerror;
          a ~since:5 Q_seal_string_object_crash;
          a ~since:5 Q_string_big_null_no_typeerror;
          a ~since:5 Q_regexp_lastindex_nonwritable_silent;
          a ~since:5 Q_named_funcexpr_binding_mutable;
          a ~since:5 Q_replace_dollar_group_literal;
          a ~since:5 Q_replace_undefined_search_noop;
          a ~since:5 Q_charat_negative_wraps;
          a ~since:5 Q_trim_missing_vt;
          a ~since:5 Q_repeat_negative_empty;
          a ~since:5 Q_string_indexof_fromindex_ignored;
          a ~since:6 Q_slice_negative_start_zero;
          a ~since:6 Q_array_sort_numeric_default;
          a ~since:6 Q_join_prints_null_undefined;
          a ~since:6 Q_reduce_empty_returns_undefined;
          a ~since:6 Q_tostring_radix_no_rangeerror;
          a ~since:6 Q_parseint_no_hex_prefix;
          a ~since:6 Q_freeze_array_elements_writable;
          a ~since:6 Q_hasownproperty_walks_proto;
          a ~since:6 Q_delete_nonconfigurable_succeeds;
          a ~since:6 Q_json_stringify_undefined_string;
          a ~since:6 Q_regex_ignorecase_broken;
          a ~since:6 Q_codegen_string_relational_numeric;
          a ~since:6 Q_strict_undeclared_assign_silent;
          a ~since:6 Q_strict_dup_params_accepted;
        ]
    | Nashorn ->
        [
          a ~since:3 Q_parsefloat_trailing_nan;
          a ~since:3 Q_number_isinteger_coerces;
          a ~since:3 Q_assign_skips_numeric_keys;
          a ~since:3 Q_codegen_null_eq_undefined_false;
          a ~since:3 Q_codegen_plus_bool_concat;
          a ~since:3 Q_unshift_returns_undefined;
          a ~since:3 Q_eval_string_result_quoted;
          a ~since:4 Q_defineproperty_defaults_writable;
          a ~since:4 Q_strict_this_is_global;
          a ~since:4 Q_toprecision_zero_accepted;
          a ~since:4 Q_array_sort_numeric_default;
        ]
    | Hermes ->
        [
          a ~fixed:1 Q_array_reverse_fill_quadratic;
          a Q_named_funcexpr_binding_mutable;
          a Q_replace_empty_pattern_skips;
          a ~since:1 Q_flat_ignores_depth;
          a ~since:1 Q_uint8clamped_wraps;
          a ~since:1 Q_codegen_neg_zero_positive;
          a ~since:2 Q_regex_class_negation_broken;
          a ~since:3 Q_opt_loop_strconcat_drops;
          a ~since:3 Q_eval_expr_returns_undefined;
        ]
    | JerryScript ->
        [
          a Q_trim_missing_vt;
          a ~since:1 Q_regex_ignorecase_broken;
          a ~since:1 Q_strict_undeclared_assign_silent;
          a ~since:4 Q_typedarray_oob_write_crash;
          a ~since:4 Q_join_prints_null_undefined;
          a ~since:4 Q_tostring_radix_no_rangeerror;
          a ~since:6 Q_split_regexp_anchor_bug;
          a ~since:6 Q_regexp_lastindex_nonwritable_silent;
          a ~since:6 Q_array_indexof_nan_found;
          a ~since:6 Q_array_includes_strict_nan;
          a ~since:6 Q_typedarray_fill_no_coerce;
          a ~since:6 Q_codegen_ushr_signed;
          a ~since:6 Q_repeat_negative_empty;
        ]
    | QuickJS ->
        [
          a Q_codegen_mod_sign_wrong;
          a Q_parseint_no_hex_prefix;
          a ~since:1 Q_replace_dollar_group_literal;
          a ~since:1 Q_eval_string_result_quoted;
          a ~since:2 Q_slice_negative_start_zero;
          a ~since:3 Q_json_parse_trailing_comma;
          a ~since:3 Q_dataview_no_bounds_check;
          a ~since:4 Q_bool_prop_appends_to_array;
          a ~since:5 Q_normalize_empty_crash;
        ]
    | Graaljs ->
        [
          a Q_defineproperty_array_length_no_typeerror;
          a Q_typedarray_set_string_typeerror;
        ])

let configs_of (e : engine) : config list =
  let rows = version_rows e in
  let asg = assignments e in
  List.mapi
    (fun idx (version, build, release, es) ->
      let quirks =
        List.fold_left
          (fun acc { aq; since; fixed } ->
            let live =
              idx >= since
              && match fixed with Some f -> idx < f | None -> true
            in
            if live then Quirk.Set.add aq acc else acc)
          Quirk.Set.empty asg
      in
      let mem q = Quirk.Set.mem q quirks in
      {
        cfg_engine = e;
        cfg_version = version;
        cfg_build = build;
        cfg_release = release;
        cfg_es = es;
        cfg_quirks = quirks;
        cfg_qbits = Quirk.Bits.of_set quirks;
        cfg_pkey =
          {
            pk_es5 = (es = ES5);
            pk_for_missing_body = mem Quirk.Q_eval_for_missing_body_accepted;
            pk_dup_params = mem Quirk.Q_strict_dup_params_accepted;
            pk_delete_unqualified =
              mem Quirk.Q_strict_delete_unqualified_accepted;
          };
        cfg_index = idx;
      })
    rows

let all_configs : config list = List.concat_map configs_of all_engines

let latest (e : engine) : config =
  let cs = configs_of e in
  List.nth cs (List.length cs - 1)

let find_config ~engine ~version : config option =
  List.find_opt
    (fun c -> c.cfg_engine = engine && c.cfg_version = version)
    all_configs

(* Inverse of [id], for reviving configs named in serialised state
   (campaign checkpoints store testbeds by id). *)
let config_of_id (s : string) : config option =
  List.find_opt (fun c -> id c = s) all_configs

(* Ground truth: the distinct (engine, quirk) pairs that exist anywhere in
   the registry — i.e. the total population of unique bugs a perfect fuzzer
   could find. *)
let all_bugs : (engine * Quirk.t) list =
  List.concat_map (fun e -> List.map (fun x -> (e, x.aq)) (assignments e)) all_engines

(* Earliest version of [e] exhibiting quirk [q] (Table 3's attribution
   rule). *)
let earliest_version (e : engine) (q : Quirk.t) : string option =
  List.find_map
    (fun c -> if Quirk.Set.mem q c.cfg_quirks then Some c.cfg_version else None)
    (configs_of e)

let parse_opts_of_config (c : config) : Jsparse.Parser.options =
  match c.cfg_es with
  | ES5 -> Jsparse.Parser.es5_options
  | ES2015 | ES2019 | ES2020 -> Jsparse.Parser.default_options

(* The conforming reference front end: standard profile, no parser quirks.
   Reference runs routed through the execution-sharing cache use this key,
   so they join the parse/execution groups of any standard-front-end,
   parser-quirk-free engine. *)
let reference_parse_key : parse_key =
  {
    pk_es5 = false;
    pk_for_missing_body = false;
    pk_dup_params = false;
    pk_delete_unqualified = false;
  }

let parse_key (c : config) : parse_key = c.cfg_pkey
