(** The simulated engine/version registry (paper Table 1: 10 engines, 51
    engine-version configurations).

    A {!config} is one engine version: the set of quirks (bugs) present in
    that build plus a front-end profile (the ECMAScript edition the version
    supports). Quirks carry version ranges — introduced by one release and
    possibly fixed by a later one — which drives Table 3's earliest-version
    attribution. *)

type engine =
  | V8
  | ChakraCore
  | JSC
  | SpiderMonkey
  | Rhino
  | Nashorn
  | Hermes
  | JerryScript
  | QuickJS
  | Graaljs

val engine_name : engine -> string
val all_engines : engine list

type es_edition = ES5 | ES2015 | ES2019 | ES2020

val es_to_string : es_edition -> string

(** A comparable, hashable projection of a config's {e effective} front
    end: the base option profile (ES5 vs standard) plus the three
    parser-level quirks {!Jsinterp.Run.parse_opts_of} folds in. Two
    configs with equal keys parse any source identically and sink the
    same parse-stage quirks, so the campaign's front-end cache shares one
    parse between them. *)
type parse_key = {
  pk_es5 : bool;
  pk_for_missing_body : bool;
  pk_dup_params : bool;
  pk_delete_unqualified : bool;
}

(** Injective packing of a parse key into the low 4 bits of an int —
    the front-end and execution-sharing caches key their tables by this
    (plus mode/fuel bits) so lookups hash a plain int instead of
    polymorphic-hashing a record. *)
val pk_int : parse_key -> int

type config = {
  cfg_engine : engine;
  cfg_version : string;
  cfg_build : string;
  cfg_release : string;
  cfg_es : es_edition;
  cfg_quirks : Jsinterp.Quirk.Set.t;  (** bugs present in this build *)
  cfg_qbits : Jsinterp.Quirk.Bits.t;
      (** [cfg_quirks] packed into machine words, precomputed once *)
  cfg_pkey : parse_key;
      (** the config's {!parse_key}, precomputed once — consumed per
          testbed per case by the execution-sharing cache *)
  cfg_index : int;  (** position in the engine's history, oldest = 0 *)
}

val id : config -> string

(** Bug assignment: quirk plus the version-index range it lives in. *)
type assignment = { aq : Jsinterp.Quirk.t; since : int; fixed : int option }

(** The raw bug assignments of one engine (ground truth for the tests). *)
val assignments : engine -> assignment list

(** All versions of one engine, oldest first. *)
val configs_of : engine -> config list

(** Every engine-version configuration — 51 rows, as in Table 1. *)
val all_configs : config list

val latest : engine -> config
val find_config : engine:engine -> version:string -> config option

(** Inverse of {!id}: the config a rendered id names, if any. Used to
    revive configs from serialised state (campaign checkpoints). *)
val config_of_id : string -> config option

(** The distinct (engine, bug) pairs seeded anywhere in the registry: the
    population a perfect fuzzer could discover. *)
val all_bugs : (engine * Jsinterp.Quirk.t) list

(** Earliest version of [engine] exhibiting the quirk (Table 3 rule). *)
val earliest_version : engine -> Jsinterp.Quirk.t -> string option

(** Front-end options implementing the version's supported ES edition. *)
val parse_opts_of_config : config -> Jsparse.Parser.options

(** The config's precomputed {!type-parse_key} ([cfg_pkey]). *)
val parse_key : config -> parse_key

(** The conforming reference front end (standard profile, no parser
    quirks) — the key under which reference runs join the sharing cache. *)
val reference_parse_key : parse_key
