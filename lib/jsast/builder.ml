(* Smart constructors assigning fresh node ids.

   All AST producers (the parser, the baseline mutators, the test-data
   generator and the reducer) build nodes through this module so that every
   node in a program carries a distinct id for coverage accounting. Ids only
   need to be unique within one program; a global counter is the simplest
   way to guarantee that and keeps construction allocation-free besides the
   node itself. The counter is atomic because the campaign executor parses
   concurrently from several domains: a plain ref could lose increments and
   hand the same id to two nodes of one program. *)

open Ast

let counter = Atomic.make 0

let fresh () = Atomic.fetch_and_add counter 1 + 1

(* Reset only from tests that assert on concrete ids. *)
let reset_ids () = Atomic.set counter 0

let e (desc : expr_desc) : expr = { eid = fresh (); e = desc }
let s (desc : stmt_desc) : stmt = { sid = fresh (); s = desc }

(* Expressions *)

let lit l = e (Lit l)
let null = lit Lnull
let bool b = lit (Lbool b)
let num f = lit (Lnum f)
let int i = num (Float.of_int i)
let str x = lit (Lstr x)
let regexp pat flags = lit (Lregexp (pat, flags))
let ident x = e (Ident x)
let this () = e This
let undefined () = ident "undefined"
let array elems = e (Array_lit (List.map Option.some elems))
let object_ props = e (Object_lit props)
let unary op x = e (Unary (op, x))
let binary op a b = e (Binary (op, a, b))
let logical op a b = e (Logical (op, a, b))
let assign lhs rhs = e (Assign (None, lhs, rhs))
let assign_op op lhs rhs = e (Assign (Some op, lhs, rhs))
let cond c t f = e (Cond (c, t, f))
let call f args = e (Call (f, args))
let new_ f args = e (New (f, args))
let field obj name = e (Member (obj, Pfield name))
let index obj i = e (Member (obj, Pindex i))
let seq a b = e (Seq (a, b))
let template parts = e (Template parts)

let func ?name ?(arrow = false) params body =
  e
    (if arrow then Arrow { fname = name; params; body; is_arrow = true }
     else Func { fname = name; params; body; is_arrow = false })

(* [meth_call obj name args] builds [obj.name(args)]. *)
let meth_call obj name args = call (field obj name) args

(* Statements *)

let expr_stmt x = s (Expr_stmt x)
let var ?(kind = Var) name init = s (Var_decl (kind, [ (name, Some init) ]))
let var_uninit ?(kind = Var) name = s (Var_decl (kind, [ (name, None) ]))
let func_decl name params body =
  s (Func_decl { fname = Some name; params; body; is_arrow = false })
let return_ x = s (Return (Some x))
let return_void () = s (Return None)
let if_ c t = s (If (c, t, None))
let if_else c t f = s (If (c, t, Some f))
let block stmts = s (Block stmts)
let while_ c body = s (While (c, body))
let throw x = s (Throw x)
let try_catch body param handler = s (Try (body, Some (param, handler), None))
let empty () = s Empty

(* [print x] builds [print(x)] — the output primitive used by every engine
   testbed for differential comparison. *)
let print x = expr_stmt (call (ident "print") [ x ])

let program ?(strict = false) body = { prog_body = body; prog_strict = strict }

(* Deep copy with fresh ids; used when a mutator grafts a subtree from one
   program into another, so the host program keeps id uniqueness. *)
let rec refresh_expr (x : expr) : expr =
  e (refresh_expr_desc x.e)

and refresh_expr_desc = function
  | Lit l -> Lit l
  | Ident x -> Ident x
  | This -> This
  | Array_lit elems -> Array_lit (List.map (Option.map refresh_expr) elems)
  | Object_lit props ->
      Object_lit
        (List.map (fun (pn, v) -> (refresh_propname pn, refresh_expr v)) props)
  | Func f -> Func (refresh_func f)
  | Arrow f -> Arrow (refresh_func f)
  | Unary (op, x) -> Unary (op, refresh_expr x)
  | Binary (op, a, b) -> Binary (op, refresh_expr a, refresh_expr b)
  | Logical (op, a, b) -> Logical (op, refresh_expr a, refresh_expr b)
  | Assign (op, l, r) -> Assign (op, refresh_expr l, refresh_expr r)
  | Update (op, pre, x) -> Update (op, pre, refresh_expr x)
  | Cond (c, t, f) -> Cond (refresh_expr c, refresh_expr t, refresh_expr f)
  | Call (f, args) -> Call (refresh_expr f, List.map refresh_expr args)
  | New (f, args) -> New (refresh_expr f, List.map refresh_expr args)
  | Member (o, Pfield n) -> Member (refresh_expr o, Pfield n)
  | Member (o, Pindex i) -> Member (refresh_expr o, Pindex (refresh_expr i))
  | Seq (a, b) -> Seq (refresh_expr a, refresh_expr b)
  | Template parts ->
      Template
        (List.map
           (function Tstr t -> Tstr t | Tsub x -> Tsub (refresh_expr x))
           parts)

and refresh_propname = function
  | PN_computed x -> PN_computed (refresh_expr x)
  | pn -> pn

and refresh_func f = { f with body = List.map refresh_stmt f.body }

and refresh_stmt (st : stmt) : stmt =
  s (refresh_stmt_desc st.s)

and refresh_stmt_desc = function
  | Expr_stmt x -> Expr_stmt (refresh_expr x)
  | Var_decl (k, ds) ->
      Var_decl (k, List.map (fun (n, i) -> (n, Option.map refresh_expr i)) ds)
  | Func_decl f -> Func_decl (refresh_func f)
  | Return x -> Return (Option.map refresh_expr x)
  | If (c, t, f) ->
      If (refresh_expr c, refresh_stmt t, Option.map refresh_stmt f)
  | Block body -> Block (List.map refresh_stmt body)
  | For (init, c, upd, body) ->
      For
        ( Option.map refresh_for_init init,
          Option.map refresh_expr c,
          Option.map refresh_expr upd,
          refresh_stmt body )
  | For_in (k, x, o, body) -> For_in (k, x, refresh_expr o, refresh_stmt body)
  | For_of (k, x, o, body) -> For_of (k, x, refresh_expr o, refresh_stmt body)
  | While (c, body) -> While (refresh_expr c, refresh_stmt body)
  | Do_while (body, c) -> Do_while (refresh_stmt body, refresh_expr c)
  | Break l -> Break l
  | Continue l -> Continue l
  | Throw x -> Throw (refresh_expr x)
  | Try (b, h, f) ->
      Try
        ( List.map refresh_stmt b,
          Option.map (fun (p, hb) -> (p, List.map refresh_stmt hb)) h,
          Option.map (List.map refresh_stmt) f )
  | Switch (d, cases) ->
      Switch
        ( refresh_expr d,
          List.map
            (fun (c, body) -> (Option.map refresh_expr c, List.map refresh_stmt body))
            cases )
  | Labeled (l, st) -> Labeled (l, refresh_stmt st)
  | Empty -> Empty
  | Debugger -> Debugger

and refresh_for_init = function
  | FI_decl (k, ds) ->
      FI_decl (k, List.map (fun (n, i) -> (n, Option.map refresh_expr i)) ds)
  | FI_expr x -> FI_expr (refresh_expr x)

let refresh_program (p : program) : program =
  { p with prog_body = List.map refresh_stmt p.prog_body }
