(* Generic traversals and static queries over programs.

   These are the analyses shared by the test-data generator (call-site
   extraction, def-use association of Algorithm 1, line 8), the coverage
   instrumentation (enumerating coverable locations) and the reducer. *)

open Ast

(* Apply [fe] to every expression and [fs] to every statement, top-down,
   including inside function-expression bodies. *)
let rec iter_expr ?(fs = ignore) ~fe (x : expr) =
  let iter_expr = iter_expr ~fs in
  fe x;
  match x.e with
  | Lit _ | Ident _ | This -> ()
  | Array_lit elems -> List.iter (Option.iter (iter_expr ~fe)) elems
  | Object_lit props ->
      List.iter
        (fun (pn, v) ->
          (match pn with PN_computed e -> iter_expr ~fe e | _ -> ());
          iter_expr ~fe v)
        props
  | Func f | Arrow f -> List.iter (iter_stmt ~fe ~fs) f.body
  | Unary (_, a) | Update (_, _, a) -> iter_expr ~fe a
  | Binary (_, a, b) | Logical (_, a, b) | Assign (_, a, b) | Seq (a, b) ->
      iter_expr ~fe a;
      iter_expr ~fe b
  | Cond (a, b, c) ->
      iter_expr ~fe a;
      iter_expr ~fe b;
      iter_expr ~fe c
  | Call (f, args) | New (f, args) ->
      iter_expr ~fe f;
      List.iter (iter_expr ~fe) args
  | Member (o, Pfield _) -> iter_expr ~fe o
  | Member (o, Pindex i) ->
      iter_expr ~fe o;
      iter_expr ~fe i
  | Template parts ->
      List.iter (function Tstr _ -> () | Tsub e -> iter_expr ~fe e) parts

and iter_stmt ~fe ~fs (st : stmt) =
  fs st;
  let expr = iter_expr ~fs ~fe in
  let stmt = iter_stmt ~fe ~fs in
  match st.s with
  | Expr_stmt x -> expr x
  | Var_decl (_, decls) -> List.iter (fun (_, i) -> Option.iter expr i) decls
  | Func_decl f -> List.iter stmt f.body
  | Return x -> Option.iter expr x
  | If (c, t, f) ->
      expr c;
      stmt t;
      Option.iter stmt f
  | Block body -> List.iter stmt body
  | For (init, c, upd, body) ->
      (match init with
      | Some (FI_decl (_, decls)) ->
          List.iter (fun (_, i) -> Option.iter expr i) decls
      | Some (FI_expr x) -> expr x
      | None -> ());
      Option.iter expr c;
      Option.iter expr upd;
      stmt body
  | For_in (_, _, o, body) | For_of (_, _, o, body) ->
      expr o;
      stmt body
  | While (c, body) ->
      expr c;
      stmt body
  | Do_while (body, c) ->
      stmt body;
      expr c
  | Break _ | Continue _ | Empty | Debugger -> ()
  | Throw x -> expr x
  | Try (b, h, f) ->
      List.iter stmt b;
      Option.iter (fun (_, hb) -> List.iter stmt hb) h;
      Option.iter (List.iter stmt) f
  | Switch (d, cases) ->
      expr d;
      List.iter
        (fun (c, body) ->
          Option.iter expr c;
          List.iter stmt body)
        cases
  | Labeled (_, st) -> stmt st

let iter_program ?(fe = ignore) ?(fs = ignore) (p : program) =
  List.iter (iter_stmt ~fe ~fs) p.prog_body

(* The [var]/function-declaration hoisting traversal of one function (or
   program) body: visits every statement var-scoped to it, stopping at
   nested function boundaries. This single definition backs both the
   interpreter's environment set-up ([Jsinterp.Interp]) and the scope
   resolver ([Analysis.Scope]) — the binding structure the static analyses
   reason about is by construction the one the engine executes.
   [on_var] receives each hoisted [var] name; [on_func] receives each
   function declaration as [(sid, func)]. *)
let rec hoist_stmt ~on_var ~on_func (st : stmt) =
  let hoist = hoist_stmt ~on_var ~on_func in
  match st.s with
  | Var_decl (Var, decls) -> List.iter (fun (n, _) -> on_var n) decls
  | Var_decl ((Let | Const), _) -> ()
  | Func_decl f -> on_func (st.sid, f)
  | If (_, t, f) ->
      hoist t;
      Option.iter hoist f
  | Block body -> List.iter hoist body
  | For (init, _, _, body) ->
      (match init with
      | Some (FI_decl (Var, decls)) -> List.iter (fun (n, _) -> on_var n) decls
      | _ -> ());
      hoist body
  | For_in (k, n, _, body) | For_of (k, n, _, body) ->
      if k = Some Var then on_var n;
      hoist body
  | While (_, body) | Do_while (body, _) | Labeled (_, body) -> hoist body
  | Try (b, h, f) ->
      List.iter hoist b;
      Option.iter (fun (_, hb) -> List.iter hoist hb) h;
      Option.iter (List.iter hoist) f
  | Switch (_, cases) -> List.iter (fun (_, body) -> List.iter hoist body) cases
  | Expr_stmt _ | Return _ | Break _ | Continue _ | Throw _ | Empty | Debugger
    ->
      ()

(* Counting helpers used by the coverage metrics (denominators). *)

let count_statements p =
  let n = ref 0 in
  iter_program ~fs:(fun _ -> incr n) p;
  !n

let count_functions p =
  let n = ref 0 in
  iter_program
    ~fe:(fun x -> match x.e with Func _ | Arrow _ -> incr n | _ -> ())
    ~fs:(fun st -> match st.s with Func_decl _ -> incr n | _ -> ())
    p;
  !n

(* A "branch" is one arm of a conditional construct; an [If] contributes two
   (then/else, whether or not the else is written), a [Cond] two, a [Logical]
   two (short-circuit taken / not taken), each loop two (enter / skip), each
   switch case one. This matches how Istanbul counts branches. *)
let count_branch_arms p =
  let n = ref 0 in
  iter_program
    ~fe:(fun x ->
      match x.e with Cond _ | Logical _ -> n := !n + 2 | _ -> ())
    ~fs:(fun st ->
      match st.s with
      | If _ -> n := !n + 2
      | While _ | Do_while _ | For _ | For_in _ | For_of _ -> n := !n + 2
      | Switch (_, cases) -> n := !n + List.length cases
      | _ -> ())
    p;
  !n

let count_nodes p =
  let n = ref 0 in
  iter_program ~fe:(fun _ -> incr n) ~fs:(fun _ -> incr n) p;
  !n

(* A call site interesting to the test-data generator: the callee "API name"
   in the ECMA-262 database key style. [x.substr(a)] yields ["substr"] with
   [receiver = Some "x"], [new Uint32Array(n)] yields ["Uint32Array"],
   [parseInt(s)] yields ["parseInt"]. *)
type call_site = {
  cs_callee : string;          (** last path component, e.g. ["substr"] *)
  cs_path : string list;       (** full dotted path, e.g. [\["Object"; "defineProperty"\]] *)
  cs_receiver : string option; (** receiver identifier for method calls *)
  cs_args : expr list;
  cs_is_new : bool;
  cs_expr_id : int;
}

let rec callee_path (x : expr) : string list option =
  match x.e with
  | Ident n -> Some [ n ]
  | Member (o, Pfield n) ->
      Option.map (fun p -> p @ [ n ]) (callee_path o)
  | _ -> None

let call_sites (p : program) : call_site list =
  let acc = ref [] in
  iter_program
    ~fe:(fun x ->
      match x.e with
      | Call (f, args) | New (f, args) -> (
          let is_new = match x.e with New _ -> true | _ -> false in
          match callee_path f with
          | Some path when path <> [] ->
              let receiver =
                match (f.e, path) with
                | Member ({ e = Ident r; _ }, _), _ -> Some r
                | _ -> None
              in
              acc :=
                {
                  cs_callee = List.nth path (List.length path - 1);
                  cs_path = path;
                  cs_receiver = receiver;
                  cs_args = args;
                  cs_is_new = is_new;
                  cs_expr_id = x.eid;
                }
                :: !acc
          | _ -> ())
      | _ -> ())
    p;
  List.rev !acc

(* Names of all declared variables and functions; used for def-use
   association when mutating argument values. *)
let declared_names (p : program) : string list =
  let acc = ref [] in
  iter_program
    ~fs:(fun st ->
      match st.s with
      | Var_decl (_, decls) ->
          List.iter (fun (n, _) -> acc := n :: !acc) decls
      | Func_decl { fname = Some n; _ } -> acc := n :: !acc
      | For (Some (FI_decl (_, decls)), _, _, _) ->
          List.iter (fun (n, _) -> acc := n :: !acc) decls
      | For_in (Some _, n, _, _) | For_of (Some _, n, _, _) ->
          acc := n :: !acc
      | _ -> ())
    p;
  List.rev !acc

(* Global names every engine realm provides; not "free" when referenced.
   Free-variable discovery itself lives in [Analysis.Scope], which resolves
   the scope tree precisely (hoisting, block scoping, TDZ). *)
let builtin_globals : string list =
  [
    "print"; "undefined"; "NaN"; "Infinity"; "globalThis"; "this"; "arguments";
    "Math"; "JSON"; "Object"; "Function"; "String"; "Number"; "Boolean";
    "Array"; "RegExp"; "Date"; "Error"; "TypeError"; "RangeError";
    "SyntaxError"; "ReferenceError"; "EvalError"; "parseInt"; "parseFloat";
    "isNaN"; "isFinite"; "eval"; "Uint8Array"; "Uint8ClampedArray";
    "Int8Array"; "Uint16Array"; "Int16Array"; "Uint32Array"; "Int32Array";
    "Float32Array"; "Float64Array"; "DataView";
  ]
