(** Generic traversals and static queries over programs: the analyses
    shared by the test-data generator (call-site extraction, the def-use
    association of the paper's Algorithm 1 line 8), the coverage
    instrumentation (enumerating coverable locations) and the reducer. *)

(** Apply [fe] to every expression, top-down, including inside
    function-expression bodies; [fs] fires on statements nested in those
    bodies. *)
val iter_expr : ?fs:(Ast.stmt -> unit) -> fe:(Ast.expr -> unit) -> Ast.expr -> unit

val iter_stmt :
  fe:(Ast.expr -> unit) -> fs:(Ast.stmt -> unit) -> Ast.stmt -> unit

val iter_program :
  ?fe:(Ast.expr -> unit) -> ?fs:(Ast.stmt -> unit) -> Ast.program -> unit

(** The [var]/function-declaration hoisting traversal of one function (or
    program) body: calls [on_var] on each hoisted [var] name and [on_func]
    on each function declaration (as [(sid, func)]), stopping at nested
    function boundaries. Shared by the interpreter's environment set-up
    and [Analysis.Scope], so binding structure cannot drift between the
    engine and the static analyses. *)
val hoist_stmt :
  on_var:(string -> unit) ->
  on_func:(int * Ast.func -> unit) ->
  Ast.stmt ->
  unit

(** {2 Static counts (coverage denominators)} *)

val count_statements : Ast.program -> int
val count_functions : Ast.program -> int

(** One arm per conditional construct: if/loops contribute two, each switch
    case one — matching how Istanbul counts branches. *)
val count_branch_arms : Ast.program -> int

val count_nodes : Ast.program -> int

(** {2 Call sites} *)

(** A call site interesting to the test-data generator: [x.substr(a)]
    yields callee ["substr"] with [cs_receiver = Some "x"];
    [new Uint32Array(n)] yields ["Uint32Array"]. *)
type call_site = {
  cs_callee : string;           (** last path component *)
  cs_path : string list;        (** full dotted path *)
  cs_receiver : string option;  (** receiver identifier for method calls *)
  cs_args : Ast.expr list;
  cs_is_new : bool;
  cs_expr_id : int;
}

(** The dotted-name path of a callee expression, if it is one. *)
val callee_path : Ast.expr -> string list option

val call_sites : Ast.program -> call_site list

(** {2 Name analyses} *)

(** Names declared anywhere ([var]/[let]/[const], function names, loop
    binders). *)
val declared_names : Ast.program -> string list

(** Global names every engine realm provides. Free-variable discovery is
    scope-aware and lives in [Analysis.Scope]. *)
val builtin_globals : string list
