(* Realm construction: wires together all builtin modules into a fresh
   global object. Each test-case execution creates its own realm so that
   testbeds are perfectly isolated, like the paper's per-engine Docker
   containers. *)

open Value
open Builtins_util

let install (ctx : ctx) : unit =
  let g = ctx.global in

  (* --- bootstrap prototypes --- *)
  let object_proto = make_obj ~oclass:"Object" ~proto:Null () in
  let function_proto = make_obj ~oclass:"Function" ~proto:(Obj object_proto) () in
  function_proto.call <- Some (Native ("", 0, fun _ _ _ -> Undefined));
  let mk_proto name =
    let o = make_obj ~oclass:name ~proto:(Obj object_proto) () in
    ctx.protos <- (name, o) :: ctx.protos;
    o
  in
  ctx.protos <- [ ("Object", object_proto); ("Function", function_proto) ];
  let string_proto = mk_proto "String" in
  let number_proto = mk_proto "Number" in
  let boolean_proto = mk_proto "Boolean" in
  let array_proto = mk_proto "Array" in
  let regexp_proto = mk_proto "RegExp" in
  let error_proto = mk_proto "Error" in
  let typed_proto = mk_proto "TypedArray" in
  let dv_proto = mk_proto "DataView" in
  let date_proto = mk_proto "Date" in
  g.proto <- Obj object_proto;

  (* --- constructors --- *)
  let register_ctor name arity impl proto =
    let c = make_native ctx name arity impl in
    def_value c "prototype" ~writable:false ~configurable:false (Obj proto);
    set_own proto "constructor" (mkprop ~enumerable:false (Obj c));
    def_value g name (Obj c);
    c
  in

  let object_ctor =
    register_ctor "Object" 1
      (fun ctx _ args ->
        match arg 0 args with
        | Undefined | Null ->
            Obj (make_obj ~oclass:"Object" ~proto:(proto_of ctx "Object") ())
        | v -> Obj (Ops.to_object ctx v))
      object_proto
  in

  let _function_ctor =
    register_ctor "Function" 1
      (fun ctx _ _ ->
        Ops.type_error ctx "Function constructor is not supported in this engine model")
      function_proto
  in

  let _array_ctor =
    register_ctor "Array" 1
      (fun ctx _ args ->
        match args with
        | [ Num f ] ->
            if Float.is_integer f && f >= 0.0 && f <= 100_000_000.0 then begin
              burn ctx (Float.to_int f / 8);
              let o = Ops.make_array ctx [] in
              (match o.arr with
              | Some a ->
                  a.elems <- Array.make (min 1_000_000 (Float.to_int f)) Undefined;
                  a.alen <- Float.to_int f
              | None -> ());
              Obj o
            end
            else if Float.is_integer f && f >= 0.0 then
              Ops.range_error ctx "invalid array length"
            else Ops.range_error ctx "invalid array length"
        | args -> Obj (Ops.make_array ctx args))
      array_proto
  in
  (match Ops.get_obj ctx g "Array" with
  | Obj ac ->
      def_method ctx ac "isArray" 1 (fun _ _ args -> bool_ (Ops.is_array (arg 0 args)));
      def_method ctx ac "of" 1 (fun ctx _ args -> Obj (Ops.make_array ctx args));
      def_method ctx ac "from" 1 (fun ctx _ args ->
          match arg 0 args with
          | Obj ({ arr = Some a; _ }) ->
              Obj (Ops.make_array ctx (Array.to_list (Array.sub a.elems 0 a.alen)))
          | Str s ->
              Obj (Ops.make_array ctx
                     (List.init (String.length s) (fun i -> Str (String.make 1 s.[i]))))
          | _ -> Obj (Ops.make_array ctx []))
  | _ -> ());

  let string_ctor =
    register_ctor "String" 1
      (fun ctx this args ->
        let s =
          match args with [] -> "" | v :: _ -> Ops.to_string ctx v
        in
        (* called as a constructor we return a wrapper; the [construct]
           driver passes a fresh object as [this] *)
        match this with
        | Obj o when o.oclass = "Object" && o.props = [] && o.prim = None ->
            Obj
              (let w = Ops.to_object ctx (Str s) in
               w)
        | _ -> Str s)
      string_proto
  in
  def_method ctx string_ctor "fromCharCode" 1 (fun ctx _ args ->
      Str
        (String.concat ""
           (List.map
              (fun v ->
                String.make 1
                  (Char.chr (Float.to_int (Ops.to_uint32 ctx v) land 0xff)))
              args)));

  let number_ctor =
    register_ctor "Number" 1
      (fun ctx this args ->
        let f = match args with [] -> 0.0 | v :: _ -> Ops.to_number ctx v in
        match this with
        | Obj o when o.oclass = "Object" && o.props = [] && o.prim = None ->
            let w = make_obj ~oclass:"Number" ~proto:(proto_of ctx "Number") () in
            w.prim <- Some (Num f);
            Obj w
        | _ -> Num f)
      number_proto
  in

  let _bool_ctor =
    register_ctor "Boolean" 1
      (fun ctx this args ->
        let b = Ops.to_boolean (arg 0 args) in
        match this with
        | Obj o when o.oclass = "Object" && o.props = [] && o.prim = None ->
            let w = make_obj ~oclass:"Boolean" ~proto:(proto_of ctx "Boolean") () in
            w.prim <- Some (Bool b);
            Obj w
        | _ -> Bool b)
      boolean_proto
  in

  let _regexp_ctor =
    register_ctor "RegExp" 2
      (fun ctx _ args ->
        let pat =
          match arg 0 args with
          | Obj { regex = Some rd; _ } -> rd.rx_source
          | Undefined -> ""
          | v -> Ops.to_string ctx v
        in
        let flags =
          match arg 1 args with Undefined -> "" | v -> Ops.to_string ctx v
        in
        match Regex.compile pat flags with
        | prog ->
            let o = make_obj ~oclass:"RegExp" ~proto:(proto_of ctx "RegExp") () in
            o.regex <- Some { rx_source = pat; rx_flags = flags; rx_prog = prog };
            set_own o "lastIndex" (mkprop ~enumerable:false ~configurable:false (Num 0.0));
            set_own o "source" (mkprop ~writable:false ~enumerable:false (Str pat));
            set_own o "flags" (mkprop ~writable:false ~enumerable:false (Str flags));
            set_own o "global" (mkprop ~writable:false ~enumerable:false (Bool prog.Regex.flag_g));
            Obj o
        | exception Regex.Parse_error msg ->
            Ops.syntax_error ctx ("invalid regular expression: " ^ msg))
      regexp_proto
  in

  (* error constructors: Error + the five native subtypes *)
  let make_error_family () =
    let kinds = [ "Error"; "TypeError"; "RangeError"; "SyntaxError"; "ReferenceError"; "EvalError" ] in
    List.iter
      (fun kind ->
        let proto =
          if kind = "Error" then error_proto
          else begin
            let p = make_obj ~oclass:"Error" ~proto:(Obj error_proto) () in
            ctx.protos <- (kind, p) :: ctx.protos;
            p
          end
        in
        def_value proto "name" (Str kind);
        def_value proto "message" (Str "");
        let _ =
          register_ctor kind 1
            (fun ctx _ args ->
              (* resolve the prototype through the calling realm, never
                 through the installing one: builtin closures are shared
                 across realm snapshots (Realm), so capturing [proto]
                 here would leak objects between executions *)
              let o = make_obj ~oclass:"Error" ~proto:(proto_of ctx kind) () in
              (match arg 0 args with
              | Undefined -> ()
              | v -> set_own o "message" (mkprop ~enumerable:false (Str (Ops.to_string ctx v))));
              set_own o "name" (mkprop ~enumerable:false (Str kind));
              Obj o)
            proto
        in
        ())
      kinds
  in
  make_error_family ();
  def_method ctx error_proto "toString" 0 (fun ctx this _ ->
      match this with
      | Obj o ->
          let name = Ops.to_string ctx (Ops.get_obj ctx o "name") in
          let msg = Ops.to_string ctx (Ops.get_obj ctx o "message") in
          Str (if msg = "" then name else name ^ ": " ^ msg)
      | _ -> Str "Error");

  (* typed arrays *)
  List.iter
    (fun ty ->
      let c = Builtins_typed.typed_ctor ctx ty in
      def_value c "prototype" ~writable:false ~configurable:false (Obj typed_proto);
      def_value c "BYTES_PER_ELEMENT" ~writable:false
        (int_
           (match ty with
           | U8 | U8C | I8 -> 1
           | U16 | I16 -> 2
           | U32 | I32 | F32 -> 4
           | F64 -> 8));
      def_value g (typed_kind_name ty) (Obj c))
    [ U8; U8C; I8; U16; I16; U32; I32; F32; F64 ];

  let _dv_ctor =
    register_ctor "DataView" 1
      (fun ctx _ args ->
        let len =
          match arg 0 args with
          | Num f -> Float.to_int f
          | Obj { dataview = Some b; _ } -> Bytes.length b
          | _ -> Float.to_int (Ops.to_integer ctx (arg 0 args))
        in
        if len < 0 || len > 100_000_000 then
          Ops.range_error ctx "invalid DataView length"
        else Obj (Builtins_typed.make_dataview ctx len))
      dv_proto
  in

  (* Date: deterministic stub (differential outputs must be stable) *)
  let fixed_epoch = 1593561600000.0 (* 2020-07-01T00:00:00Z *) in
  let date_ctor =
    register_ctor "Date" 0
      (fun ctx _ args ->
        let t =
          match args with [] -> fixed_epoch | v :: _ -> Ops.to_number ctx v
        in
        let o = make_obj ~oclass:"Date" ~proto:(proto_of ctx "Date") () in
        o.prim <- Some (Num t);
        Obj o)
      date_proto
  in
  def_method ctx date_ctor "now" 0 (fun _ _ _ -> num fixed_epoch);
  def_method ctx date_proto "getTime" 0 (fun ctx this _ ->
      match this with
      | Obj { prim = Some (Num t); _ } -> num t
      | _ -> Ops.type_error ctx "getTime called on a non-Date");
  def_method ctx date_proto "valueOf" 0 (fun ctx this _ ->
      match this with
      | Obj { prim = Some (Num t); _ } -> num t
      | _ -> Ops.type_error ctx "valueOf called on a non-Date");
  def_method ctx date_proto "toString" 0 (fun _ this _ ->
      match this with
      | Obj { prim = Some (Num t); _ } ->
          Str (Printf.sprintf "[Date %s]" (Ops.number_to_string t))
      | _ -> Str "[Date]");

  (* Math and JSON namespace objects *)
  let math = make_obj ~oclass:"Math" ~proto:(Obj object_proto) () in
  def_value g "Math" (Obj math);
  let json = make_obj ~oclass:"JSON" ~proto:(Obj object_proto) () in
  def_value g "JSON" (Obj json);

  (* --- Function.prototype --- *)
  def_method ctx function_proto "call" 1 (fun ctx this args ->
      match args with
      | [] -> ctx.call_hook ctx this Undefined []
      | this' :: rest -> ctx.call_hook ctx this this' rest);
  def_method ctx function_proto "apply" 2 (fun ctx this args ->
      let this' = arg 0 args in
      let rest =
        match arg 1 args with
        | Obj ({ arr = Some a; _ }) -> Array.to_list (Array.sub a.elems 0 a.alen)
        | Undefined | Null -> []
        | _ -> Ops.type_error ctx "second argument to apply must be an array"
      in
      ctx.call_hook ctx this this' rest);
  def_method ctx function_proto "bind" 1 (fun ctx this args ->
      let bound_this = arg 0 args in
      let bound_args = match args with [] -> [] | _ :: rest -> rest in
      let target = this in
      Obj
        (make_native ctx "bound" 0 (fun ctx _ call_args ->
             ctx.call_hook ctx target bound_this (bound_args @ call_args))));
  def_method ctx function_proto "toString" 0 (fun ctx this _ ->
      match this with
      | Obj { call = Some (Native (name, _, _)); _ } ->
          Str (Printf.sprintf "function %s() { [native code] }" name)
      | Obj { call = Some (Js_closure cl); _ } ->
          Str
            (Printf.sprintf "function %s(%s) { [source code] }" cl.cl_name
               (String.concat ", " cl.cl_params))
      | Obj { call = Some (Compiled co); _ } ->
          Str
            (Printf.sprintf "function %s(%s) { [source code] }" co.co_name
               (String.concat ", " co.co_params))
      | _ -> Ops.type_error ctx "Function.prototype.toString requires a function");

  (* --- Boolean.prototype --- *)
  def_method ctx boolean_proto "toString" 0 (fun ctx this _ ->
      match this with
      | Bool b -> Str (if b then "true" else "false")
      | Obj { prim = Some (Bool b); _ } -> Str (if b then "true" else "false")
      | _ -> Ops.type_error ctx "Boolean.prototype.toString requires a boolean");
  def_method ctx boolean_proto "valueOf" 0 (fun ctx this _ ->
      match this with
      | Bool _ -> this
      | Obj { prim = Some (Bool b); _ } -> Bool b
      | _ -> Ops.type_error ctx "Boolean.prototype.valueOf requires a boolean");

  (* --- per-type builtin modules --- *)
  Builtins_string.install ctx string_proto;
  Builtins_array.install ctx array_proto;
  Builtins_object.install ctx object_proto object_ctor;
  Builtins_number.install ctx number_proto number_ctor math;
  Builtins_json.install ctx json;
  Builtins_regexp.install ctx regexp_proto;
  Builtins_typed.install ctx typed_proto;
  Builtins_typed.install_dataview ctx dv_proto;
  (* %TypedArray%.prototype shares the array generics that operate through
     the common element storage *)
  List.iter
    (fun name ->
      match find_own array_proto name with
      | Some p -> set_own typed_proto name (mkprop ~enumerable:false p.v)
      | None -> ())
    [ "fill"; "indexOf"; "includes"; "forEach"; "map"; "slice"; "reverse"; "every"; "some" ];

  (* --- global values and functions --- *)
  def_value g "undefined" ~writable:false ~configurable:false Undefined;
  def_value g "NaN" ~writable:false ~configurable:false (num Float.nan);
  def_value g "Infinity" ~writable:false ~configurable:false (num Float.infinity);
  def_value g "globalThis" (Obj g);

  def_method ctx g "print" 1 (fun ctx _ args ->
      let parts = List.map (Ops.to_string ctx) args in
      Buffer.add_string ctx.out (String.concat " " parts);
      Buffer.add_char ctx.out '\n';
      Undefined);

  def_method ctx g "parseInt" 2 (fun ctx _ args ->
      num
        (Builtins_number.js_parse_int ctx
           (Ops.to_string ctx (arg 0 args))
           (arg 1 args)));
  def_method ctx g "parseFloat" 1 (fun ctx _ args ->
      num (Builtins_number.js_parse_float ctx (Ops.to_string ctx (arg 0 args))));
  def_method ctx g "isNaN" 1 (fun ctx _ args ->
      bool_ (Float.is_nan (Ops.to_number ctx (arg 0 args))));
  def_method ctx g "isFinite" 1 (fun ctx _ args ->
      bool_ (Float.is_finite (Ops.to_number ctx (arg 0 args))));

  def_method ctx g "eval" 1 (fun ctx _ args ->
      match arg 0 args with
      | Str src ->
          (* eval code executes in the global scope and may add or replace
             bindings there, invalidating a slot-compiled program's static
             resolution — bail out before any effect and let [Run] re-run
             the whole program tree-walked *)
          if ctx.slotted then raise Deopt_to_tree;
          let v = ctx.eval_hook ctx ctx.global_scope false src in
          (match v with
          | Undefined -> Undefined
          | _ when fire ctx Quirk.Q_eval_expr_returns_undefined -> Undefined
          | Str s when fire ctx Quirk.Q_eval_string_result_quoted ->
              Str ("\"" ^ s ^ "\"")
          | v -> v)
      | v -> v (* eval of a non-string returns it unchanged *))
