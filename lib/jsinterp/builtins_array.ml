(* Array constructor and Array.prototype. *)

open Value
open Builtins_util

let this_array ctx (this : value) : obj * arr =
  match this with
  | Obj ({ arr = Some a; _ } as o) when a.ty = None -> (o, a)
  | Obj ({ arr = Some a; _ } as o) -> (o, a) (* typed arrays share generics *)
  | _ -> Ops.type_error ctx "Array.prototype method called on a non-array"

let elements (a : arr) : value list =
  Array.to_list (Array.sub a.elems 0 (min a.alen (Array.length a.elems)))

let replace_elements ctx (o : obj) (a : arr) (vs : value list) : unit =
  ignore ctx;
  barrier o;
  a.elems <- Array.of_list vs;
  a.alen <- List.length vs;
  a.min_written <- (if vs = [] then max_int else 0)

let rel_index len i = if i < 0 then max 0 (len + i) else min i len

let install ctx (array_proto : obj) : unit =
  let to_int ctx v = Float.to_int (max (-1e9) (min 1e9 (Ops.to_integer ctx v))) in

  def_method ctx array_proto "push" 1 (fun ctx this args ->
      let o, a = this_array ctx this in
      List.iter (fun v -> Ops.array_store ctx o a a.alen v) args;
      int_ a.alen);

  def_method ctx array_proto "pop" 0 (fun ctx this _ ->
      let o, a = this_array ctx this in
      if a.alen = 0 then Undefined
      else begin
        barrier o;
        let v = a.elems.(a.alen - 1) in
        a.elems.(a.alen - 1) <- Undefined;
        a.alen <- a.alen - 1;
        v
      end);

  def_method ctx array_proto "shift" 0 (fun ctx this _ ->
      let o, a = this_array ctx this in
      match elements a with
      | [] -> Undefined
      | hd :: tl ->
          replace_elements ctx o a tl;
          hd);

  def_method ctx array_proto "unshift" 1 (fun ctx this args ->
      let o, a = this_array ctx this in
      replace_elements ctx o a (args @ elements a);
      if fire ctx Quirk.Q_unshift_returns_undefined then Undefined
      else int_ a.alen);

  def_method ctx array_proto "slice" 2 (fun ctx this args ->
      let _, a = this_array ctx this in
      let n = a.alen in
      let from =
        match arg 0 args with Undefined -> 0 | v -> rel_index n (to_int ctx v)
      in
      let upto =
        match arg 1 args with Undefined -> n | v -> rel_index n (to_int ctx v)
      in
      let vs = elements a in
      let sliced = List.filteri (fun i _ -> i >= from && i < upto) vs in
      Obj (Ops.make_array ctx sliced));

  def_method ctx array_proto "splice" 2 (fun ctx this args ->
      let o, a = this_array ctx this in
      let n = a.alen in
      let start = rel_index n (to_int ctx (arg 0 args)) in
      let delcount =
        match arg 1 args with
        | Undefined -> n - start
        | v ->
            let d = to_int ctx v in
            if d < 0 then
              (* standard clamps to 0; the quirk deletes |d| elements *)
              if fire ctx Quirk.Q_splice_negative_delcount_deletes then -d else 0
            else min d (n - start)
      in
      let delcount = min delcount (n - start) in
      let inserts = match args with _ :: _ :: ins -> ins | _ -> [] in
      let vs = elements a in
      let before = List.filteri (fun i _ -> i < start) vs in
      let deleted = List.filteri (fun i _ -> i >= start && i < start + delcount) vs in
      let after = List.filteri (fun i _ -> i >= start + delcount) vs in
      replace_elements ctx o a (before @ inserts @ after);
      Obj (Ops.make_array ctx deleted));

  def_method ctx array_proto "indexOf" 1 (fun ctx this args ->
      let _, a = this_array ctx this in
      let target = arg 0 args in
      let from = rel_index a.alen (to_int ctx (arg 1 args)) in
      let nan_target =
        (match target with Num f -> Float.is_nan f | _ -> false)
        && fire ctx Quirk.Q_array_indexof_nan_found
      in
      let found = ref (-1) in
      (try
         List.iteri
           (fun i v ->
             if i >= from && !found < 0 then
               if Ops.strict_equals v target
                  || (nan_target && match v with Num f -> Float.is_nan f | _ -> false)
               then begin
                 found := i;
                 raise Exit
               end)
           (elements a)
       with Exit -> ());
      int_ !found);

  def_method ctx array_proto "lastIndexOf" 1 (fun ctx this args ->
      let _, a = this_array ctx this in
      let target = arg 0 args in
      let found = ref (-1) in
      List.iteri
        (fun i v -> if Ops.strict_equals v target then found := i)
        (elements a);
      int_ !found);

  def_method ctx array_proto "includes" 1 (fun ctx this args ->
      let _, a = this_array ctx this in
      let target = arg 0 args in
      let eq =
        if fire ctx Quirk.Q_array_includes_strict_nan then Ops.strict_equals
        else Ops.same_value_zero
      in
      bool_ (List.exists (fun v -> eq v target) (elements a)));

  def_method ctx array_proto "join" 1 (fun ctx this args ->
      let _, a = this_array ctx this in
      let sep =
        match arg 0 args with Undefined -> "," | v -> Ops.to_string ctx v
      in
      let piece v =
        match v with
        | Undefined | Null ->
            if fire ctx Quirk.Q_join_prints_null_undefined then
              Ops.to_string ctx v
            else ""
        | v -> Ops.to_string ctx v
      in
      Str (String.concat sep (List.map piece (elements a))));

  def_method ctx array_proto "toString" 0 (fun ctx this _ ->
      match this with
      | Obj ({ arr = Some _; _ }) ->
          let join = Ops.get ctx this "join" in
          ctx.call_hook ctx join this []
      | _ -> Str "[object Object]");

  def_method ctx array_proto "concat" 1 (fun ctx this args ->
      let _, a = this_array ctx this in
      let flat_one v =
        match v with
        | Obj ({ arr = Some b; _ }) when b.ty = None -> elements b
        | v -> [ v ]
      in
      Obj (Ops.make_array ctx (elements a @ List.concat_map flat_one args)));

  def_method ctx array_proto "reverse" 0 (fun ctx this _ ->
      let o, a = this_array ctx this in
      replace_elements ctx o a (List.rev (elements a));
      this);

  def_method ctx array_proto "sort" 1 (fun ctx this args ->
      let o, a = this_array ctx this in
      burn ctx (a.alen + 1);
      let cmp =
        match arg 0 args with
        | Obj { call = Some _; _ } as fn ->
            fun x y ->
              let r = Ops.to_number ctx (ctx.call_hook ctx fn Undefined [ x; y ]) in
              if Float.is_nan r || r = 0.0 then 0 else if r < 0.0 then -1 else 1
        | _ ->
            if fire ctx Quirk.Q_array_sort_numeric_default then fun x y ->
              compare (Ops.to_number ctx x) (Ops.to_number ctx y)
            else fun x y ->
              String.compare (Ops.to_string ctx x) (Ops.to_string ctx y)
      in
      (* undefined sorts last regardless of comparator *)
      let undef, defined = List.partition (fun v -> v = Undefined) (elements a) in
      let sorted = List.stable_sort cmp defined in
      replace_elements ctx o a (sorted @ undef);
      this);

  let iter_method name impl = def_method ctx array_proto name 1 impl in

  iter_method "forEach" (fun ctx this args ->
      let _, a = this_array ctx this in
      let fn = arg 0 args in
      List.iteri
        (fun i v -> ignore (ctx.call_hook ctx fn (arg 1 args) [ v; int_ i; this ]))
        (elements a);
      Undefined);

  iter_method "map" (fun ctx this args ->
      let _, a = this_array ctx this in
      let fn = arg 0 args in
      Obj
        (Ops.make_array ctx
           (List.mapi
              (fun i v -> ctx.call_hook ctx fn (arg 1 args) [ v; int_ i; this ])
              (elements a))));

  iter_method "filter" (fun ctx this args ->
      let _, a = this_array ctx this in
      let fn = arg 0 args in
      Obj
        (Ops.make_array ctx
           (List.filteri
              (fun i _ ->
                Ops.to_boolean
                  (ctx.call_hook ctx fn (arg 1 args)
                     [ List.nth (elements a) i; int_ i; this ]))
              (elements a))));

  iter_method "every" (fun ctx this args ->
      let _, a = this_array ctx this in
      let fn = arg 0 args in
      let i = ref (-1) in
      bool_
        (List.for_all
           (fun v ->
             incr i;
             Ops.to_boolean (ctx.call_hook ctx fn Undefined [ v; int_ !i; this ]))
           (elements a)));

  iter_method "some" (fun ctx this args ->
      let _, a = this_array ctx this in
      let fn = arg 0 args in
      let i = ref (-1) in
      bool_
        (List.exists
           (fun v ->
             incr i;
             Ops.to_boolean (ctx.call_hook ctx fn Undefined [ v; int_ !i; this ]))
           (elements a)));

  iter_method "find" (fun ctx this args ->
      let _, a = this_array ctx this in
      let fn = arg 0 args in
      let i = ref (-1) in
      match
        List.find_opt
          (fun v ->
            incr i;
            Ops.to_boolean (ctx.call_hook ctx fn Undefined [ v; int_ !i; this ]))
          (elements a)
      with
      | Some v -> v
      | None -> Undefined);

  iter_method "findIndex" (fun ctx this args ->
      let _, a = this_array ctx this in
      let fn = arg 0 args in
      let found = ref (-1) in
      (try
         List.iteri
           (fun i v ->
             if Ops.to_boolean (ctx.call_hook ctx fn Undefined [ v; int_ i; this ])
             then begin
               found := i;
               raise Exit
             end)
           (elements a)
       with Exit -> ());
      int_ !found);

  def_method ctx array_proto "reduce" 2 (fun ctx this args ->
      let _, a = this_array ctx this in
      let fn = arg 0 args in
      let vs = elements a in
      match (vs, nargs args >= 2) with
      | [], false ->
          if fire ctx Quirk.Q_reduce_empty_returns_undefined then Undefined
          else Ops.type_error ctx "reduce of empty array with no initial value"
      | vs, true ->
          let acc = ref (arg 1 args) in
          List.iteri
            (fun i v -> acc := ctx.call_hook ctx fn Undefined [ !acc; v; int_ i; this ])
            vs;
          !acc
      | hd :: tl, false ->
          let acc = ref hd in
          List.iteri
            (fun i v ->
              acc := ctx.call_hook ctx fn Undefined [ !acc; v; int_ (i + 1); this ])
            tl;
          !acc);

  def_method ctx array_proto "fill" 1 (fun ctx this args ->
      let o, a = this_array ctx this in
      let v = arg 0 args in
      (* the fill-no-coerce quirk stores the raw value, bypassing the
         element-type conversion that the store path would apply *)
      let raw_store =
        a.ty <> None && fire ctx Quirk.Q_typedarray_fill_no_coerce
      in
      let n = a.alen in
      let from =
        match arg 1 args with Undefined -> 0 | x -> rel_index n (to_int ctx x)
      in
      let upto =
        match arg 2 args with Undefined -> n | x -> rel_index n (to_int ctx x)
      in
      let upto =
        if upto > from && fire ctx Quirk.Q_array_fill_skips_last then upto - 1
        else upto
      in
      for i = from to upto - 1 do
        if raw_store then begin
          barrier o;
          a.elems.(i) <- v
        end
        else Ops.array_store ctx o a i v
      done;
      this);

  def_method ctx array_proto "at" 1 (fun ctx this args ->
      let _, a = this_array ctx this in
      let i = to_int ctx (arg 0 args) in
      let i = if i < 0 then a.alen + i else i in
      if i >= 0 && i < a.alen then a.elems.(i) else Undefined);

  def_method ctx array_proto "copyWithin" 2 (fun ctx this args ->
      let o, a = this_array ctx this in
      barrier o;
      let n = a.alen in
      let target = rel_index n (to_int ctx (arg 0 args)) in
      let from =
        match arg 1 args with Undefined -> 0 | v -> rel_index n (to_int ctx v)
      in
      let upto =
        match arg 2 args with Undefined -> n | v -> rel_index n (to_int ctx v)
      in
      let count = min (upto - from) (n - target) in
      if count > 0 then begin
        let snapshot = Array.sub a.elems from count in
        Array.blit snapshot 0 a.elems target count
      end;
      this);

  def_method ctx array_proto "keys" 0 (fun ctx this _ ->
      let _, a = this_array ctx this in
      (* a real iterator protocol is out of scope; return the index array,
         which covers the for-of use the corpus makes of keys() *)
      Obj (Ops.make_array ctx (List.init a.alen (fun i -> int_ i))));

  def_method ctx array_proto "flat" 0 (fun ctx this args ->
      let _, a = this_array ctx this in
      let depth =
        match arg 0 args with
        | Undefined -> 1
        | v ->
            if fire ctx Quirk.Q_flat_ignores_depth then max_int
            else to_int ctx v
      in
      let rec flatten d vs =
        List.concat_map
          (fun v ->
            match v with
            | Obj ({ arr = Some b; _ }) when b.ty = None && d > 0 ->
                flatten (d - 1) (elements b)
            | v -> [ v ])
          vs
      in
      Obj (Ops.make_array ctx (flatten depth (elements a))))
