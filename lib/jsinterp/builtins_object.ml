(* Object constructor, statics, and Object.prototype. The V8
   defineProperty-on-array-length bug (Listing 1) lives here. *)

open Value
open Builtins_util

let install ctx (object_proto : obj) (object_ctor : obj) : unit =
  (* --- Object.prototype --- *)
  def_method ctx object_proto "toString" 0 (fun _ this _ ->
      match this with
      | Undefined -> Str "[object Undefined]"
      | Null -> Str "[object Null]"
      | Obj o -> Str (Printf.sprintf "[object %s]"
                        (match o.oclass with
                         | "Array" -> "Array"
                         | "Function" -> "Function"
                         | "Error" -> "Error"
                         | "Arguments" -> "Arguments"
                         | "String" | "Number" | "Boolean" | "RegExp" | "Date" -> o.oclass
                         | _ -> "Object"))
      | v -> Str (Printf.sprintf "[object %s]" (String.capitalize_ascii (type_of v))));

  def_method ctx object_proto "valueOf" 0 (fun ctx this _ ->
      match this with
      | Obj { prim = Some p; _ } -> p
      | Obj _ -> this
      | v -> Obj (Ops.to_object ctx v));

  def_method ctx object_proto "hasOwnProperty" 1 (fun ctx this args ->
      let key = Ops.to_string ctx (arg 0 args) in
      match this with
      | Obj o ->
          if fire ctx Quirk.Q_hasownproperty_walks_proto then
            bool_ (Ops.has_property ctx o key)
          else bool_ (Ops.has_own ctx o key)
      | Str s ->
          bool_
            (key = "length"
            || (match array_index_of_key key with
               | Some i -> i < String.length s
               | None -> false))
      | _ -> bool_ false);

  def_method ctx object_proto "isPrototypeOf" 1 (fun _ this args ->
      match (this, arg 0 args) with
      | Obj p, Obj o ->
          let rec walk = function
            | Obj x -> x == p || walk x.proto
            | _ -> false
          in
          bool_ (walk o.proto)
      | _ -> bool_ false);

  def_method ctx object_proto "propertyIsEnumerable" 1 (fun ctx this args ->
      let key = Ops.to_string ctx (arg 0 args) in
      match this with
      | Obj o -> (
          match find_own o key with
          | Some p -> bool_ p.enumerable
          | None -> bool_ (match o.arr with
              | Some a -> (match array_index_of_key key with
                  | Some i -> i < a.alen
                  | None -> false)
              | None -> false))
      | _ -> bool_ false);

  (* --- Object statics --- *)
  let require_obj ctx v =
    match v with
    | Obj o -> o
    | _ -> Ops.type_error ctx "Object operation called on non-object"
  in

  def_method ctx object_ctor "keys" 1 (fun ctx _ args ->
      let o = require_obj ctx (arg 0 args) in
      let keys =
        if fire ctx Quirk.Q_keys_includes_nonenumerable then
          (match o.arr with
           | Some a -> List.init a.alen string_of_int
           | None -> [])
          @ List.filter_map
              (fun (k, _) ->
                if String.length k > 1 && k.[0] = '_' && k.[1] = '_' then None
                else Some k)
              o.props
        else Ops.enum_keys ctx o
      in
      Obj (Ops.make_array ctx (List.map str keys)));

  def_method ctx object_ctor "values" 1 (fun ctx _ args ->
      let o = require_obj ctx (arg 0 args) in
      let vals = List.map (fun k -> Ops.get_obj ctx o k) (Ops.enum_keys ctx o) in
      Obj (Ops.make_array ctx vals));

  def_method ctx object_ctor "entries" 1 (fun ctx _ args ->
      let o = require_obj ctx (arg 0 args) in
      let pairs =
        List.map
          (fun k -> Obj (Ops.make_array ctx [ Str k; Ops.get_obj ctx o k ]))
          (Ops.enum_keys ctx o)
      in
      Obj (Ops.make_array ctx pairs));

  def_method ctx object_ctor "fromEntries" 1 (fun ctx _ args ->
      match arg 0 args with
      | Obj ({ arr = Some a; _ }) ->
          let o = make_obj ~oclass:"Object" ~proto:(proto_of ctx "Object") () in
          for i = 0 to a.alen - 1 do
            match a.elems.(i) with
            | Obj ({ arr = Some pair; _ }) when pair.alen >= 2 ->
                let k = Ops.to_string ctx pair.elems.(0) in
                set_own o k (mkprop pair.elems.(1))
            | _ -> Ops.type_error ctx "iterable entry is not a key/value pair"
          done;
          Obj o
      | _ -> Ops.type_error ctx "fromEntries requires an array of entries");

  def_method ctx object_ctor "getOwnPropertyNames" 1 (fun ctx _ args ->
      let o = require_obj ctx (arg 0 args) in
      let elems =
        match o.arr with Some a -> List.init a.alen string_of_int | None -> []
      in
      let named =
        List.filter_map
          (fun (k, _) ->
            if String.length k > 1 && k.[0] = '_' && k.[1] = '_' then None
            else Some k)
          o.props
      in
      let extra = match o.arr with Some _ -> [ "length" ] | None -> [] in
      let keys = elems @ named @ extra in
      let keys =
        if fire ctx Quirk.Q_getownpropertynames_sorted then
          List.sort String.compare keys
        else keys
      in
      Obj (Ops.make_array ctx (List.map str keys)));

  def_method ctx object_ctor "getPrototypeOf" 1 (fun ctx _ args ->
      match arg 0 args with
      | Obj o -> o.proto
      | v -> (Ops.to_object ctx v).proto);

  def_method ctx object_ctor "create" 2 (fun ctx _ args ->
      let proto =
        match arg 0 args with
        | Null -> Null
        | Obj _ as p -> p
        | _ -> Ops.type_error ctx "Object prototype may only be an Object or null"
      in
      let o = make_obj ~oclass:"Object" ~proto () in
      Obj o);

  def_method ctx object_ctor "assign" 2 (fun ctx _ args ->
      match args with
      | [] -> Ops.type_error ctx "cannot convert undefined to object"
      | target :: sources ->
          let t = require_obj ctx target in
          List.iter
            (fun src ->
              match src with
              | Obj s ->
                  List.iter
                    (fun k ->
                      let skip =
                        array_index_of_key k <> None
                        && fire ctx Quirk.Q_assign_skips_numeric_keys
                      in
                      if not skip then
                        Ops.set_obj ctx ~strict:false t k (Ops.get_obj ctx s k))
                    (Ops.enum_keys ctx s)
              | _ -> ())
            sources;
          target);

  (* defineProperty: the central conformance surface for Listing 1 *)
  def_method ctx object_ctor "defineProperty" 3 (fun ctx _ args ->
      let o = require_obj ctx (arg 0 args) in
      let key = Ops.to_string ctx (arg 1 args) in
      let desc =
        match arg 2 args with
        | Obj d -> d
        | _ -> Ops.type_error ctx "property descriptor must be an object"
      in
      let has k = Ops.has_own ctx desc k in
      let get k = Ops.get_obj ctx desc k in
      (* mutates prop records in place: journal a pre-image and invalidate
         inline caches keyed on the current layout *)
      barrier o;
      o.version <- o.version + 1;
      let dflt = fire ctx Quirk.Q_defineproperty_defaults_writable in
      (* array length redefinition (Listing 1): length is non-configurable *)
      (match (o.arr, key) with
      | Some a, "length" when a.ty = None ->
          let wants_configurable =
            has "configurable" && Ops.to_boolean (get "configurable")
          in
          if wants_configurable then begin
            if not (fire ctx Quirk.Q_defineproperty_array_length_no_typeerror) then
              Ops.type_error ctx "cannot redefine non-configurable property 'length'"
          end;
          (if has "value" then begin
             let n = Float.to_int (Ops.to_uint32 ctx (get "value")) in
             if n < a.alen then begin
               if n < Array.length a.elems then
                 Array.fill a.elems n (Array.length a.elems - n) Undefined;
               a.alen <- n
             end
             else a.alen <- n
           end);
          if has "writable" && not (Ops.to_boolean (get "writable")) then
            a.length_writable <- false
      | Some a, _ when array_index_of_key key <> None ->
          let i = Option.get (array_index_of_key key) in
          if has "value" then Ops.array_store ctx o a i (get "value")
      | _ ->
          let existing = find_own o key in
          (match existing with
          | Some p when not p.configurable ->
              (* a non-configurable property may only be weakened: writable
                 may go true -> false, the value may change while writable;
                 everything else is a TypeError *)
              let reject () =
                Ops.type_error ctx
                  (Printf.sprintf "cannot redefine property '%s'" key)
              in
              if has "configurable" && Ops.to_boolean (get "configurable") then
                reject ();
              if has "enumerable" && Ops.to_boolean (get "enumerable") <> p.enumerable
              then reject ();
              (if has "writable" then
                 let w = Ops.to_boolean (get "writable") in
                 if w && not p.writable then reject () else p.writable <- w);
              if has "value" then
                if p.writable then p.v <- get "value"
                else if not (Ops.strict_equals (get "value") p.v) then reject ()
          | Some p ->
              (* configurable: update only the supplied fields *)
              if has "value" then p.v <- get "value";
              if has "writable" then p.writable <- Ops.to_boolean (get "writable");
              if has "enumerable" then p.enumerable <- Ops.to_boolean (get "enumerable");
              if has "configurable" then
                p.configurable <- Ops.to_boolean (get "configurable");
              if has "get" then p.getter <- Some (get "get")
          | None ->
              let bool_attr k =
                if has k then Ops.to_boolean (get k) else dflt
              in
              let p =
                mkprop
                  ~writable:(bool_attr "writable")
                  ~enumerable:(bool_attr "enumerable")
                  ~configurable:(bool_attr "configurable")
                  (if has "value" then get "value" else Undefined)
              in
              (if has "get" then p.getter <- Some (get "get"));
              set_own o key p));
      arg 0 args);

  def_method ctx object_ctor "getOwnPropertyDescriptor" 2 (fun ctx _ args ->
      let o = require_obj ctx (arg 0 args) in
      let key = Ops.to_string ctx (arg 1 args) in
      match find_own o key with
      | None -> (
          match (o.arr, key) with
          | Some a, "length" ->
              let d = make_obj ~oclass:"Object" ~proto:(proto_of ctx "Object") () in
              def_value d "value" ~enumerable:true (int_ a.alen);
              def_value d "writable" ~enumerable:true (bool_ a.length_writable);
              def_value d "enumerable" ~enumerable:true (bool_ false);
              def_value d "configurable" ~enumerable:true (bool_ false);
              Obj d
          | _ -> Undefined)
      | Some p ->
          let d = make_obj ~oclass:"Object" ~proto:(proto_of ctx "Object") () in
          def_value d "value" ~enumerable:true p.v;
          def_value d "writable" ~enumerable:true (bool_ p.writable);
          def_value d "enumerable" ~enumerable:true (bool_ p.enumerable);
          def_value d "configurable" ~enumerable:true (bool_ p.configurable);
          Obj d);

  let freeze_obj ctx o ~seal_only =
    (* Rhino crash (Listing 11): sealing a String wrapper object *)
    if o.oclass = "String" && o.prim <> None
       && fire ctx Quirk.Q_seal_string_object_crash
    then raise (Engine_crash "Object.seal on String wrapper: invalid slot access");
    barrier o;
    o.version <- o.version + 1;
    o.extensible <- false;
    List.iter
      (fun (_, p) ->
        p.configurable <- false;
        if not seal_only then p.writable <- false)
      o.props;
    (match o.arr with
    | Some a when a.ty = None ->
        a.length_writable <- false;
        if (not seal_only) && not (fire ctx Quirk.Q_freeze_array_elements_writable)
        then set_own o "__frozenElems" (mkprop ~enumerable:false (Bool true))
    | _ -> ())
  in

  def_method ctx object_ctor "freeze" 1 (fun ctx _ args ->
      (match arg 0 args with
      | Obj o -> freeze_obj ctx o ~seal_only:false
      | _ -> ());
      arg 0 args);

  def_method ctx object_ctor "seal" 1 (fun ctx _ args ->
      (match arg 0 args with
      | Obj o -> freeze_obj ctx o ~seal_only:true
      | _ -> ());
      arg 0 args);

  def_method ctx object_ctor "isFrozen" 1 (fun _ _ args ->
      match arg 0 args with
      | Obj o ->
          bool_
            ((not o.extensible)
            && List.for_all (fun (_, p) -> (not p.configurable) && not p.writable) o.props)
      | _ -> bool_ true);

  def_method ctx object_ctor "isSealed" 1 (fun _ _ args ->
      match arg 0 args with
      | Obj o ->
          bool_
            ((not o.extensible)
            && List.for_all (fun (_, p) -> not p.configurable) o.props)
      | _ -> bool_ true);

  def_method ctx object_ctor "isExtensible" 1 (fun _ _ args ->
      match arg 0 args with Obj o -> bool_ o.extensible | _ -> bool_ false);

  def_method ctx object_ctor "preventExtensions" 1 (fun _ _ args ->
      (match arg 0 args with
      | Obj o ->
          barrier o;
          o.extensible <- false
      | _ -> ());
      arg 0 args)
