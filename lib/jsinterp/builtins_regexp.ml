(* RegExp.prototype: exec / test / toString / compile.

   The lastIndex write-protection rule (the DIE-found Rhino/JerryScript bug
   of Listing 12) is enforced here: when [lastIndex] has been made
   non-writable, any internal write to it must throw a TypeError. *)

open Value
open Builtins_util

let this_regexp ctx (this : value) : obj * regex_data =
  match this with
  | Obj ({ regex = Some rd; _ } as o) -> (o, rd)
  | _ -> Ops.type_error ctx "RegExp.prototype method called on a non-RegExp"

let sem ctx = Builtins_string.regex_semantics ctx

(* Internal [[Set]] of lastIndex; the conformance-relevant write path. *)
let set_last_index ctx (o : obj) (v : float) : unit =
  match find_own o "lastIndex" with
  | Some p ->
      if p.writable then begin
        barrier o;
        p.v <- Num v
      end
      else if fire ctx Quirk.Q_regexp_lastindex_nonwritable_silent then ()
      else Ops.type_error ctx "cannot assign to read only property 'lastIndex'"
  | None -> set_own o "lastIndex" (mkprop ~enumerable:false (Num v))

let get_last_index ctx (o : obj) : int =
  match find_own o "lastIndex" with
  | Some p -> Float.to_int (Ops.to_integer ctx p.v)
  | None -> 0

let install ctx (regexp_proto : obj) : unit =
  def_method ctx regexp_proto "toString" 0 (fun ctx this _ ->
      let _, rd = this_regexp ctx this in
      Str ("/" ^ rd.rx_source ^ "/" ^ rd.rx_flags));

  def_method ctx regexp_proto "test" 1 (fun ctx this args ->
      let o, rd = this_regexp ctx this in
      let s = Ops.to_string ctx (arg 0 args) in
      let start = if rd.rx_prog.Regex.flag_g then get_last_index ctx o else 0 in
      match Regex.exec ~sem:(sem ctx) rd.rx_prog s start with
      | Some m ->
          if rd.rx_prog.Regex.flag_g then
            set_last_index ctx o (Float.of_int m.Regex.m_end);
          Bool true
      | None ->
          if rd.rx_prog.Regex.flag_g then set_last_index ctx o 0.0;
          Bool false);

  def_method ctx regexp_proto "exec" 1 (fun ctx this args ->
      let o, rd = this_regexp ctx this in
      let s = Ops.to_string ctx (arg 0 args) in
      let start = if rd.rx_prog.Regex.flag_g then get_last_index ctx o else 0 in
      if start > String.length s then begin
        if rd.rx_prog.Regex.flag_g then set_last_index ctx o 0.0;
        Null
      end
      else
        match Regex.exec ~sem:(sem ctx) rd.rx_prog s start with
        | None ->
            if rd.rx_prog.Regex.flag_g then set_last_index ctx o 0.0;
            Null
        | Some m ->
            if rd.rx_prog.Regex.flag_g then
              set_last_index ctx o (Float.of_int m.Regex.m_end);
            let matched = String.sub s m.Regex.m_start (m.Regex.m_end - m.Regex.m_start) in
            let groups =
              Array.to_list
                (Array.map
                   (function
                     | Some (a, b) -> Str (String.sub s a (b - a))
                     | None -> Undefined)
                   m.Regex.m_groups)
            in
            let res = Ops.make_array ctx (Str matched :: groups) in
            set_own res "index" (mkprop (int_ m.Regex.m_start));
            set_own res "input" (mkprop (Str s));
            Obj res);

  (* legacy RegExp.prototype.compile — resets lastIndex to 0, which is the
     write Listing 12 exercises against a non-writable lastIndex *)
  def_method ctx regexp_proto "compile" 2 (fun ctx this args ->
      let o, rd = this_regexp ctx this in
      let pat =
        match arg 0 args with
        | Undefined -> rd.rx_source
        | v -> Ops.to_string ctx v
      in
      let flags =
        match arg 1 args with
        | Undefined -> rd.rx_flags
        | v -> Ops.to_string ctx v
      in
      (match Regex.compile pat flags with
      | prog ->
          barrier o;
          o.regex <- Some { rx_source = pat; rx_flags = flags; rx_prog = prog };
          set_last_index ctx o 0.0;
          (match find_own o "source" with
          | Some p -> p.v <- Str pat
          | None -> ());
          (match find_own o "flags" with
          | Some p -> p.v <- Str flags
          | None -> ())
      | exception Regex.Parse_error msg ->
          Ops.syntax_error ctx ("invalid regular expression: " ^ msg));
      this)
