(* TypedArray constructors (Uint8Array & friends) and DataView.

   The SpiderMonkey fractional-length bug (Listing 3) and the JSC
   set-from-string bug (Listing 5) live here. *)

open Value
open Builtins_util

let make_typed ctx (ty : typed_kind) (len : int) : obj =
  let o = make_obj ~oclass:"TypedArray" ~proto:(proto_of ctx "TypedArray") () in
  o.arr <-
    Some
      {
        elems = Array.make (max len 0) (Num 0.0);
        alen = max len 0;
        ty = Some ty;
        length_writable = false;
        min_written = max_int;
      };
  o

let typed_ctor ctx (ty : typed_kind) : obj =
  make_native ctx (typed_kind_name ty) 1 (fun ctx _ args ->
      match arg 0 args with
      | Undefined -> Obj (make_typed ctx ty 0)
      | Num f when not (Float.is_integer f) ->
          (* ECMA-262 converts via ToIndex; old SpiderMonkey threw *)
          if fire ctx Quirk.Q_uint32array_fractional_length_typeerror then
            Ops.type_error ctx "invalid typed array length"
          else if f < 0.0 then Ops.range_error ctx "invalid typed array length"
          else Obj (make_typed ctx ty (Float.to_int (Float.trunc f)))
      | Num f ->
          if f < 0.0 || f > 100_000_000.0 then
            Ops.range_error ctx "invalid typed array length"
          else begin
            burn ctx (Float.to_int f / 8);
            Obj (make_typed ctx ty (Float.to_int f))
          end
      | Obj ({ arr = Some src; _ }) ->
          let t = make_typed ctx ty src.alen in
          let dst = Option.get t.arr in
          for i = 0 to src.alen - 1 do
            dst.elems.(i) <- Ops.coerce_typed ctx ty src.elems.(i)
          done;
          Obj t
      | v ->
          let n = Float.to_int (Ops.to_integer ctx v) in
          Obj (make_typed ctx ty (max 0 n)))

let install ctx (typed_proto : obj) : unit =
  (* %TypedArray%.prototype.set(source, offset) — Listing 5 *)
  def_method ctx typed_proto "set" 2 (fun ctx this args ->
      let o, dst =
        match this with
        | Obj ({ arr = Some ({ ty = Some _; _ } as a); _ } as o) -> (o, a)
        | _ -> Ops.type_error ctx "set called on a non-typed-array"
      in
      barrier o;
      let offset = Float.to_int (Ops.to_integer ctx (arg 1 args)) in
      if offset < 0 then Ops.range_error ctx "invalid or out-of-range index";
      let source_values =
        match arg 0 args with
        | Obj ({ arr = Some src; _ }) ->
            Array.to_list (Array.sub src.elems 0 src.alen)
        | Str s ->
            (* ECMA-262: the argument is treated as an array-like; a string
               of digits becomes its characters. JSC threw TypeError. *)
            if fire ctx Quirk.Q_typedarray_set_string_typeerror then
              Ops.type_error ctx "Argument must be an array-like object"
            else List.init (String.length s) (fun i -> Str (String.make 1 s.[i]))
        | Obj src_obj ->
            let len = Float.to_int (Ops.to_integer ctx (Ops.get_obj ctx src_obj "length")) in
            List.init (max 0 len) (fun i -> Ops.get_obj ctx src_obj (string_of_int i))
        | _ -> Ops.type_error ctx "Argument must be an array-like object"
      in
      if offset + List.length source_values > dst.alen then
        Ops.range_error ctx "offset is out of bounds";
      let ty = Option.get dst.ty in
      List.iteri
        (fun i v -> dst.elems.(offset + i) <- Ops.coerce_typed ctx ty v)
        source_values;
      Undefined);

  def_method ctx typed_proto "subarray" 2 (fun ctx this args ->
      match this with
      | Obj ({ arr = Some ({ ty = Some ty; _ } as a); _ }) ->
          let n = a.alen in
          let rel i = if i < 0 then max 0 (n + i) else min i n in
          let from =
            match arg 0 args with
            | Undefined -> 0
            | v -> rel (Float.to_int (Ops.to_integer ctx v))
          in
          let upto =
            match arg 1 args with
            | Undefined -> n
            | v -> rel (Float.to_int (Ops.to_integer ctx v))
          in
          let t = make_typed ctx ty (max 0 (upto - from)) in
          let dst = Option.get t.arr in
          for i = 0 to dst.alen - 1 do
            dst.elems.(i) <- a.elems.(from + i)
          done;
          Obj t
      | _ -> Ops.type_error ctx "subarray called on a non-typed-array");

  def_method ctx typed_proto "toString" 0 (fun ctx this _ ->
      match this with
      | Obj ({ arr = Some a; _ }) ->
          Str
            (String.concat ","
               (List.init a.alen (fun i -> Ops.to_string ctx a.elems.(i))))
      | _ -> Str "");

  def_method ctx typed_proto "join" 1 (fun ctx this args ->
      match this with
      | Obj ({ arr = Some a; _ }) ->
          let sep =
            match arg 0 args with Undefined -> "," | v -> Ops.to_string ctx v
          in
          Str
            (String.concat sep
               (List.init a.alen (fun i -> Ops.to_string ctx a.elems.(i))))
      | _ -> Str "")

let make_dataview ctx (len : int) : obj =
  let o = make_obj ~oclass:"DataView" ~proto:(proto_of ctx "DataView") () in
  o.dataview <- Some (Bytes.make (max 0 len) '\x00');
  o

let install_dataview ctx (dv_proto : obj) : unit =
  let this_dv ctx this =
    match this with
    | Obj ({ dataview = Some b; _ } as o) ->
        (* setters mutate the bytes in place; journal before handing them out *)
        barrier o;
        b
    | _ -> Ops.type_error ctx "DataView method called on a non-DataView"
  in
  let check_bounds ctx b i width =
    if i < 0 || i + width > Bytes.length b then
      if fire ctx Quirk.Q_dataview_no_bounds_check then false
      else Ops.range_error ctx "offset is outside the bounds of the DataView"
    else true
  in
  def_method ctx dv_proto "getUint8" 1 (fun ctx this args ->
      let b = this_dv ctx this in
      let i = Float.to_int (Ops.to_integer ctx (arg 0 args)) in
      if check_bounds ctx b i 1 then int_ (Char.code (Bytes.get b i)) else num 0.0);
  def_method ctx dv_proto "setUint8" 2 (fun ctx this args ->
      let b = this_dv ctx this in
      let i = Float.to_int (Ops.to_integer ctx (arg 0 args)) in
      let v = Float.to_int (Ops.to_integer ctx (arg 1 args)) land 0xff in
      if check_bounds ctx b i 1 then Bytes.set b i (Char.chr v);
      Undefined);
  def_method ctx dv_proto "getInt8" 1 (fun ctx this args ->
      let b = this_dv ctx this in
      let i = Float.to_int (Ops.to_integer ctx (arg 0 args)) in
      if check_bounds ctx b i 1 then begin
        let v = Char.code (Bytes.get b i) in
        int_ (if v >= 128 then v - 256 else v)
      end
      else num 0.0);
  def_method ctx dv_proto "getUint16" 1 (fun ctx this args ->
      let b = this_dv ctx this in
      let i = Float.to_int (Ops.to_integer ctx (arg 0 args)) in
      if check_bounds ctx b i 2 then
        int_ ((Char.code (Bytes.get b i) lsl 8) lor Char.code (Bytes.get b (i + 1)))
      else num 0.0);
  def_method ctx dv_proto "setUint16" 2 (fun ctx this args ->
      let b = this_dv ctx this in
      let i = Float.to_int (Ops.to_integer ctx (arg 0 args)) in
      let v = Float.to_int (Ops.to_integer ctx (arg 1 args)) land 0xffff in
      if check_bounds ctx b i 2 then begin
        Bytes.set b i (Char.chr (v lsr 8));
        Bytes.set b (i + 1) (Char.chr (v land 0xff))
      end;
      Undefined);
  def_method ctx dv_proto "getUint32" 1 (fun ctx this args ->
      let b = this_dv ctx this in
      let i = Float.to_int (Ops.to_integer ctx (arg 0 args)) in
      if check_bounds ctx b i 4 then begin
        let byte k = Char.code (Bytes.get b (i + k)) in
        num (Float.of_int ((byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3))
      end
      else num 0.0);
  def_method ctx dv_proto "setUint32" 2 (fun ctx this args ->
      let b = this_dv ctx this in
      let i = Float.to_int (Ops.to_integer ctx (arg 0 args)) in
      let v = Int64.to_int (Int64.logand (Int64.of_float (Ops.to_number ctx (arg 1 args))) 0xFFFFFFFFL) in
      if check_bounds ctx b i 4 then
        for k = 0 to 3 do
          Bytes.set b (i + k) (Char.chr ((v lsr ((3 - k) * 8)) land 0xff))
        done;
      Undefined)
