(* Closure compiler: one AST walk at compile time produces a tree of OCaml
   closures, so execution pays neither per-node match dispatch nor
   string-keyed scope-chain lookups. [Resolve] assigns every binding a
   static (depth, slot) coordinate; frames are [value ref array]s mirroring
   the tree-walker's scope chain one-for-one.

   Parity contract: a compiled program must be bit-for-bit equivalent to
   [Interp] — same output, same status, same fired/touched quirk sets, same
   fuel consumption, same coverage, same object-id allocation order. The
   compiled closures therefore burn fuel exactly where [Interp.eval] /
   [Interp.exec_stmt] do (1 per expression node, 1 per statement node, 2
   per call via the shared [Interp.call_function]) and replicate every
   quirk checkpoint in place. Anything the slot representation cannot
   honour deopts: per function ([Resolve.func_deopts] — the closure is
   created by [Interp.make_function] over a bridged Hashtbl scope chain)
   or per program ([Resolve.program_deopts] — the whole program
   tree-walks). *)

open Value
module Ast = Jsast.Ast
module R = Resolve

(* Sentinel marking a lexical (let/const) slot whose declaration has not
   executed yet; compared with physical equality only, so no program value
   can collide with it. *)
let absent : value = Str "\000<absent>\000"

(* Runtime frame: the compiled image of one [Value.scope]. [bridge] lazily
   materialises a real Hashtbl scope chain when a deopted (tree-walked)
   function closes over compiled frames. *)
type frame = {
  slots : value ref array;
  names : string array;         (** slot index -> binding name *)
  frz : string list;            (** [frozen_names] of the bridged scope *)
  parent : frame option;
  mutable bridge : scope option;
}

type gstate = {
  mutable gs_deopts : int;
  gs_folded : Quirk.Set.t;
      (** checkpoints the static reachability analysis proved unreachable;
          their compiled consultation sites are folded to [Deopt_to_tree]
          traps — or, under specialisation, all the way to their quirk-off
          constants (see [checkpoint]) *)
  gs_cell : Quirk.Set.t option;
      (** specialisation cell: [Some c] compiles one closure for the
          equivalence cell whose quirk set intersected with the inline
          checkpoints is exactly [c] — every compiled consultation bakes in
          its answer and only records the consultation. [None] compiles the
          generic form (identical to what PR 6 produced). *)
}

(* Checkpoint consultation at a compiled deviation site.

   Generic form ([gs_cell = None]): the plain [fire] consultation, except
   that a checkpoint the static reachability analysis ([Analysis.Reach])
   proved unreachable collapses to a [Deopt_to_tree] trap — if the
   analysis was ever wrong the execution discards its context and replays
   tree-walked, so results stay exact and the soundness audit still sees
   the true touched set.

   Specialised form ([gs_cell = Some c]): the compilation is already
   per-cell, so every site constant-folds its answer. A statically-dead
   site folds to its quirk-off constant outright (not even a trap — the
   sound analysis guarantees the site cannot execute, and
   [--audit-specialize] cross-checks against the generic form); a live
   site keeps the [ctx.touched] recording — the execution-sharing class
   key — and bakes in the membership test and, when on, the [ctx.fired]
   attribution. *)
let checkpoint (gs : gstate) (q : Quirk.t) : ctx -> bool =
  if Quirk.Set.mem q gs.gs_folded then
    match gs.gs_cell with
    | Some _ -> fun _ -> false
    | None -> fun _ -> raise Deopt_to_tree
  else
    match gs.gs_cell with
    | None -> fun ctx -> fire ctx q
    | Some cell ->
        if Quirk.Set.mem q cell then fun ctx ->
          Value.touch_fire ctx q;
          true
        else fun ctx ->
          Value.touch ctx q;
          false

(* --- monomorphic inline caches --------------------------------------
   Compiled (specialised) property sites remember the last receiver they
   saw: on [a.k] (load, method load) the cache keys on the receiver's
   physical identity plus its layout [version] and short-circuits straight
   to the cached property record, skipping [Ops.get]'s dispatch and the
   insertion-ordered [find_own] walk; on [a.k = v] (store) likewise for a
   writable own property. Validity:

   - physical receiver identity pins the object; [version] is bumped by
     every layout mutation ([set_own], [remove_own], [defineProperty],
     freeze/seal, COW rollback), so a cached [prop] record can never be
     observed after the layout it belongs to is gone. Plain value stores
     ([p.v <- v]) don't bump — the cache holds the record, not the value.
   - [ctx.ic_gen] confines an entry to the execution that filled it:
     caches start cold every execution, making per-case hit counts
     deterministic under any domain scheduling, and a template object
     journaled by one execution can never serve a stale answer to the
     next.
   - only plain data properties ([getter = None]) of plain objects
     ([arr = None], [prim = None] — index/length magic lives on those
     storages) are cached; prototype loads additionally pin the holder's
     identity and version. Prototype links are never reassigned after
     construction, so receiver identity implies holder identity.

   A hit replays the generic path's observable effects exactly: it burns
   the 1 fuel [Ops.get]/[Ops.set] burns on entry, and the property-read
   path consults no quirk checkpoint (verified: [get]/[get_obj]/
   [get_plain] never call [fire]), so touched/fired are untouched either
   way. A store hit runs the same write [barrier] the generic
   [set_plain] runs. *)

type ic_entry =
  | Ic_empty
  | Ic_own of int * obj * int * prop  (** gen, receiver, version, slot *)
  | Ic_proto of int * obj * int * obj * int * prop
      (** gen, receiver, version, holder, holder version, slot *)

type ic = { mutable ic_e : ic_entry }

let ic_cacheable_load (o : obj) (key : string) : ic_entry option =
  if o.arr <> None || o.prim <> None then None
  else
    match find_own o key with
    | Some p -> if p.getter = None then Some (Ic_own (0, o, o.version, p)) else None
    | None -> (
        match o.proto with
        | Obj h when h.arr = None && h.prim = None -> (
            match find_own h key with
            | Some p when p.getter = None ->
                Some (Ic_proto (0, o, o.version, h, h.version, p))
            | _ -> None)
        | _ -> None)

let ic_get (st : ic) ctx (recv : value) (key : string) : value =
  match recv with
  | Obj o -> (
      match st.ic_e with
      | Ic_own (gen, co, ver, p)
        when co == o && ver = o.version && gen = ctx.ic_gen ->
          burn ctx 1;
          ctx.ihits <- ctx.ihits + 1;
          p.v
      | Ic_proto (gen, co, ver, h, hver, p)
        when co == o && ver = o.version && hver = h.version
             && gen = ctx.ic_gen ->
          burn ctx 1;
          ctx.ihits <- ctx.ihits + 1;
          p.v
      | _ ->
          let r = Ops.get ctx recv key in
          (match ic_cacheable_load o key with
          | Some (Ic_own (_, o, v, p)) -> st.ic_e <- Ic_own (ctx.ic_gen, o, v, p)
          | Some (Ic_proto (_, o, v, h, hv, p)) ->
              st.ic_e <- Ic_proto (ctx.ic_gen, o, v, h, hv, p)
          | _ -> ());
          r)
  | _ -> Ops.get ctx recv key

let ic_set (st : ic) ctx ~strict (recv : value) (key : string) (v : value) :
    unit =
  match recv with
  | Obj o -> (
      match st.ic_e with
      | Ic_own (gen, co, ver, p)
        when co == o && ver = o.version && gen = ctx.ic_gen && p.writable ->
          burn ctx 1;
          ctx.ihits <- ctx.ihits + 1;
          barrier o;
          p.v <- v
      | _ -> (
          Ops.set ctx ~strict recv key v;
          if o.arr = None then
            match find_own o key with
            | Some p when p.getter = None && p.writable ->
                st.ic_e <- Ic_own (ctx.ic_gen, o, o.version, p)
            | _ -> ()))
  | _ -> Ops.set ctx ~strict recv key v

(* Process-wide count of specialised compilations, surfaced by campaign
   reports as [cp_specialized]. *)
let specialized = Atomic.make 0
let specialized_count () = Atomic.get specialized

(* Fold a forked campaign worker's specialisation delta into this
   process's count (see [Run.add_runs]). *)
let add_specialized n = if n > 0 then ignore (Atomic.fetch_and_add specialized n)

let mk_frame (names : string array) (frz : string list) (parent : frame option)
    : frame =
  {
    slots = Array.init (Array.length names) (fun _ -> ref absent);
    names;
    frz;
    parent;
    bridge = None;
  }

let rec frame_at (d : int) (fr : frame) : frame =
  if d = 0 then fr
  else
    match fr.parent with
    | Some p -> frame_at (d - 1) p
    | None -> invalid_arg "Compile.frame_at"

(* A Hashtbl scope backed by this frame's refs, for deopted functions.
   Cached per frame; slots installed after materialisation are propagated
   by [set_slot], so the bridge always agrees with the frame. *)
let rec bridge_of ctx (fr : frame) : scope =
  match fr.bridge with
  | Some s -> s
  | None ->
      let parent =
        match fr.parent with
        | Some p -> bridge_of ctx p
        | None -> ctx.global_scope
      in
      let s =
        {
          bindings = Hashtbl.create 8;
          parent = Some parent;
          frozen_names = fr.frz;
        }
      in
      Array.iteri
        (fun i r -> if not (!r == absent) then Hashtbl.replace s.bindings fr.names.(i) r)
        fr.slots;
      fr.bridge <- Some s;
      s

(* Install a fresh ref into a slot (let/const declaration, hoisted var or
   function, loop variable, catch parameter) — mirrors [Hashtbl.replace]
   in the tree-walker, including on any already-materialised bridge. *)
let set_slot (fr : frame) (i : int) (r : value ref) : unit =
  fr.slots.(i) <- r;
  match fr.bridge with
  | Some s -> Hashtbl.replace s.bindings fr.names.(i) r
  | None -> ()

(* --- identifier access chains ---

   An access compiles to: conditional (lexical) candidate slots innermost
   first, falling through slots still [absent]; then the fixed terminal if
   any; then a dynamic miss (the tree-walker's chain bottoms out at
   [ctx.global_scope], which only ever holds "this" and eval-introduced
   bindings — and eval deopts — so probing it keeps the fallbacks exact). *)

let chain_read (acc : R.access) (miss : ctx -> frame -> value) :
    ctx -> frame -> value =
  match (acc.R.ac_candidates, acc.R.ac_terminal) with
  | [], Some { R.tg_depth = 0; tg_slot = i; _ } -> fun _ fr -> !(fr.slots.(i))
  | [], Some { R.tg_depth = d; tg_slot = i; _ } ->
      fun _ fr -> !((frame_at d fr).slots.(i))
  | cands, term ->
      let cands = Array.of_list cands in
      let n = Array.length cands in
      fun ctx fr ->
        let rec go k =
          if k < n then begin
            let d, i = cands.(k) in
            let r = (frame_at d fr).slots.(i) in
            if !r == absent then go (k + 1) else !r
          end
          else
            match term with
            | Some { R.tg_depth = d; tg_slot = i; _ } ->
                !((frame_at d fr).slots.(i))
            | None -> miss ctx fr
        in
        go 0

let chain_ref (acc : R.access) (name : string) :
    ctx -> frame -> value ref option =
  let cands = Array.of_list acc.R.ac_candidates in
  let n = Array.length cands in
  fun ctx fr ->
    let rec go k =
      if k < n then begin
        let d, i = cands.(k) in
        let r = (frame_at d fr).slots.(i) in
        if !r == absent then go (k + 1) else Some r
      end
      else
        match acc.R.ac_terminal with
        | Some { R.tg_depth = d; tg_slot = i; _ } ->
            Some (frame_at d fr).slots.(i)
        | None -> Hashtbl.find_opt ctx.global_scope.bindings name
    in
    go 0

let compile_ident_read (env : R.level list) (name : string) :
    ctx -> frame -> value =
  chain_read (R.resolve_access env name) (fun ctx _ ->
      match Hashtbl.find_opt ctx.global_scope.bindings name with
      | Some r -> !r
      | None -> Interp.ident_read_miss ctx name)

(* [undefined] / [NaN] / [Infinity]: constant unless some executed program
   shadows one of them ([ctx.specials_shadowed]); then the tree-walker's
   lookup-with-constant-fallback, on the static chain. *)
let compile_special (env : R.level list) (name : string) (const : value) :
    ctx -> frame -> value =
  let read =
    chain_read (R.resolve_access env name) (fun ctx _ ->
        match Hashtbl.find_opt ctx.global_scope.bindings name with
        | Some r -> !r
        | None -> const)
  in
  fun ctx fr -> if not ctx.specials_shadowed then const else read ctx fr

let compile_typeof_ident (env : R.level list) (name : string) :
    ctx -> frame -> value =
  let cref = chain_ref (R.resolve_access env name) name in
  fun ctx fr ->
    match cref ctx fr with
    | Some r -> Str (type_of !r)
    | None -> Interp.ident_typeof_miss ctx name

(* Assignment to a bare identifier — the static image of
   [Interp.assign_ident], with the same frozen-binding checkpoint
   ([Q_named_funcexpr_binding_mutable]) at a frozen terminal. *)
let compile_assign_ident (gs : gstate) (env : R.level list) ~strict
    (name : string) : ctx -> frame -> value -> unit =
  let chk_nfe = checkpoint gs Quirk.Q_named_funcexpr_binding_mutable in
  let acc = R.resolve_access env name in
  match (acc.R.ac_candidates, acc.R.ac_terminal) with
  | [], Some { R.tg_depth = d; tg_slot = i; tg_frozen = false } ->
      if d = 0 then fun _ fr v -> fr.slots.(i) := v
      else fun _ fr v -> (frame_at d fr).slots.(i) := v
  | cands, term ->
      let cands = Array.of_list cands in
      let n = Array.length cands in
      fun ctx fr v ->
        let rec go k =
          if k < n then begin
            let d, i = cands.(k) in
            let r = (frame_at d fr).slots.(i) in
            if !r == absent then go (k + 1) else r := v
          end
          else
            match term with
            | Some { R.tg_depth = d; tg_slot = i; tg_frozen } ->
                if tg_frozen then begin
                  if chk_nfe ctx then (frame_at d fr).slots.(i) := v
                  else if strict then
                    Ops.type_error ctx
                      ("assignment to constant variable " ^ name)
                  (* sloppy: silent no-op *)
                end
                else (frame_at d fr).slots.(i) := v
            | None -> Interp.assign_ident ctx ctx.global_scope strict name v
        in
        go 0

(* [var x = v]: the tree-walker writes whatever [lookup] finds — including
   a nearer let binding — bypassing frozen checks (a direct ref write).
   Hoisting guarantees a fixed terminal exists on the chain. *)
let compile_var_write (env : R.level list) (name : string) :
    ctx -> frame -> value -> unit =
  let acc = R.resolve_access env name in
  let cands = Array.of_list acc.R.ac_candidates in
  let n = Array.length cands in
  fun _ fr v ->
    let rec go k =
      if k < n then begin
        let d, i = cands.(k) in
        let r = (frame_at d fr).slots.(i) in
        if !r == absent then go (k + 1) else r := v
      end
      else
        match acc.R.ac_terminal with
        | Some { R.tg_depth = d; tg_slot = i; _ } ->
            (frame_at d fr).slots.(i) := v
        | None -> failwith ("Compile: var binding not hoisted: " ^ name)
    in
    go 0

(* --- expressions and statements ---

   Every compiled expression closure burns 1 fuel on entry (the
   tree-walker's [eval] entry burn); every compiled statement closure burns
   1 and records statement coverage ([exec_stmt]'s preamble). Evaluation
   order inside each arm is forced with explicit lets to match the
   tree-walker exactly. *)

let rec compile_expr (gs : gstate) (env : R.level list) ~strict
    ~(frz : string list) (x : Ast.expr) : ctx -> frame -> value =
  let ce e = compile_expr gs env ~strict ~frz e in
  match x.Ast.e with
  | Ast.Lit Ast.Lnull -> fun ctx _ -> burn ctx 1; Null
  | Ast.Lit (Ast.Lbool b) ->
      let v = Bool b in
      fun ctx _ -> burn ctx 1; v
  | Ast.Lit (Ast.Lnum f) ->
      let v = Num f in
      fun ctx _ -> burn ctx 1; v
  | Ast.Lit (Ast.Lstr s) ->
      let v = Str s in
      fun ctx _ -> burn ctx 1; v
  | Ast.Lit (Ast.Lregexp (pat, flags)) ->
      fun ctx _ -> burn ctx 1; Interp.make_regexp ctx pat flags
  | Ast.Ident "undefined" ->
      let read = compile_special env "undefined" Undefined in
      fun ctx fr -> burn ctx 1; read ctx fr
  | Ast.Ident "NaN" ->
      let read = compile_special env "NaN" (Num Float.nan) in
      fun ctx fr -> burn ctx 1; read ctx fr
  | Ast.Ident "Infinity" ->
      let read = compile_special env "Infinity" (Num Float.infinity) in
      fun ctx fr -> burn ctx 1; read ctx fr
  | Ast.Ident name ->
      let read = compile_ident_read env name in
      fun ctx fr -> burn ctx 1; read ctx fr
  | Ast.This -> fun ctx _ -> burn ctx 1; ctx.cur_this
  | Ast.Array_lit elems ->
      let elcs =
        List.map (function Some e -> Some (ce e) | None -> None) elems
      in
      fun ctx fr ->
        burn ctx 1;
        let vals =
          List.map
            (function Some ec -> ec ctx fr | None -> Undefined)
            elcs
        in
        Obj (Ops.make_array ctx vals)
  | Ast.Object_lit props ->
      let pcs =
        List.map
          (fun (pn, vx) ->
            let kc =
              match pn with
              | Ast.PN_ident n -> `Const n
              | Ast.PN_str s -> `Const s
              | Ast.PN_num f -> `Const (Ops.number_to_string f)
              | Ast.PN_computed e -> `Dyn (ce e)
            in
            (kc, ce vx))
          props
      in
      fun ctx fr ->
        burn ctx 1;
        let o = make_obj ~oclass:"Object" ~proto:(proto_of ctx "Object") () in
        List.iter
          (fun (kc, vc) ->
            let key =
              match kc with
              | `Const k -> k
              | `Dyn kc -> Ops.to_string ctx (kc ctx fr)
            in
            let v = vc ctx fr in
            set_own o key (mkprop v))
          pcs;
        Obj o
  | Ast.Func f ->
      let mk = compile_function gs env ~strict ~frz ~node_id:x.Ast.eid f in
      fun ctx fr -> burn ctx 1; mk ctx fr
  | Ast.Arrow f ->
      let mk = compile_function gs env ~strict ~frz ~node_id:x.Ast.eid f in
      fun ctx fr -> burn ctx 1; mk ctx fr
  | Ast.Unary (Ast.Utypeof, { Ast.e = Ast.Ident name; _ }) ->
      let tc = compile_typeof_ident env name in
      fun ctx fr -> burn ctx 1; tc ctx fr
  | Ast.Unary (Ast.Utypeof, ox) ->
      let oc = ce ox in
      fun ctx fr -> burn ctx 1; Str (type_of (oc ctx fr))
  | Ast.Unary (Ast.Udelete, { Ast.e = Ast.Member (ox, prop); _ }) ->
      let oc = ce ox in
      let kc =
        match prop with
        | Ast.Pfield n -> `Const n
        | Ast.Pindex e -> `Dyn (ce e)
      in
      fun ctx fr ->
        burn ctx 1;
        let ov = oc ctx fr in
        let key =
          match kc with
          | `Const k -> k
          | `Dyn kc -> Ops.to_string ctx (kc ctx fr)
        in
        (match ov with
        | Obj obj -> Bool (Ops.delete ctx ~strict obj key)
        | _ -> Bool true)
  | Ast.Unary (Ast.Udelete, { Ast.e = Ast.Ident name; _ }) ->
      (* unreachable in practice: [Resolve.stmts_deopt] deopts the whole
         enclosing function (or program) on [delete ident]; kept as an
         exact fallback via the bridge chain *)
      fun ctx fr ->
        burn ctx 1;
        if Ops.has_own ctx ctx.global name then
          Bool (Ops.delete ctx ~strict ctx.global name)
        else Bool (Interp.lookup (bridge_of ctx fr) name = None)
  | Ast.Unary (Ast.Udelete, ox) ->
      let oc = ce ox in
      fun ctx fr ->
        burn ctx 1;
        ignore (oc ctx fr);
        Bool true
  | Ast.Unary (Ast.Uvoid, ox) ->
      let oc = ce ox in
      fun ctx fr ->
        burn ctx 1;
        ignore (oc ctx fr);
        Undefined
  | Ast.Unary (Ast.Unot, ox) ->
      let oc = ce ox in
      fun ctx fr ->
        burn ctx 1;
        Bool (not (Ops.to_boolean (oc ctx fr)))
  | Ast.Unary (Ast.Uneg, ox) ->
      let oc = ce ox in
      let chk_negz = checkpoint gs Quirk.Q_codegen_neg_zero_positive in
      fun ctx fr ->
        burn ctx 1;
        let f = Ops.to_number ctx (oc ctx fr) in
        let r = -.f in
        if r = 0.0 && chk_negz ctx then Num 0.0 else Num r
  | Ast.Unary (Ast.Uplus, ox) ->
      let oc = ce ox in
      fun ctx fr ->
        burn ctx 1;
        Num (Ops.to_number ctx (oc ctx fr))
  | Ast.Unary (Ast.Ubnot, ox) ->
      let oc = ce ox in
      fun ctx fr ->
        burn ctx 1;
        let i = Ops.to_int32 ctx (oc ctx fr) in
        Num (Int32.to_float (Int32.lognot i))
  | Ast.Binary (op, ax, bx) ->
      let ac = ce ax and bc = ce bx in
      fun ctx fr ->
        burn ctx 1;
        let a = ac ctx fr in
        let b = bc ctx fr in
        Interp.apply_binop ctx op a b
  | Ast.Logical (op, ax, bx) -> (
      let ac = ce ax and bc = ce bx in
      let eid = x.Ast.eid in
      match op with
      | Ast.And ->
          fun ctx fr ->
            burn ctx 1;
            let va = ac ctx fr in
            if Ops.to_boolean va then begin
              Interp.cov_branch ctx eid 1;
              bc ctx fr
            end
            else begin
              Interp.cov_branch ctx eid 0;
              va
            end
      | Ast.Or ->
          fun ctx fr ->
            burn ctx 1;
            let va = ac ctx fr in
            if Ops.to_boolean va then begin
              Interp.cov_branch ctx eid 0;
              va
            end
            else begin
              Interp.cov_branch ctx eid 1;
              bc ctx fr
            end)
  | Ast.Assign (op, lhs, rhs) -> (
      let rc = ce rhs in
      let assign = compile_assign_target gs env ~strict ~frz lhs in
      match op with
      | None ->
          fun ctx fr ->
            burn ctx 1;
            let v = rc ctx fr in
            assign ctx fr v;
            v
      | Some bop ->
          let lread = ce lhs in
          let chk_concat = checkpoint gs Quirk.Q_opt_loop_strconcat_drops in
          fun ctx fr ->
            burn ctx 1;
            let rv = rc ctx fr in
            let old = lread ctx fr in
            let result = Interp.apply_binop ctx bop old rv in
            (* optimizer quirk: one [+=] string append lost in a
               long-running loop — same checkpoint as [Interp.eval_assign] *)
            let v =
              match (result, bop) with
              | Str _, Ast.Add
                when ctx.loop_trip > 100 && ctx.strconcat_drop_armed
                     && chk_concat ctx ->
                  ctx.strconcat_drop_armed <- false;
                  old
              | _ -> result
            in
            assign ctx fr v;
            v)
  | Ast.Update (op, prefix, target) ->
      let tc = ce target in
      let assign = compile_assign_target gs env ~strict ~frz target in
      fun ctx fr ->
        burn ctx 1;
        let old = Ops.to_number ctx (tc ctx fr) in
        let nv =
          match op with Ast.Incr -> old +. 1.0 | Ast.Decr -> old -. 1.0
        in
        assign ctx fr (Num nv);
        if prefix then Num nv else Num old
  | Ast.Cond (cx, tx, fx) ->
      let cc = ce cx and tc = ce tx and fc = ce fx in
      let eid = x.Ast.eid in
      fun ctx fr ->
        burn ctx 1;
        if Ops.to_boolean (cc ctx fr) then begin
          Interp.cov_branch ctx eid 0;
          tc ctx fr
        end
        else begin
          Interp.cov_branch ctx eid 1;
          fc ctx fr
        end
  | Ast.Call (fx, args) -> (
      let argcs = List.map ce args in
      match fx.Ast.e with
      | Ast.Member (ox, Ast.Pfield key) when gs.gs_cell <> None ->
          (* specialised method call on a constant key: the method load
             goes through an inline cache *)
          let oc = ce ox in
          let st = { ic_e = Ic_empty } in
          fun ctx fr ->
            burn ctx 1;
            let ov = oc ctx fr in
            let fv = ic_get st ctx ov key in
            if not (is_callable fv) then
              Ops.type_error ctx
                (Printf.sprintf "%s.%s is not a function" (type_of ov) key);
            let argv = List.map (fun ac -> ac ctx fr) argcs in
            Interp.call_function ctx fv ov argv
      | Ast.Member (ox, prop) ->
          (* method call: receiver becomes [this]; the Member node itself
             is never evaluated by [Interp.eval_call], so it pays no burn *)
          let oc = ce ox in
          let kc =
            match prop with
            | Ast.Pfield n -> `Const n
            | Ast.Pindex e -> `Dyn (ce e)
          in
          fun ctx fr ->
            burn ctx 1;
            let ov = oc ctx fr in
            let key =
              match kc with
              | `Const k -> k
              | `Dyn kc -> Ops.to_string ctx (kc ctx fr)
            in
            let fv = Ops.get ctx ov key in
            if not (is_callable fv) then
              Ops.type_error ctx
                (Printf.sprintf "%s.%s is not a function" (type_of ov) key);
            let argv = List.map (fun ac -> ac ctx fr) argcs in
            Interp.call_function ctx fv ov argv
      | _ ->
          let fc = ce fx in
          fun ctx fr ->
            burn ctx 1;
            let fv = fc ctx fr in
            let argv = List.map (fun ac -> ac ctx fr) argcs in
            Interp.call_function ctx fv Undefined argv)
  | Ast.New (fx, args) ->
      let fc = ce fx in
      let argcs = List.map ce args in
      fun ctx fr ->
        burn ctx 1;
        let fv = fc ctx fr in
        let argv = List.map (fun ac -> ac ctx fr) argcs in
        Interp.construct ctx fv argv
  | Ast.Member (ox, prop) -> (
      let oc = ce ox in
      match prop with
      | Ast.Pfield n when gs.gs_cell <> None ->
          let st = { ic_e = Ic_empty } in
          fun ctx fr ->
            burn ctx 1;
            let ov = oc ctx fr in
            ic_get st ctx ov n
      | Ast.Pfield n ->
          fun ctx fr ->
            burn ctx 1;
            let ov = oc ctx fr in
            Ops.get ctx ov n
      | Ast.Pindex e ->
          let kc = ce e in
          fun ctx fr ->
            burn ctx 1;
            let ov = oc ctx fr in
            let key = Ops.to_string ctx (kc ctx fr) in
            Ops.get ctx ov key)
  | Ast.Seq (ax, bx) ->
      let ac = ce ax and bc = ce bx in
      fun ctx fr ->
        burn ctx 1;
        ignore (ac ctx fr);
        bc ctx fr
  | Ast.Template parts ->
      let pcs =
        List.map
          (function Ast.Tstr s -> `S s | Ast.Tsub e -> `E (ce e))
          parts
      in
      fun ctx fr ->
        burn ctx 1;
        let buf = Buffer.create 16 in
        List.iter
          (function
            | `S s -> Buffer.add_string buf s
            | `E ec -> Buffer.add_string buf (Ops.to_string ctx (ec ctx fr)))
          pcs;
        Str (Buffer.contents buf)

(* The write half of [Interp.assign_to]: Ident via the static chain,
   Member re-evaluating object and key (as the tree-walker does for update
   and compound assignment), anything else a TypeError when invoked. *)
and compile_assign_target gs env ~strict ~frz (lhs : Ast.expr) :
    ctx -> frame -> value -> unit =
  match lhs.Ast.e with
  | Ast.Ident name -> compile_assign_ident gs env ~strict name
  | Ast.Member (ox, prop) -> (
      let oc = compile_expr gs env ~strict ~frz ox in
      match prop with
      | Ast.Pindex ix ->
          let kc = compile_expr gs env ~strict ~frz ix in
          let chk_bool = checkpoint gs Quirk.Q_bool_prop_appends_to_array in
          fun ctx fr v -> (
            let ov = oc ctx fr in
            (* QuickJS quirk (Listing 6): boolean key on an array appends *)
            match ov with
            | Obj ({ arr = Some arr; _ } as o) -> (
                let kv = kc ctx fr in
                match kv with
                | Bool true when arr.ty = None && chk_bool ctx ->
                    Ops.array_store ctx o arr arr.alen v
                | _ -> Ops.set ctx ~strict ov (Ops.to_string ctx kv) v)
            | _ ->
                let key = Ops.to_string ctx (kc ctx fr) in
                Ops.set ctx ~strict ov key v)
      | Ast.Pfield key when gs.gs_cell <> None ->
          let st = { ic_e = Ic_empty } in
          fun ctx fr v ->
            let ov = oc ctx fr in
            ic_set st ctx ~strict ov key v
      | Ast.Pfield key ->
          fun ctx fr v ->
            let ov = oc ctx fr in
            Ops.set ctx ~strict ov key v)
  | _ -> fun ctx _ _ -> Ops.type_error ctx "invalid assignment target"

(* Statement bodies that the tree-walker runs in a fresh block scope:
   collect the reachable let/const names, elide the frame when there are
   none (Hashtbl scopes are unobservable when empty), otherwise build one
   fresh frame per entry. *)
and compile_block gs env ~strict ~frz (stmts : Ast.stmt list) :
    ctx -> frame -> unit =
  match R.lexical_names stmts with
  | [] ->
      let body = List.map (compile_stmt gs env ~strict ~frz) stmts in
      fun ctx fr -> List.iter (fun sc -> sc ctx fr) body
  | lex ->
      let lvl = R.new_level () in
      List.iter
        (fun n -> ignore (R.declare lvl n ~fixed:false ~frozen:false))
        lex;
      let names = R.names lvl and frzn = R.frozen_names lvl in
      let body = List.map (compile_stmt gs (lvl :: env) ~strict ~frz) stmts in
      fun ctx fr ->
        let bf = mk_frame names frzn (Some fr) in
        List.iter (fun sc -> sc ctx bf) body

and compile_stmt gs env ~strict ~frz (st : Ast.stmt) : ctx -> frame -> unit =
  let inner = compile_stmt_desc gs env ~strict ~frz st in
  fun ctx fr ->
    burn ctx 1;
    Interp.cov_stmt ctx st;
    inner ctx fr

and compile_stmt_desc gs env ~strict ~frz (st : Ast.stmt) :
    ctx -> frame -> unit =
  let ce e = compile_expr gs env ~strict ~frz e in
  let sid = st.Ast.sid in
  match st.Ast.s with
  | Ast.Expr_stmt x ->
      let xc = ce x in
      fun ctx fr -> ignore (xc ctx fr)
  | Ast.Var_decl (kind, decls) ->
      let items =
        List.map
          (fun (n, init) ->
            let ic = Option.map ce init in
            match kind with
            | Ast.Var -> (
                match ic with
                | None -> `Nop (* lookup only; no write, no effect *)
                | Some ic -> `Var (ic, compile_var_write env n))
            | Ast.Let | Ast.Const ->
                let slot =
                  match R.slot_of (List.hd env) n with
                  | Some s -> s
                  | None -> failwith ("Compile: unresolved lexical " ^ n)
                in
                `Lex (ic, slot))
          decls
      in
      fun ctx fr ->
        List.iter
          (function
            | `Nop -> ()
            | `Var (ic, w) ->
                let v = ic ctx fr in
                w ctx fr v
            | `Lex (ic, slot) ->
                let v = match ic with Some ic -> ic ctx fr | None -> Undefined in
                set_slot fr slot (ref v))
          items
  | Ast.Func_decl _ -> fun _ _ -> () (* installed during hoisting *)
  | Ast.Return x -> (
      match x with
      | Some x ->
          let xc = ce x in
          fun ctx fr -> raise (Interp.Return_exc (xc ctx fr))
      | None -> fun _ _ -> raise (Interp.Return_exc Undefined))
  | Ast.If (c, t, f) -> (
      let cc = ce c in
      let tc = compile_stmt gs env ~strict ~frz t in
      match f with
      | Some f ->
          let fc = compile_stmt gs env ~strict ~frz f in
          fun ctx fr ->
            if Ops.to_boolean (cc ctx fr) then begin
              Interp.cov_branch ctx sid 0;
              tc ctx fr
            end
            else begin
              Interp.cov_branch ctx sid 1;
              fc ctx fr
            end
      | None ->
          fun ctx fr ->
            if Ops.to_boolean (cc ctx fr) then begin
              Interp.cov_branch ctx sid 0;
              tc ctx fr
            end
            else Interp.cov_branch ctx sid 1)
  | Ast.Block body -> compile_block gs env ~strict ~frz body
  | Ast.For (init, cond, upd, body) ->
      (* the for scope holds let/const init declarations plus the lexicals
         of an unbraced body; a var init writes through the outer chain
         (its conditionals are all still absent while init runs, exactly
         the tree-walker's [lookup scope]) *)
      let lvl = R.new_level () in
      (match init with
      | Some (Ast.FI_decl ((Ast.Let | Ast.Const), decls)) ->
          List.iter
            (fun (n, _) -> ignore (R.declare lvl n ~fixed:false ~frozen:false))
            decls
      | _ -> ());
      List.iter
        (fun n -> ignore (R.declare lvl n ~fixed:false ~frozen:false))
        (R.lexical_names [ body ]);
      let has_frame = R.size lvl > 0 in
      let fenv = if has_frame then lvl :: env else env in
      let names = R.names lvl and frzn = R.frozen_names lvl in
      let cef e = compile_expr gs fenv ~strict ~frz e in
      let initc =
        match init with
        | Some (Ast.FI_decl (kind, decls)) ->
            let items =
              List.map
                (fun (n, i) ->
                  let ic = Option.map cef i in
                  match kind with
                  | Ast.Var -> (
                      match ic with
                      | None -> `Nop
                      | Some ic -> `Var (ic, compile_var_write env n))
                  | Ast.Let | Ast.Const ->
                      let slot = Option.get (R.slot_of lvl n) in
                      `Lex (ic, slot))
                decls
            in
            Some (`Decl items)
        | Some (Ast.FI_expr x) -> Some (`Expr (cef x))
        | None -> None
      in
      let condc = Option.map cef cond in
      let updc = Option.map cef upd in
      let bodyc = compile_stmt gs fenv ~strict ~frz body in
      fun ctx fr ->
        let ffr = if has_frame then mk_frame names frzn (Some fr) else fr in
        (match initc with
        | Some (`Decl items) ->
            List.iter
              (function
                | `Nop -> ()
                | `Var (ic, w) ->
                    let v = ic ctx ffr in
                    w ctx fr v
                | `Lex (ic, slot) ->
                    let v =
                      match ic with Some ic -> ic ctx ffr | None -> Undefined
                    in
                    set_slot ffr slot (ref v))
              items
        | Some (`Expr xc) -> ignore (xc ctx ffr)
        | None -> ());
        Interp.run_loop ctx sid (fun () ->
            let go =
              match condc with
              | Some cc -> Ops.to_boolean (cc ctx ffr)
              | None -> true
            in
            if go then begin
              (try bodyc ctx ffr with Interp.Continue_exc None -> ());
              (match updc with
              | Some uc -> ignore (uc ctx ffr)
              | None -> ());
              true
            end
            else false)
  | Ast.While (c, body) ->
      let cc = ce c in
      let bodyc = compile_stmt gs env ~strict ~frz body in
      fun ctx fr ->
        Interp.run_loop ctx sid (fun () ->
            if Ops.to_boolean (cc ctx fr) then begin
              (try bodyc ctx fr with Interp.Continue_exc None -> ());
              true
            end
            else false)
  | Ast.Do_while (body, c) ->
      let cc = ce c in
      let bodyc = compile_stmt gs env ~strict ~frz body in
      fun ctx fr ->
        Interp.run_loop ctx sid (fun () ->
            (try bodyc ctx fr with Interp.Continue_exc None -> ());
            Ops.to_boolean (cc ctx fr))
  | Ast.For_in (kind, name, objx, body) ->
      let oc = ce objx in
      let loop = compile_iter_var gs env ~strict ~frz kind name body in
      fun ctx fr ->
        let ov = oc ctx fr in
        let keys =
          match ov with
          | Obj o -> Ops.enum_keys ctx o
          | Str s -> List.init (String.length s) string_of_int
          | _ -> []
        in
        loop ctx fr sid (List.map (fun k -> Str k) keys)
  | Ast.For_of (kind, name, objx, body) ->
      let oc = ce objx in
      let loop = compile_iter_var gs env ~strict ~frz kind name body in
      fun ctx fr ->
        let ov = oc ctx fr in
        let items =
          match ov with
          | Obj ({ arr = Some _; _ } as o) -> Ops.array_values o
          | Str str ->
              List.init (String.length str) (fun i ->
                  Str (String.make 1 str.[i]))
          | _ -> Ops.type_error ctx "value is not iterable"
        in
        loop ctx fr sid items
  | Ast.Break l -> fun _ _ -> raise (Interp.Break_exc l)
  | Ast.Continue l -> fun _ _ -> raise (Interp.Continue_exc l)
  | Ast.Throw x ->
      let xc = ce x in
      fun ctx fr -> raise (Js_throw (xc ctx fr))
  | Ast.Try (body, handler, finalizer) ->
      let bc = compile_block gs env ~strict ~frz body in
      let fin = Option.map (compile_block gs env ~strict ~frz) finalizer in
      let hc =
        Option.map
          (fun (param, hbody) ->
            let lvl = R.new_level () in
            let pslot = R.declare lvl param ~fixed:true ~frozen:false in
            List.iter
              (fun n -> ignore (R.declare lvl n ~fixed:false ~frozen:false))
              (R.lexical_names hbody);
            let names = R.names lvl and frzn = R.frozen_names lvl in
            let hb =
              List.map (compile_stmt gs (lvl :: env) ~strict ~frz) hbody
            in
            (pslot, names, frzn, hb))
          handler
      in
      fun ctx fr ->
        let run_finally () =
          match fin with Some fc -> fc ctx fr | None -> ()
        in
        (try
           bc ctx fr;
           run_finally ()
         with
        | Js_throw v -> (
            match hc with
            | Some (pslot, names, frzn, hb) ->
                let hf = mk_frame names frzn (Some fr) in
                set_slot hf pslot (ref v);
                (try List.iter (fun sc -> sc ctx hf) hb
                 with e ->
                   run_finally ();
                   raise e);
                run_finally ()
            | None ->
                run_finally ();
                raise (Js_throw v))
        | e ->
            run_finally ();
            raise e)
  | Ast.Switch (d, cases) ->
      let dc = ce d in
      (* one scope for every case body, as in the tree-walker *)
      let lvl = R.new_level () in
      List.iter
        (fun n -> ignore (R.declare lvl n ~fixed:false ~frozen:false))
        (R.lexical_names (List.concat_map snd cases));
      let has_frame = R.size lvl > 0 in
      let senv = if has_frame then lvl :: env else env in
      let names = R.names lvl and frzn = R.frozen_names lvl in
      let tests =
        List.map
          (fun (c, _) -> Option.map (compile_expr gs senv ~strict ~frz) c)
          cases
      in
      let bodies =
        List.map
          (fun (_, body) -> List.map (compile_stmt gs senv ~strict ~frz) body)
          cases
      in
      let default_idx = List.find_index (fun (c, _) -> c = None) cases in
      fun ctx fr ->
        let dv = dc ctx fr in
        let sf = if has_frame then mk_frame names frzn (Some fr) else fr in
        let rec find i = function
          | [] -> default_idx
          | Some tc :: rest ->
              if Ops.strict_equals dv (tc ctx sf) then Some i
              else find (i + 1) rest
          | None :: rest -> find (i + 1) rest
        in
        (match find 0 tests with
        | None -> ()
        | Some start -> (
            Interp.cov_branch ctx sid start;
            try
              List.iteri
                (fun i body ->
                  if i >= start then List.iter (fun sc -> sc ctx sf) body)
                bodies
            with Interp.Break_exc None -> ()))
  | Ast.Labeled (label, inner) -> (
      let bodyc = compile_stmt gs env ~strict ~frz inner in
      fun ctx fr ->
        try bodyc ctx fr with
        | Interp.Break_exc (Some l) when l = label -> ()
        | Interp.Continue_exc (Some l) when l = label -> ())
  | Ast.Empty | Ast.Debugger -> fun _ _ -> ()

(* Shared by For_in / For_of: resolve the loop variable exactly as the
   tree-walker does (lexical kinds bind in the loop scope; var/none kinds
   reuse the binding [lookup] finds, installing into the loop scope only on
   a miss), build the per-execution loop frame, and drive
   [Interp.iterate_loop]. *)
and compile_iter_var gs env ~strict ~frz kind name body :
    ctx -> frame -> int -> value list -> unit =
  let lvl = R.new_level () in
  let var_plan =
    match kind with
    | Some (Ast.Let | Ast.Const) ->
        `Lexical (R.declare lvl name ~fixed:true ~frozen:false)
    | Some Ast.Var | None ->
        `Chain
          ( chain_ref (R.resolve_access env name) name,
            R.declare lvl name ~fixed:false ~frozen:false )
  in
  List.iter
    (fun n -> ignore (R.declare lvl n ~fixed:false ~frozen:false))
    (R.lexical_names [ body ]);
  let names = R.names lvl and frzn = R.frozen_names lvl in
  let bodyc = compile_stmt gs (lvl :: env) ~strict ~frz body in
  fun ctx fr sid items ->
    let lf = mk_frame names frzn (Some fr) in
    let r =
      match var_plan with
      | `Lexical slot ->
          let r = ref Undefined in
          set_slot lf slot r;
          r
      | `Chain (cref, slot) -> (
          match cref ctx fr with
          | Some r -> r
          | None ->
              let r = ref Undefined in
              set_slot lf slot r;
              r)
    in
    Interp.iterate_loop ctx sid items (fun v ->
        r := v;
        try bodyc ctx lf with Interp.Continue_exc None -> ())

(* Compile a function (or arrow) definition into a creation closure. The
   creation closure mirrors [Interp.make_function]'s allocation order
   exactly (Function object, then fresh .prototype); the call closure
   mirrors the [Js_closure] arm of [Interp.call_function] step for step
   (params, this, coverage, arguments object, var hoisting, function
   installs, depth accounting). Functions using features the slot
   representation cannot honour fall back to [Interp.make_function] over a
   bridge of the creation frame — a per-function, not per-program, deopt. *)
and compile_function gs env ~strict ~frz ~node_id (f : Ast.func) :
    ctx -> frame -> value =
  if R.func_deopts ~frozen:frz f then begin
    gs.gs_deopts <- gs.gs_deopts + 1;
    if f.Ast.is_arrow then fun ctx fr ->
      Interp.make_function ctx ~node_id ~strict ~this_lex:(Some ctx.cur_this) f
        (bridge_of ctx fr)
    else fun ctx fr ->
      Interp.make_function ctx ~node_id ~strict f (bridge_of ctx fr)
  end
  else begin
    let strict_f = strict || Interp.body_is_strict f.Ast.body in
    let chk_this = checkpoint gs Quirk.Q_strict_this_is_global in
    (* named function expressions (and declarations) see their own name as
       an immutable binding in a scope of its own *)
    let self, env, frz =
      match f.Ast.fname with
      | Some n when not f.Ast.is_arrow ->
          let lvl = R.new_level () in
          let slot = R.declare lvl n ~fixed:true ~frozen:true in
          (Some (slot, R.names lvl, R.frozen_names lvl), lvl :: env, n :: frz)
      | _ -> (None, env, frz)
    in
    let flevel = R.new_level () in
    let param_slots =
      List.map (fun p -> R.declare flevel p ~fixed:true ~frozen:false) f.Ast.params
    in
    let this_slot = R.declare flevel "this" ~fixed:true ~frozen:false in
    let arguments_slot =
      if f.Ast.is_arrow then None
      else Some (R.declare flevel "arguments" ~fixed:true ~frozen:false)
    in
    let vars, funcs = R.hoisted f.Ast.body in
    let var_slots =
      List.filter_map
        (fun n ->
          if R.find flevel n <> None then None (* param/arguments: kept *)
          else Some (R.declare flevel n ~fixed:true ~frozen:false))
        vars
    in
    let func_slots =
      List.map
        (fun ((_, fj) : int * Ast.func) ->
          let fname = Option.value fj.Ast.fname ~default:"" in
          R.declare flevel fname ~fixed:true ~frozen:false)
        funcs
    in
    List.iter
      (fun n -> ignore (R.declare flevel n ~fixed:false ~frozen:false))
      (R.lexical_names f.Ast.body);
    let benv = flevel :: env in
    let fcreates =
      List.map2
        (fun ((sid, fj) : int * Ast.func) slot ->
          (slot, compile_function gs benv ~strict:strict_f ~frz ~node_id:sid fj))
        funcs func_slots
    in
    let body_code = List.map (compile_stmt gs benv ~strict:strict_f ~frz) f.Ast.body in
    let fnames = R.names flevel and ffrz = R.frozen_names flevel in
    let fname = match f.Ast.fname with Some n -> n | None -> "" in
    let params = f.Ast.params in
    let nparams = List.length params in
    let is_arrow = f.Ast.is_arrow in
    fun ctx fr ->
      let o = make_obj ~oclass:"Function" ~proto:(proto_of ctx "Function") () in
      let parent_fr, binding =
        match self with
        | Some (slot, snames, sfrz) ->
            let sf = mk_frame snames sfrz (Some fr) in
            let r = ref Undefined in
            sf.slots.(slot) <- r;
            (sf, Some r)
        | None -> (fr, None)
      in
      let lex_this = if is_arrow then Some ctx.cur_this else None in
      let co_call ctx this args =
        (* caller ([Interp.call_function]) already burned 2 and checked
           the stack depth *)
        let frm = mk_frame fnames ffrz (Some parent_fr) in
        List.iteri
          (fun i slot ->
            let v =
              match List.nth_opt args i with Some v -> v | None -> Undefined
            in
            set_slot frm slot (ref v))
          param_slots;
        let this_v =
          match lex_this with
          | Some lexical -> lexical
          | None -> (
              match this with
              | Undefined | Null ->
                  if strict_f then
                    if chk_this ctx then Obj ctx.global else Undefined
                  else Obj ctx.global
              | v -> v)
        in
        set_slot frm this_slot (ref this_v);
        let saved_this = ctx.cur_this in
        ctx.cur_this <- this_v;
        Interp.cov_func ctx node_id;
        (match arguments_slot with
        | Some aslot ->
            let argobj = Ops.make_array ctx args in
            argobj.oclass <- "Arguments";
            set_slot frm aslot (ref (Obj argobj))
        | None -> ());
        List.iter (fun slot -> set_slot frm slot (ref Undefined)) var_slots;
        List.iter
          (fun (slot, mk) -> set_slot frm slot (ref (mk ctx frm)))
          fcreates;
        ctx.depth <- ctx.depth + 1;
        try
          let r =
            try
              List.iter (fun sc -> sc ctx frm) body_code;
              Undefined
            with Interp.Return_exc v -> v
          in
          ctx.depth <- ctx.depth - 1;
          ctx.cur_this <- saved_this;
          r
        with e ->
          ctx.depth <- ctx.depth - 1;
          ctx.cur_this <- saved_this;
          raise e
      in
      o.call <- Some (Compiled { co_name = fname; co_params = params; co_call });
      set_own o "length"
        (mkprop ~writable:false ~enumerable:false ~configurable:true
           (Num (Float.of_int nparams)));
      set_own o "name"
        (mkprop ~writable:false ~enumerable:false ~configurable:true (Str fname));
      if not is_arrow then begin
        let pr = make_obj ~oclass:"Object" ~proto:(proto_of ctx "Object") () in
        set_own pr "constructor" (mkprop ~enumerable:false (Obj o));
        set_own o "prototype" (mkprop ~enumerable:false (Obj pr))
      end;
      let v = Obj o in
      (match binding with Some r -> r := v | None -> ());
      v
  end

(* --- program entry --- *)

type t = {
  cp_run : Value.ctx -> Value.value;
      (** execute; returns the completion value like [Interp.exec_in_scope] *)
  cp_slotted : bool;  (** false: the whole program deopted to the tree *)
  cp_deopt_fns : int; (** function definition sites that deopted *)
  cp_folded : int;
      (** compiled deviation checkpoints folded away as statically
          unreachable (0 when compiled without a reach set) *)
  cp_shadows_specials : bool;
}

(* The deviation checkpoints compiled inline (everything else funnels
   through [Interp]/[Ops]/builtin code shared with the tree-walker, where
   the consultations stay as written). Only these are fold candidates, and
   only these are what a specialisation cell can bake in. *)
let compiled_checkpoint_list =
  [
    Quirk.Q_named_funcexpr_binding_mutable;
    Quirk.Q_codegen_neg_zero_positive;
    Quirk.Q_opt_loop_strconcat_drops;
    Quirk.Q_bool_prop_appends_to_array;
    Quirk.Q_strict_this_is_global;
  ]

let compiled_checkpoints = Quirk.Set.of_list compiled_checkpoint_list

(* Projection of a quirk set onto the inline-compiled checkpoints, packed
   into an int. Two specialisation cells with equal keys compile to
   observably identical closures (the inline sites are the only thing a
   cell specialises), so callers cache one compilation per key — one or
   two per case in practice, not one per equivalence cell. *)
let cell_key (c : Quirk.Set.t) : int =
  let rec go i acc = function
    | [] -> acc
    | q :: rest ->
        go (i + 1) (if Quirk.Set.mem q c then acc lor (1 lsl i) else acc) rest
  in
  go 0 0 compiled_checkpoint_list

let compile ?reach ?cell (prog : Ast.program) : t =
  let folded =
    match reach with
    | None -> Quirk.Set.empty
    | Some s -> Quirk.Set.diff compiled_checkpoints s
  in
  let shadows = Interp.binds_specials prog in
  if R.program_deopts prog then
    {
      cp_run = (fun ctx -> Interp.exec_program ctx prog);
      cp_slotted = false;
      cp_deopt_fns = 0;
      cp_folded = 0;
      cp_shadows_specials = shadows;
    }
  else begin
    let strict = prog.Ast.prog_strict in
    if cell <> None then Atomic.incr specialized;
    let gs = { gs_deopts = 0; gs_folded = folded; gs_cell = cell } in
    let plevel = R.new_level () in
    let vars, funcs = R.hoisted prog.Ast.prog_body in
    let var_slots =
      List.filter_map
        (fun n ->
          if R.find plevel n <> None then None
          else Some (R.declare plevel n ~fixed:true ~frozen:false))
        vars
    in
    let func_slots =
      List.map
        (fun ((_, fj) : int * Ast.func) ->
          let fname = Option.value fj.Ast.fname ~default:"" in
          R.declare plevel fname ~fixed:true ~frozen:false)
        funcs
    in
    List.iter
      (fun n -> ignore (R.declare plevel n ~fixed:false ~frozen:false))
      (R.lexical_names prog.Ast.prog_body);
    let env = [ plevel ] in
    let fcreates =
      List.map2
        (fun ((sid, fj) : int * Ast.func) slot ->
          (slot, compile_function gs env ~strict ~frz:[] ~node_id:sid fj))
        funcs func_slots
    in
    (* top-level statement list tracks the completion value of expression
       statements, as [Interp.exec_in_scope] does *)
    let body =
      List.map
        (fun (st : Ast.stmt) ->
          match st.Ast.s with
          | Ast.Expr_stmt x ->
              `Completion (st, compile_expr gs env ~strict ~frz:[] x)
          | _ -> `Stmt (compile_stmt gs env ~strict ~frz:[] st))
        prog.Ast.prog_body
    in
    let pnames = R.names plevel and pfrz = R.frozen_names plevel in
    let run ctx =
      ctx.slotted <- true;
      if shadows && not ctx.specials_shadowed then ctx.specials_shadowed <- true;
      let saved_this = ctx.cur_this in
      ctx.cur_this <-
        (match Hashtbl.find_opt ctx.global_scope.bindings "this" with
        | Some r -> !r
        | None -> Obj ctx.global);
      Fun.protect
        ~finally:(fun () -> ctx.cur_this <- saved_this)
        (fun () ->
          let pf = mk_frame pnames pfrz None in
          List.iter (fun slot -> set_slot pf slot (ref Undefined)) var_slots;
          List.iter
            (fun (slot, mk) -> set_slot pf slot (ref (mk ctx pf)))
            fcreates;
          let completion = ref Undefined in
          List.iter
            (fun item ->
              match item with
              | `Completion ((st : Ast.stmt), xc) ->
                  burn ctx 1;
                  Interp.cov_stmt ctx st;
                  completion := xc ctx pf
              | `Stmt sc -> sc ctx pf)
            body;
          !completion)
    in
    {
      cp_run = run;
      cp_slotted = true;
      cp_deopt_fns = gs.gs_deopts;
      cp_folded = Quirk.Set.cardinal folded;
      cp_shadows_specials = shadows;
    }
  end

let run (t : t) ctx = t.cp_run ctx
