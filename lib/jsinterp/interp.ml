(* The evaluator: statements, expressions, calls, and scope management.

   One instance of this module implements all ten simulated engines; the
   behavioural differences come exclusively from the quirk set and parser
   options carried by the context. Execution is metered by a fuel budget
   ([Value.burn]) standing in for wall-clock time. *)

open Value
module Ast = Jsast.Ast

exception Return_exc of value
exception Break_exc of string option
exception Continue_exc of string option

let new_scope parent =
  { bindings = Hashtbl.create 8; parent = Some parent; frozen_names = [] }

let rec lookup (scope : scope) (name : string) : value ref option =
  match Hashtbl.find_opt scope.bindings name with
  | Some r -> Some r
  | None -> ( match scope.parent with Some p -> lookup p name | None -> None)

let rec scope_of_binding (scope : scope) (name : string) : scope option =
  if Hashtbl.mem scope.bindings name then Some scope
  else match scope.parent with Some p -> scope_of_binding p name | None -> None

(* --- identifier fallbacks, shared between the tree-walker and the
   slot-compiled path ([Compile]): what happens once the scope chain is
   exhausted --- *)

let ident_read_miss ctx (name : string) : value =
  if Ops.has_property ctx ctx.global name then Ops.get_obj ctx ctx.global name
  else Ops.reference_error ctx (name ^ " is not defined")

let ident_typeof_miss ctx (name : string) : value =
  if Ops.has_property ctx ctx.global name then
    Str (type_of (Ops.get_obj ctx ctx.global name))
  else Str "undefined"

(* Assignment to a bare identifier, resolved against a live scope chain.
   The whole [Ident] arm of [assign_to] lives here so the compiled path's
   dynamic fallback (which targets [ctx.global_scope]) shares it. *)
let assign_ident ctx (scope : scope) strict (name : string) (v : value) : unit =
  match scope_of_binding scope name with
  | Some s ->
      if List.mem name s.frozen_names then begin
        if fire ctx Quirk.Q_named_funcexpr_binding_mutable then
          (match Hashtbl.find_opt s.bindings name with
          | Some r -> r := v
          | None -> ())
        else if strict then
          Ops.type_error ctx ("assignment to constant variable " ^ name)
        (* sloppy: silent no-op *)
      end
      else (
        match Hashtbl.find_opt s.bindings name with
        | Some r -> r := v
        | None -> ())
  | None ->
      if Ops.has_property ctx ctx.global name then
        Ops.set_obj ctx ~strict ctx.global name v
      else if strict then
        if fire ctx Quirk.Q_strict_undeclared_assign_silent then
          Ops.set_obj ctx ~strict:false ctx.global name v
        else Ops.reference_error ctx (name ^ " is not defined")
      else Ops.set_obj ctx ~strict:false ctx.global name v

(* --- do any binder positions shadow [undefined]/[NaN]/[Infinity]? ---

   When no executed program binds one of those names anywhere, their
   identifier arms in [eval] can return the constant without walking the
   scope chain (the global-object properties carry the same values and are
   non-writable). One pre-pass per executed program, monotone across
   [eval]: once shadowed, stay conservative. *)

exception Found_special

let check_special n =
  match n with
  | "undefined" | "NaN" | "Infinity" -> raise Found_special
  | _ -> ()

let rec specials_stmt (st : Ast.stmt) =
  match st.Ast.s with
  | Ast.Expr_stmt x | Ast.Throw x -> specials_expr x
  | Ast.Var_decl (_, decls) ->
      List.iter
        (fun (n, i) ->
          check_special n;
          Option.iter specials_expr i)
        decls
  | Ast.Func_decl f -> specials_func f
  | Ast.Return x -> Option.iter specials_expr x
  | Ast.If (c, t, f) ->
      specials_expr c;
      specials_stmt t;
      Option.iter specials_stmt f
  | Ast.Block body -> List.iter specials_stmt body
  | Ast.For (init, c, u, body) ->
      (match init with
      | Some (Ast.FI_decl (_, decls)) ->
          List.iter
            (fun (n, i) ->
              check_special n;
              Option.iter specials_expr i)
            decls
      | Some (Ast.FI_expr x) -> specials_expr x
      | None -> ());
      Option.iter specials_expr c;
      Option.iter specials_expr u;
      specials_stmt body
  | Ast.For_in (_, n, o, body) | Ast.For_of (_, n, o, body) ->
      check_special n;
      specials_expr o;
      specials_stmt body
  | Ast.While (c, body) ->
      specials_expr c;
      specials_stmt body
  | Ast.Do_while (body, c) ->
      specials_stmt body;
      specials_expr c
  | Ast.Labeled (_, body) -> specials_stmt body
  | Ast.Try (b, h, f) ->
      List.iter specials_stmt b;
      Option.iter
        (fun (p, hb) ->
          check_special p;
          List.iter specials_stmt hb)
        h;
      Option.iter (List.iter specials_stmt) f
  | Ast.Switch (d, cases) ->
      specials_expr d;
      List.iter
        (fun (c, b) ->
          Option.iter specials_expr c;
          List.iter specials_stmt b)
        cases
  | Ast.Break _ | Ast.Continue _ | Ast.Empty | Ast.Debugger -> ()

and specials_func (f : Ast.func) =
  Option.iter check_special f.Ast.fname;
  List.iter check_special f.Ast.params;
  List.iter specials_stmt f.Ast.body

and specials_expr (x : Ast.expr) =
  match x.Ast.e with
  | Ast.Lit _ | Ast.Ident _ | Ast.This -> ()
  | Ast.Array_lit elems -> List.iter (Option.iter specials_expr) elems
  | Ast.Object_lit props ->
      List.iter
        (fun (pn, v) ->
          (match pn with Ast.PN_computed e -> specials_expr e | _ -> ());
          specials_expr v)
        props
  | Ast.Func f | Ast.Arrow f -> specials_func f
  | Ast.Unary (_, e) -> specials_expr e
  | Ast.Binary (_, a, b) | Ast.Logical (_, a, b) | Ast.Seq (a, b) ->
      specials_expr a;
      specials_expr b
  | Ast.Assign (_, l, r) ->
      specials_expr l;
      specials_expr r
  | Ast.Update (_, _, t) -> specials_expr t
  | Ast.Cond (c, t, f) ->
      specials_expr c;
      specials_expr t;
      specials_expr f
  | Ast.Call (f, args) | Ast.New (f, args) ->
      specials_expr f;
      List.iter specials_expr args
  | Ast.Member (o, p) ->
      specials_expr o;
      (match p with Ast.Pindex e -> specials_expr e | Ast.Pfield _ -> ())
  | Ast.Template parts ->
      List.iter
        (function Ast.Tsub e -> specials_expr e | Ast.Tstr _ -> ())
        parts

let binds_specials (prog : Ast.program) : bool =
  match List.iter specials_stmt prog.Ast.prog_body with
  | () -> false
  | exception Found_special -> true

(* --- hoisting: [var] and function declarations are function-scoped.
   The traversal itself is shared with the scope resolver (see
   [Jsast.Visit.hoist_stmt]) so the analyses and the engine agree on
   binding structure by construction. --- *)

let hoist_stmt = Jsast.Visit.hoist_stmt

(* --- coverage helpers --- *)

let cov_stmt ctx (st : Ast.stmt) =
  match ctx.coverage with
  | Some c -> Coverage.record_stmt c st.Ast.sid
  | None -> ()

let cov_branch ctx id arm =
  match ctx.coverage with
  | Some c -> Coverage.record_branch c id arm
  | None -> ()

let cov_func ctx id =
  match ctx.coverage with Some c -> Coverage.record_func c id | None -> ()

(* --- closures --- *)

let make_function ctx ?(name = "") ?(this_lex = None) ?(node_id = 0) ~strict
    (f : Ast.func) (scope : scope) : value =
  let o = make_obj ~oclass:"Function" ~proto:(proto_of ctx "Function") () in
  let fname = match f.Ast.fname with Some n -> n | None -> name in
  (* named function expressions see their own name as an immutable binding *)
  let fn_scope, binding =
    match f.Ast.fname with
    | Some n when not f.Ast.is_arrow ->
        let s = new_scope scope in
        let r = ref Undefined in
        Hashtbl.replace s.bindings n r;
        s.frozen_names <- [ n ];
        (s, Some r)
    | _ -> (scope, None)
  in
  o.call <-
    Some
      (Js_closure
         {
           cl_name = fname;
           cl_params = f.Ast.params;
           cl_body = f.Ast.body;
           cl_scope = fn_scope;
           cl_this = this_lex;
           cl_strict = strict;
           cl_binding = binding;
           cl_node_id = node_id;
         });
  set_own o "length"
    (mkprop ~writable:false ~enumerable:false ~configurable:true
       (Num (Float.of_int (List.length f.Ast.params))));
  set_own o "name"
    (mkprop ~writable:false ~enumerable:false ~configurable:true (Str fname));
  (* ordinary functions get a fresh .prototype for [new] *)
  if not f.Ast.is_arrow then begin
    let pr = make_obj ~oclass:"Object" ~proto:(proto_of ctx "Object") () in
    set_own pr "constructor" (mkprop ~enumerable:false (Obj o));
    set_own o "prototype" (mkprop ~enumerable:false (Obj pr))
  end;
  let v = Obj o in
  (match binding with Some r -> r := v | None -> ());
  v

(* Detect a "use strict" directive at the start of a function body. *)
let body_is_strict (body : Ast.stmt list) =
  match body with
  | { Ast.s = Ast.Expr_stmt { Ast.e = Ast.Lit (Ast.Lstr "use strict"); _ }; _ } :: _ ->
      true
  | _ -> false

let rec call_function ctx (fn : value) (this : value) (args : value list) : value =
  burn ctx 2;
  if ctx.depth > 2000 then
    Ops.range_error ctx "Maximum call stack size exceeded";
  match fn with
  | Obj ({ call = Some (Native (_, _, impl)); _ } as _o) -> impl ctx this args
  | Obj ({ call = Some (Compiled co); _ } as _o) -> co.co_call ctx this args
  | Obj ({ call = Some (Js_closure cl); _ } as _o) ->
      let scope =
        { bindings = Hashtbl.create 8; parent = Some cl.cl_scope; frozen_names = [] }
      in
      let strict = cl.cl_strict || body_is_strict cl.cl_body in
      (* bind parameters *)
      List.iteri
        (fun i p ->
          let v = match List.nth_opt args i with Some v -> v | None -> Undefined in
          Hashtbl.replace scope.bindings p (ref v))
        cl.cl_params;
      (* [this] *)
      let this_v =
        match cl.cl_this with
        | Some lexical -> lexical
        | None -> (
            match this with
            | Undefined | Null ->
                if strict then
                  if fire ctx Quirk.Q_strict_this_is_global then Obj ctx.global
                  else Undefined
                else Obj ctx.global
            | v -> v)
      in
      Hashtbl.replace scope.bindings "this" (ref this_v);
      let saved_this = ctx.cur_this in
      ctx.cur_this <- this_v;
      cov_func ctx cl.cl_node_id;
      (* [arguments] (not for arrows) *)
      (if cl.cl_this = None then
         let argobj = Ops.make_array ctx args in
         argobj.oclass <- "Arguments";
         Hashtbl.replace scope.bindings "arguments" (ref (Obj argobj)));
      (* hoist vars and function declarations *)
      hoist_stmt_list ctx scope strict cl.cl_body;
      ctx.depth <- ctx.depth + 1;
      let result =
        try
          let r =
            try
              exec_stmts ctx scope strict cl.cl_body;
              Undefined
            with Return_exc v -> v
          in
          ctx.depth <- ctx.depth - 1;
          ctx.cur_this <- saved_this;
          r
        with e ->
          ctx.depth <- ctx.depth - 1;
          ctx.cur_this <- saved_this;
          raise e
      in
      result
  | _ -> Ops.type_error ctx (Ops.to_string ctx fn ^ " is not a function")

and construct ctx (fn : value) (args : value list) : value =
  burn ctx 2;
  match fn with
  | Obj ({ call = Some _; _ } as fo) -> (
      let proto =
        match Ops.get_obj ctx fo "prototype" with
        | Obj p -> Obj p
        | _ -> proto_of ctx "Object"
      in
      let this = make_obj ~oclass:"Object" ~proto () in
      match fo.call with
      | Some (Native (_, _, impl)) -> (
          (* constructor natives build and return their own object *)
          match impl ctx (Obj this) args with
          | Obj _ as built -> built
          | _ -> Obj this)
      | Some (Js_closure _) | Some (Compiled _) -> (
          match call_function ctx fn (Obj this) args with
          | Obj _ as built -> built
          | _ -> Obj this)
      | None -> assert false)
  | _ -> Ops.type_error ctx "not a constructor"

and hoist_stmt_list ctx scope strict (body : Ast.stmt list) =
  let funcs = ref [] in
  List.iter
    (hoist_stmt
       ~on_var:(fun n ->
         if not (Hashtbl.mem scope.bindings n) then
           Hashtbl.replace scope.bindings n (ref Undefined))
       ~on_func:(fun sf -> funcs := sf :: !funcs))
    body;
  List.iter
    (fun ((sid, f) : int * Ast.func) ->
      let fname = Option.value f.Ast.fname ~default:"" in
      let v = make_function ctx ~node_id:sid ~strict f scope in
      Hashtbl.replace scope.bindings fname (ref v))
    (List.rev !funcs)

(* --- statements --- *)

and exec_stmts ctx scope strict stmts = List.iter (exec_stmt ctx scope strict) stmts

and exec_block ctx scope strict stmts =
  (* blocks open a fresh scope for let/const *)
  let s = new_scope scope in
  exec_stmts ctx s strict stmts

and exec_stmt ctx scope strict (st : Ast.stmt) : unit =
  burn ctx 1;
  cov_stmt ctx st;
  match st.Ast.s with
  | Ast.Expr_stmt x -> ignore (eval ctx scope strict x)
  | Ast.Var_decl (kind, decls) ->
      List.iter
        (fun (n, init) ->
          let v = match init with Some x -> eval ctx scope strict x | None -> Undefined in
          match kind with
          | Ast.Var -> (
              (* target the hoisted binding *)
              match lookup scope n with
              | Some r -> if init <> None then r := v
              | None -> Hashtbl.replace scope.bindings n (ref v))
          | Ast.Let | Ast.Const -> Hashtbl.replace scope.bindings n (ref v))
        decls
  | Ast.Func_decl _ -> () (* installed during hoisting *)
  | Ast.Return x ->
      let v = match x with Some x -> eval ctx scope strict x | None -> Undefined in
      raise (Return_exc v)
  | Ast.If (c, t, f) ->
      if Ops.to_boolean (eval ctx scope strict c) then begin
        cov_branch ctx st.Ast.sid 0;
        exec_stmt ctx scope strict t
      end
      else begin
        cov_branch ctx st.Ast.sid 1;
        match f with Some f -> exec_stmt ctx scope strict f | None -> ()
      end
  | Ast.Block body -> exec_block ctx scope strict body
  | Ast.For (init, cond, upd, body) ->
      let s = new_scope scope in
      (match init with
      | Some (Ast.FI_decl (kind, decls)) ->
          List.iter
            (fun (n, i) ->
              let v = match i with Some x -> eval ctx s strict x | None -> Undefined in
              match kind with
              | Ast.Var -> (
                  (* var is function-scoped: write the hoisted binding *)
                  match lookup scope n with
                  | Some r -> if i <> None then r := v
                  | None -> Hashtbl.replace s.bindings n (ref v))
              | Ast.Let | Ast.Const -> Hashtbl.replace s.bindings n (ref v))
            decls
      | Some (Ast.FI_expr x) -> ignore (eval ctx s strict x)
      | None -> ());
      run_loop ctx st.Ast.sid (fun () ->
          let go =
            match cond with
            | Some c -> Ops.to_boolean (eval ctx s strict c)
            | None -> true
          in
          if go then begin
            (try exec_stmt ctx s strict body with Continue_exc None -> ());
            (match upd with Some u -> ignore (eval ctx s strict u) | None -> ());
            true
          end
          else false)
  | Ast.While (c, body) ->
      run_loop ctx st.Ast.sid (fun () ->
          if Ops.to_boolean (eval ctx scope strict c) then begin
            (try exec_stmt ctx scope strict body with Continue_exc None -> ());
            true
          end
          else false)
  | Ast.Do_while (body, c) ->
      run_loop ctx st.Ast.sid (fun () ->
          (try exec_stmt ctx scope strict body with Continue_exc None -> ());
          Ops.to_boolean (eval ctx scope strict c))
  | Ast.For_in (kind, name, objx, body) ->
      let ov = eval ctx scope strict objx in
      let keys =
        match ov with
        | Obj o -> Ops.enum_keys ctx o
        | Str s -> List.init (String.length s) string_of_int
        | _ -> []
      in
      let s = new_scope scope in
      let r =
        match kind with
        | Some Ast.Var | None -> (
            match lookup scope name with
            | Some r -> r
            | None ->
                let r = ref Undefined in
                Hashtbl.replace s.bindings name r;
                r)
        | Some (Ast.Let | Ast.Const) ->
            let r = ref Undefined in
            Hashtbl.replace s.bindings name r;
            r
      in
      iterate_loop ctx st.Ast.sid
        (List.map (fun k -> Str k) keys)
        (fun v ->
          r := v;
          try exec_stmt ctx s strict body with Continue_exc None -> ())
  | Ast.For_of (kind, name, objx, body) ->
      let ov = eval ctx scope strict objx in
      let items =
        match ov with
        | Obj ({ arr = Some _; _ } as o) -> Ops.array_values o
        | Str str -> List.init (String.length str) (fun i -> Str (String.make 1 str.[i]))
        | _ -> Ops.type_error ctx "value is not iterable"
      in
      let s = new_scope scope in
      let r =
        match kind with
        | Some Ast.Var | None -> (
            match lookup scope name with
            | Some r -> r
            | None ->
                let r = ref Undefined in
                Hashtbl.replace s.bindings name r;
                r)
        | Some (Ast.Let | Ast.Const) ->
            let r = ref Undefined in
            Hashtbl.replace s.bindings name r;
            r
      in
      iterate_loop ctx st.Ast.sid items (fun v ->
          r := v;
          try exec_stmt ctx s strict body with Continue_exc None -> ())
  | Ast.Break l -> raise (Break_exc l)
  | Ast.Continue l -> raise (Continue_exc l)
  | Ast.Throw x -> raise (Js_throw (eval ctx scope strict x))
  | Ast.Try (body, handler, finalizer) ->
      let run_finally () =
        match finalizer with
        | Some f -> exec_block ctx scope strict f
        | None -> ()
      in
      (try
         exec_block ctx scope strict body;
         run_finally ()
       with
      | Js_throw v -> (
          match handler with
          | Some (param, hbody) ->
              let s = new_scope scope in
              Hashtbl.replace s.bindings param (ref v);
              (try exec_stmts ctx s strict hbody
               with e ->
                 run_finally ();
                 raise e);
              run_finally ()
          | None ->
              run_finally ();
              raise (Js_throw v))
      | e ->
          (* control-flow exceptions still run the finalizer *)
          run_finally ();
          raise e)
  | Ast.Switch (d, cases) ->
      let dv = eval ctx scope strict d in
      let s = new_scope scope in
      (* find the matching case (or default), then fall through *)
      let rec find i = function
        | [] -> (
            (* no case matched: retry looking for default *)
            match
              List.find_index (fun (c, _) -> c = None) cases
            with
            | Some di -> Some di
            | None -> None)
        | (Some c, _) :: rest ->
            if Ops.strict_equals dv (eval ctx s strict c) then Some i
            else find (i + 1) rest
        | (None, _) :: rest -> find (i + 1) rest
      in
      (match find 0 cases with
      | None -> ()
      | Some start -> (
          cov_branch ctx st.Ast.sid start;
          try
            List.iteri
              (fun i (_, body) ->
                if i >= start then exec_stmts ctx s strict body)
              cases
          with Break_exc None -> ()))
  | Ast.Labeled (label, inner) -> (
      try exec_stmt ctx scope strict inner with
      | Break_exc (Some l) when l = label -> ()
      | Continue_exc (Some l) when l = label -> ())
  | Ast.Empty | Ast.Debugger -> ()

(* Shared loop driver handling break, iteration counting for the optimizer
   quirks, and per-iteration fuel. *)
and run_loop ctx sid step =
  let saved_trip = ctx.loop_trip in
  ctx.loop_trip <- 0;
  let entered = ref false in
  (try
     while
       burn ctx 1;
       let continue_ = step () in
       if continue_ then begin
         entered := true;
         ctx.loop_trip <- ctx.loop_trip + 1
       end;
       continue_
     do
       ()
     done
   with Break_exc None -> ());
  cov_branch ctx sid (if !entered then 0 else 1);
  ctx.loop_trip <- saved_trip

and iterate_loop ctx sid items f =
  let saved_trip = ctx.loop_trip in
  ctx.loop_trip <- 0;
  (try
     List.iter
       (fun v ->
         burn ctx 1;
         ctx.loop_trip <- ctx.loop_trip + 1;
         f v)
       items
   with Break_exc None -> ());
  cov_branch ctx sid (if items <> [] then 0 else 1);
  ctx.loop_trip <- saved_trip

(* --- expressions --- *)

and eval ctx scope strict (x : Ast.expr) : value =
  burn ctx 1;
  match x.Ast.e with
  | Ast.Lit Ast.Lnull -> Null
  | Ast.Lit (Ast.Lbool b) -> Bool b
  | Ast.Lit (Ast.Lnum f) -> Num f
  | Ast.Lit (Ast.Lstr s) -> Str s
  | Ast.Lit (Ast.Lregexp (pat, flags)) -> make_regexp ctx pat flags
  | Ast.Ident "undefined" ->
      if not ctx.specials_shadowed then Undefined
      else (match lookup scope "undefined" with Some r -> !r | None -> Undefined)
  | Ast.Ident "NaN" ->
      if not ctx.specials_shadowed then Num Float.nan
      else (match lookup scope "NaN" with Some r -> !r | None -> Num Float.nan)
  | Ast.Ident "Infinity" ->
      if not ctx.specials_shadowed then Num Float.infinity
      else (
        match lookup scope "Infinity" with
        | Some r -> !r
        | None -> Num Float.infinity)
  | Ast.Ident name -> (
      match lookup scope name with
      | Some r -> !r
      | None -> ident_read_miss ctx name)
  | Ast.This ->
      (* kept current by [call_function]/[exec_in_scope]; scopes never bind
         "this" anywhere else, so this equals the chain-walk result *)
      ctx.cur_this
  | Ast.Array_lit elems ->
      let vals =
        List.map
          (function Some e -> eval ctx scope strict e | None -> Undefined)
          elems
      in
      Obj (Ops.make_array ctx vals)
  | Ast.Object_lit props ->
      let o = make_obj ~oclass:"Object" ~proto:(proto_of ctx "Object") () in
      List.iter
        (fun (pn, vx) ->
          let key =
            match pn with
            | Ast.PN_ident n -> n
            | Ast.PN_str s -> s
            | Ast.PN_num f -> Ops.number_to_string f
            | Ast.PN_computed e -> Ops.to_string ctx (eval ctx scope strict e)
          in
          let v = eval ctx scope strict vx in
          set_own o key (mkprop v))
        props;
      Obj o
  | Ast.Func f -> make_function ctx ~node_id:x.Ast.eid ~strict f scope
  | Ast.Arrow f ->
      make_function ctx ~node_id:x.Ast.eid ~strict
        ~this_lex:(Some ctx.cur_this) f scope
  | Ast.Unary (op, ox) -> eval_unary ctx scope strict op ox
  | Ast.Binary (op, a, b) -> eval_binary ctx scope strict op a b
  | Ast.Logical (op, a, b) -> (
      let va = eval ctx scope strict a in
      match op with
      | Ast.And ->
          if Ops.to_boolean va then begin
            cov_branch ctx x.Ast.eid 1;
            eval ctx scope strict b
          end
          else begin
            cov_branch ctx x.Ast.eid 0;
            va
          end
      | Ast.Or ->
          if Ops.to_boolean va then begin
            cov_branch ctx x.Ast.eid 0;
            va
          end
          else begin
            cov_branch ctx x.Ast.eid 1;
            eval ctx scope strict b
          end)
  | Ast.Assign (op, lhs, rhs) -> eval_assign ctx scope strict op lhs rhs
  | Ast.Update (op, prefix, target) ->
      let old = Ops.to_number ctx (eval_ref ctx scope strict target) in
      let nv = (match op with Ast.Incr -> old +. 1.0 | Ast.Decr -> old -. 1.0) in
      assign_to ctx scope strict target (Num nv);
      if prefix then Num nv else Num old
  | Ast.Cond (c, t, f) ->
      if Ops.to_boolean (eval ctx scope strict c) then begin
        cov_branch ctx x.Ast.eid 0;
        eval ctx scope strict t
      end
      else begin
        cov_branch ctx x.Ast.eid 1;
        eval ctx scope strict f
      end
  | Ast.Call (f, args) -> eval_call ctx scope strict f args
  | Ast.New (f, args) ->
      let fv = eval ctx scope strict f in
      let argv = List.map (eval ctx scope strict) args in
      construct ctx fv argv
  | Ast.Member (ox, prop) ->
      let ov = eval ctx scope strict ox in
      let key = member_key ctx scope strict prop in
      Ops.get ctx ov key
  | Ast.Seq (a, b) ->
      ignore (eval ctx scope strict a);
      eval ctx scope strict b
  | Ast.Template parts ->
      let buf = Buffer.create 16 in
      List.iter
        (function
          | Ast.Tstr s -> Buffer.add_string buf s
          | Ast.Tsub e -> Buffer.add_string buf (Ops.to_string ctx (eval ctx scope strict e)))
        parts;
      Str (Buffer.contents buf)

and eval_ref ctx scope strict (x : Ast.expr) : value =
  (* like eval but tolerates unresolvable identifiers for update/compound
     assignment targets — those still throw per spec, so just reuse eval *)
  eval ctx scope strict x

and member_key ctx scope strict (p : Ast.property) : string =
  match p with
  | Ast.Pfield n -> n
  | Ast.Pindex e -> Ops.to_string ctx (eval ctx scope strict e)

and eval_unary ctx scope strict op (ox : Ast.expr) : value =
  match op with
  | Ast.Utypeof -> (
      (* typeof tolerates unresolved identifiers *)
      match ox.Ast.e with
      | Ast.Ident name -> (
          match lookup scope name with
          | Some r -> Str (type_of !r)
          | None -> ident_typeof_miss ctx name)
      | _ -> Str (type_of (eval ctx scope strict ox)))
  | Ast.Udelete -> (
      match ox.Ast.e with
      | Ast.Member (o, prop) -> (
          let ov = eval ctx scope strict o in
          let key = member_key ctx scope strict prop in
          match ov with
          | Obj obj -> Bool (Ops.delete ctx ~strict obj key)
          | _ -> Bool true)
      | Ast.Ident name ->
          (* sloppy mode: deleting a global succeeds if configurable *)
          if Ops.has_own ctx ctx.global name then
            Bool (Ops.delete ctx ~strict ctx.global name)
          else Bool (lookup scope name = None)
      | _ ->
          ignore (eval ctx scope strict ox);
          Bool true)
  | Ast.Uvoid ->
      ignore (eval ctx scope strict ox);
      Undefined
  | Ast.Unot -> Bool (not (Ops.to_boolean (eval ctx scope strict ox)))
  | Ast.Uneg ->
      let f = Ops.to_number ctx (eval ctx scope strict ox) in
      let r = -.f in
      if r = 0.0 && fire ctx Quirk.Q_codegen_neg_zero_positive then Num 0.0
      else Num r
  | Ast.Uplus -> Num (Ops.to_number ctx (eval ctx scope strict ox))
  | Ast.Ubnot ->
      let i = Ops.to_int32 ctx (eval ctx scope strict ox) in
      Num (Int32.to_float (Int32.lognot i))

and eval_binary ctx scope strict op (ax : Ast.expr) (bx : Ast.expr) : value =
  let a = eval ctx scope strict ax in
  let b = eval ctx scope strict bx in
  apply_binop ctx op a b

and apply_binop ctx (op : Ast.binop) (a : value) (b : value) : value =
  match op with
  | Ast.Add -> Ops.add ctx a b
  | Ast.Sub -> Num (Ops.to_number ctx a -. Ops.to_number ctx b)
  | Ast.Mul -> Num (Ops.to_number ctx a *. Ops.to_number ctx b)
  | Ast.Div -> Num (Ops.to_number ctx a /. Ops.to_number ctx b)
  | Ast.Mod ->
      let x = Ops.to_number ctx a and y = Ops.to_number ctx b in
      let r = Float.rem x y in
      if fire ctx Quirk.Q_codegen_mod_sign_wrong && r <> 0.0 && (r < 0.0) <> (y < 0.0)
      then Num (r +. y) (* python-style sign: follows the divisor *)
      else Num r
  | Ast.Exp -> Num (Float.pow (Ops.to_number ctx a) (Ops.to_number ctx b))
  | Ast.Eq -> Bool (Ops.abstract_equals ctx a b)
  | Ast.Neq -> Bool (not (Ops.abstract_equals ctx a b))
  | Ast.StrictEq -> Bool (Ops.strict_equals a b)
  | Ast.StrictNeq -> Bool (not (Ops.strict_equals a b))
  | Ast.Lt -> Ops.relational ctx `Lt a b
  | Ast.Gt -> Ops.relational ctx `Gt a b
  | Ast.Le -> Ops.relational ctx `Le a b
  | Ast.Ge -> Ops.relational ctx `Ge a b
  | Ast.BitAnd -> Num (Int32.to_float (Int32.logand (Ops.to_int32 ctx a) (Ops.to_int32 ctx b)))
  | Ast.BitOr -> Num (Int32.to_float (Int32.logor (Ops.to_int32 ctx a) (Ops.to_int32 ctx b)))
  | Ast.BitXor -> Num (Int32.to_float (Int32.logxor (Ops.to_int32 ctx a) (Ops.to_int32 ctx b)))
  | Ast.Shl ->
      let x = Ops.to_int32 ctx a in
      let count = Float.to_int (Ops.to_uint32 ctx b) in
      if count >= 32 && fire ctx Quirk.Q_codegen_shift_count_unmasked then Num 0.0
      else Num (Int32.to_float (Int32.shift_left x (count land 31)))
  | Ast.Shr ->
      let x = Ops.to_int32 ctx a in
      let count = Float.to_int (Ops.to_uint32 ctx b) land 31 in
      Num (Int32.to_float (Int32.shift_right x count))
  | Ast.Ushr ->
      if fire ctx Quirk.Q_codegen_ushr_signed then
        let x = Ops.to_int32 ctx a in
        let count = Float.to_int (Ops.to_uint32 ctx b) land 31 in
        Num (Int32.to_float (Int32.shift_right x count))
      else
        let x = Ops.to_uint32 ctx a in
        let xi = Float.to_int x in
        let count = Float.to_int (Ops.to_uint32 ctx b) land 31 in
        Num (Float.of_int (xi lsr count))
  | Ast.Instanceof -> (
      match b with
      | Obj fo when fo.call <> None -> (
          match Ops.get_obj ctx fo "prototype" with
          | Obj proto ->
              let rec walk = function
                | Obj o -> o == proto || walk o.proto
                | _ -> false
              in
              Bool (match a with Obj ao -> walk ao.proto | _ -> false)
          | _ -> Ops.type_error ctx "function has non-object prototype")
      | _ -> Ops.type_error ctx "right-hand side of instanceof is not callable")
  | Ast.In -> (
      match b with
      | Obj o -> Bool (Ops.has_property ctx o (Ops.to_string ctx a))
      | _ -> Ops.type_error ctx "cannot use 'in' on non-object")

and eval_assign ctx scope strict op (lhs : Ast.expr) (rhs : Ast.expr) : value =
  let rv = eval ctx scope strict rhs in
  let v =
    match op with
    | None -> rv
    | Some bop ->
        let old = eval ctx scope strict lhs in
        let result = apply_binop ctx bop old rv in
        (* optimizer quirk: one [+=] string append is lost in a
           long-running loop (models a JIT tier-up miscompile) *)
        (match (result, bop) with
        | Str _, Ast.Add
          when ctx.loop_trip > 100 && ctx.strconcat_drop_armed
               && fire ctx Quirk.Q_opt_loop_strconcat_drops ->
            ctx.strconcat_drop_armed <- false;
            (* keep the old value: the append is dropped *)
            old
        | _ -> result)
        |> fun r -> r
  in
  assign_to ctx scope strict lhs v;
  v

and assign_to ctx scope strict (lhs : Ast.expr) (v : value) : unit =
  match lhs.Ast.e with
  | Ast.Ident name -> assign_ident ctx scope strict name v
  | Ast.Member (ox, prop) -> (
      let ov = eval ctx scope strict ox in
      (* QuickJS quirk (Listing 6): a boolean property key on an array
         appends the value as a new element *)
      match (ov, prop) with
      | Obj ({ arr = Some arr; _ } as o), Ast.Pindex ix -> (
          let kv = eval ctx scope strict ix in
          match kv with
          | Bool true when arr.ty = None && fire ctx Quirk.Q_bool_prop_appends_to_array ->
              Ops.array_store ctx o arr arr.alen v
          | _ -> Ops.set ctx ~strict ov (Ops.to_string ctx kv) v)
      | _ ->
          let key = member_key ctx scope strict prop in
          Ops.set ctx ~strict ov key v)
  | _ -> Ops.type_error ctx "invalid assignment target"

and eval_call ctx scope strict (fx : Ast.expr) (args : Ast.expr list) : value =
  (* method calls must pass the receiver as [this] *)
  match fx.Ast.e with
  | Ast.Member (ox, prop) ->
      let ov = eval ctx scope strict ox in
      let key = member_key ctx scope strict prop in
      let fv = Ops.get ctx ov key in
      if not (is_callable fv) then
        Ops.type_error ctx
          (Printf.sprintf "%s.%s is not a function" (type_of ov) key);
      let argv = List.map (eval ctx scope strict) args in
      call_function ctx fv ov argv
  | _ ->
      let fv = eval ctx scope strict fx in
      let argv = List.map (eval ctx scope strict) args in
      call_function ctx fv Undefined argv

and make_regexp ctx pat flags : value =
  match Regex.compile pat flags with
  | prog ->
      let o = make_obj ~oclass:"RegExp" ~proto:(proto_of ctx "RegExp") () in
      o.regex <- Some { rx_source = pat; rx_flags = flags; rx_prog = prog };
      set_own o "lastIndex" (mkprop ~enumerable:false ~configurable:false (Num 0.0));
      set_own o "source" (mkprop ~writable:false ~enumerable:false (Str pat));
      set_own o "flags" (mkprop ~writable:false ~enumerable:false (Str flags));
      set_own o "global" (mkprop ~writable:false ~enumerable:false (Bool prog.Regex.flag_g));
      Obj o
  | exception Regex.Parse_error msg ->
      Ops.syntax_error ctx ("invalid regular expression: " ^ msg)

(* --- program entry --- *)

(* Execute a program in a given scope. Used by [Run] for whole programs and
   by the [eval] builtin for eval code (which shares the caller's scope).
   Returns the completion value (last expression statement's value), which
   [eval] needs. *)
let exec_in_scope ctx scope ~strict (prog : Ast.program) : value =
  let strict = strict || prog.Ast.prog_strict in
  if (not ctx.specials_shadowed) && binds_specials prog then
    ctx.specials_shadowed <- true;
  let saved_this = ctx.cur_this in
  ctx.cur_this <-
    (match lookup scope "this" with Some r -> !r | None -> Obj ctx.global);
  Fun.protect
    ~finally:(fun () -> ctx.cur_this <- saved_this)
    (fun () ->
      hoist_stmt_list ctx scope strict prog.Ast.prog_body;
      let completion = ref Undefined in
      List.iter
        (fun (st : Ast.stmt) ->
          match st.Ast.s with
          | Ast.Expr_stmt x ->
              burn ctx 1;
              cov_stmt ctx st;
              completion := eval ctx scope strict x
          | _ -> exec_stmt ctx scope strict st)
        prog.Ast.prog_body;
      !completion)

let exec_program ctx (prog : Ast.program) : value =
  exec_in_scope ctx ctx.global_scope ~strict:prog.Ast.prog_strict prog
