(* Abstract operations of ECMA-262: coercions, equality, property access.

   This is where most conformance-relevant behaviour lives, and therefore
   where most quirk injection points sit. Every deviation is guarded by
   [Value.fire], which both tests whether the simulated engine carries the
   bug and records that the buggy path executed. *)

open Value

(* --- errors --- *)

let make_error ctx kind msg =
  let proto =
    (* each error constructor's prototype is registered under its name *)
    match List.assoc_opt kind ctx.protos with
    | Some o -> Obj o
    | None -> proto_of ctx "Error"
  in
  let o = make_obj ~oclass:"Error" ~proto () in
  set_own o "name" (mkprop ~enumerable:false (Str kind));
  set_own o "message" (mkprop ~enumerable:false (Str msg));
  Obj o

let throw_error ctx kind msg = raise (Js_throw (make_error ctx kind msg))
let type_error ctx msg = throw_error ctx "TypeError" msg
let range_error ctx msg = throw_error ctx "RangeError" msg
let reference_error ctx msg = throw_error ctx "ReferenceError" msg
let syntax_error ctx msg = throw_error ctx "SyntaxError" msg

(* --- number formatting (ToString applied to a Number) --- *)

let number_to_string (f : float) : string =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "Infinity"
  else if f = Float.neg_infinity then "-Infinity"
  else if f = 0.0 then "0" (* both zeros print "0" *)
  else if Float.is_integer f && Float.abs f < 1e21 then Printf.sprintf "%.0f" f
  else begin
    let rec try_prec p =
      if p > 17 then Printf.sprintf "%.17g" f
      else
        let s = Printf.sprintf "%.*g" p f in
        if float_of_string s = f then s else try_prec (p + 1)
    in
    let s = try_prec 1 in
    (* normalise exponent spelling to the JS style: 1e+21, 1.5e-7 *)
    match String.index_opt s 'e' with
    | None -> s
    | Some i ->
        let mant = String.sub s 0 i in
        let expo = String.sub s (i + 1) (String.length s - i - 1) in
        let sign, digits =
          if expo.[0] = '+' || expo.[0] = '-' then
            (String.make 1 expo.[0], String.sub expo 1 (String.length expo - 1))
          else ("+", expo)
        in
        let digits =
          let d = ref 0 in
          while !d < String.length digits - 1 && digits.[!d] = '0' do incr d done;
          String.sub digits !d (String.length digits - !d)
        in
        mant ^ "e" ^ sign ^ digits
  end

let digit_char d = if d < 10 then Char.chr (d + Char.code '0') else Char.chr (d - 10 + Char.code 'a')

(* Number.prototype.toString(radix) for radix <> 10; integer part exact,
   fraction to a few digits, matching what shells print for common cases. *)
let number_to_string_radix (f : float) (radix : int) : string =
  if Float.is_nan f then "NaN"
  else if f = Float.infinity then "Infinity"
  else if f = Float.neg_infinity then "-Infinity"
  else begin
    let neg = f < 0.0 in
    let f = Float.abs f in
    let ipart = Float.to_int (Float.trunc f) in
    let frac = f -. Float.trunc f in
    let buf = Buffer.create 16 in
    let rec int_digits i = if i > 0 then (int_digits (i / radix); Buffer.add_char buf (digit_char (i mod radix))) in
    if ipart = 0 then Buffer.add_char buf '0' else int_digits ipart;
    if frac > 0.0 then begin
      Buffer.add_char buf '.';
      let fr = ref frac in
      let steps = ref 0 in
      while !fr > 1e-10 && !steps < 20 do
        fr := !fr *. Float.of_int radix;
        let d = Float.to_int (Float.trunc !fr) in
        Buffer.add_char buf (digit_char d);
        fr := !fr -. Float.trunc !fr;
        incr steps
      done
    end;
    (if neg then "-" else "") ^ Buffer.contents buf
  end

(* --- string -> number (the ToNumber grammar) --- *)

let string_to_number (s : string) : float =
  let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '\x0b' || c = '\x0c' in
  let n = String.length s in
  let a = ref 0 and b = ref n in
  while !a < n && is_ws s.[!a] do incr a done;
  while !b > !a && is_ws s.[!b - 1] do decr b done;
  let t = String.sub s !a (!b - !a) in
  if t = "" then 0.0
  else if t = "Infinity" || t = "+Infinity" then Float.infinity
  else if t = "-Infinity" then Float.neg_infinity
  else if String.length t > 2 && t.[0] = '0' && (t.[1] = 'x' || t.[1] = 'X')
  then (
    match int_of_string_opt t with
    | Some v -> Float.of_int v
    | None -> Float.nan)
  else
    (* OCaml's float_of_string accepts forms JS rejects ("0x", "_", "nan"):
       validate against the JS decimal grammar first. *)
    let valid =
      let i = ref 0 in
      let len = String.length t in
      let digit () =
        let start = !i in
        while !i < len && t.[!i] >= '0' && t.[!i] <= '9' do incr i done;
        !i > start
      in
      (if !i < len && (t.[!i] = '+' || t.[!i] = '-') then incr i);
      let int_ok = digit () in
      let frac_ok =
        if !i < len && t.[!i] = '.' then (incr i; digit () || int_ok)
        else int_ok
      in
      let exp_ok =
        if frac_ok && !i < len && (t.[!i] = 'e' || t.[!i] = 'E') then begin
          incr i;
          (if !i < len && (t.[!i] = '+' || t.[!i] = '-') then incr i);
          digit ()
        end
        else frac_ok
      in
      exp_ok && !i = len
    in
    if not valid then Float.nan
    else match float_of_string_opt t with Some f -> f | None -> Float.nan

(* --- coercions --- *)

let to_boolean = function
  | Undefined | Null -> false
  | Bool b -> b
  | Num f -> not (Float.is_nan f || f = 0.0)
  | Str s -> s <> ""
  | Obj _ -> true

let rec to_primitive ctx (v : value) ~(hint : [ `Number | `String | `Default ]) : value =
  match v with
  | Obj o ->
      let order =
        match hint with
        | `String -> [ "toString"; "valueOf" ]
        | `Number | `Default -> [ "valueOf"; "toString" ]
      in
      let rec try_methods = function
        | [] -> type_error ctx "cannot convert object to primitive value"
        | m :: rest -> (
            match get_obj ctx o m with
            | Obj { call = Some _; _ } as fn -> (
                match ctx.call_hook ctx fn v [] with
                | Obj _ -> try_methods rest
                | prim -> prim)
            | _ -> try_methods rest)
      in
      try_methods order
  | prim -> prim

and to_number ctx (v : value) : float =
  match v with
  | Undefined -> Float.nan
  | Null -> 0.0
  | Bool b -> if b then 1.0 else 0.0
  | Num f -> f
  | Str s -> string_to_number s
  | Obj _ -> to_number ctx (to_primitive ctx v ~hint:`Number)

and to_string ctx (v : value) : string =
  match v with
  | Undefined -> "undefined"
  | Null -> "null"
  | Bool b -> if b then "true" else "false"
  | Num f -> number_to_string f
  | Str s -> s
  | Obj _ -> to_string ctx (to_primitive ctx v ~hint:`String)

(* ToInteger (ES2015 7.1.4): NaN -> 0, truncate toward zero. *)
and to_integer ctx v =
  let f = to_number ctx v in
  if Float.is_nan f then 0.0
  else if f = Float.infinity || f = Float.neg_infinity then f
  else Float.trunc f

and to_int32 ctx v =
  let f = to_number ctx v in
  if Float.is_nan f || Float.is_integer f = false && Float.abs f = Float.infinity then 0l
  else if Float.abs f = Float.infinity then 0l
  else Int32.of_float (Float.rem (Float.trunc f) 4294967296.0)

and to_uint32 ctx v =
  let i = Int32.to_int (to_int32 ctx v) in
  Float.of_int (if i < 0 then i + (1 lsl 32) else i)

and to_length ctx v =
  let f = to_integer ctx v in
  if f <= 0.0 then 0
  else if f >= 4294967295.0 then 4294967295 - 1
  else Float.to_int f

(* --- property access --- *)

and get ctx (v : value) (key : string) : value =
  burn ctx 1;
  match v with
  | Undefined -> type_error ctx (Printf.sprintf "cannot read property '%s' of undefined" key)
  | Null -> type_error ctx (Printf.sprintf "cannot read property '%s' of null" key)
  | Str s -> (
      if key = "length" then Num (Float.of_int (String.length s))
      else
        match array_index_of_key key with
        | Some i when i < String.length s -> Str (String.make 1 s.[i])
        | Some _ -> Undefined
        | None -> proto_get ctx (proto_of ctx "String") key v)
  | Num _ -> proto_get ctx (proto_of ctx "Number") key v
  | Bool _ -> proto_get ctx (proto_of ctx "Boolean") key v
  | Obj o -> get_obj ctx o key

and proto_get ctx proto key _receiver =
  match proto with
  | Obj p -> get_obj ctx p key
  | _ -> Undefined

and get_obj ctx (o : obj) (key : string) : value =
  (* array-backed storage first *)
  match o.arr with
  | Some arr when key = "length" -> Num (Float.of_int arr.alen)
  | Some arr -> (
      match array_index_of_key key with
      | Some i -> if i < arr.alen then arr.elems.(i) else Undefined
      | None -> get_plain ctx o key)
  | None -> (
      match o.prim with
      | Some (Str s) -> (
          if key = "length" then Num (Float.of_int (String.length s))
          else
            match array_index_of_key key with
            | Some i when i < String.length s -> Str (String.make 1 s.[i])
            | _ -> get_plain ctx o key)
      | _ -> get_plain ctx o key)

and get_plain ctx (o : obj) (key : string) : value =
  match find_own o key with
  | Some p -> (
      match p.getter with
      | Some g when is_callable g -> ctx.call_hook ctx g (Obj o) []
      | _ -> p.v)
  | None -> (
      match o.proto with
      | Obj parent -> get_obj ctx parent key
      | _ -> Undefined)

and has_property ctx (o : obj) (key : string) : bool =
  match o.arr with
  | Some _ when key = "length" -> true
  | Some arr when (match array_index_of_key key with Some i -> i < arr.alen | None -> false) -> true
  | _ -> (
      match find_own o key with
      | Some _ -> true
      | None -> (
          match o.proto with Obj parent -> has_property ctx parent key | _ -> false))

and has_own ctx (o : obj) (key : string) : bool =
  ignore ctx;
  match o.arr with
  | Some arr -> (
      key = "length"
      || (match array_index_of_key key with
         | Some i -> i < arr.alen
         | None -> find_own o key <> None))
  | None -> find_own o key <> None

(* Growable dense element store. *)
and array_store ctx (o : obj) (arr : arr) (i : int) (v : value) : unit =
  barrier o;
  (match arr.ty with
  | Some ty ->
      (* typed arrays never grow; OOB writes are dropped (or crash, under
         the memory-safety quirk) *)
      if i >= arr.alen then begin
        if fire ctx Quirk.Q_typedarray_oob_write_crash then
          raise (Engine_crash "typed array out-of-bounds store");
        ()
      end
      else arr.elems.(i) <- coerce_typed ctx ty v
  | None ->
      if i >= Array.length arr.elems then begin
        let cap = max 8 (max (i + 1) (2 * Array.length arr.elems)) in
        (* cap the dense allocation so generated monster indices don't OOM
           the host; beyond it, treat as a plain property *)
        if i > 10_000_000 then type_error ctx "array index too large for this engine model"
        else begin
          let n = Array.make cap Undefined in
          Array.blit arr.elems 0 n 0 (Array.length arr.elems);
          arr.elems <- n
        end
      end;
      if i >= arr.alen then arr.alen <- i + 1;
      (* Hermes relocation model: writing below every previously-written
         index relocates the array — cost proportional to its length. *)
      if i < arr.min_written then begin
        if fire ctx Quirk.Q_array_reverse_fill_quadratic then burn ctx (arr.alen / 4 + 1);
        arr.min_written <- i
      end
      else if arr.min_written = max_int then arr.min_written <- i;
      arr.elems.(i) <- v);
  ignore o

and coerce_typed ctx (ty : typed_kind) (v : value) : value =
  let f = to_number ctx v in
  let wrap bits signed =
    let m = 1 lsl bits in
    if Float.is_nan f || Float.abs f = Float.infinity then Num 0.0
    else
      let i = Float.to_int (Float.trunc f) in
      let i = ((i mod m) + m) mod m in
      let i = if signed && i >= m / 2 then i - m else i in
      Num (Float.of_int i)
  in
  match ty with
  | U8 -> wrap 8 false
  | I8 -> wrap 8 true
  | U16 -> wrap 16 false
  | I16 -> wrap 16 true
  | U32 -> wrap 32 false
  | I32 -> wrap 32 true
  | F32 -> Num (if Float.is_nan f then Float.nan else Int32.float_of_bits (Int32.bits_of_float f))
  | F64 -> Num f
  | U8C ->
      if fire ctx Quirk.Q_uint8clamped_wraps then wrap 8 false
      else if Float.is_nan f then Num 0.0
      else Num (Float.min 255.0 (Float.max 0.0 (Float.round f)))

and set_array_length ctx (o : obj) (arr : arr) (v : value) ~strict : unit =
  barrier o;
  if not arr.length_writable then begin
    if strict then type_error ctx "cannot assign to read only property 'length'"
  end
  else begin
    let f = to_uint32 ctx v in
    let n = Float.to_int f in
    if Float.of_int n <> to_number ctx v then range_error ctx "invalid array length";
    if n < arr.alen then begin
      (* truncate *)
      if n < Array.length arr.elems then
        Array.fill arr.elems n (Array.length arr.elems - n) Undefined;
      arr.alen <- n
    end
    else arr.alen <- n
  end

and set ctx ~strict (target : value) (key : string) (v : value) : unit =
  burn ctx 1;
  match target with
  | Undefined | Null ->
      type_error ctx (Printf.sprintf "cannot set property '%s' of %s" key (type_of target))
  | Str _ | Num _ | Bool _ ->
      (* property sets on primitives are silently dropped (sloppy) or throw
         (strict) *)
      if strict then type_error ctx "cannot create property on primitive"
  | Obj o -> set_obj ctx ~strict o key v

and set_obj ctx ~strict (o : obj) (key : string) (v : value) : unit =
  match o.arr with
  | Some arr when key = "length" && arr.ty = None -> set_array_length ctx o arr v ~strict
  | Some arr -> (
      match array_index_of_key key with
      | Some i ->
          if (not o.extensible) && arr.ty = None && i >= arr.alen then
            (if strict then type_error ctx "cannot add element to non-extensible array")
          else if not arr.length_writable && arr.ty = None && i >= arr.alen then
            (* frozen/sealed array: length fixed *)
            (if strict then type_error ctx "cannot add property, array is sealed")
          else if (not (frozen_elements o)) || fire ctx Quirk.Q_freeze_array_elements_writable
          then array_store ctx o arr i v
          else if strict then
            type_error ctx (Printf.sprintf "cannot assign to read only element %d" i)
      | None -> set_plain ctx ~strict o key v)
  | None -> set_plain ctx ~strict o key v

and frozen_elements (o : obj) =
  match find_own o "__frozenElems" with Some _ -> true | None -> false

and set_plain ctx ~strict (o : obj) (key : string) (v : value) : unit =
  match find_own o key with
  | Some p ->
      if p.writable then begin
        barrier o;
        p.v <- v
      end
      else if strict then
        type_error ctx (Printf.sprintf "cannot assign to read only property '%s'" key)
  | None -> (
      (* setter-less prototype walk: a non-writable prototype prop blocks *)
      let rec proto_blocks (pv : value) =
        match pv with
        | Obj parent -> (
            match find_own parent key with
            | Some p -> not p.writable
            | None -> proto_blocks parent.proto)
        | _ -> false
      in
      if proto_blocks o.proto then (
        if strict then
          type_error ctx (Printf.sprintf "cannot assign to read only property '%s'" key))
      else if not o.extensible then (
        if strict then
          type_error ctx (Printf.sprintf "cannot add property '%s', object is not extensible" key))
      else set_own o key (mkprop v))

and delete ctx ~strict (o : obj) (key : string) : bool =
  burn ctx 1;
  match o.arr with
  | Some _ when key = "length" -> false
  | Some arr when (match array_index_of_key key with Some i -> i < arr.alen | None -> false) ->
      let i = Option.get (array_index_of_key key) in
      barrier o;
      arr.elems.(i) <- Undefined;
      true
  | _ -> (
      match find_own o key with
      | None -> true
      | Some p ->
          if p.configurable || fire ctx Quirk.Q_delete_nonconfigurable_succeeds then begin
            remove_own o key;
            true
          end
          else if strict then
            type_error ctx (Printf.sprintf "cannot delete property '%s'" key)
          else false)

(* enumerable own keys, insertion-ordered, elements first (integer order) —
   the modern property order. *)
and enum_keys ctx (o : obj) : string list =
  ignore ctx;
  let elem_keys =
    match o.arr with
    | Some arr ->
        let ks = ref [] in
        for i = arr.alen - 1 downto 0 do
          if arr.elems.(i) <> Undefined || arr.ty <> None then ks := string_of_int i :: !ks
        done;
        !ks
    | None -> []
  in
  let named =
    List.filter_map
      (fun (k, p) -> if p.enumerable && not (String.length k > 1 && k.[0] = '_' && k.[1] = '_') then Some k else None)
      o.props
  in
  elem_keys @ named

(* --- equality and relational operators --- *)

and strict_equals (a : value) (b : value) : bool =
  match (a, b) with
  | Undefined, Undefined | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Num x, Num y -> x = y (* NaN <> NaN, +0 = -0: float equality matches *)
  | Str x, Str y -> String.equal x y
  | Obj x, Obj y -> x == y
  | _ -> false

and abstract_equals ctx (a : value) (b : value) : bool =
  match (a, b) with
  | Undefined, Null | Null, Undefined ->
      not (fire ctx Quirk.Q_codegen_null_eq_undefined_false)
  | Num _, Num _ | Str _, Str _ | Bool _, Bool _ | Obj _, Obj _
  | Undefined, Undefined | Null, Null ->
      strict_equals a b
  | Num x, Str s -> x = string_to_number s
  | Str s, Num x -> string_to_number s = x
  | Bool _, _ -> abstract_equals ctx (Num (to_number ctx a)) b
  | _, Bool _ -> abstract_equals ctx a (Num (to_number ctx b))
  | (Num _ | Str _), Obj _ -> abstract_equals ctx a (to_primitive ctx b ~hint:`Default)
  | Obj _, (Num _ | Str _) -> abstract_equals ctx (to_primitive ctx a ~hint:`Default) b
  | _ -> false

(* Abstract Relational Comparison; [swap] handles > and <= mirroring. *)
and relational ctx (op : [ `Lt | `Gt | `Le | `Ge ]) (a : value) (b : value) : value =
  let pa = to_primitive ctx a ~hint:`Number in
  let pb = to_primitive ctx b ~hint:`Number in
  let cmp x y =
    match (x, y) with
    | Str s1, Str s2 when not (fire ctx Quirk.Q_codegen_string_relational_numeric) ->
        if String.compare s1 s2 < 0 then `T else `F
    | _ ->
        let n1 = to_number ctx x and n2 = to_number ctx y in
        if Float.is_nan n1 || Float.is_nan n2 then `U
        else if n1 < n2 then `T
        else `F
  in
  let r =
    match op with
    | `Lt -> cmp pa pb
    | `Gt -> cmp pb pa
    | `Le -> ( match cmp pb pa with `T -> `F | `F -> `T | `U -> `U)
    | `Ge -> ( match cmp pa pb with `T -> `F | `F -> `T | `U -> `U)
  in
  Bool (match r with `T -> true | `F | `U -> false)

(* The [+] operator. *)
and add ctx (a : value) (b : value) : value =
  let pa = to_primitive ctx a ~hint:`Default in
  let pb = to_primitive ctx b ~hint:`Default in
  let bool_concat =
    (match (pa, pb) with Bool _, _ | _, Bool _ -> true | _ -> false)
    && fire ctx Quirk.Q_codegen_plus_bool_concat
  in
  match (pa, pb) with
  | Str _, _ | _, Str _ ->
      let a = to_string ctx pa and b = to_string ctx pb in
      (* string building costs real memory traffic; charge fuel so that
         quadratic concatenation loops register as slow, like they are *)
      burn ctx (1 + ((String.length a + String.length b) / 64));
      Str (a ^ b)
  | _ when bool_concat -> Str (to_string ctx pa ^ to_string ctx pb)
  | _ ->
      let x = to_number ctx pa and y = to_number ctx pb in
      let sum = x +. y in
      if
        Float.is_integer x && Float.is_integer y && Float.is_integer sum
        && Float.abs sum >= 2147483648.0
        && Float.abs x < 2147483648.0 && Float.abs y < 2147483648.0
        && fire ctx Quirk.Q_opt_int_add_overflow_wraps
      then
        (* simulated lost overflow check in the optimizing tier *)
        let wrapped = Int32.to_float (Int32.of_float sum) in
        Num wrapped
      else Num sum

(* --- misc --- *)

and is_array = function Obj { arr = Some { ty = None; _ }; _ } -> true | _ -> false

and make_array ctx (vals : value list) : obj =
  let o = make_obj ~oclass:"Array" ~proto:(proto_of ctx "Array") () in
  let elems = Array.of_list vals in
  o.arr <-
    Some
      {
        elems;
        alen = Array.length elems;
        ty = None;
        length_writable = true;
        min_written = (if Array.length elems = 0 then max_int else 0);
      };
  o

and array_values (o : obj) : value list =
  match o.arr with
  | Some arr -> Array.to_list (Array.sub arr.elems 0 (min arr.alen (Array.length arr.elems)))
  | None -> []

(* SameValueZero, used by [includes]. *)
let same_value_zero a b =
  match (a, b) with
  | Num x, Num y -> x = y || (Float.is_nan x && Float.is_nan y)
  | _ -> strict_equals a b

let to_object ctx (v : value) : obj =
  match v with
  | Obj o -> o
  | Str s ->
      let o = make_obj ~oclass:"String" ~proto:(proto_of ctx "String") () in
      o.prim <- Some (Str s);
      set_own o "length" (mkprop ~writable:false ~enumerable:false ~configurable:false
                            (Num (Float.of_int (String.length s))));
      o
  | Num f ->
      let o = make_obj ~oclass:"Number" ~proto:(proto_of ctx "Number") () in
      o.prim <- Some (Num f);
      o
  | Bool b ->
      let o = make_obj ~oclass:"Boolean" ~proto:(proto_of ctx "Boolean") () in
      o.prim <- Some (Bool b);
      o
  | Undefined | Null -> type_error ctx "cannot convert undefined or null to object"
