(* The quirk catalogue lives in the bottom-layer [quirkdef] library so that
   static analyses (which must not depend on the interpreter) can name
   checkpoint ids; this alias keeps every existing [Quirk.*] call site. *)

include Quirkdef
